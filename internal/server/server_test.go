package server

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/objects"
	"repro/internal/pmem"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *pmem.Pool) {
	t.Helper()
	pool := pmem.New(1<<25, nil)
	in, err := core.New(pool, objects.CounterSpec{}, core.Config{
		NProcs: 4, LogMaxOps: 4 + 128, ReadFastPath: true, CompactEvery: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Listen("tcp", "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	pool.ResetStats()
	return s, pool
}

func TestServerEndToEndBothAckModes(t *testing.T) {
	s, pool := newTestServer(t, Config{
		Batcher: BatcherConfig{MaxBatch: 64, MaxWait: 50 * time.Millisecond},
	})
	defer s.Close()
	c, err := Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Pipeline 100 increments, alternating ack modes, so the batcher
	// sees deep batches; then wait for every response.
	const n = 100
	chans := make([]<-chan Resp, 0, n)
	for i := 0; i < n; i++ {
		kind := KindUpdateLinearize
		if i%2 == 1 {
			kind = KindUpdatePersist
		}
		chans = append(chans, c.Async(kind, objects.CounterInc))
	}
	rets := map[uint64]bool{}
	ids := map[uint64]bool{}
	for _, ch := range chans {
		r := <-ch
		if r.Err != nil {
			t.Fatalf("update: %v", r.Err)
		}
		if rets[r.Ret] || ids[r.ID] {
			t.Fatalf("duplicate ret %d / id %#x", r.Ret, r.ID)
		}
		rets[r.Ret], ids[r.ID] = true, true
	}
	for v := uint64(1); v <= n; v++ {
		if !rets[v] {
			t.Fatalf("return value %d missing (returns must be the dense 1..%d)", v, n)
		}
	}
	if r, err := c.Call(KindRead, objects.CounterGet); err != nil || r.Ret != n {
		t.Fatalf("read = %d, %v; want %d", r.Ret, err, n)
	}

	st := s.Stats()
	if st.Updates != n || st.Batched != n || st.Reads != 1 {
		t.Fatalf("stats = %+v, want %d updates/batched, 1 read", st, n)
	}
	// The amortization: far fewer fences than updates. Compaction adds
	// a bounded few, so just require a 4x margin.
	if pf := pool.TotalStats().PersistentFences; pf >= n/4 {
		t.Fatalf("%d persistent fences for %d batched updates — batching not amortizing", pf, n)
	}
	var sb strings.Builder
	if err := s.DumpTimings(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != CSVHeader || len(lines) != n+1 {
		t.Fatalf("timing dump has %d lines (header %q), want %d + header", len(lines), lines[0], n)
	}
	// Every flushed request carries the full timeline; ack-linearize
	// rows may legitimately show respond < persist.
	if !strings.Contains(sb.String(), ",linearize,") || !strings.Contains(sb.String(), ",persist,") {
		t.Fatal("timing dump missing one of the ack modes")
	}
}

func TestServerDrainShutdown(t *testing.T) {
	s, _ := newTestServer(t, Config{
		AckOnPersist: true,
		// A long MaxWait: only Close's drain can flush the tail batch,
		// which is exactly what this test pins.
		Batcher: BatcherConfig{MaxBatch: 1 << 20, MaxWait: time.Hour},
	})
	c, err := Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	const n = 37
	chans := make([]<-chan Resp, 0, n)
	for i := 0; i < n; i++ {
		chans = append(chans, c.Async(KindUpdate, objects.CounterInc))
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, ch := range chans {
			if r := <-ch; r.Err != nil {
				t.Errorf("drained update: %v", r.Err)
			}
		}
	}()
	// Give the submissions time to reach the batcher, then Close: the
	// drain must stage + fence + respond to all of them.
	time.Sleep(50 * time.Millisecond)
	s.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("drain shutdown did not deliver all pending responses")
	}
	if st := s.Stats(); st.Updates != n || st.Flushes == 0 {
		t.Fatalf("stats after drain = %+v, want %d updates in >= 1 flush", st, n)
	}
	c.Close()
}

func TestStatsPollingRaceFree(t *testing.T) {
	// The torn-read audit's regression: poll every stats surface from
	// real goroutines while the server takes traffic. Run under -race
	// (the CI server job does).
	s, _ := newTestServer(t, Config{
		Batcher: BatcherConfig{MaxBatch: 16, MaxWait: time.Millisecond},
	})
	defer s.Close()
	stop := make(chan struct{})
	var pollWG sync.WaitGroup
	pollWG.Add(1)
	go func() {
		defer pollWG.Done()
		var sink atomic.Uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := s.Stats()
			fp := s.Instance().FastPathStats()
			cs := s.Instance().CompactionStats()
			pr := s.Instance().Pressure()
			sink.Store(st.Updates + fp.Publishes + cs.Bases + cs.Deltas + uint64(pr.Spills))
		}
	}()
	var cliWG sync.WaitGroup
	for w := 0; w < 3; w++ {
		cliWG.Add(1)
		go func() {
			defer cliWG.Done()
			c, err := Dial("tcp", s.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < 40; i++ {
				var chans [8]<-chan Resp
				for j := range chans {
					chans[j] = c.Async(KindUpdateLinearize, objects.CounterInc)
				}
				for _, ch := range chans {
					if r := <-ch; r.Err != nil {
						t.Error(r.Err)
						return
					}
				}
				c.Call(KindRead, objects.CounterGet)
			}
		}()
	}
	cliWG.Wait()
	close(stop)
	pollWG.Wait()
}
