package server

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/objects"
	"repro/internal/pmem"
	"repro/internal/sched"
	"repro/internal/spec"
)

// killAtPoint is a crash gate that kills the machine at the nth
// occurrence of one named pipeline point — here core's PointPersisted,
// which Batch.Flush steps immediately AFTER the flush fence and BEFORE
// the batcher delivers any ack-on-persist response. Killing there is
// exactly the window the batcher crash leg exists for: ops durable,
// clients never told.
type killAtPoint struct {
	point string
	nth   int32
	seen  atomic.Int32
	fired atomic.Bool
}

func (k *killAtPoint) Step(pid int, point string) {
	if k.fired.Load() {
		panic(sched.ErrKilled)
	}
	if point == k.point && k.seen.Add(1) == k.nth {
		k.fired.Store(true)
		panic(sched.ErrKilled)
	}
}

// TestBatcherCrashBetweenFenceAndResponse is the crash-sweep leg for
// the batcher (wired into CI's crash-sweep job): the machine dies right
// after the second flush's fence, before its responses go out. The
// deterministic submission order (one submitter, MaxBatch-sized
// batches, MaxWait effectively off) pins which ops land where:
//
//	ops 1-4  — batch 1, flushed, ACKED:    must be recovered
//	ops 5-8  — batch 2, flushed, unacked:  must be recovered anyway
//	           (the fence beat the crash; the client just never heard)
//	ops 9-10 — never flushed, unacked:     must be absent, and the
//	           absence detectable per op id via WasLinearized
func TestBatcherCrashBetweenFenceAndResponse(t *testing.T) {
	gate := &killAtPoint{point: core.PointPersisted, nth: 2}
	pool := pmem.New(1<<24, nil)
	in, err := core.New(pool, objects.CounterSpec{}, core.Config{
		NProcs: 2, LogMaxOps: 2 + 16, Gate: gate,
	})
	if err != nil {
		t.Fatal(err)
	}
	ba := NewBatcher(in.Handle(0), nil, BatcherConfig{MaxBatch: 4, MaxWait: time.Hour})
	go ba.Run()

	const n = 10
	respCh := make(chan *Request, n)
	reqs := make([]*Request, n)
	for i := range reqs {
		reqs[i] = &Request{Code: objects.CounterInc, AckPersist: true, done: respCh}
		if err := ba.Submit(reqs[i]); err != nil {
			t.Fatal(err)
		}
	}
	// The batcher dies inside batch 2's flush; wait for the corpse.
	select {
	case <-ba.stopped:
	case <-time.After(5 * time.Second):
		t.Fatal("batcher survived the crash gate")
	}
	if !ba.Killed() {
		t.Fatal("batcher stopped but not via the kill gate")
	}
	acked := map[uint64]bool{}
	for {
		select {
		case r := <-respCh:
			if r.Err != nil {
				t.Fatalf("pre-crash response carried error: %v", r.Err)
			}
			acked[r.ID] = true
			continue
		default:
		}
		break
	}

	pool.Crash(pmem.DropAll)
	rin, rep, err := core.Recover(pool, objects.CounterSpec{}, core.Config{})
	if err != nil {
		t.Fatal(err)
	}

	// Invariant 1 (the ack-on-persist contract): every acked request
	// was recovered.
	for id := range acked {
		if _, ok := rep.WasLinearized(id); !ok {
			t.Fatalf("ack-on-persist'd op %#x lost after crash", id)
		}
	}
	// Invariant 2 (this scenario's shape): acks are exactly batch 1.
	if len(acked) != 4 {
		t.Fatalf("%d acks delivered before the crash, want exactly batch 1 (4)", len(acked))
	}
	// Invariant 3: batch 2 was fenced before the kill, so its unacked
	// ops are recovered too; the never-flushed tail is absent and each
	// absence is detectable by id.
	recovered := 0
	for seq := uint64(1); seq <= n; seq++ {
		id := spec.MakeID(0, seq)
		_, ok := rep.WasLinearized(id)
		switch {
		case seq <= 8 && !ok:
			t.Fatalf("flushed op seq %d (%#x) not recovered", seq, id)
		case seq > 8 && ok:
			t.Fatalf("never-flushed op seq %d (%#x) reported linearized", seq, id)
		}
		if ok {
			recovered++
		}
	}
	if v := rin.Handle(0).Read(objects.CounterGet); v != uint64(recovered) {
		t.Fatalf("recovered state %d, want %d (one per recovered op)", v, recovered)
	}
}
