// Package server is the batched network front end over one ONLL
// instance (DESIGN.md §3.10): it maps client connections onto the
// construction's simulated processes and amortizes the paper's
// one-fence-per-update cost across whole batches of client requests —
// one log append and ONE persistent fence cover everything staged
// since the previous flush, so measured persists-per-request drops
// below 1 as soon as batches exceed one op.
//
// The price is an explicit durability window, surfaced as two ack
// modes. Ack-on-linearize responds the moment the op is ordered and
// visible (readers already see it); a crash before the next flush
// loses the acked suffix, and the paper's detectability machinery is
// what makes that honest — every response carries the op id, and
// Report.WasLinearized(id) after recovery says exactly which acked ops
// survived. Ack-on-persist responds only after the flush fence, which
// restores the paper's per-op guarantee at batch-flush latency.
package server

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
)

// ErrServerClosed is returned for requests submitted after shutdown
// began.
var ErrServerClosed = errors.New("server: closed")

// BatcherConfig sets the flush triggers.
type BatcherConfig struct {
	// MaxBatch flushes when this many ops are staged. It must leave
	// headroom under the instance's Config.LogMaxOps for the helping
	// tail (NewBatch's limit); Batcher clamps it there.
	MaxBatch int
	// MaxWait flushes a non-empty batch this long after its first op
	// staged, bounding the latency a lone request pays for batching.
	MaxWait time.Duration
}

func (c *BatcherConfig) fill() {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 200 * time.Microsecond
	}
}

// Batcher owns the instance's single updating handle (the batch entry
// point's single-updater regime) and runs the stage-on-arrival loop:
// every request is ordered + linearized the moment it is dequeued —
// ack-on-linearize responses leave immediately — and the flush fence
// runs when the batch fills or MaxWait expires, releasing the
// ack-on-persist responses.
type Batcher struct {
	batch *core.Batch
	cfg   BatcherConfig
	in    chan *Request

	mu     sync.Mutex // guards closed vs Submit
	closed bool

	pending []*Request // staged, awaiting the covering fence
	ring    *timingRing

	updates atomic.Uint64
	flushes atomic.Uint64
	batched atomic.Uint64 // sum of flush batch sizes (avg = batched/flushes)
	killed  atomic.Bool   // a crash gate killed the loop (tests)

	stopped chan struct{}
}

// NewBatcher wraps the handle (which must be the instance's only
// updater) in a batcher. Call Run in a goroutine, Submit from any,
// Close to drain.
func NewBatcher(h *core.Handle, ring *timingRing, cfg BatcherConfig) *Batcher {
	cfg.fill()
	b := h.NewBatch()
	if ring == nil {
		ring = newTimingRing(0)
	}
	return &Batcher{
		batch:   b,
		cfg:     cfg,
		in:      make(chan *Request, 4*cfg.MaxBatch),
		ring:    ring,
		stopped: make(chan struct{}),
	}
}

// Submit queues the request; its done channel receives it back at the
// ack point. Returns ErrServerClosed after Close.
//
//onll:hotpath
func (ba *Batcher) Submit(r *Request) error {
	r.EnqueueNs = ba.ring.nowNs()
	ba.mu.Lock() //onll:lockok(closed-flag guard: two plain statements, never held across the send)
	if ba.closed {
		ba.mu.Unlock()
		return ErrServerClosed
	}
	ba.in <- r //onll:chanok(request queue: the batcher is channel-structured by design)
	ba.mu.Unlock()
	return nil
}

// Close drains: no further Submits are accepted, everything queued is
// staged, the final flush fences it, and all responses are delivered
// before Close returns.
func (ba *Batcher) Close() {
	ba.mu.Lock()
	if !ba.closed {
		ba.closed = true
		close(ba.in)
	}
	ba.mu.Unlock()
	<-ba.stopped
}

// Killed reports whether a crash-injection gate terminated the loop
// (the simulated machine died; undelivered responses are the lost
// suffix).
func (ba *Batcher) Killed() bool { return ba.killed.Load() }

// Run is the batcher loop. It exits when Close drains the queue — or,
// under a crash-injection gate, when a kill fires inside a stage or
// flush, in which case the loop dies exactly like a process in the
// crash harness: responses not yet delivered never will be.
func (ba *Batcher) Run() {
	defer close(ba.stopped)
	defer func() {
		if r := recover(); r != nil {
			if sched.IsKilled(r) {
				ba.killed.Store(true)
				return
			}
			panic(r)
		}
	}()
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	for {
		var timeout <-chan time.Time
		if len(ba.pending) > 0 {
			timeout = timer.C
		}
		select {
		case r, ok := <-ba.in:
			if !ok {
				ba.flush()
				return
			}
			if len(ba.pending) == 0 {
				timer.Reset(ba.cfg.MaxWait)
			}
			ba.stage(r)
			if len(ba.pending) >= ba.cfg.MaxBatch {
				ba.flush()
			}
		case <-timeout:
			ba.flush()
		}
	}
}

// stage runs order+linearize for one request and, for ack-on-linearize,
// releases its response immediately.
//
//onll:hotpath
func (ba *Batcher) stage(r *Request) {
	r.StageNs = ba.ring.nowNs()
	ret, id, err := ba.batch.Stage(r.Code, r.args()...)
	if errors.Is(err, core.ErrBatchFull) {
		// MaxBatch should flush first; defensively make room.
		ba.flush()
		ret, id, err = ba.batch.Stage(r.Code, r.args()...)
	}
	r.Ret, r.ID, r.Err = ret, id, err
	ba.updates.Add(1)
	if err != nil {
		// Never staged: respond now regardless of ack mode, and do not
		// hold it for a fence that will not cover it.
		r.done <- r //onll:chanok(ack delivery: buffered response channel, batcher structure)
		return
	}
	ba.pending = append(ba.pending, r)
	if !r.AckPersist {
		r.done <- r //onll:chanok(ack-on-linearize delivery: buffered response channel)
	}
}

// flush fences everything staged and releases the ack-on-persist
// responses. The fence covers every pending request at once — this is
// the whole amortization.
//
//onll:hotpath
func (ba *Batcher) flush() {
	if len(ba.pending) == 0 {
		return
	}
	err := ba.batch.Flush()
	now := ba.ring.nowNs()
	ba.flushes.Add(1)
	ba.batched.Add(uint64(len(ba.pending)))
	for _, r := range ba.pending {
		r.PersistNs.Store(now)
		if r.AckPersist {
			if err != nil && r.Err == nil {
				r.Err = err
			}
			r.done <- r //onll:chanok(ack-on-persist delivery: buffered response channel)
		}
		ba.ring.add(r)
	}
	ba.pending = ba.pending[:0]
}

// BatcherStats is a consistent-enough snapshot of the batcher's
// volatile counters (each field individually atomic).
type BatcherStats struct {
	Updates uint64 // requests staged (including failed stages)
	Flushes uint64 // fences issued by the batcher
	Batched uint64 // sum of flushed batch sizes
}

// Stats snapshots the counters.
func (ba *Batcher) Stats() BatcherStats {
	return BatcherStats{
		Updates: ba.updates.Load(),
		Flushes: ba.flushes.Load(),
		Batched: ba.batched.Load(),
	}
}
