package server

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Request is one update's journey through the batcher, flat and
// CSV-friendly. The first block is the request proper, the second the
// outcome, the third the timeline:
//
//	EnqueueNs — submitted to the batcher's queue (client side of the
//	            server: the moment the frame was parsed)
//	StageNs   — admitted to the open batch: ordered + linearized, the
//	            speculative return value computed
//	PersistNs — the covering flush fence completed (0 until then)
//	RespondNs — the response frame was written to the client
//
// For ack-on-linearize requests RespondNs routinely precedes
// PersistNs — that inversion in the CSV is the durability window the
// client accepted. PersistNs and RespondNs are atomics because they
// are stamped by different goroutines (batcher and connection writer)
// after the response may already be in flight; everything else is
// written by one goroutine before the request changes hands.
type Request struct {
	Tag        uint32 // client correlation tag, echoed in the response
	Code       uint64
	Args       [3]uint64
	NArgs      uint8
	AckPersist bool // respond after the flush fence, not at linearization

	Ret uint64
	ID  uint64
	Err error

	EnqueueNs int64
	StageNs   int64
	PersistNs atomic.Int64
	RespondNs atomic.Int64

	// done receives the request back when its ack condition is met
	// (stage for ack-on-linearize, flush fence for ack-on-persist).
	done chan *Request
}

func (r *Request) args() []uint64 { return r.Args[:r.NArgs] }

// CSVHeader is the column row matching Request.CSVRow.
const CSVHeader = "tag,code,ack,ret,id,err,enqueue_ns,stage_ns,persist_ns,respond_ns"

// CSVRow renders the request as one CSV line (no trailing newline).
func (r *Request) CSVRow() string {
	ack := "linearize"
	if r.AckPersist {
		ack = "persist"
	}
	errv := 0
	if r.Err != nil {
		errv = 1
	}
	return fmt.Sprintf("%d,%d,%s,%d,%d,%d,%d,%d,%d,%d",
		r.Tag, r.Code, ack, r.Ret, r.ID, errv,
		r.EnqueueNs, r.StageNs, r.PersistNs.Load(), r.RespondNs.Load())
}

// timingRing keeps the most recent flushed requests for CSV export. A
// disarmed ring (Config.TimingCap < 0) retains nothing AND gates off
// every per-request clock read: nowNs is the single place the request
// timeline touches the clock, so the capture cost is zero when capture
// is off — the same discipline as the core cost model's sample-gated
// EWMA probes, enforced by the hotpath analyzer on the batcher.
type timingRing struct {
	armed bool
	mu    sync.Mutex
	buf   []*Request
	next  int
	full  bool
}

func newTimingRing(n int) *timingRing {
	if n < 0 {
		return &timingRing{} // disarmed: no retention, no clock reads
	}
	if n == 0 {
		n = 1 << 14
	}
	return &timingRing{armed: true, buf: make([]*Request, n)}
}

// nowNs is the request timeline's only clock read, gated on the ring
// being armed: timestamps are meaningless without the ring that
// retains them, and a server run with capture disabled must not pay
// clock reads per request.
//
//onll:hotpath
func (t *timingRing) nowNs() int64 {
	if !t.armed {
		return 0
	}
	return time.Now().UnixNano() //onll:clockok(timing capture: armed ring only, gated off with TimingCap < 0)
}

func (t *timingRing) add(r *Request) {
	if !t.armed {
		return
	}
	t.mu.Lock()
	t.buf[t.next] = r
	t.next++
	if t.next == len(t.buf) {
		t.next, t.full = 0, true
	}
	t.mu.Unlock()
}

// dump writes the retained timings, oldest first, as CSV.
func (t *timingRing) dump(w io.Writer) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, err := fmt.Fprintln(w, CSVHeader); err != nil {
		return err
	}
	emit := func(r *Request) error {
		_, err := fmt.Fprintln(w, r.CSVRow())
		return err
	}
	if t.full {
		for _, r := range t.buf[t.next:] {
			if err := emit(r); err != nil {
				return err
			}
		}
	}
	for _, r := range t.buf[:t.next] {
		if err := emit(r); err != nil {
			return err
		}
	}
	return nil
}
