package server

// Wire protocol: little-endian framed binary, pipelined. Requests and
// responses are correlated by a client-chosen 32-bit tag, so a client
// may keep any number of requests in flight on one connection and
// responses may arrive out of request order (ack-on-linearize
// responses overtake ack-on-persist ones from the same batch).
//
//	request:  tag u32 | kind u8 | code u64 | nargs u8 | nargs × u64
//	response: tag u32 | status u8 | ret u64 | id u64
//
// kind selects the operation and, for updates, the ack mode; status is
// 0 for success, 1 for a server-side error (quarantined instance,
// shutdown race). Reads carry id 0 — they have no durability to
// detect, which is the paper's 0-fences-per-read guarantee surfacing
// in the protocol.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// Request kinds.
const (
	// KindUpdate is an update acked in the server's default mode.
	KindUpdate = byte('U')
	// KindUpdatePersist forces ack-on-persist for this request.
	KindUpdatePersist = byte('P')
	// KindUpdateLinearize forces ack-on-linearize for this request.
	KindUpdateLinearize = byte('L')
	// KindRead is a read; executed fence-free outside the batcher.
	KindRead = byte('R')
)

const maxArgs = 3

func writeRequest(w io.Writer, tag uint32, kind byte, code uint64, args []uint64) error {
	if len(args) > maxArgs {
		return fmt.Errorf("server: %d args, protocol max %d", len(args), maxArgs)
	}
	var buf [4 + 1 + 8 + 1 + 8*maxArgs]byte
	binary.LittleEndian.PutUint32(buf[0:], tag)
	buf[4] = kind
	binary.LittleEndian.PutUint64(buf[5:], code)
	buf[13] = byte(len(args))
	n := 14
	for _, a := range args {
		binary.LittleEndian.PutUint64(buf[n:], a)
		n += 8
	}
	_, err := w.Write(buf[:n])
	return err
}

func readRequest(r *bufio.Reader) (tag uint32, kind byte, code uint64, args [maxArgs]uint64, nargs uint8, err error) {
	var hdr [14]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return
	}
	tag = binary.LittleEndian.Uint32(hdr[0:])
	kind = hdr[4]
	code = binary.LittleEndian.Uint64(hdr[5:])
	nargs = hdr[13]
	if nargs > maxArgs {
		err = fmt.Errorf("server: frame claims %d args, protocol max %d", nargs, maxArgs)
		return
	}
	var ab [8 * maxArgs]byte
	if _, err = io.ReadFull(r, ab[:8*int(nargs)]); err != nil {
		return
	}
	for i := 0; i < int(nargs); i++ {
		args[i] = binary.LittleEndian.Uint64(ab[8*i:])
	}
	return
}

func writeResponse(w io.Writer, tag uint32, status byte, ret, id uint64) error {
	var buf [4 + 1 + 8 + 8]byte
	binary.LittleEndian.PutUint32(buf[0:], tag)
	buf[4] = status
	binary.LittleEndian.PutUint64(buf[5:], ret)
	binary.LittleEndian.PutUint64(buf[13:], id)
	_, err := w.Write(buf[:])
	return err
}

// Resp is one response as the client sees it.
type Resp struct {
	Ret uint64
	// ID is the op id for updates (usable with Report.WasLinearized
	// after a crash to detect whether an acked op survived); 0 for
	// reads.
	ID  uint64
	Err error
}

// Client is a pipelined protocol client: any number of calls may be in
// flight; a background goroutine dispatches responses by tag. Safe for
// concurrent use.
type Client struct {
	conn net.Conn
	wmu  sync.Mutex
	w    *bufio.Writer

	mu      sync.Mutex
	tags    map[uint32]chan Resp
	nextTag uint32
	rerr    error
	rdone   chan struct{}
}

// Dial connects to a server at network/addr ("tcp", "unix").
func Dial(network, addr string) (*Client, error) {
	conn, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:  conn,
		w:     bufio.NewWriter(conn),
		tags:  map[uint32]chan Resp{},
		rdone: make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

func (c *Client) readLoop() {
	defer close(c.rdone)
	r := bufio.NewReader(c.conn)
	var buf [21]byte
	for {
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			c.fail(err)
			return
		}
		tag := binary.LittleEndian.Uint32(buf[0:])
		resp := Resp{
			Ret: binary.LittleEndian.Uint64(buf[5:]),
			ID:  binary.LittleEndian.Uint64(buf[13:]),
		}
		if buf[4] != 0 {
			resp.Err = ErrServerClosed
		}
		c.mu.Lock()
		ch := c.tags[tag]
		delete(c.tags, tag)
		c.mu.Unlock()
		if ch != nil {
			ch <- resp
		}
	}
}

// fail resolves every outstanding call with err (connection dead).
func (c *Client) fail(err error) {
	c.mu.Lock()
	c.rerr = err
	for tag, ch := range c.tags {
		delete(c.tags, tag)
		ch <- Resp{Err: err}
	}
	c.mu.Unlock()
}

// Async sends one request and returns a 1-buffered channel that will
// receive its response (or the connection error).
func (c *Client) Async(kind byte, code uint64, args ...uint64) <-chan Resp {
	ch := make(chan Resp, 1)
	c.mu.Lock()
	if c.rerr != nil {
		err := c.rerr
		c.mu.Unlock()
		ch <- Resp{Err: err}
		return ch
	}
	c.nextTag++
	tag := c.nextTag
	c.tags[tag] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	err := writeRequest(c.w, tag, kind, code, args)
	if err == nil {
		err = c.w.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		if c.tags[tag] == ch {
			delete(c.tags, tag)
		}
		c.mu.Unlock()
		ch <- Resp{Err: err}
	}
	return ch
}

// Call is the synchronous wrapper around Async.
func (c *Client) Call(kind byte, code uint64, args ...uint64) (Resp, error) {
	r := <-c.Async(kind, code, args...)
	return r, r.Err
}

// Close tears the connection down; outstanding calls resolve with the
// resulting read error.
func (c *Client) Close() error {
	err := c.conn.Close()
	<-c.rdone
	return err
}
