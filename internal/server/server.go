package server

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// Config parameterizes New.
type Config struct {
	// AckOnPersist sets the default ack mode for KindUpdate requests:
	// true responds after the flush fence (the paper's per-op
	// durability guarantee, at batch latency), false at linearization
	// (fast; a crash may lose the acked suffix, detectably). Requests
	// override per-op with KindUpdatePersist / KindUpdateLinearize.
	AckOnPersist bool
	// Batcher sets the flush triggers.
	Batcher BatcherConfig
	// TimingCap bounds the retained per-request timing records
	// (DumpTimings). Zero selects a default; negative disables capture
	// entirely — no records retained and, with them, no per-request
	// clock reads anywhere on the request path (timingRing.nowNs is the
	// single gated read).
	TimingCap int
}

// Server maps client connections onto one ONLL instance: all updates
// funnel through the batcher owning Handle(0) — the single-updater
// regime the batch entry point requires — and reads run fence-free on
// the remaining handles, one per connection round-robin (connections
// sharing a read handle serialize on its mutex, which models more
// clients than simulated processes). The instance must have
// NProcs >= 2 so at least one read handle exists.
type Server struct {
	cfg  Config
	in   *core.Instance
	ba   *Batcher
	ring *timingRing

	ln     net.Listener
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	closed atomic.Bool

	reads []readSlot
	nconn atomic.Uint64
	rops  atomic.Uint64
}

type readSlot struct {
	mu sync.Mutex
	h  *core.Handle
}

// New builds a server over the instance. The instance's Handle(0) is
// handed to the batcher and must not be used elsewhere.
func New(in *core.Instance, cfg Config) (*Server, error) {
	if in.NProcs() < 2 {
		return nil, fmt.Errorf("server: instance has %d processes, need >= 2 (one updater + readers)", in.NProcs())
	}
	ring := newTimingRing(cfg.TimingCap)
	s := &Server{
		cfg:   cfg,
		in:    in,
		ba:    NewBatcher(in.Handle(0), ring, cfg.Batcher),
		ring:  ring,
		conns: map[net.Conn]struct{}{},
	}
	for pid := 1; pid < in.NProcs(); pid++ {
		s.reads = append(s.reads, readSlot{h: in.Handle(pid)})
	}
	return s, nil
}

// Listen binds the server to network/addr ("tcp", "unix") and starts
// the batcher and accept loops. It returns once the listener is ready;
// Addr reports the bound address.
func (s *Server) Listen(network, addr string) error {
	ln, err := net.Listen(network, addr)
	if err != nil {
		return err
	}
	s.ln = ln
	go s.ba.Run()
	s.wg.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr returns the bound listener address (after Listen).
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed (shutdown) or fatal
		}
		s.mu.Lock()
		if s.closed.Load() {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handleConn(conn)
	}
}

// Close drains and shuts down: stop accepting, let the batcher stage
// and fence everything already queued, deliver every response, then
// tear down connections. In-flight requests are answered, not dropped.
func (s *Server) Close() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	s.ln.Close()
	// Drain the batcher first so every accepted update gets its
	// response before its connection goes away.
	s.ba.Close()
	// Stop the READ side only: connection readers unblock and fall
	// into their drain path, while the writers finish delivering the
	// drained responses over the still-open write side. handleConn
	// closes each connection fully once its writer is done.
	s.mu.Lock()
	for c := range s.conns {
		closeRead(c)
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// closeRead half-closes the connection's read side where the transport
// supports it, falling back to an immediate read deadline.
func closeRead(c net.Conn) {
	switch tc := c.(type) {
	case *net.TCPConn:
		tc.CloseRead()
	case *net.UnixConn:
		tc.CloseRead()
	default:
		c.SetReadDeadline(time.Unix(0, 1))
	}
}

func (s *Server) handleConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	slot := &s.reads[int(s.nconn.Add(1))%len(s.reads)]

	respCh := make(chan *Request, 256)
	var inflight sync.WaitGroup
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		bw := bufio.NewWriter(conn)
		for r := range respCh {
			status := byte(0)
			if r.Err != nil {
				status = 1
			}
			werr := writeResponse(bw, r.Tag, status, r.Ret, r.ID)
			// Flush when the queue is momentarily empty: batches of
			// responses coalesce into one syscall, a lone response
			// leaves immediately.
			if werr == nil && len(respCh) == 0 {
				werr = bw.Flush()
			}
			r.RespondNs.Store(s.ring.nowNs())
			inflight.Done()
			_ = werr // a dead client only ends the conn via the reader
		}
		bw.Flush()
	}()

	br := bufio.NewReader(conn)
	for {
		tag, kind, code, args, nargs, err := readRequest(br)
		if err != nil {
			break // io.EOF on clean client close
		}
		r := &Request{Tag: tag, Code: code, Args: args, NArgs: nargs, done: respCh}
		switch kind {
		case KindRead:
			s.serveRead(slot, r)
			inflight.Add(1)
			respCh <- r
		case KindUpdate, KindUpdatePersist, KindUpdateLinearize:
			r.AckPersist = kind == KindUpdatePersist ||
				(kind == KindUpdate && s.cfg.AckOnPersist)
			inflight.Add(1)
			if serr := s.ba.Submit(r); serr != nil {
				r.Err = serr
				respCh <- r
			}
		default:
			inflight.Add(1)
			r.Err = fmt.Errorf("server: unknown request kind %q", kind)
			respCh <- r
		}
	}
	// Drain: every submitted update's response must be written before
	// the writer goes away (the batcher delivers them on respCh).
	inflight.Wait()
	close(respCh)
	<-writerDone
}

// serveRead answers one read request on the connection's read slot,
// bypassing the batcher entirely: 0 persistent fences, served on the
// slot's handle. Reads observe staged-but-unflushed updates —
// linearization, not durability, orders reads. The readpath annotation
// makes the fencepath analyzer prove the 0-pfence claim transitively
// (nothing reachable from here may touch a pmem store or fence), and
// hotpath keeps the serve loop allocation- and clock-free.
//
//onll:readpath
//onll:hotpath
func (s *Server) serveRead(slot *readSlot, r *Request) {
	slot.mu.Lock() //onll:lockok(per-connection read-handle guard: models more clients than pids, never held across I/O)
	r.Ret = slot.h.Read(r.Code, r.args()...)
	slot.mu.Unlock()
	s.rops.Add(1)
}

// Stats aggregates server-side counters.
type Stats struct {
	BatcherStats
	Reads uint64 // read requests served (fence-free)
	Conns uint64 // connections accepted over the server's lifetime
}

// Stats snapshots the counters. Safe to call concurrently with
// request traffic (each field is individually atomic — this is the
// polling surface the torn-read audit covers).
func (s *Server) Stats() Stats {
	return Stats{
		BatcherStats: s.ba.Stats(),
		Reads:        s.rops.Load(),
		Conns:        s.nconn.Load(),
	}
}

// Instance exposes the underlying object (stats polling, bench
// accounting).
func (s *Server) Instance() *core.Instance { return s.in }

// DumpTimings writes the retained per-request timing records as CSV.
func (s *Server) DumpTimings(w io.Writer) error { return s.ring.dump(w) }
