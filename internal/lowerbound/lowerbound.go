// Package lowerbound reproduces the paper's lower bound (Theorem 6.3):
// for any lock-free durably linearizable implementation of an update
// operation op, there is an execution in which ALL n processes call op
// concurrently and EVERY process performs at least one persistent fence
// during its call.
//
// The proof constructs the execution explicitly, and this package
// replays that construction against the ONLL implementation under the
// deterministic scheduler, verifying the fence accounting process by
// process:
//
//	Case 1 (H·opⁿ⁻¹ ≢ H·opⁿ — the counter's increment): each process in
//	turn runs SOLO until just before the response of its op and is
//	preempted there. The theorem says it must already have fenced:
//	otherwise a crash after its response would leave persistent memory
//	in a state inconsistent with the only possible linearization.
//
//	Case 2 (H·opⁿ⁻¹ ≡ H·opⁿ — a register write of a constant, which is
//	idempotent): each process in turn runs solo until just BEFORE its
//	first persistent fence and is preempted there; the theorem says
//	this fence must exist (a process that returned without fencing
//	would strand an unrecoverable update). Finally each process is
//	resumed for exactly one step — the fence itself.
//
// The package measures, rather than assumes, so it equally demonstrates
// that the ONLL upper bound is tight: in these worst-case executions
// every process pays exactly one persistent fence — no more.
package lowerbound

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/objects"
	"repro/internal/pmem"
	"repro/internal/sched"
)

// Result reports one constructed execution.
type Result struct {
	Case    int // 1 or 2
	NProcs  int
	Object  string
	PFences []uint64 // persistent fences per process at its preemption point
}

// Satisfied reports whether every process performed at least one
// persistent fence (the theorem's claim).
func (r *Result) Satisfied() bool {
	for _, f := range r.PFences {
		if f < 1 {
			return false
		}
	}
	return true
}

// Tight reports whether every process performed exactly one persistent
// fence (the upper bound meeting the lower bound).
func (r *Result) Tight() bool {
	for _, f := range r.PFences {
		if f != 1 {
			return false
		}
	}
	return true
}

func (r *Result) String() string {
	return fmt.Sprintf("case %d, %s, n=%d: pfences per process %v (satisfied=%v, tight=%v)",
		r.Case, r.Object, r.NProcs, r.PFences, r.Satisfied(), r.Tight())
}

const poolSize = 1 << 24

// Case1 builds the Case 1 execution on an n-process ONLL counter
// (increment is never idempotent: H·opⁿ⁻¹ ≢ H·opⁿ). waitFree selects
// the wait-free ordering variant.
func Case1(nprocs int, waitFree bool) (*Result, error) {
	ctl := sched.NewController()
	pool := pmem.New(poolSize, ctl)
	in, err := core.New(pool, objects.CounterSpec{}, core.Config{
		NProcs: nprocs, Gate: ctl, WaitFree: waitFree,
	})
	if err != nil {
		return nil, err
	}
	pool.ResetStats()
	res := &Result{Case: 1, NProcs: nprocs, Object: "counter/inc"}
	for pid := 0; pid < nprocs; pid++ {
		pid := pid
		ctl.Spawn(pid, func() { in.Handle(pid).Update(objects.CounterInc) })
	}
	// Each process, in turn, runs solo until just before its response
	// and is preempted there, still holding its unreturned op.
	for pid := 0; pid < nprocs; pid++ {
		if _, ok := ctl.RunUntil(pid, sched.AtPoint(core.PointReturn)); !ok {
			ctl.KillAll()
			return nil, fmt.Errorf("lowerbound: p%d returned before being preempted", pid)
		}
		res.PFences = append(res.PFences, pool.StatsOf(pid).PersistentFences)
	}
	ctl.KillAll()
	return res, nil
}

// Case2 builds the Case 2 execution on an n-process ONLL register with
// every process writing the same constant (idempotent: H·opⁿ⁻¹ ≡ H·opⁿ
// for n >= 2).
func Case2(nprocs int, waitFree bool) (*Result, error) {
	ctl := sched.NewController()
	pool := pmem.New(poolSize, ctl)
	in, err := core.New(pool, objects.RegisterSpec{}, core.Config{
		NProcs: nprocs, Gate: ctl, WaitFree: waitFree,
	})
	if err != nil {
		return nil, err
	}
	pool.ResetStats()
	res := &Result{Case: 2, NProcs: nprocs, Object: "register/write(5)"}
	for pid := 0; pid < nprocs; pid++ {
		pid := pid
		ctl.Spawn(pid, func() { in.Handle(pid).Update(objects.RegisterWrite, 5) })
	}
	// Phase 1: run each process solo until just before its FIRST
	// persistent fence; the theorem says this point must be reached.
	for pid := 0; pid < nprocs; pid++ {
		if _, ok := ctl.RunUntil(pid, sched.AtPoint("pmem.pfence")); !ok {
			ctl.KillAll()
			return nil, fmt.Errorf("lowerbound: p%d finished without a persistent fence", pid)
		}
	}
	// Phase 2 (the proof's final sweep): resume each process for one
	// step — the persistent fence it was about to perform — then
	// preempt it again.
	for pid := nprocs - 1; pid >= 0; pid-- {
		ctl.StepN(pid, 1)
		res.PFences = append(res.PFences, pool.StatsOf(pid).PersistentFences)
	}
	// Reverse to per-pid order (we swept n-1..0 as in the proof).
	for i, j := 0, len(res.PFences)-1; i < j; i, j = i+1, j-1 {
		res.PFences[i], res.PFences[j] = res.PFences[j], res.PFences[i]
	}
	ctl.KillAll()
	return res, nil
}

// CrashArgument demonstrates WHY the fence is necessary (the core of the
// Case 1 argument): it re-runs the p1-solo prefix, crashes just before
// p1's persistent fence, and shows that recovery then reflects H (the
// op is lost) — so an implementation that returned without fencing
// would violate durable linearizability. Returns the number of
// recovered ops (expected 0) and whether the op had (correctly) not yet
// been linearized.
func CrashArgument() (recoveredOps uint64, err error) {
	ctl := sched.NewController()
	pool := pmem.New(poolSize, ctl)
	in, err := core.New(pool, objects.CounterSpec{}, core.Config{NProcs: 1, Gate: ctl})
	if err != nil {
		return 0, err
	}
	ctl.Spawn(0, func() { in.Handle(0).Update(objects.CounterInc) })
	if _, ok := ctl.RunUntil(0, sched.AtPoint("pmem.pfence")); !ok {
		ctl.KillAll()
		return 0, fmt.Errorf("lowerbound: process never fenced")
	}
	ctl.KillAll()
	pool.Crash(pmem.DropAll)
	pool.SetGate(nil)
	_, rep, err := core.Recover(pool, objects.CounterSpec{}, core.Config{})
	if err != nil {
		return 0, err
	}
	return rep.LastIdx, nil
}
