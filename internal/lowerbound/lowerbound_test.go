package lowerbound

import (
	"strings"
	"testing"
)

func TestE2Case1EveryProcessFences(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		for _, wf := range []bool{false, true} {
			res, err := Case1(n, wf)
			if err != nil {
				t.Fatalf("n=%d wf=%v: %v", n, wf, err)
			}
			if !res.Satisfied() {
				t.Fatalf("n=%d wf=%v: lower bound violated: %v", n, wf, res)
			}
			if !res.Tight() {
				t.Fatalf("n=%d wf=%v: ONLL not tight against the lower bound: %v", n, wf, res)
			}
			if len(res.PFences) != n {
				t.Fatalf("n=%d: %d processes measured", n, len(res.PFences))
			}
		}
	}
}

func TestE2Case2EveryProcessFences(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		for _, wf := range []bool{false, true} {
			res, err := Case2(n, wf)
			if err != nil {
				t.Fatalf("n=%d wf=%v: %v", n, wf, err)
			}
			if !res.Satisfied() {
				t.Fatalf("n=%d wf=%v: lower bound violated: %v", n, wf, res)
			}
			if !res.Tight() {
				t.Fatalf("n=%d wf=%v: not tight: %v", n, wf, res)
			}
		}
	}
}

func TestE2CrashArgument(t *testing.T) {
	recovered, err := CrashArgument()
	if err != nil {
		t.Fatal(err)
	}
	if recovered != 0 {
		t.Fatalf("crash before the fence recovered %d ops; the op must be lost (state H)", recovered)
	}
}

func TestResultStringAndPredicates(t *testing.T) {
	r := &Result{Case: 1, NProcs: 2, Object: "counter/inc", PFences: []uint64{1, 1}}
	if !r.Satisfied() || !r.Tight() {
		t.Fatal("predicates wrong on all-ones")
	}
	r.PFences = []uint64{1, 0}
	if r.Satisfied() {
		t.Fatal("Satisfied with a zero")
	}
	r.PFences = []uint64{2, 1}
	if !r.Satisfied() || r.Tight() {
		t.Fatal("Tight with a two")
	}
	if !strings.Contains(r.String(), "case 1") {
		t.Fatalf("String: %s", r.String())
	}
}
