package workload

import (
	"testing"

	"repro/internal/objects"
	"repro/internal/spec"
)

func TestStreamDeterministic(t *testing.T) {
	g := NewGenerator(objects.MapSpec{})
	a := g.Stream(42, 100, 50)
	b := g.Stream(42, 100, 50)
	if len(a) != 100 || len(b) != 100 {
		t.Fatalf("lengths %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i].Code != b[i].Code || a[i].IsUpdate != b[i].IsUpdate {
			t.Fatalf("step %d differs", i)
		}
		for k := range a[i].Args {
			if a[i].Args[k] != b[i].Args[k] {
				t.Fatalf("step %d arg %d differs", i, k)
			}
		}
	}
	c := g.Stream(43, 100, 50)
	same := true
	for i := range a {
		if a[i].Code != c[i].Code {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestStreamUpdateRatio(t *testing.T) {
	g := NewGenerator(objects.CounterSpec{})
	for _, pct := range []int{0, 50, 100} {
		steps := g.Stream(7, 2000, pct)
		updates := 0
		for _, s := range steps {
			if s.IsUpdate {
				updates++
			}
		}
		got := updates * 100 / len(steps)
		if pct == 100 && got != 100 {
			t.Fatalf("pct=100: got %d%%", got)
		}
		if pct == 0 && got != 0 {
			t.Fatalf("pct=0: got %d%%", got)
		}
		if pct == 50 && (got < 40 || got > 60) {
			t.Fatalf("pct=50: got %d%%", got)
		}
	}
}

func TestStreamArgsWithinKeySpace(t *testing.T) {
	g := NewGenerator(objects.MapSpec{})
	g.KeySpace = 8
	for _, s := range g.Stream(1, 500, 100) {
		for i := 0; i < argCount(s); i++ {
			if s.Args[i] < 1 || s.Args[i] > 8 {
				t.Fatalf("arg %d out of keyspace: %d", i, s.Args[i])
			}
		}
	}
}

func argCount(s Step) int { return len(s.Args) }

func TestStreamValidOpcodesForAllObjects(t *testing.T) {
	for _, sp := range objects.All() {
		g := NewGenerator(sp)
		st := sp.New()
		for _, s := range g.Stream(3, 300, 60) {
			var op spec.Op
			op.Code = s.Code
			copy(op.Args[:], s.Args)
			if s.IsUpdate {
				st.Apply(op) // panics on a bad opcode
			} else {
				st.Read(op)
			}
		}
		if g.Spec().Name() != sp.Name() {
			t.Fatal("Spec accessor wrong")
		}
	}
}

func TestYCSBDReadLatest(t *testing.T) {
	y := NewYCSB(YCSBD)
	a := y.Stream(7, 2000)
	b := y.Stream(7, 2000)
	if len(a) != len(b) {
		t.Fatalf("lengths %d/%d", len(a), len(b))
	}
	inserted := map[uint64]bool{}
	updates, frontierReads := 0, 0
	for i := range a {
		if a[i].Code != b[i].Code || a[i].IsUpdate != b[i].IsUpdate ||
			len(a[i].Args) != len(b[i].Args) {
			t.Fatalf("step %d not deterministic", i)
		}
		for j := range a[i].Args {
			if a[i].Args[j] != b[i].Args[j] {
				t.Fatalf("step %d arg %d not deterministic", i, j)
			}
		}
		st := a[i]
		if st.IsUpdate {
			updates++
			if st.Code != objects.OMapPut {
				t.Fatalf("step %d: D update opcode %d", i, st.Code)
			}
			k := st.Args[0]
			if k <= y.KeySpace {
				t.Fatalf("step %d: D insert reused preloaded key %d", i, k)
			}
			if inserted[k] {
				t.Fatalf("step %d: D insert reused fresh key %d", i, k)
			}
			inserted[k] = true
		} else {
			if st.Code != objects.OMapGet {
				t.Fatalf("step %d: D read opcode %d", i, st.Code)
			}
			k := st.Args[0]
			if k > y.KeySpace && !inserted[k] {
				t.Fatalf("step %d: D read of key %d never inserted", i, k)
			}
			if inserted[k] {
				frontierReads++
			}
		}
	}
	if updates == 0 {
		t.Fatal("D generated no inserts")
	}
	// The read-latest property: once inserts exist, most reads chase
	// them (zipfian over recency, rank 0 = newest) rather than the
	// preloaded space.
	if frontierReads < len(a)/2 {
		t.Fatalf("only %d/%d reads hit the insert frontier", frontierReads, len(a))
	}
	// Distinct streams churn disjoint fresh-key regions.
	other := y.Stream(8, 200)
	for i, st := range other {
		if st.IsUpdate && inserted[st.Args[0]] {
			t.Fatalf("stream seed=8 step %d reinserted seed=7 key %d", i, st.Args[0])
		}
	}
}
