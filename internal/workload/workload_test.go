package workload

import (
	"testing"

	"repro/internal/objects"
	"repro/internal/spec"
)

func TestStreamDeterministic(t *testing.T) {
	g := NewGenerator(objects.MapSpec{})
	a := g.Stream(42, 100, 50)
	b := g.Stream(42, 100, 50)
	if len(a) != 100 || len(b) != 100 {
		t.Fatalf("lengths %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i].Code != b[i].Code || a[i].IsUpdate != b[i].IsUpdate {
			t.Fatalf("step %d differs", i)
		}
		for k := range a[i].Args {
			if a[i].Args[k] != b[i].Args[k] {
				t.Fatalf("step %d arg %d differs", i, k)
			}
		}
	}
	c := g.Stream(43, 100, 50)
	same := true
	for i := range a {
		if a[i].Code != c[i].Code {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestStreamUpdateRatio(t *testing.T) {
	g := NewGenerator(objects.CounterSpec{})
	for _, pct := range []int{0, 50, 100} {
		steps := g.Stream(7, 2000, pct)
		updates := 0
		for _, s := range steps {
			if s.IsUpdate {
				updates++
			}
		}
		got := updates * 100 / len(steps)
		if pct == 100 && got != 100 {
			t.Fatalf("pct=100: got %d%%", got)
		}
		if pct == 0 && got != 0 {
			t.Fatalf("pct=0: got %d%%", got)
		}
		if pct == 50 && (got < 40 || got > 60) {
			t.Fatalf("pct=50: got %d%%", got)
		}
	}
}

func TestStreamArgsWithinKeySpace(t *testing.T) {
	g := NewGenerator(objects.MapSpec{})
	g.KeySpace = 8
	for _, s := range g.Stream(1, 500, 100) {
		for i := 0; i < argCount(s); i++ {
			if s.Args[i] < 1 || s.Args[i] > 8 {
				t.Fatalf("arg %d out of keyspace: %d", i, s.Args[i])
			}
		}
	}
}

func argCount(s Step) int { return len(s.Args) }

func TestStreamValidOpcodesForAllObjects(t *testing.T) {
	for _, sp := range objects.All() {
		g := NewGenerator(sp)
		st := sp.New()
		for _, s := range g.Stream(3, 300, 60) {
			var op spec.Op
			op.Code = s.Code
			copy(op.Args[:], s.Args)
			if s.IsUpdate {
				st.Apply(op) // panics on a bad opcode
			} else {
				st.Read(op)
			}
		}
		if g.Spec().Name() != sp.Name() {
			t.Fatal("Spec accessor wrong")
		}
	}
}
