// Package workload generates deterministic, seeded operation streams for
// the shipped objects, used by the stress tests, the crash-injection
// harness and the benchmark tables.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/objects"
	"repro/internal/spec"
)

// Step is one generated operation invocation.
type Step struct {
	Code     uint64
	Args     []uint64
	IsUpdate bool
}

// Generator produces deterministic op streams for one object spec.
type Generator struct {
	sp      spec.Spec
	updates []objects.OpInfo
	reads   []objects.OpInfo
	// KeySpace bounds generated argument values (small spaces create
	// contention and collisions on maps/sets).
	KeySpace uint64
}

// NewGenerator builds a generator for sp, which must describe its ops.
func NewGenerator(sp spec.Spec) *Generator {
	d, ok := sp.(objects.Describer)
	if !ok {
		panic(fmt.Sprintf("workload: spec %q does not describe its ops", sp.Name()))
	}
	g := &Generator{sp: sp, KeySpace: 64}
	for _, oi := range d.Ops() {
		if oi.Kind == objects.KindUpdate {
			g.updates = append(g.updates, oi)
		} else {
			g.reads = append(g.reads, oi)
		}
	}
	return g
}

// Stream returns n steps for one process: updates with probability
// updatePct/100, reads otherwise, drawn deterministically from seed.
func (g *Generator) Stream(seed int64, n, updatePct int) []Step {
	rng := rand.New(rand.NewSource(seed))
	steps := make([]Step, 0, n)
	for i := 0; i < n; i++ {
		var oi objects.OpInfo
		isUpdate := rng.Intn(100) < updatePct
		if isUpdate || len(g.reads) == 0 {
			oi = g.updates[rng.Intn(len(g.updates))]
			isUpdate = true
		} else {
			oi = g.reads[rng.Intn(len(g.reads))]
		}
		st := Step{Code: oi.Code, IsUpdate: isUpdate}
		for k := 0; k < oi.Arity; k++ {
			st.Args = append(st.Args, uint64(rng.Int63n(int64(g.KeySpace)))+1)
		}
		steps = append(steps, st)
	}
	return steps
}

// Spec returns the generator's object specification.
func (g *Generator) Spec() spec.Spec { return g.sp }
