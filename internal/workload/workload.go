// Package workload generates deterministic, seeded operation streams for
// the shipped objects, used by the stress tests, the crash-injection
// harness and the benchmark tables.
package workload

import (
	"fmt"
	"math/rand"
	"os"

	"repro/internal/objects"
	"repro/internal/spec"
)

// Step is one generated operation invocation.
type Step struct {
	Code     uint64
	Args     []uint64
	IsUpdate bool
}

// Handle is the per-process operation surface RunSteps drives;
// core.Handle satisfies it.
type Handle interface {
	Update(code uint64, args ...uint64) (ret, id uint64, err error)
	Read(code uint64, args ...uint64) uint64
}

// RunSteps executes steps in order against h, the one step-dispatch
// loop shared by the throughput harnesses (BenchmarkThroughput* and
// `onllbench -exp et`) so both always measure identical behaviour. It
// stops at the first update error.
func RunSteps(h Handle, steps []Step) error {
	for _, st := range steps {
		if st.IsUpdate {
			if _, _, err := h.Update(st.Code, st.Args...); err != nil {
				return err
			}
		} else {
			h.Read(st.Code, st.Args...)
		}
	}
	return nil
}

// Generator produces deterministic op streams for one object spec.
type Generator struct {
	sp      spec.Spec
	updates []objects.OpInfo
	reads   []objects.OpInfo
	// KeySpace bounds generated argument values (small spaces create
	// contention and collisions on maps/sets).
	KeySpace uint64
}

// NewGenerator builds a generator for sp, which must describe its ops.
func NewGenerator(sp spec.Spec) *Generator {
	d, ok := sp.(objects.Describer)
	if !ok {
		panic(fmt.Sprintf("workload: spec %q does not describe its ops", sp.Name()))
	}
	g := &Generator{sp: sp, KeySpace: 64}
	for _, oi := range d.Ops() {
		if oi.Kind == objects.KindUpdate {
			g.updates = append(g.updates, oi)
		} else {
			g.reads = append(g.reads, oi)
		}
	}
	return g
}

// Stream returns n steps for one process: updates with probability
// updatePct/100, reads otherwise, drawn deterministically from seed.
func (g *Generator) Stream(seed int64, n, updatePct int) []Step {
	rng := rand.New(rand.NewSource(seed))
	steps := make([]Step, 0, n)
	for i := 0; i < n; i++ {
		var oi objects.OpInfo
		isUpdate := rng.Intn(100) < updatePct
		if isUpdate || len(g.reads) == 0 {
			oi = g.updates[rng.Intn(len(g.updates))]
			isUpdate = true
		} else {
			oi = g.reads[rng.Intn(len(g.reads))]
		}
		st := Step{Code: oi.Code, IsUpdate: isUpdate}
		for k := 0; k < oi.Arity; k++ {
			st.Args = append(st.Args, uint64(rng.Int63n(int64(g.KeySpace)))+1)
		}
		steps = append(steps, st)
	}
	return steps
}

// Spec returns the generator's object specification.
func (g *Generator) Spec() spec.Spec { return g.sp }

// ---------------------------------------------------------------------
// YCSB-style keyed workloads over the ordered map.
// ---------------------------------------------------------------------

// YCSBWorkload names one of the classic YCSB mixes, interpreted over the
// ordered map (the index-tree-shaped object): A = 50/50 read/update,
// B = 95/5 read-mostly, C = read-only, D = read-latest (reads chase the
// insert frontier), E = short range scans (served by the ordered map's
// floor/ceil/select reads) plus inserts.
type YCSBWorkload string

const (
	YCSBA YCSBWorkload = "ycsb-a" // 50% OMapGet, 50% OMapPut
	YCSBB YCSBWorkload = "ycsb-b" // 95% OMapGet, 5% OMapPut
	YCSBC YCSBWorkload = "ycsb-c" // 100% OMapGet
	YCSBD YCSBWorkload = "ycsb-d" // 95% OMapGet of recently-inserted keys, 5% fresh-key OMapPut
	YCSBE YCSBWorkload = "ycsb-e" // 95% order queries (floor/ceil/select), 5% OMapPut
)

// YCSB generates deterministic keyed op streams for one of the named
// mixes over objects.OrderedMapSpec. Keys follow a scrambled-zipfian
// distribution over [1, KeySpace] — the skewed popular-key access
// pattern the YCSB paper defines — so a handful of hot keys absorb most
// operations, exactly the contention shape the dense ordered-map state
// must absorb without allocating.
type YCSB struct {
	Mix      YCSBWorkload
	KeySpace uint64  // number of distinct keys (default 1024)
	Theta    float64 // zipfian skew exponent, > 1 (default 1.01 ~ YCSB's 0.99)
}

// NewYCSB returns a generator for the given mix with default
// parameters (1024 keys, skew 1.01 — math/rand's Zipf needs s > 1, so
// this is the closest stable stand-in for YCSB's canonical theta 0.99).
func NewYCSB(mix YCSBWorkload) *YCSB {
	return &YCSB{Mix: mix, KeySpace: 1024, Theta: 1.01}
}

// Spec returns the object the workload targets.
func (y *YCSB) Spec() spec.Spec { return objects.OrderedMapSpec{} }

// UpdatePct returns the mix's update percentage (for fence accounting).
func (y *YCSB) UpdatePct() int {
	switch y.Mix {
	case YCSBA:
		return 50
	case YCSBB, YCSBD, YCSBE:
		return 5
	default:
		return 0
	}
}

// Preload populates the ordered map with the workload's whole key
// space (as YCSB loads its dataset before measuring) through h, so
// read-heavy mixes measure lookups against a populated index rather
// than misses on an empty one. Both throughput harnesses
// (BenchmarkThroughputYCSB and `onllbench -exp et`) load through this
// one function so their datasets can never diverge.
func (y *YCSB) Preload(h Handle) error {
	space := y.KeySpace
	if space == 0 {
		space = 1024
	}
	for k := uint64(1); k <= space; k++ {
		if _, _, err := h.Update(objects.OMapPut, k, k*7); err != nil {
			return err
		}
	}
	return nil
}

// Streams returns one deterministic stream of per steps for each of
// nprocs processes (seeded per process), plus the total update count —
// the shared driver setup for the throughput suites.
func (y *YCSB) Streams(nprocs, per int) (streams [][]Step, updates int) {
	streams = make([][]Step, nprocs)
	for pid := range streams {
		streams[pid] = y.Stream(int64(pid)*7919+1, per)
		for _, st := range streams[pid] {
			if st.IsUpdate {
				updates++
			}
		}
	}
	return streams, updates
}

// Stream returns n steps drawn deterministically from seed. Every
// update is an OMapPut of a zipfian key; reads are OMapGet except in
// mix E, where they rotate over the order queries (floor, ceil,
// select) that make the ordered map more than a hash table.
//
// Mix D is the YCSB "read latest" distribution: inserts mint fresh keys
// above the preloaded space (seed-scrambled so concurrent streams churn
// disjoint regions), and reads draw a zipfian RECENCY rank over the
// keys the stream has inserted so far — rank 0 is the newest insert, so
// reads chase the write frontier. Before the first insert, reads fall
// back to the newest preloaded keys. Each process tracks its own
// recency list (streams are generated independently per process), which
// keeps the workload deterministic while preserving the property that
// matters: a reader's hot set is perpetually a few updates old, so
// cached views are always stale and the view-advance machinery (epoch
// checks, adoption) is exercised under churn rather than at rest.
func (y *YCSB) Stream(seed int64, n int) []Step {
	rng := rand.New(rand.NewSource(seed))
	space := y.KeySpace
	if space == 0 {
		space = 1024
	}
	theta := y.Theta
	if theta <= 1 {
		// math/rand's Zipf requires s > 1; 1.01 is the closest stable
		// approximation of YCSB's canonical theta = 0.99 skew.
		theta = 1.01
	}
	zipf := rand.NewZipf(rng, theta, 1, space-1)
	updatePct := y.UpdatePct()
	steps := make([]Step, 0, n)
	var inserted []uint64 // mix D: this stream's inserts, oldest first
	for i := 0; i < n; i++ {
		// Scramble the zipfian rank so hot keys spread over the key space
		// (YCSB's "scrambled zipfian") instead of clustering at 1.
		k := 1 + scramble(zipf.Uint64())%space
		isUpdate := rng.Intn(100) < updatePct
		if y.Mix == YCSBD {
			if isUpdate {
				// Mint a fresh key above the preload, in a seed-local
				// region so parallel streams extend the index rather
				// than overwrite each other's frontier. Regions are
				// space*8 keys wide and drawn from 2^24 slots, so even
				// a 64-stream suite collides with negligible
				// probability (~64^2/2^25) and no realistic stream
				// outgrows its region (5% of n inserts vs 8192 slots).
				k = space + 1 + (scramble(uint64(seed))%(1<<24))*(space*8) + uint64(len(inserted))
				inserted = append(inserted, k)
			} else if len(inserted) > 0 {
				r := zipf.Uint64() // skewed toward 0 = most recent
				if r >= uint64(len(inserted)) {
					r = uint64(len(inserted)) - 1
				}
				k = inserted[uint64(len(inserted))-1-r]
			} else {
				k = space - zipf.Uint64()%space // newest preloaded keys
			}
		}
		switch {
		case isUpdate:
			steps = append(steps, Step{
				Code: objects.OMapPut, IsUpdate: true,
				Args: []uint64{k, rng.Uint64() >> 16},
			})
		case y.Mix == YCSBE:
			switch i % 3 {
			case 0:
				steps = append(steps, Step{Code: objects.OMapFloor, Args: []uint64{k}})
			case 1:
				steps = append(steps, Step{Code: objects.OMapCeil, Args: []uint64{k}})
			default:
				steps = append(steps, Step{Code: objects.OMapSelect, Args: []uint64{k % 64}})
			}
		default:
			steps = append(steps, Step{Code: objects.OMapGet, Args: []uint64{k}})
		}
	}
	return steps
}

// scramble is the YCSB fnv-style rank scrambler (64-bit mix).
func scramble(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// ---------------------------------------------------------------------
// Shared sizing policy for the throughput suites.
// ---------------------------------------------------------------------

// ThroughputCompactEvery and ThroughputLogCapacity return the instance
// geometry both throughput harnesses (BenchmarkThroughput* and
// `onllbench -exp et`) use for nprocs simulated processes, so the JSON
// artifact and the Go benchmarks always measure the same configuration
// (pfences/op depends on CompactEvery exactly). Past 8 processes the
// per-process logs shrink — slot width scales with the fuzzy-window
// bound, i.e. with nprocs — and compaction tightens, keeping 64 logs
// inside a CI-class memory budget.
func ThroughputCompactEvery(nprocs int) int {
	if nprocs > 8 {
		return 1 << 7
	}
	return 1 << 10
}

// ThroughputLogCapacity returns the per-process log slot count.
func ThroughputLogCapacity(nprocs int) int {
	if nprocs > 8 {
		return 1 << 9
	}
	return 1 << 12
}

// ThroughputPoolBytes returns the pool size fitting nprocs such logs.
func ThroughputPoolBytes(nprocs int) int {
	if nprocs > 8 {
		return 1 << 27
	}
	return 1 << 26
}

// ReadFastPathEnabled is the suite-wide default for core's
// Config.ReadFastPath: on, unless the ONLL_READ_FASTPATH environment
// variable is "off". CI runs a fast-path-off leg with it so both
// configurations stay green; the throughput harnesses and the
// read-heavy crash sweeps all take their default from here.
func ReadFastPathEnabled() bool {
	return os.Getenv("ONLL_READ_FASTPATH") != "off"
}

// DeltaSnapshotLeg resolves one sweep iteration's core.Config
// DeltaSnapshots flag: the ONLL_DELTA_SNAPSHOTS environment variable
// forces every leg on ("on") or off ("off") — CI's delta-compaction
// matrix legs use "on" — and anything else falls back to alt, the
// sweep's own per-iteration alternation, so default runs cover both
// compaction schemes in the same sweep.
func DeltaSnapshotLeg(alt bool) bool {
	switch os.Getenv("ONLL_DELTA_SNAPSHOTS") {
	case "on":
		return true
	case "off":
		return false
	}
	return alt
}
