package spec

import (
	"testing"
	"testing/quick"
)

func TestOpEncodeDecodeRoundTrip(t *testing.T) {
	f := func(code, a0, a1, a2, id uint64) bool {
		op := Op{Code: code, Args: [3]uint64{a0, a1, a2}, ID: id}
		return DecodeOp(op.Encode(nil)) == op
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOpEncodeAppends(t *testing.T) {
	prefix := []uint64{9, 9}
	op := Op{Code: 1, Args: [3]uint64{2, 3, 4}, ID: 5}
	out := op.Encode(prefix)
	if len(out) != 2+OpWords || out[0] != 9 || out[2] != 1 || out[6] != 5 {
		t.Fatalf("encode: %v", out)
	}
}

func TestMakeSplitID(t *testing.T) {
	f := func(pid uint8, seq uint64) bool {
		p := int(pid % 64)
		s := seq & (1<<48 - 1)
		if s == 0 {
			s = 1
		}
		id := MakeID(p, s)
		gp, gs := SplitID(id)
		return gp == p && gs == s && id != 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIDZeroIsReserved(t *testing.T) {
	if MakeID(0, 1) == 0 {
		t.Fatal("MakeID(0,1) collides with the reserved id 0")
	}
	pid, _ := SplitID(0)
	if pid >= 0 {
		t.Fatalf("SplitID(0) returned valid pid %d", pid)
	}
}

func TestSentinelsDistinct(t *testing.T) {
	vals := []uint64{RetEmpty, RetMissing, RetFail, RetOK}
	for i := range vals {
		for j := i + 1; j < len(vals); j++ {
			if vals[i] == vals[j] {
				t.Fatalf("sentinels %d and %d collide", i, j)
			}
		}
	}
}

// toySpec is a minimal in-package spec for Replay/Equal tests.
type toySpec struct{}

func (toySpec) Name() string { return "toy" }
func (toySpec) New() State   { return &toyState{} }

type toyState struct{ sum uint64 }

func (s *toyState) Apply(op Op) uint64 { s.sum += op.Args[0]; return s.sum }
func (s *toyState) Read(Op) uint64     { return s.sum }
func (s *toyState) Clone() State       { c := *s; return &c }
func (s *toyState) Snapshot() []uint64 { return []uint64{s.sum} }
func (s *toyState) Restore(w []uint64) error {
	s.sum = w[0]
	return nil
}

func TestReplay(t *testing.T) {
	ops := []Op{{Args: [3]uint64{1}}, {Args: [3]uint64{2}}, {Args: [3]uint64{3}}}
	st, ret := Replay(toySpec{}, ops)
	if ret != 6 || st.Read(Op{}) != 6 {
		t.Fatalf("replay: ret=%d state=%d", ret, st.Read(Op{}))
	}
	_, ret = Replay(toySpec{}, nil)
	if ret != RetOK {
		t.Fatalf("empty replay ret=%d", ret)
	}
}

func TestEqual(t *testing.T) {
	a, _ := Replay(toySpec{}, []Op{{Args: [3]uint64{5}}})
	b, _ := Replay(toySpec{}, []Op{{Args: [3]uint64{2}}, {Args: [3]uint64{3}}})
	c, _ := Replay(toySpec{}, []Op{{Args: [3]uint64{4}}})
	if !Equal(a, b) {
		t.Fatal("equal states compared unequal")
	}
	if Equal(a, c) {
		t.Fatal("unequal states compared equal")
	}
}
