// Package spec defines the deterministic sequential-object model the
// universal construction operates on (paper Section 2.2).
//
// The state of an object is, by definition, the sequence of update
// operations applied to it starting with INITIALIZE; update operations
// are deterministic, so replaying the sequence always yields the same
// state. The construction assumes a compute method that, given a
// read-only operation and a state, returns the operation's value; for an
// update, the value is computed on the state immediately after appending
// the update. State/Spec encode exactly that contract.
//
// Operations are fixed-width records (an opcode, three word arguments and
// a unique id) so that persistent-log entries have a deterministic
// layout. Objects whose natural keys are richer than uint64 are expected
// to map them down (e.g. by interning); every object shipped in
// internal/objects uses uint64 keys/values directly.
package spec

import "fmt"

// OpWords is the number of 64-bit words an operation occupies on the
// persistent log.
const OpWords = 5

// Op is one operation invocation: an object-specific opcode, up to three
// word-sized arguments, and a unique id used for detectable execution
// (after recovery, a process can ask whether the op with a given id was
// linearized before the crash).
type Op struct {
	Code uint64
	Args [3]uint64
	ID   uint64
}

// Encode appends the wire representation of op to dst.
func (o Op) Encode(dst []uint64) []uint64 {
	return append(dst, o.Code, o.Args[0], o.Args[1], o.Args[2], o.ID)
}

// DecodeOp reads one operation from src.
func DecodeOp(src []uint64) Op {
	return Op{Code: src[0], Args: [3]uint64{src[1], src[2], src[3]}, ID: src[4]}
}

func (o Op) String() string {
	return fmt.Sprintf("op{code=%d args=%v id=%#x}", o.Code, o.Args, o.ID)
}

// MakeID builds a globally unique operation id from a process id and that
// process's per-process sequence number. ID 0 is reserved for "no id"
// (INITIALIZE, recovery-internal ops), so seq starts at 1.
func MakeID(pid int, seq uint64) uint64 {
	return uint64(pid+1)<<48 | (seq & (1<<48 - 1))
}

// SplitID is the inverse of MakeID.
func SplitID(id uint64) (pid int, seq uint64) {
	return int(id>>48) - 1, id & (1<<48 - 1)
}

// Sentinel return values used by the shipped objects.
const (
	// RetEmpty is returned by removal/inspection ops on empty containers.
	RetEmpty = ^uint64(0)
	// RetMissing is returned by lookups of absent keys.
	RetMissing = ^uint64(0) - 1
	// RetFail is returned by failed conditional ops (CAS, overdraft...).
	RetFail = ^uint64(0) - 2
	// RetOK is the generic success value for ops without a payload result.
	RetOK = uint64(1)
)

// State is a mutable sequential object state.
//
// Apply and Read must be deterministic. Snapshot must be deterministic
// too (two states reached by the same update sequence must produce equal
// snapshots) — checkers compare states by snapshot, and snapshots are
// written to the persistent log by the compaction extension (paper
// Section 8), then restored during recovery.
type State interface {
	// Apply executes an update operation, mutating the state, and
	// returns the operation's return value (computed on the state
	// immediately after the update, per the paper's compute contract).
	Apply(op Op) uint64
	// Read executes a read-only operation (no mutation).
	Read(op Op) uint64
	// Clone returns an independent deep copy.
	Clone() State
	// Snapshot serializes the state to words.
	Snapshot() []uint64
	// Restore replaces the state with a previously snapshotted one.
	Restore(words []uint64) error
}

// Copier is an optional State extension: CopyFrom replaces the receiver
// with a deep copy of src (which must be a state of the same spec),
// reusing the receiver's existing storage where possible. It is the
// allocation-light alternative to Clone used by core's view-adoption
// fast path, where the same destination state is overwritten over and
// over. States that do not implement it are copied through
// Snapshot/Restore instead.
type Copier interface {
	CopyFrom(src State)
}

// Sizer is an optional State extension paired with Copier: SizeHint
// returns the approximate size of the state in 64-bit words — the
// volume one Copy into a same-shaped receiver moves. It must be O(1)
// and allocation-free: core's cost-aware adoption policy consults it
// on the read path to price a state copy against replaying the trace
// suffix, so it may be called before every lagging read. The hint is
// an estimate (capacity vs live entries, table overheads), not a wire
// format; only its magnitude matters.
type Sizer interface {
	SizeHint() int
}

// SizeHint returns st's size hint in words, or 0 when st does not
// implement Sizer (callers must treat 0 as "unknown", never as
// "empty" — an empty sized state still reports its fixed overhead).
func SizeHint(st State) int {
	if s, ok := st.(Sizer); ok {
		return s.SizeHint()
	}
	return 0
}

// DeltaEmitter is an optional State extension for delta-chain
// compaction (DESIGN.md §3.8): EmitDelta appends to dst a compact
// object-specific diff covering exactly the effect of ops — the updates
// applied to this state since the chain's previous cut — and returns
// the extended slice with ok true. The receiver is the state AFTER ops
// have been applied, so emitters typically dedupe the keys ops touched
// and serialize their current values (or tombstones). Returning ok
// false declines this particular delta (e.g. the op mix contains a code
// the emitter cannot summarize); the caller then falls back to the
// universal op-replay encoding. The emitted words must round-trip
// through the paired DeltaApplier: applying them to any state that has
// seen the same prefix must yield a state Equal to the receiver.
//
// Like Snapshot, the emitted diff must be deterministic — two states
// reached by the same update sequence must emit identical words for the
// same ops. EmitDelta must not mutate the state and should not allocate
// beyond growing dst.
type DeltaEmitter interface {
	EmitDelta(dst []uint64, ops []Op) ([]uint64, bool)
}

// DeltaApplier is the restore-side pair of DeltaEmitter: ApplyDelta
// folds an emitted diff into the state (which holds the chain prefix up
// to the delta's predecessor). It validates the words as untrusted
// input — a corrupt diff must return an error, never panic or silently
// misapply. States implementing DeltaEmitter must implement
// DeltaApplier too; recovery checks for the pair together.
type DeltaApplier interface {
	ApplyDelta(words []uint64) error
}

// Copy replaces dst's contents with src's, via Copier when dst supports
// it and through the snapshot wire format otherwise.
func Copy(dst, src State) {
	if c, ok := dst.(Copier); ok {
		c.CopyFrom(src)
		return
	}
	if err := dst.Restore(src.Snapshot()); err != nil {
		panic(fmt.Sprintf("spec: Copy via snapshot failed: %v", err))
	}
}

// Spec is a deterministic sequential object specification: a name and a
// constructor for the state immediately after INITIALIZE.
type Spec interface {
	Name() string
	New() State
}

// Replay applies ops in order to a fresh state and returns it, along with
// the return value of the last op (RetOK for an empty sequence). It is
// the reference "state = sequence of updates" evaluator used by tests
// and checkers.
func Replay(s Spec, ops []Op) (State, uint64) {
	st := s.New()
	ret := RetOK
	for _, op := range ops {
		ret = st.Apply(op)
	}
	return st, ret
}

// Equal reports whether two states serialize identically.
func Equal(a, b State) bool {
	sa, sb := a.Snapshot(), b.Snapshot()
	if len(sa) != len(sb) {
		return false
	}
	for i := range sa {
		if sa[i] != sb[i] {
			return false
		}
	}
	return true
}
