package pmem

import "testing"

// TestPendingSetIndexCrossing pins the pending-set dedupe across the
// linear-scan → index-map crossing (pendingScanMax): compaction
// snapshots flush thousands of lines under one fence, which the old
// always-linear scan turned O(lines²). The semantics must be identical
// on both sides of the crossing: re-flushing a line REPLACES its
// snapshot (the fence commits the newest flushed value, not the
// first), every distinct line commits exactly once, and the set drains
// for reuse.
func TestPendingSetIndexCrossing(t *testing.T) {
	const lines = 4 * pendingScanMax // far past the crossing
	pool := New(lines*LineSize+1<<16, nil)
	base := pool.MustAlloc(lines * LineSize)
	pid := 0

	write := func(round uint64) {
		for i := 0; i < lines; i++ {
			a := base + Addr(i*LineSize)
			pool.Store(pid, a, round*1000+uint64(i))
			pool.Flush(pid, a)
		}
	}
	// Two rounds before one fence: every line is flushed twice, the
	// second flush crossing into (and hitting) the index map. The
	// committed values must be round 2's.
	write(1)
	write(2)
	if got, want := len(pool.pending[pid].entries), lines; got != want {
		t.Fatalf("pending set holds %d entries after dedupe, want %d", got, want)
	}
	st := pool.StatsOf(pid)
	pool.Fence(pid)
	if got := pool.StatsOf(pid).LinesPersisted - st.LinesPersisted; got != lines {
		t.Fatalf("fence persisted %d lines, want %d", got, lines)
	}
	for i := 0; i < lines; i++ {
		a := base + Addr(i*LineSize)
		if got, want := pool.DurableWord(a), 2000+uint64(i); got != want {
			t.Fatalf("line %d durable word %d, want %d (stale snapshot survived the dedupe)", i, got, want)
		}
	}
	// Drained for reuse: the next small batch dedupes linearly again.
	if got := len(pool.pending[pid].entries); got != 0 {
		t.Fatalf("pending set not drained: %d entries", got)
	}
	a := base
	pool.Store(pid, a, 7)
	pool.Flush(pid, a)
	pool.Store(pid, a, 8)
	pool.Flush(pid, a)
	if got := len(pool.pending[pid].entries); got != 1 {
		t.Fatalf("small-set dedupe broken after drain: %d entries, want 1", got)
	}
	pool.Fence(pid)
	if got := pool.DurableWord(a); got != 8 {
		t.Fatalf("durable word %d, want 8", got)
	}
}
