package pmem

import (
	"bytes"
	"math/rand"
	"testing"
)

// Robustness: ReadImage must reject (never panic on, never silently
// accept) arbitrary corruptions of a valid image.
func TestReadImageCorruptionFuzz(t *testing.T) {
	p := New(1<<13, nil)
	a := p.MustAlloc(256)
	for i := 0; i < 16; i++ {
		p.Store(0, a+Addr(i*WordSize), uint64(i)*31+7)
	}
	p.Persist(0, a, 256)
	var buf bytes.Buffer
	if err := p.WriteImage(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		img := append([]byte(nil), valid...)
		switch trial % 4 {
		case 0: // flip a byte
			img[rng.Intn(len(img))] ^= byte(rng.Intn(255) + 1)
		case 1: // truncate
			img = img[:rng.Intn(len(img))]
		case 2: // flip a bit in the header
			img[rng.Intn(32)] ^= 1 << uint(rng.Intn(8))
		case 3: // garbage prefix
			for i := 0; i < 16; i++ {
				img[i] = byte(rng.Int())
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: ReadImage panicked: %v", trial, r)
				}
			}()
			q, err := ReadImage(bytes.NewReader(img), nil)
			if err == nil {
				// Accepting is only OK if the corruption was a no-op
				// (possible when the flipped byte equals its original).
				if !bytes.Equal(img, valid) {
					// Verify the restored content actually matches; if
					// it does, the corruption hit padding — fine.
					for i := 0; i < 16; i++ {
						if q.DurableWord(a+Addr(i*WordSize)) != uint64(i)*31+7 {
							t.Fatalf("trial %d: corrupted image accepted with wrong content", trial)
						}
					}
				}
			}
		}()
	}
}

// Random garbage must never panic ReadImage.
func TestReadImageGarbageFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(4096)
		img := make([]byte, n)
		rng.Read(img)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: panic on garbage: %v", trial, r)
				}
			}()
			if _, err := ReadImage(bytes.NewReader(img), nil); err == nil {
				t.Fatalf("trial %d: garbage accepted", trial)
			}
		}()
	}
}
