package pmem

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"os"
)

// Pool images can be written to and restored from a file, which lets the
// crash/recovery demo (cmd/onllcrash) span real OS processes: phase one
// runs a workload, "crashes" (only the durable image is written out), and
// phase two recovers from the file exactly as a machine would recover
// from its NVDIMM after a power cycle.

const imageMagic = 0x4f4e4c4c504d454d // "ONLLPMEM"

// WriteImage serializes the *durable* contents of the pool (the cache is
// volatile by definition and is not written). Statistics and allocation
// frontier are included so a restored pool can keep allocating.
func (p *Pool) WriteImage(w io.Writer) error {
	p.lockAll()
	defer p.unlockAll()
	p.allocMu.Lock()
	defer p.allocMu.Unlock()
	bw := bufio.NewWriter(w)
	h := fnv.New64a()
	mw := io.MultiWriter(bw, h)
	hdr := []uint64{imageMagic, uint64(len(p.persistent)), uint64(p.top), p.crashes.Load()}
	for _, v := range hdr {
		if err := binary.Write(mw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := binary.Write(mw, binary.LittleEndian, p.persistent); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, h.Sum64()); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadImage restores a pool from an image produced by WriteImage. The
// returned pool has an empty cache (as after a crash) and the given gate.
func ReadImage(r io.Reader, gate Gate) (*Pool, error) {
	br := bufio.NewReader(r)
	h := fnv.New64a()
	tr := io.TeeReader(br, h)
	var hdr [4]uint64
	for i := range hdr {
		if err := binary.Read(tr, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("pmem: short image header: %w", err)
		}
	}
	if hdr[0] != imageMagic {
		return nil, fmt.Errorf("pmem: bad image magic %#x", hdr[0])
	}
	words := hdr[1]
	if words == 0 || words%LineWords != 0 || words > (1<<32) {
		return nil, fmt.Errorf("pmem: implausible image size %d words", words)
	}
	p := New(int(words*WordSize), nil)
	if gate != nil {
		p.SetGate(gate)
	}
	// New rounded size up to whole lines; words is already line-aligned,
	// so the image fills the persistent slice exactly.
	if err := binary.Read(tr, binary.LittleEndian, p.persistent); err != nil {
		return nil, fmt.Errorf("pmem: short image body: %w", err)
	}
	sum := h.Sum64()
	var want uint64
	if err := binary.Read(br, binary.LittleEndian, &want); err != nil {
		return nil, fmt.Errorf("pmem: missing image checksum: %w", err)
	}
	if sum != want {
		return nil, fmt.Errorf("pmem: image checksum mismatch (got %#x want %#x)", sum, want)
	}
	p.top = Addr(hdr[2])
	p.crashes.Store(hdr[3])
	return p, nil
}

// Gate is re-exported so callers of ReadImage do not need to import
// internal/sched just to pass nil.
type Gate = interface{ Step(pid int, point string) }

// SaveFile writes the durable image to path (atomic rename).
func (p *Pool) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := p.WriteImage(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile restores a pool image from path.
func LoadFile(path string, gate Gate) (*Pool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadImage(f, gate)
}
