package pmem

import "testing"

// TestFaultPlanDeterministic pins that the same seed yields the same
// plan and the same corruption.
func TestFaultPlanDeterministic(t *testing.T) {
	a := PlanFaults(42, 8, 2, 100)
	b := PlanFaults(42, 8, 2, 100)
	if len(a.Faults) != 8 {
		t.Fatalf("plan has %d faults, want 8", len(a.Faults))
	}
	for i := range a.Faults {
		if a.Faults[i] != b.Faults[i] {
			t.Fatalf("fault %d differs: %+v vs %+v", i, a.Faults[i], b.Faults[i])
		}
		if f := a.Faults[i]; f.Line < 2 || f.Line >= 100 {
			t.Fatalf("fault %d line %d outside [2,100)", i, f.Line)
		}
		if c := a.Faults[i].Class; c < FaultBitFlip || c > FaultStuckLine {
			t.Fatalf("fault %d class %v out of range", i, c)
		}
	}
	if p := PlanFaults(1, 4, 10, 10); len(p.Faults) != 0 {
		t.Fatalf("empty line range produced %d faults", len(p.Faults))
	}
}

// TestFaultClassesCorrupt checks each class actually changes the
// durable image in its characteristic way.
func TestFaultClassesCorrupt(t *testing.T) {
	const val = 0x0123456789abcdef
	for _, class := range []FaultClass{FaultBitFlip, FaultTornLine, FaultStuckLine} {
		p := New(1<<16, nil)
		base := p.MustAlloc(LineSize)
		for w := 0; w < LineWords; w++ {
			p.Store(0, base+Addr(w*WordSize), val)
		}
		p.Persist(0, base, LineSize)
		p.Crash(DropAll) // drop the cache so loads read NVM

		n := p.InjectFaults(FaultPlan{Faults: []Fault{{Class: class, Line: base.Line(), Seed: 7}}})
		if n != 1 {
			t.Fatalf("%v: %d faults landed, want 1", class, n)
		}
		changed := 0
		var words [LineWords]uint64
		for w := 0; w < LineWords; w++ {
			words[w] = p.Load(0, base+Addr(w*WordSize))
			if words[w] != val {
				changed++
			}
		}
		switch class {
		case FaultBitFlip:
			if changed != 1 {
				t.Fatalf("bitflip changed %d words, want 1", changed)
			}
		case FaultTornLine:
			if changed == 0 || changed == LineWords {
				t.Fatalf("tornline changed %d words, want a proper non-empty subset", changed)
			}
		case FaultStuckLine:
			if changed == 0 {
				t.Fatal("stuckline changed nothing")
			}
			for w := 1; w < LineWords; w++ {
				if words[w] != words[0] {
					t.Fatalf("stuckline left mixed words: %#x vs %#x", words[w], words[0])
				}
			}
			if words[0] != 0 && words[0] != ^uint64(0) {
				t.Fatalf("stuckline value %#x, want all-0 or all-1", words[0])
			}
		}
	}
}

// TestFaultLatentUntilCacheDrop pins the latent-fault model: a fault on
// a cache-resident line stays invisible to Load (the volatile copy
// masks it) and surfaces only once the cache is dropped by a crash.
// DurableWord — what the scrubber uses — sees it immediately.
func TestFaultLatentUntilCacheDrop(t *testing.T) {
	p := New(1<<16, nil)
	base := p.MustAlloc(LineSize)
	p.Store(0, base, 0x1111)
	p.Persist(0, base, WordSize)
	// The line is durable AND cache-resident. Stuck it at zero in NVM.
	p.InjectFaults(FaultPlan{Faults: []Fault{{Class: FaultStuckLine, Line: base.Line(), Seed: 2}}})
	if got := p.Load(0, base); got != 0x1111 {
		t.Fatalf("cached load saw the fault early: %#x", got)
	}
	if got := p.DurableWord(base); got != 0 {
		t.Fatalf("DurableWord missed the injected fault: %#x", got)
	}
	p.Crash(DropAll)
	if got := p.Load(0, base); got != 0 {
		t.Fatalf("fault did not surface after crash: %#x", got)
	}
}

// TestFaultHealedByRePersist documents that a fence re-persisting the
// damaged line overwrites the fault — the "healed before observed"
// outcome sweeps must tolerate.
func TestFaultHealedByRePersist(t *testing.T) {
	p := New(1<<16, nil)
	base := p.MustAlloc(LineSize)
	p.Store(0, base, 0x2222)
	p.Persist(0, base, WordSize)
	p.InjectFaults(FaultPlan{Faults: []Fault{{Class: FaultTornLine, Line: base.Line(), Seed: 3}}})
	p.Store(0, base, 0x3333) // cache still resident: full line content intact
	p.Persist(0, base, WordSize)
	p.Crash(DropAll)
	if got := p.Load(0, base); got != 0x3333 {
		t.Fatalf("re-persist did not heal the line: %#x", got)
	}
}
