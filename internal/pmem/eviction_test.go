package pmem

import "testing"

func TestEvictionMakesDataDurableEarly(t *testing.T) {
	p := New(1<<16, nil)
	p.SetEviction(func(uint64, uint64) bool { return true }) // evict always
	a := p.MustAlloc(64)
	p.Store(0, a, 5)
	// No flush, no fence — but the eviction wrote it back.
	if got := p.DurableWord(a); got != 5 {
		t.Fatalf("always-evict policy did not write back: %d", got)
	}
	if p.Evictions() != 1 {
		t.Fatalf("evictions=%d", p.Evictions())
	}
	// Crash with DropAll: the evicted value is durable regardless.
	p.Crash(DropAll)
	if got := p.Load(0, a); got != 5 {
		t.Fatalf("evicted value lost: %d", got)
	}
}

func TestEvictionNeverLosesFencedData(t *testing.T) {
	p := New(1<<18, nil)
	p.SetEviction(SeededEviction(9, 3))
	a := p.MustAlloc(LineSize * 8)
	for i := 0; i < 8*LineWords; i++ {
		p.Store(0, a+Addr(i*WordSize), uint64(i)+1)
	}
	p.Persist(0, a, 8*LineSize)
	p.Crash(DropAll)
	for i := 0; i < 8*LineWords; i++ {
		if got := p.Load(0, a+Addr(i*WordSize)); got != uint64(i)+1 {
			t.Fatalf("word %d lost under eviction: %d", i, got)
		}
	}
}

func TestSeededEvictionDeterministic(t *testing.T) {
	e1 := SeededEviction(4, 5)
	e2 := SeededEviction(4, 5)
	hits := 0
	for i := uint64(0); i < 5000; i++ {
		if e1(i%37, i) != e2(i%37, i) {
			t.Fatal("not deterministic")
		}
		if e1(i%37, i) {
			hits++
		}
	}
	if hits < 500 || hits > 1800 {
		t.Fatalf("rate off: %d/5000 at 1-in-5", hits)
	}
	// rate 0 coerces to 1 (always).
	if !SeededEviction(1, 0)(0, 0) {
		t.Fatal("rate-0 policy should evict always")
	}
}

func TestEvictionDisabledByDefault(t *testing.T) {
	p := New(1<<14, nil)
	a := p.MustAlloc(64)
	for i := 0; i < 100; i++ {
		p.Store(0, a, uint64(i))
	}
	if p.Evictions() != 0 {
		t.Fatal("evictions without a policy")
	}
	if got := p.DurableWord(a); got != 0 {
		t.Fatalf("data durable without flush/fence/eviction: %d", got)
	}
}
