package pmem

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestStoreLoadRoundTrip(t *testing.T) {
	p := New(1<<16, nil)
	a := p.MustAlloc(256)
	for i := 0; i < 32; i++ {
		p.Store(0, a+Addr(i*WordSize), uint64(i)*3+1)
	}
	for i := 0; i < 32; i++ {
		if got := p.Load(0, a+Addr(i*WordSize)); got != uint64(i)*3+1 {
			t.Fatalf("word %d: got %d", i, got)
		}
	}
}

func TestStoreIsVolatileUntilFenced(t *testing.T) {
	p := New(1<<16, nil)
	a := p.MustAlloc(64)
	p.Store(0, a, 42)
	if got := p.DurableWord(a); got != 0 {
		t.Fatalf("store reached NVM without flush+fence: %d", got)
	}
	p.Flush(0, a)
	if got := p.DurableWord(a); got != 0 {
		t.Fatalf("flush alone made data durable: %d", got)
	}
	p.Fence(0)
	if got := p.DurableWord(a); got != 42 {
		t.Fatalf("after fence: durable=%d want 42", got)
	}
}

func TestCrashDropAllLosesUnfencedWrites(t *testing.T) {
	p := New(1<<16, nil)
	a := p.MustAlloc(128)
	p.Store(0, a, 1)
	p.Flush(0, a)
	p.Fence(0) // durable
	p.Store(0, a, 2)
	p.Flush(0, a)       // in flight, not fenced
	p.Store(0, a+64, 3) // dirty, never flushed
	p.Crash(DropAll)
	if got := p.Load(0, a); got != 1 {
		t.Fatalf("fenced value lost or unfenced survived: %d", got)
	}
	if got := p.Load(0, a+64); got != 0 {
		t.Fatalf("never-flushed line survived DropAll: %d", got)
	}
}

func TestCrashKeepAllCommitsInFlight(t *testing.T) {
	p := New(1<<16, nil)
	a := p.MustAlloc(128)
	p.Store(0, a, 7)
	p.Flush(0, a)
	p.Store(0, a+64, 9) // dirty unflushed: eviction may persist it
	p.Crash(KeepAll)
	if got := p.Load(0, a); got != 7 {
		t.Fatalf("in-flight flush dropped under KeepAll: %d", got)
	}
	if got := p.Load(0, a+64); got != 9 {
		t.Fatalf("evictable dirty line dropped under KeepAll: %d", got)
	}
}

func TestFlushSnapshotsLineAtFlushTime(t *testing.T) {
	// clwb semantics: stores after the flush but before the fence are
	// not necessarily covered by that flush.
	p := New(1<<16, nil)
	a := p.MustAlloc(64)
	p.Store(0, a, 1)
	p.Flush(0, a)
	p.Store(0, a, 2) // after the flush
	p.Fence(0)
	if got := p.DurableWord(a); got != 1 {
		t.Fatalf("fence committed post-flush store: durable=%d want 1", got)
	}
	// The cache still has 2; a second flush+fence persists it.
	p.Flush(0, a)
	p.Fence(0)
	if got := p.DurableWord(a); got != 2 {
		t.Fatalf("second flush+fence: durable=%d want 2", got)
	}
}

func TestPersistentFenceAccounting(t *testing.T) {
	p := New(1<<16, nil)
	a := p.MustAlloc(256)
	p.Fence(0) // no pending: plain fence
	st := p.StatsOf(0)
	if st.Fences != 1 || st.PersistentFences != 0 {
		t.Fatalf("plain fence miscounted: %+v", st)
	}
	p.Store(0, a, 1)
	p.Flush(0, a)
	p.Fence(0) // pending: persistent fence
	st = p.StatsOf(0)
	if st.Fences != 1 || st.PersistentFences != 1 {
		t.Fatalf("persistent fence miscounted: %+v", st)
	}
	// Flushing a clean line then fencing is a plain fence.
	p.Flush(0, a)
	p.Fence(0)
	st = p.StatsOf(0)
	if st.Fences != 2 || st.PersistentFences != 1 {
		t.Fatalf("clean-line flush should not make the fence persistent: %+v", st)
	}
}

func TestFencesArePerProcess(t *testing.T) {
	p := New(1<<16, nil)
	a := p.MustAlloc(128)
	p.Store(1, a, 5)
	p.Flush(1, a)
	// A fence by process 2 does NOT commit process 1's write-backs.
	p.Fence(2)
	if got := p.DurableWord(a); got != 0 {
		t.Fatalf("cross-process fence committed data: %d", got)
	}
	p.Fence(1)
	if got := p.DurableWord(a); got != 5 {
		t.Fatalf("own fence did not commit: %d", got)
	}
	if st := p.StatsOf(2); st.PersistentFences != 0 || st.Fences != 1 {
		t.Fatalf("p2 stats wrong: %+v", st)
	}
}

func TestCASActsOnCache(t *testing.T) {
	p := New(1<<16, nil)
	a := p.MustAlloc(64)
	if !p.CAS(0, a, 0, 10) {
		t.Fatal("CAS from zero failed")
	}
	if p.CAS(0, a, 0, 11) {
		t.Fatal("stale CAS succeeded")
	}
	if got := p.Load(0, a); got != 10 {
		t.Fatalf("after CAS: %d", got)
	}
	if got := p.DurableWord(a); got != 0 {
		t.Fatalf("CAS wrote NVM directly: %d", got)
	}
}

func TestPersistHelper(t *testing.T) {
	p := New(1<<16, nil)
	a := p.MustAlloc(4 * LineSize)
	for i := 0; i < 4*LineWords; i++ {
		p.Store(0, a+Addr(i*WordSize), uint64(i)+1)
	}
	before := p.StatsOf(0)
	p.Persist(0, a, 4*LineSize)
	st := p.StatsOf(0)
	if st.PersistentFences-before.PersistentFences != 1 {
		t.Fatalf("Persist used %d persistent fences, want 1", st.PersistentFences-before.PersistentFences)
	}
	if st.Flushes-before.Flushes != 4 {
		t.Fatalf("Persist flushed %d lines, want 4", st.Flushes-before.Flushes)
	}
	for i := 0; i < 4*LineWords; i++ {
		if got := p.DurableWord(a + Addr(i*WordSize)); got != uint64(i)+1 {
			t.Fatalf("word %d not durable: %d", i, got)
		}
	}
}

func TestAllocAlignmentAndExhaustion(t *testing.T) {
	p := New(LineSize*8+rootBytes, nil)
	a1 := p.MustAlloc(1)
	if uint64(a1)%LineSize != 0 {
		t.Fatalf("allocation not line-aligned: %#x", uint64(a1))
	}
	a2 := p.MustAlloc(LineSize + 1)
	if uint64(a2)%LineSize != 0 || a2 <= a1 {
		t.Fatalf("second allocation misplaced: %#x", uint64(a2))
	}
	if _, err := p.Alloc(1 << 30); err == nil {
		t.Fatal("oversized allocation succeeded")
	}
	if _, err := p.Alloc(-1); err == nil {
		t.Fatal("negative allocation succeeded")
	}
}

func TestRoots(t *testing.T) {
	p := New(1<<16, nil)
	p.SetRoot(3, 0xdeadbeef)
	p.Crash(DropAll)
	if got := p.Root(3); got != 0xdeadbeef {
		t.Fatalf("root lost in crash: %#x", got)
	}
}

func TestOutOfBoundsPanics(t *testing.T) {
	p := New(1<<12, nil)
	for _, fn := range []func(){
		func() { p.Load(0, Addr(p.Size())) },
		func() { p.Store(0, Addr(p.Size()+8), 1) },
		func() { p.Load(0, 3) }, // unaligned
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestImageRoundTrip(t *testing.T) {
	p := New(1<<14, nil)
	a := p.MustAlloc(256)
	for i := 0; i < 8; i++ {
		p.Store(0, a+Addr(i*WordSize), uint64(i)*7)
	}
	p.Persist(0, a, 256)
	p.Store(0, a, 999) // volatile-only, must not survive the image
	var buf bytes.Buffer
	if err := p.WriteImage(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := ReadImage(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Load(0, a); got != 0 {
		t.Fatalf("volatile store leaked into image: %d", got)
	}
	for i := 1; i < 8; i++ {
		if got := q.Load(0, a+Addr(i*WordSize)); got != uint64(i)*7 {
			t.Fatalf("word %d: %d", i, got)
		}
	}
	// Allocation frontier survives: next alloc does not overlap.
	b := q.MustAlloc(64)
	if b < a+256 {
		t.Fatalf("restored pool re-allocated live memory: %#x", uint64(b))
	}
}

func TestImageChecksumDetectsCorruption(t *testing.T) {
	p := New(1<<13, nil)
	var buf bytes.Buffer
	if err := p.WriteImage(&buf); err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()
	img[len(img)/2] ^= 0xff
	if _, err := ReadImage(bytes.NewReader(img), nil); err == nil {
		t.Fatal("corrupted image accepted")
	}
}

func TestConcurrentMixedTraffic(t *testing.T) {
	p := New(1<<20, nil)
	const nprocs = 8
	regions := make([]Addr, nprocs)
	for i := range regions {
		regions[i] = p.MustAlloc(1024)
	}
	var wg sync.WaitGroup
	for pid := 0; pid < nprocs; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			base := regions[pid]
			for i := 0; i < 500; i++ {
				a := base + Addr((i%16)*WordSize)
				p.Store(pid, a, uint64(i))
				p.Flush(pid, a)
				if i%8 == 0 {
					p.Fence(pid)
				}
				p.Load(pid, a)
			}
			p.Fence(pid)
		}(pid)
	}
	wg.Wait()
	for pid := 0; pid < nprocs; pid++ {
		st := p.StatsOf(pid)
		if st.Stores != 500 || st.Loads != 500 {
			t.Fatalf("p%d stats: %+v", pid, st)
		}
	}
}

func TestSeededOracleDeterministic(t *testing.T) {
	o1 := SeededOracle(42, 1, 2)
	o2 := SeededOracle(42, 1, 2)
	hits := 0
	for line := uint64(0); line < 4096; line++ {
		if o1(line) != o2(line) {
			t.Fatal("oracle not deterministic")
		}
		if o1(line) {
			hits++
		}
	}
	if hits < 1500 || hits > 2600 {
		t.Fatalf("oracle heavily biased: %d/4096 survive at p=1/2", hits)
	}
}

func TestQuickDurabilityInvariant(t *testing.T) {
	// Property: a value that was flushed and fenced survives any crash
	// oracle; a value that was only stored survives DropAll never.
	f := func(vals []uint64, seed uint64) bool {
		if len(vals) == 0 {
			return true
		}
		if len(vals) > 64 {
			vals = vals[:64]
		}
		p := New(1<<16, nil)
		durable := p.MustAlloc(LineSize * 64)
		volatile := p.MustAlloc(LineSize * 64)
		for i, v := range vals {
			da := durable + Addr(i*LineSize)
			p.Store(0, da, v)
			p.Flush(0, da)
			p.Store(0, volatile+Addr(i*LineSize), v|1)
		}
		p.Fence(0)
		p.Crash(SeededOracle(seed, 1, 3))
		for i, v := range vals {
			if p.Load(0, durable+Addr(i*LineSize)) != v {
				return false
			}
		}
		p.Crash(DropAll)
		for i, v := range vals {
			if p.Load(0, durable+Addr(i*LineSize)) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsStringAndAdd(t *testing.T) {
	var s Stats
	s.Add(Stats{Loads: 1, Stores: 2, CASes: 3, Flushes: 4, Fences: 5, PersistentFences: 6, LinesPersisted: 7})
	s.Add(Stats{Loads: 1})
	if s.Loads != 2 || s.PersistentFences != 6 {
		t.Fatalf("Add wrong: %+v", s)
	}
	want := fmt.Sprintf("loads=%d stores=%d cas=%d flushes=%d fences=%d pfences=%d lines=%d", 2, 2, 3, 4, 5, 6, 7)
	if s.String() != want {
		t.Fatalf("String: %q", s.String())
	}
}

func TestVolatileLines(t *testing.T) {
	p := New(1<<16, nil)
	a := p.MustAlloc(LineSize * 4)
	if p.VolatileLines() != 0 {
		t.Fatal("fresh pool has dirty lines")
	}
	p.Store(0, a, 1)
	p.Store(0, a+LineSize, 2)
	if got := p.VolatileLines(); got != 2 {
		t.Fatalf("dirty lines: %d want 2", got)
	}
	p.Flush(0, a)
	p.Flush(0, a+LineSize)
	p.Fence(0)
	if got := p.VolatileLines(); got != 0 {
		t.Fatalf("after persist, dirty lines: %d want 0", got)
	}
}
