package pmem

import (
	"sync"
	"testing"
)

// countingGate records gate points (pmem tests run free-running
// otherwise; this one just counts, it never blocks).
type countingGate struct {
	mu     sync.Mutex
	points map[string]int
}

func (g *countingGate) Step(pid int, point string) {
	g.mu.Lock()
	g.points[point]++
	g.mu.Unlock()
}

// TestStoreRangeMatchesWordStores writes the same data through word
// Stores and through StoreRange and requires identical cache contents,
// identical durability behaviour, and identical Stores statistics (the
// stat still counts words; only the bump granularity changed).
func TestStoreRangeMatchesWordStores(t *testing.T) {
	vals := make([]uint64, 37) // crosses several lines, ragged tail
	for i := range vals {
		vals[i] = uint64(i)*0x9e3779b9 + 1
	}

	a := New(1<<16, nil)
	b := New(1<<16, nil)
	addrA := a.MustAlloc(len(vals) * WordSize)
	addrB := b.MustAlloc(len(vals) * WordSize)
	for i, v := range vals {
		a.Store(1, addrA+Addr(i*WordSize), v)
	}
	b.StoreRange(1, addrB, vals)

	for i := range vals {
		if got, want := b.Load(1, addrB+Addr(i*WordSize)), a.Load(1, addrA+Addr(i*WordSize)); got != want {
			t.Fatalf("word %d: StoreRange wrote %d, Store wrote %d", i, got, want)
		}
	}
	if sa, sb := a.StatsOf(1).Stores, b.StatsOf(1).Stores; sa != sb {
		t.Fatalf("Stores stat diverged: word stores %d, ranged stores %d", sa, sb)
	}

	// Unflushed ranged stores must be volatile, exactly like word stores.
	b.Crash(DropAll)
	if got := b.DurableWord(addrB); got != 0 {
		t.Fatalf("unfenced StoreRange became durable: %d", got)
	}

	// And flushed+fenced they must all be durable.
	c := New(1<<16, nil)
	addrC := c.MustAlloc(len(vals) * WordSize)
	c.StoreRange(2, addrC, vals)
	c.Persist(2, addrC, len(vals)*WordSize)
	c.Crash(DropAll)
	for i, v := range vals {
		if got := c.DurableWord(addrC + Addr(i*WordSize)); got != v {
			t.Fatalf("word %d lost after persist+crash: got %d want %d", i, got, v)
		}
	}
}

// TestStoreRangeOneGateStepPerLine pins the cost model: a ranged store
// over n lines must hit the gate (and so the scheduler) once per line,
// not once per word.
func TestStoreRangeOneGateStepPerLine(t *testing.T) {
	g := &countingGate{points: map[string]int{}}
	p := New(1<<16, nil)
	p.SetGate(g)
	addr := p.MustAlloc(4 * LineSize)

	vals := make([]uint64, 3*LineWords) // 3 full aligned lines
	p.StoreRange(1, addr, vals)
	if got := g.points["pmem.store"]; got != 3 {
		t.Fatalf("aligned 3-line StoreRange: %d gate steps, want 3", got)
	}

	// Unaligned start: 2 words in the first line, then one full line,
	// then 1 word — three lines touched.
	delete(g.points, "pmem.store")
	p.StoreRange(1, addr+Addr((LineWords-2)*WordSize), make([]uint64, LineWords+3))
	if got := g.points["pmem.store"]; got != 3 {
		t.Fatalf("ragged 3-line StoreRange: %d gate steps, want 3", got)
	}
}

// TestStoreLineRejectsLineCrossing pins the single-line contract.
func TestStoreLineRejectsLineCrossing(t *testing.T) {
	p := New(1<<16, nil)
	addr := p.MustAlloc(2 * LineSize)
	defer func() {
		if recover() == nil {
			t.Fatal("line-crossing StoreLine did not panic")
		}
	}()
	p.StoreLine(1, addr+Addr((LineWords-1)*WordSize), []uint64{1, 2})
}
