package pmem

// Media-fault injection. Real NVM fails partially: a line loses a bit
// (flip), a line is written torn by a power event the on-DIMM ECC did
// not catch, or a worn-out line reads stuck-at-0/1. This file models
// those failures as direct, deterministic corruption of the *durable*
// image. Nothing on the hot path changes: a fault becomes visible only
// when the damaged line is next read back from NVM — immediately for a
// non-resident line, or after the next Crash for a line whose volatile
// cache copy masks it (which is exactly how latent corruption behaves
// on hardware: the cache serves reads until the dirty copy is lost).
// A later Fence that re-persists the line overwrites the damage — a
// fault injected under a still-running process may therefore be healed
// before anything observes it; sweeps must accept that outcome.
//
// Injection composes with sched.Gate crash points: a harness crashes at
// an arbitrary step (StepCounter), applies the crash oracle, and then
// injects a seeded FaultPlan into the surviving image, so one sweep
// explores crash-point x fault-plan combinations deterministically.

// FaultClass selects a media-failure model.
type FaultClass int

const (
	// FaultBitFlip flips one to three bits of one word of the line.
	FaultBitFlip FaultClass = iota + 1
	// FaultTornLine replaces a proper, non-empty subset of the line's
	// words with garbage — the torn write the paper's checksummed
	// records are designed to detect.
	FaultTornLine
	// FaultStuckLine makes the whole line read all-zeros or all-ones.
	FaultStuckLine
)

func (c FaultClass) String() string {
	switch c {
	case FaultBitFlip:
		return "bitflip"
	case FaultTornLine:
		return "tornline"
	case FaultStuckLine:
		return "stuckline"
	}
	return "unknown"
}

// Fault is one media fault: a class, the damaged line, and a per-fault
// seed deciding exactly which bits/words are hit.
type Fault struct {
	Class FaultClass
	Line  uint64
	Seed  uint64
}

// FaultPlan is a reproducible set of media faults. Plans are pure data:
// the same plan injected into the same image always produces the same
// corruption.
type FaultPlan struct {
	Seed   uint64
	Faults []Fault
}

// faultMix is a splitmix64-style finalizer: the deterministic PRNG
// behind plan drawing and fault payloads.
func faultMix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// PlanFaults draws n faults deterministically from seed, with lines in
// [minLine, maxLine). Classes are drawn uniformly. An empty range
// yields an empty plan.
func PlanFaults(seed uint64, n int, minLine, maxLine uint64) FaultPlan {
	plan := FaultPlan{Seed: seed}
	if maxLine <= minLine || n <= 0 {
		return plan
	}
	span := maxLine - minLine
	for i := 0; i < n; i++ {
		base := faultMix(seed + uint64(i)*0x51_7c_c1_b7_27_22_0a_95)
		plan.Faults = append(plan.Faults, Fault{
			Class: FaultClass(1 + base%3),
			Line:  minLine + faultMix(base)%span,
			Seed:  faultMix(base ^ 0xdead_beef),
		})
	}
	return plan
}

// AllocatedLines returns the number of cache lines below the bump-
// allocation frontier — the span fault plans should target (lines above
// it hold no structures and a fault there is invisible).
func (p *Pool) AllocatedLines() uint64 {
	p.allocMu.Lock()
	defer p.allocMu.Unlock()
	return (uint64(p.top) + LineSize - 1) / LineSize
}

// InjectFaults applies plan to the durable image and returns the number
// of faults that landed (faults past the end of the pool are skipped).
// Volatile cache copies are left untouched: a resident line keeps
// masking the damage until the copy is dropped (Crash) — the latent-
// fault model — while a non-resident line exposes it on the next load.
func (p *Pool) InjectFaults(plan FaultPlan) int {
	p.lockAll()
	defer p.unlockAll()
	n := 0
	for _, f := range plan.Faults {
		if f.Line >= uint64(len(p.cache)) {
			continue
		}
		words := p.persistent[f.Line*LineWords : f.Line*LineWords+LineWords]
		applyFault(words, f)
		n++
	}
	return n
}

// applyFault corrupts one line's words in place, per the fault class.
func applyFault(words []uint64, f Fault) {
	switch f.Class {
	case FaultBitFlip:
		r := faultMix(f.Seed)
		w := r % LineWords
		nbits := 1 + (r>>8)%3
		for b := uint64(0); b < nbits; b++ {
			bit := faultMix(f.Seed+b) % 64
			words[w] ^= 1 << bit
		}
	case FaultTornLine:
		// Garble a non-empty proper subset of the words (always at
		// least one changed, never the line wiped whole — that is
		// FaultStuckLine's job).
		mask := faultMix(f.Seed) % (1 << LineWords)
		if mask == 0 || mask == (1<<LineWords)-1 {
			mask = 1 << (faultMix(f.Seed+1) % LineWords)
		}
		for w := 0; w < LineWords; w++ {
			if mask&(1<<w) != 0 {
				words[w] = faultMix(f.Seed + 0x100 + uint64(w))
			}
		}
	case FaultStuckLine:
		v := uint64(0)
		if faultMix(f.Seed)&1 == 1 {
			v = ^uint64(0)
		}
		for w := range words {
			words[w] = v
		}
	}
}
