package pmem

// Spontaneous eviction: real caches write dirty lines back to memory
// whenever they please, so data can become durable EARLIER than the
// program ordered — never later. Correct persistent algorithms must
// tolerate this (it is why recovery code validates what it reads
// instead of trusting write ordering); algorithms that accidentally
// rely on "not yet flushed means not yet durable" break under it.
//
// An EvictionPolicy makes the simulator exercise that freedom
// deterministically: after every store, each dirty line may be written
// back with a seeded pseudo-random decision. The crash Oracle already
// models eviction at crash time; the policy models it during normal
// operation, which is strictly more adversarial.

// EvictionPolicy decides, after each store to a line, whether the
// simulator spontaneously writes that dirty line back to NVM.
type EvictionPolicy func(line uint64, storeCount uint64) bool

// SeededEviction returns a policy evicting roughly one in rate stores,
// decided by a hash of (seed, line, count) — deterministic for a given
// seed and access sequence.
func SeededEviction(seed uint64, rate uint64) EvictionPolicy {
	if rate == 0 {
		rate = 1
	}
	return func(line, count uint64) bool {
		x := seed ^ line*0x9e3779b97f4a7c15 ^ count*0xbf58476d1ce4e5b9
		x ^= x >> 31
		x *= 0x94d049bb133111eb
		x ^= x >> 29
		return x%rate == 0
	}
}

// SetEviction installs an eviction policy (nil disables). Must not be
// called concurrently with memory operations.
func (p *Pool) SetEviction(ep EvictionPolicy) {
	p.lockAll()
	defer p.unlockAll()
	p.evict = ep
}

// maybeEvict is called with li's shard lock held, after a store dirtied
// line li.
func (p *Pool) maybeEvict(li uint64) { p.maybeEvictN(li, 1) }

// maybeEvictN is maybeEvict after a batched store of n words to line li
// (StoreLine): it draws the policy once per word written, so a line-
// batched write keeps exactly the per-word eviction firing rate of the
// equivalent word stores. What coarsens is the tearing granularity —
// the batch's words are already all in the cache when the draw happens,
// so an eviction persists the whole batch, never a prefix of it; that
// matches the line-granularity durability model (a line write-back is
// indivisible from the crash's point of view). Caller holds li's shard
// lock.
func (p *Pool) maybeEvictN(li uint64, n int) {
	if p.evict == nil {
		return
	}
	fire := false
	for ; n > 0; n-- {
		if p.evict(li, p.evictCount.Add(1)) {
			fire = true
		}
	}
	if !fire {
		return
	}
	cl := &p.cache[li]
	if !cl.resident || !cl.dirty {
		return
	}
	base := li * LineWords
	copy(p.persistent[base:base+LineWords], cl.words[:])
	cl.dirty = false
	p.evictions.Add(1)
}

// Evictions returns the number of spontaneous write-backs performed.
func (p *Pool) Evictions() uint64 { return p.evictions.Load() }
