package pmem

// Spontaneous eviction: real caches write dirty lines back to memory
// whenever they please, so data can become durable EARLIER than the
// program ordered — never later. Correct persistent algorithms must
// tolerate this (it is why recovery code validates what it reads
// instead of trusting write ordering); algorithms that accidentally
// rely on "not yet flushed means not yet durable" break under it.
//
// An EvictionPolicy makes the simulator exercise that freedom
// deterministically: after every store, each dirty line may be written
// back with a seeded pseudo-random decision. The crash Oracle already
// models eviction at crash time; the policy models it during normal
// operation, which is strictly more adversarial.

// EvictionPolicy decides, after each store to a line, whether the
// simulator spontaneously writes that dirty line back to NVM.
type EvictionPolicy func(line uint64, storeCount uint64) bool

// SeededEviction returns a policy evicting roughly one in rate stores,
// decided by a hash of (seed, line, count) — deterministic for a given
// seed and access sequence.
func SeededEviction(seed uint64, rate uint64) EvictionPolicy {
	if rate == 0 {
		rate = 1
	}
	return func(line, count uint64) bool {
		x := seed ^ line*0x9e3779b97f4a7c15 ^ count*0xbf58476d1ce4e5b9
		x ^= x >> 31
		x *= 0x94d049bb133111eb
		x ^= x >> 29
		return x%rate == 0
	}
}

// SetEviction installs an eviction policy (nil disables). Must not be
// called concurrently with memory operations.
func (p *Pool) SetEviction(ep EvictionPolicy) {
	p.lockAll()
	defer p.unlockAll()
	p.evict = ep
}

// maybeEvict is called with li's shard lock held, after a store dirtied
// line li.
func (p *Pool) maybeEvict(li uint64) {
	if p.evict == nil {
		return
	}
	count := p.evictCount.Add(1)
	if !p.evict(li, count) {
		return
	}
	cl := &p.cache[li]
	if !cl.resident || !cl.dirty {
		return
	}
	base := li * LineWords
	copy(p.persistent[base:base+LineWords], cl.words[:])
	cl.dirty = false
	p.evictions.Add(1)
}

// Evictions returns the number of spontaneous write-backs performed.
func (p *Pool) Evictions() uint64 { return p.evictions.Load() }
