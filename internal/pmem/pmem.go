// Package pmem simulates byte-addressable non-volatile memory with a
// volatile cache in front of it, reproducing the cost model of the paper
// ("The Inherent Cost of Remembering Consistently", SPAA '18, Section 2):
//
//   - Stores are satisfied in a volatile cache; they are NOT durable.
//   - Flush is an asynchronous, unordered cache-line write-back
//     (clflushopt/clwb). Its cost is considered zero, and it does not by
//     itself make data durable.
//   - Fence stalls until all of the calling process's pending write-backs
//     complete. A fence executed while write-backs are pending is a
//     *persistent fence* — the expensive operation whose count the paper
//     bounds. A fence with no pending write-backs is considered free.
//   - On a full-system crash the cache is lost. A line that was flushed
//     but not yet fenced, or dirty but never flushed (an uncontrolled
//     eviction may have written it back), MAY or MAY NOT have reached
//     NVM; a crash Oracle decides, letting tests explore adversarial
//     outcomes deterministically.
//
// This substitutes for real persistent-memory hardware, which Go cannot
// drive (no cache-line flush control); the quantity the paper reasons
// about — persistent fences per operation, per process — is counted
// exactly.
//
// All primitives take the id of the simulated process performing them so
// that statistics are attributed per process (fences are per-CPU on real
// hardware) and so that a sched.Gate can interpose deterministic
// scheduling or crash injection.
//
// Concurrency design: the pool is lock-striped. The volatile cache is a
// dense []cacheLine slice (line index -> slot, no per-line heap
// allocation) guarded by shardCount mutexes keyed on the line index, so
// simulated processes touching disjoint lines — the common case: each
// process appends to its own persistent log — never contend. Pending
// write-back sets are fixed-size per-pid slices (a process's pending set
// is touched only by that process and by Crash), and statistics are
// per-pid atomic counters, so StatsOf/TotalStats never block memory
// traffic. Lock order, where two kinds are held together, is always
// pending-before-shard; shard locks are ranked by shard index.
package pmem

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/sched"
)

// Geometry of the simulated memory.
const (
	WordSize  = 8                    // bytes per word
	LineWords = 8                    // words per cache line
	LineSize  = WordSize * LineWords // bytes per cache line (64, as on x86)
)

// shardCount stripes the cache locks; consecutive lines map to distinct
// shards so streaming writes spread out. Must be a power of two.
const shardCount = 64

// Addr is a byte address into a Pool. All word accesses must be
// word-aligned.
type Addr uint64

// Line returns the cache-line index containing a.
func (a Addr) Line() uint64 { return uint64(a) / LineSize }

// word returns the word index of a within the pool.
func (a Addr) word() uint64 { return uint64(a) / WordSize }

// Oracle decides, for each cache line whose durability was not guaranteed
// at the moment of a crash (dirty lines, and flushed-but-not-fenced
// lines), whether that line happened to reach NVM. Returning true means
// the line's volatile contents survive the crash.
type Oracle func(line uint64) bool

// Convenient oracles for tests.
var (
	// DropAll: nothing that was not explicitly persisted survives.
	// This is the most adversarial (and most common) choice.
	DropAll Oracle = func(uint64) bool { return false }
	// KeepAll: every write-back raced ahead of the crash.
	KeepAll Oracle = func(uint64) bool { return true }
)

// SeededOracle returns a deterministic pseudo-random oracle: each line
// survives with probability num/den, decided by a hash of (seed, line).
func SeededOracle(seed uint64, num, den uint64) Oracle {
	return func(line uint64) bool {
		x := seed ^ (line * 0x9e3779b97f4a7c15)
		x ^= x >> 33
		x *= 0xff51afd7ed558ccd
		x ^= x >> 33
		x *= 0xc4ceb9fe1a85ec53
		x ^= x >> 33
		return x%den < num
	}
}

// Stats counts the primitive operations performed by one process.
type Stats struct {
	Loads   uint64 // word loads
	Stores  uint64 // word stores
	CASes   uint64 // compare-and-swap attempts
	Flushes uint64 // asynchronous line write-backs issued
	// Fences counts fences that found no pending write-backs; the paper
	// treats these as free.
	Fences uint64
	// PersistentFences counts fences executed while write-backs were
	// pending — the expensive operation bounded by the paper.
	PersistentFences uint64
	// LinesPersisted counts cache lines committed to NVM by fences.
	LinesPersisted uint64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Loads += other.Loads
	s.Stores += other.Stores
	s.CASes += other.CASes
	s.Flushes += other.Flushes
	s.Fences += other.Fences
	s.PersistentFences += other.PersistentFences
	s.LinesPersisted += other.LinesPersisted
}

func (s Stats) String() string {
	return fmt.Sprintf("loads=%d stores=%d cas=%d flushes=%d fences=%d pfences=%d lines=%d",
		s.Loads, s.Stores, s.CASes, s.Flushes, s.Fences, s.PersistentFences, s.LinesPersisted)
}

// pidStats is the lock-free per-process accumulator behind Stats,
// padded to a full cache line so adjacent pids' counters never false-
// share (they are incremented on every memory primitive).
type pidStats struct {
	loads, stores, cases, flushes   atomic.Uint64
	fences, pfences, linesPersisted atomic.Uint64
	_                               uint64 // pad to 64 bytes
}

func (s *pidStats) snapshot() Stats {
	return Stats{
		Loads:            s.loads.Load(),
		Stores:           s.stores.Load(),
		CASes:            s.cases.Load(),
		Flushes:          s.flushes.Load(),
		Fences:           s.fences.Load(),
		PersistentFences: s.pfences.Load(),
		LinesPersisted:   s.linesPersisted.Load(),
	}
}

func (s *pidStats) reset() {
	s.loads.Store(0)
	s.stores.Store(0)
	s.cases.Store(0)
	s.flushes.Store(0)
	s.fences.Store(0)
	s.pfences.Store(0)
	s.linesPersisted.Store(0)
}

// cacheLine is the volatile copy of one line, stored inline in the dense
// cache slice (no per-line heap allocation).
type cacheLine struct {
	words    [LineWords]uint64
	resident bool // line has a volatile copy (faulted in by a store/CAS)
	dirty    bool
}

// pendingEntry is one flushed-but-unfenced line snapshot.
type pendingEntry struct {
	line  uint64
	words [LineWords]uint64
}

// pidPending is one process's pending write-back set. The entries slice
// is reused across fences, so the steady-state flush/fence cycle is
// allocation-free. The mutex exists only for Crash/WriteImage (which
// quiesce all processes); a process's own Flush/Fence never contend.
//
// Re-flushing a line must replace its snapshot, so Flush dedupes
// against the set. The ordinary update cycle pends a handful of lines
// between fences and a linear scan is the fastest possible dedupe —
// but a compaction snapshot flushes its whole state region (thousands
// of lines for a grown object) under one fence, where scanning per
// flush turns the region write-back quadratic. Past pendingScanMax
// entries the set therefore switches to a line→slot index map, built
// once at the crossing and maintained incrementally; the map is
// retained (emptied, not dropped) across fences so a snapshot-heavy
// process allocates it once.
type pidPending struct {
	mu      sync.Mutex
	entries []pendingEntry
	index   map[uint64]int // line -> entries slot; live iff len(entries) > pendingScanMax
	_       [3]uint64      // pad to 64 bytes: no false sharing between pids
}

// pendingScanMax is the largest pending set deduped by linear scan.
// Update records span few lines (slot + tail + header); 32 covers
// every non-snapshot append with headroom while keeping the common
// path free of map traffic.
const pendingScanMax = 32

// add records a flushed line snapshot, replacing the line's previous
// entry if present. Caller holds pp.mu.
func (pp *pidPending) add(li uint64, words [LineWords]uint64) {
	if len(pp.entries) <= pendingScanMax {
		for i := range pp.entries {
			if pp.entries[i].line == li {
				pp.entries[i].words = words
				return
			}
		}
		pp.entries = append(pp.entries, pendingEntry{line: li, words: words})
		if len(pp.entries) > pendingScanMax {
			// Crossing: index everything pended so far.
			if pp.index == nil {
				pp.index = make(map[uint64]int, 2*pendingScanMax)
			}
			for i := range pp.entries {
				pp.index[pp.entries[i].line] = i
			}
		}
		return
	}
	if i, ok := pp.index[li]; ok {
		pp.entries[i].words = words
		return
	}
	pp.index[li] = len(pp.entries)
	pp.entries = append(pp.entries, pendingEntry{line: li, words: words})
}

// drain empties the set (fence commit, crash discard), keeping the
// entries array and the index map for reuse. Caller holds pp.mu.
func (pp *pidPending) drain() {
	pp.entries = pp.entries[:0]
	if len(pp.index) > 0 {
		clear(pp.index)
	}
}

// Pool is one simulated NVM device plus the volatile cache in front of
// it. All methods are safe for concurrent use by multiple simulated
// processes. The crash/recovery cycle is: Crash (discard cache, apply
// oracle) and then re-reading the persistent image through fresh loads.
type Pool struct {
	gate sched.Gate

	persistent []uint64    // the durable image, in words (immutable length)
	cache      []cacheLine // dense volatile cache, line index -> slot
	shards     [shardCount]sync.Mutex

	// pending[pid] holds snapshots of the lines pid has flushed since its
	// last fence. A fence by pid commits and clears pid's set.
	pending [sched.MaxPids]pidPending
	stats   [sched.MaxPids]pidStats

	allocMu sync.Mutex
	top     Addr // bump-allocation frontier, guarded by allocMu
	crashes atomic.Uint64

	// Spontaneous-eviction simulation (see eviction.go).
	evict      EvictionPolicy
	evictCount atomic.Uint64
	evictions  atomic.Uint64

	// Root-table claim registry (ClaimRootRange): the half-open slot
	// ranges live constructions have claimed, guarding against two
	// instances silently sharing root slots. Volatile by design — a
	// crash clears it the way it kills the claiming processes.
	rootMu     sync.Mutex
	rootClaims [][2]int
}

// Reserved root area: the first rootCount words of the pool are a root
// table used to locate top-level structures after a crash. 128 slots
// leave room for one log pointer per possible pid (MaxPids = 64, based
// at slot 8 in internal/core) plus the fixed system slots.
const (
	rootCount  = 128
	rootBytes  = rootCount * WordSize
	minPoolLen = rootBytes
)

// RootSlots is the number of root-table slots. Constructions that
// share one pool partition this space (core.Config.RootBase).
const RootSlots = rootCount

// ClaimRootRange registers the half-open root-slot range [lo, hi) for
// a construction being created or recovered on this pool. A range
// identical to an existing claim is accepted silently — that is the
// same logical construction coming back (recovery after an in-process
// crash, recreation after quarantine), not a second one. A PARTIAL
// overlap returns the conflicting claim and ok=false: two distinct
// constructions were about to clobber each other's root slots. The
// registry is volatile; it protects against configuration bugs within
// one process lifetime, not against a concurrent process on the same
// image (the simulated NVM has no cross-process story to violate).
func (p *Pool) ClaimRootRange(lo, hi int) (conflict [2]int, ok bool) {
	p.rootMu.Lock()
	defer p.rootMu.Unlock()
	for _, c := range p.rootClaims {
		if lo == c[0] && hi == c[1] {
			return [2]int{}, true // identical re-claim: same construction
		}
		if lo < c[1] && c[0] < hi {
			return c, false
		}
	}
	p.rootClaims = append(p.rootClaims, [2]int{lo, hi})
	return [2]int{}, true
}

// RootSystemPID is the process id used for pool-management operations
// (root updates during setup); its fence costs are excluded from
// experiment tables by resetting stats after setup.
const RootSystemPID = sched.MaxPids - 1

// New creates a pool of the given size in bytes (rounded up to a whole
// number of cache lines, minimum one line beyond the root table), fully
// zeroed and durable. gate may be nil, in which case a NopGate is used.
func New(size int, gate sched.Gate) *Pool {
	if gate == nil {
		gate = sched.NopGate{}
	}
	if size < minPoolLen+LineSize {
		size = minPoolLen + LineSize
	}
	lines := (size + LineSize - 1) / LineSize
	p := &Pool{
		gate:       gate,
		persistent: make([]uint64, lines*LineWords),
		cache:      make([]cacheLine, lines),
		top:        rootBytes,
	}
	return p
}

// SetGate replaces the pool's gate. Must not be called concurrently with
// memory operations.
func (p *Pool) SetGate(g sched.Gate) {
	if g == nil {
		g = sched.NopGate{}
	}
	p.gate = g
}

// shard returns the mutex striping line li.
func (p *Pool) shard(li uint64) *sync.Mutex {
	return &p.shards[li&(shardCount-1)]
}

func checkPid(pid int) {
	if pid < 0 || pid >= sched.MaxPids {
		panic(fmt.Sprintf("pmem: pid %d out of range [0,%d)", pid, sched.MaxPids))
	}
}

// Size returns the pool size in bytes.
func (p *Pool) Size() int { return len(p.persistent) * WordSize }

// Crashes returns the number of crashes the pool has survived.
func (p *Pool) Crashes() uint64 { return p.crashes.Load() }

// StatsOf returns a copy of the statistics of process pid.
func (p *Pool) StatsOf(pid int) Stats {
	checkPid(pid)
	return p.stats[pid].snapshot()
}

// TotalStats returns the sum of all per-process statistics.
func (p *Pool) TotalStats() Stats {
	var t Stats
	for pid := range p.stats {
		s := p.stats[pid].snapshot()
		t.Add(s)
	}
	return t
}

// ResetStats zeroes all statistics (typically called after setup so that
// experiment tables reflect steady state only).
func (p *Pool) ResetStats() {
	for pid := range p.stats {
		p.stats[pid].reset()
	}
}

func (p *Pool) checkAddr(a Addr) {
	if uint64(a)%WordSize != 0 {
		panic(fmt.Sprintf("pmem: unaligned address %#x", uint64(a)))
	}
	if a.word() >= uint64(len(p.persistent)) {
		panic(fmt.Sprintf("pmem: address %#x out of bounds (pool %d bytes)",
			uint64(a), len(p.persistent)*WordSize))
	}
}

// line returns the volatile copy of line li, faulting it in from the
// persistent image if needed. Caller holds li's shard lock.
func (p *Pool) line(li uint64) *cacheLine {
	cl := &p.cache[li]
	if !cl.resident {
		base := li * LineWords
		copy(cl.words[:], p.persistent[base:base+LineWords])
		cl.resident = true
	}
	return cl
}

// Load reads the word at addr as seen by the running system (cache first).
//
//onll:hotpath
func (p *Pool) Load(pid int, addr Addr) uint64 {
	p.gate.Step(pid, "pmem.load")
	checkPid(pid)
	p.checkAddr(addr)
	p.stats[pid].loads.Add(1)
	li := addr.Line()
	mu := p.shard(li)
	mu.Lock() //onll:lockok(striped line-shard lock: bounded section, models line coherency)
	defer mu.Unlock()
	if cl := &p.cache[li]; cl.resident {
		return cl.words[addr.word()%LineWords]
	}
	return p.persistent[addr.word()]
}

// Store writes the word at addr into the cache (volatile until flushed
// and fenced).
//
//onll:hotpath
func (p *Pool) Store(pid int, addr Addr, val uint64) {
	p.gate.Step(pid, "pmem.store")
	checkPid(pid)
	p.checkAddr(addr)
	p.stats[pid].stores.Add(1)
	li := addr.Line()
	mu := p.shard(li)
	mu.Lock() //onll:lockok(striped line-shard lock: bounded section, models line coherency)
	defer mu.Unlock()
	cl := p.line(li)
	cl.words[addr.word()%LineWords] = val
	cl.dirty = true
	p.maybeEvict(li)
}

// StoreLine writes vals into consecutive words starting at addr, all of
// which must lie within one cache line, for one gate step, one
// shard-lock acquisition and one statistics update — the
// line-granularity write the log layer batches into (Cohen, Friedman
// and Larus, OOPSLA 2017: make durability line-sized, then pay
// coherency costs per line, not per word). The line is dirty in the
// volatile cache until flushed and fenced and the crash oracle rules on
// it exactly as after the equivalent word Stores; `Stats.Stores` still
// counts words. Two granularities deliberately coarsen to the line: the
// gate sees one step per line (so deterministic schedules and crash
// injection interleave between lines, not between words of one line),
// and a spontaneous eviction persists the whole batch, never a prefix
// of it (maybeEvictN keeps the per-word firing rate). Both match the
// model's line-indivisible write-backs.
//
//onll:hotpath
func (p *Pool) StoreLine(pid int, addr Addr, vals []uint64) {
	if len(vals) == 0 {
		return
	}
	p.gate.Step(pid, "pmem.store")
	checkPid(pid)
	p.checkAddr(addr)
	li := addr.Line()
	w := addr.word() % LineWords
	if w+uint64(len(vals)) > LineWords {
		panic(fmt.Sprintf("pmem: StoreLine of %d words at %#x crosses a line boundary",
			len(vals), uint64(addr)))
	}
	p.checkAddr(addr + Addr((len(vals)-1)*WordSize))
	p.stats[pid].stores.Add(uint64(len(vals)))
	mu := p.shard(li)
	mu.Lock() //onll:lockok(striped line-shard lock: bounded section, models line coherency)
	defer mu.Unlock()
	cl := p.line(li)
	copy(cl.words[w:w+uint64(len(vals))], vals)
	cl.dirty = true
	p.maybeEvictN(li, len(vals))
}

// StoreRange writes vals to consecutive words starting at addr, splitting
// the write into per-line StoreLine batches: one gate step, one lock and
// one stat bump per touched cache line instead of per word.
func (p *Pool) StoreRange(pid int, addr Addr, vals []uint64) {
	for len(vals) > 0 {
		n := int(LineWords - addr.word()%LineWords)
		if n > len(vals) {
			n = len(vals)
		}
		p.StoreLine(pid, addr, vals[:n])
		addr += Addr(n * WordSize)
		vals = vals[n:]
	}
}

// CAS atomically compares the word at addr with old and, if equal, writes
// new. It reports whether the swap happened. Like a hardware CAS it acts
// on the cache: its effect is NOT durable until flushed and fenced. (The
// paper notes NVM itself is written only by simple write-backs; CAS is a
// cache/coherency-level operation.)
//
//onll:hotpath
func (p *Pool) CAS(pid int, addr Addr, old, new uint64) bool {
	p.gate.Step(pid, "pmem.cas")
	checkPid(pid)
	p.checkAddr(addr)
	p.stats[pid].cases.Add(1)
	li := addr.Line()
	mu := p.shard(li)
	mu.Lock() //onll:lockok(striped line-shard lock: bounded section, models line coherency)
	defer mu.Unlock()
	cl := p.line(li)
	w := addr.word() % LineWords
	if cl.words[w] != old {
		return false
	}
	cl.words[w] = new
	cl.dirty = true
	p.maybeEvict(li)
	return true
}

// Flush issues an asynchronous write-back (clwb-style) of the line
// containing addr, on behalf of pid. The line contents are snapshotted at
// flush time; a subsequent Fence by pid commits the snapshot to NVM.
// Flushing a clean line is a no-op beyond being counted.
//
//onll:hotpath
func (p *Pool) Flush(pid int, addr Addr) {
	p.gate.Step(pid, "pmem.flush")
	checkPid(pid)
	p.checkAddr(addr)
	p.stats[pid].flushes.Add(1)
	li := addr.Line()
	mu := p.shard(li)
	mu.Lock() //onll:lockok(striped line-shard lock: bounded section, models line coherency)
	cl := &p.cache[li]
	if !cl.resident || !cl.dirty {
		mu.Unlock()
		return
	}
	words := cl.words
	mu.Unlock()

	pp := &p.pending[pid]
	pp.mu.Lock() //onll:lockok(per-pid pending write-back set: single-writer in practice, bounded section)
	defer pp.mu.Unlock()
	pp.add(li, words)
	// The line remains cached and dirty (later stores may re-dirty it
	// relative to the snapshot); a fence commits the snapshot.
}

// Fence orders pid's outstanding write-backs: every line pid has flushed
// since its last fence becomes durable. If any write-backs were pending
// this is counted as a persistent fence (the expensive case); otherwise
// as a plain fence.
//
//onll:hotpath
func (p *Pool) Fence(pid int) {
	checkPid(pid)
	pp := &p.pending[pid]
	// Peek at whether this will be a persistent fence so the gate point
	// is distinguishable; the final accounting is done under the lock.
	pp.mu.Lock() //onll:lockok(per-pid pending write-back set: single-writer in practice, bounded section)
	persistent := len(pp.entries) > 0
	pp.mu.Unlock()
	if persistent {
		p.gate.Step(pid, "pmem.pfence")
	} else {
		p.gate.Step(pid, "pmem.fence")
	}
	s := &p.stats[pid]
	pp.mu.Lock() //onll:lockok(per-pid pending write-back set: single-writer in practice, bounded section)
	defer pp.mu.Unlock()
	if len(pp.entries) == 0 {
		s.fences.Add(1)
		return
	}
	s.pfences.Add(1)
	for i := range pp.entries {
		e := &pp.entries[i]
		base := e.line * LineWords
		mu := p.shard(e.line)
		mu.Lock() //onll:lockok(striped line-shard lock: bounded section, models line coherency)
		copy(p.persistent[base:base+LineWords], e.words[:])
		// If the cached line still equals the committed snapshot it is
		// now clean; otherwise later stores keep it dirty.
		if cl := &p.cache[e.line]; cl.resident && cl.words == e.words {
			cl.dirty = false
		}
		mu.Unlock()
		s.linesPersisted.Add(1)
	}
	pp.drain()
}

// FlushRange issues asynchronous, unordered write-backs for every line
// overlapping [addr, addr+size) WITHOUT fencing. Multi-line structures
// split across tiers (log slots plus their overflow chunks, snapshot
// regions) flush all of their lines this way and then pay for a single
// fence covering the whole batch.
func (p *Pool) FlushRange(pid int, addr Addr, size int) {
	if size <= 0 {
		return
	}
	first := addr.Line()
	last := Addr(uint64(addr) + uint64(size) - 1).Line()
	for li := first; li <= last; li++ {
		p.Flush(pid, Addr(li*LineSize))
	}
}

// Persist is the common flush-range-then-fence idiom: it flushes every
// line overlapping [addr, addr+size) and issues one fence. It is exactly
// one persistent fence when the range was dirty.
func (p *Pool) Persist(pid int, addr Addr, size int) {
	if size <= 0 {
		return
	}
	p.FlushRange(pid, addr, size)
	p.Fence(pid)
}

// lockAll quiesces the pool: every pending set, then every shard, in
// rank order (the same pending-before-shard order Fence uses).
func (p *Pool) lockAll() {
	for pid := range p.pending {
		p.pending[pid].mu.Lock()
	}
	for i := range p.shards {
		p.shards[i].Lock()
	}
}

func (p *Pool) unlockAll() {
	for i := range p.shards {
		p.shards[i].Unlock()
	}
	for pid := range p.pending {
		p.pending[pid].mu.Unlock()
	}
}

// Crash simulates a full-system power failure. Every line whose
// durability was guaranteed (committed by a fence) keeps its committed
// value. For every other line with volatile state — flushed-but-unfenced
// snapshots and dirty unflushed lines — the oracle decides whether the
// in-flight value reached NVM. The cache and all pending write-backs are
// then discarded. Statistics survive (they describe the history of the
// simulation, not the machine).
//
// Crash does not terminate simulated processes; callers pair it with
// sched.Controller.KillAll (or a crashing gate) so that no process
// touches the pool mid-crash.
func (p *Pool) Crash(oracle Oracle) {
	if oracle == nil {
		oracle = DropAll
	}
	p.lockAll()
	defer p.unlockAll()
	p.crashes.Add(1)
	// Flushed-but-unfenced snapshots: the write-back was in flight.
	for pid := range p.pending {
		pp := &p.pending[pid]
		for i := range pp.entries {
			e := &pp.entries[i]
			if oracle(e.line) {
				base := e.line * LineWords
				copy(p.persistent[base:base+LineWords], e.words[:])
			}
		}
		pp.drain()
	}
	// Dirty lines never flushed: an uncontrolled eviction may have
	// written them back at any point; the oracle models that too.
	for li := range p.cache {
		cl := &p.cache[li]
		if !cl.resident {
			continue
		}
		if cl.dirty && oracle(uint64(li)) {
			base := li * LineWords
			copy(p.persistent[base:base+LineWords], cl.words[:])
		}
		*cl = cacheLine{}
	}
}

// ErrOutOfMemory is returned by Alloc when the pool is exhausted.
var ErrOutOfMemory = errors.New("pmem: pool exhausted")

// Alloc reserves size bytes, aligned to a cache-line boundary, and
// returns the base address. Allocation metadata is volatile; persistent
// structures must be reachable from the root table to survive crashes.
func (p *Pool) Alloc(size int) (Addr, error) {
	p.allocMu.Lock()
	defer p.allocMu.Unlock()
	if size <= 0 {
		return 0, fmt.Errorf("pmem: invalid allocation size %d", size)
	}
	base := (uint64(p.top) + LineSize - 1) / LineSize * LineSize
	end := base + uint64(size)
	if end > uint64(len(p.persistent)*WordSize) {
		return 0, ErrOutOfMemory
	}
	p.top = Addr(end)
	return Addr(base), nil
}

// MustAlloc is Alloc that panics on failure (used during setup).
func (p *Pool) MustAlloc(size int) Addr {
	a, err := p.Alloc(size)
	if err != nil {
		panic(err)
	}
	return a
}

// SetRoot durably stores val in root slot i (0 <= i < 64). Roots are how
// recovery code locates structures: they are persisted immediately (one
// persistent fence, attributed to RootSystemPID).
func (p *Pool) SetRoot(i int, val uint64) {
	if i < 0 || i >= rootCount {
		panic(fmt.Sprintf("pmem: root index %d out of range", i))
	}
	addr := Addr(i * WordSize)
	p.Store(RootSystemPID, addr, val)
	p.Persist(RootSystemPID, addr, WordSize)
}

// Root reads root slot i (through the cache, like any load).
func (p *Pool) Root(i int) uint64 {
	if i < 0 || i >= rootCount {
		panic(fmt.Sprintf("pmem: root index %d out of range", i))
	}
	return p.Load(RootSystemPID, Addr(i*WordSize))
}

// Contains reports whether the word-aligned range [addr, addr+size)
// lies inside the pool — recovery code validates untrusted pointers
// read from NVM with it before dereferencing them.
func (p *Pool) Contains(addr Addr, size int) bool {
	if size < 0 || uint64(addr)%WordSize != 0 {
		return false
	}
	end := uint64(addr) + uint64(size)
	return end >= uint64(addr) && end <= uint64(len(p.persistent))*WordSize
}

// DurableWord returns the word at addr as it exists in NVM right now,
// bypassing the cache. This is a test/diagnostic facility ("what would
// recovery see if we crashed here with DropAll"); real programs cannot
// do this.
func (p *Pool) DurableWord(addr Addr) uint64 {
	p.checkAddr(addr)
	li := addr.Line()
	mu := p.shard(li)
	mu.Lock()
	defer mu.Unlock()
	return p.persistent[addr.word()]
}

// VolatileLines returns the number of cache lines currently dirty (a
// diagnostic for leak/compaction tests).
func (p *Pool) VolatileLines() int {
	p.lockAll()
	defer p.unlockAll()
	n := 0
	for li := range p.cache {
		if p.cache[li].resident && p.cache[li].dirty {
			n++
		}
	}
	return n
}
