package sched

import (
	"strings"
	"sync"
	"testing"
)

func TestNopGate(t *testing.T) {
	var g NopGate
	g.Step(0, "anything") // must not block or panic
}

func TestControllerStepByStep(t *testing.T) {
	ctl := NewController()
	var log []string
	done := ctl.Spawn(0, func() {
		for _, pt := range []string{"a", "b", "c"} {
			ctl.Step(0, pt)
			log = append(log, pt)
		}
	})
	if n := ctl.StepN(0, 2); n != 2 {
		t.Fatalf("StepN granted %d", n)
	}
	if pt, ok := ctl.Held(0); !ok || pt != "c" {
		t.Fatalf("held at %q/%v, want c", pt, ok)
	}
	if len(log) != 2 {
		t.Fatalf("process executed %d points, want 2 (held before c)", len(log))
	}
	ctl.RunToCompletion(0)
	if r := <-done; r != nil {
		t.Fatalf("process failed: %v", r)
	}
	if strings.Join(log, "") != "abc" {
		t.Fatalf("order: %v", log)
	}
}

func TestRunUntilHoldsBeforeExecution(t *testing.T) {
	ctl := NewController()
	executed := false
	ctl.Spawn(0, func() {
		ctl.Step(0, "pre")
		ctl.Step(0, "target")
		executed = true
	})
	pt, ok := ctl.RunUntil(0, AtPoint("target"))
	if !ok || pt != "target" {
		t.Fatalf("RunUntil: %q %v", pt, ok)
	}
	if executed {
		t.Fatal("primitive after target executed while held")
	}
	ctl.RunToCompletion(0)
	if !executed {
		t.Fatal("process never resumed")
	}
}

func TestRunUntilReturnsFalseOnCompletion(t *testing.T) {
	ctl := NewController()
	ctl.Spawn(0, func() { ctl.Step(0, "only") })
	if _, ok := ctl.RunUntil(0, AtPoint("never")); ok {
		t.Fatal("RunUntil matched a nonexistent point")
	}
	if !ctl.Done(0) {
		t.Fatal("process not done")
	}
}

func TestRunPast(t *testing.T) {
	ctl := NewController()
	var hits int
	ctl.Spawn(0, func() {
		ctl.Step(0, "x")
		hits++
		ctl.Step(0, "y")
		hits++
	})
	if pt, ok := ctl.RunPast(0, AtPoint("x")); !ok || pt != "x" {
		t.Fatalf("RunPast: %q %v", pt, ok)
	}
	// After RunPast(x) the process has executed x's grant and is held
	// at (or running toward) y.
	ctl.RunToCompletion(0)
	if hits != 2 {
		t.Fatalf("hits=%d", hits)
	}
}

func TestKillAllUnwindsHeldProcess(t *testing.T) {
	ctl := NewController()
	reached := false
	done := ctl.Spawn(0, func() {
		ctl.Step(0, "a")
		ctl.Step(0, "b")
		reached = true
	})
	ctl.RunUntil(0, AtPoint("b"))
	ctl.KillAll()
	if r := <-done; !IsKilled(r) {
		t.Fatalf("outcome %v, want killed", r)
	}
	if reached {
		t.Fatal("killed process executed past its hold point")
	}
}

func TestKillAllMidFlight(t *testing.T) {
	// Kill a process that is between gates (running toward its next
	// Step): KillAll must wait for it and kill it at that gate.
	ctl := NewController()
	var mu sync.Mutex
	count := 0
	done := ctl.Spawn(0, func() {
		for i := 0; i < 1000; i++ {
			ctl.Step(0, "loop")
			mu.Lock()
			count++
			mu.Unlock()
		}
	})
	ctl.StepN(0, 5)
	ctl.KillAll()
	if r := <-done; !IsKilled(r) {
		t.Fatalf("outcome %v", r)
	}
	mu.Lock()
	defer mu.Unlock()
	if count != 5 {
		t.Fatalf("process executed %d loop bodies, want exactly 5", count)
	}
}

func TestKillAllIdempotentAndSkipsDone(t *testing.T) {
	ctl := NewController()
	done := ctl.Spawn(0, func() {})
	<-done
	ctl.KillAll() // no live processes: must not hang
	ctl.KillAll()
}

func TestReleaseAllowsPidReuse(t *testing.T) {
	ctl := NewController()
	d1 := ctl.Spawn(0, func() {})
	<-d1
	ctl.Release(0)
	d2 := ctl.Spawn(0, func() { ctl.Step(0, "z") })
	ctl.RunToCompletion(0)
	if r := <-d2; r != nil {
		t.Fatal(r)
	}
}

func TestSpawnDuplicatePanics(t *testing.T) {
	ctl := NewController()
	ctl.Spawn(1, func() { ctl.Step(1, "w") })
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate spawn accepted")
		}
		ctl.KillAll()
	}()
	ctl.Spawn(1, func() {})
}

func TestStepByUnspawnedPidPassesThrough(t *testing.T) {
	ctl := NewController()
	ctl.Step(63, "setup") // must not block
}

func TestHistoryRecording(t *testing.T) {
	ctl := NewController()
	ctl.SetRecording(true)
	ctl.Spawn(0, func() {
		ctl.Step(0, "p1")
		ctl.Step(0, "p2")
	})
	ctl.RunToCompletion(0)
	h := ctl.History(0)
	if len(h) != 2 || h[0] != "p1" || h[1] != "p2" {
		t.Fatalf("history: %v", h)
	}
}

func TestTwoProcessInterleaving(t *testing.T) {
	ctl := NewController()
	var order []int
	var mu sync.Mutex
	rec := func(pid int) {
		mu.Lock()
		order = append(order, pid)
		mu.Unlock()
	}
	ctl.Spawn(0, func() {
		for i := 0; i < 3; i++ {
			ctl.Step(0, "s")
			rec(0)
		}
	})
	ctl.Spawn(1, func() {
		for i := 0; i < 3; i++ {
			ctl.Step(1, "s")
			rec(1)
		}
	})
	// Scripted interleaving: 0,1,1,0,0,1.
	ctl.StepN(0, 1)
	ctl.StepN(1, 2)
	ctl.StepN(0, 2)
	ctl.StepN(1, 1)
	ctl.RunToCompletion(0)
	ctl.RunToCompletion(1)
	mu.Lock()
	defer mu.Unlock()
	want := []int{0, 1, 1, 0, 0, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("interleaving %v, want %v", order, want)
		}
	}
}

func TestStepCounter(t *testing.T) {
	c := NewStepCounter(0, nil)
	for i := 0; i < 10; i++ {
		c.Step(i%2, "x")
	}
	if c.Steps() != 10 || c.StepsOf(0) != 5 || c.StepsOf(1) != 5 {
		t.Fatalf("counts: %d %d %d", c.Steps(), c.StepsOf(0), c.StepsOf(1))
	}
	if c.Crashed() {
		t.Fatal("crashed without a crash step")
	}
}

func TestStepCounterCrashAt(t *testing.T) {
	fired := 0
	c := NewStepCounter(5, func() { fired++ })
	survived := 0
	for i := 0; i < 10; i++ {
		func() {
			defer func() {
				if r := recover(); r != nil && !IsKilled(r) {
					t.Fatalf("wrong panic %v", r)
				}
			}()
			c.Step(0, "x")
			survived++
		}()
	}
	if survived != 4 {
		t.Fatalf("%d steps survived before crash step 5, want 4", survived)
	}
	if fired != 1 {
		t.Fatalf("onCrash fired %d times", fired)
	}
	if !c.Crashed() {
		t.Fatal("Crashed() false after the crash step")
	}
}

func TestIsKilled(t *testing.T) {
	if !IsKilled(ErrKilled) || IsKilled("other") || IsKilled(nil) {
		t.Fatal("IsKilled misclassifies")
	}
}
