// Package sched provides deterministic scheduling of simulated processes.
//
// Every shared-memory primitive executed by the algorithms in this module
// (loads, stores, CAS, flushes and fences on simulated NVM, as well as the
// atomic operations of the volatile execution trace) passes through a Gate
// before it executes. A Gate implementation may simply count steps, may
// trigger a crash at a chosen step, or — via Controller — may suspend the
// calling process until a test script explicitly grants it the next step.
//
// This is the substrate that lets us reproduce, instruction by instruction,
// the constructed executions of the paper: the four worked executions of
// Figure 1 and the adversarial schedules in the proof of the lower bound
// (Theorem 6.3), where a process must be run "solo until just before the
// response of op" and then preempted.
//
// Gate discipline: Step is always invoked *before* the primitive it
// announces executes, and never while a lock is held, so a process held at
// a gate has not yet performed the announced action and blocks nobody.
package sched

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Gate observes (and possibly suspends) every shared-memory step of a
// simulated process. Implementations must be safe for concurrent use.
type Gate interface {
	// Step announces that process pid is about to execute the primitive
	// described by point (e.g. "pmem.store", "trace.cas-tail",
	// "op.return"). Step may block the caller; it may also panic with
	// ErrKilled to simulate the process being wiped out by a full-system
	// crash.
	Step(pid int, point string)
}

// NopGate is a Gate that lets every step through immediately.
// It is the default for free-running (real-concurrency) executions.
type NopGate struct{}

// Step implements Gate.
func (NopGate) Step(int, string) {}

// killed is the panic value used to terminate a simulated process at a
// gate point. It is unexported; use ErrKilled / IsKilled.
type killed struct{}

// ErrKilled is the value with which Step panics when the process has been
// killed by a simulated full-system crash. Drivers created with
// Controller.Spawn recover it automatically.
var ErrKilled any = killed{}

// IsKilled reports whether a recovered panic value is the controller's
// kill signal.
func IsKilled(v any) bool {
	_, ok := v.(killed)
	return ok
}

// StepCounter is a Gate that atomically counts steps, optionally invoking
// a callback at a specific global step index. It is used by randomized
// crash-injection tests: run a workload once to learn its length, pick a
// uniform step, and re-run with a crash at that step.
type StepCounter struct {
	n       atomic.Uint64
	crashAt uint64      // 0 = never
	killedF atomic.Bool // set once the crash step is reached
	onCrash func()      // invoked exactly once, at the crash step
	once    sync.Once
	perPid  [MaxPids]atomic.Uint64
}

// MaxPids bounds the process identifiers accepted by this package.
const MaxPids = 64

// NewStepCounter returns a counting gate. If crashAt > 0, the gate panics
// with ErrKilled on every Step at or after global step crashAt, invoking
// onCrash exactly once first (onCrash may be nil).
func NewStepCounter(crashAt uint64, onCrash func()) *StepCounter {
	return &StepCounter{crashAt: crashAt, onCrash: onCrash}
}

// Step implements Gate.
func (c *StepCounter) Step(pid int, point string) {
	if pid >= 0 && pid < MaxPids {
		c.perPid[pid].Add(1)
	}
	n := c.n.Add(1)
	if c.crashAt != 0 && n >= c.crashAt {
		c.killedF.Store(true)
	}
	if c.killedF.Load() {
		c.once.Do(func() {
			if c.onCrash != nil {
				c.onCrash()
			}
		})
		panic(ErrKilled)
	}
}

// Steps returns the number of steps observed so far.
func (c *StepCounter) Steps() uint64 { return c.n.Load() }

// StepsOf returns the number of steps taken by pid.
func (c *StepCounter) StepsOf(pid int) uint64 {
	if pid < 0 || pid >= MaxPids {
		return 0
	}
	return c.perPid[pid].Load()
}

// Crashed reports whether the crash step has been reached.
func (c *StepCounter) Crashed() bool { return c.killedF.Load() }

// procState tracks a single simulated process under a Controller.
type procState struct {
	id     int
	reqCh  chan string   // process -> controller: "I am at point X"
	goCh   chan bool     // controller -> process: true = run, false = die
	doneCh chan struct{} // closed when the process function returns
	// held is the point the process is currently suspended at, valid
	// only between the controller receiving a request and granting it.
	held    string
	hasHeld bool
	killed  bool
	done    atomic.Bool
	// trace of points stepped through, for debugging and assertions.
	history []string
}

// Controller is a Gate that gives a test script complete control over the
// interleaving of a set of simulated processes. Each process runs in its
// own goroutine (started with Spawn) and suspends at every gate point
// until the script advances it with StepN, RunUntil or RunToCompletion.
//
// A Controller is single-scripted: the test goroutine drives processes one
// at a time; suspended processes consume no CPU.
type Controller struct {
	mu     sync.Mutex
	procs  map[int]*procState
	record bool
}

// NewController returns an empty controller. Processes are added with
// Spawn.
func NewController() *Controller {
	return &Controller{procs: make(map[int]*procState)}
}

// SetRecording enables per-process point histories (History method).
func (c *Controller) SetRecording(on bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.record = on
}

func (c *Controller) proc(pid int) *procState {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := c.procs[pid]
	if p == nil {
		panic(fmt.Sprintf("sched: unknown pid %d (not spawned)", pid))
	}
	return p
}

// Step implements Gate. It is called by the simulated process itself.
// Steps by pids that were never spawned (setup code running on the test
// goroutine, the pool's RootSystemPID, recovery) pass through freely —
// only spawned processes are scheduled.
func (c *Controller) Step(pid int, point string) {
	c.mu.Lock()
	p := c.procs[pid]
	c.mu.Unlock()
	if p == nil || p.done.Load() {
		// Never-spawned or already-finished pid: recovery and other
		// post-crash code may reuse pids of dead processes.
		return
	}
	p.reqCh <- point
	run := <-p.goCh
	if !run {
		panic(ErrKilled)
	}
}

// Spawn starts fn as simulated process pid. fn must perform all its shared
// accesses through gates wired to this controller (or to a Gate that
// delegates to it) using the same pid. The returned channel receives the
// outcome when fn finishes: nil on normal return, ErrKilled if the
// process was killed, or the recovered panic value otherwise.
func (c *Controller) Spawn(pid int, fn func()) <-chan any {
	if pid < 0 || pid >= MaxPids {
		panic(fmt.Sprintf("sched: pid %d out of range", pid))
	}
	p := &procState{
		id:     pid,
		reqCh:  make(chan string),
		goCh:   make(chan bool),
		doneCh: make(chan struct{}),
	}
	c.mu.Lock()
	if _, dup := c.procs[pid]; dup {
		c.mu.Unlock()
		panic(fmt.Sprintf("sched: pid %d already spawned", pid))
	}
	c.procs[pid] = p
	c.mu.Unlock()

	out := make(chan any, 1)
	go func() {
		defer close(p.doneCh)
		defer p.done.Store(true)
		defer func() {
			r := recover()
			if r == nil {
				out <- nil
			} else if IsKilled(r) {
				out <- ErrKilled
			} else {
				out <- r
			}
		}()
		fn()
	}()
	return out
}

// Release forgets a finished process so its pid can be reused by a later
// Spawn (e.g. a post-recovery process reusing a pre-crash pid).
func (c *Controller) Release(pid int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := c.procs[pid]
	if p == nil {
		return
	}
	if !p.done.Load() {
		panic(fmt.Sprintf("sched: Release(%d) of a live process", pid))
	}
	delete(c.procs, pid)
}

// Done reports whether process pid has finished (returned or been killed).
func (c *Controller) Done(pid int) bool { return c.proc(pid).done.Load() }

// Held returns the gate point at which pid is currently suspended, and
// whether it is suspended at one. A process that has never been advanced
// is not yet held (it is blocked sending its first request).
func (c *Controller) Held(pid int) (string, bool) {
	p := c.proc(pid)
	c.mu.Lock()
	defer c.mu.Unlock()
	return p.held, p.hasHeld
}

// History returns a copy of the points pid has stepped through (only
// populated if SetRecording(true)).
func (c *Controller) History(pid int) []string {
	p := c.proc(pid)
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(p.history))
	copy(out, p.history)
	return out
}

// fetch obtains the point pid is suspended at, waiting for the process to
// arrive at its next gate if necessary. Returns ("", false) if the
// process finished instead.
func (c *Controller) fetch(p *procState) (string, bool) {
	c.mu.Lock()
	if p.hasHeld {
		pt := p.held
		c.mu.Unlock()
		return pt, true
	}
	c.mu.Unlock()
	select {
	case pt := <-p.reqCh:
		c.mu.Lock()
		p.held, p.hasHeld = pt, true
		c.mu.Unlock()
		return pt, true
	case <-p.doneCh:
		return "", false
	}
}

// grant releases pid from its current hold point, allowing exactly the
// announced primitive to execute.
func (c *Controller) grant(p *procState) {
	c.mu.Lock()
	if !p.hasHeld {
		c.mu.Unlock()
		panic(fmt.Sprintf("sched: grant of pid %d which is not held", p.id))
	}
	if c.record {
		p.history = append(p.history, p.held)
	}
	p.held, p.hasHeld = "", false
	c.mu.Unlock()
	p.goCh <- true
}

// StepN advances pid by exactly n gate steps (or fewer if it finishes)
// and then parks it at its next gate point, so that when StepN returns
// the process is deterministically suspended (or done) — it is NOT
// still running code in the background. Returns the number of steps
// actually granted.
func (c *Controller) StepN(pid, n int) int {
	p := c.proc(pid)
	for i := 0; i < n; i++ {
		if _, ok := c.fetch(p); !ok {
			return i
		}
		c.grant(p)
	}
	c.fetch(p) // park at the next point (or observe completion)
	return n
}

// RunUntil advances pid until it is suspended at a point for which pred
// returns true, leaving it suspended there (the matching primitive has NOT
// executed). It returns the matching point and true, or ("", false) if
// the process finished without matching.
func (c *Controller) RunUntil(pid int, pred func(point string) bool) (string, bool) {
	p := c.proc(pid)
	for {
		pt, ok := c.fetch(p)
		if !ok {
			return "", false
		}
		if pred(pt) {
			return pt, true
		}
		c.grant(p)
	}
}

// RunPast advances pid until it has *executed* a point matching pred
// (i.e. RunUntil followed by one grant). Returns the matched point.
func (c *Controller) RunPast(pid int, pred func(point string) bool) (string, bool) {
	pt, ok := c.RunUntil(pid, pred)
	if !ok {
		return "", false
	}
	c.grant(c.proc(pid))
	return pt, true
}

// RunToCompletion advances pid until its function returns (or it is
// killed by a concurrent KillAll).
func (c *Controller) RunToCompletion(pid int) {
	p := c.proc(pid)
	for {
		if _, ok := c.fetch(p); !ok {
			return
		}
		c.grant(p)
	}
}

// AtPoint is a convenience predicate matching an exact point name.
func AtPoint(name string) func(string) bool {
	return func(pt string) bool { return pt == name }
}

// KillAll simulates the process-killing effect of a full-system crash:
// every live process is terminated at its current (or next) gate point,
// without executing the announced primitive. KillAll returns once all
// processes have unwound. The caller is responsible for applying the
// memory effects of the crash (pmem.Pool.Crash).
func (c *Controller) KillAll() {
	c.mu.Lock()
	procs := make([]*procState, 0, len(c.procs))
	for _, p := range c.procs {
		procs = append(procs, p)
	}
	c.mu.Unlock()
	sort.Slice(procs, func(i, j int) bool { return procs[i].id < procs[j].id })
	for _, p := range procs {
		if p.done.Load() {
			continue
		}
		// The process is either suspended at a held point, en route to
		// its next gate, or about to finish. Wait for whichever comes
		// first and kill it if it reaches a gate.
		c.mu.Lock()
		has := p.hasHeld
		if has {
			p.held, p.hasHeld = "", false
		}
		c.mu.Unlock()
		if has {
			p.goCh <- false
			<-p.doneCh
			continue
		}
		select {
		case <-p.reqCh:
			p.goCh <- false
			<-p.doneCh
		case <-p.doneCh:
		}
	}
}
