package ablation

import (
	"strings"
	"testing"
)

func TestE13NoHelpingViolatesDurability(t *testing.T) {
	out, err := NoHelping()
	if err != nil {
		t.Fatal(err)
	}
	if out.Violation == nil {
		t.Fatal("removing helping did NOT violate durability — the ablation is not exercising the design decision")
	}
	// The specific failure: p1's COMPLETED update is erased, because
	// recovery cannot linearize past the gap p0 left at index 1.
	if !strings.Contains(out.Violation.Error(), "R1") {
		t.Fatalf("expected an R1 (erased completed op) violation, got: %v", out.Violation)
	}
}

func TestE13LinearizeFirstViolatesDurability(t *testing.T) {
	out, err := LinearizeFirst()
	if err != nil {
		t.Fatal(err)
	}
	if out.Violation == nil {
		t.Fatal("linearize-before-persist did NOT violate durability")
	}
	// The specific failure: the completed read exposed a value the
	// recovered order cannot explain (R5).
	if !strings.Contains(out.Violation.Error(), "R5") {
		t.Fatalf("expected an R5 (impossible read) violation, got: %v", out.Violation)
	}
}

func TestE13ControlIsClean(t *testing.T) {
	out, err := Control()
	if err != nil {
		t.Fatal(err)
	}
	if out.Violation != nil {
		t.Fatalf("the real construction violated durability in the control scenario: %v", out.Violation)
	}
}
