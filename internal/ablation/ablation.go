// Package ablation runs the E13 experiments: it removes, one at a
// time, the two design decisions the paper derives in Section 3.1 —
// helping (persisting the fuzzy window) and persist-before-linearize —
// and constructs the executions in which each removal provably violates
// durable linearizability, caught by the internal/check validator.
//
// These are the paper's impossibility arguments made executable:
//
//   - No helping: a process that ordered its op but stalls before
//     persisting leaves a hole; later processes persist only their own
//     ops; at a crash, everything after the hole is stranded (recovery
//     cannot linearize past a gap), erasing COMPLETED operations.
//
//   - Linearize before persist: a reader observes the op before it is
//     durable and returns (an external action); the crash then erases
//     the op, leaving the system in a state that contradicts what the
//     reader exposed — exactly the first contradiction of Section 3.1.
package ablation

import (
	"fmt"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/objects"
	"repro/internal/pmem"
	"repro/internal/sched"
	"repro/internal/spec"
)

// Outcome reports one ablation execution.
type Outcome struct {
	Name string
	// Violation is the durability violation the checker found; nil
	// means the ablated variant survived this execution (it should
	// never be nil when the ablation is enabled).
	Violation error
}

const poolSize = 1 << 24

// NoHelping constructs the gap execution against a counter with
// helping disabled and returns the (expected) durability violation.
func NoHelping() (*Outcome, error) {
	ctl := sched.NewController()
	pool := pmem.New(poolSize, ctl)
	in, err := core.New(pool, objects.CounterSpec{}, core.Config{
		NProcs: 2, Gate: ctl, UnsafeNoHelping: true,
	})
	if err != nil {
		return nil, err
	}
	hist := check.NewHistory()

	// p0 orders its op (index 1) and stalls before persisting.
	h0 := in.Handle(0)
	tok0 := hist.Invoke(0, objects.CounterInc, nil, true, h0.NextOpID())
	ctl.Spawn(0, func() {
		ret, _, _ := h0.Update(objects.CounterInc)
		hist.Return(tok0, ret)
	})
	if _, ok := ctl.RunUntil(0, sched.AtPoint(core.PointOrdered)); !ok {
		return nil, fmt.Errorf("ablation: p0 finished early")
	}

	// p1 runs a full update (index 2): with helping it would persist
	// p0's op too; ablated, it persists only its own.
	h1 := in.Handle(1)
	tok1 := hist.Invoke(1, objects.CounterInc, nil, true, h1.NextOpID())
	done1 := ctl.Spawn(1, func() {
		ret, _, _ := h1.Update(objects.CounterInc)
		hist.Return(tok1, ret)
	})
	ctl.RunToCompletion(1)
	<-done1 // p1's op COMPLETED: it must survive any crash.

	ctl.KillAll()
	pool.Crash(pmem.DropAll)
	pool.SetGate(nil)
	_, rep, err := core.Recover(pool, objects.CounterSpec{}, core.Config{})
	if err != nil {
		return nil, err
	}
	rec := check.MakeRecovered(rep.Ordered)
	rec.BaseState, rec.CoveredSeq = rep.BaseState, rep.CoveredSeq
	return &Outcome{
		Name:      "no-helping",
		Violation: check.CheckDurable(objects.CounterSpec{}, hist.Ops(), rec),
	}, nil
}

// LinearizeFirst constructs the exposed-then-erased execution against
// a counter with the available flag set before the persist stage.
func LinearizeFirst() (*Outcome, error) {
	ctl := sched.NewController()
	pool := pmem.New(poolSize, ctl)
	in, err := core.New(pool, objects.CounterSpec{}, core.Config{
		NProcs: 2, Gate: ctl, UnsafeLinearizeFirst: true,
	})
	if err != nil {
		return nil, err
	}
	hist := check.NewHistory()

	// p0's update linearizes (flag set) and stalls before its fence.
	h0 := in.Handle(0)
	tok0 := hist.Invoke(0, objects.CounterInc, nil, true, h0.NextOpID())
	ctl.Spawn(0, func() {
		ret, _, _ := h0.Update(objects.CounterInc)
		hist.Return(tok0, ret)
	})
	if _, ok := ctl.RunUntil(0, sched.AtPoint("pmem.pfence")); !ok {
		return nil, fmt.Errorf("ablation: p0 finished early")
	}

	// A reader on p1 now observes the un-persisted op and RETURNS —
	// the external action of Section 3.1's first contradiction.
	h1 := in.Handle(1)
	tokR := hist.Invoke(1, objects.CounterGet, nil, false, 0)
	doneR := ctl.Spawn(1, func() {
		hist.Return(tokR, h1.Read(objects.CounterGet))
	})
	ctl.RunToCompletion(1)
	<-doneR

	// Crash before p0's fence: the op the reader exposed is erased.
	ctl.KillAll()
	pool.Crash(pmem.DropAll)
	pool.SetGate(nil)
	_, rep, err := core.Recover(pool, objects.CounterSpec{}, core.Config{})
	if err != nil {
		return nil, err
	}
	rec := check.MakeRecovered(rep.Ordered)
	rec.BaseState, rec.CoveredSeq = rep.BaseState, rep.CoveredSeq
	return &Outcome{
		Name:      "linearize-first",
		Violation: check.CheckDurable(objects.CounterSpec{}, hist.Ops(), rec),
	}, nil
}

// Control runs the no-helping scenario with the REAL construction
// (helping on) and must find no violation — demonstrating that the
// checker's complaints above are caused by the ablations alone.
func Control() (*Outcome, error) {
	ctl := sched.NewController()
	pool := pmem.New(poolSize, ctl)
	in, err := core.New(pool, objects.CounterSpec{}, core.Config{NProcs: 2, Gate: ctl})
	if err != nil {
		return nil, err
	}
	hist := check.NewHistory()
	h0 := in.Handle(0)
	tok0 := hist.Invoke(0, objects.CounterInc, nil, true, h0.NextOpID())
	ctl.Spawn(0, func() {
		ret, _, _ := h0.Update(objects.CounterInc)
		hist.Return(tok0, ret)
	})
	if _, ok := ctl.RunUntil(0, sched.AtPoint(core.PointOrdered)); !ok {
		return nil, fmt.Errorf("ablation: p0 finished early")
	}
	h1 := in.Handle(1)
	tok1 := hist.Invoke(1, objects.CounterInc, nil, true, h1.NextOpID())
	done1 := ctl.Spawn(1, func() {
		ret, _, _ := h1.Update(objects.CounterInc)
		hist.Return(tok1, ret)
	})
	ctl.RunToCompletion(1)
	<-done1
	ctl.KillAll()
	pool.Crash(pmem.DropAll)
	pool.SetGate(nil)
	_, rep, err := core.Recover(pool, objects.CounterSpec{}, core.Config{})
	if err != nil {
		return nil, err
	}
	rec := check.MakeRecovered(rep.Ordered)
	rec.BaseState, rec.CoveredSeq = rep.BaseState, rep.CoveredSeq
	return &Outcome{
		Name:      "control (real construction)",
		Violation: check.CheckDurable(objects.CounterSpec{}, hist.Ops(), rec),
	}, nil
}

var _ = spec.Op{} // spec is part of the package's public vocabulary
