package check

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"repro/internal/objects"
	"repro/internal/pmem"
	"repro/internal/spec"
	"repro/internal/workload"
)

// TestCrashInjectionSweep is the randomized crash-injection sweep at
// high process counts (16/32/64): each iteration runs a mixed
// update/read workload, crashes the whole machine at a random global
// step under a random line-survival oracle, recovers the whole image
// (core.Recover over every per-process log, snapshots included), and
// asserts that the recovered state is a valid linearization of the
// acked prefix (CheckDurable rules R1–R5: completed ops survive,
// nothing is invented, real-time order holds, and every return value
// is reproduced by the recovered order).
//
// Even iterations shrink the two-tier inline budget to 1 AND enable
// compaction: every record with a helped operation spills, truncation
// frees and reuses overflow chunks under the random crash point, and
// the compactForSpace pressure valve is armed should a burst exhaust
// the ring (without local views that would be a hard error, per
// core.Config's docs). Odd iterations run the default inline budget
// with compaction, exercising snapshot records at scale. Every third
// iteration additionally switches to the wait-free execution trace, so
// the wait-free ordering + compaction combination (helping across a
// cut) is crashed and recovered at every process count.
//
// -short trims the sweep to 16 processes (the bounded CI job);
// ONLL_SWEEP_ITERS overrides the per-configuration iteration count.
func TestCrashInjectionSweep(t *testing.T) {
	procsList := []int{16, 32, 64}
	iters := 3
	if testing.Short() {
		procsList = []int{16}
	}
	if s := os.Getenv("ONLL_SWEEP_ITERS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("bad ONLL_SWEEP_ITERS %q", s)
		}
		iters = n
	}
	specs := []spec.Spec{objects.MapSpec{}, objects.QueueSpec{}}
	for _, nprocs := range procsList {
		nprocs := nprocs
		t.Run(fmt.Sprintf("procs=%d", nprocs), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(nprocs) * 7717))
			for si, sp := range specs {
				base := HarnessConfig{
					Spec: sp, NProcs: nprocs, OpsPerProc: 12, UpdatePct: 60,
					Seed: int64(si + 1),
				}
				// Probe a full run to learn the step-count magnitude, so
				// random crash points land throughout the execution (a
				// point past the end degenerates to a crash after
				// completion, which must preserve everything).
				probe, err := RunLive(base)
				if err != nil {
					t.Fatalf("%s: probe: %v", sp.Name(), err)
				}
				for i := 0; i < iters; i++ {
					cfg := base
					cfg.Seed = int64(i)*104729 + int64(si)*31 + 17
					cfg.CrashStep = 1 + uint64(rng.Int63n(int64(probe.Steps)))
					cfg.Oracle = pmem.SeededOracle(uint64(cfg.Seed)+uint64(i), uint64(rng.Intn(4)), 3)
					cfg.LocalViews, cfg.CompactEvery = true, 8
					if i%2 == 0 {
						cfg.LogInlineOps = 1 // force helped records through the overflow ring
					}
					cfg.WaitFree = i%3 == 0 // wait-free ordering + compaction combo
					cfg.ReadFastPath = workload.ReadFastPathEnabled()
					// Odd iterations cut base + delta chains instead of
					// full snapshots (unless the CI matrix forces one
					// scheme), so chain append, truncation behind a live
					// chain and base+delta refolding all run under the
					// random crash point.
					cfg.DeltaSnapshots = workload.DeltaSnapshotLeg(i%2 == 1)
					res, err := RunCrash(cfg)
					if err != nil {
						t.Fatalf("%s procs=%d iter=%d crash@%d inline=%d compact=%d delta=%v: %v",
							sp.Name(), nprocs, i, cfg.CrashStep, cfg.LogInlineOps, cfg.CompactEvery, cfg.DeltaSnapshots, err)
					}
					// The recovered instance must be servable by every
					// replacement process, not just consistent on paper.
					if res.Instance != nil {
						for pid := 0; pid < nprocs; pid += nprocs / 4 {
							res.Instance.Handle(pid).Read(readProbe(sp))
						}
					}
				}
			}
			readHeavySweep(t, nprocs, iters)
		})
	}
}

// readHeavySweep is the read-heavy crash mix: 15% updates with the
// read fast path enabled (unless the CI fast-path-off leg disables it)
// and a tight compaction cadence, so epoch-checked reads, shared-view
// publication and adoption all run under the random crash point — and
// again in the recovered era, where every replacement handle starts
// cold and must catch up to a trace it never walked. Probing a read
// from EVERY handle after recovery forces that cold-start path: the
// first walker republishes, the rest adopt.
func readHeavySweep(t *testing.T, nprocs, iters int) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(nprocs)*4049 + 3))
	base := HarnessConfig{
		Spec: objects.MapSpec{}, NProcs: nprocs, OpsPerProc: 30, UpdatePct: 15,
		Seed: int64(nprocs)*13 + 5, LocalViews: true, CompactEvery: 8,
		ReadFastPath: workload.ReadFastPathEnabled(),
	}
	probe, err := RunLive(base)
	if err != nil {
		t.Fatalf("read-heavy probe: %v", err)
	}
	for i := 0; i < iters; i++ {
		cfg := base
		cfg.Seed = int64(i)*50021 + 29
		cfg.CrashStep = 1 + uint64(rng.Int63n(int64(probe.Steps)))
		cfg.Oracle = pmem.SeededOracle(uint64(cfg.Seed), uint64(rng.Intn(4)), 3)
		cfg.WaitFree = i%2 == 1
		cfg.DeltaSnapshots = workload.DeltaSnapshotLeg(i%2 == 0)
		res, err := RunCrash(cfg)
		if err != nil {
			t.Fatalf("read-heavy procs=%d iter=%d crash@%d waitfree=%v fastpath=%v delta=%v: %v",
				nprocs, i, cfg.CrashStep, cfg.WaitFree, cfg.ReadFastPath, cfg.DeltaSnapshots, err)
		}
		if res.Instance != nil {
			for pid := 0; pid < nprocs; pid++ {
				res.Instance.Handle(pid).Read(objects.MapLen)
			}
		}
	}
}

// readProbe returns a read opcode for the sweep's target objects.
func readProbe(sp spec.Spec) uint64 {
	switch sp.(type) {
	case objects.QueueSpec:
		return objects.QueueLen
	default:
		return objects.MapLen
	}
}

// TestCrashInjectionSweepPfences pins the cost side of the two-tier
// scheme at scale: a 16-process update-only run (no crash) must issue
// exactly one persistent fence per update and zero per read, identical
// to the single-tier layout, whether or not records spill.
func TestCrashInjectionSweepPfences(t *testing.T) {
	for _, inline := range []int{0, 1} {
		cfg := HarnessConfig{
			Spec: objects.MapSpec{}, NProcs: 16, OpsPerProc: 25, UpdatePct: 100,
			Seed: 9, LogInlineOps: inline,
		}
		res, err := RunLive(cfg)
		if err != nil {
			t.Fatal(err)
		}
		updates := 0
		for _, o := range res.History {
			if o.IsUpdate {
				updates++
			}
		}
		st := res.Pool.TotalStats()
		// Setup (log headers, roots) fences too; exclude it by bounding:
		// every update fences exactly once, setup adds a known constant
		// (one per log create + two roots, all by the system pid).
		if st.PersistentFences < uint64(updates) {
			t.Fatalf("inline=%d: %d pfences < %d updates", inline, st.PersistentFences, updates)
		}
		perPid := res.Pool.StatsOf(3) // an ordinary worker pid
		var pidUpdates uint64
		for _, o := range res.History {
			if o.IsUpdate && o.PID == 3 {
				pidUpdates++
			}
		}
		// +1: the pid's log header is persisted once at setup.
		if perPid.PersistentFences != pidUpdates+1 {
			t.Fatalf("inline=%d: pid 3 issued %d pfences for %d updates (want exactly 1/update +1 setup)",
				inline, perPid.PersistentFences, pidUpdates)
		}
	}
}
