// Package check verifies the safety properties the paper claims:
// linearizability (Definition 5.4), durable linearizability (Definition
// 5.6) and detectable execution, against recorded concurrent histories
// with injected full-system crashes.
//
// Histories are recorded with a global logical clock; the recorded
// invocation/response window of every operation contains its real
// window, so a history judged non-linearizable here is truly broken,
// and the randomized harness can drive millions of scheduled steps
// through the implementations and fail loudly on any violation.
package check

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/spec"
)

// OpRecord is one operation instance in a recorded history.
type OpRecord struct {
	OpID     uint64 // the implementation's unique op id (0 for reads)
	Token    int    // history-local identifier
	PID      int
	Code     uint64
	Args     [3]uint64
	IsUpdate bool
	Inv      uint64 // logical invocation time
	Ret      uint64 // logical response time; 0 while pending
	RetVal   uint64
}

// Completed reports whether the operation has a response.
func (o *OpRecord) Completed() bool { return o.Ret != 0 }

// Op converts the record to a spec.Op.
func (o *OpRecord) Op() spec.Op {
	return spec.Op{Code: o.Code, Args: o.Args, ID: o.OpID}
}

// History records events from concurrently running processes.
type History struct {
	clock atomic.Uint64
	mu    sync.Mutex
	ops   []*OpRecord
}

// NewHistory returns an empty history.
func NewHistory() *History { return &History{} }

// Invoke records the invocation of an operation and returns its token.
// opID should be the id the operation will carry if it takes effect
// (core.Handle.NextOpID for updates; 0 for reads), so that in-flight
// operations resurfacing after a crash can be attributed.
func (h *History) Invoke(pid int, code uint64, args []uint64, isUpdate bool, opID uint64) int {
	rec := &OpRecord{PID: pid, Code: code, IsUpdate: isUpdate, OpID: opID}
	copy(rec.Args[:], args)
	rec.Inv = h.clock.Add(1)
	h.mu.Lock()
	rec.Token = len(h.ops)
	h.ops = append(h.ops, rec)
	h.mu.Unlock()
	return rec.Token
}

// SetID attributes an operation id to a recorded op after the fact
// (for implementations whose ids are only known once the op returns).
func (h *History) SetID(token int, opID uint64) {
	h.mu.Lock()
	h.ops[token].OpID = opID
	h.mu.Unlock()
}

// Return records the response of the operation with the given token.
func (h *History) Return(token int, retVal uint64) {
	t := h.clock.Add(1)
	h.mu.Lock()
	rec := h.ops[token]
	rec.Ret, rec.RetVal = t, retVal
	h.mu.Unlock()
}

// Ops returns a copy of all recorded operations.
func (h *History) Ops() []OpRecord {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]OpRecord, len(h.ops))
	for i, r := range h.ops {
		out[i] = *r
	}
	return out
}

// ---------------------------------------------------------------------
// Linearizability (Wing–Gong style DFS with memoization).
// ---------------------------------------------------------------------

// Linearizable reports whether the completed operations of ops form a
// linearizable history of sp; pending operations (no response) may be
// linearized or dropped. Suitable for small histories (≈ up to 20 ops);
// the state space is pruned by memoizing (linearized-set, state) pairs.
func Linearizable(sp spec.Spec, ops []OpRecord) bool {
	n := len(ops)
	if n == 0 {
		return true
	}
	if n > 63 {
		panic("check: history too large for bitmask search")
	}
	seen := map[string]bool{}
	var rec func(done uint64, st spec.State) bool
	rec = func(done uint64, st spec.State) bool {
		allDone := true
		for i := range ops {
			if done&(1<<uint(i)) == 0 && ops[i].Completed() {
				allDone = false
				break
			}
		}
		if allDone {
			return true
		}
		key := stateKey(done, st)
		if v, ok := seen[key]; ok {
			return v
		}
		// minRet: the earliest response among unlinearized completed
		// ops; only ops invoked before it can linearize next.
		minRet := ^uint64(0)
		for i := range ops {
			if done&(1<<uint(i)) == 0 && ops[i].Completed() && ops[i].Ret < minRet {
				minRet = ops[i].Ret
			}
		}
		ok := false
		for i := range ops {
			if done&(1<<uint(i)) != 0 {
				continue
			}
			o := &ops[i]
			if o.Inv > minRet {
				continue // something finished entirely before o began
			}
			st2 := st.Clone()
			var got uint64
			if o.IsUpdate {
				got = st2.Apply(o.Op())
			} else {
				got = st2.Read(o.Op())
			}
			if o.Completed() && got != o.RetVal {
				continue // this linearization contradicts the response
			}
			if rec(done|1<<uint(i), st2) {
				ok = true
				break
			}
		}
		seen[key] = ok
		return ok
	}
	return rec(0, sp.New())
}

func stateKey(done uint64, st spec.State) string {
	snap := st.Snapshot()
	b := make([]byte, 0, 8+len(snap)*8)
	for s := done; ; {
		b = append(b, byte(s))
		s >>= 8
		if s == 0 {
			break
		}
	}
	b = append(b, 0xff)
	for _, w := range snap {
		for k := 0; k < 8; k++ {
			b = append(b, byte(w>>uint(8*k)))
		}
	}
	return string(b)
}

// ---------------------------------------------------------------------
// Durable linearizability (Definition 5.6) + detectability.
// ---------------------------------------------------------------------

// Recovered abstracts what a recovery routine reports: the surviving
// update operations in their linearization order. core.Report satisfies
// it via ReportAdapter in the tests (kept abstract here so baselines can
// be validated with the same checker).
type Recovered struct {
	// Ordered is the recovered update sequence, oldest first (the
	// operations AFTER any compaction snapshot).
	Ordered []spec.Op
	// ByID maps op id -> 1-based position in Ordered.
	ByID map[uint64]int
	// BaseState, if non-nil, is the compaction snapshot the sequence
	// starts from (replay restores it before applying Ordered).
	BaseState []uint64
	// CoveredSeq maps process id -> highest op sequence folded into
	// BaseState; ops at or below it were linearized before the crash
	// but their individual records were compacted away.
	CoveredSeq map[int]uint64
}

// MakeRecovered builds a Recovered from an ordered op slice.
func MakeRecovered(ops []spec.Op) *Recovered {
	r := &Recovered{Ordered: ops, ByID: make(map[uint64]int, len(ops))}
	for i, op := range ops {
		r.ByID[op.ID] = i + 1
	}
	return r
}

// covered reports whether op id is inside the compacted prefix.
func (r *Recovered) covered(id uint64) bool {
	if len(r.CoveredSeq) == 0 || id == 0 {
		return false
	}
	pid, seq := spec.SplitID(id)
	return pid >= 0 && seq > 0 && seq <= r.CoveredSeq[pid]
}

// DurabilityViolation describes a failed durable-linearizability check.
type DurabilityViolation struct {
	Rule   string
	Detail string
}

func (v *DurabilityViolation) Error() string {
	return fmt.Sprintf("durable linearizability violated (%s): %s", v.Rule, v.Detail)
}

// CheckDurable validates Definition 5.6 for a crashed execution: ops is
// the pre-crash history (updates and reads, possibly pending), rec is
// what recovery reported. It checks:
//
//	R1 completed-survive: every completed update is in the recovered
//	   sequence (no completed operation may be erased by a crash);
//	R2 no-invention: every recovered update was actually invoked;
//	R3 order: the recovered order respects real-time precedence among
//	   updates (consistent cut + linearizability condition L2);
//	R4 returns: replaying the recovered sequence reproduces the return
//	   value of every completed update — the linearization recovery
//	   committed to really is the one the live run exposed;
//	R5 reads: every completed read's value matches some prefix of the
//	   recovered sequence that is plausible within the read's window.
func CheckDurable(sp spec.Spec, ops []OpRecord, rec *Recovered) error {
	// Index invoked updates by op id.
	invoked := map[uint64]*OpRecord{}
	for i := range ops {
		o := &ops[i]
		if o.IsUpdate && o.OpID != 0 {
			invoked[o.OpID] = o
		}
	}
	// R1 (pending ops have OpID recorded only if the driver knew it;
	// completed updates always do).
	for i := range ops {
		o := &ops[i]
		if o.IsUpdate && o.Completed() {
			if o.OpID == 0 {
				return &DurabilityViolation{"R1", fmt.Sprintf("completed update token %d has no id", o.Token)}
			}
			if _, ok := rec.ByID[o.OpID]; !ok && !rec.covered(o.OpID) {
				return &DurabilityViolation{"R1", fmt.Sprintf("completed update %#x (token %d) erased by crash", o.OpID, o.Token)}
			}
		}
	}
	// R2.
	for id := range rec.ByID {
		if _, ok := invoked[id]; !ok {
			return &DurabilityViolation{"R2", fmt.Sprintf("recovered update %#x was never invoked", id)}
		}
	}
	// R3a for the compacted prefix: a covered op precedes every ordered
	// op in the recovered linearization, so no ordered op may have
	// completed before a covered op was invoked.
	for id, a := range invoked {
		if !rec.covered(id) {
			continue
		}
		for bid := range rec.ByID {
			b := invoked[bid]
			if b.Completed() && b.Ret < a.Inv {
				return &DurabilityViolation{"R3", fmt.Sprintf(
					"update %#x completed before covered update %#x was invoked, yet follows it in recovery",
					bid, id)}
			}
		}
	}
	// R3: if update a completed before update b was invoked and both
	// survived, a must precede b in the recovered order.
	var surv []*OpRecord
	for id := range rec.ByID {
		surv = append(surv, invoked[id])
	}
	sort.Slice(surv, func(i, j int) bool { return rec.ByID[surv[i].OpID] < rec.ByID[surv[j].OpID] })
	for i := range surv {
		for j := range surv {
			a, b := surv[i], surv[j]
			if a.Completed() && a.Ret < b.Inv && rec.ByID[a.OpID] > rec.ByID[b.OpID] {
				return &DurabilityViolation{"R3", fmt.Sprintf(
					"update %#x (pos %d) precedes %#x (pos %d) in real time but follows it in recovery",
					a.OpID, rec.ByID[a.OpID], b.OpID, rec.ByID[b.OpID])}
			}
		}
	}
	// R4 + prefix states for R5. Replay starts from the compaction
	// snapshot when there is one.
	st := sp.New()
	if rec.BaseState != nil {
		if err := st.Restore(rec.BaseState); err != nil {
			return &DurabilityViolation{"R4", fmt.Sprintf("recovered base state unusable: %v", err)}
		}
	}
	prefixes := make([]spec.State, 0, len(rec.Ordered)+1)
	prefixes = append(prefixes, st.Clone())
	for i, op := range rec.Ordered {
		got := st.Apply(op)
		prefixes = append(prefixes, st.Clone())
		if o := invoked[op.ID]; o != nil && o.Completed() && o.RetVal != got {
			return &DurabilityViolation{"R4", fmt.Sprintf(
				"update %#x (pos %d) returned %d live but %d under the recovered order",
				op.ID, i+1, o.RetVal, got)}
		}
	}
	// R5: a completed read must match the state of some recovered
	// prefix i with lo <= i <= hi, where lo counts updates that
	// completed before the read was invoked (they must be visible) and
	// hi counts updates invoked before the read returned (nothing else
	// can be visible).
	for k := range ops {
		r := &ops[k]
		if r.IsUpdate || !r.Completed() {
			continue
		}
		// Compaction caveat: the snapshot collapses its prefix into a
		// single state. This read can only be compared against that
		// state if every compacted-away update was GUARANTEED visible
		// to it (completed strictly before the read was invoked);
		// otherwise the intermediate states the read may legitimately
		// have seen no longer exist and the read is unverifiable (not
		// wrong) — skip it.
		if rec.BaseState != nil {
			unverifiable := false
			for id, u := range invoked {
				if rec.covered(id) && !(u.Completed() && u.Ret < r.Inv) {
					unverifiable = true
					break
				}
			}
			if unverifiable {
				continue
			}
		}
		lo, hi := 0, len(rec.Ordered)
		for _, u := range surv {
			pos := rec.ByID[u.OpID]
			if u.Completed() && u.Ret < r.Inv && pos > lo {
				lo = pos
			}
			if u.Inv > r.Ret && pos-1 < hi {
				hi = pos - 1
			}
		}
		matched := false
		for i := lo; i <= hi && i < len(prefixes); i++ {
			if prefixes[i].Read(r.Op()) == r.RetVal {
				matched = true
				break
			}
		}
		if !matched {
			return &DurabilityViolation{"R5", fmt.Sprintf(
				"read token %d (code %d) returned %d, impossible in window [%d,%d] of the recovered order",
				r.Token, r.Code, r.RetVal, lo, hi)}
		}
	}
	return nil
}
