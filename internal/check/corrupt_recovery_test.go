package check

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/objects"
	"repro/internal/plog"
	"repro/internal/pmem"
	"repro/internal/sched"
	"repro/internal/spec"
)

// These tests drive whole-image recovery (core.Recover over every
// per-process plog) against adversarially damaged durable images:
// random word corruption, torn snapshot-region counts, and clobbered
// root slots. Unlike the crash-injection harness (which validates
// durable linearizability for LEGAL crash outcomes), corruption here is
// beyond what a crash can produce, so the contract is weaker but
// absolute: recovery must return an error or a consistent instance —
// it must never panic.

// buildCrashedImage runs a compacting instance (so snapshot records and
// truncated logs exist), then crashes keeping all in-flight lines.
func buildCrashedImage(t *testing.T, sp spec.Spec) *pmem.Pool {
	t.Helper()
	pool := pmem.New(1<<22, nil)
	in, err := core.New(pool, sp, core.Config{
		NProcs: 2, LogCapacity: 128, LocalViews: true, CompactEvery: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	for pid := 0; pid < 2; pid++ {
		h := in.Handle(pid)
		for i := 0; i < 40; i++ {
			k := uint64(pid*100 + i%8 + 1)
			if _, _, err := h.Update(objects.MapPut, k, k*3); err != nil {
				t.Fatal(err)
			}
		}
	}
	pool.Crash(pmem.KeepAll)
	return pool
}

// durablyCorrupt overwrites one durable word of the image.
func durablyCorrupt(pool *pmem.Pool, addr pmem.Addr, val uint64) {
	pool.Store(pmem.RootSystemPID, addr, val)
	pool.Persist(pmem.RootSystemPID, addr, pmem.WordSize)
	pool.Crash(pmem.DropAll)
}

// recoverGuarded runs core.Recover and converts panics into test
// failures; it returns whether recovery succeeded.
func recoverGuarded(t *testing.T, pool *pmem.Pool, sp spec.Spec, label string) (ok bool) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s: recovery panicked: %v", label, r)
		}
	}()
	in, _, err := core.Recover(pool, sp, core.Config{})
	if err != nil {
		return false
	}
	// A successful recovery must produce a servable object.
	in.Handle(0).Read(objects.MapLen)
	return true
}

// TestRecoveryFuzzRandomCorruption sprays durable word corruption over
// crashed images — hitting logs, snapshot regions and the root table —
// and requires recovery to error or succeed, never panic.
func TestRecoveryFuzzRandomCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		pool := buildCrashedImage(t, objects.MapSpec{})
		for n := 1 + rng.Intn(5); n > 0; n-- {
			w := rng.Intn(pool.Size() / (8 * pmem.WordSize))
			addr := pmem.Addr(w * pmem.WordSize)
			var val uint64
			switch rng.Intn(3) {
			case 0:
				val = rng.Uint64()
			case 1:
				val = pool.DurableWord(addr) ^ (1 << uint(rng.Intn(64)))
			default:
				val = ^uint64(0)
			}
			durablyCorrupt(pool, addr, val)
		}
		recoverGuarded(t, pool, objects.MapSpec{}, "random corruption")
	}
}

// TestRecoveryClobberedRootSlots points the per-process log roots at
// garbage (out of bounds, unaligned, mid-pool) — recovery must reject
// the image, not chase wild pointers.
func TestRecoveryClobberedRootSlots(t *testing.T) {
	for _, bad := range []uint64{^uint64(0), 3, 1 << 60, uint64(1 << 21)} {
		pool := buildCrashedImage(t, objects.MapSpec{})
		// Root slot 8 holds process 0's log base (core's rootLogBase).
		durablyCorrupt(pool, pmem.Addr(8*pmem.WordSize), bad)
		if recoverGuarded(t, pool, objects.MapSpec{}, "clobbered root") {
			// Mid-pool pointers may land on non-magic words and already
			// fail; succeeding is only acceptable if the pointer happens
			// to frame a valid log, which none of these values do.
			t.Fatalf("root=%#x: recovery accepted a wild log pointer", bad)
		}
	}
}

// TestRecoveryTornOverflowFallsBack builds a deterministic image in
// which one record spilled to its log's overflow ring (a process is
// stalled between order and persist, so the next updater's record
// carries two ops — past the inline budget of 1), then corrupts the
// spilled record's overflow chunk. Whole-image recovery must fall back
// to the records before the tear: it recovers exactly the prefix whose
// records still verify, serves reads from it, and never panics.
func TestRecoveryTornOverflowFallsBack(t *testing.T) {
	ctl := sched.NewController()
	pool := pmem.New(1<<22, ctl)
	in, err := core.New(pool, objects.MapSpec{}, core.Config{
		NProcs: 3, LogCapacity: 64, LogInlineOps: 1, Gate: ctl,
	})
	if err != nil {
		t.Fatal(err)
	}
	// p1 orders an update but stalls before persisting it.
	ctl.Spawn(1, func() { in.Handle(1).Update(objects.MapPut, 100, 1) })
	if _, ok := ctl.RunUntil(1, sched.AtPoint(core.PointOrdered)); !ok {
		t.Fatal("p1 finished early")
	}
	// p0's first update helps p1's stalled op: a 2-op record, which the
	// inline budget of 1 forces through the overflow ring. The following
	// updates see p0's own op available, so they stay inline.
	done := ctl.Spawn(0, func() {
		h := in.Handle(0)
		for i := 0; i < 4; i++ {
			if _, _, err := h.Update(objects.MapPut, uint64(i+1), uint64(10*(i+1))); err != nil {
				panic(err)
			}
		}
	})
	ctl.RunToCompletion(0)
	<-done
	ctl.KillAll()

	recs := in.Log(0).Records()
	if len(recs) != 4 || !recs[0].Overflow || recs[0].Kind != plog.KindOps {
		t.Fatalf("setup: p0 log %+v, want 4 records with the first spilled", recs)
	}
	if recs[1].Overflow || recs[2].Overflow || recs[3].Overflow {
		t.Fatalf("setup: later records unexpectedly spilled: %+v", recs)
	}
	off, _, _ := recs[0].OverflowSpan()
	ovfBase, _ := in.Log(0).OverflowRegion()
	pool.SetGate(nil)
	pool.Crash(pmem.KeepAll) // everything in flight lands; image is intact
	durablyCorrupt(pool, ovfBase+pmem.Addr(off*pmem.WordSize), 0xBADC0DE)

	in2, rep, err := core.Recover(pool, objects.MapSpec{}, core.Config{})
	if err != nil {
		t.Fatalf("recovery after torn overflow: %v", err)
	}
	// The spilled record held indices 1 (p1's helped op) and 2 (p0's
	// first own op); tearing its chunk kills p0's whole log prefix, so
	// nothing is recoverable: index 1 exists in no other log.
	if rep.LastIdx != 0 || len(rep.Ordered) != 0 {
		t.Fatalf("recovered %d ops past a torn overflow chunk: %+v", rep.LastIdx, rep.Ordered)
	}
	if got := in2.Handle(0).Read(objects.MapLen); got != 0 {
		t.Fatalf("post-recovery map has %d entries, want 0", got)
	}
}

// TestRecoveryTornOverflowKeepsPrefix is the counterpart with the tear
// in a LATER spilled record: a second stall forces p0's fourth record
// through the ring; corrupting that chunk must preserve the three
// records before it.
func TestRecoveryTornOverflowKeepsPrefix(t *testing.T) {
	ctl := sched.NewController()
	pool := pmem.New(1<<22, ctl)
	in, err := core.New(pool, objects.MapSpec{}, core.Config{
		NProcs: 3, LogCapacity: 64, LogInlineOps: 1, Gate: ctl,
	})
	if err != nil {
		t.Fatal(err)
	}
	// p0 performs three clean updates (indices 1..3, all inline) and a
	// fourth one; the controller holds it after the third so p2 can
	// stall mid-order first, making the fourth record spill.
	done := ctl.Spawn(0, func() {
		h := in.Handle(0)
		for i := 0; i < 4; i++ {
			k, v := uint64(i+1), uint64(10*(i+1))
			if i == 3 {
				k, v = 50, 500
			}
			if _, _, err := h.Update(objects.MapPut, k, v); err != nil {
				panic(err)
			}
		}
	})
	for i := 0; i < 3; i++ {
		if _, ok := ctl.RunPast(0, sched.AtPoint(core.PointReturn)); !ok {
			t.Fatal("p0 finished early")
		}
	}
	// p2 orders index 4 and stalls; p0's fourth update (index 5) helps
	// it and spills past the inline budget of 1.
	ctl.Spawn(2, func() { in.Handle(2).Update(objects.MapPut, 200, 2) })
	if _, ok := ctl.RunUntil(2, sched.AtPoint(core.PointOrdered)); !ok {
		t.Fatal("p2 finished early")
	}
	ctl.RunToCompletion(0)
	<-done
	ctl.KillAll()

	recs := in.Log(0).Records()
	if len(recs) != 4 || !recs[3].Overflow {
		t.Fatalf("setup: p0 log %+v, want 4 records with the last spilled", recs)
	}
	off, _, _ := recs[3].OverflowSpan()
	ovfBase, _ := in.Log(0).OverflowRegion()
	pool.SetGate(nil)
	pool.Crash(pmem.KeepAll)
	durablyCorrupt(pool, ovfBase+pmem.Addr(off*pmem.WordSize), 0xBADC0DE)

	in2, rep, err := core.Recover(pool, objects.MapSpec{}, core.Config{})
	if err != nil {
		t.Fatalf("recovery after torn overflow: %v", err)
	}
	if rep.LastIdx != 3 {
		t.Fatalf("recovered LastIdx %d, want the 3-op prefix before the tear", rep.LastIdx)
	}
	h := in2.Handle(0)
	for i := 1; i <= 3; i++ {
		if got := h.Read(objects.MapGet, uint64(i)); got != uint64(10*i) {
			t.Fatalf("recovered map[%d] = %d, want %d", i, got, 10*i)
		}
	}
	if got := h.Read(objects.MapGet, 50); got == 500 {
		t.Fatal("op after the torn record survived recovery")
	}
}

// TestRecoveryUncorruptedBaseline pins that the corruption tests fail
// for the right reason: the same image recovers fine untouched, with
// the full map contents.
func TestRecoveryUncorruptedBaseline(t *testing.T) {
	pool := buildCrashedImage(t, objects.MapSpec{})
	in, rep, err := core.Recover(pool, objects.MapSpec{}, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.LastIdx != 80 {
		t.Fatalf("recovered %d ops, want 80", rep.LastIdx)
	}
	h := in.Handle(0)
	if got := h.Read(objects.MapGet, 1); got != 3 {
		t.Fatalf("recovered map[1] = %d, want 3", got)
	}
}

// buildCrashedChainImage runs a single-process delta-compacting
// instance over distinct keys until a live chain (base + deltas)
// exists, then crashes keeping every in-flight line. It returns the
// pool and the newest delta record (the chain head) for fault
// targeting.
func buildCrashedChainImage(t *testing.T) (*pmem.Pool, plog.Record) {
	t.Helper()
	pool := pmem.New(1<<22, nil)
	in, err := core.New(pool, objects.MapSpec{}, core.Config{
		NProcs: 1, LogCapacity: 128, DeltaSnapshots: true, CompactEvery: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := in.Handle(0)
	for i := 0; i < 32; i++ {
		if _, _, err := h.Update(objects.MapPut, uint64(i+1), uint64(3*(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if cl := in.Log(0).ChainLen(); cl < 2 {
		t.Fatalf("setup: chain has %d links, want base + deltas", cl)
	}
	var head plog.Record
	found := false
	for _, r := range in.Log(0).Records() {
		if r.Kind == plog.KindDelta {
			head, found = r, true
		}
	}
	if !found {
		t.Fatal("setup: no live delta record")
	}
	pool.Crash(pmem.KeepAll)
	return pool, head
}

// TestRecoveryTornChainPredecessorBody corrupts a payload word inside
// the chain head's PREDECESSOR body — damage the head record's own
// checksum cannot see, only the back-reference checksum carried in the
// head body can. Strict whole-image recovery must refuse with
// snapshot-corruption evidence (the chain no longer folds, so the
// truncated prefix is unreconstructible); salvaging recovery must
// quarantine with the same taxonomy and return to service via
// Recreate. Never a panic, never a silently wrong state.
func TestRecoveryTornChainPredecessorBody(t *testing.T) {
	pool, head := buildCrashedChainImage(t)
	// Body[2] is the back-reference address of the predecessor body
	// (validated at resolve time); smash a word inside that region,
	// past its 5-word frame header.
	durablyCorrupt(pool, pmem.Addr(head.Body[2])+pmem.Addr(5*pmem.WordSize), ^uint64(0))
	if _, _, err := core.Recover(pool, objects.MapSpec{}, core.Config{}); !errors.Is(err, core.ErrSnapshotCorrupt) {
		t.Fatalf("strict recovery over a torn chain predecessor: err=%v, want ErrSnapshotCorrupt", err)
	}

	pool2, head2 := buildCrashedChainImage(t)
	durablyCorrupt(pool2, pmem.Addr(head2.Body[2])+pmem.Addr(5*pmem.WordSize), ^uint64(0))
	in, _, err := core.Recover(pool2, objects.MapSpec{}, core.Config{Salvage: true})
	if err != nil {
		t.Fatalf("salvaging recovery must absorb chain damage, got: %v", err)
	}
	if m := in.Health().Mode; m != core.ModeQuarantined {
		t.Fatalf("health after unfoldable chain = %v, want quarantined", m)
	}
	if reason := in.Health().Reason; !errors.Is(reason, core.ErrSnapshotCorrupt) {
		t.Fatalf("quarantine reason %v lacks snapshot-corruption evidence", reason)
	}
	if err := in.Recreate(); err != nil {
		t.Fatalf("Recreate after chain quarantine: %v", err)
	}
	if _, _, err := in.Handle(0).Update(objects.MapPut, 1000, 1); err != nil {
		t.Fatalf("update after Recreate: %v", err)
	}
}

// TestRecoveryFlippedChainBackRef flips one bit of the back-reference
// word INSIDE the chain head's checksummed body on media. The body
// checksum fails, so the head record reads as never appended — the
// forged pointer is never followed — and with it the truncated log
// loses its only coverage. Strict recovery must report exactly that
// (truncation without a readable covering record) instead of silently
// recovering nothing; salvage must quarantine on the same evidence.
func TestRecoveryFlippedChainBackRef(t *testing.T) {
	pool, head := buildCrashedChainImage(t)
	addr, _, ok := head.ChainBody()
	if !ok {
		t.Fatal("chain head without a body region")
	}
	cur := pool.DurableWord(addr + pmem.Addr(2*pmem.WordSize))
	durablyCorrupt(pool, addr+pmem.Addr(2*pmem.WordSize), cur^(1<<17))
	if _, _, err := core.Recover(pool, objects.MapSpec{}, core.Config{}); !errors.Is(err, core.ErrSnapshotCorrupt) {
		t.Fatalf("strict recovery over a flipped back-reference: err=%v, want ErrSnapshotCorrupt", err)
	}

	pool2, head2 := buildCrashedChainImage(t)
	addr2, _, _ := head2.ChainBody()
	cur2 := pool2.DurableWord(addr2 + pmem.Addr(2*pmem.WordSize))
	durablyCorrupt(pool2, addr2+pmem.Addr(2*pmem.WordSize), cur2^(1<<17))
	in, _, err := core.Recover(pool2, objects.MapSpec{}, core.Config{Salvage: true})
	if err != nil {
		t.Fatalf("salvaging recovery must absorb a broken chain head, got: %v", err)
	}
	if m := in.Health().Mode; m != core.ModeQuarantined {
		t.Fatalf("health after lost chain coverage = %v, want quarantined", m)
	}
}

// TestRecoveryChainBaseBeforeFirstDelta crashes in the window between
// a chain-base cut and the first delta: the live chain is exactly one
// base link. Recovery must restore the full state from the base alone,
// with every update detectable — the base is self-contained coverage,
// not an incomplete chain.
func TestRecoveryChainBaseBeforeFirstDelta(t *testing.T) {
	pool := pmem.New(1<<22, nil)
	in, err := core.New(pool, objects.MapSpec{}, core.Config{
		NProcs: 1, LogCapacity: 128, DeltaSnapshots: true, CompactEvery: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := in.Handle(0)
	// Exactly one cadence: the 8th update triggers the first cut, a
	// fresh base; the crash lands before any delta is appended.
	for i := 0; i < 8; i++ {
		if _, _, err := h.Update(objects.MapPut, uint64(i+1), uint64(3*(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if cl := in.Log(0).ChainLen(); cl != 1 {
		t.Fatalf("setup: chain has %d links, want the lone base", cl)
	}
	pool.Crash(pmem.KeepAll)
	in2, rep, err := core.Recover(pool, objects.MapSpec{}, core.Config{DeltaSnapshots: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.BaseIdx != 8 {
		t.Fatalf("recovered BaseIdx %d, want 8 (the base cut)", rep.BaseIdx)
	}
	h2 := in2.Handle(0)
	for i := 1; i <= 8; i++ {
		if got := h2.Read(objects.MapGet, uint64(i)); got != uint64(3*i) {
			t.Fatalf("recovered map[%d] = %d, want %d", i, got, 3*i)
		}
	}
	for seq := uint64(1); seq <= 8; seq++ {
		if _, ok := rep.WasLinearized(spec.MakeID(0, seq)); !ok {
			t.Fatalf("op %d vanished across the base-only chain", seq)
		}
	}
}

// TestRecoveryFuzzRandomCorruptionDeltaChains is the delta-chain leg
// of the random-corruption fuzz: sprayed durable word corruption over
// an image whose logs hold live chains (record slots, chain bodies and
// back-references alike) must leave recovery erroring or returning a
// consistent, servable instance — never panicking, never chasing a
// forged chain pointer out of bounds.
func TestRecoveryFuzzRandomCorruptionDeltaChains(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 60; trial++ {
		pool, _ := buildCrashedChainImage(t)
		for n := 1 + rng.Intn(5); n > 0; n-- {
			w := rng.Intn(pool.Size() / (8 * pmem.WordSize))
			addr := pmem.Addr(w * pmem.WordSize)
			var val uint64
			switch rng.Intn(3) {
			case 0:
				val = rng.Uint64()
			case 1:
				val = pool.DurableWord(addr) ^ (1 << uint(rng.Intn(64)))
			default:
				val = ^uint64(0)
			}
			durablyCorrupt(pool, addr, val)
		}
		recoverGuarded(t, pool, objects.MapSpec{}, "delta-chain corruption")
	}
}
