package check

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/objects"
	"repro/internal/pmem"
	"repro/internal/spec"
)

// These tests drive whole-image recovery (core.Recover over every
// per-process plog) against adversarially damaged durable images:
// random word corruption, torn snapshot-region counts, and clobbered
// root slots. Unlike the crash-injection harness (which validates
// durable linearizability for LEGAL crash outcomes), corruption here is
// beyond what a crash can produce, so the contract is weaker but
// absolute: recovery must return an error or a consistent instance —
// it must never panic.

// buildCrashedImage runs a compacting instance (so snapshot records and
// truncated logs exist), then crashes keeping all in-flight lines.
func buildCrashedImage(t *testing.T, sp spec.Spec) *pmem.Pool {
	t.Helper()
	pool := pmem.New(1<<22, nil)
	in, err := core.New(pool, sp, core.Config{
		NProcs: 2, LogCapacity: 128, LocalViews: true, CompactEvery: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	for pid := 0; pid < 2; pid++ {
		h := in.Handle(pid)
		for i := 0; i < 40; i++ {
			k := uint64(pid*100 + i%8 + 1)
			if _, _, err := h.Update(objects.MapPut, k, k*3); err != nil {
				t.Fatal(err)
			}
		}
	}
	pool.Crash(pmem.KeepAll)
	return pool
}

// durablyCorrupt overwrites one durable word of the image.
func durablyCorrupt(pool *pmem.Pool, addr pmem.Addr, val uint64) {
	pool.Store(pmem.RootSystemPID, addr, val)
	pool.Persist(pmem.RootSystemPID, addr, pmem.WordSize)
	pool.Crash(pmem.DropAll)
}

// recoverGuarded runs core.Recover and converts panics into test
// failures; it returns whether recovery succeeded.
func recoverGuarded(t *testing.T, pool *pmem.Pool, sp spec.Spec, label string) (ok bool) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s: recovery panicked: %v", label, r)
		}
	}()
	in, _, err := core.Recover(pool, sp, core.Config{})
	if err != nil {
		return false
	}
	// A successful recovery must produce a servable object.
	in.Handle(0).Read(objects.MapLen)
	return true
}

// TestRecoveryFuzzRandomCorruption sprays durable word corruption over
// crashed images — hitting logs, snapshot regions and the root table —
// and requires recovery to error or succeed, never panic.
func TestRecoveryFuzzRandomCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		pool := buildCrashedImage(t, objects.MapSpec{})
		for n := 1 + rng.Intn(5); n > 0; n-- {
			w := rng.Intn(pool.Size() / (8 * pmem.WordSize))
			addr := pmem.Addr(w * pmem.WordSize)
			var val uint64
			switch rng.Intn(3) {
			case 0:
				val = rng.Uint64()
			case 1:
				val = pool.DurableWord(addr) ^ (1 << uint(rng.Intn(64)))
			default:
				val = ^uint64(0)
			}
			durablyCorrupt(pool, addr, val)
		}
		recoverGuarded(t, pool, objects.MapSpec{}, "random corruption")
	}
}

// TestRecoveryClobberedRootSlots points the per-process log roots at
// garbage (out of bounds, unaligned, mid-pool) — recovery must reject
// the image, not chase wild pointers.
func TestRecoveryClobberedRootSlots(t *testing.T) {
	for _, bad := range []uint64{^uint64(0), 3, 1 << 60, uint64(1 << 21)} {
		pool := buildCrashedImage(t, objects.MapSpec{})
		// Root slot 8 holds process 0's log base (core's rootLogBase).
		durablyCorrupt(pool, pmem.Addr(8*pmem.WordSize), bad)
		if recoverGuarded(t, pool, objects.MapSpec{}, "clobbered root") {
			// Mid-pool pointers may land on non-magic words and already
			// fail; succeeding is only acceptable if the pointer happens
			// to frame a valid log, which none of these values do.
			t.Fatalf("root=%#x: recovery accepted a wild log pointer", bad)
		}
	}
}

// TestRecoveryUncorruptedBaseline pins that the corruption tests fail
// for the right reason: the same image recovers fine untouched, with
// the full map contents.
func TestRecoveryUncorruptedBaseline(t *testing.T) {
	pool := buildCrashedImage(t, objects.MapSpec{})
	in, rep, err := core.Recover(pool, objects.MapSpec{}, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.LastIdx != 80 {
		t.Fatalf("recovered %d ops, want 80", rep.LastIdx)
	}
	h := in.Handle(0)
	if got := h.Read(objects.MapGet, 1); got != 3 {
		t.Fatalf("recovered map[1] = %d, want 3", got)
	}
}
