package check

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/objects"
	"repro/internal/pmem"
	"repro/internal/spec"
	"repro/internal/workload"
)

// TestFaultInjectionSweep is the randomized crash-point × fault-plan
// sweep: each iteration crashes a mixed workload at a random global
// step under a random survival oracle, injects a seeded plan of media
// faults (torn lines, bit flips, stuck-at lines) into the durable
// image, recovers in salvage mode, and checks the three-outcome
// contract:
//
//   - Healthy / Degraded: the recovered state must pass CheckDurable,
//     after the one concession the fault model forces — completed
//     updates whose records sat at a log's append frontier may have
//     been destroyed indistinguishably from a torn in-flight append,
//     so such ops are demoted to pending IF AND ONLY IF they form a
//     per-process suffix (pruneLostTail). Loss anywhere else is a
//     silent-wrong-value failure.
//   - Quarantined: Update and TryRead must refuse with
//     ErrObjectQuarantined, the health reason must carry a taxonomy
//     error naming the evidence, and Recreate must return the object
//     to service on the salvaged prefix.
//
// In every outcome recovery must not panic or invent operations, and
// the scrubber must agree with salvage (damage bridged in degraded
// mode is still latent on media) while spending zero fences.
//
// -short trims the sweep to 16 processes (the bounded CI job);
// ONLL_FAULT_SWEEP_ITERS overrides the per-count iteration count.
func TestFaultInjectionSweep(t *testing.T) {
	procsList := []int{16, 32}
	iters := 3
	if testing.Short() {
		procsList = []int{16}
	}
	if s := os.Getenv("ONLL_FAULT_SWEEP_ITERS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("bad ONLL_FAULT_SWEEP_ITERS %q", s)
		}
		iters = n
	}
	specs := []spec.Spec{objects.MapSpec{}, objects.QueueSpec{}}
	for _, nprocs := range procsList {
		nprocs := nprocs
		t.Run(fmt.Sprintf("procs=%d", nprocs), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(nprocs)*30011 + 17))
			for it := 0; it < iters; it++ {
				sp := specs[it%len(specs)]
				runFaultIteration(t, sp, nprocs, it, rng)
			}
		})
	}
}

// runFaultIteration executes one crash+fault+recover cycle and applies
// the three-outcome oracle.
func runFaultIteration(t *testing.T, sp spec.Spec, nprocs, it int, rng *rand.Rand) {
	t.Helper()
	base := HarnessConfig{
		Spec: sp, NProcs: nprocs, OpsPerProc: 12, UpdatePct: 60,
		Seed: int64(it)*101 + int64(nprocs),
	}
	if it%2 == 0 {
		// Spill-heavy shape: every helped record overflows, compaction
		// churns the ring, and faults land on chunk and snapshot lines
		// too, not just inline slots.
		base.LogInlineOps = 1
		base.LocalViews = true
		base.CompactEvery = 8
	}
	if it%3 == 0 {
		base.WaitFree = true
	}
	// Alternate compaction schemes across the compacting legs (the CI
	// matrix can force either), so faults land on chain bodies and
	// back-references too and salvage composes with unresolvable
	// chains, not just broken snapshots.
	base.DeltaSnapshots = workload.DeltaSnapshotLeg(it%4 == 0)
	probe, err := RunLive(base)
	if err != nil {
		t.Fatalf("p%d i%d: live probe: %v", nprocs, it, err)
	}
	cfg := base
	cfg.CrashStep = 1 + uint64(rng.Int63n(int64(probe.Steps)))
	cfg.Oracle = pmem.SeededOracle(rng.Uint64(), uint64(rng.Intn(4)), 3)
	cfg.FaultCount = 1 + rng.Intn(3)
	cfg.FaultSeed = rng.Uint64()

	res, err := RunCrash(cfg)
	if err != nil {
		// Salvaging recovery never hard-fails on log damage (the root
		// table is outside the fault plan's range); an error here is a
		// harness bug or a panic that escaped a worker.
		t.Fatalf("p%d i%d (crash=%d faults=%v): %v",
			nprocs, it, cfg.CrashStep, res.FaultPlan.Faults, err)
	}
	rep, in := res.Report, res.Instance
	health := in.Health()
	t.Logf("p%d i%d: crash=%d faults=%d -> %v (bad=%d orphans=%d unopened=%d)",
		nprocs, it, cfg.CrashStep, len(res.FaultPlan.Faults), health.Mode,
		health.BadSlots, health.Orphans, health.LogsUnopened)

	// No invention, in every mode: each recovered op was really invoked.
	known := make(map[uint64]bool, len(res.History))
	for i := range res.History {
		if res.History[i].OpID != 0 {
			known[res.History[i].OpID] = true
		}
	}
	for _, op := range rep.Ordered {
		if op.ID != 0 && !known[op.ID] {
			t.Errorf("p%d i%d: recovered op %#x was never invoked", nprocs, it, op.ID)
		}
	}

	// The scrubber sees what salvage saw — before any new append can
	// overwrite the damage — and spends nothing on the paper's meters.
	before := res.Pool.TotalStats()
	scrub := in.Scrub()
	after := res.Pool.TotalStats()
	if after.Fences != before.Fences || after.PersistentFences != before.PersistentFences {
		t.Errorf("p%d i%d: scrub issued fences (%+v -> %+v)", nprocs, it, before, after)
	}

	switch health.Mode {
	case core.ModeQuarantined:
		checkQuarantined(t, sp, res, nprocs, it)
	case core.ModeHealthy, core.ModeDegraded:
		if health.Mode == core.ModeDegraded && !scrub.Faulty {
			t.Errorf("p%d i%d: degraded instance but scrub found no latent damage", nprocs, it)
		}
		if health.Mode == core.ModeHealthy && scrub.Faulty {
			t.Errorf("p%d i%d: healthy instance but scrub flags damage: %+v", nprocs, it, scrub.PerPid)
		}
		pruned, dropped, perr := pruneLostTail(res.History, rep)
		if perr != nil {
			t.Errorf("p%d i%d (%s, crash=%d faults=%v): %v",
				nprocs, it, health.Mode, cfg.CrashStep, res.FaultPlan.Faults, perr)
			return
		}
		if dropped > 0 {
			t.Logf("p%d i%d (%s): %d completed update(s) torn off the frontier, demoted to pending",
				nprocs, it, health.Mode, dropped)
		}
		rec := MakeRecovered(rep.Ordered)
		rec.BaseState, rec.CoveredSeq = rep.BaseState, rep.CoveredSeq
		if err := CheckDurable(sp, pruned, rec); err != nil {
			t.Errorf("p%d i%d (%s, crash=%d faults=%v): %v",
				nprocs, it, health.Mode, cfg.CrashStep, res.FaultPlan.Faults, err)
		}
		// The survivor serves: reads answer and updates land.
		h := in.Handle(0)
		if _, err := h.TryRead(readProbe(sp)); err != nil {
			t.Errorf("p%d i%d (%s): TryRead after recovery: %v", nprocs, it, health.Mode, err)
		}
		st := workload.NewGenerator(sp).Stream(int64(it)+1, 1, 100)[0]
		if _, _, err := h.Update(st.Code, st.Args...); err != nil {
			t.Errorf("p%d i%d (%s): update after recovery: %v", nprocs, it, health.Mode, err)
		}
	default:
		t.Errorf("p%d i%d: unknown health mode %v", nprocs, it, health.Mode)
	}
}

// checkQuarantined asserts the quarantine contract: typed refusal with
// taxonomy evidence, then Recreate restores service.
func checkQuarantined(t *testing.T, sp spec.Spec, res *HarnessResult, nprocs, it int) {
	t.Helper()
	in := res.Instance
	reason := in.Health().Reason
	if !errors.Is(reason, core.ErrObjectQuarantined) {
		t.Errorf("p%d i%d: quarantined without ErrObjectQuarantined: %v", nprocs, it, reason)
	}
	if !errors.Is(reason, core.ErrTornRecord) &&
		!errors.Is(reason, core.ErrBadSlotHeader) &&
		!errors.Is(reason, core.ErrSnapshotCorrupt) {
		t.Errorf("p%d i%d: quarantine reason lacks taxonomy evidence: %v", nprocs, it, reason)
	}
	h := in.Handle(0)
	st := workload.NewGenerator(sp).Stream(int64(it)+1, 1, 100)[0]
	if _, _, err := h.Update(st.Code, st.Args...); !errors.Is(err, core.ErrObjectQuarantined) {
		t.Errorf("p%d i%d: quarantined Update returned %v, want ErrObjectQuarantined", nprocs, it, err)
	}
	if _, err := h.TryRead(readProbe(sp)); !errors.Is(err, core.ErrObjectQuarantined) {
		t.Errorf("p%d i%d: quarantined TryRead returned %v, want ErrObjectQuarantined", nprocs, it, err)
	}
	if err := in.Recreate(); err != nil {
		t.Errorf("p%d i%d: Recreate: %v", nprocs, it, err)
		return
	}
	if m := in.Health().Mode; m != core.ModeHealthy {
		t.Errorf("p%d i%d: health after Recreate = %v, want healthy", nprocs, it, m)
	}
	h = in.Handle(0)
	if _, _, err := h.Update(st.Code, st.Args...); err != nil {
		t.Errorf("p%d i%d: update after Recreate: %v", nprocs, it, err)
	}
	if _, err := h.TryRead(readProbe(sp)); err != nil {
		t.Errorf("p%d i%d: TryRead after Recreate: %v", nprocs, it, err)
	}
}

// TestPruneLostTail pins the concession's boundary deterministically
// (random sweeps hit the frontier-destruction case too rarely to rely
// on): a lost tail demotes and censors late readers; a lost middle is
// silent loss and must be rejected.
func TestPruneLostTail(t *testing.T) {
	mk := func(pid int, seq uint64, inv, ret uint64) OpRecord {
		return OpRecord{OpID: spec.MakeID(pid, seq), PID: pid, IsUpdate: true, Inv: inv, Ret: ret}
	}
	read := func(pid int, inv, ret uint64) OpRecord {
		return OpRecord{PID: pid, Inv: inv, Ret: ret}
	}
	rep := &core.Report{Linearized: map[uint64]uint64{
		spec.MakeID(0, 1): 1,
		spec.MakeID(0, 2): 2,
	}}
	hist := []OpRecord{
		mk(0, 1, 1, 2),
		mk(0, 2, 3, 4),
		mk(0, 3, 7, 9), // completed, unrecovered, at the tail: prunable
		read(1, 1, 5),  // responded before the lost op's invocation: kept
		read(1, 8, 10), // responded after: censored
		read(1, 11, 0), // pending: kept
	}
	out, dropped, err := pruneLostTail(hist, rep)
	if err != nil || dropped != 1 {
		t.Fatalf("prune: dropped=%d err=%v", dropped, err)
	}
	if len(out) != 5 {
		t.Fatalf("pruned history has %d records, want 5 (late read censored)", len(out))
	}
	for i := range out {
		o := &out[i]
		switch {
		case o.OpID == spec.MakeID(0, 3):
			if o.Completed() {
				t.Errorf("lost tail op still completed after pruning")
			}
		case !o.IsUpdate && o.Ret == 10:
			t.Errorf("read that responded after the lost op survived pruning")
		}
	}

	// Lost seq 2 with seq 3 recovered: a hole, not a tail.
	rep2 := &core.Report{Linearized: map[uint64]uint64{
		spec.MakeID(0, 1): 1,
		spec.MakeID(0, 3): 3,
	}}
	if _, _, err := pruneLostTail(hist[:3], rep2); err == nil {
		t.Fatalf("mid-sequence loss accepted as a torn tail")
	}
}

// pruneLostTail reconciles the fault model's one irreducible ambiguity
// with CheckDurable. A fault that destroys the record (or just the
// sequence word) at a log's append frontier is indistinguishable from
// an append the crash interrupted: salvage classifies it a benign tear
// and comes back Healthy, yet the op inside may have completed before
// the crash. Such ops are demoted to pending — the checker then treats
// them like any in-flight op the crash dropped.
//
// The concession is sound only at the frontier, and the prefix walk
// guarantees lost-but-completed ops can sit nowhere else in a
// Healthy/Degraded recovery (anything stranded beyond a gap is
// quarantine evidence). So the demotion is gated: the lost ops must
// form a suffix of their process's completed updates, or an error
// reports silent mid-sequence loss. Completed reads that responded
// after the earliest lost op was invoked could have observed a now-
// lost effect and become unverifiable; they are dropped from the
// checked history. Reads that responded before it are kept in full.
func pruneLostTail(hist []OpRecord, rep *core.Report) ([]OpRecord, int, error) {
	maxRec := map[int]uint64{} // pid -> highest recovered completed seq
	var lost []int
	for i := range hist {
		o := &hist[i]
		if !o.IsUpdate || !o.Completed() || o.OpID == 0 {
			continue
		}
		if _, ok := rep.WasLinearized(o.OpID); ok {
			if pid, seq := spec.SplitID(o.OpID); seq > maxRec[pid] {
				maxRec[pid] = seq
			}
			continue
		}
		lost = append(lost, i)
	}
	if len(lost) == 0 {
		return hist, 0, nil
	}
	minInv := ^uint64(0)
	isLost := make(map[int]bool, len(lost))
	for _, i := range lost {
		o := &hist[i]
		pid, seq := spec.SplitID(o.OpID)
		if seq <= maxRec[pid] {
			return nil, 0, fmt.Errorf(
				"completed update %#x (p%d seq %d) lost mid-sequence (p%d recovered through seq %d): silent loss, not a torn tail",
				o.OpID, pid, seq, pid, maxRec[pid])
		}
		if o.Inv < minInv {
			minInv = o.Inv
		}
		isLost[i] = true
	}
	out := make([]OpRecord, 0, len(hist))
	for i := range hist {
		o := hist[i]
		switch {
		case isLost[i]:
			o.Ret = 0 // a torn frontier append is an op that never returned
		case !o.IsUpdate && o.Completed() && o.Ret >= minInv:
			continue // may have observed a lost effect; unverifiable
		}
		out = append(out, o)
	}
	return out, len(lost), nil
}
