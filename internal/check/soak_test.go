package check

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/objects"
	"repro/internal/pmem"
	"repro/internal/sched"
	"repro/internal/spec"
	"repro/internal/workload"
)

// TestSoakMultiEra runs, for every object, a long life of alternating
// execution eras and crashes on ONE pool: each era runs a concurrent
// workload, crashes at a random step under a random oracle, recovers,
// verifies durable linearizability of the era, and verifies the
// recovered state extends a reference replay of all committed history.
// With compaction and local views enabled in half the eras, it is the
// closest thing to production life the simulator can express.
func TestSoakMultiEra(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short")
	}
	for _, sp := range objects.All() {
		sp := sp
		t.Run(sp.Name(), func(t *testing.T) {
			t.Parallel()
			soakOneObject(t, sp, 5)
		})
	}
}

func soakOneObject(t *testing.T, sp spec.Spec, eras int) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(len(sp.Name())) * 977))
	const nprocs = 3
	pool := pmem.New(1<<26, nil)
	cfg := core.Config{NProcs: nprocs, LocalViews: true, CompactEvery: 32, LogCapacity: 4096}
	in, err := core.New(pool, sp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// committed tracks, per process, ops whose responses were observed
	// (they must survive every subsequent crash).
	committedIDs := map[uint64]bool{}
	var mu sync.Mutex

	for era := 0; era < eras; era++ {
		gate := sched.NewStepCounter(uint64(rng.Intn(6000)+1500), nil)
		pool.SetGate(gate)
		gen := workload.NewGenerator(sp)
		hist := NewHistory()
		var wg sync.WaitGroup
		for pid := 0; pid < nprocs; pid++ {
			wg.Add(1)
			go func(pid int) {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil && !sched.IsKilled(r) {
						panic(r)
					}
				}()
				h := in.Handle(pid)
				steps := gen.Stream(int64(era*1000+pid), 60, 70)
				for _, st := range steps {
					if st.IsUpdate {
						id := h.NextOpID()
						token := hist.Invoke(pid, st.Code, st.Args, true, id)
						ret, _, err := h.Update(st.Code, st.Args...)
						if err != nil {
							panic(err)
						}
						hist.Return(token, ret)
						mu.Lock()
						committedIDs[id] = true
						mu.Unlock()
					} else {
						token := hist.Invoke(pid, st.Code, st.Args, false, 0)
						hist.Return(token, h.Read(st.Code, st.Args...))
					}
				}
			}(pid)
		}
		wg.Wait()

		oracle := pmem.SeededOracle(uint64(era*7+1), uint64(rng.Intn(3)), 3)
		pool.Crash(oracle)
		pool.SetGate(nil)
		var rep *core.Report
		in, rep, err = core.Recover(pool, sp, cfg)
		if err != nil {
			t.Fatalf("era %d: recovery: %v", era, err)
		}
		rec := MakeRecovered(rep.Ordered)
		rec.BaseState, rec.CoveredSeq = rep.BaseState, rep.CoveredSeq
		if err := CheckDurable(sp, hist.Ops(), rec); err != nil {
			t.Fatalf("era %d: %v", era, err)
		}
		// Cross-era durability: every op committed in ANY earlier era
		// must still be reported linearized.
		mu.Lock()
		for id := range committedIDs {
			if _, ok := rep.WasLinearized(id); !ok {
				mu.Unlock()
				t.Fatalf("era %d: op %#x committed in an earlier era vanished", era, id)
			}
		}
		// New ops may have been linearized too (in-flight at crash);
		// adopt them so later eras track them.
		for id := range rep.Linearized {
			committedIDs[id] = true
		}
		mu.Unlock()
	}
	_ = fmt.Sprint()
}

// TestSoakThroughputSingleObject is a heavier single-object pounding
// with many processes and frequent compaction, checking only the
// global invariant (counter value equals completed increments) — it
// exists to shake out races rather than to verify semantics finely.
func TestSoakThroughputSingleObject(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short")
	}
	const nprocs = 8
	const perProc = 3000
	pool := pmem.New(1<<27, nil)
	in, err := core.New(pool, objects.CounterSpec{}, core.Config{
		NProcs: nprocs, LocalViews: true, CompactEvery: 128, LogCapacity: 2048,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for pid := 0; pid < nprocs; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			h := in.Handle(pid)
			for i := 0; i < perProc; i++ {
				if _, _, err := h.Update(objects.CounterInc); err != nil {
					panic(err)
				}
				if i%7 == 0 {
					h.Read(objects.CounterGet)
				}
			}
		}(pid)
	}
	wg.Wait()
	if got := in.Handle(0).Read(objects.CounterGet); got != nprocs*perProc {
		t.Fatalf("lost updates: %d != %d", got, nprocs*perProc)
	}
	pool.Crash(pmem.DropAll)
	in2, _, err := core.Recover(pool, objects.CounterSpec{}, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := in2.Handle(0).Read(objects.CounterGet); got != nprocs*perProc {
		t.Fatalf("post-crash: %d != %d", got, nprocs*perProc)
	}
	if st := pool.TotalStats(); st.PersistentFences < nprocs*perProc {
		t.Fatalf("fence accounting impossible: %d < %d", st.PersistentFences, nprocs*perProc)
	}
}
