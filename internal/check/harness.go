package check

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/plog"
	"repro/internal/pmem"
	"repro/internal/sched"
	"repro/internal/spec"
	"repro/internal/workload"
)

// HarnessConfig parameterizes a randomized crash-injection run (the E5
// experiment): n processes execute seeded op streams against an ONLL
// instance on a counting gate; at a chosen global step the gate kills
// every process, the pool crashes under a chosen oracle, recovery runs,
// and the combined history is validated against Definition 5.6.
type HarnessConfig struct {
	Spec         spec.Spec
	NProcs       int
	OpsPerProc   int
	UpdatePct    int // 0..100
	Seed         int64
	CrashStep    uint64      // 0 = run to completion (no crash)
	Oracle       pmem.Oracle // survival of in-flight lines
	WaitFree     bool
	LocalViews   bool
	CompactEvery int
	// ReadFastPath enables the version-stamped read fast path (shared
	// published view + epoch-checked reads) in both the pre-crash and
	// the recovered instance, so crash sweeps exercise adoption across
	// recovery.
	ReadFastPath bool
	// LogInlineOps is the two-tier inline slot budget passed through to
	// core.Config (0 = plog default); sweeps shrink it to force records
	// through the overflow ring.
	LogInlineOps int
	// EvictionRate, if nonzero, enables spontaneous cache eviction at
	// roughly one write-back per EvictionRate stores (seeded by Seed):
	// data may become durable earlier than fenced, never later.
	EvictionRate uint64
	// FaultCount, if positive, injects that many seeded media faults
	// (pmem.PlanFaults, seeded by FaultSeed) into the durable image
	// after the crash and before recovery. The plan targets the
	// allocated span below the bump frontier, excluding the root table
	// (a real system keeps that tiny fixed region redundant; the
	// checksummed structures under test are the logs). Fault runs
	// recover in salvage mode, and RunCrash skips its built-in
	// durability check — the fault sweep applies its own three-outcome
	// oracle (fault_sweep_test.go).
	FaultCount int
	FaultSeed  uint64
	// Salvage recovers in salvage mode even without faults (clean
	// crashes must classify Healthy and pass the same checks).
	Salvage bool
	// DeltaSnapshots switches compaction cuts to base + delta chains
	// (core.Config.DeltaSnapshots) in both the pre-crash and the
	// recovered instance, so crash and fault sweeps exercise chain
	// append, truncation-behind-chains, and base+delta refolding.
	DeltaSnapshots bool
}

// HarnessResult carries the artifacts of one run, so tests can make
// additional assertions.
type HarnessResult struct {
	History  []OpRecord
	Report   *core.Report
	Pool     *pmem.Pool
	Instance *core.Instance // post-recovery instance (nil if no crash)
	Steps    uint64
	// FaultPlan is the injected plan (empty unless FaultCount > 0).
	FaultPlan pmem.FaultPlan
	// RecoverErr is the recovery error when recovery itself failed (the
	// run error wraps it; kept here so sweeps can inspect it).
	RecoverErr error
}

// poolSizeFor sizes a pool generously for the run, honouring the
// configured inline budget (a single-tier budget needs far larger logs
// than the two-tier default).
func poolSizeFor(cfg HarnessConfig) (int, int) {
	logCap := cfg.OpsPerProc*2 + 64
	mult := 2
	if cfg.FaultCount > 0 {
		// A quarantined fault run may Recreate — a full second set of
		// logs from a bump allocator that never reclaims — on top of
		// possible ring growth under pressure.
		mult = 4
	}
	size := cfg.NProcs*plog.RegionBytesInline(logCap, cfg.NProcs, cfg.LogInlineOps)*mult + (1 << 21)
	return size, logCap
}

// RunCrash executes the harness once and validates durable
// linearizability. It returns the result for further inspection; the
// error is non-nil on any safety violation.
func RunCrash(cfg HarnessConfig) (*HarnessResult, error) {
	if cfg.Oracle == nil {
		cfg.Oracle = pmem.DropAll
	}
	size, logCap := poolSizeFor(cfg)
	gate := sched.NewStepCounter(cfg.CrashStep, nil)
	pool := pmem.New(size, nil)
	if cfg.EvictionRate > 0 {
		pool.SetEviction(pmem.SeededEviction(uint64(cfg.Seed)+1, cfg.EvictionRate))
	}
	in, err := core.New(pool, cfg.Spec, core.Config{
		NProcs: cfg.NProcs, LogCapacity: logCap, Gate: gate,
		WaitFree: cfg.WaitFree, LocalViews: cfg.LocalViews, CompactEvery: cfg.CompactEvery,
		ReadFastPath: cfg.ReadFastPath, LogInlineOps: cfg.LogInlineOps,
		DeltaSnapshots: cfg.DeltaSnapshots,
	})
	if err != nil {
		return nil, err
	}
	// Arm the crash gate only now: CrashStep indexes steps of the
	// measured workload, not of setup. At high process counts setup
	// alone is tens of thousands of pool steps, and a kill inside
	// core.New would panic the harness caller instead of a worker.
	pool.SetGate(gate)
	hist := NewHistory()
	gen := workload.NewGenerator(cfg.Spec)

	done := make(chan struct{}, cfg.NProcs)
	for pid := 0; pid < cfg.NProcs; pid++ {
		go func(pid int) {
			defer func() {
				if r := recover(); r != nil && !sched.IsKilled(r) {
					panic(r)
				}
				done <- struct{}{}
			}()
			h := in.Handle(pid)
			steps := gen.Stream(cfg.Seed+int64(pid)*7919, cfg.OpsPerProc, cfg.UpdatePct)
			for _, st := range steps {
				runOp(hist, h, pid, st)
			}
		}(pid)
	}
	for i := 0; i < cfg.NProcs; i++ {
		<-done
	}

	res := &HarnessResult{History: hist.Ops(), Pool: pool, Steps: gate.Steps()}
	if cfg.CrashStep == 0 {
		return res, nil
	}
	pool.Crash(cfg.Oracle)
	// The crash gate stays latched (it kills every stepper); recovery
	// and the post-crash era run on a fresh, free-running pool gate —
	// the pre-crash machine's scheduler died with it.
	pool.SetGate(nil)
	if cfg.FaultCount > 0 {
		rootLines := uint64(pmem.RootSlots * pmem.WordSize / pmem.LineSize)
		res.FaultPlan = pmem.PlanFaults(cfg.FaultSeed, cfg.FaultCount, rootLines, pool.AllocatedLines())
		pool.InjectFaults(res.FaultPlan)
	}
	in2, rep, err := core.Recover(pool, cfg.Spec, core.Config{
		WaitFree: cfg.WaitFree, LocalViews: cfg.LocalViews, CompactEvery: cfg.CompactEvery,
		ReadFastPath: cfg.ReadFastPath, DeltaSnapshots: cfg.DeltaSnapshots,
		Salvage: cfg.Salvage || cfg.FaultCount > 0,
	})
	if err != nil {
		res.RecoverErr = err
		return res, fmt.Errorf("recovery failed: %w", err)
	}
	res.Report, res.Instance = rep, in2
	if cfg.FaultCount > 0 {
		// Faulty recoveries classify three ways (Healthy / Degraded /
		// Quarantined); the built-in pass/fail oracle below does not
		// apply. The fault sweep runs its own check.
		return res, nil
	}
	rec := MakeRecovered(rep.Ordered)
	rec.BaseState, rec.CoveredSeq = rep.BaseState, rep.CoveredSeq
	if err := CheckDurable(cfg.Spec, res.History, rec); err != nil {
		return res, err
	}
	return res, nil
}

// runOp executes one step, recording invocation and (if the process
// survives) response. A kill panic propagates after the invocation was
// recorded, leaving the op pending — exactly what a crash does.
func runOp(hist *History, h *core.Handle, pid int, st workload.Step) {
	var token int
	if st.IsUpdate {
		token = hist.Invoke(pid, st.Code, st.Args, true, h.NextOpID())
		ret, _, err := h.Update(st.Code, st.Args...)
		if err != nil {
			panic(fmt.Sprintf("update failed: %v", err))
		}
		hist.Return(token, ret)
	} else {
		token = hist.Invoke(pid, st.Code, st.Args, false, 0)
		ret := h.Read(st.Code, st.Args...)
		hist.Return(token, ret)
	}
}

// RunLive executes the harness without a crash and returns the recorded
// history (for linearizability checking of small runs).
func RunLive(cfg HarnessConfig) (*HarnessResult, error) {
	cfg.CrashStep = 0
	return RunCrash(cfg)
}
