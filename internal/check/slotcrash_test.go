package check

import (
	"testing"

	"repro/internal/core"
	"repro/internal/objects"
	"repro/internal/pmem"
	"repro/internal/sched"
)

// TestSlotHolderCrashRecovery pins the shared-view slot's crash
// hygiene (core/fastpath.go): a process killed BETWEEN acquiring the
// seqlock-style slot and releasing it leaves the version odd — within
// that run the optimization is simply disabled (contenders never wait
// on the slot), but a recovered instance must NOT inherit the dead
// lock. The pre-crash era drives a publisher deterministically to
// PointSlotCopy — the gate announced while HOLDING the slot, just
// before the state copy — and kills the whole machine right there.
// After whole-image recovery, the slot must be live again: a fresh
// round of updates and lagging reads must produce publications/stamps
// and at least one adoption, which can only happen through a free,
// usable slot.
func TestSlotHolderCrashRecovery(t *testing.T) {
	const rounds = 60
	ctl := sched.NewController()
	pool := pmem.New(1<<24, ctl)
	in, err := core.New(pool, objects.CounterSpec{}, core.Config{
		NProcs: 3, ReadFastPath: true, LogCapacity: 1 << 10, Gate: ctl,
	})
	if err != nil {
		t.Fatal(err)
	}

	// p0 updates; p1's reads lag far behind, so p1's first validating
	// read bootstraps the slot (a PointSlotCopy while holding it).
	done0 := ctl.Spawn(0, func() {
		h := in.Handle(0)
		for i := 0; i < rounds; i++ {
			if _, _, err := h.Update(objects.CounterInc); err != nil {
				panic(err)
			}
		}
	})
	done1 := ctl.Spawn(1, func() {
		h := in.Handle(1)
		h.Read(objects.CounterGet)
	})
	ctl.RunToCompletion(0)
	if pt, ok := ctl.RunUntil(1, sched.AtPoint(core.PointSlotCopy)); !ok {
		t.Fatalf("p1 never reached %s (slot never acquired); last point %q", core.PointSlotCopy, pt)
	}
	// p1 now HOLDS the slot (version odd), copy not yet performed.
	// Kill everything: the classic "holder dies inside the critical
	// section" crash.
	ctl.KillAll()
	<-done0
	if out := <-done1; !sched.IsKilled(out) {
		t.Fatalf("p1 finished instead of dying at the slot: %v", out)
	}

	pool.SetGate(nil)
	pool.Crash(pmem.DropAll)
	in2, _, err := core.Recover(pool, objects.CounterSpec{}, core.Config{
		ReadFastPath: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every pre-crash update was fenced before its return; p0 completed
	// all of them before the crash.
	h0 := in2.Handle(0)
	if got := h0.Read(objects.CounterGet); got != rounds {
		t.Fatalf("recovered counter %d, want %d", got, rounds)
	}
	// Post-recovery slot activity: h0's read above validated and
	// bootstrapped the slot; grow the frontier and let a cold handle
	// catch up through it. If recovery had inherited the odd version,
	// every acquire below would fail and Adoptions would stay 0.
	for i := 0; i < rounds; i++ {
		if _, _, err := h0.Update(objects.CounterInc); err != nil {
			t.Fatal(err)
		}
	}
	if got := h0.Read(objects.CounterGet); got != 2*rounds {
		t.Fatalf("post-recovery counter %d, want %d", got, 2*rounds)
	}
	if got := in2.Handle(1).Read(objects.CounterGet); got != 2*rounds {
		t.Fatalf("cold handle read %d, want %d", got, 2*rounds)
	}
	st := in2.FastPathStats()
	if st.Publishes+st.Stamps == 0 {
		t.Fatalf("post-recovery slot never published/stamped: %+v", st)
	}
	if st.Adoptions == 0 {
		t.Fatalf("post-recovery adoptions = 0 (slot unusable after recovery): %+v", st)
	}
}
