package check

import (
	"fmt"
	"testing"

	"repro/internal/objects"
	"repro/internal/pmem"
	"repro/internal/spec"
)

// mkOps builds records compactly: each entry is
// {isUpdate, code, arg, inv, ret, retval, id}.
type opSpec struct {
	upd       bool
	code, arg uint64
	inv, ret  uint64
	retval    uint64
	id        uint64
}

func mkOps(specs []opSpec) []OpRecord {
	out := make([]OpRecord, len(specs))
	for i, s := range specs {
		out[i] = OpRecord{
			Token: i, OpID: s.id, Code: s.code, Args: [3]uint64{s.arg},
			IsUpdate: s.upd, Inv: s.inv, Ret: s.ret, RetVal: s.retval,
		}
	}
	return out
}

func TestLinearizableSequential(t *testing.T) {
	// inc()=1, inc()=2, get()=2: trivially linearizable.
	ops := mkOps([]opSpec{
		{true, objects.CounterInc, 0, 1, 2, 1, 1},
		{true, objects.CounterInc, 0, 3, 4, 2, 2},
		{false, objects.CounterGet, 0, 5, 6, 2, 0},
	})
	if !Linearizable(objects.CounterSpec{}, ops) {
		t.Fatal("valid sequential history rejected")
	}
}

func TestLinearizableRejectsWrongValue(t *testing.T) {
	ops := mkOps([]opSpec{
		{true, objects.CounterInc, 0, 1, 2, 1, 1},
		{false, objects.CounterGet, 0, 3, 4, 7, 0}, // impossible value
	})
	if Linearizable(objects.CounterSpec{}, ops) {
		t.Fatal("impossible read accepted")
	}
}

func TestLinearizableRejectsStaleRead(t *testing.T) {
	// inc completes (ret=2), THEN a read starts and returns 0: stale.
	ops := mkOps([]opSpec{
		{true, objects.CounterInc, 0, 1, 2, 1, 1},
		{false, objects.CounterGet, 0, 3, 4, 0, 0},
	})
	if Linearizable(objects.CounterSpec{}, ops) {
		t.Fatal("stale read accepted")
	}
}

func TestLinearizableAcceptsConcurrentEitherOrder(t *testing.T) {
	// Read overlaps the inc: may see 0 or 1.
	for _, val := range []uint64{0, 1} {
		ops := mkOps([]opSpec{
			{true, objects.CounterInc, 0, 1, 4, 1, 1},
			{false, objects.CounterGet, 0, 2, 3, val, 0},
		})
		if !Linearizable(objects.CounterSpec{}, ops) {
			t.Fatalf("concurrent read of %d rejected", val)
		}
	}
	ops := mkOps([]opSpec{
		{true, objects.CounterInc, 0, 1, 4, 1, 1},
		{false, objects.CounterGet, 0, 2, 3, 2, 0},
	})
	if Linearizable(objects.CounterSpec{}, ops) {
		t.Fatal("impossible concurrent read accepted")
	}
}

func TestLinearizablePendingOpMayOrMayNotTakeEffect(t *testing.T) {
	// A pending inc (no response) plus a read of 1 OR 0: both fine.
	for _, val := range []uint64{0, 1} {
		ops := mkOps([]opSpec{
			{true, objects.CounterInc, 0, 1, 0, 0, 1}, // pending
			{false, objects.CounterGet, 0, 2, 3, val, 0},
		})
		if !Linearizable(objects.CounterSpec{}, ops) {
			t.Fatalf("pending-inc history with read=%d rejected", val)
		}
	}
}

func TestLinearizableQueueMixed(t *testing.T) {
	ops := mkOps([]opSpec{
		{true, objects.QueueEnq, 10, 1, 2, 1, 1},
		{true, objects.QueueEnq, 20, 3, 6, 2, 2},
		{true, objects.QueueDeq, 0, 4, 5, 10, 3}, // overlaps enq(20)
		{false, objects.QueueLen, 0, 7, 8, 1, 0},
	})
	if !Linearizable(objects.QueueSpec{}, ops) {
		t.Fatal("valid queue history rejected")
	}
	// FIFO violation: deq returns 20 though 10 was enqueued strictly first.
	ops = mkOps([]opSpec{
		{true, objects.QueueEnq, 10, 1, 2, 1, 1},
		{true, objects.QueueEnq, 20, 3, 4, 2, 2},
		{true, objects.QueueDeq, 0, 5, 6, 20, 3},
	})
	if Linearizable(objects.QueueSpec{}, ops) {
		t.Fatal("FIFO violation accepted")
	}
}

func TestCheckDurableAcceptsCleanRun(t *testing.T) {
	ops := mkOps([]opSpec{
		{true, objects.CounterInc, 0, 1, 2, 1, 100},
		{true, objects.CounterInc, 0, 3, 4, 2, 200},
	})
	rec := MakeRecovered([]spec.Op{
		{Code: objects.CounterInc, ID: 100},
		{Code: objects.CounterInc, ID: 200},
	})
	if err := CheckDurable(objects.CounterSpec{}, ops, rec); err != nil {
		t.Fatal(err)
	}
}

func TestCheckDurableR1ErasedUpdate(t *testing.T) {
	ops := mkOps([]opSpec{
		{true, objects.CounterInc, 0, 1, 2, 1, 100}, // completed
	})
	rec := MakeRecovered(nil) // recovery lost it
	err := CheckDurable(objects.CounterSpec{}, ops, rec)
	if v, ok := err.(*DurabilityViolation); !ok || v.Rule != "R1" {
		t.Fatalf("want R1 violation, got %v", err)
	}
}

func TestCheckDurableR2InventedUpdate(t *testing.T) {
	rec := MakeRecovered([]spec.Op{{Code: objects.CounterInc, ID: 999}})
	err := CheckDurable(objects.CounterSpec{}, nil, rec)
	if v, ok := err.(*DurabilityViolation); !ok || v.Rule != "R2" {
		t.Fatalf("want R2 violation, got %v", err)
	}
}

func TestCheckDurableR3OrderInversion(t *testing.T) {
	ops := mkOps([]opSpec{
		{true, objects.LogAppend, 1, 1, 2, 0, 100}, // completed first
		{true, objects.LogAppend, 2, 3, 4, 1, 200}, // then this
	})
	rec := MakeRecovered([]spec.Op{
		{Code: objects.LogAppend, Args: [3]uint64{2}, ID: 200},
		{Code: objects.LogAppend, Args: [3]uint64{1}, ID: 100},
	})
	err := CheckDurable(objects.LogSpec{}, ops, rec)
	if v, ok := err.(*DurabilityViolation); !ok || v.Rule != "R3" {
		t.Fatalf("want R3 violation, got %v", err)
	}
}

func TestCheckDurableR4WrongReturn(t *testing.T) {
	ops := mkOps([]opSpec{
		{true, objects.CounterInc, 0, 1, 2, 5, 100}, // claims it returned 5
	})
	rec := MakeRecovered([]spec.Op{{Code: objects.CounterInc, ID: 100}})
	err := CheckDurable(objects.CounterSpec{}, ops, rec)
	if v, ok := err.(*DurabilityViolation); !ok || v.Rule != "R4" {
		t.Fatalf("want R4 violation, got %v", err)
	}
}

func TestCheckDurableR5ImpossibleRead(t *testing.T) {
	ops := mkOps([]opSpec{
		{true, objects.CounterInc, 0, 1, 2, 1, 100},
		{false, objects.CounterGet, 0, 3, 4, 0, 0}, // reads 0 AFTER inc completed
	})
	rec := MakeRecovered([]spec.Op{{Code: objects.CounterInc, ID: 100}})
	err := CheckDurable(objects.CounterSpec{}, ops, rec)
	if v, ok := err.(*DurabilityViolation); !ok || v.Rule != "R5" {
		t.Fatalf("want R5 violation, got %v", err)
	}
}

func TestCheckDurablePendingMayBeIncluded(t *testing.T) {
	ops := mkOps([]opSpec{
		{true, objects.CounterInc, 0, 1, 0, 0, 100}, // pending at crash
	})
	// Included:
	if err := CheckDurable(objects.CounterSpec{}, ops,
		MakeRecovered([]spec.Op{{Code: objects.CounterInc, ID: 100}})); err != nil {
		t.Fatalf("pending-included rejected: %v", err)
	}
	// Excluded:
	if err := CheckDurable(objects.CounterSpec{}, ops, MakeRecovered(nil)); err != nil {
		t.Fatalf("pending-excluded rejected: %v", err)
	}
}

func TestHistoryRecorder(t *testing.T) {
	h := NewHistory()
	tok := h.Invoke(1, objects.CounterInc, nil, true, 42)
	h.Return(tok, 7)
	ops := h.Ops()
	if len(ops) != 1 {
		t.Fatalf("%d ops", len(ops))
	}
	o := ops[0]
	if o.PID != 1 || o.OpID != 42 || o.RetVal != 7 || !o.Completed() || o.Inv >= o.Ret {
		t.Fatalf("record wrong: %+v", o)
	}
}

func TestE5HarnessLiveRunsAreLinearizable(t *testing.T) {
	// Small live histories across objects, checked with the full DFS.
	for _, sp := range []spec.Spec{objects.CounterSpec{}, objects.QueueSpec{}, objects.SetSpec{}} {
		for seed := int64(0); seed < 4; seed++ {
			res, err := RunLive(HarnessConfig{
				Spec: sp, NProcs: 3, OpsPerProc: 4, UpdatePct: 60, Seed: seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !Linearizable(sp, res.History) {
				t.Fatalf("%s seed %d: live history not linearizable", sp.Name(), seed)
			}
		}
	}
}

func TestE5CrashInjectionSweep(t *testing.T) {
	// The main E5 experiment (scaled down for the unit-test suite; the
	// bench harness runs wider sweeps): crash at many different steps,
	// under different oracles and configurations, and validate durable
	// linearizability every time.
	specs := []spec.Spec{objects.CounterSpec{}, objects.MapSpec{}, objects.QueueSpec{}, objects.BankSpec{}}
	for _, sp := range specs {
		sp := sp
		t.Run(sp.Name(), func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 3; seed++ {
				// Learn the run length, then crash at proportional points.
				probe, err := RunLive(HarnessConfig{
					Spec: sp, NProcs: 3, OpsPerProc: 20, UpdatePct: 70, Seed: seed,
				})
				if err != nil {
					t.Fatal(err)
				}
				for _, frac := range []uint64{10, 25, 50, 75, 95} {
					crash := probe.Steps * frac / 100
					if crash == 0 {
						crash = 1
					}
					for _, oracle := range []pmem.Oracle{pmem.DropAll, pmem.KeepAll, pmem.SeededOracle(uint64(seed), 1, 2)} {
						if _, err := RunCrash(HarnessConfig{
							Spec: sp, NProcs: 3, OpsPerProc: 20, UpdatePct: 70,
							Seed: seed, CrashStep: crash, Oracle: oracle,
						}); err != nil {
							t.Fatalf("seed=%d crash@%d: %v", seed, crash, err)
						}
					}
				}
			}
		})
	}
}

func TestE5CrashInjectionWithExtensions(t *testing.T) {
	for _, cfg := range []struct {
		name string
		wf   bool
		lv   bool
		ce   int
	}{
		{"waitfree", true, false, 0},
		{"localviews", false, true, 0},
		{"compaction", false, true, 5},
	} {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 3; seed++ {
				probe, err := RunLive(HarnessConfig{
					Spec: objects.CounterSpec{}, NProcs: 3, OpsPerProc: 15, UpdatePct: 80,
					Seed: seed, WaitFree: cfg.wf, LocalViews: cfg.lv, CompactEvery: cfg.ce,
				})
				if err != nil {
					t.Fatal(err)
				}
				for _, frac := range []uint64{20, 50, 80} {
					crash := probe.Steps * frac / 100
					if crash == 0 {
						crash = 1
					}
					if _, err := RunCrash(HarnessConfig{
						Spec: objects.CounterSpec{}, NProcs: 3, OpsPerProc: 15, UpdatePct: 80,
						Seed: seed, CrashStep: crash, Oracle: pmem.SeededOracle(uint64(seed), 1, 3),
						WaitFree: cfg.wf, LocalViews: cfg.lv, CompactEvery: cfg.ce,
					}); err != nil {
						t.Fatalf("seed=%d crash@%d%%: %v", seed, frac, err)
					}
				}
			}
		})
	}
}

func TestE5PostRecoveryEraIsConsistent(t *testing.T) {
	// After a crash+recovery, continue operating and verify era-2
	// semantics continue from the recovered prefix.
	res, err := RunCrash(HarnessConfig{
		Spec: objects.CounterSpec{}, NProcs: 2, OpsPerProc: 30, UpdatePct: 100,
		Seed: 9, CrashStep: 300, Oracle: pmem.DropAll,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Instance == nil {
		t.Skip("run finished before the crash step")
	}
	h := res.Instance.Handle(0)
	before := h.Read(objects.CounterGet)
	ret, _, err := h.Update(objects.CounterInc)
	if err != nil {
		t.Fatal(err)
	}
	if ret != before+1 {
		t.Fatalf("era-2 increment returned %d, want %d", ret, before+1)
	}
	// The recovered value must equal replaying the recovered sequence.
	st, _ := spec.Replay(objects.CounterSpec{}, res.Report.Ordered)
	if want := st.Read(spec.Op{Code: objects.CounterGet}); before != want {
		t.Fatalf("recovered value %d != replay %d", before, want)
	}
}

func TestDurabilityViolationError(t *testing.T) {
	v := &DurabilityViolation{Rule: "R1", Detail: "x"}
	want := "durable linearizability violated (R1): x"
	if v.Error() != want {
		t.Fatalf("got %q", v.Error())
	}
	_ = fmt.Sprintf("%v", v)
}

func TestE5CrashInjectionUnderEviction(t *testing.T) {
	// Spontaneous eviction makes data durable EARLIER than fenced;
	// durable linearizability must still hold (more may survive a
	// crash, never less, and never inconsistently).
	for seed := int64(1); seed <= 4; seed++ {
		probe, err := RunLive(HarnessConfig{
			Spec: objects.MapSpec{}, NProcs: 3, OpsPerProc: 15, UpdatePct: 80,
			Seed: seed, EvictionRate: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, frac := range []uint64{20, 50, 80} {
			crash := probe.Steps * frac / 100
			if crash == 0 {
				crash = 1
			}
			if _, err := RunCrash(HarnessConfig{
				Spec: objects.MapSpec{}, NProcs: 3, OpsPerProc: 15, UpdatePct: 80,
				Seed: seed, CrashStep: crash, EvictionRate: 4,
				Oracle: pmem.SeededOracle(uint64(seed), 1, 2),
			}); err != nil {
				t.Fatalf("seed=%d crash@%d%%: %v", seed, frac, err)
			}
		}
	}
}
