package core

// Degraded-mode machinery (PR 6): health classification of a salvaged
// instance, the quarantine gate, error-returning reads, in-place
// recreation of a quarantined object, and the latent-fault scrubber.
//
// The classification rules follow from the construction's invariants:
//
//   - A completed update is always present in its own process's log
//     (the persist stage precedes the return), and helping re-persists
//     the fuzzy window below every later operation. So destroyed log
//     structures mean LOSS only when they leave operations provably
//     unreconstructible: an unreadable log header, a truncating
//     snapshot that no longer decodes, checksummed records that
//     disagree, or persisted operations stranded beyond a gap
//     (impossible in a crash-only execution, Proposition 5.10).
//   - Damage that helping bridged — bad mid-log records whose indices
//     all reappear in orphans or in other logs' records — loses
//     nothing: the instance is merely Degraded.
//   - A single invalid record at a log's append frontier is the
//     ordinary torn in-flight append every crash can produce; it is
//     not damage at all (Salvage.BenignTear).

import (
	"errors"
	"fmt"

	"repro/internal/plog"
	"repro/internal/trace"
)

// HealthMode is the coarse health state of a salvaged instance.
type HealthMode int

const (
	// ModeHealthy: recovery found nothing beyond ordinary crash
	// artifacts (at most a benign torn tail per log).
	ModeHealthy HealthMode = iota
	// ModeDegraded: media damage was found but every linearized
	// operation was reconstructed (helping bridged the damage). The
	// object serves normally; the damaged log regions have been
	// abandoned behind new appends.
	ModeDegraded
	// ModeQuarantined: evidence of lost linearized operations. Update
	// and TryRead fail with ErrObjectQuarantined until Recreate.
	ModeQuarantined
)

func (m HealthMode) String() string {
	switch m {
	case ModeHealthy:
		return "healthy"
	case ModeDegraded:
		return "degraded"
	case ModeQuarantined:
		return "quarantined"
	}
	return "unknown"
}

// Health is an instance's health snapshot (Instance.Health).
type Health struct {
	Mode HealthMode
	// Reason wraps ErrObjectQuarantined and the primary loss evidence
	// (nil unless quarantined).
	Reason error
	// BadSlots, Orphans and LogsUnopened aggregate the per-process
	// salvage counters at recovery time.
	BadSlots     int
	Orphans      int
	LogsUnopened int
}

// SalvageReport details what salvaging recovery found (Report.Salvage).
type SalvageReport struct {
	Mode HealthMode
	// Reason is the primary loss evidence (nil unless quarantined).
	Reason error
	// Evidence is every independent piece of loss evidence found.
	Evidence []error
	// PerPid has one entry per process.
	PerPid []PidSalvage
}

// PidSalvage is one process's salvage outcome.
type PidSalvage struct {
	// OpenErr is set when the log did not open at all.
	OpenErr error
	// BadSlots counts same-seq records that failed validation.
	BadSlots int
	// Orphans counts valid records recovered beyond the first damage.
	Orphans int
	// TailTorn reports that all damage sat at the append frontier.
	TailTorn bool
}

// salvageBase carries the salvaged prefix for Recreate.
type salvageBase struct {
	idx   uint64   // LastIdx of the salvaged prefix (0 = empty)
	state []uint64 // object state at idx
	seqs  []uint64 // per-pid highest op seq within the prefix
}

// classifySalvage turns the recovery scan's findings into the
// instance's health state and the report's salvage section. Called
// only under cfg.Salvage, after the report is fully built.
func (in *Instance) classifySalvage(rep *Report, evidence []error, damaged bool) {
	salv := rep.Salvage
	h := &Health{Mode: ModeHealthy}
	for _, ps := range salv.PerPid {
		h.BadSlots += ps.BadSlots
		h.Orphans += ps.Orphans
		if ps.OpenErr != nil {
			h.LogsUnopened++
		}
	}
	switch {
	case len(evidence) > 0:
		h.Mode = ModeQuarantined
		h.Reason = fmt.Errorf("%w: %w", ErrObjectQuarantined, primaryEvidence(evidence))
		// Cache the salvaged prefix so Recreate can preserve it.
		in.salvBase = in.replaySalvaged(rep)
	case damaged:
		h.Mode = ModeDegraded
	}
	salv.Mode, salv.Reason, salv.Evidence = h.Mode, h.Reason, evidence
	in.health.Store(h)
}

// primaryEvidence picks the most telling loss evidence for the
// quarantine reason: an unreadable log beats a lost snapshot beats a
// torn record (the full list stays in SalvageReport.Evidence).
func primaryEvidence(evidence []error) error {
	for _, class := range []error{ErrBadSlotHeader, ErrSnapshotCorrupt, ErrTornRecord} {
		for _, e := range evidence {
			if errors.Is(e, class) {
				return e
			}
		}
	}
	return evidence[0]
}

// replaySalvaged computes the object state at the end of the salvaged
// prefix (for Recreate's seed snapshot).
func (in *Instance) replaySalvaged(rep *Report) *salvageBase {
	sb := &salvageBase{idx: rep.LastIdx, seqs: make([]uint64, in.cfg.NProcs)}
	if rep.LastIdx == 0 {
		return sb
	}
	st := in.sp.New()
	if rep.BaseState != nil {
		if err := st.Restore(rep.BaseState); err != nil {
			// The snapshot decoded at recovery time; failure here means
			// the spec itself rejects it. Keep the empty base: Recreate
			// then preserves nothing, which quarantine already reported
			// as possible.
			sb.idx = 0
			return sb
		}
	}
	for _, op := range rep.Ordered {
		st.Apply(op)
	}
	sb.state = st.Snapshot()
	for pid := 0; pid < in.cfg.NProcs; pid++ {
		sb.seqs[pid] = rep.PerProcessSeq[pid]
	}
	return sb
}

// quarErr returns the quarantine error when the object refuses
// operations, nil otherwise. One atomic load; nil health (fresh or
// strict-recovered instances) is healthy.
func (in *Instance) quarErr() error {
	if h := in.health.Load(); h != nil && h.Mode == ModeQuarantined {
		return h.Reason
	}
	return nil
}

// Health returns the instance's current health snapshot. Instances
// built by New or recovered strictly are always healthy.
func (in *Instance) Health() Health {
	if h := in.health.Load(); h != nil {
		return *h
	}
	return Health{Mode: ModeHealthy}
}

// TryRead is Read with an error return: a quarantined object yields
// ErrObjectQuarantined instead of panicking. Healthy and degraded
// instances behave exactly like Read (no fence, no shared writes).
func (h *Handle) TryRead(code uint64, args ...uint64) (uint64, error) {
	if qerr := h.in.quarErr(); qerr != nil {
		return 0, qerr
	}
	return h.Read(code, args...), nil
}

// Recreate rebuilds a quarantined object in place from its salvaged
// prefix: fresh per-process logs, a seed snapshot of the salvaged
// state, a durable root flip, and a fresh trace — then the instance
// returns to ModeHealthy. Operations beyond the salvaged prefix are
// permanently lost; that is exactly what quarantine reported, and
// Recreate is the caller's acknowledgement. Handles obtained before
// Recreate remain valid (they are re-created in place); the call must
// not race in-flight operations.
func (in *Instance) Recreate() error {
	hs := in.health.Load()
	if hs == nil || hs.Mode != ModeQuarantined {
		return errors.New("core: Recreate on a non-quarantined instance")
	}
	cfg := &in.cfg
	// Rebuild with the geometry of the logs that actually existed, not
	// cfg defaults: a recovered instance's Config carries no capacity
	// (geometry lives in the log headers), and the defaults can be far
	// larger than the pool that held the originals.
	capacity, inlineOps := cfg.LogCapacity, cfg.LogInlineOps
	for _, l := range in.logs {
		if l != nil {
			capacity, inlineOps = l.Capacity(), l.InlineOps()
			break
		}
	}
	logs := make([]*plog.Log, cfg.NProcs)
	for pid := 0; pid < cfg.NProcs; pid++ {
		l, err := plog.CreateInline(in.pool, pid, capacity, cfg.NProcs, inlineOps)
		if err != nil {
			return fmt.Errorf("core: recreating log for p%d: %w", pid, err)
		}
		logs[pid] = l
	}
	sb := in.salvBase
	if sb == nil {
		sb = &salvageBase{}
	}
	var sentinel *trace.Node
	if sb.idx > 0 {
		// Seed log 0 with the salvaged prefix so the next crash recovers
		// it; the other logs start empty, as after New.
		if _, err := logs[0].AppendSnapshot(snapEncode(sb.seqs, sb.state), sb.idx); err != nil {
			return fmt.Errorf("core: seeding salvaged snapshot: %w", err)
		}
		sentinel = trace.NewBase(sb.idx, sb.state, sb.seqs)
	}
	// Durable root flip: after the last SetRoot the new generation is
	// what any future recovery sees. A crash mid-flip recovers a mix of
	// old and new logs; the seed snapshot in log 0 (flipped first)
	// keeps that mix at least as new as the salvaged prefix.
	for pid := 0; pid < cfg.NProcs; pid++ {
		in.pool.SetRoot(cfg.RootBase+rootLogBase+pid, uint64(logs[pid].Base()))
	}
	in.logs = logs
	switch {
	case cfg.WaitFree && sentinel != nil:
		in.tr = trace.NewWaitFreeAt(cfg.Gate, cfg.NProcs, sentinel)
	case cfg.WaitFree:
		in.tr = trace.NewWaitFree(cfg.Gate, cfg.NProcs)
	case sentinel != nil:
		in.tr = trace.NewLockFreeAt(cfg.Gate, sentinel)
	default:
		in.tr = trace.NewLockFree(cfg.Gate)
	}
	seqs := map[int]uint64{}
	for pid, s := range sb.seqs {
		seqs[pid] = s
	}
	in.resetSlots()
	in.makeHandles(seqs)
	in.salvBase = nil
	in.health.Store(&Health{Mode: ModeHealthy})
	return nil
}

// ---------------------------------------------------------------------
// Scrubber.
// ---------------------------------------------------------------------

// ScrubReport aggregates one scrub pass over every per-process log
// (Instance.Scrub).
type ScrubReport struct {
	// PerPid holds each log's result; an entry for an unopened log has
	// HeaderOK=false and nothing probed.
	PerPid []plog.ScrubResult
	// Faulty reports that at least one log shows latent damage beyond
	// a benign torn tail.
	Faulty bool
}

// ScrubTotals is the instance's cumulative scrub counter snapshot.
type ScrubTotals struct {
	// Runs counts completed Scrub passes.
	Runs uint64
	// FaultyRuns counts passes that found latent damage.
	FaultyRuns uint64
}

// Scrub walks every log's durable image — headers, slots, overflow
// chunks, snapshot payloads — re-verifying checksums against NVM
// (cache-bypassing reads), and reports latent damage before a crash
// would make recovery trip over it. It takes no locks, writes nothing,
// and issues no fences: concurrent operations may race individual
// word reads, so a slot being appended right now can read torn — such
// a slot is at a frontier and shows up as a benign tear, which Faulty
// ignores. Run it from a maintenance goroutine, never on the hot path.
func (in *Instance) Scrub() ScrubReport {
	rep := ScrubReport{PerPid: make([]plog.ScrubResult, len(in.logs))}
	for pid, l := range in.logs {
		if l == nil {
			rep.PerPid[pid] = plog.ScrubResult{} // HeaderOK=false: unopened
			rep.Faulty = true
			continue
		}
		r := l.Scrub()
		rep.PerPid[pid] = r
		if r.Faulty() {
			rep.Faulty = true
		}
	}
	in.scrubRuns.Add(1)
	if rep.Faulty {
		in.scrubBad.Add(1)
	}
	return rep
}

// ScrubStats returns the cumulative scrub counters.
func (in *Instance) ScrubStats() ScrubTotals {
	return ScrubTotals{Runs: in.scrubRuns.Load(), FaultyRuns: in.scrubBad.Load()}
}

// PressureStats is the log-pressure counter snapshot (Instance.Pressure).
type PressureStats struct {
	// ValveFires counts appends refused with ErrOvfFull that entered
	// the escalation ladder (valve.go).
	ValveFires uint64
	// RingGrows counts overflow-ring growths.
	RingGrows uint64
	// Spills sums the per-log refused-append counters (also counted
	// across ring growths).
	Spills int
}

// Pressure returns the cumulative log-pressure counters.
func (in *Instance) Pressure() PressureStats {
	ps := PressureStats{ValveFires: in.valveFires.Load(), RingGrows: in.ringGrows.Load()}
	for _, l := range in.logs {
		if l != nil {
			ps.Spills += l.Spills()
		}
	}
	return ps
}
