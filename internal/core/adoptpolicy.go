package core

// Cost-aware adoption for the read fast path (DESIGN.md §3.6). PR 4
// gated view adoption behind one fixed constant, adoptMinLag=32 trace
// nodes, which prices every object and workload identically — but the
// two sides of the trade vary by orders of magnitude. Copying the
// published view moves the state's size in words (2 for a counter,
// tens of thousands for a grown ordered map); replaying one trace node
// runs one Apply, which is a single add for the counter and an O(state)
// memmove for an ordered-map insert of a fresh key (exactly the YCSB-D
// churn case). A fixed threshold is therefore simultaneously too eager
// (large state, cheap applies: a 33-node lag does not pay for a 20k-word
// copy) and far too timid (expensive applies: under read-latest churn a
// 5-node replay of fresh-key inserts costs several whole-state moves).
//
// adoptCosts learns both sides online, per instance, from the work the
// fast path does anyway: every catch-up walk samples the per-node Apply
// cost, every publication or adoption samples the per-word copy cost,
// and the adoption threshold — the lag, in nodes, at which a copy
// starts paying for itself — falls out as
//
//	threshold = stateWords × nsPerWord / nsPerNode
//
// with stateWords read from spec.SizeHint (O(1), no snapshot). Both
// estimators are EWMAs over Q8 fixed-point nanoseconds, so sub-ns/word
// memcpy rates survive integer arithmetic; samples are clamped so one
// descheduled walk cannot poison the model. Until both costs have a
// sample the policy falls back to the PR 4 constant, and
// Config.AdoptPolicy can pin that constant (or any other) outright.

import (
	"sync/atomic"
	"time"

	"repro/internal/spec"
)

// AdoptPolicy tunes the economics of the read fast path's shared view
// slot (Config.ReadFastPath). The zero value selects the cost-aware
// defaults: an adaptive adoption threshold learned from observed copy
// and replay costs, and damped update-side publication.
type AdoptPolicy struct {
	// FixedMinLag, when positive, pins the adoption threshold to a
	// constant view lag in trace nodes and disables the cost model
	// entirely (no walk or copy timing). The pre-adaptive behaviour is
	// FixedMinLag: 32 (adoptFixedMinLag). Zero selects the adaptive
	// threshold.
	FixedMinLag int
	// DisableUpdatePublish turns off update-side publication: updaters
	// no longer offer their freshly caught-up view to the shared slot
	// after computeUpdate, so the slot advances only on long read-side
	// catch-ups and at compaction (the PR 4 behaviour). Kept as an
	// ablation/test knob — under frontier-chasing churn it reopens the
	// blind spot this policy exists to close.
	DisableUpdatePublish bool
	// PublishLag overrides the update-side publication damper: an
	// updater offers its view only when the shared slot trails it by at
	// least this many nodes, so hot updaters sample one atomic load per
	// update and touch the slot CAS at most once per PublishLag frontier
	// advances. Zero selects defaultPublishLag.
	PublishLag int
}

const (
	// adoptFixedMinLag is the PR 4 constant: the minimum view lag (in
	// trace nodes) before a handle tries adoption. It remains the
	// explicit escape hatch (AdoptPolicy.FixedMinLag) and the adaptive
	// policy's fallback until the cost model has samples.
	adoptFixedMinLag = 32
	// defaultPublishLag is the floor of the update-side publication
	// damper: how far the shared slot may trail the insert frontier
	// before an updater re-publishes. Small enough that adoptable views
	// are never more than a few applies stale, large enough that at
	// most one in defaultPublishLag updates attempts the slot CAS.
	defaultPublishLag = 4
	// publishCostFactor scales the adaptive damper above the adoption
	// threshold. Publication is the cost the UPDATE path pays so
	// adopters can save; publishing once per (factor × threshold)
	// frontier advances caps that overhead at copyCost/factor/threshold
	// ≈ one node-replay-equivalent per factor updates, while adopters —
	// who wake hundreds of nodes behind — only see the slot at most
	// (factor × threshold) nodes stale, a remainder walk that is small
	// against the replay the adoption just skipped. Publications are
	// routinely two orders of magnitude more frequent than adoptions
	// (every hot updater publishes, only waking laggards adopt), which
	// is why the damper must sit well above the adoption threshold.
	publishCostFactor = 16
	// adoptLagFloor/adoptLagCeil clamp the adaptive threshold: below
	// the floor per-read bookkeeping dominates any possible saving;
	// the ceiling keeps a cost-model outlier from disabling adoption
	// outright for the rest of a run.
	adoptLagFloor = 4
	adoptLagCeil  = 1 << 14
)

// Q8 sample caps: one GC pause or OS deschedule inside a timed region
// would otherwise dominate the EWMA for many samples. 4096 ns/node and
// 256 ns/word are each an order of magnitude above any real steady
// state on this substrate.
const (
	maxNodeNsQ8 = 4096 << 8
	maxWordNsQ8 = 256 << 8
)

// costAlphaShift sets the EWMA decay: alpha = 1/8.
const costAlphaShift = 3

// costSampleMinNodes bounds walk sampling to replays of at least this
// many nodes. One-node revalidation walks (every read after the
// handle's own update) are the hot path — two clock reads there would
// cost more than the walk — and the quantity the threshold needs is
// the per-node cost of the LONG replays adoption can skip, which short
// walks, dominated by fixed overheads, misestimate anyway.
const costSampleMinNodes = 8

// slotProbeEvery bounds the demand damper on stamp-time slot advances
// (Handle.slotProbe): after served reads dry up, at most one advance
// per this many skipped stamps — per handle — keeps probing for
// returning demand.
const slotProbeEvery = 32

// Copy-timing sample gate: the first copyWarmupSamples slot copies are
// all timed (the EWMA converges in well under that — alpha 1/8 closes
// 96% of any gap in 24 samples), after which only one copy in
// copySampleEvery pays the two clock reads. Converged estimates drift
// slowly (state size and memcpy rate change over thousands of ops, not
// per copy), so sparse samples track them fine, and the other
// copySampleEvery-1 copies run clock-free.
const (
	copyWarmupSamples = 64
	copySampleEvery   = 16
)

// adoptCosts is the per-instance cost model. The counters are updated
// racily (load/EWMA/store) by every handle; a lost update just drops a
// sample, which the EWMA absorbs — no CAS loop on the read path.
type adoptCosts struct {
	nodeNsQ8  atomic.Uint64 // EWMA: replaying one trace node, Q8 ns
	wordNsQ8  atomic.Uint64 // EWMA: copying one state word, Q8 ns
	copyWords atomic.Uint64 // last observed copy size (Sizer-less fallback)
	// copyTick counts slot copies across all handles; copySamples counts
	// the ones that were actually timed (diagnostics + the sampling
	// regression test).
	copyTick    atomic.Uint64
	copySamples atomic.Uint64
}

// sampleCopy reports whether the next slot copy should be timed: every
// copy during warmup, then one in copySampleEvery. The tick is a single
// atomic add — the gated-off path never touches the clock.
func (c *adoptCosts) sampleCopy() bool {
	t := c.copyTick.Add(1)
	if t <= copyWarmupSamples || t%copySampleEvery == 0 {
		c.copySamples.Add(1)
		return true
	}
	return false
}

// ewma folds sample into a, seeding on the first sample and nudging by
// at least 1 so small deltas cannot stall the estimator.
func ewma(a *atomic.Uint64, sample uint64) {
	old := a.Load()
	if old == 0 {
		a.Store(sample)
		return
	}
	delta := (int64(sample) - int64(old)) >> costAlphaShift
	if delta == 0 && sample != old {
		if sample > old {
			delta = 1
		} else {
			delta = -1
		}
	}
	a.Store(uint64(int64(old) + delta))
}

// observeWalk samples a catch-up that replayed nodes trace nodes in d.
func (c *adoptCosts) observeWalk(nodes int, d time.Duration) {
	if nodes <= 0 {
		return
	}
	s := (uint64(d.Nanoseconds()) << 8) / uint64(nodes)
	if s < 1 {
		s = 1
	}
	if s > maxNodeNsQ8 {
		s = maxNodeNsQ8
	}
	ewma(&c.nodeNsQ8, s)
}

// observeCopy samples a publication or adoption that copied words state
// words in d.
func (c *adoptCosts) observeCopy(words int, d time.Duration) {
	if words <= 0 {
		return
	}
	c.copyWords.Store(uint64(words))
	s := (uint64(d.Nanoseconds()) << 8) / uint64(words)
	if s < 1 {
		s = 1
	}
	if s > maxWordNsQ8 {
		s = maxWordNsQ8
	}
	ewma(&c.wordNsQ8, s)
}

// threshold returns the adaptive adoption threshold for a handle whose
// view is view: the lag, in trace nodes, beyond which copying the
// published view is cheaper than replaying the suffix. Falls back to
// the fixed constant until both cost estimators have a sample and the
// state's size is known.
func (c *adoptCosts) threshold(view spec.State) uint64 {
	node := c.nodeNsQ8.Load()
	word := c.wordNsQ8.Load()
	if node == 0 || word == 0 {
		return adoptFixedMinLag
	}
	words := uint64(spec.SizeHint(view))
	if words == 0 {
		words = c.copyWords.Load()
	}
	if words == 0 {
		return adoptFixedMinLag
	}
	thr := words * word / node
	if thr < adoptLagFloor {
		return adoptLagFloor
	}
	if thr > adoptLagCeil {
		return adoptLagCeil
	}
	return thr
}
