package core

import (
	"math/rand"
	"testing"

	"repro/internal/objects"
	"repro/internal/pmem"
	"repro/internal/sched"
	"repro/internal/spec"
)

// TestDeltaCompactionRoundTrip drives a map through enough updates for
// many delta cuts (and at least one collapse), crashes, and requires
// recovery to fold base + deltas + live records back into exactly the
// pre-crash state, with every completed update still detectable.
func TestDeltaCompactionRoundTrip(t *testing.T) {
	pool := pmem.New(1<<22, nil)
	in, err := New(pool, objects.MapSpec{}, Config{
		NProcs: 2, LogCapacity: 256,
		DeltaSnapshots: true, CompactEvery: 8, MaxDeltaChain: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	model := map[uint64]uint64{}
	var ids []uint64
	for i := 0; i < 200; i++ {
		h := in.Handle(i % 2)
		k := uint64(rng.Intn(64))
		var id uint64
		if rng.Intn(5) == 0 {
			_, id, err = h.Update(objects.MapDel, k)
			delete(model, k)
		} else {
			v := uint64(i + 1)
			_, id, err = h.Update(objects.MapPut, k, v)
			model[k] = v
		}
		if err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
		ids = append(ids, id)
	}
	st := in.CompactionStats()
	if st.Bases == 0 || st.Deltas == 0 {
		t.Fatalf("expected base and delta cuts, got %+v", st)
	}
	if st.Collapses == 0 {
		t.Fatalf("MaxDeltaChain 4 over %d cuts never collapsed: %+v", st.Bases+st.Deltas, st)
	}
	if st.SnapshotWords >= st.FullEquivWords {
		t.Fatalf("delta cuts wrote %d words vs %d full-equivalent: no savings",
			st.SnapshotWords, st.FullEquivWords)
	}

	pool.Crash(pmem.DropAll)
	in2, rep, err := Recover(pool, objects.MapSpec{}, Config{DeltaSnapshots: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.BaseIdx == 0 {
		t.Fatal("recovery found no compaction record to restart from")
	}
	h := in2.Handle(0)
	for k := uint64(0); k < 64; k++ {
		want := spec.RetMissing
		if v, ok := model[k]; ok {
			want = v
		}
		if got := h.Read(objects.MapGet, k); got != want {
			t.Fatalf("key %d: recovered %d, want %d", k, got, want)
		}
	}
	for _, id := range ids {
		if _, ok := rep.WasLinearized(id); !ok {
			t.Fatalf("op %#x vanished across delta compaction", id)
		}
	}

	// The recovered instance keeps cutting — updates must keep landing.
	for i := 0; i < 40; i++ {
		if _, _, err := in2.Handle(i%2).Update(objects.MapPut, uint64(i), uint64(i)); err != nil {
			t.Fatalf("post-recovery update %d: %v", i, err)
		}
	}
}

// TestDeltaCompactionPfences pins the fence bill under delta-chain
// compaction: N updates at cadence C cost exactly N + 2*cuts persistent
// fences (each cut is one chain append plus one truncate, identical to
// a full-snapshot cut), and reads stay at zero.
func TestDeltaCompactionPfences(t *testing.T) {
	pool := pmem.New(1<<22, nil)
	in, err := New(pool, objects.MapSpec{}, Config{
		NProcs: 1, LogCapacity: 256, DeltaSnapshots: true, CompactEvery: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	pool.ResetStats()
	h := in.Handle(0)
	const n = 40
	for i := 0; i < n; i++ {
		if _, _, err := h.Update(objects.MapPut, uint64(i%8), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := in.CompactionStats()
	cuts := st.Bases + st.Deltas
	if cuts != n/4 {
		t.Fatalf("%d cuts at cadence 4 over %d updates, want %d", cuts, n, n/4)
	}
	if pf := pool.StatsOf(0).PersistentFences; pf != n+2*cuts {
		t.Fatalf("%d updates + %d cuts cost %d pfences, want %d", n, cuts, pf, n+2*cuts)
	}
	before := pool.StatsOf(0).PersistentFences
	for i := 0; i < 50; i++ {
		h.Read(objects.MapGet, uint64(i%8))
	}
	if pf := pool.StatsOf(0).PersistentFences; pf != before {
		t.Fatalf("reads cost %d pfences", pf-before)
	}
}

// TestDeltaChainCollapseCadence pins the collapse policy: with
// MaxDeltaChain M, every M-th cut lays a fresh base, so the chain never
// exceeds M links and the base/delta mix over K cuts is exactly K/M vs
// the rest.
func TestDeltaChainCollapseCadence(t *testing.T) {
	pool := pmem.New(1<<22, nil)
	const m = 3
	in, err := New(pool, objects.MapSpec{}, Config{
		NProcs: 1, LogCapacity: 256,
		DeltaSnapshots: true, CompactEvery: 4, MaxDeltaChain: m,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := in.Handle(0)
	for i := 0; i < 120; i++ {
		// Distinct keys: the state outgrows any delta, so the size-based
		// collapse never preempts the length-based one under test.
		if _, _, err := h.Update(objects.MapPut, uint64(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
		if cl := in.Log(0).ChainLen(); cl > m {
			t.Fatalf("chain grew to %d links, cap %d", cl, m)
		}
	}
	st := in.CompactionStats()
	if cuts := st.Bases + st.Deltas; cuts != 30 {
		t.Fatalf("%d cuts, want 30", cuts)
	}
	if st.Bases != 10 || st.Deltas != 20 {
		t.Fatalf("cut mix bases=%d deltas=%d, want 10/20", st.Bases, st.Deltas)
	}
	if st.Collapses != st.Bases-1 {
		t.Fatalf("%d collapses for %d bases (first base is fresh)", st.Collapses, st.Bases)
	}
}

// TestSizeAwareCadenceDefault pins cutEvery's adaptive default: with
// DeltaSnapshots and no CompactEvery, the cadence starts at the floor,
// grows with the state, respects the capacity ceiling, and keeps the
// log bounded without any explicit CompactEvery.
func TestSizeAwareCadenceDefault(t *testing.T) {
	pool := pmem.New(1<<24, nil)
	in, err := New(pool, objects.MapSpec{}, Config{
		NProcs: 1, LogCapacity: 512, DeltaSnapshots: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := in.Handle(0)
	small := h.cutEvery()
	if small < 64 {
		t.Fatalf("empty-state cadence %d below floor 64", small)
	}
	for i := 0; i < 2000; i++ {
		if _, _, err := h.Update(objects.MapPut, uint64(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := h.cutEvery(); got <= small {
		t.Fatalf("cadence %d did not grow with the state (was %d)", got, small)
	} else if got > 512/4 {
		t.Fatalf("cadence %d above ceiling %d", got, 512/4)
	}
	if st := in.CompactionStats(); st.Bases+st.Deltas == 0 {
		t.Fatal("size-aware cadence never cut")
	}
	if live := in.Log(0).Len(); live > 300 {
		t.Fatalf("log holds %d live records; cadence is not bounding it", live)
	}
}

// TestValveUsesDeltaPath pins the pressure valve's delta leg. The
// overflow-ring geometry and stall choreography mirror
// TestUpdateSurvivesOverflowRingExhaustion: each round p1 stalls
// between order and persist, so every p0 record spills past the inline
// budget of 1 into the 16-tail ring. The first exhaustion lays a chain
// base; later exhaustions must cut deltas (ValveDeltas advances)
// instead of rewriting the by-then-large map snapshot, and the full
// history still survives a crash.
func TestValveUsesDeltaPath(t *testing.T) {
	const seed = 40   // distinct keys, so the state dwarfs any delta
	const rounds = 48 // ~3 ring exhaustions at 16 spilled tails each
	ctl := sched.NewController()
	pool := pmem.New(1<<22, ctl)
	in, err := New(pool, objects.MapSpec{}, Config{
		NProcs: 3, LogCapacity: 64, LogInlineOps: 1,
		LocalViews: true, DeltaSnapshots: true, CompactEvery: 1 << 20, Gate: ctl,
	})
	if err != nil {
		t.Fatal(err)
	}
	done1 := ctl.Spawn(1, func() {
		h := in.Handle(1)
		for i := 0; i < rounds; i++ {
			if _, _, err := h.Update(objects.MapPut, uint64(10000+i), 1); err != nil {
				panic(err)
			}
		}
	})
	done0 := ctl.Spawn(0, func() {
		h := in.Handle(0)
		for i := 0; i < seed; i++ {
			if _, _, err := h.Update(objects.MapPut, uint64(i), uint64(i)); err != nil {
				panic(err)
			}
		}
		for i := 0; i < rounds; i++ {
			if _, _, err := h.Update(objects.MapPut, uint64(20000+i), 1); err != nil {
				panic(err)
			}
		}
	})
	for i := 0; i < seed; i++ {
		if _, ok := ctl.RunPast(0, sched.AtPoint(PointReturn)); !ok {
			t.Fatalf("seed %d: p0 finished early", i)
		}
	}
	for i := 0; i < rounds; i++ {
		if _, ok := ctl.RunUntil(1, sched.AtPoint(PointOrdered)); !ok {
			t.Fatalf("round %d: p1 finished early", i)
		}
		if _, ok := ctl.RunPast(0, sched.AtPoint(PointReturn)); !ok {
			t.Fatalf("round %d: p0 finished early", i)
		}
		if _, ok := ctl.RunPast(1, sched.AtPoint(PointReturn)); !ok {
			t.Fatalf("round %d: p1 could not finish its update", i)
		}
	}
	ctl.RunToCompletion(0)
	ctl.RunToCompletion(1)
	if out := <-done0; out != nil {
		t.Fatalf("p0 failed under ring exhaustion: %v", out)
	}
	if out := <-done1; out != nil {
		t.Fatalf("p1 failed: %v", out)
	}
	ctl.KillAll()

	st := in.CompactionStats()
	if st.Bases == 0 {
		t.Fatalf("valve never laid a chain base: %+v (valve fired %d times)",
			st, in.Pressure().ValveFires)
	}
	if st.ValveDeltas == 0 {
		t.Fatalf("valve never took the delta path: %+v (valve fired %d times)",
			st, in.Pressure().ValveFires)
	}

	pool.SetGate(nil)
	pool.Crash(pmem.DropAll)
	in2, rep, err := Recover(pool, objects.MapSpec{}, Config{DeltaSnapshots: true})
	if err != nil {
		t.Fatal(err)
	}
	h := in2.Handle(0)
	for i := 0; i < seed; i++ {
		if got := h.Read(objects.MapGet, uint64(i)); got != uint64(i) {
			t.Fatalf("seed key %d recovered as %d", i, got)
		}
	}
	for i := 0; i < rounds; i++ {
		if got := h.Read(objects.MapGet, uint64(20000+i)); got != 1 {
			t.Fatalf("p0 round key %d recovered as %d", i, got)
		}
		if got := h.Read(objects.MapGet, uint64(10000+i)); got != 1 {
			t.Fatalf("p1 round key %d recovered as %d", i, got)
		}
	}
	for pid := 0; pid < 2; pid++ {
		n := uint64(rounds)
		if pid == 0 {
			n += seed
		}
		for seq := uint64(1); seq <= n; seq++ {
			if _, ok := rep.WasLinearized(spec.MakeID(pid, seq)); !ok {
				t.Fatalf("p%d op %d vanished across valve delta cuts", pid, seq)
			}
		}
	}
}

// TestDeltaFallbackOpReplay pins the universal fallback: an object
// without a DeltaEmitter (queue) still delta-compacts once its state
// outgrows the op window, via verbatim op-replay deltas, and recovery
// refolds them. While the state is still small the oversize guard must
// keep collapsing to bases instead of writing deltas larger than a
// snapshot.
func TestDeltaFallbackOpReplay(t *testing.T) {
	pool := pmem.New(1<<22, nil)
	in, err := New(pool, objects.QueueSpec{}, Config{
		NProcs: 1, LogCapacity: 256, DeltaSnapshots: true, CompactEvery: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := in.Handle(0)
	for i := 0; i < 64; i++ {
		if _, _, err := h.Update(objects.QueueEnq, uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	st := in.CompactionStats()
	if st.Bases == 0 {
		t.Fatalf("small-state cuts should have collapsed to bases: %+v", st)
	}
	if st.Deltas == 0 {
		t.Fatalf("op-replay fallback never cut a delta: %+v", st)
	}
	pool.Crash(pmem.DropAll)
	in2, _, err := Recover(pool, objects.QueueSpec{}, Config{DeltaSnapshots: true})
	if err != nil {
		t.Fatal(err)
	}
	h2 := in2.Handle(0)
	for i := 0; i < 64; i++ {
		got, _, err := h2.Update(objects.QueueDeq)
		if err != nil {
			t.Fatal(err)
		}
		if got != uint64(i+1) {
			t.Fatalf("dequeue %d: got %d", i, got)
		}
	}
}
