package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/objects"
	"repro/internal/pmem"
)

// TestPublishAdoptAllocFree pins the steady-state allocation cost of
// the shared-slot machinery at ZERO: an identical update/read cycle is
// measured with the fast path off (the baseline — each update
// allocates exactly its trace node here, compaction being off) and on
// (the same cycle plus publications, stamps, serve-adoptions). The two
// averages must match exactly; any difference is an allocation inside
// publish/stamp/adopt — e.g. the old `make`-on-growth of the slot's
// seqs vector, which append-style growth now avoids.
func TestPublishAdoptAllocFree(t *testing.T) {
	cycle := func(fast bool) float64 {
		pool := pmem.New(1<<24, nil)
		in, err := New(pool, objects.BankSpec{}, Config{
			NProcs: 2, LocalViews: true, ReadFastPath: fast, LogCapacity: 1 << 12,
			// The fixed threshold keeps adoption decisions identical
			// across runs; publishing every 8 frontier advances makes
			// the measured cycle exercise the slot copy every time.
			AdoptPolicy: AdoptPolicy{FixedMinLag: 16, PublishLag: 8},
		})
		if err != nil {
			t.Fatal(err)
		}
		w, r := in.Handle(0), in.Handle(1)
		step := func() {
			for i := 0; i < 40; i++ {
				if _, _, err := w.Update(objects.BankDeposit, 1+uint64(i%4), 5); err != nil {
					t.Fatal(err)
				}
			}
			r.Read(objects.BankTotal)
		}
		step() // warm-up: scratch states, slot state, buffers all grown
		step()
		return testing.AllocsPerRun(50, step)
	}
	off, on := cycle(false), cycle(true)
	if on != off {
		t.Fatalf("fast-path cycle allocates %.1f/run vs %.1f/run baseline (publish/adopt must be allocation-free)", on, off)
	}
	t.Logf("allocs/cycle: off=%.1f on=%.1f", off, on)
}

// TestReadFastPathAdoptionSoak pounds the shared-view slot under real
// concurrency (run it with -race): one writer publishes while many
// readers adopt and the writer's compaction cadence recycles trace
// nodes under them. The object is the bank, whose transfers conserve
// the total balance — a torn adopted view (a copy interleaved with a
// publisher's overwrite, which the seqlock-style acquire must make
// impossible) would be caught as a read of a non-conserved total.
// Afterwards it asserts the machinery actually ran: at least one
// publication and at least one adoption happened, including a
// guaranteed cold-handle adoption by a handle that sat out the run.
func TestReadFastPathAdoptionSoak(t *testing.T) {
	writes := 24_000
	if testing.Short() {
		writes = 6_000
	}
	const nprocs = 8 // pid 0 writes, 1..6 read, 7 stays cold
	const accounts = 8
	const perAccount = 1_000
	const total = accounts * perAccount
	pool := pmem.New(1<<26, nil)
	in, err := New(pool, objects.BankSpec{}, Config{
		NProcs: nprocs, ReadFastPath: true, CompactEvery: 48, LogCapacity: 1 << 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	h0 := in.Handle(0)
	for a := uint64(1); a <= accounts; a++ {
		if _, _, err := h0.Update(objects.BankDeposit, a, perAccount); err != nil {
			t.Fatal(err)
		}
	}

	var writerDone atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer writerDone.Store(true)
		rng := uint64(0x9e3779b97f4a7c15)
		for i := 0; i < writes; i++ {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			from := 1 + rng%accounts
			to := 1 + (rng>>8)%accounts
			amt := 1 + (rng>>16)%32
			if _, _, err := h0.Update(objects.BankTransfer, from, to, amt); err != nil {
				panic(err)
			}
		}
	}()
	for pid := 1; pid <= 6; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			h := in.Handle(pid)
			i := 0
			for !writerDone.Load() {
				if got := h.Read(objects.BankTotal); got != total {
					t.Errorf("p%d: torn view: total %d != %d", pid, got, total)
					return
				}
				i++
				if i%4 == 0 {
					// Let the writer race ahead so this reader's next
					// view lag clears the adoption threshold.
					time.Sleep(200 * time.Microsecond)
				}
			}
			if got := h.Read(objects.BankTotal); got != total {
				t.Errorf("p%d: final total %d != %d", pid, got, total)
			}
		}(pid)
	}
	wg.Wait()

	// The cold handle's first read lags the whole run: it must adopt
	// the published view (the writer's compaction cadence published
	// well past index 0) rather than replay from the base.
	cold := in.Handle(7)
	if got := cold.Read(objects.BankTotal); got != total {
		t.Fatalf("cold handle: total %d != %d", cold.Read(objects.BankTotal), total)
	}

	stats := in.FastPathStats()
	if stats.Publishes == 0 {
		t.Fatal("shared view was never published (fast path machinery idle)")
	}
	if stats.Adoptions == 0 {
		t.Fatal("no handle ever adopted the published view (soak exercised nothing)")
	}
	t.Logf("publishes=%d adoptions=%d (cold handle adopted=%v)",
		stats.Publishes, stats.Adoptions, cold.adoptions.Load() > 0)
}
