package core

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/objects"
	"repro/internal/pmem"
	"repro/internal/sched"
)

// TestRecoveryMatchesListing5 cross-checks the production recovery
// (single pass over indexed logs) against the literal Listing 5
// transcription, on randomized crash states: both must reconstruct the
// same operation sequence.
func TestRecoveryMatchesListing5(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			gate := sched.NewStepCounter(200+seed*97, nil)
			pool := pmem.New(1<<24, gate)
			in, err := New(pool, objects.CounterSpec{}, Config{NProcs: 3, Gate: gate})
			if err != nil {
				t.Fatal(err)
			}
			done := make(chan struct{}, 3)
			for pid := 0; pid < 3; pid++ {
				go func(pid int) {
					defer func() {
						recover() // killed by the gate: fine
						done <- struct{}{}
					}()
					h := in.Handle(pid)
					for i := 0; i < 20; i++ {
						h.Update(objects.CounterInc)
					}
				}(pid)
			}
			for i := 0; i < 3; i++ {
				<-done
			}
			pool.Crash(pmem.SeededOracle(seed, 1, 2))
			pool.SetGate(nil)

			lit, litBase, err := recoverListing5(pool, 3)
			if err != nil {
				t.Fatal(err)
			}
			_, rep, err := Recover(pool, objects.CounterSpec{}, Config{})
			if err != nil {
				t.Fatal(err)
			}
			if litBase != rep.BaseIdx {
				t.Fatalf("base: listing5 %d vs production %d", litBase, rep.BaseIdx)
			}
			if len(lit) != len(rep.Ordered) {
				t.Fatalf("length: listing5 %d vs production %d", len(lit), len(rep.Ordered))
			}
			for i := range lit {
				if lit[i] != rep.Ordered[i] {
					t.Fatalf("op %d: listing5 %v vs production %v", i, lit[i], rep.Ordered[i])
				}
			}
		})
	}
}

func TestRecoveryMatchesListing5WithCompaction(t *testing.T) {
	pool := pmem.New(1<<24, nil)
	in, err := New(pool, objects.CounterSpec{}, Config{NProcs: 2, CompactEvery: 7, LogCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, _, err := in.Handle(i % 2).Update(objects.CounterInc); err != nil {
			t.Fatal(err)
		}
	}
	pool.Crash(pmem.DropAll)
	lit, litBase, err := recoverListing5(pool, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, rep, err := Recover(pool, objects.CounterSpec{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if litBase != rep.BaseIdx || len(lit) != len(rep.Ordered) {
		t.Fatalf("listing5 (%d ops from %d) vs production (%d ops from %d)",
			len(lit), litBase, len(rep.Ordered), rep.BaseIdx)
	}
}

// TestQuickDifferentialSingleProcess: ONLL return values must equal a
// plain sequential replay, for random op sequences on random objects.
func TestQuickDifferentialSingleProcess(t *testing.T) {
	all := objects.All()
	f := func(pick uint8, codesRaw []byte) bool {
		sp := all[int(pick)%len(all)]
		d := sp.(objects.Describer)
		var updates []objects.OpInfo
		for _, oi := range d.Ops() {
			if oi.Kind == objects.KindUpdate {
				updates = append(updates, oi)
			}
		}
		if len(codesRaw) > 40 {
			codesRaw = codesRaw[:40]
		}
		pool := pmem.New(1<<24, nil)
		in, err := New(pool, sp, Config{NProcs: 1})
		if err != nil {
			return false
		}
		h := in.Handle(0)
		ref := sp.New()
		for i, c := range codesRaw {
			oi := updates[int(c)%len(updates)]
			args := make([]uint64, oi.Arity)
			for k := range args {
				args[k] = uint64(c)%13 + uint64(i*k) + 1
			}
			got, _, err := h.Update(oi.Code, args...)
			if err != nil {
				return false
			}
			op := mkOp(oi.Code, args...)
			if want := ref.Apply(op); got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCrashPrefix: for a single process, the recovered sequence is
// always a prefix of the invocation order, whatever the oracle.
func TestQuickCrashPrefix(t *testing.T) {
	f := func(nOps uint8, crashFrac uint8, oseed uint64) bool {
		n := int(nOps)%30 + 1
		gate := sched.NewStepCounter(uint64(crashFrac)%200+5, nil)
		pool := pmem.New(1<<24, nil) // setup un-gated; crashes start after
		in, err := New(pool, objects.LogSpec{}, Config{NProcs: 1, Gate: gate})
		if err != nil {
			return false
		}
		pool.SetGate(gate)
		func() {
			defer func() { recover() }()
			h := in.Handle(0)
			for i := 0; i < n; i++ {
				h.Update(objects.LogAppend, uint64(i)+1)
			}
		}()
		pool.Crash(pmem.SeededOracle(oseed, 1, 2))
		pool.SetGate(nil)
		_, rep, err := Recover(pool, objects.LogSpec{}, Config{})
		if err != nil {
			return false
		}
		// The recovered appends must be exactly 1..k for some k <= n.
		if int(rep.LastIdx) > n {
			return false
		}
		for i, op := range rep.Ordered {
			if op.Code != objects.LogAppend || op.Args[0] != uint64(i)+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
