package core

import (
	"testing"

	"repro/internal/objects"
	"repro/internal/pmem"
	"repro/internal/sched"
)

// TestUpdateSurvivesOverflowRingExhaustion pins the overflow-ring
// pressure valve. Each round stalls p1 between order and persist and
// lets p0 run one update, so every p0 record carries p1's pending op —
// past the inline budget of 1, into the overflow ring. The geometry
// below gives the ring room for 16 spilled tails; 20 rounds exhaust
// it, and the exhaustion must be absorbed by compactForSpace
// (snapshot + truncate + retry) instead of failing the update, with
// the full history surviving a crash.
func TestUpdateSurvivesOverflowRingExhaustion(t *testing.T) {
	const rounds = 20
	ctl := sched.NewController()
	pool := pmem.New(1<<22, ctl)
	in, err := New(pool, objects.CounterSpec{}, Config{
		// CompactEvery is set far past the run so only the pressure
		// valve — never the regular compaction cadence — truncates.
		// Ring: max(64 slots * 16-word chunk / 8, 4*16) = 128 words,
		// 16 aligned 1-op tails.
		NProcs: 3, LogCapacity: 64, LogInlineOps: 1,
		LocalViews: true, CompactEvery: 1 << 20, Gate: ctl,
	})
	if err != nil {
		t.Fatal(err)
	}
	done1 := ctl.Spawn(1, func() {
		h := in.Handle(1)
		for i := 0; i < rounds; i++ {
			if _, _, err := h.Update(objects.CounterInc); err != nil {
				panic(err)
			}
		}
	})
	done0 := ctl.Spawn(0, func() {
		h := in.Handle(0)
		for i := 0; i < rounds; i++ {
			if _, _, err := h.Update(objects.CounterInc); err != nil {
				panic(err)
			}
		}
	})
	for i := 0; i < rounds; i++ {
		if _, ok := ctl.RunUntil(1, sched.AtPoint(PointOrdered)); !ok {
			t.Fatalf("round %d: p1 finished early", i)
		}
		if _, ok := ctl.RunPast(0, sched.AtPoint(PointReturn)); !ok {
			t.Fatalf("round %d: p0 finished early", i)
		}
		if _, ok := ctl.RunPast(1, sched.AtPoint(PointReturn)); !ok {
			t.Fatalf("round %d: p1 could not finish its update", i)
		}
	}
	ctl.RunToCompletion(0)
	ctl.RunToCompletion(1)
	if out := <-done0; out != nil {
		t.Fatalf("p0 failed under ring exhaustion: %v", out)
	}
	if out := <-done1; out != nil {
		t.Fatalf("p1 failed: %v", out)
	}
	ctl.KillAll()

	// The valve must actually have fired: without truncation p0's log
	// would hold all its records.
	if live := in.Log(0).Len(); live >= rounds {
		t.Fatalf("p0 log holds %d records; compactForSpace never truncated", live)
	}

	pool.SetGate(nil)
	pool.Crash(pmem.DropAll) // every update was fenced: all must survive
	in2, rep, err := Recover(pool, objects.CounterSpec{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := in2.Handle(0).Read(objects.CounterGet); got != 2*rounds {
		t.Fatalf("recovered counter %d, want %d", got, 2*rounds)
	}
	for pid := 0; pid < 2; pid++ {
		for seq := uint64(1); seq <= rounds; seq++ {
			// Every completed update must stay detectable, via the
			// emergency snapshots' covered-sequence vector or records.
			if _, ok := rep.WasLinearized(uint64(pid+1)<<48 | seq); !ok {
				t.Fatalf("p%d op %d vanished across the emergency compaction", pid, seq)
			}
		}
	}
}
