package core

import (
	"strings"
	"testing"

	"repro/internal/objects"
	"repro/internal/pmem"
	"repro/internal/sched"
	"repro/internal/spec"
	"repro/internal/trace"
)

// TestProp59ReaderAnomalyIsLinearizable reproduces the anomaly of
// Proposition 5.9: a reader traversing the live trace (not an atomic
// snapshot) can stop at a node that was never the latest available
// node, because later flags were set while it walked. The returned
// value must still be linearizable: the read linearizes immediately
// after that node's update.
func TestProp59ReaderAnomalyIsLinearizable(t *testing.T) {
	ctl := sched.NewController()
	pool := pmem.New(testPoolSize, ctl)
	in, err := New(pool, objects.CounterSpec{}, Config{NProcs: 3, Gate: ctl})
	if err != nil {
		t.Fatal(err)
	}
	// Build: n1..n3 inserted; none available yet. p0 owns n1, p1 owns
	// n2-then-n3.
	ctl.Spawn(0, func() { in.Handle(0).Update(objects.CounterInc) })
	if _, ok := ctl.RunUntil(0, sched.AtPoint(PointPersisted)); !ok {
		t.Fatal("p0 never persisted")
	}
	ctl.Spawn(1, func() { in.Handle(1).Update(objects.CounterInc) })
	if _, ok := ctl.RunUntil(1, sched.AtPoint(PointPersisted)); !ok {
		t.Fatal("p1 never persisted")
	}
	// Reader starts: walks from tail (n2, unavailable) and is paused
	// mid-traversal, before inspecting n1.
	var rd uint64
	dR := ctl.Spawn(2, func() { rd = in.Handle(2).Read(objects.CounterGet) })
	if _, ok := ctl.RunUntil(2, sched.AtPoint("trace.scan")); !ok {
		t.Fatal("reader finished early")
	}
	ctl.StepN(2, 1) // inspect tail n2: unavailable, move toward n1
	// Now p1 completes: sets n2's flag (which transitively linearizes
	// n1 as well per the linearization-point definition).
	ctl.RunToCompletion(1)
	// p0 completes too: n1's flag set.
	ctl.RunToCompletion(0)
	// The reader resumes; it is already past n2, finds n1 available,
	// and returns 1 — a value that was never the "latest" state, but
	// IS linearizable (the read linearizes right after n1's update).
	ctl.RunToCompletion(2)
	<-dR
	if rd != 1 && rd != 2 {
		t.Fatalf("anomalous read returned %d, not a linearizable value", rd)
	}
	if rd != 1 {
		t.Skip("scheduler variation: anomaly window not hit (read still correct)")
	}
	ctl.KillAll()
}

func TestLogFullSurfacesError(t *testing.T) {
	pool := pmem.New(testPoolSize, nil)
	in, err := New(pool, objects.CounterSpec{}, Config{NProcs: 1, LogCapacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	h := in.Handle(0)
	var sawErr error
	for i := 0; i < 10; i++ {
		if _, _, err := h.Update(objects.CounterInc); err != nil {
			sawErr = err
			break
		}
	}
	if sawErr == nil {
		t.Fatal("no error from a full, never-truncated log")
	}
	if !strings.Contains(sawErr.Error(), "persist stage") {
		t.Fatalf("unexpected error: %v", sawErr)
	}
}

func TestBusyHandlePanics(t *testing.T) {
	pool := pmem.New(testPoolSize, nil)
	in, err := New(pool, objects.CounterSpec{}, Config{NProcs: 1})
	if err != nil {
		t.Fatal(err)
	}
	h := in.Handle(0)
	h.busy.Store(true) // simulate a concurrent op on the same handle
	defer func() {
		if recover() == nil {
			t.Fatal("concurrent use of one handle not detected")
		}
	}()
	h.Update(objects.CounterInc)
}

func TestConfigValidation(t *testing.T) {
	pool := pmem.New(testPoolSize, nil)
	if _, err := New(pool, objects.CounterSpec{}, Config{NProcs: 0}); err == nil {
		t.Fatal("NProcs=0 accepted")
	}
	if _, err := New(pool, objects.CounterSpec{}, Config{NProcs: MaxProcs + 1}); err == nil {
		t.Fatal("NProcs over MaxProcs accepted")
	}
}

func TestHandleRangePanics(t *testing.T) {
	pool := pmem.New(testPoolSize, nil)
	in, _ := New(pool, objects.CounterSpec{}, Config{NProcs: 2})
	for _, pid := range []int{-1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Handle(%d) did not panic", pid)
				}
			}()
			in.Handle(pid)
		}()
	}
}

func TestWaitFreePlusCompaction(t *testing.T) {
	pool := pmem.New(testPoolSize, nil)
	in, err := New(pool, objects.MapSpec{}, Config{
		NProcs: 2, WaitFree: true, CompactEvery: 7, LogCapacity: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 300; i++ {
		pid := int(i % 2)
		if _, _, err := in.Handle(pid).Update(objects.MapPut, i%16, i); err != nil {
			t.Fatal(err)
		}
	}
	pool.Crash(pmem.DropAll)
	in2, rep, err := Recover(pool, objects.MapSpec{}, Config{WaitFree: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.BaseIdx == 0 {
		t.Fatal("no snapshot found")
	}
	for k := uint64(0); k < 16; k++ {
		want := k + 16*((299-k)/16) // the last value written for key k
		_ = want
		// Spot-check a few keys against a reference replay below.
	}
	// Reference: replay the same op stream sequentially and compare
	// through reads.
	ref := objects.MapSpec{}.New()
	for i := uint64(0); i < 300; i++ {
		var op = mkOp(objects.MapPut, i%16, i)
		ref.Apply(op)
	}
	h := in2.Handle(0)
	for k := uint64(0); k < 16; k++ {
		want := ref.Read(mkOp(objects.MapGet, k))
		if got := h.Read(objects.MapGet, k); got != want {
			t.Fatalf("key %d: got %d want %d", k, got, want)
		}
	}
}

func mkOp(code uint64, args ...uint64) spec.Op {
	op := spec.Op{Code: code}
	copy(op.Args[:], args)
	return op
}

func TestDetectabilityAcrossCompaction(t *testing.T) {
	pool := pmem.New(testPoolSize, nil)
	in, err := New(pool, objects.CounterSpec{}, Config{NProcs: 1, CompactEvery: 5, LogCapacity: 32})
	if err != nil {
		t.Fatal(err)
	}
	h := in.Handle(0)
	var ids []uint64
	for i := 0; i < 23; i++ {
		_, id, err := h.Update(objects.CounterInc)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	pool.Crash(pmem.DropAll)
	_, rep, err := Recover(pool, objects.CounterSpec{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.BaseIdx == 0 {
		t.Fatal("no compaction snapshot recovered")
	}
	// EVERY completed op must be detectable, including those whose
	// individual records were compacted away.
	for i, id := range ids {
		if _, ok := rep.WasLinearized(id); !ok {
			t.Fatalf("op %d (%#x) undetectable after compaction", i, id)
		}
	}
	// A never-invoked id must not be reported.
	if _, ok := rep.WasLinearized(spec.MakeID(0, 999)); ok {
		t.Fatal("phantom op reported linearized")
	}
}

func TestRecoverWrongNProcsRejected(t *testing.T) {
	pool := pmem.New(testPoolSize, nil)
	if _, err := New(pool, objects.CounterSpec{}, Config{NProcs: 3}); err != nil {
		t.Fatal(err)
	}
	pool.Crash(pmem.DropAll)
	if _, _, err := Recover(pool, objects.CounterSpec{}, Config{NProcs: 5}); err == nil {
		t.Fatal("mismatched NProcs accepted")
	}
}

// TestHelpedOpReturnValueConsistency: an op that was helped (its flag
// set transitively by a later op) must still compute ITS OWN return
// value at its own index, not at the helper's.
func TestHelpedOpReturnValueConsistency(t *testing.T) {
	ctl := sched.NewController()
	pool := pmem.New(testPoolSize, ctl)
	in, err := New(pool, objects.CounterSpec{}, Config{NProcs: 2, Gate: ctl})
	if err != nil {
		t.Fatal(err)
	}
	var ret0 uint64
	d0 := ctl.Spawn(0, func() { ret0, _, _ = in.Handle(0).Update(objects.CounterInc) })
	if _, ok := ctl.RunUntil(0, sched.AtPoint(PointPersisted)); !ok {
		t.Fatal("p0 never persisted")
	}
	var ret1 uint64
	d1 := ctl.Spawn(1, func() { ret1, _, _ = in.Handle(1).Update(objects.CounterInc) })
	ctl.RunToCompletion(1)
	<-d1
	if ret1 != 2 {
		t.Fatalf("helper returned %d, want 2", ret1)
	}
	ctl.RunToCompletion(0)
	<-d0
	if ret0 != 1 {
		t.Fatalf("helped op returned %d, want 1 (its own index)", ret0)
	}
	ctl.KillAll()
}

// TestTraceCutInvisibleToConcurrentReader: a reader holding a pre-cut
// node chain must still compute correctly after another process cuts
// the trace behind it.
func TestTraceCutInvisibleToConcurrentReader(t *testing.T) {
	ctl := sched.NewController()
	pool := pmem.New(testPoolSize, ctl)
	in, err := New(pool, objects.CounterSpec{}, Config{NProcs: 2, CompactEvery: 4, Gate: ctl})
	if err != nil {
		t.Fatal(err)
	}
	// p0 performs 3 updates (one shy of compaction).
	d := ctl.Spawn(0, func() {
		for i := 0; i < 3; i++ {
			in.Handle(0).Update(objects.CounterInc)
		}
	})
	ctl.RunToCompletion(0)
	<-d
	ctl.Release(0)
	// Reader on p1 pauses mid-walk.
	var rd uint64
	dR := ctl.Spawn(1, func() { rd = in.Handle(1).Read(objects.CounterGet) })
	if _, ok := ctl.RunUntil(1, sched.AtPoint("trace.scan")); !ok {
		t.Fatal("reader finished early")
	}
	// p0 does one more update, triggering compaction and a trace cut.
	d = ctl.Spawn(0, func() { in.Handle(0).Update(objects.CounterInc) })
	ctl.RunToCompletion(0)
	<-d
	if in.Log(0).Len() > 2 {
		t.Fatalf("compaction did not truncate: %d records", in.Log(0).Len())
	}
	// The paused reader resumes on its immutable chain.
	ctl.RunToCompletion(1)
	<-dR
	if rd != 3 && rd != 4 {
		t.Fatalf("reader across a cut returned %d", rd)
	}
	ctl.KillAll()
}

// TestRecoveryUsesNewestSnapshot: with several processes compacting at
// different points, recovery must start from the newest valid one.
func TestRecoveryUsesNewestSnapshot(t *testing.T) {
	pool := pmem.New(testPoolSize, nil)
	in, err := New(pool, objects.CounterSpec{}, Config{NProcs: 3, CompactEvery: 6, LogCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, _, err := in.Handle(i % 3).Update(objects.CounterInc); err != nil {
			t.Fatal(err)
		}
	}
	pool.Crash(pmem.DropAll)
	in2, rep, err := Recover(pool, objects.CounterSpec{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.BaseIdx == 0 {
		t.Fatal("no snapshot used")
	}
	if got := in2.Handle(0).Read(objects.CounterGet); got != 100 {
		t.Fatalf("recovered %d, want 100", got)
	}
	// The newest snapshot must dominate every process's log.
	for pid := 0; pid < 3; pid++ {
		for _, recRecord := range in2.Log(pid).Records() {
			_ = recRecord
		}
	}
}

func TestTraceSnapshotAfterRecoveryIsContiguous(t *testing.T) {
	pool := pmem.New(testPoolSize, nil)
	in, _ := New(pool, objects.CounterSpec{}, Config{NProcs: 2})
	for i := 0; i < 9; i++ {
		in.Handle(i % 2).Update(objects.CounterInc)
	}
	pool.Crash(pmem.DropAll)
	in2, _, err := Recover(pool, objects.CounterSpec{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	snap := trace.Snapshot(in2.Trace().Tail(0))
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Idx != snap[i].Idx+1 {
			t.Fatalf("recovered trace not contiguous at %d: %v", i, snap)
		}
		if i < len(snap)-1 && !snap[i].Available {
			t.Fatalf("recovered node %d not available", snap[i].Idx)
		}
	}
}
