package core

import (
	"errors"
	"testing"

	"repro/internal/objects"
	"repro/internal/pmem"
	"repro/internal/sched"
	"repro/internal/spec"
)

func TestBatchAmortizesFences(t *testing.T) {
	// The point of the batch entry point: one persistent fence per
	// Flush, not per op.
	pool, in := newCounter(t, Config{NProcs: 1, LogMaxOps: 64})
	b := in.Handle(0).NewBatch()
	const flushes, per = 8, 16
	want := uint64(0)
	for f := 0; f < flushes; f++ {
		for i := 0; i < per; i++ {
			want++
			ret, _, err := b.Stage(objects.CounterInc)
			if err != nil {
				t.Fatalf("Stage: %v", err)
			}
			if ret != want {
				t.Fatalf("stage %d returned %d, want %d", want, ret, want)
			}
		}
		if err := b.Flush(); err != nil {
			t.Fatalf("Flush: %v", err)
		}
	}
	if got := in.Handle(0).Read(objects.CounterGet); got != want {
		t.Fatalf("read %d, want %d", got, want)
	}
	pf := pool.TotalStats().PersistentFences
	if pf != flushes {
		t.Fatalf("%d persistent fences for %d flushes, want exactly one per flush", pf, flushes)
	}
}

func TestBatchFullAndErr(t *testing.T) {
	_, in := newCounter(t, Config{NProcs: 1, LogMaxOps: 4})
	b := in.Handle(0).NewBatch()
	for i := 0; i < 4; i++ {
		if _, _, err := b.Stage(objects.CounterInc); err != nil {
			t.Fatalf("Stage %d: %v", i, err)
		}
	}
	if _, _, err := b.Stage(objects.CounterInc); !errors.Is(err, ErrBatchFull) {
		t.Fatalf("overfull Stage: err = %v, want ErrBatchFull", err)
	}
	if err := b.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if _, _, err := b.Stage(objects.CounterInc); err != nil {
		t.Fatalf("Stage after flush: %v", err)
	}
	if b.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", b.Pending())
	}
}

func TestBatchCrashSplitsAtFlush(t *testing.T) {
	// Flushed batch survives the crash; a staged-but-unflushed batch is
	// lost, and the loss is detectable per op id (WasLinearized false).
	pool, in := newCounter(t, Config{NProcs: 1, LogMaxOps: 32})
	b := in.Handle(0).NewBatch()
	var durable, lost []uint64
	for i := 0; i < 4; i++ {
		_, id, err := b.Stage(objects.CounterInc)
		if err != nil {
			t.Fatal(err)
		}
		durable = append(durable, id)
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		_, id, err := b.Stage(objects.CounterInc)
		if err != nil {
			t.Fatal(err)
		}
		lost = append(lost, id)
	}
	// Before the crash all 7 are linearized and reader-visible.
	if v := in.Handle(0).Read(objects.CounterGet); v != 7 {
		t.Fatalf("pre-crash read %d, want 7", v)
	}
	pool.Crash(pmem.DropAll)
	rin, rep, err := Recover(pool, objects.CounterSpec{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.LastIdx != 4 {
		t.Fatalf("recovered %d ops, want the 4 flushed", rep.LastIdx)
	}
	for _, id := range durable {
		if _, ok := rep.WasLinearized(id); !ok {
			t.Fatalf("flushed op %#x not recovered", id)
		}
	}
	for _, id := range lost {
		if _, ok := rep.WasLinearized(id); ok {
			t.Fatalf("unflushed op %#x reported linearized after crash", id)
		}
	}
	if v := rin.Handle(0).Read(objects.CounterGet); v != 4 {
		t.Fatalf("post-recovery read %d, want 4", v)
	}
}

func TestBatchFlushHelpsDelayedProcess(t *testing.T) {
	// A flush's record covers the helping tail exactly like Update's
	// fuzzy window: p1 orders an op and stalls before persisting; p0's
	// batch flush must persist it under the batch's single fence.
	ctl := sched.NewController()
	pool := pmem.New(testPoolSize, ctl)
	in, err := New(pool, objects.CounterSpec{}, Config{NProcs: 2, LogMaxOps: 16, Gate: ctl})
	if err != nil {
		t.Fatal(err)
	}
	ctl.Spawn(1, func() { in.Handle(1).Update(objects.CounterInc) })
	if _, ok := ctl.RunUntil(1, sched.AtPoint(PointOrdered)); !ok {
		t.Fatal("p1 never ordered")
	}
	done0 := ctl.Spawn(0, func() {
		b := in.Handle(0).NewBatch()
		for i := 0; i < 3; i++ {
			if _, _, serr := b.Stage(objects.CounterInc); serr != nil {
				t.Errorf("Stage: %v", serr)
			}
		}
		if ferr := b.Flush(); ferr != nil {
			t.Errorf("Flush: %v", ferr)
		}
	})
	ctl.RunToCompletion(0)
	<-done0
	ctl.KillAll()
	pool.Crash(pmem.DropAll)
	_, rep, err := Recover(pool, objects.CounterSpec{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.LastIdx != 4 {
		t.Fatalf("recovered %d ops, want 4 (p1's stalled op + 3 batched)", rep.LastIdx)
	}
	if _, ok := rep.WasLinearized(spec.MakeID(1, 1)); !ok {
		t.Fatal("p1's helped op not recovered by the batch flush")
	}
}

func TestBatchWithCompaction(t *testing.T) {
	// Batches drive the compaction cadence by ops flushed, and recovery
	// from a snapshot base reconstructs the batched history.
	pool, in := newCounter(t, Config{NProcs: 1, LogMaxOps: 16, CompactEvery: 8})
	b := in.Handle(0).NewBatch()
	const total = 40
	for i := 0; i < total/4; i++ {
		for j := 0; j < 4; j++ {
			if _, _, err := b.Stage(objects.CounterInc); err != nil {
				t.Fatal(err)
			}
		}
		if err := b.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if v := in.Handle(0).Read(objects.CounterGet); v != total {
		t.Fatalf("read %d, want %d", v, total)
	}
	pool.Crash(pmem.DropAll)
	rin, rep, err := Recover(pool, objects.CounterSpec{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.LastIdx != total {
		t.Fatalf("recovered LastIdx %d, want %d", rep.LastIdx, total)
	}
	if v := rin.Handle(0).Read(objects.CounterGet); v != total {
		t.Fatalf("post-recovery read %d, want %d", v, total)
	}
}
