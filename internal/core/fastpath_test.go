package core

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/objects"
	"repro/internal/pmem"
	"repro/internal/workload"
)

// pointCounter is a gate that counts steps per point name.
type pointCounter struct {
	mu sync.Mutex
	n  map[string]int
}

func (p *pointCounter) Step(pid int, point string) {
	p.mu.Lock()
	p.n[point]++
	p.mu.Unlock()
}

func (p *pointCounter) get(point string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.n[point]
}

// TestReadFastPathSkipsWalk pins the mechanism itself: once a read has
// validated the view against the current epoch, further reads touch no
// trace node — zero "trace.scan" and "trace.read-tail" steps — until an
// update publishes a new node, which invalidates exactly once.
func TestReadFastPathSkipsWalk(t *testing.T) {
	gate := &pointCounter{n: map[string]int{}}
	pool := pmem.New(1<<22, nil)
	in, err := New(pool, objects.CounterSpec{}, Config{
		NProcs: 2, ReadFastPath: true, Gate: gate, LogCapacity: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	h0, h1 := in.Handle(0), in.Handle(1)
	if _, _, err := h0.Update(objects.CounterInc); err != nil {
		t.Fatal(err)
	}
	h0.Read(objects.CounterGet) // validates the view against the epoch
	scans, tails := gate.get("trace.scan"), gate.get("trace.read-tail")
	for i := 0; i < 100; i++ {
		if got := h0.Read(objects.CounterGet); got != 1 {
			t.Fatalf("read %d, want 1", got)
		}
	}
	if s, tl := gate.get("trace.scan"), gate.get("trace.read-tail"); s != scans || tl != tails {
		t.Fatalf("epoch-valid reads walked the trace: scans %d->%d, tail reads %d->%d", scans, s, tails, tl)
	}
	// A foreign update bumps the epoch: the next read must walk (and
	// observe the new value), the ones after it must not.
	if _, _, err := h1.Update(objects.CounterInc); err != nil {
		t.Fatal(err)
	}
	if got := h0.Read(objects.CounterGet); got != 2 {
		t.Fatalf("read %d after foreign update, want 2", got)
	}
	scans, tails = gate.get("trace.scan"), gate.get("trace.read-tail")
	for i := 0; i < 100; i++ {
		h0.Read(objects.CounterGet)
	}
	if s, tl := gate.get("trace.scan"), gate.get("trace.read-tail"); s != scans || tl != tails {
		t.Fatalf("revalidated reads walked the trace: scans %d->%d, tail reads %d->%d", scans, s, tails, tl)
	}
}

// TestReadFastPathEquivalence replays identical single-process op
// streams against a fast-path-on and a fast-path-off instance for every
// shipped object: every return value must match — the fast path is an
// optimization, never a semantic.
func TestReadFastPathEquivalence(t *testing.T) {
	for _, sp := range objects.All() {
		sp := sp
		t.Run(sp.Name(), func(t *testing.T) {
			gen := workload.NewGenerator(sp)
			steps := gen.Stream(77, 400, 50)
			var rets [2][]uint64
			for leg, fast := range map[int]bool{0: false, 1: true} {
				pool := pmem.New(1<<24, nil)
				in, err := New(pool, sp, Config{
					NProcs: 1, LocalViews: true, ReadFastPath: fast,
					CompactEvery: 16, LogCapacity: 2048,
				})
				if err != nil {
					t.Fatal(err)
				}
				h := in.Handle(0)
				for _, st := range steps {
					if st.IsUpdate {
						ret, _, err := h.Update(st.Code, st.Args...)
						if err != nil {
							t.Fatal(err)
						}
						rets[leg] = append(rets[leg], ret)
					} else {
						rets[leg] = append(rets[leg], h.Read(st.Code, st.Args...))
					}
				}
			}
			for i := range rets[0] {
				if rets[0][i] != rets[1][i] {
					t.Fatalf("step %d: fast-path-off returned %d, on returned %d", i, rets[0][i], rets[1][i])
				}
			}
		})
	}
}

// TestReadFastPathAdoptionUnderCompaction drives a lagging reader
// against a compacting writer deterministically: the reader's rare
// reads land far behind a writer that has cut the trace several times,
// so each one either adopts the published view or restores from a base
// — both must agree with the reference value.
func TestReadFastPathAdoptionUnderCompaction(t *testing.T) {
	pool := pmem.New(1<<24, nil)
	in, err := New(pool, objects.CounterSpec{}, Config{
		NProcs: 2, ReadFastPath: true, CompactEvery: 16, LogCapacity: 2048,
	})
	if err != nil {
		t.Fatal(err)
	}
	w, r := in.Handle(0), in.Handle(1)
	rng := rand.New(rand.NewSource(5))
	var done uint64
	for round := 0; round < 40; round++ {
		burst := 40 + rng.Intn(120)
		for i := 0; i < burst; i++ {
			if _, _, err := w.Update(objects.CounterInc); err != nil {
				t.Fatal(err)
			}
			done++
		}
		if got := r.Read(objects.CounterGet); got != done {
			t.Fatalf("round %d: lagging reader saw %d, want %d", round, got, done)
		}
	}
	if r.adoptions.Load() == 0 && w.adoptions.Load() == 0 {
		t.Log("note: no adoption triggered (bases won every race); lag coverage via base restore only")
	}
}
