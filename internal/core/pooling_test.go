package core

import (
	"sync"
	"testing"

	"repro/internal/objects"
	"repro/internal/pmem"
)

// TestNodePoolingFeedsFreelist pins the reclamation pipeline: after a
// few compaction cycles the cutter's freelist holds recycled nodes, and
// subsequent updates consume them (no fresh allocation) while the
// object stays correct.
func TestNodePoolingFeedsFreelist(t *testing.T) {
	pool := pmem.New(1<<22, nil)
	in, err := New(pool, objects.CounterSpec{}, Config{
		NProcs: 1, LogCapacity: 256, LocalViews: true, CompactEvery: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := in.Handle(0)
	const n = 320 // ten compaction cycles
	for i := 0; i < n; i++ {
		if _, _, err := h.Update(objects.CounterInc); err != nil {
			t.Fatal(err)
		}
	}
	if len(h.freeNodes)+len(h.retired) == 0 {
		t.Fatal("compaction recycled no trace nodes")
	}
	free := len(h.freeNodes)
	if free == 0 {
		t.Fatal("no retired node was promoted to the freelist")
	}
	// The next updates must draw from the freelist...
	for i := 0; i < 8; i++ {
		if _, _, err := h.Update(objects.CounterInc); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(h.freeNodes); got != free-8 {
		t.Fatalf("freelist %d -> %d after 8 updates, want %d", free, got, free-8)
	}
	// ...and the object must still compute correctly on recycled nodes.
	if got := h.Read(objects.CounterGet); got != n+8 {
		t.Fatalf("counter reads %d, want %d", got, n+8)
	}
}

// TestNodePoolingConcurrentCorrectness hammers pooling with compaction
// from every handle plus concurrent readers (run under -race in CI):
// recycled nodes must never surface stale state.
func TestNodePoolingConcurrentCorrectness(t *testing.T) {
	const nprocs, per = 4, 600
	pool := pmem.New(1<<24, nil)
	in, err := New(pool, objects.CounterSpec{}, Config{
		NProcs: nprocs, LogCapacity: 512, LocalViews: true, CompactEvery: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for pid := 0; pid < nprocs; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			h := in.Handle(pid)
			var last uint64
			for i := 0; i < per; i++ {
				if _, _, err := h.Update(objects.CounterInc); err != nil {
					panic(err)
				}
				// Counter reads must be monotone from any one process's
				// point of view (it sees at least its own updates).
				if got := h.Read(objects.CounterGet); got < last {
					panic("non-monotone counter read")
				} else {
					last = got
				}
			}
		}(pid)
	}
	wg.Wait()
	if got := in.Handle(0).Read(objects.CounterGet); got != nprocs*per {
		t.Fatalf("counter %d after %d updates", got, nprocs*per)
	}
	reused := 0
	for pid := 0; pid < nprocs; pid++ {
		reused += len(in.Handle(pid).freeNodes) + len(in.Handle(pid).retired)
	}
	if reused == 0 {
		t.Fatal("no nodes were recycled across any handle")
	}
}

// TestUpdateSteadyStateZeroAllocs pins the tentpole number: with local
// views and compaction warm, an update performs zero allocations
// outside the amortized compaction work.
func TestUpdateSteadyStateZeroAllocs(t *testing.T) {
	pool := pmem.New(1<<24, nil)
	in, err := New(pool, objects.CounterSpec{}, Config{
		NProcs: 1, LogCapacity: 1 << 11, LocalViews: true, CompactEvery: 1 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := in.Handle(0)
	for i := 0; i < 3<<10; i++ { // three compaction cycles of warm-up
		if _, _, err := h.Update(objects.CounterInc); err != nil {
			t.Fatal(err)
		}
	}
	// Measure a window that stays clear of the next compaction.
	avg := testing.AllocsPerRun(100, func() {
		if _, _, err := h.Update(objects.CounterInc); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state update allocates %.2f objects/op, want 0", avg)
	}
}
