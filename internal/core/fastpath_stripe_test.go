package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
	"unsafe"

	"repro/internal/objects"
	"repro/internal/pmem"
)

// TestPubViewCacheLineLayout pins the false-sharing fix structurally:
// the slot's three hot atomics — ver (CASed by every acquire),
// frontier (stored by every publication, loaded by every damper check
// and stripe scan) and epochHint (polled by every fast-path read) —
// must each own a 64-byte cache line, and the guarded payload must not
// share a line with any of them. On the pre-PR 8 layout the three sat
// on adjacent words, so a stamper's epochHint store invalidated the
// line a publisher was about to load even when the slot was already
// caught up; this test fails on that layout.
func TestPubViewCacheLineLayout(t *testing.T) {
	var p pubView
	line := func(off uintptr) uintptr { return off / pmem.LineSize }
	offs := map[string]uintptr{
		"ver":       unsafe.Offsetof(p.ver),
		"frontier":  unsafe.Offsetof(p.frontier),
		"epochHint": unsafe.Offsetof(p.epochHint),
		"counters":  unsafe.Offsetof(p.publishes),
		"payload":   unsafe.Offsetof(p.state),
	}
	seen := map[uintptr]string{}
	for name, off := range offs {
		if prev, dup := seen[line(off)]; dup {
			t.Errorf("%s (offset %d) shares cache line %d with %s (false sharing)",
				name, off, line(off), prev)
			continue
		}
		seen[line(off)] = name
	}
	for _, name := range []string{"ver", "frontier", "epochHint"} {
		if offs[name]%pmem.LineSize != 0 {
			t.Errorf("%s at offset %d is not cache-line aligned within the struct", name, offs[name])
		}
	}
}

// TestSlotStripesResolve covers the stripe-count plumbing: explicit
// counts are honoured (and surfaced via FastPathStats.Stripes), auto
// sizing never exceeds NProcs, and the freshest-stripe scan picks the
// highest published frontier across stripes regardless of which pid's
// stripe holds it.
func TestSlotStripesResolve(t *testing.T) {
	pool := pmem.New(1<<22, nil)
	in, err := New(pool, objects.CounterSpec{}, Config{
		NProcs: 4, ReadFastPath: true, SlotStripes: 4, LogCapacity: 1 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := in.FastPathStats().Stripes; got != 4 {
		t.Fatalf("explicit SlotStripes=4 resolved to %d", got)
	}

	pool2 := pmem.New(1<<22, nil)
	in2, err := New(pool2, objects.CounterSpec{}, Config{
		NProcs: 1, ReadFastPath: true, LogCapacity: 1 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := in2.FastPathStats().Stripes; got != 1 {
		t.Fatalf("auto stripes with NProcs=1 resolved to %d, want 1", got)
	}

	// Publish to two different stripes at different indices by driving
	// the publishers directly, then ask the scan for the freshest.
	h0, h2 := in.Handle(0), in.Handle(2)
	for i := 0; i < 48; i++ {
		if _, _, err := h0.Update(objects.CounterInc); err != nil {
			t.Fatal(err)
		}
	}
	h0.tryPublish() // stripe 0, idx 48
	for i := 0; i < 16; i++ {
		if _, _, err := h2.Update(objects.CounterInc); err != nil {
			t.Fatal(err)
		}
	}
	h2.Read(objects.CounterGet) // catch h2 up to 64
	h2.tryPublish()             // stripe 2, idx 64
	if f0, f2 := in.pubs[0].frontier.Load(), in.pubs[2].frontier.Load(); f0 != 48 || f2 != 64 {
		t.Fatalf("stripe frontiers (%d, %d), want (48, 64)", f0, f2)
	}
	if p := in.freshestStripe(0, ^uint64(0)); p != &in.pubs[2] {
		t.Fatalf("freshestStripe picked frontier %d, want stripe 2 at 64", p.frontier.Load())
	}
	if p := in.freshestStripe(50, ^uint64(0)); p != &in.pubs[2] {
		t.Fatal("freshestStripe ignored the minIdx-qualifying stripe")
	}
	if p := in.freshestStripe(0, 60); p != &in.pubs[0] {
		t.Fatal("freshestStripe ignored the maxIdx bound")
	}
	if p := in.freshestStripe(64, ^uint64(0)); p != nil {
		t.Fatal("freshestStripe invented a stripe beyond every frontier")
	}
}

// TestSlotDamperPerHandle is the regression test for the demand
// damper's accounting scope (it fails on the pre-PR 8 code, where the
// skip counter lived on the pubView): the damper must budget stamp-time
// slot advances PER HANDLE, not per instance. The deterministic
// scenario: a single-striped slot is published and stamped at index
// 50, update-side publication is disabled, and serve demand is zero —
// every subsequent read walks one node and hits the damper's skip
// branch. Two reader handles alternate for 20 rounds: 40 skips total,
// but only 20 per handle, so the slot must NOT advance (with the old
// shared counter, the combined 32nd skip at round 16 triggered a probe
// advance — the frontier moved and this test fails). The rounds then
// continue until one handle's own budget (slotProbeEvery = 32) is
// genuinely exhausted, and the probe advance must fire — proving the
// fix throttled the probes without killing them.
func TestSlotDamperPerHandle(t *testing.T) {
	pool := pmem.New(1<<22, nil)
	in, err := New(pool, objects.CounterSpec{}, Config{
		NProcs: 3, ReadFastPath: true, LogCapacity: 1 << 12,
		SlotStripes: 1,
		// Fixed threshold: deterministic, and small enough that the
		// probe advance (full copy) is always profitable once allowed.
		// Update-side publication off: the slot moves only via stamps,
		// so the damper is the ONLY thing deciding whether it advances.
		AdoptPolicy: AdoptPolicy{FixedMinLag: 4, DisableUpdatePublish: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	w, r1, r2 := in.Handle(0), in.Handle(1), in.Handle(2)
	for i := 0; i < 50; i++ {
		if _, _, err := w.Update(objects.CounterInc); err != nil {
			t.Fatal(err)
		}
	}
	// Bootstrap: r1's 50-node catch-up publishes (walk > publishMinLag)
	// and stamps the slot at index 50.
	r1.Read(objects.CounterGet)
	if f := in.pubs[0].frontier.Load(); f != 50 {
		t.Fatalf("bootstrap published frontier %d, want 50", f)
	}

	round := func() {
		if _, _, err := w.Update(objects.CounterInc); err != nil {
			t.Fatal(err)
		}
		r1.Read(objects.CounterGet)
		r2.Read(objects.CounterGet)
	}
	for i := 0; i < 20; i++ {
		round()
	}
	// 40 combined skips, 20 per handle: under per-handle budgets the
	// slot is still parked at 50. The shared-counter bug advanced it at
	// the combined 32nd skip.
	if f := in.pubs[0].frontier.Load(); f != 50 {
		t.Fatalf("slot advanced to %d with every per-handle skip budget (20) below slotProbeEvery (%d): damper counts skips globally", f, slotProbeEvery)
	}
	if r1.slotProbe != 20 || r2.slotProbe != 20 {
		t.Fatalf("per-handle probe counters (%d, %d), want (20, 20)", r1.slotProbe, r2.slotProbe)
	}

	// Keep going until r1's own budget runs out (32 skips): the probe
	// advance must fire — the damper throttles, it does not starve.
	for i := 0; i < 15; i++ {
		round()
	}
	if f := in.pubs[0].frontier.Load(); f <= 50 {
		t.Fatalf("slot frontier still %d after a handle exhausted its own probe budget", f)
	}
	if r1.slotProbe >= slotProbeEvery {
		t.Fatalf("r1 probe counter %d never reset after its probe advance", r1.slotProbe)
	}
	stats := in.FastPathStats()
	t.Logf("frontier=%d stamps=%d publishes=%d", in.pubs[0].frontier.Load(), stats.Stamps, stats.Publishes)
}

// TestStripedSlotSoak pounds the STRIPED slots under real concurrency
// (run with -race): four writers — each hashing to its own stripe —
// publish while readers adopt across stripes, cold handles bootstrap
// from whatever stripe is freshest, and the writers' compaction
// cadence recycles trace nodes underneath. The object is the bank:
// transfers conserve the total, so any torn adopted view (a copy
// racing a publisher on SOME stripe, which each stripe's seqlock must
// prevent) surfaces as a non-conserved read. Afterwards the machinery
// must demonstrably have run on more than one stripe.
func TestStripedSlotSoak(t *testing.T) {
	writes := 12_000
	if testing.Short() {
		writes = 3_000
	}
	const nprocs = 8 // pids 0..3 write (4 stripes), 4..6 read, 7 cold
	const accounts = 8
	const perAccount = 1_000
	const total = accounts * perAccount
	pool := pmem.New(1<<26, nil)
	in, err := New(pool, objects.BankSpec{}, Config{
		NProcs: nprocs, ReadFastPath: true, SlotStripes: 4,
		CompactEvery: 48, LogCapacity: 1 << 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	h0 := in.Handle(0)
	for a := uint64(1); a <= accounts; a++ {
		if _, _, err := h0.Update(objects.BankDeposit, a, perAccount); err != nil {
			t.Fatal(err)
		}
	}

	var writersLive atomic.Int64
	writersLive.Store(4)
	var wg sync.WaitGroup
	for pid := 0; pid < 4; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			defer writersLive.Add(-1)
			h := in.Handle(pid)
			rng := uint64(0x9e3779b97f4a7c15) * uint64(pid+1)
			for i := 0; i < writes/4; i++ {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				from := 1 + rng%accounts
				to := 1 + (rng>>8)%accounts
				amt := 1 + (rng>>16)%32
				if _, _, err := h.Update(objects.BankTransfer, from, to, amt); err != nil {
					panic(err)
				}
			}
		}(pid)
	}
	for pid := 4; pid <= 6; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			h := in.Handle(pid)
			i := 0
			for writersLive.Load() > 0 {
				if got := h.Read(objects.BankTotal); got != total {
					t.Errorf("p%d: torn view: total %d != %d", pid, got, total)
					return
				}
				i++
				if i%4 == 0 {
					time.Sleep(200 * time.Microsecond)
				}
			}
			if got := h.Read(objects.BankTotal); got != total {
				t.Errorf("p%d: final total %d != %d", pid, got, total)
			}
		}(pid)
	}
	wg.Wait()

	// Cold bootstrap across stripes: pid 7 sat out the whole run and
	// must still read a conserved total on its first, maximally lagged
	// read (adopting the freshest stripe rather than replaying).
	cold := in.Handle(7)
	if got := cold.Read(objects.BankTotal); got != total {
		t.Fatalf("cold handle: total %d != %d", got, total)
	}

	stats := in.FastPathStats()
	if stats.Stripes != 4 {
		t.Fatalf("resolved %d stripes, want 4", stats.Stripes)
	}
	if stats.Publishes == 0 || stats.Adoptions == 0 {
		t.Fatalf("striped machinery idle: publishes=%d adoptions=%d", stats.Publishes, stats.Adoptions)
	}
	striped := 0
	for i := range in.pubs {
		if in.pubs[i].publishes.Load() > 0 {
			striped++
		}
	}
	if striped < 2 {
		t.Fatalf("only %d stripe(s) ever published; striping degenerated to a single slot", striped)
	}
	t.Logf("stripes=%d published-stripes=%d publishes=%d adoptions=%d slot-reads=%d",
		stats.Stripes, striped, stats.Publishes, stats.Adoptions, stats.SlotReads)
}

// TestRootOverlapRejected is the regression test for the RootBase
// partition check (pre-PR 8, two instances with overlapping root
// ranges were accepted and silently clobbered each other's root
// slots): a partial overlap must fail with ErrRootOverlap at create
// time, disjoint ranges must tile fine, and re-claiming the IDENTICAL
// range must stay allowed — that is recovery of the same instance on
// the same in-process pool, which crash tests do routinely.
func TestRootOverlapRejected(t *testing.T) {
	pool := pmem.New(1<<22, nil)
	cfg := Config{NProcs: 2, LogCapacity: 1 << 10}
	if _, err := New(pool, objects.CounterSpec{}, cfg); err != nil {
		t.Fatal(err)
	}
	over := cfg
	over.RootBase = RootSpan(2) - 1 // last slot of the first claim
	if _, err := New(pool, objects.CounterSpec{}, over); !errors.Is(err, ErrRootOverlap) {
		t.Fatalf("overlapping RootBase accepted (err=%v), want ErrRootOverlap", err)
	}
	next := cfg
	next.RootBase = RootSpan(2)
	if _, err := New(pool, objects.CounterSpec{}, next); err != nil {
		t.Fatalf("disjoint RootBase rejected: %v", err)
	}
	// Identical re-claim: recovering instance 0 on the same pool object.
	if _, _, err := Recover(pool, objects.CounterSpec{}, Config{LogCapacity: 1 << 10}); err != nil {
		t.Fatalf("same-range recovery rejected: %v", err)
	}
}
