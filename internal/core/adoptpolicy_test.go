package core

import (
	"testing"
	"time"

	"repro/internal/objects"
	"repro/internal/pmem"
	"repro/internal/spec"
)

// fatState is a Sizer-less state wrapper hiding the underlying size
// hint, for exercising threshold's fallbacks.
type fatState struct{ spec.State }

func TestAdoptCostsThreshold(t *testing.T) {
	var c adoptCosts
	view := objects.OrderedMapSpec{}.New()

	// No samples yet: the PR 4 constant is the fallback.
	if got := c.threshold(view); got != adoptFixedMinLag {
		t.Fatalf("unsampled threshold = %d, want fallback %d", got, adoptFixedMinLag)
	}
	// One-sided samples still fall back.
	c.observeWalk(16, 16*time.Microsecond)
	if got := c.threshold(view); got != adoptFixedMinLag {
		t.Fatalf("walk-only threshold = %d, want fallback %d", got, adoptFixedMinLag)
	}

	// Expensive applies (1µs/node) vs cheap copies (0.25ns/word — the
	// Q8 floor of 1) on a small state: copying pays almost immediately,
	// so the threshold clamps to the floor.
	c.observeCopy(1024, 1*time.Microsecond)
	if got := c.threshold(view); got != adoptLagFloor {
		t.Fatalf("cheap-copy threshold = %d, want floor %d", got, adoptLagFloor)
	}

	// Flip the economics: cheap applies, expensive copies on a large
	// state. nodeNs ~= 40ns, wordNs ~= 64ns: the threshold must now
	// scale with the state size rather than sit at a constant.
	var c2 adoptCosts
	for i := 0; i < 64; i++ {
		c2.observeWalk(100, 4*time.Microsecond)   // 40 ns/node
		c2.observeCopy(1000, 64*time.Microsecond) // 64 ns/word
	}
	st := objects.OrderedMapSpec{}.New()
	for k := uint64(1); k <= 2000; k++ {
		st.Apply(spec.Op{Code: objects.OMapPut, Args: [3]uint64{k, k}})
	}
	thr := c2.threshold(st)
	if thr <= adoptLagFloor || thr >= adoptLagCeil {
		t.Fatalf("scaled threshold = %d, want strictly between clamps (%d, %d)", thr, adoptLagFloor, adoptLagCeil)
	}
	// Roughly words * 64/40: the hint is ~4001 words.
	if lo, hi := uint64(2000), uint64(20000); thr < lo || thr > hi {
		t.Fatalf("scaled threshold = %d for a ~4000-word state at 64ns/word vs 40ns/node; want within [%d, %d]", thr, lo, hi)
	}

	// A Sizer-less state uses the last observed copy size.
	thrFat := c2.threshold(fatState{st})
	if thrFat == adoptFixedMinLag || thrFat < adoptLagFloor || thrFat > adoptLagCeil {
		t.Fatalf("sizer-less threshold = %d, want a copyWords-based estimate", thrFat)
	}

	// Outlier clamps: a descheduled walk cannot blow up the estimate.
	var c3 adoptCosts
	c3.observeWalk(1, time.Second)
	if got := c3.nodeNsQ8.Load(); got != maxNodeNsQ8 {
		t.Fatalf("walk outlier stored %d, want clamp %d", got, maxNodeNsQ8)
	}
	c3.observeCopy(1, time.Second)
	if got := c3.wordNsQ8.Load(); got != maxWordNsQ8 {
		t.Fatalf("copy outlier stored %d, want clamp %d", got, maxWordNsQ8)
	}
}

func TestEWMAConvergesAndNeverStalls(t *testing.T) {
	var c adoptCosts
	for i := 0; i < 200; i++ {
		c.observeWalk(10, 10*1000*time.Nanosecond) // 1000 ns/node
	}
	got := c.nodeNsQ8.Load() >> 8
	if got < 900 || got > 1100 {
		t.Fatalf("EWMA converged to %d ns/node, want ~1000", got)
	}
	// Tiny deltas must still move the estimator (the ±1 nudge).
	before := c.nodeNsQ8.Load()
	c.observeWalk(10, 10*1001*time.Nanosecond)
	if c.nodeNsQ8.Load() == before {
		t.Fatal("EWMA stalled on a sub-alpha delta")
	}
}

func TestAdoptPolicyValidation(t *testing.T) {
	pool := pmem.New(1<<22, nil)
	if _, err := New(pool, objects.CounterSpec{}, Config{
		NProcs: 1, ReadFastPath: true, AdoptPolicy: AdoptPolicy{FixedMinLag: -1},
	}); err == nil {
		t.Fatal("negative FixedMinLag accepted")
	}
	if _, err := New(pool, objects.CounterSpec{}, Config{
		NProcs: 1, ReadFastPath: true, AdoptPolicy: AdoptPolicy{PublishLag: -2},
	}); err == nil {
		t.Fatal("negative PublishLag accepted")
	}
	// A fixed policy must not pay for the cost model.
	in, err := New(pool, objects.CounterSpec{}, Config{
		NProcs: 1, ReadFastPath: true, AdoptPolicy: AdoptPolicy{FixedMinLag: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	if in.costs != nil {
		t.Fatal("fixed-threshold instance allocated a cost model")
	}
	if got := in.Handle(0).adoptThreshold(); got != 7 {
		t.Fatalf("fixed threshold = %d, want 7", got)
	}
	// The adaptive default does.
	in2, err := New(pool, objects.CounterSpec{}, Config{NProcs: 1, ReadFastPath: true})
	if err != nil {
		t.Fatal(err)
	}
	if in2.costs == nil {
		t.Fatal("adaptive instance has no cost model")
	}
}

func TestCopySampleGate(t *testing.T) {
	// Warmup: every copy is timed. Steady state: exactly one in
	// copySampleEvery pays the clock reads; the rest run gated off.
	var c adoptCosts
	for i := 1; i <= copyWarmupSamples; i++ {
		if !c.sampleCopy() {
			t.Fatalf("warmup copy %d not timed", i)
		}
	}
	const after = 1600
	timed := 0
	for i := 0; i < after; i++ {
		if c.sampleCopy() {
			timed++
		}
	}
	if want := after / copySampleEvery; timed != want {
		t.Fatalf("%d of %d post-warmup copies timed, want %d (1 in %d)",
			timed, after, want, copySampleEvery)
	}
	if got := c.copySamples.Load(); got != uint64(copyWarmupSamples+after/copySampleEvery) {
		t.Fatalf("copySamples = %d, want %d", got, copyWarmupSamples+after/copySampleEvery)
	}
}

func TestEWMAConvergesUnderSampling(t *testing.T) {
	// The sample gate must not break convergence: feeding the copy-cost
	// EWMA only on gated-in ticks still reaches the true per-word cost
	// within the warmup window, and tracks a drift afterwards.
	var c adoptCosts
	const words = 512
	cost := func() time.Duration { return time.Duration(words) * 2 * time.Nanosecond } // 2 ns/word
	ticks := 0
	for c.copySamples.Load() < copyWarmupSamples {
		ticks++
		if c.sampleCopy() {
			c.observeCopy(words, cost())
		}
	}
	if ticks != copyWarmupSamples {
		t.Fatalf("warmup consumed %d ticks, want %d (all timed)", ticks, copyWarmupSamples)
	}
	if got, want := c.wordNsQ8.Load(), uint64(2<<8); got != want {
		t.Fatalf("converged wordNsQ8 = %d, want %d (2 ns/word)", got, want)
	}
	// Drift the true cost to 4 ns/word; sparse samples must still pull
	// the estimate there (alpha 1/8 closes 96% of the gap in 24
	// samples — 24*copySampleEvery ticks under the gate).
	cost = func() time.Duration { return time.Duration(words) * 4 * time.Nanosecond }
	for i := 0; i < 30*copySampleEvery; i++ {
		if c.sampleCopy() {
			c.observeCopy(words, cost())
		}
	}
	got := c.wordNsQ8.Load()
	if got < (4<<8)*9/10 || got > (4<<8)*11/10 {
		t.Fatalf("post-drift wordNsQ8 = %d, want within 10%% of %d", got, 4<<8)
	}
}

func TestFastPathCopiesAreSampleGated(t *testing.T) {
	// Integration: a real instance under fast-path churn must show more
	// slot copies than timed samples — i.e. the steady-state copy path
	// really runs clock-free — while the cost model still has data.
	pool := pmem.New(1<<24, nil)
	in, err := New(pool, objects.CounterSpec{}, Config{
		NProcs: 2, ReadFastPath: true, SlotStripes: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	h0, h1 := in.Handle(0), in.Handle(1)
	for i := 0; i < 4000; i++ {
		if _, _, err := h0.Update(objects.CounterInc); err != nil {
			t.Fatal(err)
		}
		h1.Read(objects.CounterGet) // laggard: adopts/validates the slot
	}
	tick, samples := in.costs.copyTick.Load(), in.costs.copySamples.Load()
	if tick <= copyWarmupSamples {
		t.Skipf("only %d slot copies happened; gate never left warmup", tick)
	}
	if samples >= tick {
		t.Fatalf("all %d copies timed (samples=%d); gate not engaged", tick, samples)
	}
	if in.costs.wordNsQ8.Load() == 0 {
		t.Fatal("cost model has no copy samples despite gated sampling")
	}
}
