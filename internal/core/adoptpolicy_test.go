package core

import (
	"testing"
	"time"

	"repro/internal/objects"
	"repro/internal/pmem"
	"repro/internal/spec"
)

// fatState is a Sizer-less state wrapper hiding the underlying size
// hint, for exercising threshold's fallbacks.
type fatState struct{ spec.State }

func TestAdoptCostsThreshold(t *testing.T) {
	var c adoptCosts
	view := objects.OrderedMapSpec{}.New()

	// No samples yet: the PR 4 constant is the fallback.
	if got := c.threshold(view); got != adoptFixedMinLag {
		t.Fatalf("unsampled threshold = %d, want fallback %d", got, adoptFixedMinLag)
	}
	// One-sided samples still fall back.
	c.observeWalk(16, 16*time.Microsecond)
	if got := c.threshold(view); got != adoptFixedMinLag {
		t.Fatalf("walk-only threshold = %d, want fallback %d", got, adoptFixedMinLag)
	}

	// Expensive applies (1µs/node) vs cheap copies (0.25ns/word — the
	// Q8 floor of 1) on a small state: copying pays almost immediately,
	// so the threshold clamps to the floor.
	c.observeCopy(1024, 1*time.Microsecond)
	if got := c.threshold(view); got != adoptLagFloor {
		t.Fatalf("cheap-copy threshold = %d, want floor %d", got, adoptLagFloor)
	}

	// Flip the economics: cheap applies, expensive copies on a large
	// state. nodeNs ~= 40ns, wordNs ~= 64ns: the threshold must now
	// scale with the state size rather than sit at a constant.
	var c2 adoptCosts
	for i := 0; i < 64; i++ {
		c2.observeWalk(100, 4*time.Microsecond)   // 40 ns/node
		c2.observeCopy(1000, 64*time.Microsecond) // 64 ns/word
	}
	st := objects.OrderedMapSpec{}.New()
	for k := uint64(1); k <= 2000; k++ {
		st.Apply(spec.Op{Code: objects.OMapPut, Args: [3]uint64{k, k}})
	}
	thr := c2.threshold(st)
	if thr <= adoptLagFloor || thr >= adoptLagCeil {
		t.Fatalf("scaled threshold = %d, want strictly between clamps (%d, %d)", thr, adoptLagFloor, adoptLagCeil)
	}
	// Roughly words * 64/40: the hint is ~4001 words.
	if lo, hi := uint64(2000), uint64(20000); thr < lo || thr > hi {
		t.Fatalf("scaled threshold = %d for a ~4000-word state at 64ns/word vs 40ns/node; want within [%d, %d]", thr, lo, hi)
	}

	// A Sizer-less state uses the last observed copy size.
	thrFat := c2.threshold(fatState{st})
	if thrFat == adoptFixedMinLag || thrFat < adoptLagFloor || thrFat > adoptLagCeil {
		t.Fatalf("sizer-less threshold = %d, want a copyWords-based estimate", thrFat)
	}

	// Outlier clamps: a descheduled walk cannot blow up the estimate.
	var c3 adoptCosts
	c3.observeWalk(1, time.Second)
	if got := c3.nodeNsQ8.Load(); got != maxNodeNsQ8 {
		t.Fatalf("walk outlier stored %d, want clamp %d", got, maxNodeNsQ8)
	}
	c3.observeCopy(1, time.Second)
	if got := c3.wordNsQ8.Load(); got != maxWordNsQ8 {
		t.Fatalf("copy outlier stored %d, want clamp %d", got, maxWordNsQ8)
	}
}

func TestEWMAConvergesAndNeverStalls(t *testing.T) {
	var c adoptCosts
	for i := 0; i < 200; i++ {
		c.observeWalk(10, 10*1000*time.Nanosecond) // 1000 ns/node
	}
	got := c.nodeNsQ8.Load() >> 8
	if got < 900 || got > 1100 {
		t.Fatalf("EWMA converged to %d ns/node, want ~1000", got)
	}
	// Tiny deltas must still move the estimator (the ±1 nudge).
	before := c.nodeNsQ8.Load()
	c.observeWalk(10, 10*1001*time.Nanosecond)
	if c.nodeNsQ8.Load() == before {
		t.Fatal("EWMA stalled on a sub-alpha delta")
	}
}

func TestAdoptPolicyValidation(t *testing.T) {
	pool := pmem.New(1<<22, nil)
	if _, err := New(pool, objects.CounterSpec{}, Config{
		NProcs: 1, ReadFastPath: true, AdoptPolicy: AdoptPolicy{FixedMinLag: -1},
	}); err == nil {
		t.Fatal("negative FixedMinLag accepted")
	}
	if _, err := New(pool, objects.CounterSpec{}, Config{
		NProcs: 1, ReadFastPath: true, AdoptPolicy: AdoptPolicy{PublishLag: -2},
	}); err == nil {
		t.Fatal("negative PublishLag accepted")
	}
	// A fixed policy must not pay for the cost model.
	in, err := New(pool, objects.CounterSpec{}, Config{
		NProcs: 1, ReadFastPath: true, AdoptPolicy: AdoptPolicy{FixedMinLag: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	if in.costs != nil {
		t.Fatal("fixed-threshold instance allocated a cost model")
	}
	if got := in.Handle(0).adoptThreshold(); got != 7 {
		t.Fatalf("fixed threshold = %d, want 7", got)
	}
	// The adaptive default does.
	in2, err := New(pool, objects.CounterSpec{}, Config{NProcs: 1, ReadFastPath: true})
	if err != nil {
		t.Fatal(err)
	}
	if in2.costs == nil {
		t.Fatal("adaptive instance has no cost model")
	}
}
