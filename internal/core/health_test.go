package core

import (
	"errors"
	"testing"

	"repro/internal/objects"
	"repro/internal/plog"
	"repro/internal/pmem"
	"repro/internal/sched"
	"repro/internal/spec"
)

// smashRecord durably destroys record seq of pid's log by garbling a
// checksummed mid-record word (the stored seq word stays intact, so the
// slot probes as a bad same-seq record — media damage, not staleness),
// then drops the cache so the damage is what recovery sees.
func smashRecord(pool *pmem.Pool, in *Instance, pid int, seq uint64) {
	addr, _ := in.Log(pid).SlotRegion(seq)
	w := addr + pmem.Addr(2*pmem.WordSize)
	pool.Store(pmem.RootSystemPID, w, 0xBAD0BAD0BAD0BAD0)
	pool.Persist(pmem.RootSystemPID, w, pmem.WordSize)
	pool.Crash(pmem.DropAll)
}

// TestSalvageCleanCrashIsHealthy pins that salvaging recovery of an
// ordinary crash (no media faults) classifies Healthy and recovers
// exactly what strict recovery would.
func TestSalvageCleanCrashIsHealthy(t *testing.T) {
	pool := pmem.New(1<<20, nil)
	in, err := New(pool, objects.CounterSpec{}, Config{NProcs: 2, LogCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		for pid := 0; pid < 2; pid++ {
			if _, _, err := in.Handle(pid).Update(objects.CounterInc); err != nil {
				t.Fatal(err)
			}
		}
	}
	pool.Crash(pmem.DropAll)
	in2, rep, err := Recover(pool, objects.CounterSpec{}, Config{Salvage: true})
	if err != nil {
		t.Fatal(err)
	}
	if h := in2.Health(); h.Mode != ModeHealthy || h.Reason != nil {
		t.Fatalf("clean crash classified %v (%v)", h.Mode, h.Reason)
	}
	if rep.Salvage == nil || rep.Salvage.Mode != ModeHealthy || len(rep.Salvage.Evidence) != 0 {
		t.Fatalf("salvage report %+v, want healthy/no evidence", rep.Salvage)
	}
	if got, err := in2.Handle(0).TryRead(objects.CounterGet); err != nil || got != 10 {
		t.Fatalf("TryRead = %d, %v; want 10, nil", got, err)
	}
}

// TestQuarantineStrandedOps pins the core loss rule: with one process
// (no helping), a destroyed mid-log record leaves later persisted
// operations stranded beyond the gap — impossible crash-only, so the
// object is quarantined with ErrTornRecord, and every entry point
// refuses typed.
func TestQuarantineStrandedOps(t *testing.T) {
	pool := pmem.New(1<<20, nil)
	in, err := New(pool, objects.CounterSpec{}, Config{NProcs: 1, LogCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, _, err := in.Handle(0).Update(objects.CounterInc); err != nil {
			t.Fatal(err)
		}
	}
	pool.Crash(pmem.DropAll)
	smashRecord(pool, in, 0, 3)

	in2, rep, err := Recover(pool, objects.CounterSpec{}, Config{Salvage: true})
	if err != nil {
		t.Fatalf("salvaging recovery must not fail outright: %v", err)
	}
	h := in2.Health()
	if h.Mode != ModeQuarantined {
		t.Fatalf("mode %v, want quarantined", h.Mode)
	}
	if !errors.Is(h.Reason, ErrObjectQuarantined) || !errors.Is(h.Reason, ErrTornRecord) {
		t.Fatalf("reason %v lacks ErrObjectQuarantined/ErrTornRecord", h.Reason)
	}
	if rep.Salvage.Mode != ModeQuarantined || len(rep.Salvage.Evidence) == 0 {
		t.Fatalf("salvage report %+v", rep.Salvage)
	}
	if rep.LastIdx != 2 {
		t.Fatalf("salvaged prefix ends at %d, want 2", rep.LastIdx)
	}
	// Entry points refuse typed: Update and TryRead with the error,
	// Read by panicking with it.
	if _, _, err := in2.Handle(0).Update(objects.CounterInc); !errors.Is(err, ErrObjectQuarantined) {
		t.Fatalf("Update on quarantined object: %v", err)
	}
	if _, err := in2.Handle(0).TryRead(objects.CounterGet); !errors.Is(err, ErrObjectQuarantined) {
		t.Fatalf("TryRead on quarantined object: %v", err)
	}
	func() {
		defer func() {
			r := recover()
			if e, ok := r.(error); !ok || !errors.Is(e, ErrObjectQuarantined) {
				t.Fatalf("Read panic = %v, want ErrObjectQuarantined", r)
			}
		}()
		in2.Handle(0).Read(objects.CounterGet)
	}()
}

// TestQuarantineBadHeader pins the unreadable-log rule and the evidence
// priority: a destroyed log header quarantines with ErrBadSlotHeader
// even though the missing operations also leave torn-record evidence.
func TestQuarantineBadHeader(t *testing.T) {
	pool := pmem.New(1<<20, nil)
	in, err := New(pool, objects.CounterSpec{}, Config{NProcs: 2, LogCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for pid := 0; pid < 2; pid++ {
			if _, _, err := in.Handle(pid).Update(objects.CounterInc); err != nil {
				t.Fatal(err)
			}
		}
	}
	pool.Crash(pmem.DropAll)
	base := in.Log(1).Base()
	pool.InjectFaults(pmem.FaultPlan{Faults: []pmem.Fault{
		{Class: pmem.FaultStuckLine, Line: base.Line(), Seed: 11},
	}})

	in2, _, err := Recover(pool, objects.CounterSpec{}, Config{Salvage: true})
	if err != nil {
		t.Fatal(err)
	}
	h := in2.Health()
	if h.Mode != ModeQuarantined || !errors.Is(h.Reason, ErrBadSlotHeader) {
		t.Fatalf("mode %v reason %v, want quarantined ErrBadSlotHeader", h.Mode, h.Reason)
	}
	if h.LogsUnopened != 1 {
		t.Fatalf("LogsUnopened %d, want 1", h.LogsUnopened)
	}
	// Strict recovery of the same pool fails outright — the fail-closed
	// contract salvage mode explicitly relaxes.
	if _, _, err := Recover(pool, objects.CounterSpec{}, Config{}); err == nil {
		t.Fatal("strict recovery accepted an unreadable log")
	}
}

// TestQuarantineSnapshotCorrupt pins the truncation-coverage rule: a
// log whose headSeq says compaction truncated records must lead with
// the covering snapshot; destroying that snapshot is unrecoverable
// loss (ErrSnapshotCorrupt).
func TestQuarantineSnapshotCorrupt(t *testing.T) {
	pool := pmem.New(1<<20, nil)
	in, err := New(pool, objects.CounterSpec{}, Config{NProcs: 1, LogCapacity: 64, CompactEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, _, err := in.Handle(0).Update(objects.CounterInc); err != nil {
			t.Fatal(err)
		}
	}
	l := in.Log(0)
	if l.HeadSeq() == 0 {
		t.Fatal("compaction never truncated; test is vacuous")
	}
	pool.Crash(pmem.DropAll)
	smashRecord(pool, in, 0, l.HeadSeq()+1) // the covering snapshot

	in2, _, err := Recover(pool, objects.CounterSpec{}, Config{Salvage: true})
	if err != nil {
		t.Fatal(err)
	}
	if h := in2.Health(); h.Mode != ModeQuarantined || !errors.Is(h.Reason, ErrSnapshotCorrupt) {
		t.Fatalf("mode %v reason %v, want quarantined ErrSnapshotCorrupt", h.Mode, h.Reason)
	}
}

// TestDegradedHelpingBridge pins the Degraded classification: p1's own
// record of an operation is destroyed, but p0 helped-persisted the same
// operation (it was in p0's fuzzy window), so recovery reconstructs
// everything — damage with zero loss.
func TestDegradedHelpingBridge(t *testing.T) {
	ctl := sched.NewController()
	pool := pmem.New(1<<22, ctl)
	in, err := New(pool, objects.CounterSpec{}, Config{NProcs: 2, Gate: ctl})
	if err != nil {
		t.Fatal(err)
	}
	done1 := ctl.Spawn(1, func() {
		h := in.Handle(1)
		for i := 0; i < 2; i++ {
			if _, _, err := h.Update(objects.CounterInc); err != nil {
				panic(err)
			}
		}
	})
	done0 := ctl.Spawn(0, func() {
		if _, _, err := in.Handle(0).Update(objects.CounterInc); err != nil {
			panic(err)
		}
	})
	// p1 orders its first op and stalls before persisting; p0's update
	// then helps-persist it; p1 resumes and also persists it itself,
	// plus a second op. The op now lives in both logs.
	if _, ok := ctl.RunUntil(1, sched.AtPoint(PointOrdered)); !ok {
		t.Fatal("p1 finished early")
	}
	ctl.RunToCompletion(0)
	ctl.RunToCompletion(1)
	if v := <-done0; v != nil {
		t.Fatalf("p0: %v", v)
	}
	if v := <-done1; v != nil {
		t.Fatalf("p1: %v", v)
	}
	ctl.KillAll()
	pool.SetGate(nil)
	pool.Crash(pmem.DropAll)
	// Destroy p1's own record of its first op: its second record
	// becomes an orphan (non-benign damage), but p0's helped copy
	// bridges the gap.
	smashRecord(pool, in, 1, 1)

	in2, rep, err := Recover(pool, objects.CounterSpec{}, Config{Salvage: true})
	if err != nil {
		t.Fatal(err)
	}
	h := in2.Health()
	if h.Mode != ModeDegraded {
		t.Fatalf("mode %v (reason %v), want degraded", h.Mode, h.Reason)
	}
	if h.Orphans != 1 || h.BadSlots != 1 {
		t.Fatalf("orphans=%d badslots=%d, want 1/1", h.Orphans, h.BadSlots)
	}
	if len(rep.Ordered) != 3 {
		t.Fatalf("recovered %d ops, want all 3", len(rep.Ordered))
	}
	if got := in2.Handle(0).Read(objects.CounterGet); got != 3 {
		t.Fatalf("recovered counter %d, want 3", got)
	}
	// Degraded serves: updates and reads keep working.
	if _, _, err := in2.Handle(0).Update(objects.CounterInc); err != nil {
		t.Fatalf("degraded instance refused an update: %v", err)
	}
}

// TestRecreateAfterQuarantine pins the healthy -> quarantined ->
// Recreate -> healthy transition, with the salvaged prefix preserved
// across the recreation and the next crash.
func TestRecreateAfterQuarantine(t *testing.T) {
	pool := pmem.New(1<<20, nil)
	in, err := New(pool, objects.CounterSpec{}, Config{NProcs: 1, LogCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, _, err := in.Handle(0).Update(objects.CounterInc); err != nil {
			t.Fatal(err)
		}
	}
	pool.Crash(pmem.DropAll)
	smashRecord(pool, in, 0, 3) // salvaged prefix: ops 1-2

	in2, _, err := Recover(pool, objects.CounterSpec{}, Config{Salvage: true})
	if err != nil {
		t.Fatal(err)
	}
	if in2.Health().Mode != ModeQuarantined {
		t.Fatalf("mode %v, want quarantined", in2.Health().Mode)
	}
	if err := in2.Recreate(); err != nil {
		t.Fatalf("Recreate: %v", err)
	}
	if h := in2.Health(); h.Mode != ModeHealthy || h.Reason != nil {
		t.Fatalf("post-Recreate health %v (%v)", h.Mode, h.Reason)
	}
	if err := in2.Recreate(); err == nil {
		t.Fatal("Recreate on a healthy instance must refuse")
	}
	if got := in2.Handle(0).Read(objects.CounterGet); got != 2 {
		t.Fatalf("salvaged prefix lost across Recreate: counter %d, want 2", got)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := in2.Handle(0).Update(objects.CounterInc); err != nil {
			t.Fatalf("update after Recreate: %v", err)
		}
	}
	pool.Crash(pmem.DropAll)
	in3, rep, err := Recover(pool, objects.CounterSpec{}, Config{Salvage: true})
	if err != nil {
		t.Fatal(err)
	}
	if in3.Health().Mode != ModeHealthy {
		t.Fatalf("recovery after Recreate: %v", in3.Health().Mode)
	}
	if got := in3.Handle(0).Read(objects.CounterGet); got != 5 {
		t.Fatalf("counter %d after crash, want 5", got)
	}
	// Detectability: the salvaged ops are covered by the seed snapshot,
	// the new ones by their records; ids must not have been reused.
	for seq := uint64(1); seq <= 5; seq++ {
		if _, ok := rep.WasLinearized(spec.MakeID(0, seq)); !ok {
			t.Fatalf("op seq %d not detectable after Recreate+crash", seq)
		}
	}
}

// TestRingGrowthUnderPressure pins the valve's growth rung: without
// local views there is no snapshot to compact from, so sustained
// overflow pressure must be absorbed by growing the ring (adaptive
// sizing), with the full history surviving migration and a crash.
func TestRingGrowthUnderPressure(t *testing.T) {
	const rounds = 20
	ctl := sched.NewController()
	pool := pmem.New(1<<22, ctl)
	in, err := New(pool, objects.CounterSpec{}, Config{
		NProcs: 3, LogCapacity: 64, LogInlineOps: 1, Gate: ctl,
	})
	if err != nil {
		t.Fatal(err)
	}
	oldRing := in.Log(0).RingWords()
	done1 := ctl.Spawn(1, func() {
		h := in.Handle(1)
		for i := 0; i < rounds; i++ {
			if _, _, err := h.Update(objects.CounterInc); err != nil {
				panic(err)
			}
		}
	})
	done0 := ctl.Spawn(0, func() {
		h := in.Handle(0)
		for i := 0; i < rounds; i++ {
			if _, _, err := h.Update(objects.CounterInc); err != nil {
				panic(err)
			}
		}
	})
	for i := 0; i < rounds; i++ {
		// p1 stalls between order and persist, so p0's record always
		// carries p1's pending op — past the inline budget of 1, into
		// the ring, every round.
		if _, ok := ctl.RunUntil(1, sched.AtPoint(PointOrdered)); !ok {
			t.Fatalf("round %d: p1 finished early", i)
		}
		if _, ok := ctl.RunPast(0, sched.AtPoint(PointReturn)); !ok {
			t.Fatalf("round %d: p0 finished early", i)
		}
		if _, ok := ctl.RunPast(1, sched.AtPoint(PointReturn)); !ok {
			t.Fatalf("round %d: p1 could not finish", i)
		}
	}
	ctl.RunToCompletion(0)
	ctl.RunToCompletion(1)
	if v := <-done0; v != nil {
		t.Fatalf("p0 failed: %v", v)
	}
	if v := <-done1; v != nil {
		t.Fatalf("p1 failed: %v", v)
	}
	ctl.KillAll()

	ps := in.Pressure()
	if ps.RingGrows == 0 {
		t.Fatalf("ring never grew (valve fires %d, spills %d); test is vacuous", ps.ValveFires, ps.Spills)
	}
	if in.Log(0).RingWords() <= oldRing {
		t.Fatalf("ring %d words after growth, want > %d", in.Log(0).RingWords(), oldRing)
	}
	pool.SetGate(nil)
	pool.Crash(pmem.DropAll)
	in2, rep, err := Recover(pool, objects.CounterSpec{}, Config{Salvage: true})
	if err != nil {
		t.Fatal(err)
	}
	if in2.Health().Mode != ModeHealthy {
		t.Fatalf("health %v after growth+crash", in2.Health().Mode)
	}
	if got := in2.Handle(0).Read(objects.CounterGet); got != 2*rounds {
		t.Fatalf("recovered counter %d, want %d", got, 2*rounds)
	}
	for pid := 0; pid < 2; pid++ {
		for seq := uint64(1); seq <= rounds; seq++ {
			if _, ok := rep.WasLinearized(spec.MakeID(pid, seq)); !ok {
				t.Fatalf("p%d op %d vanished across ring growth", pid, seq)
			}
		}
	}
}

// TestLogPressureTyped pins the ladder's typed failure: when every rung
// fails (no local view to compact, pool too small to grow the ring),
// Update reports ErrLogPressure instead of a bare ErrOvfFull.
func TestLogPressureTyped(t *testing.T) {
	ctl := sched.NewController()
	// The pool fits the root table and the three initial logs exactly:
	// the growth rung's allocation must fail.
	region := plog.RegionBytesInline(64, 3, 1)
	pool := pmem.New(pmem.RootSlots*pmem.WordSize+3*region, ctl)
	in, err := New(pool, objects.CounterSpec{}, Config{
		NProcs: 3, LogCapacity: 64, LogInlineOps: 1, Gate: ctl,
	})
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 40
	var pressureErr error
	done1 := ctl.Spawn(1, func() {
		h := in.Handle(1)
		for i := 0; i < rounds; i++ {
			if _, _, err := h.Update(objects.CounterInc); err != nil {
				return
			}
		}
	})
	done0 := ctl.Spawn(0, func() {
		h := in.Handle(0)
		for i := 0; i < rounds; i++ {
			if _, _, err := h.Update(objects.CounterInc); err != nil {
				pressureErr = err
				return
			}
		}
	})
	// Each round p1 stalls a fresh op between order and persist, so
	// every p0 record spills its helped tail — until the ring is
	// exhausted with no relief available (the loop ends early once p0's
	// update errors out and its goroutine exits).
	for i := 0; i < rounds; i++ {
		if _, ok := ctl.RunUntil(1, sched.AtPoint(PointOrdered)); !ok {
			break
		}
		if _, ok := ctl.RunPast(0, sched.AtPoint(PointReturn)); !ok {
			break
		}
		if _, ok := ctl.RunPast(1, sched.AtPoint(PointReturn)); !ok {
			break
		}
	}
	ctl.RunToCompletion(0)
	ctl.RunToCompletion(1)
	ctl.KillAll()
	<-done0
	<-done1
	if !errors.Is(pressureErr, ErrLogPressure) {
		t.Fatalf("exhausted ladder returned %v, want ErrLogPressure", pressureErr)
	}
}

// TestScrubOffHotPath pins the scrubber contract: Scrub finds latent
// damage the cached read path cannot see, while leaving every fence
// counter — the paper's cost accounting — untouched.
func TestScrubOffHotPath(t *testing.T) {
	pool := pmem.New(1<<20, nil)
	in, err := New(pool, objects.CounterSpec{}, Config{NProcs: 2, LogCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		for pid := 0; pid < 2; pid++ {
			if _, _, err := in.Handle(pid).Update(objects.CounterInc); err != nil {
				t.Fatal(err)
			}
		}
	}
	before := [2]pmem.Stats{pool.StatsOf(0), pool.StatsOf(1)}
	if rep := in.Scrub(); rep.Faulty {
		t.Fatalf("clean instance scrubs faulty: %+v", rep)
	}
	// Latent fault: corrupt the durable image only; the cache keeps
	// masking it from the normal read path.
	addr, _ := in.Log(1).SlotRegion(2)
	pool.InjectFaults(pmem.FaultPlan{Faults: []pmem.Fault{
		{Class: pmem.FaultTornLine, Line: addr.Line(), Seed: 21},
	}})
	if got := in.Handle(1).Read(objects.CounterGet); got != 10 {
		t.Fatalf("cached read path saw the latent fault: %d", got)
	}
	rep := in.Scrub()
	if !rep.Faulty {
		t.Fatalf("scrub missed the latent fault: %+v", rep)
	}
	if st := in.ScrubStats(); st.Runs != 2 || st.FaultyRuns != 1 {
		t.Fatalf("scrub stats %+v, want 2 runs / 1 faulty", st)
	}
	for pid := 0; pid < 2; pid++ {
		after := pool.StatsOf(pid)
		if after.PersistentFences != before[pid].PersistentFences || after.Fences != before[pid].Fences {
			t.Fatalf("scrub moved p%d fence counters: %+v -> %+v", pid, before[pid], after)
		}
	}
}

// TestRootBaseIsolation pins multi-instance pools: two objects at
// disjoint RootBase offsets recover independently, and quarantining
// damage to one leaves the other fully healthy.
func TestRootBaseIsolation(t *testing.T) {
	pool := pmem.New(1<<21, nil)
	mk := func(rb int) *Instance {
		in, err := New(pool, objects.CounterSpec{}, Config{NProcs: 1, LogCapacity: 64, RootBase: rb})
		if err != nil {
			t.Fatal(err)
		}
		return in
	}
	a, b := mk(0), mk(32)
	for i := 0; i < 6; i++ {
		if _, _, err := a.Handle(0).Update(objects.CounterInc); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if _, _, err := b.Handle(0).Update(objects.CounterInc); err != nil {
			t.Fatal(err)
		}
	}
	pool.Crash(pmem.DropAll)
	smashRecord(pool, b, 0, 2) // quarantines b; a untouched

	a2, _, err := Recover(pool, objects.CounterSpec{}, Config{Salvage: true})
	if err != nil {
		t.Fatal(err)
	}
	b2, _, err := Recover(pool, objects.CounterSpec{}, Config{Salvage: true, RootBase: 32})
	if err != nil {
		t.Fatal(err)
	}
	if a2.Health().Mode != ModeHealthy {
		t.Fatalf("instance A %v; damage leaked across RootBase", a2.Health().Mode)
	}
	if got := a2.Handle(0).Read(objects.CounterGet); got != 6 {
		t.Fatalf("instance A counter %d, want 6", got)
	}
	if b2.Health().Mode != ModeQuarantined {
		t.Fatalf("instance B %v, want quarantined", b2.Health().Mode)
	}
	// Overlapping root ranges are refused up front.
	if _, err := New(pool, objects.CounterSpec{}, Config{NProcs: MaxProcs, RootBase: pmem.RootSlots - 8}); err == nil {
		t.Fatal("overlapping RootBase accepted")
	}
}
