package core

// Log-pressure escalation (PR 6). The overflow ring is deliberately
// sized at a fraction of the worst case, so a sustained run of deep
// fuzzy windows can exhaust it. The old valve compacted once and
// retried once; this ladder escalates through increasingly expensive
// relief until the append lands or every rung failed:
//
//  1. compact    — snapshot the local view where it stands and truncate
//                  this log behind it, freeing the truncated records'
//                  overflow chunks (the original valve).
//  2. catch-up   — advance the local view to the latest available node
//                  first, then compact: the deeper snapshot covers more
//                  records and frees more chunks. Sound for the same
//                  reason compactForSpace is: every operation at or
//                  below the new view index is available, hence
//                  persisted and fenced by its own process (this
//                  handle's in-flight op is not available yet, so it is
//                  never folded in).
//  3. grow       — replace the log with one whose ring is twice the
//                  size (adaptive sizing: the observed spill rate pays
//                  for the memory, the formula floor is never shrunk
//                  below).
//
// Sustained pressure skips straight to growth: when the spill counter
// shows the ring filled again shortly after the last relief, compaction
// is evidently a palliative and the ladder reorders itself.

import (
	"errors"
	"fmt"

	"repro/internal/plog"
	"repro/internal/spec"
	"repro/internal/trace"
)

// growSpillThreshold is the number of refused appends since the last
// ring growth beyond which the valve stops re-trying compaction first
// and escalates straight to growth.
const growSpillThreshold = 8

// persistWithValve re-drives the persist-stage append through the
// escalation ladder. aerr is the append's original error; any error
// other than ErrOvfFull passes through untouched. On success the
// record is durably appended (the fence count is the same as a
// first-try success plus the relief's own snapshot/truncate fences,
// which only spend on the exhaustion path).
func (h *Handle) persistWithValve(fuzzy []spec.Op, node *trace.Node, aerr error) error {
	if !errors.Is(aerr, plog.ErrOvfFull) {
		return aerr
	}
	in := h.in
	in.valveFires.Add(1)
	idx := node.Idx()
	type rung struct {
		name string
		run  func() error
	}
	ladder := []rung{
		{"compact", func() error { return h.compactForSpace(node) }},
		{"catch-up+compact", func() error { h.catchUpView(); return h.compactForSpace(node) }},
		{"grow-ring", h.growRing},
	}
	if in.logs[h.pid].Spills()-h.spillsAtGrow > growSpillThreshold {
		// Sustained pressure: compaction has been relieving the ring
		// only briefly. Go straight to growth, keeping one compaction
		// rung as the pre-growth cleanup.
		ladder = []rung{
			{"compact", func() error { return h.compactForSpace(node) }},
			{"grow-ring", h.growRing},
		}
	}
	var failures []error
	for _, r := range ladder {
		if rerr := r.run(); rerr != nil {
			failures = append(failures, fmt.Errorf("%s: %w", r.name, rerr))
			continue
		}
		// The log pointer may have changed under us (growRing swaps it).
		if _, aerr = in.logs[h.pid].Append(fuzzy, idx); aerr == nil {
			return nil
		}
		if !errors.Is(aerr, plog.ErrOvfFull) {
			return aerr
		}
		in.valveFires.Add(1)
	}
	return fmt.Errorf("%w: %v (ladder: %v)", ErrLogPressure, aerr, errors.Join(failures...))
}

// catchUpView advances the handle's local view to the latest available
// node, deepening the snapshot the next compactForSpace will take.
func (h *Handle) catchUpView() {
	if h.view == nil {
		return
	}
	n := trace.LatestAvailableFrom(h.in.gate, h.pid, h.in.tr.Tail(h.pid))
	if n != nil && n.Idx() > h.viewIdx {
		h.advanceView(n, false)
	}
}

// growRing replaces this process's log with one whose overflow ring is
// twice the size, seeded so that recovery from the new log alone sees
// everything the old one covered: first a snapshot of the local view
// (when one exists), then every live record beyond it, re-appended in
// order. The durable root flip is the atomic cutover — a crash on
// either side of it recovers a complete log. The old region leaks (the
// pool is a bump allocator); that is the accepted cost of the rare
// exhaustion path.
func (h *Handle) growRing() error {
	in := h.in
	old := in.logs[h.pid]
	oldRing := old.RingWords()
	if oldRing == 0 {
		return errors.New("core: single-tier log has no ring to grow")
	}
	nl, err := plog.CreateInlineRing(in.pool, h.pid, old.Capacity(), old.MaxOps(), old.InlineOps(), 2*oldRing)
	if err != nil {
		return fmt.Errorf("core: allocating grown log: %w", err)
	}
	snapIdx := uint64(0)
	if h.view != nil && h.viewIdx > 0 {
		if _, err := nl.AppendSnapshot(snapEncode(h.viewSeqs, h.view.Snapshot()), h.viewIdx); err != nil {
			return fmt.Errorf("core: seeding grown log: %w", err)
		}
		snapIdx = h.viewIdx
	}
	for _, rec := range old.Records() {
		if rec.ExecIdx <= snapIdx {
			continue // covered by (or identical to) the seed snapshot
		}
		switch rec.Kind {
		case plog.KindOps:
			_, err = nl.Append(rec.Ops, rec.ExecIdx)
		case plog.KindSnapshot:
			_, err = nl.AppendSnapshot(rec.State, rec.ExecIdx)
		case plog.KindDelta:
			// A chain record's index never exceeds its owner's view
			// index (cuts happen at the view), so the seed snapshot
			// above always covers it. The grown log starts chainless;
			// the next cut lays a fresh base.
			err = fmt.Errorf("core: delta chain record at index %d above grow seed %d", rec.ExecIdx, snapIdx)
		}
		if err != nil {
			return fmt.Errorf("core: migrating record to grown log: %w", err)
		}
	}
	in.pool.SetRoot(in.cfg.RootBase+rootLogBase+h.pid, uint64(nl.Base()))
	in.logs[h.pid] = nl
	h.spillsAtGrow = 0
	in.ringGrows.Add(1)
	return nil
}
