package core

import (
	"testing"

	"repro/internal/objects"
	"repro/internal/pmem"
	"repro/internal/sched"
	"repro/internal/trace"
)

// TestAdoptionAcrossCompactionCut audits the published slot against
// compaction deterministically (the style of overflow_pressure_test):
// the slot's p.idx is an execution index, and compaction recycles the
// nodes behind a cut — so the test constructs the exact interleaving
// where a reader adopts a publication that a concurrent compaction has
// ALREADY cut past, and proves it safe:
//
//  1. p0 performs 40 updates; p1's read catches up and publishes the
//     slot at index 40 (the bootstrap stamp).
//  2. p0 performs update 41 (so the next reader cannot take the
//     epoch-validated serve and must walk).
//  3. p2's read walks, decides to adopt, and is suspended at
//     PointSlotCopy — HOLDING the slot, copy not yet done.
//  4. p0 runs updates 42..45; its compaction cadence fires at 45,
//     cutting the trace to a base at 45 and retiring the nodes behind
//     it. The cut's republish hits the held slot and falls back, so
//     the slot still carries the PRE-CUT index 40.
//  5. p2 resumes: it completes the adoption of the stale publication
//     and walks the remainder from its validated node (41).
//
// Safety rests on two facts the test pins: the slot holds a VALUE copy
// of a state (never node pointers), so a cut can never dangle it; and
// p2's published walk floor (its view index at the read's start) keeps
// reclamation away from every node its walk — and the adoption
// remainder — can still dereference. p2 must return exactly 41 (the
// counter at its validated node) and its next read must land on the
// post-cut base (45), proving the stale adoption neither tears nor
// sticks.
func TestAdoptionAcrossCompactionCut(t *testing.T) {
	const cut = 45 // p0's compaction cadence; also its total updates
	ctl := sched.NewController()
	pool := pmem.New(1<<24, ctl)
	in, err := New(pool, objects.CounterSpec{}, Config{
		NProcs: 3, ReadFastPath: true, CompactEvery: cut,
		LogCapacity: 1 << 10, Gate: ctl,
		// A fixed threshold keeps the adoption decision — and with it
		// the gate-point schedule — independent of timing samples; a
		// single stripe makes the cut's republish and p2's adoption
		// contend on the SAME slot, which is the interleaving under
		// audit.
		AdoptPolicy: AdoptPolicy{FixedMinLag: 16},
		SlotStripes: 1,
	})
	if err != nil {
		t.Fatal(err)
	}

	done0 := ctl.Spawn(0, func() {
		h := in.Handle(0)
		for i := 0; i < cut; i++ {
			if _, _, err := h.Update(objects.CounterInc); err != nil {
				panic(err)
			}
		}
	})
	var got1, got2 uint64
	done1 := ctl.Spawn(1, func() { got1 = in.Handle(1).Read(objects.CounterGet) })
	done2 := ctl.Spawn(2, func() { got2 = in.Handle(2).Read(objects.CounterGet) })

	// 1: forty updates, then p1 catches up and publishes at 40.
	for i := 0; i < 40; i++ {
		if _, ok := ctl.RunPast(0, sched.AtPoint(PointReturn)); !ok {
			t.Fatalf("p0 ended early at update %d", i+1)
		}
	}
	ctl.RunToCompletion(1)
	if out := <-done1; out != nil {
		t.Fatalf("p1 read failed: %v", out)
	}
	if got1 != 40 {
		t.Fatalf("p1 read %d, want 40", got1)
	}
	if in.pubs[0].idx != 40 {
		t.Fatalf("slot published at %d, want 40", in.pubs[0].idx)
	}

	// 2: one more update invalidates the slot's epoch stamp.
	if _, ok := ctl.RunPast(0, sched.AtPoint(PointReturn)); !ok {
		t.Fatal("p0 ended before update 41")
	}

	// 3: p2 walks, elects adoption, and is parked holding the slot.
	if _, ok := ctl.RunUntil(2, sched.AtPoint(PointSlotCopy)); !ok {
		t.Fatal("p2 never reached the adoption copy (slot not elected?)")
	}

	// 4: p0 finishes; its 45th update compacts, cutting the trace. The
	// republish at the cut must skip (slot held) — the slot keeps the
	// pre-cut index.
	ctl.RunToCompletion(0)
	if out := <-done0; out != nil {
		t.Fatalf("p0 failed: %v", out)
	}
	base := in.tr.Tail(0)
	for ; base != nil && base.Kind == trace.KindUpdate; base = base.Next() {
	}
	if base == nil || base.Idx() != cut {
		t.Fatalf("no compaction base at %d reachable from the tail", cut)
	}
	if in.pubs[0].idx != 40 {
		t.Fatalf("slot moved to %d during the cut despite being held; want stale 40", in.pubs[0].idx)
	}

	// 5: p2 completes the stale adoption and the remainder walk.
	ctl.RunToCompletion(2)
	if out := <-done2; out != nil {
		t.Fatalf("p2 failed adopting across the cut: %v", out)
	}
	if got2 != 41 {
		t.Fatalf("p2 read %d, want 41 (its validated node)", got2)
	}
	h2 := in.Handle(2)
	if h2.adoptions.Load() == 0 {
		t.Fatal("p2 never adopted (scenario did not exercise the stale slot)")
	}
	if h2.viewIdx != 41 {
		t.Fatalf("p2 view at %d after adoption + remainder, want 41", h2.viewIdx)
	}
	ctl.KillAll()

	// The stale adoption must not stick: a fresh read from p2 crosses
	// the cut, restores from the base at 45 and sees every update.
	if got := h2.Read(objects.CounterGet); got != cut {
		t.Fatalf("p2 post-cut read %d, want %d", got, cut)
	}
	if h2.viewIdx != cut {
		t.Fatalf("p2 view at %d, want %d (base restore)", h2.viewIdx, cut)
	}
}
