package core

import (
	"repro/internal/plog"
	"repro/internal/pmem"
	"repro/internal/spec"
)

// recoverListing5 is a literal transcription of the paper's Listing 5
// recovery loop, kept alongside the production recovery (which indexes
// the logs once instead of rescanning them per iteration) as an
// executable specification:
//
//	executionTrace.insert(queueNode(INITIALIZE)).setAvailable();
//	for(i=1; true; i++){
//	    Find log entry E with lowest execution index j : j >= i.
//	    if(E does not exist) break;
//	    operation op = E.ops[j-i];
//	    executionTrace.insert(queueNode(op)).setAvailable();
//	}
//
// TestRecoveryMatchesListing5 cross-checks the two on randomized crash
// states. Snapshot records are handled by starting i after the newest
// snapshot index, mirroring the production path.
func recoverListing5(pool *pmem.Pool, nprocs int) (ordered []spec.Op, baseIdx uint64, err error) {
	// Load all live records once per iteration, as the listing's
	// "find log entry" does conceptually (it scans the logs).
	logs := make([][]plog.Record, nprocs)
	for pid := 0; pid < nprocs; pid++ {
		l, oerr := plog.Open(pool, pid, pmem.Addr(pool.Root(rootLogBase+pid)))
		if oerr != nil {
			return nil, 0, oerr
		}
		logs[pid] = l.Records()
		for _, rec := range logs[pid] {
			if rec.Kind == plog.KindSnapshot && rec.ExecIdx > baseIdx {
				baseIdx = rec.ExecIdx
			}
		}
	}
	for i := baseIdx + 1; ; i++ {
		// Find the log entry E with the LOWEST execution index j >= i.
		var best *plog.Record
		for pid := range logs {
			for k := range logs[pid] {
				rec := &logs[pid][k]
				if rec.Kind != plog.KindOps || rec.ExecIdx < i {
					continue
				}
				if best == nil || rec.ExecIdx < best.ExecIdx {
					best = rec
				}
			}
		}
		if best == nil {
			break // E does not exist
		}
		j := best.ExecIdx
		k := int(j - i)
		if k >= len(best.Ops) {
			// The lowest entry with index >= i does not reach back to
			// i: index i was never persisted, so the recoverable
			// prefix ends here (Proposition 5.10 shows this can only
			// happen at the very end of the history).
			break
		}
		ordered = append(ordered, best.Ops[k])
	}
	return ordered, baseIdx, nil
}
