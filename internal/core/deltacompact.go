package core

// Delta-chain compaction (DESIGN.md §3.8). Full-state snapshot cuts
// write O(state) words every CompactEvery updates, so for large objects
// compaction dominates the write volume of the very workloads it is
// supposed to relieve. With Config.DeltaSnapshots a cut appends a
// plog.KindDelta record instead: a chain BASE (a full snapshot) once,
// then per-cut DELTAS covering only the operations since the previous
// cut, each O(churn) instead of O(state). A delta cut still truncates
// the log fully — the chain stays reachable through the records' body
// back-references (internal/plog/chain.go) — so the log bound is the
// same as under full snapshots; the trace, however, is only cut on base
// cuts, so the volatile node window grows to at most MaxDeltaChain
// cadences before a collapse reclaims it.
//
// Delta payload layout (the caller words inside plog's chain frame):
//
//	base:  snapEncode(seqs, state)            — same as a KindSnapshot
//	delta: [format] ++ snapEncode(seqs, body)
//
// where format selects how recovery folds body into the restored base:
// deltaFmtOps replays verbatim operations (the universal fallback,
// spec.OpWords per op), deltaFmtDiff hands the words to the state's
// spec.DeltaApplier (the object-specific compact encoding, emitted by
// its spec.DeltaEmitter). The per-cut seqs vector keeps detectability
// exact at every link: recovery folds the vectors of every link it
// applies, so CoveredSeq reflects the chain head, not just its base.
//
// A cut collapses the chain back to a fresh base when it has grown to
// MaxDeltaChain links, when the accumulated delta volume rivals the
// state size (recovery fold cost has caught up with a full snapshot),
// when a single delta would be no smaller than the state, or when the
// trace between the chain head and the cut is no longer reachable
// (another process cut the trace with its own base — the foreign-base
// cascade).

import (
	"errors"
	"fmt"

	"repro/internal/plog"
	"repro/internal/spec"
	"repro/internal/trace"
)

// Delta payload formats (the first caller word of a non-base link).
const (
	deltaFmtOps  = 1 // body = verbatim ops, spec.OpWords each (universal)
	deltaFmtDiff = 2 // body = spec.DeltaEmitter words (object-specific)
)

// errDeltaOversize is the internal signal that an emitted delta would
// be at least as large as a full snapshot, so the caller should collapse
// the chain instead of appending it.
var errDeltaOversize = errors.New("core: delta payload not smaller than a full snapshot")

// errForeignBase is the internal signal that the trace between the
// chain head and the cut point has been cut by another process's base
// node, so the delta window is not collectible.
var errForeignBase = errors.New("core: trace cut by a foreign base below the cut point")

// cutEvery returns the handle's compaction cadence in updates: the
// configured CompactEvery when set; otherwise, under DeltaSnapshots, a
// size-aware default — cut roughly when the accumulated churn could
// rival the state itself (SizeHint words at OpWords per logged update),
// clamped to [64, min(1024, LogCapacity/4)] so tiny states still cut
// often enough to bound the log and huge states do not defer cuts past
// the slot ring. 0 disables cadence compaction.
func (h *Handle) cutEvery() int {
	if ce := h.in.cfg.CompactEvery; ce > 0 {
		return ce
	}
	if !h.in.cfg.DeltaSnapshots || h.view == nil {
		return 0
	}
	ce := spec.SizeHint(h.view) / spec.OpWords
	hi := h.in.cfg.LogCapacity / 4
	if hi > 1024 {
		hi = 1024
	}
	if hi < 64 {
		hi = 64
	}
	if ce < 64 {
		ce = 64
	}
	if ce > hi {
		ce = hi
	}
	return ce
}

// shouldCollapse reports whether the next cut must be a (fresh or
// collapsing) base rather than a delta.
func (h *Handle) shouldCollapse(log *plog.Log) bool {
	n := log.ChainLen()
	if n == 0 {
		return true // no chain to extend
	}
	if n >= h.in.cfg.MaxDeltaChain {
		return true // recovery fold depth capped
	}
	if hint := spec.SizeHint(h.view); hint > 0 && log.ChainDeltaWords() >= hint {
		return true // accumulated deltas rival the state: fold no longer pays
	}
	return false
}

// fullEquivWords estimates what a full snapshot cut would write right
// now: the snapEncode envelope plus the state's size hint. 0 when the
// state has no Sizer (callers then fall back to actual payload sizes).
func (h *Handle) fullEquivWords() int {
	if hint := spec.SizeHint(h.view); hint > 0 {
		return 1 + len(h.viewSeqs) + hint
	}
	return 0
}

// tryDeltaCut attempts the delta leg of a cadence cut at node (the
// update that triggered it; the view is exactly at node.Idx()). done
// reports that the cut happened (or failed terminally); done false
// means the caller should collapse to a base instead. foreign reports
// that the collapse was forced by another handle's trace sentinel
// inside the window — the caller must then skip its own trace cut, or
// the handles ping-pong induced bases forever and no delta ever lands.
func (h *Handle) tryDeltaCut(node *trace.Node) (done, foreign bool, err error) {
	log := h.in.logs[h.pid]
	if h.shouldCollapse(log) {
		return false, false, nil
	}
	nodes, base := trace.CollectBackInto(h.nodeBuf, node, log.ChainHead())
	h.nodeBuf = nodes
	if base != nil {
		// Foreign-base cascade: the window since the chain head is no
		// longer walkable. Collapse.
		return false, true, nil
	}
	ops := h.deltaOps[:0]
	for _, n := range nodes {
		ops = append(ops, n.Op)
	}
	h.deltaOps = ops
	err = h.deltaCutAt(log, node.Idx(), ops)
	if errors.Is(err, errDeltaOversize) {
		return false, false, nil
	}
	return true, false, err
}

// deltaCutAt appends one delta covering ops — the full window
// (log.ChainHead(), idx], with the view exactly at idx — and truncates
// the log behind it. Object-specific diff when the state emits one,
// verbatim op replay otherwise. Two persistent fences (append +
// truncate), the same as a snapshot cut.
func (h *Handle) deltaCutAt(log *plog.Log, idx uint64, ops []spec.Op) error {
	payload := append(h.deltaBuf[:0], deltaFmtDiff, uint64(len(h.viewSeqs)))
	payload = append(payload, h.viewSeqs...)
	hdr := len(payload)
	emitted := false
	if em, ok := h.view.(spec.DeltaEmitter); ok {
		if _, ok := h.view.(spec.DeltaApplier); ok {
			payload, emitted = em.EmitDelta(payload, ops)
		}
	}
	if !emitted {
		payload = payload[:hdr]
		payload[0] = deltaFmtOps
		for _, op := range ops {
			payload = op.Encode(payload)
		}
	}
	h.deltaBuf = payload
	if fe := h.fullEquivWords(); fe > 0 && len(payload) >= fe {
		return errDeltaOversize
	}
	seq, err := log.AppendDelta(payload, idx)
	if err != nil {
		return err
	}
	if seq > 1 {
		if err := log.Truncate(seq - 1); err != nil {
			return err
		}
	}
	in := h.in
	in.cmpDeltas.Add(1)
	in.cmpSnapWords.Add(uint64(len(payload)))
	if fe := h.fullEquivWords(); fe > 0 {
		in.cmpFullWords.Add(uint64(fe))
	} else {
		in.cmpFullWords.Add(uint64(len(payload)))
	}
	return nil
}

// chainBaseAndTruncate is snapshotAndTruncate's delta-chain sibling: it
// starts (or collapses to) a fresh chain base at idx and truncates the
// log behind it, returning the snapshot body and sequence vector for
// callers that also cut the trace.
func (h *Handle) chainBaseAndTruncate(idx uint64) (snap, seqs []uint64, err error) {
	snap = h.view.Snapshot()
	seqs = append([]uint64(nil), h.viewSeqs...)
	log := h.in.logs[h.pid]
	if log.ChainLen() > 0 {
		h.in.cmpCollapses.Add(1)
	}
	payload := snapEncode(seqs, snap)
	seq, err := log.AppendChainBase(payload, idx)
	if err != nil {
		return nil, nil, err
	}
	if seq > 1 {
		if err := log.Truncate(seq - 1); err != nil {
			return nil, nil, err
		}
	}
	in := h.in
	in.cmpBases.Add(1)
	in.cmpSnapWords.Add(uint64(len(payload)))
	in.cmpFullWords.Add(uint64(len(payload)))
	return snap, seqs, nil
}

// valveDeltaCut is the delta leg of the overflow pressure valve: cut a
// delta at the CURRENT view index mid-persist. node is the in-flight
// (ordered, not yet available) operation; the window (ChainHead,
// viewIdx] is collected through it and filtered down to the view — the
// suffix above the view belongs to operations the view has not applied.
func (h *Handle) valveDeltaCut(log *plog.Log, node *trace.Node) error {
	nodes, base := trace.CollectBackInto(h.nodeBuf, node, log.ChainHead())
	h.nodeBuf = nodes
	if base != nil {
		return errForeignBase
	}
	ops := h.deltaOps[:0]
	for _, n := range nodes {
		if n.Idx() <= h.viewIdx {
			ops = append(ops, n.Op)
		}
	}
	h.deltaOps = ops
	if uint64(len(ops)) != h.viewIdx-log.ChainHead() {
		return fmt.Errorf("core: delta window (%d,%d] collected %d ops",
			log.ChainHead(), h.viewIdx, len(ops))
	}
	return h.deltaCutAt(log, h.viewIdx, ops)
}

// baseCand is one compaction-record candidate recovery may restart
// from: a plain full snapshot or the head of a delta chain, with the
// log that owns it (chains resolve through their log's pool).
type baseCand struct {
	pid int
	log *plog.Log
	rec plog.Record
}

// foldBaseCandidate turns a candidate into (seqs, state): a snapshot
// decodes directly; a delta chain restores its base into a fresh state
// and folds every delta in order, merging the per-link sequence
// vectors. Every word is untrusted input — any malformed link fails the
// fold rather than restoring a half-applied state.
func foldBaseCandidate(sp spec.Spec, l *plog.Log, rec plog.Record) (seqs, state []uint64, err error) {
	if rec.Kind == plog.KindSnapshot {
		return snapDecode(rec.State)
	}
	elems, err := l.ResolveChain(rec)
	if err != nil {
		return nil, nil, err
	}
	if len(elems) == 0 || !elems[0].Base {
		return nil, nil, errors.New("core: resolved chain is not base-anchored")
	}
	baseSeqs, baseState, err := snapDecode(elems[0].Payload)
	if err != nil {
		return nil, nil, err
	}
	st := sp.New()
	if err := st.Restore(baseState); err != nil {
		return nil, nil, fmt.Errorf("core: restoring chain base: %w", err)
	}
	seqs = append([]uint64(nil), baseSeqs...)
	for _, e := range elems[1:] {
		if len(e.Payload) < 2 {
			return nil, nil, fmt.Errorf("core: delta payload of %d words", len(e.Payload))
		}
		dseqs, body, derr := snapDecode(e.Payload[1:])
		if derr != nil {
			return nil, nil, derr
		}
		mergeSeqs(seqs, dseqs)
		switch e.Payload[0] {
		case deltaFmtOps:
			if len(body)%spec.OpWords != 0 {
				return nil, nil, fmt.Errorf("core: op-replay delta of %d words", len(body))
			}
			for i := 0; i < len(body); i += spec.OpWords {
				st.Apply(spec.DecodeOp(body[i:]))
			}
		case deltaFmtDiff:
			ap, ok := st.(spec.DeltaApplier)
			if !ok {
				return nil, nil, errors.New("core: diff delta for a spec without DeltaApplier")
			}
			if aerr := ap.ApplyDelta(body); aerr != nil {
				return nil, nil, aerr
			}
		default:
			return nil, nil, fmt.Errorf("core: unknown delta format %d", e.Payload[0])
		}
	}
	return seqs, st.Snapshot(), nil
}

// CompactionStats counts compaction cuts and their write volume.
// FullEquivWords estimates what full-snapshot compaction would have
// written for the same cuts (via spec.Sizer; actual payload size when
// the state has no Sizer), so SnapshotWords/FullEquivWords is the
// write-volume ratio delta chains buy.
type CompactionStats struct {
	// Bases counts chain-base cuts (fresh bases and collapses alike);
	// Collapses counts the subset that superseded a live chain.
	Bases, Collapses uint64
	// Deltas counts delta cuts; ValveDeltas the subset taken by the
	// overflow pressure valve rather than the update cadence.
	Deltas, ValveDeltas uint64
	// SnapshotWords is the payload words actually appended by all cuts;
	// FullEquivWords the full-snapshot-equivalent estimate.
	SnapshotWords, FullEquivWords uint64
}

// CompactionStats returns the instance's cumulative delta-compaction
// counters (all zero unless Config.DeltaSnapshots). Safe to call
// mid-run.
func (in *Instance) CompactionStats() CompactionStats {
	return CompactionStats{
		Bases:          in.cmpBases.Load(),
		Collapses:      in.cmpCollapses.Load(),
		Deltas:         in.cmpDeltas.Load(),
		ValveDeltas:    in.cmpValveDeltas.Load(),
		SnapshotWords:  in.cmpSnapWords.Load(),
		FullEquivWords: in.cmpFullWords.Load(),
	}
}
