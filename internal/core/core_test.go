package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/objects"
	"repro/internal/pmem"
	"repro/internal/sched"
	"repro/internal/spec"
)

const testPoolSize = 1 << 25

func newCounter(t testing.TB, cfg Config) (*pmem.Pool, *Instance) {
	t.Helper()
	var gate sched.Gate
	if cfg.Gate != nil {
		gate = cfg.Gate
	}
	pool := pmem.New(testPoolSize, gate)
	in, err := New(pool, objects.CounterSpec{}, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	pool.ResetStats()
	return pool, in
}

func mustUpdate(t testing.TB, h *Handle, code uint64, args ...uint64) (uint64, uint64) {
	t.Helper()
	ret, id, err := h.Update(code, args...)
	if err != nil {
		t.Fatalf("Update(%d, %v): %v", code, args, err)
	}
	return ret, id
}

func TestSequentialCounter(t *testing.T) {
	_, in := newCounter(t, Config{NProcs: 1})
	h := in.Handle(0)
	for i := 1; i <= 100; i++ {
		got, _ := mustUpdate(t, h, objects.CounterInc)
		if got != uint64(i) {
			t.Fatalf("inc %d: got %d", i, got)
		}
		if v := h.Read(objects.CounterGet); v != uint64(i) {
			t.Fatalf("get after inc %d: got %d", i, v)
		}
	}
}

func TestUpdateReturnValueIsAtOwnIndex(t *testing.T) {
	// Two processes incrementing: each update's return value must be
	// the counter value at the update's own execution index, so across
	// both processes the multiset of returns is exactly {1..2n}.
	_, in := newCounter(t, Config{NProcs: 2})
	const n = 500
	seen := make([]bool, 2*n+1)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for pid := 0; pid < 2; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			h := in.Handle(pid)
			for i := 0; i < n; i++ {
				ret, _ := mustUpdate(t, h, objects.CounterInc)
				mu.Lock()
				if ret == 0 || ret > 2*n || seen[ret] {
					mu.Unlock()
					t.Errorf("p%d: duplicate or out-of-range return %d", pid, ret)
					return
				}
				seen[ret] = true
				mu.Unlock()
			}
		}(pid)
	}
	wg.Wait()
}

func TestE1FencesPerUpdateAtMostOne(t *testing.T) {
	for _, nprocs := range []int{1, 2, 4, 8} {
		for _, wf := range []bool{false, true} {
			t.Run(fmt.Sprintf("n=%d/waitfree=%v", nprocs, wf), func(t *testing.T) {
				pool, in := newCounter(t, Config{NProcs: nprocs, WaitFree: wf})
				const perProc = 200
				var wg sync.WaitGroup
				for pid := 0; pid < nprocs; pid++ {
					wg.Add(1)
					go func(pid int) {
						defer wg.Done()
						h := in.Handle(pid)
						for i := 0; i < perProc; i++ {
							mustUpdate(t, h, objects.CounterInc)
						}
					}(pid)
				}
				wg.Wait()
				for pid := 0; pid < nprocs; pid++ {
					st := pool.StatsOf(pid)
					if st.PersistentFences != perProc {
						t.Errorf("p%d: %d persistent fences for %d updates (want exactly %d)",
							pid, st.PersistentFences, perProc, perProc)
					}
				}
			})
		}
	}
}

func TestE1ReadsNeverFence(t *testing.T) {
	pool, in := newCounter(t, Config{NProcs: 2})
	h0, h1 := in.Handle(0), in.Handle(1)
	for i := 0; i < 100; i++ {
		mustUpdate(t, h0, objects.CounterInc)
	}
	before := pool.StatsOf(1)
	for i := 0; i < 1000; i++ {
		h1.Read(objects.CounterGet)
	}
	after := pool.StatsOf(1)
	if after.PersistentFences != before.PersistentFences || after.Fences != before.Fences {
		t.Fatalf("reads fenced: before=%v after=%v", before, after)
	}
	if after.Stores != before.Stores || after.Flushes != before.Flushes {
		t.Fatalf("reads wrote to NVM: before=%v after=%v", before, after)
	}
}

func TestCrashRecoveryCleanHistory(t *testing.T) {
	pool, in := newCounter(t, Config{NProcs: 2})
	h0, h1 := in.Handle(0), in.Handle(1)
	var ids []uint64
	for i := 0; i < 10; i++ {
		_, id0 := mustUpdate(t, h0, objects.CounterInc)
		_, id1 := mustUpdate(t, h1, objects.CounterInc)
		ids = append(ids, id0, id1)
	}
	pool.Crash(pmem.DropAll)
	in2, rep, err := Recover(pool, objects.CounterSpec{}, Config{})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rep.LastIdx != 20 {
		t.Fatalf("recovered %d ops, want 20", rep.LastIdx)
	}
	for _, id := range ids {
		if _, ok := rep.WasLinearized(id); !ok {
			t.Errorf("completed op %#x not detected as linearized", id)
		}
	}
	if v := in2.Handle(0).Read(objects.CounterGet); v != 20 {
		t.Fatalf("post-recovery value %d, want 20", v)
	}
	// The recovered instance keeps working and ids do not collide.
	ret, _ := mustUpdate(t, in2.Handle(0), objects.CounterInc)
	if ret != 21 {
		t.Fatalf("post-recovery inc returned %d, want 21", ret)
	}
}

func TestCrashLosesUnpersistedUpdate(t *testing.T) {
	// A process that ordered its op (trace insert) but crashed before
	// the persist fence must NOT be reflected after recovery.
	ctl := sched.NewController()
	pool := pmem.New(testPoolSize, ctl)
	in, err := New(pool, objects.CounterSpec{}, Config{NProcs: 2, Gate: ctl})
	if err != nil {
		t.Fatal(err)
	}
	done0 := ctl.Spawn(0, func() { in.Handle(0).Update(objects.CounterInc) })
	ctl.RunToCompletion(0)
	<-done0
	ctl.Release(0)

	ctl.Spawn(1, func() { in.Handle(1).Update(objects.CounterInc) })
	// Run p1 through ordering but stop before any NVM activity.
	if pt, ok := ctl.RunUntil(1, sched.AtPoint(PointOrdered)); !ok {
		t.Fatalf("p1 never reached %s (at %q)", PointOrdered, pt)
	}
	ctl.KillAll()
	pool.Crash(pmem.DropAll)
	_, rep, err := Recover(pool, objects.CounterSpec{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.LastIdx != 1 {
		t.Fatalf("recovered %d ops, want 1 (p1's unpersisted op must be lost)", rep.LastIdx)
	}
}

func TestHelpingPersistsDelayedProcess(t *testing.T) {
	// Execution 3 of Figure 1, crash variant: p0 orders its op and
	// stalls before persisting; p1's update helps persist p0's op.
	// After a crash, BOTH ops must be recovered (p0's op precedes
	// p1's in the linearization).
	ctl := sched.NewController()
	pool := pmem.New(testPoolSize, ctl)
	in, err := New(pool, objects.CounterSpec{}, Config{NProcs: 2, Gate: ctl})
	if err != nil {
		t.Fatal(err)
	}
	ctl.Spawn(0, func() { in.Handle(0).Update(objects.CounterInc) })
	if _, ok := ctl.RunUntil(0, sched.AtPoint(PointOrdered)); !ok {
		t.Fatal("p0 never ordered")
	}
	var ret1 uint64
	done1 := ctl.Spawn(1, func() { ret1, _, _ = in.Handle(1).Update(objects.CounterInc) })
	ctl.RunToCompletion(1)
	<-done1
	if ret1 != 2 {
		t.Fatalf("p1's increment returned %d, want 2 (it is second in the order)", ret1)
	}
	// p0 is still stalled; its op is visible to readers only through
	// p1's available flag (helping linearizes it).
	if v := in.Handle(1).Read(objects.CounterGet); v != 2 {
		t.Fatalf("read %d, want 2", v)
	}
	ctl.KillAll()
	pool.Crash(pmem.DropAll)
	_, rep, err := Recover(pool, objects.CounterSpec{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.LastIdx != 2 {
		t.Fatalf("recovered %d ops, want 2 (helping must persist p0's op)", rep.LastIdx)
	}
}

func TestDetectabilityOfInFlightOp(t *testing.T) {
	// An op that persisted but whose available flag was never set IS
	// linearized (case 2 of the linearization-point definition) and
	// must be detectable after the crash.
	ctl := sched.NewController()
	pool := pmem.New(testPoolSize, ctl)
	in, err := New(pool, objects.CounterSpec{}, Config{NProcs: 1, Gate: ctl})
	if err != nil {
		t.Fatal(err)
	}
	ctl.Spawn(0, func() { in.Handle(0).Update(objects.CounterInc) })
	if _, ok := ctl.RunUntil(0, sched.AtPoint(PointPersisted)); !ok {
		t.Fatal("p0 never persisted")
	}
	ctl.KillAll()
	pool.Crash(pmem.DropAll)
	_, rep, err := Recover(pool, objects.CounterSpec{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.LastIdx != 1 {
		t.Fatalf("recovered %d ops, want 1", rep.LastIdx)
	}
	if _, ok := rep.WasLinearized(spec.MakeID(0, 1)); !ok {
		t.Fatal("persisted-but-unflagged op not detected")
	}
}

func TestRecoveryAcrossAllObjects(t *testing.T) {
	type step struct {
		code uint64
		args []uint64
	}
	cases := map[string][]step{
		"counter":    {{objects.CounterInc, nil}, {objects.CounterAdd, []uint64{41}}},
		"stack":      {{objects.StackPush, []uint64{7}}, {objects.StackPush, []uint64{8}}, {objects.StackPop, nil}},
		"queue":      {{objects.QueueEnq, []uint64{7}}, {objects.QueueEnq, []uint64{8}}, {objects.QueueDeq, nil}},
		"map":        {{objects.MapPut, []uint64{1, 10}}, {objects.MapPut, []uint64{2, 20}}, {objects.MapDel, []uint64{1}}},
		"set":        {{objects.SetAdd, []uint64{5}}, {objects.SetAdd, []uint64{6}}, {objects.SetRemove, []uint64{5}}},
		"pqueue":     {{objects.PQInsert, []uint64{9}}, {objects.PQInsert, []uint64{3}}, {objects.PQExtractMin, nil}},
		"deque":      {{objects.DequePushBack, []uint64{1}}, {objects.DequePushFront, []uint64{2}}, {objects.DequePopBack, nil}},
		"applog":     {{objects.LogAppend, []uint64{11}}, {objects.LogAppend, []uint64{22}}},
		"bank":       {{objects.BankDeposit, []uint64{1, 100}}, {objects.BankTransfer, []uint64{1, 2, 40}}},
		"register":   {{objects.RegisterWrite, []uint64{77}}},
		"orderedmap": {{objects.OMapPut, []uint64{5, 50}}, {objects.OMapPut, []uint64{2, 20}}, {objects.OMapDel, []uint64{5}}},
	}
	for _, sp := range objects.All() {
		steps, ok := cases[sp.Name()]
		if !ok {
			t.Fatalf("no recovery case for object %q", sp.Name())
		}
		t.Run(sp.Name(), func(t *testing.T) {
			pool := pmem.New(testPoolSize, nil)
			in, err := New(pool, sp, Config{NProcs: 1})
			if err != nil {
				t.Fatal(err)
			}
			h := in.Handle(0)
			var want []spec.Op
			for _, s := range steps {
				_, id, err := h.Update(s.code, s.args...)
				if err != nil {
					t.Fatal(err)
				}
				op := spec.Op{Code: s.code, ID: id}
				copy(op.Args[:], s.args)
				want = append(want, op)
			}
			pool.Crash(pmem.DropAll)
			in2, rep, err := Recover(pool, sp, Config{})
			if err != nil {
				t.Fatal(err)
			}
			if int(rep.LastIdx) != len(steps) {
				t.Fatalf("recovered %d ops, want %d", rep.LastIdx, len(steps))
			}
			wantState, _ := spec.Replay(sp, want)
			gotState := replayInstance(t, in2, sp)
			if !spec.Equal(wantState, gotState) {
				t.Fatalf("post-recovery state %v != replay %v", gotState.Snapshot(), wantState.Snapshot())
			}
		})
	}
}

// replayInstance reconstructs the recovered state through the public read
// path of a fresh handle using the objects' full-state snapshots: we just
// grab the trace and replay it, which is exactly what a reader does.
func replayInstance(t *testing.T, in *Instance, sp spec.Spec) spec.State {
	t.Helper()
	h := in.Handle(0)
	// Any read advances/builds state; we use the internal compute by
	// issuing a cheap read first, then replaying the trace directly.
	node := in.Trace().Tail(0)
	st := sp.New()
	for cur := node; cur != nil; cur = cur.Next() {
	}
	// Collect backward.
	var ops []spec.Op
	for cur := node; cur != nil && cur.Idx() > 0; cur = cur.Next() {
		ops = append([]spec.Op{cur.Op}, ops...)
	}
	for _, op := range ops {
		st.Apply(op)
	}
	_ = h
	return st
}

func TestLocalViewsMatchFreshReplay(t *testing.T) {
	poolA := pmem.New(testPoolSize, nil)
	inA, _ := New(poolA, objects.MapSpec{}, Config{NProcs: 2, LocalViews: true})
	poolB := pmem.New(testPoolSize, nil)
	inB, _ := New(poolB, objects.MapSpec{}, Config{NProcs: 2, LocalViews: false})
	for i := uint64(0); i < 200; i++ {
		for pid := 0; pid < 2; pid++ {
			k, v := (i*7+uint64(pid))%32, i
			ra, _, _ := inA.Handle(pid).Update(objects.MapPut, k, v)
			rb, _, _ := inB.Handle(pid).Update(objects.MapPut, k, v)
			if ra != rb {
				t.Fatalf("update %d/%d: local-view ret %d != fresh ret %d", i, pid, ra, rb)
			}
			ga, gb := inA.Handle(pid).Read(objects.MapGet, k), inB.Handle(pid).Read(objects.MapGet, k)
			if ga != gb {
				t.Fatalf("read %d/%d: local-view %d != fresh %d", i, pid, ga, gb)
			}
		}
	}
}

func TestCompactionKeepsSemanticsAndBoundsLog(t *testing.T) {
	pool := pmem.New(testPoolSize, nil)
	in, err := New(pool, objects.CounterSpec{}, Config{NProcs: 1, CompactEvery: 10, LogCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	h := in.Handle(0)
	const n = 1000 // far more ops than LogCapacity: only works if truncation works
	for i := 1; i <= n; i++ {
		ret, _ := mustUpdate(t, h, objects.CounterInc)
		if ret != uint64(i) {
			t.Fatalf("inc %d returned %d", i, ret)
		}
	}
	if got := in.Log(0).Len(); got > 21 {
		t.Fatalf("log holds %d live records; compaction should bound it near 2*CompactEvery", got)
	}
	if v := h.Read(objects.CounterGet); v != n {
		t.Fatalf("read %d, want %d", v, n)
	}
	pool.Crash(pmem.DropAll)
	in2, rep, err := Recover(pool, objects.CounterSpec{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.BaseIdx == 0 {
		t.Fatal("recovery found no snapshot despite compaction")
	}
	if v := in2.Handle(0).Read(objects.CounterGet); v != n {
		t.Fatalf("post-recovery value %d, want %d", v, n)
	}
}

func TestCompactionConcurrent(t *testing.T) {
	pool := pmem.New(testPoolSize, nil)
	const nprocs = 4
	in, err := New(pool, objects.CounterSpec{}, Config{NProcs: nprocs, CompactEvery: 8, LogCapacity: 256})
	if err != nil {
		t.Fatal(err)
	}
	const perProc = 300
	var wg sync.WaitGroup
	for pid := 0; pid < nprocs; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			h := in.Handle(pid)
			for i := 0; i < perProc; i++ {
				mustUpdate(t, h, objects.CounterInc)
				if i%5 == 0 {
					h.Read(objects.CounterGet)
				}
			}
		}(pid)
	}
	wg.Wait()
	if v := in.Handle(0).Read(objects.CounterGet); v != nprocs*perProc {
		t.Fatalf("final value %d, want %d", v, nprocs*perProc)
	}
	pool.Crash(pmem.DropAll)
	in2, _, err := Recover(pool, objects.CounterSpec{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if v := in2.Handle(0).Read(objects.CounterGet); v != nprocs*perProc {
		t.Fatalf("post-recovery value %d, want %d", v, nprocs*perProc)
	}
}

func TestE11LockFreedomStalledProcessBlocksNobody(t *testing.T) {
	// Stall p0 at each of its pipeline points in turn; p1 must always
	// be able to complete updates and reads.
	points := []string{PointOrdered, PointPersisted, "trace.cas-tail", "pmem.pfence"}
	for _, pt := range points {
		t.Run(pt, func(t *testing.T) {
			ctl := sched.NewController()
			pool := pmem.New(testPoolSize, ctl)
			in, err := New(pool, objects.CounterSpec{}, Config{NProcs: 2, Gate: ctl})
			if err != nil {
				t.Fatal(err)
			}
			ctl.Spawn(0, func() { in.Handle(0).Update(objects.CounterInc) })
			if _, ok := ctl.RunUntil(0, sched.AtPoint(pt)); !ok {
				t.Skipf("p0 finished before reaching %s", pt)
			}
			var reads, updates int
			done := ctl.Spawn(1, func() {
				h := in.Handle(1)
				for i := 0; i < 20; i++ {
					if _, _, err := h.Update(objects.CounterInc); err == nil {
						updates++
					}
					h.Read(objects.CounterGet)
					reads++
				}
			})
			ctl.RunToCompletion(1)
			if r := <-done; r != nil {
				t.Fatalf("p1 failed while p0 stalled at %s: %v", pt, r)
			}
			if updates != 20 || reads != 20 {
				t.Fatalf("p1 completed %d updates / %d reads, want 20/20", updates, reads)
			}
			ctl.KillAll()
		})
	}
}

func TestRecoverOnUninitializedPoolFails(t *testing.T) {
	pool := pmem.New(testPoolSize, nil)
	if _, _, err := Recover(pool, objects.CounterSpec{}, Config{}); err == nil {
		t.Fatal("Recover on an empty pool should fail")
	}
}

func TestDoubleCrash(t *testing.T) {
	pool, in := newCounter(t, Config{NProcs: 2})
	for i := 0; i < 5; i++ {
		mustUpdate(t, in.Handle(0), objects.CounterInc)
	}
	pool.Crash(pmem.DropAll)
	in2, _, err := Recover(pool, objects.CounterSpec{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		mustUpdate(t, in2.Handle(1), objects.CounterInc)
	}
	pool.Crash(pmem.DropAll)
	in3, rep, err := Recover(pool, objects.CounterSpec{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.LastIdx != 10 {
		t.Fatalf("after second recovery: %d ops, want 10", rep.LastIdx)
	}
	if v := in3.Handle(0).Read(objects.CounterGet); v != 10 {
		t.Fatalf("value %d, want 10", v)
	}
}

func TestCrashWithRandomOracles(t *testing.T) {
	// Whatever subset of in-flight lines survives, recovery must yield
	// a consistent prefix of the completed history.
	for seed := uint64(1); seed <= 8; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			ctl := sched.NewController()
			pool := pmem.New(testPoolSize, ctl)
			in, err := New(pool, objects.CounterSpec{}, Config{NProcs: 2, Gate: ctl})
			if err != nil {
				t.Fatal(err)
			}
			ctl.Spawn(0, func() {
				h := in.Handle(0)
				for i := 0; i < 10; i++ {
					h.Update(objects.CounterInc)
				}
			})
			ctl.Spawn(1, func() {
				h := in.Handle(1)
				for i := 0; i < 10; i++ {
					h.Update(objects.CounterInc)
				}
			})
			// Interleave a bounded number of steps, then crash.
			for i := 0; i < int(50+seed*37); i++ {
				ctl.StepN(int(seed+uint64(i))%2, 3)
			}
			ctl.KillAll()
			pool.Crash(pmem.SeededOracle(seed, 1, 2))
			_, rep, err := Recover(pool, objects.CounterSpec{}, Config{})
			if err != nil {
				t.Fatal(err)
			}
			if rep.LastIdx > 20 {
				t.Fatalf("recovered %d ops out of at most 20 invoked", rep.LastIdx)
			}
			// Consistency: the recovered set must be a prefix of the
			// execution order, which Recover already verifies by index
			// contiguity; here we re-verify value = count.
			in2, _, _ := Recover(pool, objects.CounterSpec{}, Config{})
			if v := in2.Handle(0).Read(objects.CounterGet); v != rep.LastIdx {
				t.Fatalf("value %d != recovered op count %d", v, rep.LastIdx)
			}
		})
	}
}
