// Package core implements ONLL ("Order Now, Linearize Later"), the
// universal construction of the paper (Sections 3–5): given any
// deterministic sequential object, it produces a lock-free, durably
// linearizable — in fact detectably executable — persistent object that
// issues at most ONE persistent fence per update operation and NO
// persistent fences for read-only operations (Theorem 5.1).
//
// An update proceeds in three stages (Section 3.2):
//
//	order     — a descriptor node is appended to the shared transient
//	            execution trace (internal/trace), fixing the operation's
//	            linearization order before anything is persisted;
//	persist   — the operation, together with every preceding operation
//	            still in the fuzzy window (operations not yet guaranteed
//	            durable), is appended to the process's persistent log
//	            (internal/plog) with a single persistent fence; helping
//	            here is what keeps delayed processes from blocking
//	            recovery consistency;
//	linearize — the node's available flag is set, making the operation
//	            visible to readers. The linearization point of the
//	            operation is the earlier of this store and the flag-set
//	            of any later operation (Section 5.2).
//
// A read-only operation walks the trace from the tail to the latest
// available node and computes its value on that prefix; it never writes
// shared memory or NVM and never fences.
//
// Recovery (Listing 5) rebuilds the trace from the persistent logs of
// all processes, yielding exactly the operations linearized before the
// crash, in linearization order (Proposition 5.10), and reports which
// operation ids survived (detectable execution).
//
// The Section 8 extensions are implemented as options: per-process local
// views (reads cost the lag, not the history length), wait-free ordering
// (a helping execution trace), and compaction (snapshot records that
// truncate the logs and cut the trace, bounding memory).
package core

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/plog"
	"repro/internal/pmem"
	"repro/internal/sched"
	"repro/internal/spec"
	"repro/internal/trace"
)

// Gate point names emitted by the construction itself (the substrates
// emit their own: pmem.*, trace.*). Deterministic schedules key on them.
const (
	PointOrdered   = "onll.ordered"   // after the order stage
	PointPersisted = "onll.persisted" // after the persist stage (the fence)
	PointReturn    = "op.return"      // just before an operation returns
	PointPublish   = "onll.publish"   // before acquiring the shared-view slot to publish/stamp
	PointAdopt     = "onll.adopt"     // before acquiring the shared-view slot to adopt
	PointSlotCopy  = "onll.slot-copy" // holding the slot, before the state copy
	PointSlotRead  = "onll.slot-read" // before acquiring the shared-view slot to serve a read
)

// Root-table layout used to locate the construction after a crash.
const (
	rootMagicSlot  = 0
	rootNProcsSlot = 1
	rootLogBase    = 8 // slots 8..8+n-1 hold per-process log addresses
	rootMagic      = 0x4f4e4c4c0001
)

// Typed error taxonomy of the fault-hardening layer (PR 6). Callers
// match with errors.Is; every error carries context via wrapping.
var (
	// ErrTornRecord: a log record failed validation mid-log (media
	// damage — a genuinely torn append can only sit at the frontier),
	// or persisted operations are stranded beyond the recoverable
	// prefix, which crash-only executions cannot produce (Prop 5.10).
	ErrTornRecord = errors.New("core: torn or media-damaged log record")
	// ErrBadSlotHeader: a per-process log header failed to validate, so
	// the whole log is unreadable.
	ErrBadSlotHeader = errors.New("core: log header unreadable")
	// ErrSnapshotCorrupt: a compaction snapshot that truncated records
	// is itself missing or damaged — the operations it covered are not
	// reconstructible.
	ErrSnapshotCorrupt = errors.New("core: compaction snapshot missing or corrupt")
	// ErrObjectQuarantined: salvage found evidence of data loss; the
	// object refuses updates and typed reads until Recreate.
	ErrObjectQuarantined = errors.New("core: object quarantined (salvage found evidence of loss)")
	// ErrLogPressure: the persist stage could not place a record even
	// after the full escalation ladder (compaction, view catch-up,
	// ring growth).
	ErrLogPressure = errors.New("core: log pressure not relieved by compaction or ring growth")
	// ErrRootOverlap: this instance's root-table range [RootBase,
	// RootBase+rootLogBase+NProcs) overlaps a range another live
	// instance already claimed on the same pool. Before the check, the
	// second instance silently clobbered the first one's root slots
	// (magic, NProcs, log pointers) — corruption that only surfaced at
	// the next recovery. Re-claiming the IDENTICAL range is allowed:
	// that is the same logical instance being recovered or recreated on
	// the pool, not a second one (the registry is volatile, so a crash
	// clears it the way a crash kills the processes holding handles).
	ErrRootOverlap = errors.New("core: RootBase range overlaps another instance on this pool")
)

// MaxProcs bounds the number of simulated processes per instance
// (MAX_PROCESSES in the paper). It matches sched.MaxPids so throughput
// experiments can drive the full pid space; the root table reserves one
// log-pointer slot per possible pid.
const MaxProcs = sched.MaxPids

// RootSpan returns the number of root-table slots an instance with
// nprocs processes occupies starting at Config.RootBase: the fixed
// header slots (magic, process count) plus one log pointer per
// process. Multi-instance layouts (several objects, or the shard
// package's partitions) place instance i at RootBase = i*RootSpan(n)
// to tile the table without overlap.
func RootSpan(nprocs int) int { return rootLogBase + nprocs }

// Config parameterizes New and Recover.
type Config struct {
	// NProcs is the number of processes (and per-process logs).
	NProcs int
	// LogCapacity is the number of record slots per per-process log.
	// Zero selects a default suitable for the test workloads.
	LogCapacity int
	// LogInlineOps is the per-slot inline op budget of the two-tier log
	// layout: records assembling at most this many fuzzy-window ops live
	// entirely in their slot, larger records spill their tail to the
	// log's shared overflow ring. Zero selects plog.DefaultInlineOps;
	// values >= NProcs make the logs single-tier (every slot sized for
	// the worst-case window, the pre-two-tier layout).
	//
	// The ring is sized at 1/8 of the worst case, so a sustained run of
	// deep fuzzy windows can exhaust it before the slot ring fills.
	// With LocalViews enabled, Update absorbs that transparently (the
	// compactForSpace pressure valve); without them there is no state
	// to snapshot from and Update fails with plog.ErrOvfFull, a failure
	// the single-tier layout only hit at full slot capacity — workloads
	// that stall processes deeply and cannot enable local views should
	// keep the logs single-tier.
	LogInlineOps int
	// LogMaxOps raises the per-record op bound of each per-process log
	// above the default (NProcs, the deepest fuzzy window a single
	// update can owe). Batched entry points (Handle.NewBatch) persist
	// many staged operations plus the helping tail under one record and
	// one fence, so a server sizing its batcher must leave room:
	// MaxBatch <= LogMaxOps - NProcs. Zero or values below NProcs
	// select NProcs. Raising it does not widen the inline slots — wide
	// records spill their tail to the overflow ring — but it does grow
	// the ring's sizing floor, so PoolBytes must be computed with the
	// same value.
	LogMaxOps int
	// Gate interposes deterministic scheduling / crash injection; nil
	// means free-running.
	Gate sched.Gate
	// WaitFree selects the wait-free execution trace (Section 8).
	WaitFree bool
	// LocalViews gives each handle a cached state so reads replay only
	// the lag since the handle last looked (Section 8). Compaction
	// requires local views.
	LocalViews bool
	// ReadFastPath enables the version-stamped read fast path on top of
	// local views (implied; setting it turns LocalViews on):
	//
	//   - every linearize stage bumps the trace's publication epoch, and
	//     a read whose handle has already observed the current epoch is
	//     served straight from the local view, without touching the
	//     trace at all — on read-heavy mixes the per-read trace walk
	//     disappears whenever no update has landed in between;
	//   - a cold or lagging handle may adopt a copy of the instance's
	//     latest published view (a seqlock-style shared slot: publishers
	//     and adopters acquire it with one CAS and fall back to the
	//     ordinary suffix walk on contention) instead of replaying the
	//     whole suffix node by node. Updaters feed the slot too (damped
	//     by AdoptPolicy.PublishLag), so it tracks the insert frontier
	//     under churn; validating reads stamp the slot with the epoch
	//     they just proved it current for, letting other handles serve
	//     (and profitably adopt) straight from the slot without any
	//     walk; and the adoption threshold is cost-aware by default
	//     (AdoptPolicy, adoptpolicy.go) — copy cost vs replay cost
	//     learned per instance — instead of one fixed constant.
	//
	// Reads stay fence-free and allocation-free; pfences/op is
	// unchanged (updates 1, reads 0). The flat-combining and eager
	// baselines (internal/baselines) deliberately do not implement an
	// equivalent, so E6/E7 keep comparing against the unassisted
	// designs the paper describes.
	ReadFastPath bool
	// AdoptPolicy tunes the read fast path's shared-view economics
	// (adoptpolicy.go): the zero value selects the cost-aware adaptive
	// adoption threshold and damped update-side publication; the
	// pre-adaptive fixed threshold is AdoptPolicy{FixedMinLag: 32}.
	// Ignored unless ReadFastPath is set.
	AdoptPolicy AdoptPolicy
	// SlotStripes sets how many independent published-view slot stripes
	// the read fast path carries (fastpath.go): publishers and stampers
	// go to the stripe their pid hashes to, adopters and served reads
	// scan all stripes for the freshest valid one, so concurrent
	// handles stop serializing on a single slot CAS line. Zero
	// auto-sizes to min(GOMAXPROCS, NProcs), capped at 8; 1 reproduces
	// the single-slot layout (deterministic slot tests pin it). Ignored
	// unless ReadFastPath is set.
	SlotStripes int
	// CompactEvery, if positive, makes each handle write a snapshot
	// record and truncate its log every CompactEvery updates, and cut
	// the trace behind the snapshot (Section 8 memory reclamation).
	CompactEvery int
	// DeltaSnapshots selects delta-chain compaction (DESIGN.md §3.8,
	// deltacompact.go): a cut appends a chain base (full snapshot) once
	// and then per-cut delta records — object-specific diffs via
	// spec.DeltaEmitter where available, verbatim op replay otherwise —
	// collapsing back to a fresh base when the chain reaches
	// MaxDeltaChain links or the accumulated delta volume rivals the
	// state size. Cuts cost O(churn-since-cut) instead of O(state).
	// Implies LocalViews. With CompactEvery left 0 the cut cadence is
	// size-aware (Handle.cutEvery) instead of disabled.
	DeltaSnapshots bool
	// MaxDeltaChain caps a delta chain's length in links (base
	// included) before a cut collapses it, bounding both recovery's
	// fold depth and the volatile trace window between trace cuts. Zero
	// selects 8. Ignored unless DeltaSnapshots.
	MaxDeltaChain int
	// Salvage selects salvaging recovery: instead of failing wholesale
	// on the first corrupt structure, Recover keeps the longest valid
	// prefix of every log, harvests checksummed records stranded beyond
	// damage (helping often bridges the gap), and classifies the result
	// into Healthy / Degraded / Quarantined (health.go). Strict mode
	// (false, the default) preserves the original fail-closed behavior.
	Salvage bool
	// RootBase offsets this instance's root-table slots, letting
	// several instances (independent objects) share one pool. Each
	// instance owns slots [RootBase, RootBase+rootLogBase+NProcs).
	// Callers must keep the ranges disjoint. Default 0.
	RootBase int

	// The Unsafe* options deliberately BREAK the construction for the
	// ablation experiments (E13): they demonstrate that the design
	// decisions the paper derives in Section 3.1 are load-bearing, by
	// letting the durability checker catch the resulting violations.
	// Never enable them outside experiments.

	// UnsafeNoHelping makes updates persist only their own operation,
	// not the fuzzy window. A delayed process then leaves a gap that
	// strands every later persisted operation at recovery.
	UnsafeNoHelping bool
	// UnsafeLinearizeFirst sets the available flag BEFORE the persist
	// stage (the ordering the paper proves impossible for fence-free
	// readers): a reader may then expose an operation that a crash
	// erases.
	UnsafeLinearizeFirst bool
}

func (c *Config) fill() error {
	if c.NProcs < 1 || c.NProcs > MaxProcs {
		return fmt.Errorf("core: NProcs %d out of range [1,%d]", c.NProcs, MaxProcs)
	}
	if c.LogInlineOps < 0 {
		return fmt.Errorf("core: LogInlineOps %d negative", c.LogInlineOps)
	}
	if c.LogMaxOps < 0 {
		return fmt.Errorf("core: LogMaxOps %d negative", c.LogMaxOps)
	}
	if c.LogMaxOps < c.NProcs {
		c.LogMaxOps = c.NProcs
	}
	if c.AdoptPolicy.FixedMinLag < 0 {
		return fmt.Errorf("core: AdoptPolicy.FixedMinLag %d negative", c.AdoptPolicy.FixedMinLag)
	}
	if c.AdoptPolicy.PublishLag < 0 {
		return fmt.Errorf("core: AdoptPolicy.PublishLag %d negative", c.AdoptPolicy.PublishLag)
	}
	if c.SlotStripes < 0 || c.SlotStripes > MaxProcs {
		return fmt.Errorf("core: SlotStripes %d out of range [0,%d]", c.SlotStripes, MaxProcs)
	}
	if c.RootBase < 0 || c.RootBase+rootLogBase+c.NProcs > pmem.RootSlots {
		return fmt.Errorf("core: RootBase %d leaves no room for %d log roots (table has %d slots)",
			c.RootBase, c.NProcs, pmem.RootSlots)
	}
	if c.MaxDeltaChain < 0 {
		return fmt.Errorf("core: MaxDeltaChain %d negative", c.MaxDeltaChain)
	}
	if c.MaxDeltaChain == 0 {
		c.MaxDeltaChain = 8
	}
	if c.LogCapacity == 0 {
		c.LogCapacity = 1 << 12
	}
	if c.Gate == nil {
		c.Gate = sched.NopGate{}
	}
	if c.CompactEvery > 0 || c.ReadFastPath || c.DeltaSnapshots {
		c.LocalViews = true
	}
	return nil
}

// Instance is one durably linearizable object produced by the universal
// construction. Obtain per-process Handles with Handle; an Instance's
// methods other than Handle are safe for concurrent use.
type Instance struct {
	cfg   Config
	sp    spec.Spec
	pool  *pmem.Pool
	gate  sched.Gate
	tr    trace.Interface
	logs  []*plog.Log
	hands []*Handle
	// pubs holds the striped shared latest-view slots (ReadFastPath
	// only, else nil). Value slice, indexed by address — a pubView must
	// never be copied after construction (it embeds atomics and the
	// seqlock protocol keys on the address).
	pubs []pubView
	// costs is the adaptive adoption cost model (nil when the fast
	// path is off or AdoptPolicy pins a fixed threshold).
	costs *adoptCosts

	// health is the salvage-mode health state (health.go); nil means
	// healthy (instances built by New, or strict recovery). One atomic
	// load on the update path is the whole hot-path cost.
	health atomic.Pointer[Health]
	// salvBase caches the salvaged-prefix state for Recreate (set only
	// when recovery quarantined the object).
	salvBase *salvageBase

	// Pressure and scrub counters (stats surface; see Pressure and
	// ScrubTotals in health.go).
	valveFires atomic.Uint64
	ringGrows  atomic.Uint64
	scrubRuns  atomic.Uint64
	scrubBad   atomic.Uint64

	// Delta-compaction counters (CompactionStats, deltacompact.go).
	cmpBases       atomic.Uint64
	cmpDeltas      atomic.Uint64
	cmpCollapses   atomic.Uint64
	cmpValveDeltas atomic.Uint64
	cmpSnapWords   atomic.Uint64
	cmpFullWords   atomic.Uint64
}

// New builds a fresh instance of sp on pool. Setup durably writes the
// root table and log headers; call pool.ResetStats afterwards if you are
// counting steady-state fences.
func New(pool *pmem.Pool, sp spec.Spec, cfg Config) (*Instance, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	in := &Instance{cfg: cfg, sp: sp, pool: pool, gate: cfg.Gate}
	if err := claimRoots(pool, &cfg); err != nil {
		return nil, err
	}
	in.initFastPath()
	if cfg.WaitFree {
		in.tr = trace.NewWaitFree(cfg.Gate, cfg.NProcs)
	} else {
		in.tr = trace.NewLockFree(cfg.Gate)
	}
	for pid := 0; pid < cfg.NProcs; pid++ {
		l, err := plog.CreateInline(pool, pid, cfg.LogCapacity, cfg.LogMaxOps, cfg.LogInlineOps)
		if err != nil {
			return nil, fmt.Errorf("core: creating log for p%d: %w", pid, err)
		}
		in.logs = append(in.logs, l)
		pool.SetRoot(cfg.RootBase+rootLogBase+pid, uint64(l.Base()))
	}
	pool.SetRoot(cfg.RootBase+rootNProcsSlot, uint64(cfg.NProcs))
	pool.SetRoot(cfg.RootBase+rootMagicSlot, rootMagic)
	in.makeHandles(nil)
	return in, nil
}

// claimRoots registers the instance's root-table range with the pool,
// catching overlapping Config.RootBase partitions at create/recover
// time instead of letting two instances silently clobber each other's
// root slots. Identical re-claims pass (recovery/recreation of the
// same instance); any partial overlap is an ErrRootOverlap.
func claimRoots(pool *pmem.Pool, cfg *Config) error {
	lo := cfg.RootBase
	hi := lo + rootLogBase + cfg.NProcs
	if conflict, ok := pool.ClaimRootRange(lo, hi); !ok {
		return fmt.Errorf("%w: [%d,%d) vs claimed [%d,%d)",
			ErrRootOverlap, lo, hi, conflict[0], conflict[1])
	}
	return nil
}

// initFastPath wires the read fast path's shared machinery: the
// latest-view slot stripes (always reset — a slot must never be born
// held; see pubView.reset) and the cost model when the adaptive
// adoption policy is selected.
func (in *Instance) initFastPath() {
	if !in.cfg.ReadFastPath {
		return
	}
	in.pubs = make([]pubView, resolveSlotStripes(&in.cfg))
	in.resetSlots()
	if in.cfg.AdoptPolicy.FixedMinLag == 0 {
		in.costs = &adoptCosts{}
	}
}

// resetSlots returns every slot stripe to its initial free state
// (construction, recovery, recreation).
func (in *Instance) resetSlots() {
	for i := range in.pubs {
		in.pubs[i].reset()
	}
}

func (in *Instance) makeHandles(seqs map[int]uint64) {
	in.hands = make([]*Handle, in.cfg.NProcs)
	for pid := 0; pid < in.cfg.NProcs; pid++ {
		h := &Handle{in: in, pid: pid, seenEpoch: epochNever}
		h.floor.Store(^uint64(0)) // idle: blocks no reclamation
		if seqs != nil {
			h.seq = seqs[pid]
		}
		if in.cfg.LocalViews {
			h.view = in.sp.New()
			h.viewSeqs = make([]uint64, in.cfg.NProcs)
			if base := in.tr.Sentinel(); base.Kind == trace.KindBase {
				if err := h.view.Restore(base.Snap); err != nil {
					panic(fmt.Sprintf("core: corrupt recovery base: %v", err))
				}
				h.viewIdx = base.Idx()
				copy(h.viewSeqs, base.Seqs)
			}
		}
		in.hands[pid] = h
	}
}

// Spec returns the sequential specification the instance implements.
func (in *Instance) Spec() spec.Spec { return in.sp }

// Pool returns the instance's persistent pool.
func (in *Instance) Pool() *pmem.Pool { return in.pool }

// Trace exposes the execution trace for invariant checks and the
// Figure-1 walkthrough; production code has no reason to touch it.
func (in *Instance) Trace() trace.Interface { return in.tr }

// Log returns process pid's persistent log (diagnostics).
func (in *Instance) Log(pid int) *plog.Log { return in.logs[pid] }

// Handle returns the per-process handle for pid. A Handle must only be
// used by one operation at a time (a process executes one operation at a
// time; the fuzzy-window bound of Proposition 5.2 depends on it).
func (in *Instance) Handle(pid int) *Handle {
	if pid < 0 || pid >= in.cfg.NProcs {
		panic(fmt.Sprintf("core: pid %d out of range [0,%d)", pid, in.cfg.NProcs))
	}
	return in.hands[pid]
}

// NProcs returns the configured process count.
func (in *Instance) NProcs() int { return in.cfg.NProcs }

// Handle is process pid's interface to the object.
type Handle struct {
	in  *Instance
	pid int
	seq uint64 // per-process op sequence for unique ids

	// Local view (Section 8): a cached state reflecting the prefix up
	// to viewIdx. Private to the process; reads advance it. viewSeqs
	// tracks, per process, the highest op sequence number applied to
	// the view — compaction persists it so detectability survives the
	// collapse of the prefix into a snapshot.
	view     spec.State
	viewIdx  uint64
	viewSeqs []uint64

	// Read fast path (Config.ReadFastPath). seenEpoch is the trace
	// publication epoch loaded BEFORE the walk that last caught the
	// view up: while Epoch() still equals it, no operation has been
	// published since, so the view is the latest available prefix and
	// Read serves from it without touching the trace. epochNever marks
	// a view that has not been validated against any epoch yet (fresh
	// or recovered handles), forcing the first read onto the walk.
	// adopt is the scratch state adoption copies into (the view and the
	// scratch swap roles on success, so a copy torn by contention never
	// replaces a good view); adoptions counts successful adoptions
	// (atomic so Instance.FastPathStats can sum mid-run).
	seenEpoch uint64
	adopt     spec.State
	adoptions atomic.Uint64

	// Stamp-time demand damper state (tryStampSlot), PER HANDLE: the
	// stripe serve count this handle last advanced at, and its skipped
	// stamps since. With the pre-PR 8 per-instance counters one hot
	// stamper burned the whole probe budget and marked the serves as
	// seen, starving every other handle's probe advance. A handle only
	// ever stamps its own stripe, so one scalar pair suffices.
	slotServesSeen uint64
	slotProbe      uint32

	// Scratch buffers reused across operations (a Handle runs one
	// operation at a time, enforced by busy), keeping steady-state
	// replay allocation-free: fuzzyBuf caps out at the fuzzy-window
	// bound (Proposition 5.2), nodeBuf at the read lag. deltaOps and
	// deltaBuf are the delta-cut scratch (deltacompact.go) — separate
	// from fuzzyBuf, which still holds the in-flight window when the
	// pressure valve cuts a delta mid-persist.
	fuzzyBuf []spec.Op
	nodeBuf  []*trace.Node
	deltaOps []spec.Op
	deltaBuf []uint64

	// Trace-node pooling (the last alloc/op on the update path). floor
	// publishes, for the handle's in-flight operation, a lower bound on
	// the execution indices it may dereference: every walk this handle
	// performs touches only nodes with index >= floor - NProcs (its own
	// CollectBack walks stop at viewIdx >= floor; fuzzy/latest-available
	// walks start at or above the tail, whose index is >= floor, and by
	// Proposition 5.2 descend at most NProcs nodes). Idle handles publish
	// MaxUint64. A retired node is promoted to the free list only once
	// idx + NProcs < min over all published floors, so no in-flight walk
	// can still reach it; nodes retired later stay in retired until a
	// future compaction re-checks. freeNodes/retired are handle-private.
	floor     atomic.Uint64
	claiming  atomic.Bool // set while reclaim's claim walk holds chain pointers
	freeNodes []*trace.Node
	retired   []*trace.Node

	sinceCompact int
	// spillsAtGrow snapshots the log's spill counter at the last ring
	// growth; the delta is the observed spill rate that lets the valve
	// escalate straight to growth under sustained pressure (valve.go).
	spillsAtGrow int
	busy         atomic.Bool // guards against misuse (two ops at once)
}

// maxFreeNodes caps a handle's freelist; beyond it, retired nodes are
// dropped to the garbage collector (pooling is an optimization, not a
// leak trade).
const maxFreeNodes = 1 << 12

// PID returns the handle's process id.
func (h *Handle) PID() int { return h.pid }

// NextOpID returns the id the handle's next Update will carry. History
// recorders use it to attribute in-flight (crash-interrupted) operations
// that recovery may nevertheless report as linearized.
func (h *Handle) NextOpID() uint64 { return spec.MakeID(h.pid, h.seq+1) }

var errBusy = errors.New("core: handle used by two operations concurrently (one process = one operation at a time)")

func (h *Handle) enter() {
	if !h.busy.CompareAndSwap(false, true) {
		panic(errBusy)
	}
	// Publish the walk floor BEFORE any trace read (sequentially
	// consistent store): reclamation reads it to prove quiescence.
	h.floor.Store(h.viewIdx)
}

func (h *Handle) exit() {
	h.floor.Store(^uint64(0))
	h.busy.Store(false)
}

// Update executes the update operation (code, args) through the
// order/persist/linearize pipeline (paper Listing 3). It returns the
// operation's return value and its unique id (usable with
// Report.WasLinearized after a crash). The call issues exactly one
// persistent fence (plus, every CompactEvery updates, the compaction
// snapshot's fence).
//
//onll:hotpath
func (h *Handle) Update(code uint64, args ...uint64) (ret, id uint64, err error) {
	if qerr := h.in.quarErr(); qerr != nil {
		return 0, 0, qerr
	}
	h.enter()
	defer h.exit()
	h.seq++
	op := spec.Op{Code: code, ID: spec.MakeID(h.pid, h.seq)}
	copy(op.Args[:], args)

	in := h.in
	// Order: fix the linearization order by appending to the trace.
	// The CAS inside is a concurrency fence but no NVM write-back is
	// pending, so it is not a persistent fence (paper footnote 2).
	node := h.newNode(op)
	in.tr.Insert(h.pid, node)
	in.gate.Step(h.pid, PointOrdered)

	// Persist: this operation plus the fuzzy window before it (helping
	// delayed processes), one log append, ONE persistent fence. The
	// scratch buffer is safe to reuse: Append copies the ops into NVM
	// and retains nothing. The record is assembled against the log's
	// inline budget transparently — a window deeper than
	// Config.LogInlineOps spills to the log's overflow ring inside the
	// same single-fence append.
	h.fuzzyBuf = trace.GetFuzzyOpsInto(h.fuzzyBuf, in.gate, h.pid, node)
	fuzzy := h.fuzzyBuf
	if in.cfg.UnsafeNoHelping {
		// ABLATION (E13): persist only our own operation.
		fuzzy = []spec.Op{op} //onll:allocok(E13 ablation branch only; the production path reuses fuzzyBuf)
	}
	if in.cfg.UnsafeLinearizeFirst {
		// ABLATION (E13): linearize before persisting — the ordering
		// Section 3.1 proves unsound. Readers can now expose this op
		// before it is durable.
		in.tr.SetAvailable(h.pid, node)
	}
	if _, err = in.logs[h.pid].Append(fuzzy, node.Idx()); err != nil {
		// The overflow ring is sized at a fraction of the worst case, so
		// a burst of deep fuzzy windows can exhaust it long before the
		// slot ring fills. persistWithValve escalates: compact behind
		// the view, catch the view up and compact deeper, grow the ring
		// — and only then fails with a typed ErrLogPressure (valve.go).
		if err = h.persistWithValve(fuzzy, node, err); err != nil {
			return 0, op.ID, fmt.Errorf("core: persist stage: %w", err)
		}
	}
	in.gate.Step(h.pid, PointPersisted)

	// Linearize: make the operation visible to readers.
	if !in.cfg.UnsafeLinearizeFirst {
		in.tr.SetAvailable(h.pid, node)
	}

	// Compute the return value on the state up to and including node.
	// seenEpoch is deliberately NOT refreshed here, so the handle's next
	// read revalidates with a walk: computeUpdate advances the view only
	// to OUR node, while an epoch loaded now also covers concurrently
	// published nodes with HIGHER indices (ordered after us, linearized
	// before us) that the view does not reflect — recording it would let
	// the next fast read miss an operation that completed before it.
	// Read's epoch is safe precisely because its walk reaches the latest
	// available node from the tail, not a fixed one.
	ret = h.computeUpdate(node)

	// Offer the freshly caught-up view to the shared slot (damped): the
	// updater just paid the replay to its own node anyway, and under
	// frontier-chasing churn this — not the rare long read catch-up —
	// is what keeps the published view adoptably fresh.
	if in.pubs != nil && h.view != nil && !in.cfg.AdoptPolicy.DisableUpdatePublish {
		h.publishFromUpdate()
	}

	if ce := h.cutEvery(); ce > 0 {
		h.sinceCompact++
		if h.sinceCompact >= ce {
			h.sinceCompact = 0
			if cerr := h.compact(node); cerr != nil {
				err = fmt.Errorf("core: compaction: %w", cerr)
			}
		}
	}
	in.gate.Step(h.pid, PointReturn)
	return ret, op.ID, err
}

// Read executes the read-only operation (code, args) (paper Listing 4).
// It issues no persistent fence and writes nothing shared.
//
// With Config.ReadFastPath, the epoch check happens before the walk
// floor is published: the fast path dereferences no trace node, so it
// needs no reclamation cover, and a fast read costs one epoch load plus
// the view read. The floor store is deferred to the slow path, which is
// the only one that walks.
//
//onll:hotpath
func (h *Handle) Read(code uint64, args ...uint64) uint64 {
	if qerr := h.in.quarErr(); qerr != nil {
		// Read's signature predates quarantine and cannot return an
		// error; callers that must survive a quarantined object use
		// TryRead (health.go).
		panic(qerr)
	}
	if !h.busy.CompareAndSwap(false, true) {
		panic(errBusy)
	}
	defer h.busy.Store(false)
	op := spec.Op{Code: code}
	copy(op.Args[:], args)
	in := h.in
	fast := in.cfg.ReadFastPath && h.view != nil
	var epoch uint64
	if fast {
		// Load the epoch BEFORE the tail read below: any operation
		// whose publication the loaded value covers already has its
		// available flag set, so the walk is guaranteed to reach a node
		// at or above it — recording this value after the walk is what
		// makes the next epoch match proof of an up-to-date view.
		epoch = in.tr.Epoch(h.pid)
		if epoch == h.seenEpoch {
			ret := h.view.Read(op)
			in.gate.Step(h.pid, PointReturn)
			return ret
		}
		// The handle's own view is stale, but the shared slot may have
		// been validated against this very epoch by another handle's
		// read — then the slot IS the latest available prefix and this
		// read needs no walk at all (fastpath.go).
		if ret, ok := h.tryServeSlot(epoch, op); ok {
			in.gate.Step(h.pid, PointReturn)
			return ret
		}
	}
	// Publish the walk floor BEFORE any trace read (sequentially
	// consistent store): reclamation reads it to prove quiescence.
	oldFloor := h.viewIdx
	h.floor.Store(oldFloor)
	defer h.floor.Store(^uint64(0))
	node := trace.LatestAvailableFrom(in.gate, h.pid, in.tr.Tail(h.pid))
	ret := h.computeRead(node, op)
	if fast {
		h.seenEpoch = epoch
		// Share the validation: stamp (and, if cheap, advance) the
		// shared slot against the epoch this walk just validated, so
		// the other handles' next reads can be served from the slot
		// instead of each replaying the same suffix privately.
		h.tryStampSlot(epoch, node, oldFloor)
	}
	in.gate.Step(h.pid, PointReturn)
	return ret
}

// computeUpdate returns node.Op's value on the prefix ending at node,
// advancing the local view when enabled.
//
//onll:hotpath
func (h *Handle) computeUpdate(node *trace.Node) uint64 {
	if h.view != nil && h.viewIdx < node.Idx() {
		return h.advanceView(node, true)
	}
	// Fresh replay (no local views, or — defensively — a view that has
	// somehow moved past node).
	st := h.in.sp.New()
	nodes, base := trace.CollectBackInto(h.nodeBuf, node, 0)
	h.nodeBuf = nodes
	if base != nil {
		if err := st.Restore(base.Snap); err != nil {
			panic(fmt.Sprintf("core: corrupt base snapshot: %v", err))
		}
	}
	ret := spec.RetOK
	for _, n := range nodes {
		ret = st.Apply(n.Op)
	}
	return ret
}

// computeRead returns op's value on the prefix ending at node.
//
//onll:hotpath
func (h *Handle) computeRead(node *trace.Node, op spec.Op) uint64 {
	if h.view != nil {
		if h.viewIdx < node.Idx() {
			h.advanceView(node, false)
		}
		// If viewIdx > node.Idx(), the view already reflects
		// operations this process has itself observed as linearized;
		// serving the read from it is still linearizable (the read
		// linearizes after them).
		return h.view.Read(op)
	}
	st := h.in.sp.New()
	nodes, base := trace.CollectBackInto(h.nodeBuf, node, 0)
	h.nodeBuf = nodes
	if base != nil {
		if err := st.Restore(base.Snap); err != nil {
			panic(fmt.Sprintf("core: corrupt base snapshot: %v", err))
		}
	}
	for _, n := range nodes {
		st.Apply(n.Op)
	}
	return st.Read(op)
}

// advanceView applies the operations between the view and node to the
// local view and returns the value of the last one applied (node's own
// operation). If the walk meets a compaction base newer than the view,
// the view is restored from the base first. With the read fast path
// enabled, a handle lagging beyond the adoption threshold (cost-aware
// by default, adoptpolicy.go) first tries to adopt the instance's
// published view (cutting the replay to the distance from the
// publication point), and a handle that just finished a long catch-up
// publishes its view so the next laggard can adopt it. When the cost
// model is live, the apply loop is timed — gate steps never fall
// inside the timed region, so deterministic schedulers cannot inflate
// the samples — feeding the per-node replay cost estimate.
//
// forUpdate distinguishes the two callers: an update must end with
// node's own operation applied by this handle (its return value is the
// update's), so adoption stays strictly below node; a read only needs
// the view AT node, so it may adopt a publication sitting exactly
// there — under frontier-chasing churn the slot is almost always
// published at the latest available node, and the strict bound would
// turn the fast path off for exactly the reads it should relieve.
//
//onll:hotpath
func (h *Handle) advanceView(node *trace.Node, forUpdate bool) uint64 {
	if h.in.pubs != nil {
		if lag := node.DistanceFrom(h.viewIdx); lag > 0 {
			if thr := h.adoptThreshold(); lag > thr {
				maxIdx := node.Idx()
				if forUpdate {
					maxIdx--
				}
				h.tryAdopt(node, thr, maxIdx)
			}
		}
	}
	nodes, base := trace.CollectBackInto(h.nodeBuf, node, h.viewIdx)
	h.nodeBuf = nodes
	if base != nil && base.Idx() > h.viewIdx {
		if err := h.view.Restore(base.Snap); err != nil {
			panic(fmt.Sprintf("core: corrupt base snapshot: %v", err))
		}
		h.viewIdx = base.Idx()
		mergeSeqs(h.viewSeqs, base.Seqs)
	}
	var walkStart time.Time
	sample := h.in.costs != nil && len(nodes) >= costSampleMinNodes
	if sample {
		walkStart = time.Now() //onll:clockok(cost-model walk probe: only walks of costSampleMinNodes+ nodes are timed)
	}
	ret := spec.RetOK
	for _, n := range nodes {
		ret = h.view.Apply(n.Op)
		h.viewIdx = n.Idx()
		if pid, seq := spec.SplitID(n.Op.ID); pid >= 0 && pid < len(h.viewSeqs) && seq > h.viewSeqs[pid] {
			h.viewSeqs[pid] = seq
		}
	}
	if sample {
		h.in.costs.observeWalk(len(nodes), time.Since(walkStart)) //onll:clockok(cost-model walk probe)
	}
	if h.in.pubs != nil && len(nodes) > publishMinLag {
		h.tryPublish()
	}
	return ret
}

// adoptThreshold returns the minimum published-view lead (in trace
// nodes) for adoption to be attempted: the configured fixed constant,
// or the instance cost model's current estimate.
//
//onll:hotpath
func (h *Handle) adoptThreshold() uint64 {
	if fl := h.in.cfg.AdoptPolicy.FixedMinLag; fl > 0 {
		return uint64(fl)
	}
	return h.in.costs.threshold(h.view)
}

// newNode returns a trace node for op, reusing a pooled node when the
// freelist has one: steady-state updates under compaction allocate
// nothing.
//
//onll:hotpath
func (h *Handle) newNode(op spec.Op) *trace.Node {
	if n := len(h.freeNodes); n > 0 {
		nd := h.freeNodes[n-1]
		h.freeNodes[n-1] = nil
		h.freeNodes = h.freeNodes[:n-1]
		nd.Reinit(op)
		return nd
	}
	return trace.NewNode(op)
}

// reclaim feeds the node pool after a compaction cut: old is the head of
// the trace segment the cut just made unreachable (the cut node's
// predecessor chain). The walk claims each update node with a CAS and
// stops at the first claim failure or non-update node, so two cuts
// racing over a not-yet-severed boundary partition the dead nodes
// cleanly — every earlier cut severed its own chain with a base node,
// which also terminates the walk.
//
// Claimed nodes wait in retired until provably quiescent, on two
// conditions checked at promotion time:
//
//  1. Floors. A node at index i is promoted only when i + NProcs < the
//     minimum published walk floor across handles (see the floor
//     field): mid-op handles block promotion of anything an ordinary
//     trace walk of theirs could still dereference.
//  2. Claim guards. Claim walks themselves can descend far below the
//     walker's own floor (a cutter that read a neighbour's cut-node
//     next pointer just before that neighbour's SetNextBase landed
//     walks into the neighbour's segment). Such a walker holds chain
//     pointers the floors do not cover, so each handle publishes a
//     claiming flag for the duration of its walk and promotion is
//     skipped entirely while any flag is up. A racing walker either
//     finished before the promotion check (its claim CAS already
//     failed against the claimed flag) or its guard is visible and
//     blocks the promotion — with sequentially consistent atomics
//     there is no third interleaving.
//
// Promotion being skipped is only a deferral: the nodes stay in
// retired and are re-examined at the next compaction (bounded by
// maxFreeNodes; beyond it they fall to the GC — pooling is an
// optimization, never a leak).
func (h *Handle) reclaim(old *trace.Node) {
	h.claiming.Store(true)
	for cur := old; cur != nil; {
		if !cur.TryClaim() {
			break // another cutter owns the rest of this segment
		}
		if cur.Kind != trace.KindUpdate {
			break // base or sentinel: never pooled
		}
		h.retired = append(h.retired, cur)
		cur = cur.Next()
	}
	h.claiming.Store(false)

	minFloor := ^uint64(0)
	for _, other := range h.in.hands {
		if other != h && other.claiming.Load() {
			h.capRetired()
			return // an in-flight claim walk may hold uncovered pointers
		}
		if f := other.floor.Load(); f < minFloor {
			minFloor = f
		}
	}
	slack := uint64(h.in.cfg.NProcs)
	var limit uint64
	if minFloor > slack {
		limit = minFloor - slack
	}
	kept := h.retired[:0]
	for _, n := range h.retired {
		switch {
		case n.Idx() >= limit:
			kept = append(kept, n) // possibly still walkable: retry later
		case len(h.freeNodes) < maxFreeNodes:
			h.freeNodes = append(h.freeNodes, n)
		}
		// else: freelist full, drop to GC.
	}
	for i := len(kept); i < len(h.retired); i++ {
		h.retired[i] = nil
	}
	h.retired = kept
	h.capRetired()
}

// capRetired bounds the deferred-promotion backlog: claimed nodes past
// the cap are dropped to the garbage collector (they were claimed, so
// no other handle will ever pool them — they are simply garbage).
func (h *Handle) capRetired() {
	if len(h.retired) <= maxFreeNodes {
		return
	}
	drop := len(h.retired) - maxFreeNodes
	kept := h.retired[:0]
	kept = append(kept, h.retired[drop:]...)
	for i := len(kept); i < len(h.retired); i++ {
		h.retired[i] = nil
	}
	h.retired = kept
}

// mergeSeqs raises dst entries to at least src's.
func mergeSeqs(dst, src []uint64) {
	for i := range dst {
		if i < len(src) && src[i] > dst[i] {
			dst[i] = src[i]
		}
	}
}

// Snapshot payload layout on the persistent log: the covered-sequence
// vector (detectability across compaction) followed by the object state.
func snapEncode(seqs, state []uint64) []uint64 {
	out := make([]uint64, 0, 1+len(seqs)+len(state))
	out = append(out, uint64(len(seqs)))
	out = append(out, seqs...)
	return append(out, state...)
}

func snapDecode(words []uint64) (seqs, state []uint64, err error) {
	if len(words) < 1 {
		return nil, nil, errors.New("core: empty snapshot payload")
	}
	n := int(words[0])
	if n < 0 || n > MaxProcs || 1+n > len(words) {
		return nil, nil, fmt.Errorf("core: corrupt snapshot header %d", words[0])
	}
	return words[1 : 1+n], words[1+n:], nil
}

// compact implements the Section 8 reclamation scheme after the update
// that created node: durably snapshot the state at s = node.Idx() (one
// snapshot record, one persistent fence), truncate every earlier record
// of this process's log (the snapshot covers them), and cut the trace by
// linking node to a base node at index s, so the old prefix becomes
// unreachable for new walkers and is garbage-collected. Recovery ignores
// logged operations with indices <= the newest snapshot index, so other
// processes' still-live records of old operations are harmless.
func (h *Handle) compact(node *trace.Node) error {
	s := node.Idx()
	if h.viewIdx != s {
		return fmt.Errorf("core: compact view at %d, node at %d", h.viewIdx, s)
	}
	var snap, seqs []uint64
	var err error
	if h.in.cfg.DeltaSnapshots {
		// Delta cuts truncate the log but do NOT cut the trace: the
		// window they cover must stay walkable for the next delta, and
		// recovery reaches the chain through body back-references. The
		// trace is cut only on base/collapse cuts below.
		done, foreign, derr := h.tryDeltaCut(node)
		if done || derr != nil {
			return derr
		}
		snap, seqs, err = h.chainBaseAndTruncate(s)
		if err != nil {
			return err
		}
		if foreign {
			// This base was forced by a sentinel another handle
			// spliced inside our window, so the trace was already cut
			// (and bounded) at that sentinel moments ago. Splicing our
			// own sentinel here would land inside THAT handle's next
			// window and force it to collapse too — with two or more
			// cutters the induced bases ping-pong forever and no delta
			// ever lands. Leave the trace alone; the next clean-window
			// base (oversize or scheduled collapse) splices as usual.
			return nil
		}
	} else {
		snap, seqs, err = h.snapshotAndTruncate(s)
	}
	if err != nil {
		return err
	}
	old := node.Next()
	base := trace.NewBase(s, snap, seqs)
	node.SetNextBase(base)
	h.reclaim(old)
	if h.in.pubs != nil {
		// The compacting handle is exactly caught up at s; publishing
		// here gives laggards (whose walks now stop at the new base
		// anyway) a state to adopt without deserializing the snapshot.
		h.tryPublish()
	}
	return nil
}

// compactForSpace is the overflow-ring pressure valve, called from the
// persist stage when plog reports ErrOvfFull: it durably snapshots the
// local view at its current index and truncates every earlier record
// of this process's log, freeing the records' overflow chunks so the
// in-flight append can retry. Every operation at or below the view
// index is already durable (the previous update's fence covered its
// whole fuzzy window), so the snapshot is a valid recovery base — this
// is exactly compact's log half. Unlike compact it does NOT cut the
// trace: the in-flight operation (node, ordered but not yet available)
// is only used to reach the delta window; the trace must stay intact
// for readers and walkers. Costs two extra persistent fences (snapshot
// + truncate), only on the exhaustion path.
//
// Under DeltaSnapshots the valve prefers a delta cut — O(churn) where
// the full snapshot is O(state) — and falls back to a collapsing base
// cut when the chain cannot absorb one. A view still sitting at the
// chain head has nothing new to cover; that is reported as an error so
// the valve ladder's catch-up rung advances the view first.
func (h *Handle) compactForSpace(node *trace.Node) error {
	if h.view == nil {
		return errors.New("core: overflow ring full and no local view to compact from")
	}
	if h.viewIdx == 0 || h.in.logs[h.pid].Len() == 0 {
		return errors.New("core: overflow ring full with nothing to compact")
	}
	if !h.in.cfg.DeltaSnapshots {
		_, _, err := h.snapshotAndTruncate(h.viewIdx)
		return err
	}
	log := h.in.logs[h.pid]
	if log.ChainLen() > 0 && h.viewIdx > log.ChainHead() && !h.shouldCollapse(log) {
		if err := h.valveDeltaCut(log, node); err == nil {
			h.in.cmpValveDeltas.Add(1)
			return nil
		}
		// Any delta failure (oversize, foreign base, log geometry) falls
		// through to the collapsing base cut: strictly more coverage.
	}
	if log.ChainLen() > 0 && h.viewIdx == log.ChainHead() && log.Len() <= 1 {
		return fmt.Errorf("core: view at %d already covered by the delta chain head", h.viewIdx)
	}
	_, _, err := h.chainBaseAndTruncate(h.viewIdx)
	return err
}

// snapshotAndTruncate durably appends a snapshot of the local view
// (state + covered-sequence vector) at execution index idx and
// truncates every earlier record of this process's log — the log half
// of compaction, shared by the regular cadence (compact) and the
// overflow pressure valve (compactForSpace). It returns the snapshot
// body and sequence vector for callers that also cut the trace.
func (h *Handle) snapshotAndTruncate(idx uint64) (snap, seqs []uint64, err error) {
	snap = h.view.Snapshot()
	seqs = append([]uint64(nil), h.viewSeqs...)
	log := h.in.logs[h.pid]
	seq, err := log.AppendSnapshot(snapEncode(seqs, snap), idx)
	if err != nil {
		return nil, nil, err
	}
	if seq > 1 {
		if err := log.Truncate(seq - 1); err != nil {
			return nil, nil, err
		}
	}
	return snap, seqs, nil
}

// ---------------------------------------------------------------------
// Recovery (paper Listing 5 + Section 8 snapshots).
// ---------------------------------------------------------------------

// Report describes what recovery found: which operations were linearized
// before the crash (detectable execution) and where the rebuilt trace
// starts and ends.
type Report struct {
	// Linearized maps operation id -> execution index for every update
	// linearized before the crash and visible after it.
	Linearized map[uint64]uint64
	// Ordered is the recovered update sequence (indices BaseIdx+1..
	// LastIdx), oldest first.
	Ordered []spec.Op
	// BaseIdx is the snapshot index recovery restarted from (0 = none).
	BaseIdx uint64
	// BaseState is the decoded snapshot state at BaseIdx (nil if none).
	BaseState []uint64
	// CoveredSeq maps process id -> highest op sequence number folded
	// into the recovered snapshot: every op of that process with a
	// sequence number at or below it was linearized before the crash,
	// even though its individual record was compacted away.
	CoveredSeq map[int]uint64
	// LastIdx is the execution index of the newest recovered operation.
	LastIdx uint64
	// PerProcessSeq records the highest per-process op sequence number
	// seen, so replacement processes do not reuse ids.
	PerProcessSeq map[int]uint64
	// Salvage details what salvaging recovery found (nil in strict
	// mode): per-process salvage counters, the health classification,
	// and the full loss evidence (health.go).
	Salvage *SalvageReport
}

// WasLinearized implements detectable execution: after recovery it
// reports whether the update with the given id took effect before the
// crash, and at which execution index. Operations absorbed into a
// compaction snapshot are reported as linearized with index 0 (their
// individual position was compacted away but is at most BaseIdx).
func (r *Report) WasLinearized(id uint64) (idx uint64, ok bool) {
	if idx, ok = r.Linearized[id]; ok {
		return idx, true
	}
	if pid, seq := spec.SplitID(id); pid >= 0 && seq > 0 && seq <= r.CoveredSeq[pid] {
		return 0, true
	}
	return 0, false
}

// Recover rebuilds the object from the durable contents of pool after a
// crash, per Listing 5: it restores the newest valid snapshot (if any),
// then stitches together the operation sequence from all per-process
// logs, inserting each found operation into a fresh execution trace with
// its available flag set. The returned instance is ready for new
// operations; its processes are the crash survivors' replacements.
//
// With cfg.Salvage, structures that fail validation no longer abort
// recovery: each log contributes its longest valid prefix plus any
// checksummed records stranded beyond damage (orphans — helping usually
// re-persisted the missing operations in another log, bridging the
// gap), and the instance comes back Healthy, Degraded, or Quarantined
// (health.go); Report.Salvage details what was found. Quarantined
// instances still carry the best-effort prefix for inspection and
// Recreate.
func Recover(pool *pmem.Pool, sp spec.Spec, cfg Config) (*Instance, *Report, error) {
	rb := cfg.RootBase
	if rb < 0 || rb+rootLogBase >= pmem.RootSlots {
		return nil, nil, fmt.Errorf("core: RootBase %d out of range", rb)
	}
	if pool.Root(rb+rootMagicSlot) != rootMagic {
		return nil, nil, errors.New("core: pool has no ONLL root (not initialized?)")
	}
	nprocs := int(pool.Root(rb + rootNProcsSlot))
	if nprocs < 1 || nprocs > MaxProcs || rb+rootLogBase+nprocs > pmem.RootSlots {
		return nil, nil, fmt.Errorf("core: implausible recovered NProcs %d", nprocs)
	}
	if cfg.NProcs == 0 {
		cfg.NProcs = nprocs
	}
	if cfg.NProcs != nprocs {
		return nil, nil, fmt.Errorf("core: configured NProcs %d != recovered %d", cfg.NProcs, nprocs)
	}
	if err := cfg.fill(); err != nil {
		return nil, nil, err
	}

	in := &Instance{cfg: cfg, sp: sp, pool: pool, gate: cfg.Gate}
	if err := claimRoots(pool, &cfg); err != nil {
		return nil, nil, err
	}
	in.initFastPath()
	var (
		records  []plog.Record
		cands    []baseCand // compaction records recovery may restart from
		salv     *SalvageReport
		evidence []error // loss evidence: any entry quarantines
		damaged  bool    // non-benign damage seen (degraded unless loss)
	)
	collect := func(pid int, l *plog.Log, recs []plog.Record) {
		records = append(records, recs...)
		for _, r := range recs {
			if r.Kind == plog.KindSnapshot || r.Kind == plog.KindDelta {
				cands = append(cands, baseCand{pid: pid, log: l, rec: r})
			}
		}
	}
	if cfg.Salvage {
		salv = &SalvageReport{PerPid: make([]PidSalvage, nprocs)}
	}
	for pid := 0; pid < nprocs; pid++ {
		base := pmem.Addr(pool.Root(rb + rootLogBase + pid))
		l, err := plog.Open(pool, pid, base)
		if err != nil {
			if !cfg.Salvage {
				return nil, nil, fmt.Errorf("core: reopening log of p%d: %w", pid, err)
			}
			// The whole log is unreadable. Its process's un-helped
			// operations are gone: loss evidence.
			salv.PerPid[pid].OpenErr = err
			evidence = append(evidence, fmt.Errorf("%w: log of p%d: %v", ErrBadSlotHeader, pid, err))
			in.logs = append(in.logs, nil)
			continue
		}
		in.logs = append(in.logs, l)
		var live []plog.Record
		if cfg.Salvage {
			s := l.SalvageScan()
			ps := &salv.PerPid[pid]
			ps.BadSlots, ps.Orphans, ps.TailTorn = len(s.BadSeqs), len(s.Orphans), s.TailTorn()
			collect(pid, l, s.Live)
			collect(pid, l, s.Orphans)
			if s.Damaged() {
				damaged = true
			}
			live = s.Live
		} else {
			live = l.Records()
			collect(pid, l, live)
		}
		// Truncation-coverage invariant: headSeq > 0 means compaction
		// truncated records, and compaction always leaves its covering
		// record — a snapshot, or a delta-chain record whose chain must
		// still resolve — as the oldest live record (the covering
		// append is fenced before the truncate is, so every crash-legal
		// image satisfies this). A violated invariant means the
		// coverage, and everything it covered, is gone: silent loss,
		// fatal in strict mode and quarantine evidence under salvage.
		if l.HeadSeq() > 0 {
			covered := false
			if len(live) > 0 && live[0].Seq == l.HeadSeq()+1 {
				switch live[0].Kind {
				case plog.KindSnapshot:
					covered = true
				case plog.KindDelta:
					_, rerr := l.ResolveChain(live[0])
					covered = rerr == nil
				}
			}
			if !covered {
				cerr := fmt.Errorf(
					"%w: p%d truncated through seq %d but the covering snapshot is unreadable",
					ErrSnapshotCorrupt, pid, l.HeadSeq())
				if !cfg.Salvage {
					return nil, nil, cerr
				}
				evidence = append(evidence, cerr)
			}
		}
	}

	rep := &Report{
		Linearized: map[uint64]uint64{}, PerProcessSeq: map[int]uint64{},
		CoveredSeq: map[int]uint64{}, Salvage: salv,
	}

	// Newest valid compaction record wins: a plain full snapshot, or
	// the head of a delta chain folded back into a full state
	// (foldBaseCandidate, deltacompact.go). Candidates are tried
	// newest-first; one that does not fold — an unresolvable chain, an
	// undecodable payload, a corrupt diff — is unreconstructible
	// coverage: fatal in strict mode, loss evidence plus the next
	// candidate under salvage.
	sort.Slice(cands, func(i, j int) bool { return cands[i].rec.ExecIdx > cands[j].rec.ExecIdx })
	var baseSeqs []uint64
	for _, c := range cands {
		seqs, state, err := foldBaseCandidate(sp, c.log, c.rec)
		if err != nil {
			err = fmt.Errorf("%w: p%d at index %d: %v", ErrSnapshotCorrupt, c.pid, c.rec.ExecIdx, err)
			if !cfg.Salvage {
				return nil, nil, err
			}
			evidence = append(evidence, err)
			continue
		}
		rep.BaseIdx, rep.BaseState, baseSeqs = c.rec.ExecIdx, state, seqs
		break
	}
	for pid, seq := range baseSeqs {
		if seq > 0 {
			rep.CoveredSeq[pid] = seq
			if seq > rep.PerProcessSeq[pid] {
				rep.PerProcessSeq[pid] = seq
			}
		}
	}

	// Union of all persisted operations, by execution index. Helping
	// means the same (index, op) pair may appear in several logs; the
	// pairs agree by construction (cross-checked here).
	byIdx := map[uint64]spec.Op{}
	for _, rec := range records {
		if rec.Kind != plog.KindOps {
			continue
		}
		for k, op := range rec.Ops {
			idx := rec.ExecIdx - uint64(k)
			if idx <= rep.BaseIdx {
				continue
			}
			if prev, dup := byIdx[idx]; dup && prev != op {
				if !cfg.Salvage {
					return nil, nil, fmt.Errorf("core: logs disagree at index %d: %v vs %v", idx, prev, op)
				}
				// Two checksummed records disagree about an index:
				// impossible in a crash-only execution, so one of them
				// is silent media damage we cannot tell apart.
				evidence = append(evidence, fmt.Errorf("%w: logs disagree at index %d", ErrTornRecord, idx))
				continue
			}
			byIdx[idx] = op
		}
	}

	// Listing 5: walk indices upward from the base; the first gap ends
	// the recoverable prefix (Proposition 5.10 shows no gap can precede
	// a persisted operation).
	var ordered []spec.Op
	i := rep.BaseIdx + 1
	for {
		op, ok := byIdx[i]
		if !ok {
			break
		}
		ordered = append(ordered, op)
		i++
	}
	rep.LastIdx = rep.BaseIdx + uint64(len(ordered))
	rep.Ordered = ordered

	if cfg.Salvage && len(byIdx) > len(ordered) {
		// Persisted operations stranded beyond the first gap. Proposition
		// 5.10 rules this out for crash-only executions (helping persists
		// the whole fuzzy window below every operation), so the gap is a
		// destroyed record, and the stranded operations were linearized
		// but are unrecoverable in order: loss evidence.
		evidence = append(evidence, fmt.Errorf(
			"%w: %d persisted operations stranded beyond index %d",
			ErrTornRecord, len(byIdx)-len(ordered), rep.LastIdx))
	}

	// Rebuild the trace: base (or INITIALIZE sentinel), then one
	// available node per recovered operation.
	var sentinel *trace.Node
	if rep.BaseIdx > 0 {
		sentinel = trace.NewBase(rep.BaseIdx, rep.BaseState, baseSeqs)
	}
	switch {
	case cfg.WaitFree && sentinel != nil:
		in.tr = trace.NewWaitFreeAt(cfg.Gate, nprocs, sentinel)
	case cfg.WaitFree:
		in.tr = trace.NewWaitFree(cfg.Gate, nprocs)
	case sentinel != nil:
		in.tr = trace.NewLockFreeAt(cfg.Gate, sentinel)
	default:
		in.tr = trace.NewLockFree(cfg.Gate)
	}
	recPID := 0 // recovery runs single-threaded; pid 0 stands in
	for k, op := range ordered {
		n := trace.NewNode(op)
		in.tr.Insert(recPID, n)
		in.tr.SetAvailable(recPID, n)
		idx := rep.BaseIdx + 1 + uint64(k)
		if n.Idx() != idx {
			return nil, nil, fmt.Errorf("core: recovery trace index skew: %d != %d", n.Idx(), idx)
		}
		rep.Linearized[op.ID] = idx
		if pid, seq := spec.SplitID(op.ID); pid >= 0 && seq > rep.PerProcessSeq[pid] {
			rep.PerProcessSeq[pid] = seq
		}
	}

	in.makeHandles(rep.PerProcessSeq)
	if cfg.Salvage {
		in.classifySalvage(rep, evidence, damaged)
	}
	return in, rep, nil
}
