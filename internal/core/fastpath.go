package core

// The read fast path (Config.ReadFastPath, DESIGN.md §3.5–3.6) has two
// halves. The epoch check lives in Read/advanceView in core.go: the
// trace bumps a publication epoch on every linearize stage, and a read
// whose handle has already validated its view against the current epoch
// skips the trace walk entirely. This file holds the second half, the
// shared latest-view slot: a single per-instance publication of (state,
// execution index, covered-sequence vector) that cold or lagging
// handles copy instead of replaying a long trace suffix node by node.
//
// The slot is guarded seqlock-style by one version counter: even means
// free, odd means a publisher or adopter is inside. Both sides acquire
// it with a single CAS and NEVER wait — on contention they simply fall
// back to the ordinary suffix walk, which is always correct. Because
// adopters hold the (odd) version for the duration of their copy, a
// copy can never race a publisher's overwrite, keeping the protocol
// race-detector-clean while preserving the seqlock shape: the version
// recheck built into the CAS acquire is what rejects mid-copy access.
// Adopters copy into a handle-private scratch state and swap it with
// the view only after a successful copy, so a failed acquisition never
// leaves a torn view behind.
//
// The slot is fed from three sides: updaters that just caught their
// view up in computeUpdate (damped by publishFromUpdate, so the slot
// tracks the insert frontier under churn), readers that paid for a
// long catch-up walk, and compaction (which is exactly caught up at
// the cut). Adoption is gated by the cost model in adoptpolicy.go.
//
// Compaction safety: the slot holds a value copy of a state plus an
// execution index — never a node pointer — so a compaction cut (or the
// compactForSpace pressure valve, which truncates logs without cutting
// the trace) can never leave it dangling into recycled nodes. A
// publication older than a later cut's base is merely useless, not
// unsafe: an adopter that takes it walks the remaining suffix, meets
// the (younger, available) base first, and restores from the base,
// discarding the adopted prefix — TestAdoptionAcrossCompactionCut pins
// this interleaving deterministically. compact republishes at the cut
// index anyway, so the stale window is one slot write wide.

import (
	"time"

	"sync/atomic"

	"repro/internal/spec"
	"repro/internal/trace"
)

// epochNever marks a handle whose view has not been validated against
// any trace epoch (fresh or freshly recovered); the first read always
// takes the walk. Publication epochs count up from zero and cannot
// reach it.
const epochNever = ^uint64(0)

// publishMinLag is the minimum number of nodes an advanceView must
// have replayed before it publishes its view from the read side: a
// handle that just paid for a long catch-up shares the result, handles
// ticking along one node at a time never pay the publication copy.
// (Updaters publish through the publishFromUpdate damper instead.)
const publishMinLag = 32

// pubView is the instance's shared latest-view slot.
type pubView struct {
	// ver is the seqlock version: even = free, odd = held. Publishers
	// and adopters both acquire with one CAS and fall back (no retry,
	// no spin) on failure.
	ver atomic.Uint64
	// frontier mirrors idx outside the slot: publishers store it while
	// holding ver, anyone may load it without acquiring. It exists so
	// the update-side publication damper (and tests) can read how far
	// the slot lags without touching the CAS.
	frontier atomic.Uint64
	// epochHint mirrors epoch outside the slot (stored by stampers
	// while holding ver): tryServeSlot pre-checks it with a plain load
	// so the can't-serve case — every read while the slot's stamp is
	// stale, i.e. most reads of a write-heavy mix — costs no RMW on the
	// shared line. The authoritative comparison still happens under the
	// slot; the hint can only cause a harmless miss.
	epochHint atomic.Uint64
	// publishes counts successful publications, stamps epoch-validated
	// slot advances, serves reads answered straight from the slot
	// (diagnostics/tests).
	publishes atomic.Uint64
	stamps    atomic.Uint64
	serves    atomic.Uint64
	// The payload below is written and read only while holding ver.
	state spec.State
	idx   uint64
	seqs  []uint64
	// Demand damper for stamp-time slot advances: advancing the slot
	// re-applies every missed operation into the shared state, work
	// that only pays while other handles are consuming served reads.
	// servesSeen is the serves count at the last advance; probe counts
	// stamps skipped since. When serves stop moving, advances stop too
	// (stamping a slot that is already caught up stays free), with one
	// probe advance per slotProbeEvery skips so a demand shift is
	// noticed.
	servesSeen uint64
	probe      uint32
	// epoch is the publication epoch the slot state is validated
	// against: a value loaded BEFORE the walk (or incremental advance)
	// that brought the state to idx, exactly the per-handle seenEpoch
	// rule lifted to the shared view. While Epoch() still equals it, no
	// operation has been published since, so the slot state IS the
	// latest available prefix and a read may be served from it without
	// touching the trace (tryServeSlot). Meaningful only while state is
	// non-nil; it only ever increases.
	epoch uint64
}

// reset returns the slot to its initial free state, dropping any
// publication. New and Recover call it for every instance (via
// makeHandles) so a slot can never be BORN held: within a run a holder
// killed between acquire and release (a crash gate firing at
// PointSlotCopy) leaves the version odd and merely disables the
// optimization until the crash completes — contenders never wait on
// the slot — but recovery must not inherit that dead lock, and the
// recovered trace's indices restart relative to a new base anyway.
// check's TestSlotHolderCrashRecovery pins adoptions > 0 after exactly
// that crash.
func (p *pubView) reset() {
	p.state = nil
	p.idx = 0
	p.seqs = nil
	p.epoch = 0
	p.servesSeen = 0
	p.probe = 0
	p.epochHint.Store(0)
	p.frontier.Store(0)
	p.ver.Store(0)
}

// tryAcquire takes the slot if it is free, returning the even version
// to pass to release. It never blocks.
func (p *pubView) tryAcquire() (uint64, bool) {
	v := p.ver.Load()
	if v&1 != 0 || !p.ver.CompareAndSwap(v, v+1) {
		return 0, false
	}
	return v, true
}

// release frees the slot, advancing the version past v+1.
func (p *pubView) release(v uint64) { p.ver.Store(v + 2) }

// publishFromUpdate offers the updater's freshly caught-up view to the
// shared slot at the end of an update: computeUpdate just advanced the
// view to the update's own node, so the handle holds — for free — the
// very state a lagging reader wants, and publishing here is what makes
// the slot track the insert frontier under churn instead of only
// benefiting from rare long read-side catch-ups. The damper is one
// atomic load: publish only when the slot trails this view by at least
// the damper's node count, so a storm of hot updaters touches the slot
// CAS (and pays the state copy) at most once per that many frontier
// advances instead of serializing on every update. The damper is
// AdoptPolicy.PublishLag when pinned; the adaptive default scales with
// the adoption threshold (see publishCostFactor), bottoming out at
// defaultPublishLag.
func (h *Handle) publishFromUpdate() {
	p := h.in.pub
	front := p.frontier.Load()
	if h.viewIdx <= front {
		return
	}
	damper := uint64(h.in.cfg.AdoptPolicy.PublishLag)
	if damper == 0 {
		damper = defaultPublishLag
		if h.in.costs != nil {
			if d := publishCostFactor * h.in.costs.threshold(h.view); d > damper {
				damper = d
			}
		}
	}
	if h.viewIdx-front < damper {
		return
	}
	h.tryPublish()
}

// tryPublish offers the handle's current view to the shared slot. It
// only ever moves the publication forward (a stale view never replaces
// a newer one) and skips silently on contention.
//
// Both tryPublish and tryAdopt announce gate points before acquiring
// the slot and again while holding it, so deterministic schedulers can
// preempt — or crash-inject — between the acquire and the copy.
// Suspending (or killing) a holder at a gate blocks nobody: contenders
// fall back to the suffix walk instead of waiting. A slot left
// permanently odd by a killed process disables the optimization for
// the remainder of that run only — construction and recovery reset the
// slot (pubView.reset), so the next era starts with it free.
func (h *Handle) tryPublish() {
	h.in.gate.Step(h.pid, PointPublish)
	p := h.in.pub
	v, ok := p.tryAcquire()
	if !ok {
		return
	}
	if h.viewIdx > p.idx {
		h.installView(p)
		p.frontier.Store(p.idx)
		p.publishes.Add(1)
	}
	p.release(v)
}

// copyClock starts a timing sample only when the cost model is live
// (adaptive policy): the fixed policy must not pay two clock reads per
// slot copy.
func copyClock(c *adoptCosts) time.Time {
	if c == nil {
		return time.Time{}
	}
	return time.Now()
}

// copyPriced is the slot-copy protocol step shared by every slot-side
// state copy (publish, adopt, serve-adopt, stamp): announce
// PointSlotCopy — the caller holds the slot, so deterministic
// schedulers can preempt or crash-inject a holder here — then copy src
// into dst, feeding the cost model when it is live.
func (h *Handle) copyPriced(dst, src spec.State) {
	h.in.gate.Step(h.pid, PointSlotCopy)
	start := copyClock(h.in.costs)
	spec.Copy(dst, src)
	if h.in.costs != nil {
		h.in.costs.observeCopy(spec.SizeHint(dst), time.Since(start))
	}
}

// installView copies h's whole view into the slot payload — state
// (priced), execution index and covered-sequence vector — the shared
// tail of every full-copy publication path. The seqs vector grows
// append-style into the retained array: the slot outlives every
// publisher, so a fresh make per growth would strand the old array,
// and steady state (fixed NProcs) never allocates. Caller holds the
// slot.
func (h *Handle) installView(p *pubView) {
	if p.state == nil {
		p.state = h.in.sp.New()
	}
	h.copyPriced(p.state, h.view)
	p.idx = h.viewIdx
	p.seqs = append(p.seqs[:0], h.viewSeqs...)
}

// tryAdopt replaces the handle's view with a copy of the published one
// when that cuts the replay distance to node. The copy only pays for
// itself when it SAVES enough replay, so the published index must be
// more than minLag ahead of the view — lag to node alone is not
// profitability (a publication one node ahead would cost a full state
// copy to save a single Apply). minLag comes from the caller: the
// instance's cost model (adoptpolicy.go) or the configured fixed
// constant. The publication must also not sit past maxIdx — node.Idx()
// for reads (the view only has to REACH node; equality makes the
// remaining replay empty, the common case under churn where the slot
// tracks the frontier), node.Idx()-1 for updates (adopting node's own
// operation would lose its return value, which computeUpdate must
// produce by applying it, and break compact's caught-up-at-node
// invariant). The copy lands in the handle's scratch state and the two
// swap roles only on success, so contention (acquire failure) costs
// nothing and can never tear the live view.
func (h *Handle) tryAdopt(node *trace.Node, minLag, maxIdx uint64) {
	h.in.gate.Step(h.pid, PointAdopt)
	p := h.in.pub
	v, ok := p.tryAcquire()
	if !ok {
		return // contention: fall back to the plain suffix walk
	}
	if p.state == nil || p.idx <= h.viewIdx || p.idx-h.viewIdx <= minLag || p.idx > maxIdx {
		p.release(v)
		return
	}
	h.adoptSlot(p, v)
}

// adoptSlot completes an adoption while holding the slot: copy the
// published state into the scratch, merge the covered-sequence vector
// (published vectors are elementwise >= those of any older view —
// prefixes only grow — but merge defensively rather than assume),
// release, and only then swap scratch and view, so no failure mode can
// tear the live view. Shared by tryAdopt and tryServeSlot's adopting
// branch.
func (h *Handle) adoptSlot(p *pubView, v uint64) {
	if h.adopt == nil {
		h.adopt = h.in.sp.New()
	}
	h.copyPriced(h.adopt, p.state)
	idx := p.idx
	mergeSeqs(h.viewSeqs, p.seqs)
	p.release(v)
	h.view, h.adopt = h.adopt, h.view
	h.viewIdx = idx
	h.adoptions.Add(1)
}

// tryServeSlot answers a read through the shared slot: if the slot's
// validation epoch still equals the epoch this read loaded before
// looking at anything else, no operation has been published since the
// slot state was brought up to date, so the slot IS the latest
// available prefix — no trace walk, no per-handle replay of the
// operations every other handle already applied. This is what makes
// the fast path pay under frontier-chasing churn: a single validating
// read advances and stamps the shared state once, and the other
// handles ride it instead of each replaying the same suffix privately.
//
// Crucially, an epoch-valid slot also lets the handle VALIDATE ITS OWN
// VIEW: if the view already sits at the slot index the two are the
// same prefix and the epoch transfers for free; if the slot leads by
// more than the adoption threshold the handle adopts the slot state
// (the ordinary scratch-swap copy) and inherits the validation. Either
// way seenEpoch is recorded and the handle's NEXT read takes the plain
// own-view fast path — a served handle never gets stuck paying the
// slot CAS per read. A lead too small to be worth a copy is left to
// the walk, which is cheap at that distance and revalidates too.
//
// Monotonicity holds because the slot index only grows and serving
// requires it at or past the handle's own view (which the handle's own
// updates advance — that same check gives read-your-writes). On
// contention the caller falls back to the ordinary walk.
func (h *Handle) tryServeSlot(epoch uint64, op spec.Op) (uint64, bool) {
	p := h.in.pub
	if p.epochHint.Load() != epoch {
		return 0, false // stale stamp: no RMW, straight to the walk
	}
	h.in.gate.Step(h.pid, PointSlotRead)
	v, ok := p.tryAcquire()
	if !ok {
		return 0, false
	}
	if p.state == nil || p.epoch != epoch || p.idx < h.viewIdx {
		p.release(v)
		return 0, false
	}
	if p.idx > h.viewIdx {
		if p.idx-h.viewIdx <= h.adoptThreshold() {
			p.release(v) // cheaper to walk than to copy at this distance
			return 0, false
		}
		p.serves.Add(1)
		h.adoptSlot(p, v)
	} else {
		p.serves.Add(1)
		p.release(v)
	}
	h.seenEpoch = epoch
	return h.view.Read(op), true
}

// tryStampSlot validates the shared slot against epoch after a read's
// catch-up walk: the caller loaded epoch BEFORE the walk that advanced
// its view to node (so the view covers every operation the epoch
// covers) and oldFloor is the walk floor it published on entry (its
// view index before the walk — the reclamation cover for everything
// the walk may dereference). Three cases, cheapest first:
//
//   - the slot is already at or past the view: stamp only (the slot
//     state is a superset of the epoch's covered prefix — covered ops
//     all sit at or below the validated node);
//   - the slot is a short, cut-free, floor-covered distance behind:
//     re-walk that gap and apply the missing operations INTO the slot
//     state — one incremental advance serving every future slot read,
//     instead of one replay per handle;
//   - the gap is unbridgeable (crosses a compaction cut, dips under
//     the reclamation floor) or beyond the cost model's threshold: a
//     full copy of the view, priced exactly like an adoption.
//
// Anything else leaves the slot unstamped — readers simply keep
// falling back to the walk, the pre-stamp behaviour.
func (h *Handle) tryStampSlot(epoch uint64, node *trace.Node, oldFloor uint64) {
	if h.viewIdx < node.Idx() {
		return // defensive: the view did not reach the validated node
	}
	h.in.gate.Step(h.pid, PointPublish)
	p := h.in.pub
	v, ok := p.tryAcquire()
	if !ok {
		return
	}
	if p.state != nil && p.idx < h.viewIdx {
		// Advance only under demand (see the damper fields): if no read
		// has been served from the slot since the last advance, skip the
		// work and leave the old state — the stamp below is then a no-op
		// too (the state does not cover this epoch), which is exactly
		// the pre-stamp behaviour.
		if serves := p.serves.Load(); serves == p.servesSeen && p.probe < slotProbeEvery {
			p.probe++
			p.release(v)
			return
		}
		advanced := false
		if p.idx+1 >= oldFloor {
			// The gap's nodes all sit at or above the published walk
			// floor, so dereferencing them is covered by the same
			// reclamation guarantee as the walk that just finished.
			nodes, base := trace.CollectBackInto(h.nodeBuf, node, p.idx)
			h.nodeBuf = nodes
			// A non-nil base always sits above p.idx (CollectBackInto
			// only reports a base it stopped at strictly past downTo),
			// i.e. the gap crosses a cut: fall through to the copy path.
			if base == nil {
				for _, n := range nodes {
					p.state.Apply(n.Op)
					p.idx = n.Idx()
					if pid, seq := spec.SplitID(n.Op.ID); pid >= 0 && pid < len(p.seqs) && seq > p.seqs[pid] {
						p.seqs[pid] = seq
					}
				}
				advanced = true
			}
		}
		if !advanced {
			if h.viewIdx-p.idx <= h.adoptThreshold() {
				// Not worth a full copy; leave the slot unstamped.
				p.release(v)
				return
			}
			h.installView(p)
		}
		p.servesSeen = p.serves.Load()
		p.probe = 0
	}
	if p.state == nil {
		h.installView(p)
		p.servesSeen = p.serves.Load()
		p.probe = 0
	}
	if epoch > p.epoch {
		p.epoch = epoch
	}
	p.epochHint.Store(p.epoch)
	p.frontier.Store(p.idx)
	p.stamps.Add(1)
	p.release(v)
}

// FastPathStats reports the shared-slot activity of the read fast path
// since construction: successful publications (from updates, long read
// catch-ups and compaction), epoch stamps (validated slot advances),
// reads served straight from the slot, and successful view adoptions
// across all handles. Zero-valued when ReadFastPath is off. The
// counters are atomic, so a mid-run call is safe, but the sums are
// sampled independently (diagnostics and tests, not an invariant
// surface).
type FastPathStats struct {
	Publishes uint64
	Stamps    uint64
	SlotReads uint64
	Adoptions uint64
}

// FastPathStats implements the accessor on Instance.
func (in *Instance) FastPathStats() FastPathStats {
	var s FastPathStats
	if in.pub == nil {
		return s
	}
	s.Publishes = in.pub.publishes.Load()
	s.Stamps = in.pub.stamps.Load()
	s.SlotReads = in.pub.serves.Load()
	for _, h := range in.hands {
		s.Adoptions += h.adoptions.Load()
	}
	return s
}
