package core

// The read fast path (Config.ReadFastPath, DESIGN.md §3.5–3.6, striping
// §3.9) has two halves. The epoch check lives in Read/advanceView in
// core.go: the trace bumps a publication epoch on every linearize
// stage, and a read whose handle has already validated its view against
// the current epoch skips the trace walk entirely. This file holds the
// second half, the shared latest-view slots: per-instance publications
// of (state, execution index, covered-sequence vector) that cold or
// lagging handles copy instead of replaying a long trace suffix node by
// node.
//
// Since PR 8 the slot is STRIPED: an instance carries a small array of
// independent slots (Config.SlotStripes; auto-sized from GOMAXPROCS by
// default) so the hot atomics are not one shared CAS line that every
// publisher and server in the process serializes on. The protocol per
// stripe is unchanged from the single-slot design:
//
//   - each slot is guarded seqlock-style by one version counter: even
//     means free, odd means a publisher or adopter is inside. Both
//     sides acquire it with a single CAS and NEVER wait — on contention
//     they fall back to the ordinary suffix walk, which is always
//     correct. Adopters hold the (odd) version for the duration of
//     their copy, so a copy can never race a publisher's overwrite;
//   - adopters copy into a handle-private scratch state and swap it
//     with the view only after a successful copy, so a failed
//     acquisition never leaves a torn view behind.
//
// Stripe selection is asymmetric by design. WRITERS to the slot —
// publishers (publishFromUpdate, tryPublish, compact) and stampers
// (tryStampSlot) — always touch their OWN stripe, picked by pid hash:
// a hot updater's slot CAS and frontier stores then contend only with
// the handles hashed onto the same stripe, not with every handle in
// the instance. READERS of the slot — adopters (tryAdopt) and served
// reads (tryServeSlot) — scan ALL stripes for the freshest valid one
// (highest frontier mirror, matching epoch hint for serves), because a
// laggard wants the best publication anywhere, not whatever its own
// stripe happens to hold. The scan costs one plain atomic load per
// stripe on lines that are read-mostly from this side, so it does not
// reintroduce the shared-line bouncing the striping removes.
//
// Within a pubView the hot atomics — ver, frontier, epochHint — are
// each padded to their own cache line (PR 8's false-sharing fix, pinned
// by TestPubViewCacheLineLayout): frontier is stored by publishers on
// every publication while epochHint is polled by every fast-path read,
// and before the padding a stamp invalidated the line a publisher was
// about to load even when the slot was already caught up.
//
// The slots are fed from three sides: updaters that just caught their
// view up in computeUpdate (damped by publishFromUpdate, so the slots
// track the insert frontier under churn), readers that paid for a
// long catch-up walk, and compaction (which is exactly caught up at
// the cut). Adoption is gated by the cost model in adoptpolicy.go.
//
// Compaction safety: a slot holds a value copy of a state plus an
// execution index — never a node pointer — so a compaction cut (or the
// compactForSpace pressure valve, which truncates logs without cutting
// the trace) can never leave it dangling into recycled nodes. A
// publication older than a later cut's base is merely useless, not
// unsafe: an adopter that takes it walks the remaining suffix, meets
// the (younger, available) base first, and restores from the base,
// discarding the adopted prefix — TestAdoptionAcrossCompactionCut pins
// this interleaving deterministically. compact republishes at the cut
// index anyway, so the stale window is one slot write wide.

import (
	"runtime"
	"time"

	"sync/atomic"

	"repro/internal/pmem"
	"repro/internal/spec"
	"repro/internal/trace"
)

// epochNever marks a handle whose view has not been validated against
// any trace epoch (fresh or freshly recovered); the first read always
// takes the walk. Publication epochs count up from zero and cannot
// reach it.
const epochNever = ^uint64(0)

// publishMinLag is the minimum number of nodes an advanceView must
// have replayed before it publishes its view from the read side: a
// handle that just paid for a long catch-up shares the result, handles
// ticking along one node at a time never pay the publication copy.
// (Updaters publish through the publishFromUpdate damper instead.)
const publishMinLag = 32

// maxSlotStripes caps the automatic stripe count: past a handful of
// stripes the adopter/server scan cost grows while the contention win
// flattens (stripes beyond the core count can never be hot in
// parallel).
const maxSlotStripes = 8

// slotPadWords pads a uint64 field to a full pmem-modelled cache line
// (64 bytes on x86): the field plus seven pad words.
const slotPadWords = pmem.LineSize/pmem.WordSize - 1

// pubView is one stripe of the instance's shared latest-view slot
// array. The three hot atomics each own a cache line (see the
// false-sharing note in the package comment); the diagnostic counters
// share a fourth line, padded so the guarded payload that follows
// cannot land on it either. The linepad analyzer re-derives the layout
// from the target sizes (the static twin of TestPubViewCacheLineLayout),
// including the tail pad that rounds the whole struct to a line
// multiple — instances hold stripes in a []pubView, so a ragged tail
// would put the next stripe's hot ver line on this stripe's payload.
//
//onll:linepadded
type pubView struct {
	// ver is the seqlock version: even = free, odd = held. Publishers
	// and adopters both acquire with one CAS and fall back (no retry,
	// no spin) on failure.
	ver atomic.Uint64
	_   [slotPadWords]uint64
	// frontier mirrors idx outside the slot: publishers store it while
	// holding ver, anyone may load it without acquiring. It exists so
	// the update-side publication damper, the adopter/server stripe
	// scan, and tests can read how far the slot lags without touching
	// the CAS.
	frontier atomic.Uint64
	_        [slotPadWords]uint64
	// epochHint mirrors epoch outside the slot (stored by stampers
	// while holding ver): tryServeSlot pre-checks it with a plain load
	// so the can't-serve case — every read while the slot's stamp is
	// stale, i.e. most reads of a write-heavy mix — costs no RMW on the
	// shared line. The authoritative comparison still happens under the
	// slot; the hint can only cause a harmless miss.
	epochHint atomic.Uint64
	_         [slotPadWords]uint64
	// publishes counts successful publications, stamps epoch-validated
	// slot advances, serves reads answered straight from the slot
	// (diagnostics/tests). Lower-traffic than the hot three, so they
	// share one line.
	publishes atomic.Uint64
	stamps    atomic.Uint64
	serves    atomic.Uint64
	_         [slotPadWords - 2]uint64
	// The payload below is written and read only while holding ver.
	state spec.State
	idx   uint64
	seqs  []uint64
	// epoch is the publication epoch the slot state is validated
	// against: a value loaded BEFORE the walk (or incremental advance)
	// that brought the state to idx, exactly the per-handle seenEpoch
	// rule lifted to the shared view. While Epoch() still equals it, no
	// operation has been published since, so the slot state IS the
	// latest available prefix and a read may be served from it without
	// touching the trace (tryServeSlot). Meaningful only while state is
	// non-nil; it only ever increases.
	epoch uint64
	_     [1]uint64 // rounds the stripe to a whole number of lines
}

// reset returns the slot to its initial free state, dropping any
// publication. New and Recover call it for every stripe (via
// resetSlots) so a slot can never be BORN held: within a run a holder
// killed between acquire and release (a crash gate firing at
// PointSlotCopy) leaves the version odd and merely disables the
// optimization until the crash completes — contenders never wait on
// the slot — but recovery must not inherit that dead lock, and the
// recovered trace's indices restart relative to a new base anyway.
// check's TestSlotHolderCrashRecovery pins adoptions > 0 after exactly
// that crash.
func (p *pubView) reset() {
	p.state = nil
	p.idx = 0
	p.seqs = nil
	p.epoch = 0
	p.epochHint.Store(0)
	p.frontier.Store(0)
	p.ver.Store(0)
}

// tryAcquire takes the slot if it is free, returning the even version
// to pass to release. It never blocks. The seqlockregion analyzer
// checks every caller: between this call and the covering release no
// allocation, channel operation or blocking call may run, and no
// return path may leave the version odd.
//
//onll:seqlock(acquire)
//onll:hotpath
func (p *pubView) tryAcquire() (uint64, bool) {
	v := p.ver.Load()
	if v&1 != 0 || !p.ver.CompareAndSwap(v, v+1) {
		return 0, false
	}
	return v, true
}

// release frees the slot, advancing the version past v+1.
//
//onll:seqlock(release)
//onll:hotpath
func (p *pubView) release(v uint64) { p.ver.Store(v + 2) }

// resolveSlotStripes turns the configured stripe count into the actual
// one: an explicit positive count is used as given (clamped only by
// validation in Config.fill); zero auto-sizes to the parallelism the
// process can actually express — min(GOMAXPROCS, NProcs) — capped at
// maxSlotStripes. Single-slot instances (SlotStripes: 1) reproduce the
// PR 4–7 layout exactly.
func resolveSlotStripes(cfg *Config) int {
	n := cfg.SlotStripes
	if n == 0 {
		n = runtime.GOMAXPROCS(0)
		if n > cfg.NProcs {
			n = cfg.NProcs
		}
		if n > maxSlotStripes {
			n = maxSlotStripes
		}
	}
	if n < 1 {
		n = 1
	}
	return n
}

// stripe returns the handle's OWN stripe — the one its publications and
// stamps go to. Pids are dense small integers, so the modulo IS the
// pid hash: with stripes ≥ the hot-handle count every publisher owns a
// stripe outright, and below that the handles sharing a stripe are the
// only ones contending on its line.
//
//onll:hotpath
func (h *Handle) stripe() *pubView {
	pubs := h.in.pubs
	return &pubs[h.pid%len(pubs)]
}

// publishFromUpdate offers the updater's freshly caught-up view to its
// slot stripe at the end of an update: computeUpdate just advanced the
// view to the update's own node, so the handle holds — for free — the
// very state a lagging reader wants, and publishing here is what makes
// the slots track the insert frontier under churn instead of only
// benefiting from rare long read-side catch-ups. The damper is one
// atomic load: publish only when the stripe trails this view by at
// least the damper's node count, so a storm of hot updaters touches
// the slot CAS (and pays the state copy) at most once per that many
// frontier advances instead of serializing on every update. The damper
// is AdoptPolicy.PublishLag when pinned; the adaptive default scales
// with the adoption threshold (see publishCostFactor), bottoming out
// at defaultPublishLag.
//
//onll:hotpath
func (h *Handle) publishFromUpdate() {
	p := h.stripe()
	front := p.frontier.Load()
	if h.viewIdx <= front {
		return
	}
	damper := uint64(h.in.cfg.AdoptPolicy.PublishLag)
	if damper == 0 {
		damper = defaultPublishLag
		if h.in.costs != nil {
			if d := publishCostFactor * h.in.costs.threshold(h.view); d > damper {
				damper = d
			}
		}
	}
	if h.viewIdx-front < damper {
		return
	}
	h.tryPublish()
}

// tryPublish offers the handle's current view to its slot stripe. It
// only ever moves that stripe's publication forward (a stale view
// never replaces a newer one) and skips silently on contention.
//
// Both tryPublish and tryAdopt announce gate points before acquiring
// the slot and again while holding it, so deterministic schedulers can
// preempt — or crash-inject — between the acquire and the copy.
// Suspending (or killing) a holder at a gate blocks nobody: contenders
// fall back to the suffix walk instead of waiting. A slot left
// permanently odd by a killed process disables that stripe for the
// remainder of that run only — construction and recovery reset every
// stripe (resetSlots), so the next era starts with them free.
//
//onll:hotpath
func (h *Handle) tryPublish() {
	h.in.gate.Step(h.pid, PointPublish)
	p := h.stripe()
	v, ok := p.tryAcquire()
	if !ok {
		return
	}
	if h.viewIdx > p.idx {
		h.installView(p)
		p.frontier.Store(p.idx)
		p.publishes.Add(1)
	}
	p.release(v)
}

// copyPriced is the slot-copy protocol step shared by every slot-side
// state copy (publish, adopt, serve-adopt, stamp): announce
// PointSlotCopy — the caller holds the slot, so deterministic
// schedulers can preempt or crash-inject a holder here — then copy src
// into dst, feeding the cost model when it is live. The timed region is
// sample-gated (adoptCosts.sampleCopy): once the EWMA has converged,
// only one copy in copySampleEvery pays the two clock reads, and the
// gated-off path — like the fixed-policy path — never touches the
// clock at all.
//
//onll:hotpath
func (h *Handle) copyPriced(dst, src spec.State) {
	h.in.gate.Step(h.pid, PointSlotCopy)
	if c := h.in.costs; c != nil && c.sampleCopy() {
		start := time.Now() //onll:clockok(sample-gated EWMA copy probe: sampleCopy admits 1 in copySampleEvery after warmup)
		spec.Copy(dst, src)
		c.observeCopy(spec.SizeHint(dst), time.Since(start)) //onll:clockok(sample-gated EWMA copy probe)
		return
	}
	spec.Copy(dst, src)
}

// installView copies h's whole view into the slot payload — state
// (priced), execution index and covered-sequence vector — the shared
// tail of every full-copy publication path. The seqs vector grows
// append-style into the retained array: the slot outlives every
// publisher, so a fresh make per growth would strand the old array,
// and steady state (fixed NProcs) never allocates. Caller holds the
// slot.
//
//onll:hotpath
func (h *Handle) installView(p *pubView) {
	if p.state == nil {
		p.state = h.in.sp.New()
	}
	h.copyPriced(p.state, h.view)
	p.idx = h.viewIdx
	p.seqs = append(p.seqs[:0], h.viewSeqs...)
}

// freshestStripe scans every stripe's frontier mirror and returns the
// one with the highest published index within (minIdx, maxIdx], or nil
// when none qualifies. One plain load per stripe, no RMW: this is the
// adopter-side half of the striping's asymmetry — writers go to their
// own stripe, readers take the best publication anywhere.
//
//onll:hotpath
func (in *Instance) freshestStripe(minIdx, maxIdx uint64) *pubView {
	var best *pubView
	var bestFront uint64
	for i := range in.pubs {
		p := &in.pubs[i]
		f := p.frontier.Load()
		if f <= minIdx || f > maxIdx {
			continue
		}
		if best == nil || f > bestFront {
			best, bestFront = p, f
		}
	}
	return best
}

// tryAdopt replaces the handle's view with a copy of the freshest
// published one when that cuts the replay distance to node. The copy
// only pays for itself when it SAVES enough replay, so the published
// index must be more than minLag ahead of the view — lag to node alone
// is not profitability (a publication one node ahead would cost a full
// state copy to save a single Apply). minLag comes from the caller:
// the instance's cost model (adoptpolicy.go) or the configured fixed
// constant. The publication must also not sit past maxIdx — node.Idx()
// for reads (the view only has to REACH node; equality makes the
// remaining replay empty, the common case under churn where the slots
// track the frontier), node.Idx()-1 for updates (adopting node's own
// operation would lose its return value, which computeUpdate must
// produce by applying it, and break compact's caught-up-at-node
// invariant). The stripe is chosen by the frontier scan; its mirror
// may trail the truth by one in-flight publication, so the bounds are
// re-checked against p.idx under the slot. The copy lands in the
// handle's scratch state and the two swap roles only on success, so
// contention (acquire failure) costs nothing and can never tear the
// live view — on contention the handle simply falls back to the walk
// rather than probing a staler stripe.
//
//onll:hotpath
func (h *Handle) tryAdopt(node *trace.Node, minLag, maxIdx uint64) {
	h.in.gate.Step(h.pid, PointAdopt)
	p := h.in.freshestStripe(h.viewIdx+minLag, maxIdx)
	if p == nil {
		return
	}
	v, ok := p.tryAcquire()
	if !ok {
		return // contention: fall back to the plain suffix walk
	}
	if p.state == nil || p.idx <= h.viewIdx || p.idx-h.viewIdx <= minLag || p.idx > maxIdx {
		p.release(v)
		return
	}
	h.adoptSlot(p, v)
}

// adoptSlot completes an adoption while holding the slot: copy the
// published state into the scratch, merge the covered-sequence vector
// (published vectors are elementwise >= those of any older view —
// prefixes only grow — but merge defensively rather than assume),
// release, and only then swap scratch and view, so no failure mode can
// tear the live view. Shared by tryAdopt and tryServeSlot's adopting
// branch. Annotated release: it frees the slot internally, so a
// caller's seqlock region ends at this call.
//
//onll:seqlock(release)
//onll:hotpath
func (h *Handle) adoptSlot(p *pubView, v uint64) {
	if h.adopt == nil {
		h.adopt = h.in.sp.New()
	}
	h.copyPriced(h.adopt, p.state)
	idx := p.idx
	mergeSeqs(h.viewSeqs, p.seqs)
	p.release(v)
	h.view, h.adopt = h.adopt, h.view
	h.viewIdx = idx
	h.adoptions.Add(1)
}

// tryServeSlot answers a read through the shared slots: if some
// stripe's validation epoch still equals the epoch this read loaded
// before looking at anything else, no operation has been published
// since that slot state was brought up to date, so the slot IS the
// latest available prefix — no trace walk, no per-handle replay of the
// operations every other handle already applied. This is what makes
// the fast path pay under frontier-chasing churn: a single validating
// read advances and stamps a shared state once, and the other
// handles ride it instead of each replaying the same suffix privately.
//
// The serving stripe is found by scanning the epoch hints (one plain
// load each; stale hints reject without any RMW) and taking the
// freshest match by frontier; the authoritative epoch comparison still
// happens under the slot, so a racing overwrite of the hint can only
// cost a harmless miss.
//
// Crucially, an epoch-valid slot also lets the handle VALIDATE ITS OWN
// VIEW: if the view already sits at the slot index the two are the
// same prefix and the epoch transfers for free; if the slot leads by
// more than the adoption threshold the handle adopts the slot state
// (the ordinary scratch-swap copy) and inherits the validation. Either
// way seenEpoch is recorded and the handle's NEXT read takes the plain
// own-view fast path — a served handle never gets stuck paying the
// slot CAS per read. A lead too small to be worth a copy is left to
// the walk, which is cheap at that distance and revalidates too.
//
// Monotonicity holds because every slot index only grows and serving
// requires it at or past the handle's own view (which the handle's own
// updates advance — that same check gives read-your-writes). On
// contention the caller falls back to the ordinary walk.
//
//onll:hotpath
func (h *Handle) tryServeSlot(epoch uint64, op spec.Op) (uint64, bool) {
	pubs := h.in.pubs
	var p *pubView
	var bestFront uint64
	for i := range pubs {
		c := &pubs[i]
		if c.epochHint.Load() != epoch {
			continue // stale stamp: no RMW, this stripe cannot serve
		}
		if f := c.frontier.Load(); p == nil || f > bestFront {
			p, bestFront = c, f
		}
	}
	if p == nil {
		return 0, false // no stripe validated for this epoch: walk
	}
	h.in.gate.Step(h.pid, PointSlotRead)
	v, ok := p.tryAcquire()
	if !ok {
		return 0, false
	}
	if p.state == nil || p.epoch != epoch || p.idx < h.viewIdx {
		p.release(v)
		return 0, false
	}
	if p.idx > h.viewIdx {
		if p.idx-h.viewIdx <= h.adoptThreshold() {
			p.release(v) // cheaper to walk than to copy at this distance
			return 0, false
		}
		p.serves.Add(1)
		h.adoptSlot(p, v)
	} else {
		p.serves.Add(1)
		p.release(v)
	}
	h.seenEpoch = epoch
	return h.view.Read(op), true
}

// tryStampSlot validates the handle's slot stripe against epoch after
// a read's catch-up walk: the caller loaded epoch BEFORE the walk that
// advanced its view to node (so the view covers every operation the
// epoch covers) and oldFloor is the walk floor it published on entry
// (its view index before the walk — the reclamation cover for
// everything the walk may dereference). Three cases, cheapest first:
//
//   - the slot is already at or past the view: stamp only (the slot
//     state is a superset of the epoch's covered prefix — covered ops
//     all sit at or below the validated node);
//   - the slot is a short, cut-free, floor-covered distance behind:
//     re-walk that gap and apply the missing operations INTO the slot
//     state — one incremental advance serving every future slot read,
//     instead of one replay per handle;
//   - the gap is unbridgeable (crosses a compaction cut, dips under
//     the reclamation floor) or beyond the cost model's threshold: a
//     full copy of the view, priced exactly like an adoption.
//
// Anything else leaves the slot unstamped — readers simply keep
// falling back to the walk, the pre-stamp behaviour.
//
// Advancing the slot re-applies every missed operation into the shared
// state, work that only pays while other handles are consuming served
// reads, so it runs under a demand damper: skip the advance while the
// stripe's serve counter has not moved since this handle's last
// advance, with one probe advance per slotProbeEvery skips so a demand
// shift is noticed. The skip budget is PER HANDLE (h.slotServesSeen /
// h.slotProbe — PR 8's damper fix): with the old per-instance counters
// one hot stamper consumed the whole probe budget and recorded the
// serve counter as seen, so the other handles' stamps always saw a
// "static" stripe and their advances starved.
//
//onll:hotpath
func (h *Handle) tryStampSlot(epoch uint64, node *trace.Node, oldFloor uint64) {
	if h.viewIdx < node.Idx() {
		return // defensive: the view did not reach the validated node
	}
	h.in.gate.Step(h.pid, PointPublish)
	p := h.stripe()
	v, ok := p.tryAcquire()
	if !ok {
		return
	}
	if p.state != nil && p.idx < h.viewIdx {
		// Advance only under demand (see the damper note above): if no
		// read has been served from the stripe since this handle's last
		// advance, skip the work and leave the old state — the stamp
		// below is then a no-op too (the state does not cover this
		// epoch), which is exactly the pre-stamp behaviour.
		if serves := p.serves.Load(); serves == h.slotServesSeen && h.slotProbe < slotProbeEvery {
			h.slotProbe++
			p.release(v)
			return
		}
		advanced := false
		if p.idx+1 >= oldFloor {
			// The gap's nodes all sit at or above the published walk
			// floor, so dereferencing them is covered by the same
			// reclamation guarantee as the walk that just finished.
			nodes, base := trace.CollectBackInto(h.nodeBuf, node, p.idx)
			h.nodeBuf = nodes
			// A non-nil base always sits above p.idx (CollectBackInto
			// only reports a base it stopped at strictly past downTo),
			// i.e. the gap crosses a cut: fall through to the copy path.
			if base == nil {
				for _, n := range nodes {
					p.state.Apply(n.Op)
					p.idx = n.Idx()
					if pid, seq := spec.SplitID(n.Op.ID); pid >= 0 && pid < len(p.seqs) && seq > p.seqs[pid] {
						p.seqs[pid] = seq
					}
				}
				advanced = true
			}
		}
		if !advanced {
			if h.viewIdx-p.idx <= h.adoptThreshold() {
				// Not worth a full copy; leave the slot unstamped.
				p.release(v)
				return
			}
			h.installView(p)
		}
		h.slotServesSeen = p.serves.Load()
		h.slotProbe = 0
	}
	if p.state == nil {
		h.installView(p)
		h.slotServesSeen = p.serves.Load()
		h.slotProbe = 0
	}
	if epoch > p.epoch {
		p.epoch = epoch
	}
	p.epochHint.Store(p.epoch)
	p.frontier.Store(p.idx)
	p.stamps.Add(1)
	p.release(v)
}

// FastPathStats reports the shared-slot activity of the read fast path
// since construction, summed over every stripe: successful
// publications (from updates, long read catch-ups and compaction),
// epoch stamps (validated slot advances), reads served straight from a
// slot, and successful view adoptions across all handles. Zero-valued
// when ReadFastPath is off. The counters are atomic, so a mid-run call
// is safe, but the sums are sampled independently (diagnostics and
// tests, not an invariant surface).
type FastPathStats struct {
	Publishes uint64
	Stamps    uint64
	SlotReads uint64
	Adoptions uint64
	// Stripes is the resolved published-view stripe count (0 when the
	// fast path is off).
	Stripes int
}

// FastPathStats implements the accessor on Instance.
func (in *Instance) FastPathStats() FastPathStats {
	var s FastPathStats
	if in.pubs == nil {
		return s
	}
	s.Stripes = len(in.pubs)
	for i := range in.pubs {
		p := &in.pubs[i]
		s.Publishes += p.publishes.Load()
		s.Stamps += p.stamps.Load()
		s.SlotReads += p.serves.Load()
	}
	for _, h := range in.hands {
		s.Adoptions += h.adoptions.Load()
	}
	return s
}
