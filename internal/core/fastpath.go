package core

// The read fast path (Config.ReadFastPath, DESIGN.md §3.5) has two
// halves. The epoch check lives in Read/advanceView in core.go: the
// trace bumps a publication epoch on every linearize stage, and a read
// whose handle has already validated its view against the current epoch
// skips the trace walk entirely. This file holds the second half, the
// shared latest-view slot: a single per-instance publication of (state,
// execution index, covered-sequence vector) that cold or lagging
// handles copy instead of replaying a long trace suffix node by node.
//
// The slot is guarded seqlock-style by one version counter: even means
// free, odd means a publisher or adopter is inside. Both sides acquire
// it with a single CAS and NEVER wait — on contention they simply fall
// back to the ordinary suffix walk, which is always correct. Because
// adopters hold the (odd) version for the duration of their copy, a
// copy can never race a publisher's overwrite, keeping the protocol
// race-detector-clean while preserving the seqlock shape: the version
// recheck built into the CAS acquire is what rejects mid-copy access.
// Adopters copy into a handle-private scratch state and swap it with
// the view only after a successful copy, so a failed acquisition never
// leaves a torn view behind.

import (
	"sync/atomic"

	"repro/internal/spec"
	"repro/internal/trace"
)

// epochNever marks a handle whose view has not been validated against
// any trace epoch (fresh or freshly recovered); the first read always
// takes the walk. Publication epochs count up from zero and cannot
// reach it.
const epochNever = ^uint64(0)

const (
	// adoptMinLag is the minimum view lag (in trace nodes) before a
	// handle tries adoption: below it, replaying the suffix is cheaper
	// than copying a whole state.
	adoptMinLag = 32
	// publishMinLag is the minimum number of nodes an advanceView must
	// have replayed before it publishes its view: a handle that just
	// paid for a long catch-up shares the result, handles ticking along
	// one node at a time never pay the publication copy.
	publishMinLag = 32
)

// pubView is the instance's shared latest-view slot.
type pubView struct {
	// ver is the seqlock version: even = free, odd = held. Publishers
	// and adopters both acquire with one CAS and fall back (no retry,
	// no spin) on failure.
	ver atomic.Uint64
	// The payload below is written and read only while holding ver.
	state     spec.State
	idx       uint64
	seqs      []uint64
	publishes uint64 // successful publications (diagnostics/tests)
}

// tryAcquire takes the slot if it is free, returning the even version
// to pass to release. It never blocks.
func (p *pubView) tryAcquire() (uint64, bool) {
	v := p.ver.Load()
	if v&1 != 0 || !p.ver.CompareAndSwap(v, v+1) {
		return 0, false
	}
	return v, true
}

// release frees the slot, advancing the version past v+1.
func (p *pubView) release(v uint64) { p.ver.Store(v + 2) }

// tryPublish offers the handle's current view to the shared slot. It
// only ever moves the publication forward (a stale view never replaces
// a newer one) and skips silently on contention.
//
// Both tryPublish and tryAdopt announce gate points before acquiring
// the slot and again while holding it, so deterministic schedulers can
// preempt — or crash-inject — between the acquire and the copy.
// Suspending (or killing) a holder at a gate blocks nobody: contenders
// fall back to the suffix walk instead of waiting, and a slot left
// permanently odd by a killed process only disables the optimization.
func (h *Handle) tryPublish() {
	h.in.gate.Step(h.pid, PointPublish)
	p := h.in.pub
	v, ok := p.tryAcquire()
	if !ok {
		return
	}
	if h.viewIdx > p.idx {
		if p.state == nil {
			p.state = h.in.sp.New()
		}
		h.in.gate.Step(h.pid, PointSlotCopy)
		spec.Copy(p.state, h.view)
		p.idx = h.viewIdx
		if cap(p.seqs) < len(h.viewSeqs) {
			p.seqs = make([]uint64, len(h.viewSeqs))
		}
		p.seqs = p.seqs[:len(h.viewSeqs)]
		copy(p.seqs, h.viewSeqs)
		p.publishes++
	}
	p.release(v)
}

// tryAdopt replaces the handle's view with a copy of the published one
// when that cuts the replay distance to node. The copy only pays for
// itself when it SAVES enough replay, so the published index must be
// more than adoptMinLag ahead of the view — lag to node alone is not
// profitability (a publication one node ahead would cost a full state
// copy to save a single Apply). It must also be strictly below node:
// adopting past node would lose node's own return value (computeUpdate
// needs it) and break compact's caught-up-at-node invariant. The copy
// lands in the handle's scratch state and the two swap roles only on
// success, so contention (acquire failure) costs nothing and can never
// tear the live view.
func (h *Handle) tryAdopt(node *trace.Node) {
	h.in.gate.Step(h.pid, PointAdopt)
	p := h.in.pub
	v, ok := p.tryAcquire()
	if !ok {
		return // contention: fall back to the plain suffix walk
	}
	if p.state == nil || p.idx <= h.viewIdx || p.idx-h.viewIdx <= adoptMinLag || p.idx >= node.Idx() {
		p.release(v)
		return
	}
	if h.adopt == nil {
		h.adopt = h.in.sp.New()
	}
	h.in.gate.Step(h.pid, PointSlotCopy)
	spec.Copy(h.adopt, p.state)
	idx := p.idx
	// Published seq vectors are elementwise >= those of any older view
	// (prefixes only grow), but merge defensively rather than assume.
	mergeSeqs(h.viewSeqs, p.seqs)
	p.release(v)
	h.view, h.adopt = h.adopt, h.view
	h.viewIdx = idx
	h.adoptions++
}
