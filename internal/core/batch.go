package core

// Batched updates (DESIGN.md §3.10). The paper's cost model prices
// durability per operation — Update issues exactly one persistent fence
// — but a service front end beats per-op pricing by amortizing: stage N
// client requests through the order/linearize stages immediately, then
// persist all of them with ONE log append and ONE fence. The two-tier
// log already supports this shape (a record wider than the inline
// budget spills its tail to the overflow ring under the same fence);
// Config.LogMaxOps raises the per-record op bound so a whole batch plus
// the helping tail fits in one record.
//
// Semantics: Stage runs order + linearize (trace insert + SetAvailable)
// and computes the return value; Flush runs persist for everything
// staged since the last flush. Between a Stage and its covering Flush
// the operation is LINEARIZED BUT NOT YET DURABLE — readers (same
// process or others) can observe it, and a crash in that window erases
// it. That is the classic buffered durable linearizability trade: the
// lost suffix is contiguous and detectable (Report.WasLinearized on the
// op ids returns false), which is exactly the evidence a server's
// ack-on-linearize mode hands to clients. Ack-on-persist callers simply
// wait for Flush before responding.
//
// SINGLE-UPDATER REGIME REQUIRED. Making a staged node available before
// it is persisted is sound only while no OTHER handle runs updates: a
// concurrent updater's fuzzy-window walk (GetFuzzyOpsInto) stops at the
// first available node, so our available-but-unpersisted staged ops
// would terminate its helping scan, and its own fenced op would land in
// NVM above a hole. After a crash, recovery's gap rule would then
// strand that foreign durable op — a durable-linearizability violation
// (the same ordering the UnsafeLinearizeFirst ablation demonstrates).
// With one updating handle the volatile suffix is always a contiguous
// tail owned by the batch, so every fence still covers a gap-free
// prefix. Readers on other handles are fine (reads never persist).
// The server enforces the regime structurally: the batcher goroutine
// owns the only updating handle.

import (
	"errors"
	"fmt"

	"repro/internal/spec"
	"repro/internal/trace"
)

// ErrBatchFull is returned by Batch.Stage when staging one more op
// could make the flush record — staged ops plus a worst-case helping
// tail of NProcs-1 — exceed the log's per-record bound. The caller
// must Flush and retry; sizing Config.LogMaxOps at NProcs + the
// intended maximum batch leaves this unreachable.
var ErrBatchFull = errors.New("core: batch full (flush before staging more, or raise Config.LogMaxOps)")

// Batch is a multi-update staging area bound to one Handle. It is not
// safe for concurrent use, and while any ops are staged (Pending > 0)
// its handle must not run Update — the batch owns the handle's
// volatile suffix until Flush persists it. See the single-updater
// requirement in the package comment above.
type Batch struct {
	h *Handle
	// nodes holds the staged, not-yet-persisted trace nodes in staging
	// (= linearization) order.
	nodes []*trace.Node
	// ops is the flush record scratch (newest-first, the log's order).
	ops []spec.Op
	// limit is the most ops Stage admits per flush interval:
	// log.MaxOps() minus headroom for the helping tail.
	limit int

	flushes uint64 // completed Flush calls that appended a record
	staged  uint64 // total ops staged over the batch's lifetime
}

// NewBatch returns a batch staging area for the handle. One batch per
// handle at a time; the same batch is reused across flushes.
func (h *Handle) NewBatch() *Batch {
	limit := h.in.logs[h.pid].MaxOps() - (h.in.cfg.NProcs - 1)
	if limit < 1 {
		limit = 1
	}
	return &Batch{h: h, limit: limit}
}

// Pending returns the number of staged, not-yet-persisted operations.
func (b *Batch) Pending() int { return len(b.nodes) }

// Stage runs the order and linearize stages for (code, args) and
// computes its return value against the staged prefix — no log write,
// no fence. The op is immediately visible to readers but not durable
// until the next Flush; id is usable with Report.WasLinearized to
// detect post-crash loss. Issues zero persistent fences.
//
//onll:hotpath
func (b *Batch) Stage(code uint64, args ...uint64) (ret, id uint64, err error) {
	h := b.h
	if qerr := h.in.quarErr(); qerr != nil {
		return 0, 0, qerr
	}
	if len(b.nodes) >= b.limit {
		return 0, 0, ErrBatchFull
	}
	h.enter()
	defer h.exit()
	h.seq++
	op := spec.Op{Code: code, ID: spec.MakeID(h.pid, h.seq)}
	copy(op.Args[:], args)

	in := h.in
	node := h.newNode(op)
	in.tr.Insert(h.pid, node)
	in.gate.Step(h.pid, PointOrdered)

	// Linearize now, before any persist: under the single-updater
	// regime this is the buffered-durability window, not the unsound
	// UnsafeLinearizeFirst ordering — no concurrent updater can fence
	// an op above our volatile suffix.
	in.tr.SetAvailable(h.pid, node)
	ret = h.computeUpdate(node)

	b.nodes = append(b.nodes, node)
	b.staged++
	in.gate.Step(h.pid, PointReturn)
	return ret, op.ID, nil
}

// Flush persists every staged operation — plus any unavailable helping
// tail below the batch — with one log append and ONE persistent fence,
// then runs the update path's post-persist bookkeeping (view
// publication, compaction cadence). A no-op when nothing is staged.
// On success the previously staged ops are durable.
func (b *Batch) Flush() error {
	if len(b.nodes) == 0 {
		return nil
	}
	h := b.h
	if qerr := h.in.quarErr(); qerr != nil {
		return qerr
	}
	h.enter()
	defer h.exit()
	in := h.in
	first, last := b.nodes[0], b.nodes[len(b.nodes)-1]

	// The collection walk descends below the batch into the helping
	// tail; lower the reclamation floor so no concurrent compaction
	// frees those nodes under us (enter() published h.viewIdx, which
	// sits at the batch's last node after staging).
	if fi := first.Idx(); fi < h.viewIdx {
		h.floor.Store(fi)
	}
	b.ops = collectBatchOps(b.ops[:0], in, h.pid, last, first.Idx())

	if _, err := in.logs[h.pid].Append(b.ops, last.Idx()); err != nil {
		// Same pressure valve as Update: compact behind the view, catch
		// up and compact deeper, grow the ring. The valve's snapshot
		// fences cover the staged ops too — they just become durable a
		// little early, which is always sound (the exposed suffix only
		// shrinks).
		if err = h.persistWithValve(b.ops, last, err); err != nil {
			return fmt.Errorf("core: batch persist stage: %w", err)
		}
	}
	in.gate.Step(h.pid, PointPersisted)

	if in.pubs != nil && h.view != nil && !in.cfg.AdoptPolicy.DisableUpdatePublish {
		h.publishFromUpdate()
	}

	var err error
	if ce := h.cutEvery(); ce > 0 {
		h.sinceCompact += len(b.nodes)
		if h.sinceCompact >= ce {
			h.sinceCompact = 0
			if cerr := h.compact(last); cerr != nil {
				err = fmt.Errorf("core: compaction: %w", cerr)
			}
		}
	}

	b.nodes = b.nodes[:0]
	b.flushes++
	return err
}

// Flushes returns how many Flush calls appended a record (diagnostic).
func (b *Batch) Flushes() uint64 { return b.flushes }

// Staged returns the total ops staged over the batch's lifetime.
func (b *Batch) Staged() uint64 { return b.staged }

// collectBatchOps assembles the flush record: every update node from
// last down through firstIdx (the whole batch, newest first — the
// log's record order), continuing below firstIdx through any
// unavailable nodes (the helping tail: ordered-but-unpersisted ops of
// crashed or delayed processes, same role as Update's fuzzy window).
// The walk stops at the first available node below the batch — under
// the single-updater regime that node was covered by a previous fence
// — or at a compaction base, whose snapshot stands for the prefix.
func collectBatchOps(dst []spec.Op, in *Instance, pid int, last *trace.Node, firstIdx uint64) []spec.Op {
	for cur := last; cur != nil; cur = cur.Next() {
		in.gate.Step(pid, "trace.scan")
		if cur.Kind != trace.KindUpdate {
			break
		}
		if cur.Idx() < firstIdx && cur.Available() {
			break
		}
		dst = append(dst, cur.Op)
	}
	return dst
}
