package core

import (
	"testing"

	"repro/internal/objects"
	"repro/internal/pmem"
	"repro/internal/spec"
)

func TestReadOnFreshObject(t *testing.T) {
	for _, lv := range []bool{false, true} {
		_, in := newCounter(t, Config{NProcs: 1, LocalViews: lv})
		if v := in.Handle(0).Read(objects.CounterGet); v != 0 {
			t.Fatalf("fresh counter read %d", v)
		}
	}
}

func TestReadDirectlyAtCompactionBase(t *testing.T) {
	// After compaction, the latest available node can BE the base (no
	// newer updates); reads must serve the snapshot state directly.
	pool := pmem.New(testPoolSize, nil)
	in, err := New(pool, objects.MapSpec{}, Config{NProcs: 1, CompactEvery: 3, LogCapacity: 32})
	if err != nil {
		t.Fatal(err)
	}
	h := in.Handle(0)
	for i := uint64(1); i <= 3; i++ { // exactly one compaction epoch
		mustUpdate(t, h, objects.MapPut, i, i*10)
	}
	// A FRESH handle (empty local view) reads now: its walk lands on
	// the base node installed by the cut.
	h2 := in.Handle(0)
	if v := h2.Read(objects.MapGet, 2); v != 20 {
		t.Fatalf("read at base: %d", v)
	}
}

func TestMaxProcsBoundary(t *testing.T) {
	pool := pmem.New(1<<26, nil)
	in, err := New(pool, objects.CounterSpec{}, Config{NProcs: MaxProcs, LogCapacity: 8})
	if err != nil {
		t.Fatalf("NProcs=MaxProcs rejected: %v", err)
	}
	for pid := 0; pid < MaxProcs; pid++ {
		if _, _, err := in.Handle(pid).Update(objects.CounterInc); err != nil {
			t.Fatal(err)
		}
	}
	if v := in.Handle(MaxProcs - 1).Read(objects.CounterGet); v != MaxProcs {
		t.Fatalf("value %d", v)
	}
}

func TestRecoveryIsIdempotent(t *testing.T) {
	// Recovering twice from the same durable state (no ops in between)
	// must yield identical reports.
	pool, in := newCounter(t, Config{NProcs: 2})
	for i := 0; i < 7; i++ {
		mustUpdate(t, in.Handle(i%2), objects.CounterInc)
	}
	pool.Crash(pmem.DropAll)
	_, rep1, err := Recover(pool, objects.CounterSpec{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	_, rep2, err := Recover(pool, objects.CounterSpec{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep1.LastIdx != rep2.LastIdx || rep1.BaseIdx != rep2.BaseIdx ||
		len(rep1.Linearized) != len(rep2.Linearized) {
		t.Fatalf("recovery not idempotent: %+v vs %+v", rep1, rep2)
	}
	for id, idx := range rep1.Linearized {
		if rep2.Linearized[id] != idx {
			t.Fatalf("op %#x at %d vs %d", id, idx, rep2.Linearized[id])
		}
	}
}

func TestWasLinearizedEdgeCases(t *testing.T) {
	rep := &Report{Linearized: map[uint64]uint64{}, CoveredSeq: map[int]uint64{}}
	if _, ok := rep.WasLinearized(0); ok {
		t.Fatal("reserved id 0 reported linearized")
	}
	rep.CoveredSeq[2] = 5
	if _, ok := rep.WasLinearized(spec.MakeID(2, 5)); !ok {
		t.Fatal("covered op not reported")
	}
	if _, ok := rep.WasLinearized(spec.MakeID(2, 6)); ok {
		t.Fatal("beyond-coverage op reported")
	}
	if _, ok := rep.WasLinearized(spec.MakeID(3, 1)); ok {
		t.Fatal("uncovered pid reported")
	}
}

func TestCompactionContinuesAfterRecovery(t *testing.T) {
	// Era 1 compacts; era 2 (post-recovery) must keep compacting and
	// keep the log bounded — the recovered handles carry valid views
	// and covered-sequence vectors.
	pool := pmem.New(testPoolSize, nil)
	cfg := Config{NProcs: 1, CompactEvery: 8, LogCapacity: 40}
	in, err := New(pool, objects.CounterSpec{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		mustUpdate(t, in.Handle(0), objects.CounterInc)
	}
	pool.Crash(pmem.DropAll)
	in2, _, err := Recover(pool, objects.CounterSpec{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ { // far beyond LogCapacity without truncation
		if _, _, err := in2.Handle(0).Update(objects.CounterInc); err != nil {
			t.Fatalf("era-2 update %d: %v", i, err)
		}
	}
	if v := in2.Handle(0).Read(objects.CounterGet); v != 300 {
		t.Fatalf("value %d, want 300", v)
	}
	pool.Crash(pmem.DropAll)
	in3, rep, err := Recover(pool, objects.CounterSpec{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BaseIdx == 0 {
		t.Fatal("era-2 compaction left no snapshot")
	}
	if v := in3.Handle(0).Read(objects.CounterGet); v != 300 {
		t.Fatalf("third-era value %d", v)
	}
}

func TestUpdateArgsOverflowIgnored(t *testing.T) {
	// More args than the record holds: extra args are dropped by the
	// copy (documented fixed-width ops); the first three are preserved.
	_, in := newCounter(t, Config{NProcs: 1})
	ret, _, err := in.Handle(0).Update(objects.CounterAdd, 5, 99, 99, 99, 99)
	if err != nil || ret != 5 {
		t.Fatalf("ret=%d err=%v", ret, err)
	}
}

func TestFreshHandleReadAfterOthersUpdated(t *testing.T) {
	// A handle that never updated must see others' effects (its local
	// view starts empty and replays on demand).
	_, in := newCounter(t, Config{NProcs: 3, LocalViews: true})
	for i := 0; i < 25; i++ {
		mustUpdate(t, in.Handle(0), objects.CounterInc)
	}
	if v := in.Handle(2).Read(objects.CounterGet); v != 25 {
		t.Fatalf("fresh handle read %d", v)
	}
}
