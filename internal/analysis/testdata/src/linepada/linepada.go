// Package linepada is the linepad POSITIVE fixture: a short pad, an
// unaligned trailing group, an overfull live run, and the ragged-tail
// case found on the real pubView (array elements sharing lines).
package linepada

//onll:linepadded
type bad struct {
	ver uint64
	_   [7]uint64
	a   uint64 // want `bad\.a: padded group ends at offset 120`
	b   uint64
	_   [5]uint64
	tail uint64 // want `bad\.tail: padded group starts at offset 120`
}

//onll:linepadded
type ragged struct { // want `ragged: total size 72 is not a multiple of 64`
	ver uint64
	_   [7]uint64
	idx uint64
}

//onll:linepadded
type overfull struct {
	a, b, c, d, e, f, g, h, i uint64 // want `overfull\.a: live fields span 72 bytes`
	_                         [7]uint64
}
