// Package hotpatha is the hotpath POSITIVE fixture. stage mirrors the
// real finding class from the first full-tree run: an un-gated
// time.Now on the batcher's per-request path.
package hotpatha

import (
	"sync"
	"time"
)

type ring struct {
	mu   sync.Mutex
	buf  []int64
	next int
}

//onll:hotpath
func (r *ring) stage(v int64) {
	t := time.Now().UnixNano() // want `un-gated clock read \(time\.Now\)`
	r.mu.Lock()                // want `lock acquisition \(\(\*sync\.Mutex\)\.Lock\)`
	r.buf = append(r.buf, t+v)
	r.mu.Unlock()
}

//onll:hotpath
func (r *ring) age() time.Duration {
	return time.Since(time.Unix(0, r.buf[0])) // want `un-gated clock read \(time\.Since\)`
}

//onll:hotpath
func (r *ring) grow(n int) {
	r.buf = make([]int64, n) // want `make allocates`
	f := func() {}           // want `closure allocates`
	f()
}

//onll:hotpath
func (r *ring) signal(ch chan int) {
	ch <- 1      // want `channel send`
	go r.grow(1) // want `goroutine launch`
}

//onll:hotpath
func (r *ring) slices() {
	r.buf = []int64{1, 2, 3} // want `slice/map literal allocates`
}
