// Package atomica is the atomicmix POSITIVE fixture: the PR 9
// spill-counter bug class — a field written through sync/atomic and
// read plainly elsewhere — in local, package-var and cross-package
// form.
package atomica

import (
	"atomiclib"
	"sync/atomic"
)

type counter struct {
	hits uint64
	cold uint64
}

func (c *counter) add() { atomic.AddUint64(&c.hits, 1) }

func (c *counter) snapshot() uint64 {
	return c.hits // want `hits is accessed via sync/atomic`
}

func (c *counter) reset() {
	c.hits = 0 // want `hits is accessed via sync/atomic`
	c.cold = 0
}

var seq uint64

func next() uint64 { return atomic.AddUint64(&seq, 1) }

func peek() uint64 {
	return seq // want `seq is accessed via sync/atomic`
}

// Cross-package: atomiclib's discipline travels as a fact.
func spills(s *atomiclib.Stats) uint64 {
	return s.Spills // want `Spills is accessed via sync/atomic`
}

func chill(s *atomiclib.Stats) uint64 {
	return s.Cold // plain-only in its package: fine
}
