// Package seqlocka is the seqlockregion POSITIVE fixture: held
// returns, allocation, channel traffic and blocking calls between a
// stripe acquire and its release, plus a discarded acquire result.
package seqlocka

import "time"

type slot struct {
	ver  uint64
	data []uint64
}

//onll:seqlock(acquire)
func (s *slot) tryAcquire() (uint64, bool) {
	v := s.ver
	if v&1 != 0 {
		return 0, false
	}
	s.ver = v + 1
	return v, true
}

//onll:seqlock(release)
func (s *slot) release(v uint64) { s.ver = v + 2 }

func leakOnReturn(s *slot) bool {
	v, ok := s.tryAcquire()
	if !ok {
		return false
	}
	if len(s.data) == 0 {
		return true // want `return while holding a seqlock stripe`
	}
	s.release(v)
	return true
}

func allocInRegion(s *slot, n int) {
	v, ok := s.tryAcquire()
	if !ok {
		return
	}
	buf := make([]uint64, n) // want `make allocates inside a seqlock region`
	s.data = buf
	s.release(v)
}

func blockInRegion(s *slot, ch chan int) {
	v, ok := s.tryAcquire()
	if !ok {
		return
	}
	ch <- 1            // want `channel send inside a seqlock region`
	time.Sleep(1)      // want `time.Sleep inside a seqlock region`
	s.release(v)
}

func closureInRegion(s *slot) {
	v, ok := s.tryAcquire()
	if !ok {
		return
	}
	f := func() uint64 { return s.ver } // want `closure allocated inside a seqlock region`
	_ = f
	s.release(v)
}

func maybeLeak(s *slot, b bool) {
	v, ok := s.tryAcquire()
	if !ok {
		return
	}
	if b {
		s.release(v)
	}
	return // want `may return while holding a seqlock stripe`
}

func discard(s *slot) {
	s.tryAcquire() // want `seqlock acquire result discarded`
} // want `function ends while holding a seqlock stripe`
