// Package pmem is a fixture stand-in for the real persistent-memory
// model: the fencepath analyzer matches NVM-mutating primitives by
// package name + method name, so this stub exercises the same matching
// the real tree gets.
package pmem

type Addr uintptr

type Pool struct{ mem []uint64 }

func (p *Pool) Load(pid int, a Addr) uint64       { return p.mem[a] }
func (p *Pool) Store(pid int, a Addr, v uint64)   { p.mem[a] = v }
func (p *Pool) StoreLine(pid int, a Addr, v []uint64) {
	copy(p.mem[a:], v)
}
func (p *Pool) Fence(pid int)                    {}
func (p *Pool) Persist(pid int, a Addr, n int)   { p.Fence(pid) }
func (p *Pool) DurableWord(a Addr) uint64        { return p.mem[a] }
