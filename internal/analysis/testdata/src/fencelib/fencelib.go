// Package fencelib exercises cross-package fact propagation: its
// exported helpers fence (or are allowfence barriers), and importing
// fixtures must see that through facts alone.
package fencelib

import "pmem"

type Log struct{ pool *pmem.Pool }

// Append persists a record: may-fence, exported as a fact.
func (l *Log) Append(v uint64) {
	l.pool.Store(0, 0, v)
	l.pool.Fence(0)
}

// Peek only reads durable state: no fact.
func (l *Log) Peek() uint64 { return l.pool.DurableWord(0) }

//onll:allowfence(pressure valve: deliberate fence on a read-triggered path)
func (l *Log) Valve() {
	l.pool.Fence(0)
}
