// Package fencea is the fencepath POSITIVE fixture: read entry points
// that reach a pmem write or fence — directly, through a local helper
// chain, through an imported package's fact, through interface
// dispatch — plus a stale //onll:allowfence.
package fencea

import (
	"fencelib"
	"pmem"
)

type T struct {
	pool *pmem.Pool
	log  *fencelib.Log
}

// Read reaches a fence through a local helper chain.
func (t *T) Read(code uint64) uint64 { // want `read path reaches a persistent-memory write/fence: .*Read → .*refresh → .*Fence`
	t.refresh()
	return t.pool.Load(0, 0)
}

func (t *T) refresh() {
	t.pool.Fence(0)
}

// TryRead fences through an imported package: only the fact chain can
// see it.
func (t *T) TryRead(code uint64) (uint64, bool) { // want `read path reaches a persistent-memory write/fence: .*TryRead → .*Append → .*Store`
	t.log.Append(code)
	return 0, true
}

// ReadSum writes NVM directly — the StoreLine-on-the-read-path
// regression the acceptance criteria name.
func (t *T) ReadSum() uint64 { // want `read path reaches a persistent-memory write/fence: .*ReadSum → .*StoreLine`
	t.pool.StoreLine(0, 0, nil)
	return 0
}

type Sink interface{ Sync() }

type fileSink struct{ pool *pmem.Pool }

func (s *fileSink) Sync() { s.pool.Fence(0) }

// ReadEach fences through interface dispatch, resolved against the
// package-local implementation.
func (t *T) ReadEach(s Sink) uint64 { // want `read path reaches a persistent-memory write/fence: .*ReadEach → .*Sync`
	s.Sync()
	return 0
}

// Annotated entry point: free functions opt in with //onll:readpath.
//
//onll:readpath
func Serve(t *T) uint64 { // want `read path reaches a persistent-memory write/fence: .*Serve → .*Store`
	t.pool.Store(0, 0, 1)
	return 0
}

// A barrier that cannot fence is stale and must be reported.
//
//onll:allowfence(left over from a removed valve call) // want `unused //onll:allowfence on harmless`
func (t *T) harmless() uint64 {
	return t.pool.Load(0, 0)
}
