// Package linepadb is the linepad NEGATIVE fixture: the pubView shape
// — three solo hot lines, one deliberately shared counter line, a
// padded payload tail — plus an unannotated struct the analyzer must
// ignore. No diagnostics expected.
package linepadb

type state interface{ Read(uint64) uint64 }

//onll:linepadded
type stripe struct {
	ver uint64
	_   [7]uint64
	frontier uint64
	_        [7]uint64
	epochHint uint64
	_         [7]uint64
	publishes uint64
	stamps    uint64
	serves    uint64
	_         [5]uint64
	st    state
	idx   uint64
	seqs  []uint64
	epoch uint64
	_     [1]uint64
}

// unpadded is not annotated: no layout opinion applies.
type unpadded struct {
	a uint64
	b byte
}
