// Package atomicb is the atomicmix NEGATIVE fixture: typed atomics,
// disciplined old-style atomics, and a deliberate single-goroutine
// plain write behind //onll:plainok. No diagnostics expected.
package atomicb

import "sync/atomic"

type gauge struct {
	val   uint64
	typed atomic.Uint64
}

func (g *gauge) set(v uint64)  { atomic.StoreUint64(&g.val, v) }
func (g *gauge) read() uint64  { return atomic.LoadUint64(&g.val) }
func (g *gauge) bump()         { g.typed.Add(1) }
func (g *gauge) typedV() uint64 { return g.typed.Load() }

func newGauge(v uint64) *gauge {
	g := &gauge{}
	g.val = v //onll:plainok(constructor: no concurrent accessor exists yet)
	return g
}
