// Package fenceb is the fencepath NEGATIVE fixture: deliberate fences
// behind //onll:allowfence (the eager-baseline read, a valve call),
// fence-free read paths over durable loads, and update paths that may
// fence freely. No diagnostics expected.
package fenceb

import (
	"fencelib"
	"pmem"
)

type E struct {
	pool *pmem.Pool
	log  *fencelib.Log
}

// Read persists the observed head before returning — the eager
// baseline's deliberate fence-per-read, escaped with a reason.
//
//onll:allowfence(eager baseline: the observed linearization must be durable before returning)
func (e *E) Read(code uint64) uint64 {
	v := e.pool.Load(0, 0)
	e.pool.Persist(0, 0, 8)
	return v
}

// TryRead reaches a fence only through fencelib's Valve, which is an
// allowfence barrier in its own package: the fact never propagates.
func (e *E) TryRead(code uint64) (uint64, bool) {
	e.log.Valve()
	return e.log.Peek(), true
}

// Scrub only reads durable words: trivially clean.
func (e *E) Scrub() uint64 {
	return e.pool.DurableWord(0)
}

// Update fences — that is the paper's 1-pfence update side, and update
// paths are not entry points.
func (e *E) Update(code uint64) uint64 {
	e.log.Append(code)
	return 0
}

// readHelper is reachable from Read but behind the barrier; unexported
// helpers by themselves are not entry points either.
func (e *E) readHelper() uint64 {
	e.pool.Fence(0)
	return 0
}
