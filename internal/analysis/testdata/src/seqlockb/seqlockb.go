// Package seqlockb is the seqlockregion NEGATIVE fixture: the real
// tree's region idioms — ok-bailout, release-then-return, both-branch
// release, a release-annotated helper (adoptSlot), append into
// retained storage, atomic method calls while held. No diagnostics
// expected.
package seqlockb

import "sync/atomic"

type view struct {
	ver     uint64
	idx     uint64
	serves  atomic.Uint64
	state   []uint64
	pending []uint64
}

//onll:seqlock(acquire)
func (p *view) tryAcquire() (uint64, bool) {
	v := p.ver
	if v&1 != 0 {
		return 0, false
	}
	p.ver = v + 1
	return v, true
}

//onll:seqlock(release)
func (p *view) release(v uint64) { p.ver = v + 2 }

// adoptSlot releases internally, like the core helper of the same
// name: annotating it release ends its callers' regions at the call.
//
//onll:seqlock(release)
func (p *view) adoptSlot(v uint64) {
	p.idx++
	p.release(v)
}

func publish(p *view, idx uint64) {
	v, ok := p.tryAcquire()
	if !ok {
		return
	}
	if idx > p.idx {
		p.idx = idx
		p.state = append(p.state[:0], p.pending...)
	}
	p.release(v)
}

func serve(p *view, cheap bool) (uint64, bool) {
	v, ok := p.tryAcquire()
	if !ok {
		return 0, false
	}
	if p.idx == 0 {
		p.release(v)
		return 0, false
	}
	p.serves.Add(1)
	if cheap {
		p.release(v)
	} else {
		p.adoptSlot(v)
	}
	return p.idx, true
}

func stampLoop(p *view, nodes []uint64) {
	v, ok := p.tryAcquire()
	if !ok {
		return
	}
	for _, n := range nodes {
		if n > p.idx {
			p.idx = n
		}
	}
	p.release(v)
}
