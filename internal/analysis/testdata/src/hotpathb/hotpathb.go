// Package hotpathb is the hotpath NEGATIVE fixture: the sample-gated
// EWMA clock probe, an allowlisted striped lock, stack struct
// literals, append into retained storage, and an unannotated function
// that may do anything. No diagnostics expected.
package hotpathb

import (
	"sync"
	"time"
)

type costs struct {
	mu      sync.Mutex
	samples int
	ewma    time.Duration
}

func (c *costs) sample() bool { c.samples++; return c.samples%16 == 0 }

// observe is the sample-gated EWMA helper shape: the clock reads only
// run behind the gate, and each carries its reason.
//
//onll:hotpath
func (c *costs) observe(run func()) {
	if c.sample() {
		start := time.Now() //onll:clockok(sample-gated EWMA probe: 1 in 16 after warmup)
		run()
		c.ewma = time.Since(start) //onll:clockok(sample-gated EWMA probe)
		return
	}
	run()
}

//onll:hotpath
func (c *costs) locked(f func()) {
	c.mu.Lock() //onll:lockok(striped shard lock: bounded section, never held across I/O)
	f()
	c.mu.Unlock()
}

type op struct{ code, a uint64 }

//onll:hotpath
func stageOp(code, a uint64, dst []op) []op {
	o := op{code: code, a: a}
	return append(dst, o)
}

//onll:hotpath
func ablation(dst []op) []op {
	return append(dst, []op{{1, 2}}...) //onll:allocok(ablation-only branch: measured, not hot by default)
}

//onll:hotpath
func deliver(ch chan op, o op) {
	ch <- o //onll:chanok(buffered ack delivery: the batcher is channel-structured by design)
}

func cold() []op { return make([]op, 4) }
