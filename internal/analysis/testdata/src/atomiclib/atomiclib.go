// Package atomiclib exports a struct whose field is accessed via
// sync/atomic: the defining package is disciplined, and importing
// fixtures must be caught through the exported fact alone.
package atomiclib

import "sync/atomic"

type Stats struct {
	Spills uint64 // accessed only via sync/atomic here
	Cold   uint64 // plain-only: no fact
}

func (s *Stats) Bump()        { atomic.AddUint64(&s.Spills, 1) }
func (s *Stats) Load() uint64 { return atomic.LoadUint64(&s.Spills) }
func (s *Stats) Tick()        { s.Cold++ }
