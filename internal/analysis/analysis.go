// Package analysis is the repo's static-enforcement layer: a small,
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// driver shape (Analyzer, Pass, diagnostics, cross-package facts) plus
// the ONLL-specific analyzers built on it (subpackages fencepath,
// atomicmix, seqlockregion, hotpath, linepad) and the cmd/onllvet
// front end that runs them over the module.
//
// x/tools itself is deliberately not imported — the module is
// stdlib-only — so the loader resolves dependency types from the
// compiler's export data via `go list -export` (load.go) and the driver
// (driver.go) replays the x/tools contract: packages are analyzed in
// dependency order, analyzers export string-keyed facts about package
// objects, and downstream packages import those facts instead of
// re-analyzing their dependencies' bodies.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer is one named check. Run inspects a single package through
// the Pass and reports diagnostics; cross-package state flows only
// through facts.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Message  string
	Position token.Position
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Position, d.Analyzer, d.Message)
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Ann holds the package's parsed //onll: annotations (anno.go).
	Ann *Annotations
	// Sizes is the target platform's layout model (linepad needs real
	// field offsets, not just types).
	Sizes types.Sizes

	// imports resolves a fact exported by a dependency package under
	// this analyzer's namespace; export records a fact about an object
	// of this package for dependents. Keys must be globally unique —
	// use FuncKey/FieldKey so they embed the package path.
	imports func(key string) (string, bool)
	export  map[string]string
	diags   *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Position: p.Fset.Position(pos),
	})
}

// ExportFact publishes a fact for packages that import this one.
func (p *Pass) ExportFact(key, value string) { p.export[key] = value }

// ImportFact resolves a fact exported by an already-analyzed package
// (or earlier by this one) under the same analyzer.
func (p *Pass) ImportFact(key string) (string, bool) {
	if v, ok := p.export[key]; ok {
		return v, true
	}
	return p.imports(key)
}

// FuncKey is the canonical fact key for a function or method object:
// types.Func.FullName, e.g. "repro/internal/pmem.(*Pool).Fence" or
// "(repro/internal/trace.Interface).Insert" for interface methods. The
// key is a plain string so identity survives the source-vs-export-data
// object split (a package analyzed from source and the same package
// imported by a dependent have distinct *types.Func pointers).
func FuncKey(fn *types.Func) string { return fn.FullName() }

// FieldKey is the fact key for a named struct's field:
// "pkgpath.StructName.FieldName". The owning struct name is not
// recoverable from the field object alone, so callers pass it.
func FieldKey(pkgPath, structName, fieldName string) string {
	return pkgPath + "." + structName + "." + fieldName
}

// CalleeOf resolves a call expression to the function or method object
// it invokes, or nil for builtins, conversions, and dynamic calls
// through function values. Interface method calls resolve to the
// interface's *types.Func — fact-keyed like any other function.
func CalleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}
