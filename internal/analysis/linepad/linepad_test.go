package linepad_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/linepad"
)

func TestLinePad(t *testing.T) {
	analysistest.Run(t, "../testdata", linepad.Analyzer, "linepada", "linepadb")
}
