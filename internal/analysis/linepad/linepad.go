// Package linepad is the fieldalignment check for the repo's
// line-padded hot structs (the pubView stripe): structs annotated
// //onll:linepadded group their fields into 64-byte cache lines with
// blank pad arrays ("_ [N]uint64"), and the analyzer recomputes the
// layout with the target platform's sizes to verify the grouping — the
// static twin of the unsafe.Offsetof layout test, so the two can never
// drift apart.
//
// A "padded group" is a maximal run of live fields followed by one or
// more blank pads. Each padded group must start and end on a 64-byte
// boundary and its live fields must fit in a single line (fields that
// deliberately share a line — the pubView diagnostic counters — simply
// form one group). The struct's total size must also be a multiple of
// 64: these structs are used as array elements (one stripe per slot),
// and a ragged tail would put the next element's hot line on this
// element's payload.
package linepad

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

const lineSize = 64 // must match pmem.LineSize

var Analyzer = &analysis.Analyzer{
	Name: "linepad",
	Doc:  "//onll:linepadded structs must group fields into whole 64-byte cache lines",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, s := range gd.Specs {
				ts, ok := s.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if _, ok := pass.Ann.Type(ts, "linepadded"); !ok {
					continue
				}
				checkStruct(pass, ts)
			}
		}
	}
	return nil
}

func checkStruct(pass *analysis.Pass, ts *ast.TypeSpec) {
	obj := pass.TypesInfo.Defs[ts.Name]
	if obj == nil {
		return
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		pass.Reportf(ts.Pos(), "//onll:linepadded on non-struct type %s", ts.Name.Name)
		return
	}
	n := st.NumFields()
	if n == 0 {
		return
	}
	fields := make([]*types.Var, n)
	for i := range fields {
		fields[i] = st.Field(i)
	}
	offsets := pass.Sizes.Offsetsof(fields)
	total := pass.Sizes.Sizeof(obj.Type())
	pos := fieldPositions(ts, n)

	// Split into groups: live fields up to and including their trailing
	// pads. A group with no pads is only legal as the struct tail if it
	// still honors the line math (caught by the total-size check plus
	// the previous group's end check).
	i := 0
	for i < n {
		start := i
		for i < n && fields[i].Name() != "_" {
			i++
		}
		lastLive := i - 1
		for i < n && fields[i].Name() == "_" {
			i++
		}
		hasPad := fields[i-1].Name() == "_"
		groupStart := offsets[start]
		groupEnd := total
		if i < n {
			groupEnd = offsets[i]
		}
		if groupStart%lineSize != 0 {
			pass.Reportf(pos[start], "%s.%s: padded group starts at offset %d, not on a %d-byte line boundary", ts.Name.Name, fields[start].Name(), groupStart, lineSize)
		}
		if hasPad && groupEnd%lineSize != 0 {
			pass.Reportf(pos[start], "%s.%s: padded group ends at offset %d, not on a %d-byte line boundary (pad is the wrong size)", ts.Name.Name, fields[start].Name(), groupEnd, lineSize)
		}
		if hasPad && lastLive >= start {
			liveEnd := offsets[lastLive] + pass.Sizes.Sizeof(fields[lastLive].Type())
			if liveEnd-groupStart > lineSize {
				pass.Reportf(pos[start], "%s.%s: live fields span %d bytes, more than one %d-byte line", ts.Name.Name, fields[start].Name(), liveEnd-groupStart, lineSize)
			}
		}
	}
	if total%lineSize != 0 {
		pass.Reportf(ts.Pos(), "%s: total size %d is not a multiple of %d: array elements will share cache lines (pad the tail)", ts.Name.Name, total, lineSize)
	}
}

// fieldPositions flattens the AST field list (one ast.Field may declare
// several names) to align with types.Struct field indices.
func fieldPositions(ts *ast.TypeSpec, n int) []token.Pos {
	pos := make([]token.Pos, 0, n)
	if stype, ok := ts.Type.(*ast.StructType); ok {
		for _, f := range stype.Fields.List {
			if len(f.Names) == 0 {
				pos = append(pos, f.Pos()) // embedded
				continue
			}
			for _, name := range f.Names {
				pos = append(pos, name.Pos())
			}
		}
	}
	for len(pos) < n {
		pos = append(pos, ts.Pos())
	}
	return pos
}
