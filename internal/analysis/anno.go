package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// An Annotation is one parsed //onll:kind(arg) marker. Arg is empty
// when the parentheses are omitted.
type Annotation struct {
	Kind string
	Arg  string
	Pos  token.Pos
}

// Annotations indexes a package's //onll: markers three ways: by the
// function declaration they document, by the type declaration they
// document, and by (file, line) for statement-level escapes written as
// trailing comments. See doc.go for the vocabulary.
type Annotations struct {
	fset   *token.FileSet
	byFunc map[*ast.FuncDecl][]Annotation
	byType map[*ast.TypeSpec][]Annotation
	byLine map[string]map[int][]Annotation
}

// ParseAnnotations scans every comment in the files. Files must have
// been parsed with parser.ParseComments.
func ParseAnnotations(fset *token.FileSet, files []*ast.File) *Annotations {
	a := &Annotations{
		fset:   fset,
		byFunc: map[*ast.FuncDecl][]Annotation{},
		byType: map[*ast.TypeSpec][]Annotation{},
		byLine: map[string]map[int][]Annotation{},
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				ann, ok := parseMarker(c)
				if !ok {
					continue
				}
				pos := fset.Position(c.Slash)
				lines := a.byLine[pos.Filename]
				if lines == nil {
					lines = map[int][]Annotation{}
					a.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], ann)
			}
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				a.byFunc[d] = markersIn(d.Doc)
			case *ast.GenDecl:
				if d.Tok != token.TYPE {
					continue
				}
				for _, s := range d.Specs {
					ts, ok := s.(*ast.TypeSpec)
					if !ok {
						continue
					}
					anns := markersIn(ts.Doc)
					if len(anns) == 0 && len(d.Specs) == 1 {
						anns = markersIn(d.Doc)
					}
					if len(anns) > 0 {
						a.byType[ts] = anns
					}
				}
			}
		}
	}
	return a
}

func markersIn(doc *ast.CommentGroup) []Annotation {
	if doc == nil {
		return nil
	}
	var out []Annotation
	for _, c := range doc.List {
		if ann, ok := parseMarker(c); ok {
			out = append(out, ann)
		}
	}
	return out
}

func parseMarker(c *ast.Comment) (Annotation, bool) {
	text, ok := strings.CutPrefix(c.Text, "//onll:")
	if !ok {
		return Annotation{}, false
	}
	text = strings.TrimSpace(text)
	kind, rest := text, ""
	if i := strings.IndexByte(text, '('); i >= 0 {
		kind = text[:i]
		rest = strings.TrimSuffix(text[i+1:], ")")
	}
	if kind == "" {
		return Annotation{}, false
	}
	return Annotation{Kind: kind, Arg: strings.TrimSpace(rest), Pos: c.Slash}, true
}

// Func returns the first kind-annotation in fd's doc comment.
func (a *Annotations) Func(fd *ast.FuncDecl, kind string) (Annotation, bool) {
	for _, ann := range a.byFunc[fd] {
		if ann.Kind == kind {
			return ann, true
		}
	}
	return Annotation{}, false
}

// Type returns the first kind-annotation documenting the type spec.
func (a *Annotations) Type(ts *ast.TypeSpec, kind string) (Annotation, bool) {
	for _, ann := range a.byType[ts] {
		if ann.Kind == kind {
			return ann, true
		}
	}
	return Annotation{}, false
}

// Line reports whether a kind-annotation sits on the same source line
// as pos — the statement-level escape form (trailing comment).
func (a *Annotations) Line(pos token.Pos, kind string) (Annotation, bool) {
	p := a.fset.Position(pos)
	for _, ann := range a.byLine[p.Filename][p.Line] {
		if ann.Kind == kind {
			return ann, true
		}
	}
	return Annotation{}, false
}
