// Package atomicmix mechanizes the PR 9 torn-read audit: any variable
// or struct field whose address is passed to a sync/atomic function
// anywhere must never be read or written plainly elsewhere — a plain
// access on one side of an atomic publication is exactly the race the
// hand audit found on the plog spill counter.
//
// Typed atomics (atomic.Int64 and friends) are already safe by
// construction — the type system forbids plain access — so the
// analyzer's job is the old-style `atomic.AddUint64(&x.f, 1)` surface.
// Any use of such a location outside a sync/atomic argument is
// reported, including taking its address (an escaping pointer defeats
// the audit). //onll:plainok(reason) on the access line escapes
// deliberate exceptions (single-goroutine phases, accesses ordered by
// a lock all atomic writers also take).
//
// Fields of named structs export facts, so a package that accesses an
// imported field plainly is caught even when the atomic accesses all
// live in the defining package. The reverse direction (defining
// package plain, importer atomic) is found when the defining package's
// own uses are scanned against its own atomic sites.
package atomicmix

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc:  "atomically-accessed fields and variables must never be accessed plainly",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	atomicAt := map[types.Object]string{} // object -> position of one atomic access
	inAtomicArg := map[*ast.Ident]bool{}  // the &x.f operands of atomic calls
	owner := map[types.Object]string{}    // field object -> struct type name

	// Pass 1: collect atomic access sites.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := analysis.CalleeOf(pass.TypesInfo, call)
			if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sync/atomic" {
				return true
			}
			if sig, ok := callee.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // typed-atomic method: safe by type
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok {
					continue
				}
				obj, id, structName := addrOperand(pass, un)
				if obj == nil {
					continue
				}
				if _, seen := atomicAt[obj]; !seen {
					atomicAt[obj] = pass.Fset.Position(un.Pos()).String()
				}
				inAtomicArg[id] = true
				if structName != "" {
					owner[obj] = structName
				}
			}
			return true
		})
	}

	// Export facts for fields of named structs so importing packages
	// can check their own accesses.
	for obj, pos := range atomicAt {
		if sn := owner[obj]; sn != "" {
			pass.ExportFact(analysis.FieldKey(pass.Pkg.Path(), sn, obj.Name()), pos)
		} else if obj.Parent() == pass.Pkg.Scope() {
			pass.ExportFact(pass.Pkg.Path()+"."+obj.Name(), pos)
		}
	}

	// Pass 2: flag every other use of those objects. SelectorExpr
	// children include the Sel ident, which ast.Inspect visits again on
	// its own; the handled set prevents the double visit.
	handled := map[*ast.Ident]bool{}
	check := func(id *ast.Ident, structName string) {
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || inAtomicArg[id] {
			return
		}
		where, local := atomicAt[v]
		if !local {
			// Imported location: consult the defining package's facts.
			switch {
			case v.IsField() && structName != "" && v.Pkg() != nil && v.Pkg() != pass.Pkg:
				if where, ok = pass.ImportFact(analysis.FieldKey(v.Pkg().Path(), structName, v.Name())); !ok {
					return
				}
			case !v.IsField() && v.Pkg() != nil && v.Pkg() != pass.Pkg && v.Parent() == v.Pkg().Scope():
				if where, ok = pass.ImportFact(v.Pkg().Path() + "." + v.Name()); !ok {
					return
				}
			default:
				return
			}
		}
		if _, escaped := pass.Ann.Line(id.Pos(), "plainok"); escaped {
			return
		}
		pass.Reportf(id.Pos(), "%s is accessed via sync/atomic (at %s) but accessed plainly here; use sync/atomic or annotate //onll:plainok(reason)", v.Name(), where)
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.SelectorExpr:
				handled[e.Sel] = true
				var structName string
				if sel, ok := pass.TypesInfo.Selections[e]; ok {
					structName = namedOf(sel.Recv())
				}
				check(e.Sel, structName)
			case *ast.Ident:
				if !handled[e] {
					check(e, "")
				}
			}
			return true
		})
	}
	return nil
}

// addrOperand resolves &x.f or &v to the variable object, the selected
// identifier, and the owning struct's type name (fields only).
func addrOperand(pass *analysis.Pass, un *ast.UnaryExpr) (types.Object, *ast.Ident, string) {
	switch x := ast.Unparen(un.X).(type) {
	case *ast.SelectorExpr:
		obj := pass.TypesInfo.Uses[x.Sel]
		var structName string
		if sel, ok := pass.TypesInfo.Selections[x]; ok {
			structName = namedOf(sel.Recv())
		}
		return obj, x.Sel, structName
	case *ast.Ident:
		return pass.TypesInfo.Uses[x], x, ""
	}
	return nil, nil, ""
}

// namedOf unwraps pointers and returns the receiver's named-type name.
func namedOf(t types.Type) string {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}
