package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
)

// cacheVersion invalidates every cached result when the driver or any
// analyzer's semantics change; bump it alongside analyzer edits.
const cacheVersion = "onllvet-1"

// Options configures a driver run.
type Options struct {
	Analyzers []*Analyzer
	// CacheDir, when non-empty, persists per-package facts and
	// diagnostics keyed by a content hash of the package and its
	// module-local dependencies, so an unchanged package is never
	// re-analyzed (the CI fact cache).
	CacheDir string
}

// cacheEntry is the serialized analysis result of one package.
type cacheEntry struct {
	Facts map[string]map[string]string // analyzer -> key -> value
	Diags []cachedDiag
}

type cachedDiag struct {
	Analyzer string
	File     string // relative to the program root
	Line     int
	Col      int
	Message  string
}

// Run analyzes prog's packages in order and returns the diagnostics of
// every Report package, sorted by position.
func Run(prog *Program, opts Options) ([]Diagnostic, error) {
	// facts[analyzer][key] accumulates every package's exports; keys
	// embed package paths so one flat namespace per analyzer suffices.
	facts := map[string]map[string]string{}
	for _, a := range opts.Analyzers {
		facts[a.Name] = map[string]string{}
	}
	hashes := map[string]string{} // pkg path -> cache key, for dependents
	var out []Diagnostic
	for _, pkg := range prog.Packages {
		var key string
		if opts.CacheDir != "" {
			var err error
			if key, err = cacheKey(prog, pkg, opts, hashes); err != nil {
				return nil, err
			}
			hashes[pkg.PkgPath] = key
			if ent, ok := readCache(opts.CacheDir, key); ok {
				for name, kv := range ent.Facts {
					for k, v := range kv {
						facts[name][k] = v
					}
				}
				if pkg.Report {
					for _, d := range ent.Diags {
						out = append(out, Diagnostic{
							Analyzer: d.Analyzer,
							Message:  d.Message,
							Position: token.Position{Filename: filepath.Join(prog.Dir, d.File), Line: d.Line, Column: d.Col},
						})
					}
				}
				continue
			}
		}
		if err := prog.TypeCheck(pkg); err != nil {
			return nil, err
		}
		ann := ParseAnnotations(prog.Fset, pkg.Syntax)
		ent := cacheEntry{Facts: map[string]map[string]string{}}
		var pkgDiags []Diagnostic
		for _, a := range opts.Analyzers {
			global := facts[a.Name]
			pass := &Pass{
				Analyzer:  a,
				Fset:      prog.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Ann:       ann,
				Sizes:     types.SizesFor("gc", runtime.GOARCH),
				imports: func(key string) (string, bool) {
					v, ok := global[key]
					return v, ok
				},
				export: map[string]string{},
				diags:  &pkgDiags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.PkgPath, err)
			}
			if len(pass.export) > 0 {
				ent.Facts[a.Name] = pass.export
				for k, v := range pass.export {
					global[k] = v
				}
			}
		}
		// Release the syntax and type info: a full-module run holds
		// dozens of packages, and dependents only need facts. Types
		// stays — SourceImports siblings resolve through it.
		pkg.Syntax, pkg.Info = nil, nil
		if pkg.Report {
			out = append(out, pkgDiags...)
		}
		if opts.CacheDir != "" {
			for _, d := range pkgDiags {
				rel, err := filepath.Rel(prog.Dir, d.Position.Filename)
				if err != nil {
					rel = d.Position.Filename
				}
				ent.Diags = append(ent.Diags, cachedDiag{
					Analyzer: d.Analyzer, File: rel,
					Line: d.Position.Line, Col: d.Position.Column,
					Message: d.Message,
				})
			}
			writeCache(opts.CacheDir, key, ent)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Position, out[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out, nil
}

// cacheKey hashes everything a package's analysis result depends on:
// driver version, toolchain, analyzer set, the package's own sources,
// and the cache keys of its already-hashed module-local dependencies
// (external deps are covered by the toolchain version).
func cacheKey(prog *Program, pkg *Package, opts Options, depKeys map[string]string) (string, error) {
	h := sha256.New()
	fmt.Fprintln(h, cacheVersion, runtime.Version(), runtime.GOARCH)
	for _, a := range opts.Analyzers {
		fmt.Fprintln(h, a.Name)
	}
	fmt.Fprintln(h, pkg.PkgPath)
	for _, f := range pkg.GoFiles {
		data, err := os.ReadFile(f)
		if err != nil {
			return "", err
		}
		fmt.Fprintln(h, filepath.Base(f), len(data))
		h.Write(data)
	}
	// Imports influence analysis through both types and facts; fold in
	// the dep keys computed earlier in this run (dependency order
	// guarantees module-local deps were hashed first).
	imps, err := moduleImports(pkg)
	if err != nil {
		return "", err
	}
	for _, ip := range imps {
		if k, ok := depKeys[ip]; ok {
			fmt.Fprintln(h, "dep", ip, k)
		} else {
			fmt.Fprintln(h, "ext", ip)
		}
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// moduleImports returns the package's import paths, sorted. It parses
// only import clauses, so hashing stays cheap on cache hits.
func moduleImports(pkg *Package) ([]string, error) {
	seen := map[string]bool{}
	for _, f := range pkg.GoFiles {
		paths, err := importsOf(f)
		if err != nil {
			return nil, err
		}
		for _, p := range paths {
			seen[p] = true
		}
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out, nil
}

func readCache(dir, key string) (cacheEntry, bool) {
	var ent cacheEntry
	data, err := os.ReadFile(filepath.Join(dir, key+".json"))
	if err != nil || json.Unmarshal(data, &ent) != nil {
		return ent, false
	}
	return ent, true
}

func writeCache(dir, key string, ent cacheEntry) {
	// Caching is best-effort: analysis correctness never depends on it.
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	data, err := json.Marshal(ent)
	if err != nil {
		return
	}
	tmp := filepath.Join(dir, key+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return
	}
	os.Rename(tmp, filepath.Join(dir, key+".json"))
}
