// Package analysistest runs an analyzer over GOPATH-style fixture
// packages and matches its diagnostics against // want "regexp"
// comments, mirroring the x/tools harness of the same name: every
// diagnostic must be expected by a want on its line, and every want
// must be matched by a diagnostic.
package analysistest

import (
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// wantRe extracts the quoted patterns of one want comment. Multiple
// patterns ("// want `a` \"b\"") each expect one diagnostic.
var wantRe = regexp.MustCompile("//\\s*want\\s+((?:(?:`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")\\s*)+)")

var patRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads the fixture packages under dir/src named by patterns,
// applies the analyzer (dependencies included, for facts), and checks
// the diagnostics of the named packages against their want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	prog, err := analysis.LoadFixture(dir, patterns...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	diags, err := analysis.Run(prog, analysis.Options{Analyzers: []*analysis.Analyzer{a}})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	var wants []*want
	for _, pkg := range prog.Packages {
		if !pkg.Report {
			continue
		}
		for _, f := range pkg.GoFiles {
			ws, err := wantsIn(f)
			if err != nil {
				t.Fatalf("parsing wants in %s: %v", f, err)
			}
			wants = append(wants, ws...)
		}
	}
	for _, d := range diags {
		ok := false
		for _, w := range wants {
			if w.matched || w.file != d.Position.Filename || w.line != d.Position.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.matched, ok = true, true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func wantsIn(file string) ([]*want, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	var out []*want
	for i, line := range strings.Split(string(data), "\n") {
		m := wantRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		for _, q := range patRe.FindAllString(m[1], -1) {
			var pat string
			if q[0] == '`' {
				pat = q[1 : len(q)-1]
			} else if pat, err = strconv.Unquote(q); err != nil {
				return nil, fmt.Errorf("line %d: %v", i+1, err)
			}
			re, err := regexp.Compile(pat)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", i+1, err)
			}
			out = append(out, &want{file: file, line: i + 1, re: re})
		}
	}
	return out, nil
}
