// Package all composes the full onllvet analyzer suite — one import
// for the multichecker and the whole-tree regression test.
package all

import (
	"repro/internal/analysis"
	"repro/internal/analysis/atomicmix"
	"repro/internal/analysis/fencepath"
	"repro/internal/analysis/hotpath"
	"repro/internal/analysis/linepad"
	"repro/internal/analysis/seqlockregion"
)

// Analyzers is the suite in a deterministic order.
var Analyzers = []*analysis.Analyzer{
	fencepath.Analyzer,
	atomicmix.Analyzer,
	seqlockregion.Analyzer,
	hotpath.Analyzer,
	linepad.Analyzer,
}
