package all_test

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/all"
)

// TestModuleTreeClean is the acceptance regression for the static
// invariant gate: the whole module must be onllvet-clean. If a change
// reintroduces a fence on the read fast path, a plain read of an
// atomic field, a seqlock-region violation, an un-gated clock read on
// a hot path, or a ragged line-padded struct, this test — and so
// `go test ./...` — fails with the same diagnostics onllvet prints.
func TestModuleTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module load is slow; skipped in -short mode")
	}
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Skipf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == "/dev/null" {
		t.Skip("no module context")
	}
	root := filepath.Dir(gomod)
	prog, err := analysis.LoadModule(root, "./...")
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	if len(prog.Packages) < 10 {
		t.Fatalf("LoadModule found only %d packages; the module load is broken", len(prog.Packages))
	}
	diags, err := analysis.Run(prog, analysis.Options{Analyzers: all.Analyzers})
	if err != nil {
		t.Fatalf("analysis.Run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s: %s: %s", d.Position, d.Analyzer, d.Message)
	}
}
