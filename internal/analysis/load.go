package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// A Package is one unit of analysis: a set of source files to
// type-check, plus the two ways its imports resolve — source-loaded
// sibling packages (fixture mode) or compiler export data (everything
// else).
type Package struct {
	PkgPath string
	Dir     string
	GoFiles []string // absolute paths, tests excluded
	// Report marks packages whose diagnostics the caller asked for;
	// fixture dependencies are analyzed for facts but not reported.
	Report bool
	// SourceImports maps import paths to sibling packages type-checked
	// from source (fixture mode only; module mode resolves every import
	// from export data).
	SourceImports map[string]*Package

	Syntax []*ast.File
	Types  *types.Package
	Info   *types.Info
}

// A Program is a loaded set of packages in dependency order, sharing
// one FileSet and one export-data importer.
type Program struct {
	Fset *token.FileSet
	// Packages is every package to analyze, dependencies first.
	Packages []*Package
	// Dir is the load root (module root, or the fixture src root);
	// diagnostics render file paths relative to it.
	Dir string

	exports map[string]string // import path -> export data file
	gc      types.ImporterFrom
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	Module     *struct{ Path string }
	DepsErrors []*struct{ Err string }
	Error      *struct{ Err string }
}

func runGoList(dir string, args ...string) ([]*listPkg, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, errb.String())
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(&out)
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// LoadModule loads the packages matching patterns (e.g. "./...") in the
// module rooted at or above dir, compiling export data for every
// dependency as a side effect. Only module-local packages are analyzed
// from source; all imports resolve through export data.
func LoadModule(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"-deps", "-export", "-json=ImportPath,Name,Dir,GoFiles,Export,Standard,Module,Error"}, patterns...)
	listed, err := runGoList(dir, args...)
	if err != nil {
		return nil, err
	}
	// -deps lists dependencies before dependents: exactly the analysis
	// order the facts system needs.
	targets, err := runGoList(dir, append([]string{"-json=ImportPath"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	want := map[string]bool{}
	root := dir
	for _, t := range targets {
		want[strings.TrimSpace(t.ImportPath)] = true
	}
	prog := &Program{Fset: token.NewFileSet(), Dir: root, exports: map[string]string{}}
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			prog.exports[p.ImportPath] = p.Export
		}
		if !want[p.ImportPath] {
			continue
		}
		pkg := &Package{PkgPath: p.ImportPath, Dir: p.Dir, Report: true}
		for _, f := range p.GoFiles {
			pkg.GoFiles = append(pkg.GoFiles, filepath.Join(p.Dir, f))
		}
		if len(pkg.GoFiles) > 0 {
			prog.Packages = append(prog.Packages, pkg)
		}
	}
	prog.initImporter()
	return prog, nil
}

// LoadFixture loads GOPATH-style fixture packages: each path names a
// directory under root/src. Fixture-internal imports are resolved from
// source (and analyzed too, for facts, without reporting); anything
// else resolves from the host toolchain's export data.
func LoadFixture(root string, paths ...string) (*Program, error) {
	prog := &Program{Fset: token.NewFileSet(), Dir: filepath.Join(root, "src"), exports: map[string]string{}}
	seen := map[string]*Package{}
	var external []string
	var load func(path string, report bool) (*Package, error)
	load = func(path string, report bool) (*Package, error) {
		if pkg, ok := seen[path]; ok {
			pkg.Report = pkg.Report || report
			return pkg, nil
		}
		dir := filepath.Join(root, "src", filepath.FromSlash(path))
		ents, err := os.ReadDir(dir)
		if err != nil {
			return nil, fmt.Errorf("fixture package %s: %v", path, err)
		}
		pkg := &Package{PkgPath: path, Dir: dir, Report: report, SourceImports: map[string]*Package{}}
		seen[path] = pkg
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				pkg.GoFiles = append(pkg.GoFiles, filepath.Join(dir, e.Name()))
			}
		}
		sort.Strings(pkg.GoFiles)
		// Resolve imports: fixture sibling if the directory exists,
		// external (toolchain export data) otherwise.
		for _, f := range pkg.GoFiles {
			src, err := parser.ParseFile(prog.Fset, f, nil, parser.ImportsOnly)
			if err != nil {
				return nil, err
			}
			for _, imp := range src.Imports {
				ipath, _ := strconv.Unquote(imp.Path.Value)
				if ipath == "unsafe" || pkg.SourceImports[ipath] != nil {
					continue
				}
				if st, err := os.Stat(filepath.Join(root, "src", filepath.FromSlash(ipath))); err == nil && st.IsDir() {
					dep, err := load(ipath, false)
					if err != nil {
						return nil, err
					}
					pkg.SourceImports[ipath] = dep
				} else {
					external = append(external, ipath)
				}
			}
		}
		// Dependencies-first order, like -deps.
		prog.Packages = append(prog.Packages, pkg)
		return pkg, nil
	}
	for _, p := range paths {
		if _, err := load(p, true); err != nil {
			return nil, err
		}
	}
	if len(external) > 0 {
		sort.Strings(external)
		external = slicesCompact(external)
		args := append([]string{"-deps", "-export", "-json=ImportPath,Export"}, external...)
		listed, err := runGoList(root, args...)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				prog.exports[p.ImportPath] = p.Export
			}
		}
	}
	prog.initImporter()
	return prog, nil
}

// importsOf parses only f's import clause and returns the paths.
func importsOf(f string) ([]string, error) {
	src, err := parser.ParseFile(token.NewFileSet(), f, nil, parser.ImportsOnly)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, imp := range src.Imports {
		p, _ := strconv.Unquote(imp.Path.Value)
		out = append(out, p)
	}
	return out, nil
}

func slicesCompact(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

func (prog *Program) initImporter() {
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := prog.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	prog.gc = importer.ForCompiler(prog.Fset, "gc", lookup).(types.ImporterFrom)
}

// pkgImporter resolves one package's imports: source siblings first,
// then export data. It satisfies types.Importer.
type pkgImporter struct {
	prog *Program
	pkg  *Package
}

func (pi pkgImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dep, ok := pi.pkg.SourceImports[path]; ok {
		if dep.Types == nil {
			return nil, fmt.Errorf("import cycle or unchecked fixture dependency %q", path)
		}
		return dep.Types, nil
	}
	return pi.prog.gc.Import(path)
}

// TypeCheck parses and type-checks pkg in place. Dependencies listed in
// SourceImports must have been checked already (Program.Packages order
// guarantees this).
func (prog *Program) TypeCheck(pkg *Package) error {
	pkg.Syntax = pkg.Syntax[:0]
	for _, f := range pkg.GoFiles {
		src, err := parser.ParseFile(prog.Fset, f, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		pkg.Syntax = append(pkg.Syntax, src)
	}
	conf := types.Config{
		Importer: pkgImporter{prog, pkg},
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	tpkg, err := conf.Check(pkg.PkgPath, prog.Fset, pkg.Syntax, pkg.Info)
	if err != nil {
		return fmt.Errorf("type-checking %s: %v", pkg.PkgPath, err)
	}
	pkg.Types = tpkg
	return nil
}
