package analysis

// Annotation conventions
//
// The analyzers are driven by //onll: markers in ordinary comments.
// Two positions carry meaning:
//
//   - a marker in a function's (or type's) doc comment applies to the
//     whole declaration;
//   - a marker written as a trailing comment applies to that source
//     line only — the statement-level escape form.
//
// Declaration markers:
//
//	//onll:hotpath
//	    The function is on the update/read/Stage fast path: the hotpath
//	    analyzer forbids allocations (make, new, slice/map literals,
//	    closures), channel operations, goroutine launches, clock reads
//	    (time.Now/Since) and mutex acquisition inside it. Escapes below.
//
//	//onll:readpath
//	    The function is a read-side entry point for the fencepath
//	    analyzer, in addition to the built-in entry set (exported
//	    methods named Read, TryRead, ReadEach, ReadEachInto, ReadSum,
//	    Scrub). Nothing reachable from it may issue a persistent-memory
//	    write or fence — the paper's 0-pfence read invariant.
//
//	//onll:allowfence(reason)
//	    The function deliberately fences (a baseline that persists on
//	    reads, the pressure valve): fencepath stops propagating through
//	    it and does not report it. The marker is itself reported when
//	    the function cannot actually reach a fence — stale escapes rot
//	    the audit, so they fail the build.
//
//	//onll:seqlock(acquire) / //onll:seqlock(release)
//	    The function acquires (odd version CAS) or releases a
//	    seqlock-style stripe. The seqlockregion analyzer checks every
//	    caller lexically: between an acquire and the covering release it
//	    forbids allocations, channel operations, goroutine launches and
//	    calls that may block, and flags any return path that would leave
//	    the version odd. A function that releases internally (adoptSlot)
//	    is annotated release so its callers' regions end at the call.
//
//	//onll:linepadded
//	    The struct's fields are grouped into cache lines by blank pad
//	    arrays ("_ [N]uint64"): the linepad analyzer recomputes the
//	    layout with the target sizes and reports any padded group that
//	    does not start and end on a 64-byte line boundary or whose live
//	    fields spill over one line — the static twin of the
//	    unsafe.Offsetof layout test on the pubView stripe.
//
// Line escapes (trailing comments; the reason is mandatory and shows
// up in reviews, like a nolint directive that has to justify itself):
//
//	//onll:clockok(reason)   hotpath: this clock read is deliberate
//	                         (sample-gated EWMA probe, gated timing)
//	//onll:lockok(reason)    hotpath: this lock is allowlisted (striped
//	                         pool shard, bounded critical section)
//	//onll:allocok(reason)   hotpath: this allocation is deliberate
//	                         (ablation-only branch, cold error path)
//	//onll:chanok(reason)    hotpath: this channel operation or
//	                         goroutine launch is structural (the
//	                         batcher's ack delivery channels)
//	//onll:plainok(reason)   atomicmix: this plain access of an
//	                         atomically-written location is safe
//	                         (single-goroutine phase, under a lock that
//	                         orders it with every atomic writer)
//
// Run the suite with
//
//	go run ./cmd/onllvet ./...
//
// which also runs the stock `go vet` passes first; CI's staticanalysis
// job gates merges on a clean run (DESIGN.md §3.11 maps each analyzer
// to the paper invariant or past hand-audit it replaces).
