// Package hotpath checks functions annotated //onll:hotpath — the
// update/read/Stage paths and trace walks whose per-op cost the repo's
// benchmarks pin. Inside them it forbids, lexically and directly (no
// transitive propagation — allocation pins and the other analyzers
// cover callees):
//
//   - allocations: make, new, slice/map composite literals, closures
//     (escape: //onll:allocok(reason) on the line);
//   - clock reads: time.Now, time.Since — the cost-model EWMA samples
//     the clock behind an explicit gate, and an un-gated read is
//     exactly the class the PR 9 timing audit chased by hand
//     (escape: //onll:clockok(reason));
//   - mutex acquisition: sync.Mutex/RWMutex Lock/RLock — the pool's
//     striped shard locks are the one allowed case and each takes a
//     line escape naming why (//onll:lockok(reason));
//   - goroutine launches and channel operations (escape:
//     //onll:chanok(reason) — the batcher's ack delivery is the one
//     structural case).
//
// append and struct-valued composite literals are deliberately NOT
// flagged: append-into-retained-storage is the repo's steady-state-
// zero-alloc idiom, stack struct literals are free, and the runtime
// allocs/op pins catch regressions in both.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc:  "//onll:hotpath functions must not allocate, read the clock un-gated, or take non-allowlisted locks",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, ok := pass.Ann.Func(fd, "hotpath"); !ok {
				continue
			}
			check(pass, fd)
		}
	}
	return nil
}

func check(pass *analysis.Pass, fd *ast.FuncDecl) {
	report := func(pos token.Pos, escape, format string, args ...any) {
		if _, ok := pass.Ann.Line(pos, escape); ok {
			return
		}
		args = append(args, fd.Name.Name, escape)
		pass.Reportf(pos, format+" in hotpath function %s (annotate //onll:%s(reason) if deliberate)", args...)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			report(e.Pos(), "allocok", "closure allocates")
			return false // the literal is the violation; its body runs elsewhere
		case *ast.GoStmt:
			report(e.Pos(), "chanok", "goroutine launch")
		case *ast.SendStmt:
			report(e.Pos(), "chanok", "channel send")
		case *ast.SelectStmt:
			report(e.Pos(), "chanok", "select")
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				report(e.Pos(), "chanok", "channel receive")
			}
		case *ast.CompositeLit:
			switch pass.TypesInfo.TypeOf(e).Underlying().(type) {
			case *types.Slice, *types.Map:
				report(e.Pos(), "allocok", "slice/map literal allocates")
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "make", "new":
						report(e.Pos(), "allocok", b.Name()+" allocates")
					}
					return true
				}
			}
			fn := analysis.CalleeOf(pass.TypesInfo, e)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch full := fn.FullName(); full {
			case "time.Now", "time.Since":
				report(e.Pos(), "clockok", "un-gated clock read (%s)", full)
			case "(*sync.Mutex).Lock", "(*sync.RWMutex).Lock", "(*sync.RWMutex).RLock":
				report(e.Pos(), "lockok", "lock acquisition (%s)", full)
			}
		}
		return true
	})
}
