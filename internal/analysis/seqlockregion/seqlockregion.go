// Package seqlockregion checks the stripe-slot discipline of the
// published-view fast path: between a seqlock acquire (the odd-version
// CAS, //onll:seqlock(acquire)) and the covering release
// (//onll:seqlock(release)), the holder must not allocate, touch
// channels, start goroutines, or call anything that may block — a
// suspended holder merely disables the stripe (contenders never wait),
// but a blocked or GC-stalled one extends that window arbitrarily —
// and every return path must release first, or the version is left odd
// and the stripe is dead for the rest of the run (the bug class PR 5's
// crash hygiene patched reactively).
//
// The analysis is a structural walk over each function's statements,
// tracking whether the lock is held along the way. It understands the
// repo's region idioms: the `v, ok := p.tryAcquire(); if !ok { return }`
// bailout, release-then-return sequences, both branches of an if
// releasing, and helpers that release internally (adoptSlot) when they
// are annotated release. Regions are lexical per function: a helper
// called while the lock is held is not re-checked here (installView's
// one-time lazy allocation is deliberate), and a loop body is walked
// once with the state it enters with.
package seqlockregion

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "seqlockregion",
	Doc:  "no allocation, channel ops, blocking calls or held returns inside seqlock stripe regions",
	Run:  run,
}

type lockState int

const (
	free lockState = iota
	held
	// leaked means control merged from held and free paths — any
	// further return is reported as "may leave the version odd".
	leaked
)

type checker struct {
	pass     *analysis.Pass
	acquire  map[*types.Func]bool
	release  map[*types.Func]bool
	okVar    types.Object // the bool result of the last acquire
	reported map[token.Pos]bool
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:     pass,
		acquire:  map[*types.Func]bool{},
		release:  map[*types.Func]bool{},
		reported: map[token.Pos]bool{},
	}
	// Collect the annotated acquire/release functions and export them
	// as facts (callers in other packages inherit the discipline).
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			if _, ok := pass.Ann.Func(fd, "seqlock"); ok {
				ann, _ := pass.Ann.Func(fd, "seqlock")
				switch ann.Arg {
				case "acquire":
					c.acquire[obj] = true
					pass.ExportFact(analysis.FuncKey(obj), "acquire")
				case "release":
					c.release[obj] = true
					pass.ExportFact(analysis.FuncKey(obj), "release")
				default:
					pass.Reportf(ann.Pos, "malformed //onll:seqlock(%s): want acquire or release", ann.Arg)
				}
			}
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			// The release helper itself legitimately touches the lock
			// it did not acquire; everyone else is walked.
			if obj != nil && (c.release[obj] || c.acquire[obj]) {
				continue
			}
			c.okVar = nil
			exit := c.walkStmts(fd.Body.List, free)
			// An explicit trailing return was already checked as a
			// return path; this catches falling off the end.
			if exit != free && !terminates(fd.Body.List) {
				c.Reportf(fd.Body.Rbrace, "function ends while holding a seqlock stripe (version left odd)")
			}
		}
	}
	return nil
}

func (c *checker) Reportf(pos token.Pos, format string, args ...any) {
	if c.reported[pos] {
		return
	}
	c.reported[pos] = true
	c.pass.Reportf(pos, format, args...)
}

// role classifies a callee against the local annotation sets and the
// facts of imported packages.
func (c *checker) role(fn *types.Func) string {
	if c.acquire[fn] {
		return "acquire"
	}
	if c.release[fn] {
		return "release"
	}
	if fn.Pkg() != nil && fn.Pkg() != c.pass.Pkg {
		if r, ok := c.pass.ImportFact(analysis.FuncKey(fn)); ok {
			return r
		}
	}
	return ""
}

// walkStmts threads the lock state through a statement list.
func (c *checker) walkStmts(stmts []ast.Stmt, st lockState) lockState {
	for _, s := range stmts {
		st = c.walkStmt(s, st)
	}
	return st
}

func (c *checker) walkStmt(s ast.Stmt, st lockState) lockState {
	switch n := s.(type) {
	case *ast.AssignStmt:
		if st != free {
			c.checkRegion(n, st)
		}
		if len(n.Rhs) == 1 {
			if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok {
				if fn := analysis.CalleeOf(c.pass.TypesInfo, call); fn != nil {
					switch c.role(fn) {
					case "acquire":
						if len(n.Lhs) == 2 {
							if id, ok := n.Lhs[1].(*ast.Ident); ok && id.Name != "_" {
								c.okVar = c.pass.TypesInfo.Defs[id]
								if c.okVar == nil {
									c.okVar = c.pass.TypesInfo.Uses[id]
								}
							}
						}
						return held
					case "release":
						return free
					}
				}
			}
		}
		return st
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
			if fn := analysis.CalleeOf(c.pass.TypesInfo, call); fn != nil {
				switch c.role(fn) {
				case "release":
					return free
				case "acquire":
					// Result discarded: the caller can never release.
					c.Reportf(n.Pos(), "seqlock acquire result discarded: the stripe can never be released")
					return held
				}
			}
		}
		if st != free {
			c.checkRegion(n, st)
		}
		return st
	case *ast.ReturnStmt:
		if st != free {
			c.checkRegion(n, st)
			if st == held {
				c.Reportf(n.Pos(), "return while holding a seqlock stripe (version left odd)")
			} else {
				c.Reportf(n.Pos(), "may return while holding a seqlock stripe (merge of held and released paths)")
			}
		}
		return st
	case *ast.IfStmt:
		if n.Init != nil {
			st = c.walkStmt(n.Init, st)
		}
		if st != free {
			c.checkExpr(n.Cond, st)
		}
		// The bailout idiom: `if !ok { ... }` where ok came from the
		// acquire — the then branch runs with the lock NOT held.
		thenEntry, elseEntry := st, st
		if st == held && c.okVar != nil {
			if cond, ok := ast.Unparen(n.Cond).(*ast.UnaryExpr); ok && cond.Op == token.NOT {
				if id, ok := ast.Unparen(cond.X).(*ast.Ident); ok && c.pass.TypesInfo.Uses[id] == c.okVar {
					thenEntry = free
				}
			}
			if id, ok := ast.Unparen(n.Cond).(*ast.Ident); ok && c.pass.TypesInfo.Uses[id] == c.okVar {
				elseEntry = free
			}
		}
		thenExit := c.walkStmts(n.Body.List, thenEntry)
		thenTerm := terminates(n.Body.List)
		elseExit, elseTerm := elseEntry, false
		if n.Else != nil {
			switch e := n.Else.(type) {
			case *ast.BlockStmt:
				elseExit = c.walkStmts(e.List, elseEntry)
				elseTerm = terminates(e.List)
			case *ast.IfStmt:
				elseExit = c.walkStmt(e, elseEntry)
			}
		}
		switch {
		case thenTerm && elseTerm:
			return st // both branches returned; checked on the way
		case thenTerm:
			return elseExit
		case elseTerm:
			return thenExit
		case thenExit == elseExit:
			return thenExit
		default:
			return leaked
		}
	case *ast.BlockStmt:
		return c.walkStmts(n.List, st)
	case *ast.ForStmt:
		if n.Init != nil {
			st = c.walkStmt(n.Init, st)
		}
		if st != free && n.Cond != nil {
			c.checkExpr(n.Cond, st)
		}
		exit := c.walkStmts(n.Body.List, st)
		if n.Post != nil {
			exit = c.walkStmt(n.Post, exit)
		}
		if exit != st {
			return leaked
		}
		return st
	case *ast.RangeStmt:
		if st != free {
			c.checkExpr(n.X, st)
		}
		exit := c.walkStmts(n.Body.List, st)
		if exit != st {
			return leaked
		}
		return st
	case *ast.SwitchStmt:
		if n.Init != nil {
			st = c.walkStmt(n.Init, st)
		}
		if st != free && n.Tag != nil {
			c.checkExpr(n.Tag, st)
		}
		out := st
		for _, cc := range n.Body.List {
			cl := cc.(*ast.CaseClause)
			exit := c.walkStmts(cl.Body, st)
			if !terminates(cl.Body) && exit != out {
				out = leaked
			}
		}
		return out
	case *ast.LabeledStmt:
		return c.walkStmt(n.Stmt, st)
	case *ast.IncDecStmt, *ast.DeclStmt, *ast.SendStmt, *ast.GoStmt,
		*ast.DeferStmt, *ast.SelectStmt, *ast.BranchStmt, *ast.EmptyStmt:
		if st != free {
			c.checkRegion(s, st)
		}
		return st
	default:
		if st != free {
			c.checkRegion(s, st)
		}
		return st
	}
}

// terminates reports whether a statement list always leaves the
// function (return or panic as its last statement).
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func (c *checker) checkExpr(e ast.Expr, st lockState) {
	c.checkNode(e, st)
}

func (c *checker) checkRegion(s ast.Stmt, st lockState) {
	switch s.(type) {
	case *ast.GoStmt:
		c.Reportf(s.Pos(), "goroutine started inside a seqlock region")
		return
	case *ast.SendStmt:
		c.Reportf(s.Pos(), "channel send inside a seqlock region")
		return
	case *ast.SelectStmt:
		c.Reportf(s.Pos(), "select inside a seqlock region")
		return
	}
	c.checkNode(s, st)
}

// checkNode flags forbidden operations in a subtree while the lock is
// held (allocation, channel ops, calls that may block).
func (c *checker) checkNode(root ast.Node, st lockState) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			c.Reportf(e.Pos(), "closure allocated inside a seqlock region")
			return false
		case *ast.SendStmt:
			c.Reportf(e.Pos(), "channel send inside a seqlock region")
		case *ast.SelectStmt:
			c.Reportf(e.Pos(), "select inside a seqlock region")
		case *ast.GoStmt:
			c.Reportf(e.Pos(), "goroutine started inside a seqlock region")
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				c.Reportf(e.Pos(), "channel receive inside a seqlock region")
			}
		case *ast.CompositeLit:
			switch c.pass.TypesInfo.TypeOf(e).Underlying().(type) {
			case *types.Slice, *types.Map:
				c.Reportf(e.Pos(), "slice/map literal allocates inside a seqlock region")
			}
		case *ast.CallExpr:
			c.checkCall(e)
		}
		return true
	})
}

func (c *checker) checkCall(call *ast.CallExpr) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				c.Reportf(call.Pos(), "%s allocates inside a seqlock region", b.Name())
			}
			return
		}
	}
	fn := analysis.CalleeOf(c.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	path, name := fn.Pkg().Path(), fn.Name()
	switch path {
	case "os", "net", "io", "bufio", "fmt":
		c.Reportf(call.Pos(), "call to %s.%s may block/allocate inside a seqlock region", path, name)
	case "time":
		if name == "Sleep" {
			c.Reportf(call.Pos(), "time.Sleep inside a seqlock region")
		}
	case "sync":
		switch name {
		case "Lock", "RLock", "Wait":
			c.Reportf(call.Pos(), "blocking sync.%s inside a seqlock region", name)
		}
	}
}
