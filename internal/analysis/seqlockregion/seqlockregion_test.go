package seqlockregion_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/seqlockregion"
)

func TestSeqlockRegion(t *testing.T) {
	analysistest.Run(t, "../testdata", seqlockregion.Analyzer, "seqlocka", "seqlockb")
}
