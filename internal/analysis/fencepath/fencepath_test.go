package fencepath_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/fencepath"
)

func TestFencePath(t *testing.T) {
	analysistest.Run(t, "../testdata", fencepath.Analyzer, "fencea", "fenceb")
}
