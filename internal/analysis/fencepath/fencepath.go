// Package fencepath enforces the paper's 0-pfence read invariant
// statically: nothing reachable from a read-side entry point may issue
// a persistent-memory write or fence.
//
// Entry points are exported methods named Read, TryRead, ReadEach,
// ReadEachInto, ReadSum or Scrub, plus anything annotated
// //onll:readpath. Forbidden roots are the NVM-mutating primitives of
// any package named pmem (Store, StoreLine, StoreRange, CAS, Flush,
// FlushRange, Fence, Persist, SetRoot); log appends are caught
// transitively because they call into pmem. Reachability propagates
// across packages through facts: each package exports, for every
// function that may fence, the witness call chain down to the
// primitive, and callers splice their own edge onto it, so diagnostics
// read as full paths ("Read → advanceView → (*pmem.Pool).Fence").
//
// //onll:allowfence(reason) makes a function a propagation barrier for
// deliberate exceptions (the eager baseline's fence-per-read, the
// pressure valve); a barrier that cannot actually reach a fence is
// itself reported, so stale escapes fail the build.
//
// Limits (by construction, documented rather than guessed at): calls
// through stored function values are not tracked, and interface-method
// dispatch is resolved only against concrete implementations declared
// in the interface's own package (which covers trace.Interface; the
// spec.State implementations in internal/objects are pure and never
// see a pool).
package fencepath

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "fencepath",
	Doc:  "read-side entry points must not reach a pmem write or fence (0 pfences per read)",
	Run:  run,
}

// fenceRoots are the NVM-mutating primitives; a callee with one of
// these names in a package named pmem seeds the reachability.
var fenceRoots = map[string]bool{
	"Store": true, "StoreLine": true, "StoreRange": true,
	"CAS": true, "Flush": true, "FlushRange": true,
	"Fence": true, "Persist": true, "SetRoot": true,
}

// entryNames are method names treated as read-side entry points even
// without an //onll:readpath annotation.
var entryNames = map[string]bool{
	"Read": true, "TryRead": true, "ReadEach": true,
	"ReadEachInto": true, "ReadSum": true, "Scrub": true,
}

type callSite struct {
	fn  *types.Func
	pos ast.Node
}

type funcInfo struct {
	decl    *ast.FuncDecl
	obj     *types.Func
	callees []callSite
	allow   *analysis.Annotation // //onll:allowfence, if any
	entry   bool
}

func run(pass *analysis.Pass) error {
	funcs := map[*types.Func]*funcInfo{}
	var order []*funcInfo
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &funcInfo{decl: fd, obj: obj}
			if ann, ok := pass.Ann.Func(fd, "allowfence"); ok {
				fi.allow = &ann
			}
			if _, ok := pass.Ann.Func(fd, "readpath"); ok {
				fi.entry = true
			} else if fd.Recv != nil && entryNames[fd.Name.Name] && fd.Name.IsExported() {
				fi.entry = true
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := analysis.CalleeOf(pass.TypesInfo, call); callee != nil {
					fi.callees = append(fi.callees, callSite{callee, call})
				}
				return true
			})
			funcs[obj] = fi
			order = append(order, fi)
		}
	}

	// reach[f] is the witness chain from f (inclusive) down to a fence
	// root, or "" when f cannot fence. barriers=true re-runs the
	// fixpoint with //onll:allowfence functions cut out of propagation.
	compute := func(barriers bool) map[*types.Func]string {
		reach := map[*types.Func]string{}
		for changed := true; changed; {
			changed = false
			for _, fi := range order {
				if reach[fi.obj] != "" || (barriers && fi.allow != nil) {
					continue
				}
				if chain := chainFrom(pass, funcs, reach, fi, barriers); chain != "" {
					reach[fi.obj] = display(fi.obj) + " → " + chain
					changed = true
				}
			}
		}
		return reach
	}
	raw := compute(false)
	eff := compute(true)

	// Interface dispatch: an interface method may fence if any concrete
	// implementation declared in this package does. Resolved here, in
	// the interface's declaring package, and exported as a fact so both
	// local callers (via the recompute below) and other packages see
	// through the interface.
	for propagateInterfaces(pass, funcs, eff) {
		eff = compute(true)
	}

	for _, fi := range order {
		if fi.allow != nil {
			if raw[fi.obj] == "" {
				pass.Reportf(fi.allow.Pos, "unused //onll:allowfence on %s: it cannot reach a pmem write or fence", fi.obj.Name())
			}
			continue
		}
		chain := eff[fi.obj]
		if chain == "" {
			continue
		}
		key := analysis.FuncKey(fi.obj)
		pass.ExportFact(key, chain)
		if fi.entry {
			pass.Reportf(fi.decl.Name.Pos(), "read path reaches a persistent-memory write/fence: %s (annotate //onll:allowfence(reason) if deliberate)", chain)
		}
	}
	return nil
}

// chainFrom finds the first callee of fi that fences — directly (a pmem
// root), via an imported fact, or via a local function already known to
// fence — and returns the witness chain starting at that callee.
func chainFrom(pass *analysis.Pass, funcs map[*types.Func]*funcInfo, reach map[*types.Func]string, fi *funcInfo, barriers bool) string {
	for _, cs := range fi.callees {
		callee := cs.fn
		if callee.Pkg() != nil && callee.Pkg().Name() == "pmem" && fenceRoots[callee.Name()] {
			return display(callee)
		}
		if local, ok := funcs[callee]; ok {
			if barriers && local.allow != nil {
				continue
			}
			if c := reach[callee]; c != "" {
				return c
			}
			continue
		}
		if c, ok := pass.ImportFact(analysis.FuncKey(callee)); ok {
			return c
		}
	}
	return ""
}

// propagateInterfaces marks interface methods whose package-local
// concrete implementations may fence, exporting the fact under the
// interface method's key. It reports whether any new fact was added
// (the caller then reruns the fixpoint so local interface callers pick
// it up).
func propagateInterfaces(pass *analysis.Pass, funcs map[*types.Func]*funcInfo, eff map[*types.Func]string) bool {
	changed := false
	scope := pass.Pkg.Scope()
	var ifaces []*types.Named
	var concretes []types.Type
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if types.IsInterface(named.Underlying()) {
			ifaces = append(ifaces, named)
		} else {
			concretes = append(concretes, named)
		}
	}
	for _, iface := range ifaces {
		it := iface.Underlying().(*types.Interface)
		for _, ct := range concretes {
			impl := types.NewPointer(ct)
			if !types.Implements(impl, it) && !types.Implements(ct, it) {
				continue
			}
			for i := 0; i < it.NumMethods(); i++ {
				im := it.Method(i)
				obj, _, _ := types.LookupFieldOrMethod(impl, true, pass.Pkg, im.Name())
				cm, ok := obj.(*types.Func)
				if !ok {
					continue
				}
				chain := eff[cm]
				if chain == "" {
					if c, ok := pass.ImportFact(analysis.FuncKey(cm)); ok {
						chain = c
					}
				}
				if chain == "" {
					continue
				}
				key := analysis.FuncKey(im)
				if _, done := pass.ImportFact(key); !done {
					pass.ExportFact(key, display(im)+" ⇒ "+chain)
					changed = true
				}
			}
		}
	}
	return changed
}

// display shortens a function's full name for diagnostics: module and
// internal prefixes add noise to every chain link.
func display(fn *types.Func) string {
	s := fn.FullName()
	s = strings.ReplaceAll(s, "repro/internal/", "")
	s = strings.ReplaceAll(s, "repro/", "")
	return s
}
