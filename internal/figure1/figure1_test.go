package figure1

import "testing"

func TestE3Execution1(t *testing.T) {
	tr, err := Execution1()
	if err != nil {
		t.Fatalf("%v\ntranscript:\n%s", err, join(tr))
	}
}

func TestE3Execution2(t *testing.T) {
	tr, err := Execution2()
	if err != nil {
		t.Fatalf("%v\ntranscript:\n%s", err, join(tr))
	}
}

func TestE3Execution3(t *testing.T) {
	tr, err := Execution3()
	if err != nil {
		t.Fatalf("%v\ntranscript:\n%s", err, join(tr))
	}
}

func TestE3Execution4(t *testing.T) {
	tr, err := Execution4()
	if err != nil {
		t.Fatalf("%v\ntranscript:\n%s", err, join(tr))
	}
}

func TestE3All(t *testing.T) {
	tr, err := All()
	if err != nil {
		t.Fatalf("%v\ntranscript:\n%s", err, join(tr))
	}
	if len(tr) < 20 {
		t.Fatalf("transcript suspiciously short: %d lines", len(tr))
	}
}

func join(lines []string) string {
	out := ""
	for _, l := range lines {
		out += l + "\n"
	}
	return out
}
