// Package figure1 reproduces, step by scheduled step, the four worked
// executions of Figure 1 of the paper (the ONLL shared counter), and
// asserts every intermediate and final value the figure shows. The
// functions return a human-readable transcript (printed by
// cmd/onllfig1) and an error on any deviation from the figure.
package figure1

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/objects"
	"repro/internal/pmem"
	"repro/internal/sched"
	"repro/internal/trace"
)

const poolSize = 1 << 22

type run struct {
	ctl        *sched.Controller
	pool       *pmem.Pool
	in         *core.Instance
	transcript []string
}

func newRun(nprocs int) (*run, error) {
	ctl := sched.NewController()
	pool := pmem.New(poolSize, ctl)
	in, err := core.New(pool, objects.CounterSpec{}, core.Config{NProcs: nprocs, Gate: ctl})
	if err != nil {
		return nil, err
	}
	pool.ResetStats()
	return &run{ctl: ctl, pool: pool, in: in}, nil
}

func (r *run) logf(format string, args ...any) {
	r.transcript = append(r.transcript, fmt.Sprintf(format, args...))
}

func (r *run) expect(what string, got, want uint64) error {
	r.logf("%-52s got=%d want=%d", what, got, want)
	if got != want {
		return fmt.Errorf("figure1: %s: got %d, want %d", what, got, want)
	}
	return nil
}

// traceLine renders the execution trace like the figure: (idx, avail)
// pairs from head to tail.
func (r *run) traceLine() string {
	snap := trace.Snapshot(r.in.Trace().Tail(pmem.RootSystemPID))
	s := "trace: ⊥"
	for i := len(snap) - 1; i >= 0; i-- {
		if snap[i].Idx == 0 {
			continue
		}
		mark := 0
		if snap[i].Available {
			mark = 1
		}
		s += fmt.Sprintf(" [i=%d a=%d]", snap[i].Idx, mark)
	}
	return s
}

// Execution1 — sequential update then read by a single process p1:
// the increment creates node n (index 1), persists it with one fence,
// sets its flag and returns 1; the read stops at n and returns 1.
func Execution1() ([]string, error) {
	r, err := newRun(1)
	if err != nil {
		return nil, err
	}
	defer r.ctl.KillAll()
	r.logf("Execution 1: sequential update and read (p1)")
	var inc uint64
	d := r.ctl.Spawn(0, func() { inc, _, _ = r.in.Handle(0).Update(objects.CounterInc) })
	r.ctl.RunToCompletion(0)
	<-d
	r.ctl.Release(0)
	if err := r.expect("p1 increment returns", inc, 1); err != nil {
		return r.transcript, err
	}
	r.logf("%s", r.traceLine())
	if pf := r.pool.StatsOf(0).PersistentFences; pf != 1 {
		return r.transcript, fmt.Errorf("figure1: p1 used %d persistent fences, want 1", pf)
	}
	r.logf("p1 persistent fences = 1 (the log append)")
	var rd uint64
	d = r.ctl.Spawn(0, func() { rd = r.in.Handle(0).Read(objects.CounterGet) })
	r.ctl.RunToCompletion(0)
	<-d
	if err := r.expect("p1 read returns", rd, 1); err != nil {
		return r.transcript, err
	}
	if pf := r.pool.StatsOf(0).PersistentFences; pf != 1 {
		return r.transcript, fmt.Errorf("figure1: the read fenced (%d total)", pf)
	}
	r.logf("read used no persistent fence")
	return r.transcript, nil
}

// Execution2 — an update concurrent with two readers. The counter is
// initially 1 (node n1). p1's update appends n2 and persists it, then
// pauses before setting n2's flag. Reader r1 stops at n1 and returns 1.
// p1 resumes and sets the flag; reader r2 stops at n2 and returns 2;
// p1's update returns 2.
func Execution2() ([]string, error) {
	r, err := newRun(3)
	if err != nil {
		return nil, err
	}
	defer r.ctl.KillAll()
	r.logf("Execution 2: update concurrent with two readers")
	// Seed: counter = 1.
	d0 := r.ctl.Spawn(0, func() { r.in.Handle(0).Update(objects.CounterInc) })
	r.ctl.RunToCompletion(0)
	<-d0
	r.ctl.Release(0)
	r.logf("setup: counter = 1 (node n1 available)")

	var updRet uint64
	dUpd := r.ctl.Spawn(0, func() { updRet, _, _ = r.in.Handle(0).Update(objects.CounterInc) })
	if _, ok := r.ctl.RunUntil(0, sched.AtPoint(core.PointPersisted)); !ok {
		return r.transcript, fmt.Errorf("figure1: p1 never persisted")
	}
	r.logf("p1: appended n2 + persistent log entry; paused before the available flag")
	r.logf("%s", r.traceLine())

	var r1 uint64
	d1 := r.ctl.Spawn(1, func() { r1 = r.in.Handle(1).Read(objects.CounterGet) })
	r.ctl.RunToCompletion(1)
	<-d1
	if err := r.expect("r1 (n2 not yet available) returns", r1, 1); err != nil {
		return r.transcript, err
	}

	r.ctl.RunToCompletion(0)
	<-dUpd
	if err := r.expect("p1 update returns", updRet, 2); err != nil {
		return r.transcript, err
	}
	r.logf("%s", r.traceLine())

	var r2 uint64
	d2 := r.ctl.Spawn(2, func() { r2 = r.in.Handle(2).Read(objects.CounterGet) })
	r.ctl.RunToCompletion(2)
	<-d2
	if err := r.expect("r2 (after n2 available) returns", r2, 2); err != nil {
		return r.transcript, err
	}
	return r.transcript, nil
}

// Execution3 — an update helping another update. Counter initially 1.
// p1 appends n2 and its log entry, then pauses (flag unset). p2 appends
// n3; its fuzzy window contains BOTH p1's and its own op; its single
// log entry records both; it sets n3's flag and returns 3. A reader
// starting after n3's flag returns 3 even though n2's flag is unset.
func Execution3() ([]string, error) {
	r, err := newRun(3)
	if err != nil {
		return nil, err
	}
	defer r.ctl.KillAll()
	r.logf("Execution 3: update helping another update")
	d0 := r.ctl.Spawn(0, func() { r.in.Handle(0).Update(objects.CounterInc) })
	r.ctl.RunToCompletion(0)
	<-d0
	r.ctl.Release(0)
	r.logf("setup: counter = 1")

	r.ctl.Spawn(0, func() { r.in.Handle(0).Update(objects.CounterInc) })
	if _, ok := r.ctl.RunUntil(0, sched.AtPoint(core.PointPersisted)); !ok {
		return r.transcript, fmt.Errorf("figure1: p1 never persisted")
	}
	r.logf("p1: appended n2 and its log entry; paused (n2 flag unset)")

	var p2Ret uint64
	d2 := r.ctl.Spawn(1, func() { p2Ret, _, _ = r.in.Handle(1).Update(objects.CounterInc) })
	r.ctl.RunToCompletion(1)
	<-d2
	if err := r.expect("p2 update (helping p1) returns", p2Ret, 3); err != nil {
		return r.transcript, err
	}
	recs := r.in.Log(1).Records()
	last := recs[len(recs)-1]
	if err := r.expect("p2's log entry records ops", uint64(len(last.Ops)), 2); err != nil {
		return r.transcript, err
	}
	if err := r.expect("p2's log entry execution index", last.ExecIdx, 3); err != nil {
		return r.transcript, err
	}
	r.logf("%s", r.traceLine())

	var rd uint64
	d3 := r.ctl.Spawn(2, func() { rd = r.in.Handle(2).Read(objects.CounterGet) })
	r.ctl.RunToCompletion(2)
	<-d3
	if err := r.expect("reader after n3 available returns", rd, 3); err != nil {
		return r.transcript, err
	}
	return r.transcript, nil
}

// Execution4 — crash concurrent with updates and readers. Counter
// initially 0. p1 appends n1 then pauses before persisting. p2 appends
// n2 and persists an entry covering n1 and n2, pausing before its flag.
// p3 appends n3 and starts its log append but crashes before the fence.
// A concurrent reader returns 0 (no flag set). After the crash,
// recovery reconstructs ops 1 and 2 from p2's log; p3's op is lost;
// post-crash readers return 2.
func Execution4() ([]string, error) {
	r, err := newRun(4)
	if err != nil {
		return nil, err
	}
	r.logf("Execution 4: crash concurrent with updates and reads")

	r.ctl.Spawn(0, func() { r.in.Handle(0).Update(objects.CounterInc) })
	if _, ok := r.ctl.RunUntil(0, sched.AtPoint(core.PointOrdered)); !ok {
		return r.transcript, fmt.Errorf("figure1: p1 never ordered")
	}
	r.logf("p1: appended n1; paused before persisting")

	r.ctl.Spawn(1, func() { r.in.Handle(1).Update(objects.CounterInc) })
	if _, ok := r.ctl.RunUntil(1, sched.AtPoint(core.PointPersisted)); !ok {
		return r.transcript, fmt.Errorf("figure1: p2 never persisted")
	}
	r.logf("p2: appended n2; persisted entry covering {n1, n2}; paused before flag")

	r.ctl.Spawn(2, func() { r.in.Handle(2).Update(objects.CounterInc) })
	if _, ok := r.ctl.RunUntil(2, sched.AtPoint("pmem.pfence")); !ok {
		return r.transcript, fmt.Errorf("figure1: p3 never reached its fence")
	}
	r.logf("p3: appended n3; log append in flight, NOT fenced")
	r.logf("%s", r.traceLine())

	var rd uint64
	d := r.ctl.Spawn(3, func() { rd = r.in.Handle(3).Read(objects.CounterGet) })
	r.ctl.RunToCompletion(3)
	<-d
	if err := r.expect("concurrent reader (no flags set) returns", rd, 0); err != nil {
		return r.transcript, err
	}

	r.logf("CRASH (caches lost; unfenced write-backs dropped)")
	r.ctl.KillAll()
	r.pool.Crash(pmem.DropAll)
	r.pool.SetGate(nil)
	in2, rep, err := core.Recover(r.pool, objects.CounterSpec{}, core.Config{})
	if err != nil {
		return r.transcript, err
	}
	if err := r.expect("recovery: operations recovered", rep.LastIdx, 2); err != nil {
		return r.transcript, err
	}
	post := in2.Handle(0).Read(objects.CounterGet)
	if err := r.expect("post-crash reader returns", post, 2); err != nil {
		return r.transcript, err
	}
	// Detectability: p1's and p2's first ops linearized; p3's was not.
	if _, ok := rep.WasLinearized(in2.Handle(0).NextOpID() - 1); !ok {
		// p1's op has id MakeID(0,1); NextOpID-1 after recovery points
		// at the highest recovered seq for pid 0, which is 1.
		return r.transcript, fmt.Errorf("figure1: p1's op not detected as linearized")
	}
	r.logf("detectable execution: p1, p2 linearized; p3 lost")
	return r.transcript, nil
}

// All runs the four executions in order.
func All() ([]string, error) {
	var out []string
	for i, fn := range []func() ([]string, error){Execution1, Execution2, Execution3, Execution4} {
		tr, err := fn()
		out = append(out, tr...)
		if err != nil {
			return out, fmt.Errorf("execution %d: %w", i+1, err)
		}
		out = append(out, "")
	}
	return out, nil
}
