package interleave

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/objects"
	"repro/internal/pmem"
	"repro/internal/sched"
)

// TestDurableReadOracle is the model-checked oracle for the read path:
// under fully deterministic, seeded interleavings (every shared-memory
// step individually granted by the controller), it asserts the two
// properties the version-stamped fast path must preserve on every
// handle, with the fast path both off and on, over both trace variants:
//
//   - per-handle view monotonicity: a read never observes an older view
//     than any previous operation on the same handle — on the counter,
//     whose value is the number of increments in the prefix, that is
//     exactly "returned values never decrease per handle";
//   - read-your-writes: a read after the handle's own update returns at
//     least that update's return value (the update is in the view).
//
// Compaction is on so epoch checks, adoption, publication and base
// restores all interleave with the scheduler's preemptions; the final
// read cross-checks that no increment was lost. ONLL_ORACLE_SEEDS
// overrides the seed count (CI bounds it; -short trims it).
func TestDurableReadOracle(t *testing.T) {
	seeds := 10
	if testing.Short() {
		seeds = 4
	}
	if s := os.Getenv("ONLL_ORACLE_SEEDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("bad ONLL_ORACLE_SEEDS %q", s)
		}
		seeds = n
	}
	for _, fast := range []bool{false, true} {
		for _, wf := range []bool{false, true} {
			t.Run(fmt.Sprintf("fast=%v/waitfree=%v", fast, wf), func(t *testing.T) {
				for seed := 0; seed < seeds; seed++ {
					runReadOracle(t, fast, wf, int64(seed))
				}
			})
		}
	}
}

func runReadOracle(t *testing.T, fast, wf bool, seed int64) {
	t.Helper()
	const nprocs = 3
	const perProc = 14
	ctl := sched.NewController()
	pool := pmem.New(1<<22, ctl)
	in, err := core.New(pool, objects.CounterSpec{}, core.Config{
		NProcs: nprocs, Gate: ctl, LocalViews: true, ReadFastPath: fast,
		WaitFree: wf, CompactEvery: 5, LogCapacity: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	var totalIncs atomic.Uint64
	outcomes := make([]<-chan any, nprocs)
	for pid := 0; pid < nprocs; pid++ {
		pid := pid
		outcomes[pid] = ctl.Spawn(pid, func() {
			h := in.Handle(pid)
			rng := rand.New(rand.NewSource(seed*1009 + int64(pid)))
			var lastSeen uint64 // highest counter value this handle observed
			for i := 0; i < perProc; i++ {
				if rng.Intn(100) < 40 {
					ret, _, err := h.Update(objects.CounterInc)
					if err != nil {
						panic(fmt.Sprintf("update: %v", err))
					}
					totalIncs.Add(1)
					if ret < lastSeen {
						t.Errorf("seed=%d fast=%v wf=%v p%d: update returned %d after observing %d (view regressed)",
							seed, fast, wf, pid, ret, lastSeen)
					}
					lastSeen = ret
				} else {
					got := h.Read(objects.CounterGet)
					if got < lastSeen {
						t.Errorf("seed=%d fast=%v wf=%v p%d: read %d after observing %d (monotonicity / read-your-writes violated)",
							seed, fast, wf, pid, got, lastSeen)
					}
					lastSeen = got
				}
			}
		})
	}

	// The deterministic scheduler: grant one step at a time to a
	// pseudo-randomly chosen live process (same shape as Run).
	rng := rand.New(rand.NewSource(seed))
	live := make([]int, 0, nprocs)
	for {
		live = live[:0]
		for pid := 0; pid < nprocs; pid++ {
			if !ctl.Done(pid) {
				live = append(live, pid)
			}
		}
		if len(live) == 0 {
			break
		}
		ctl.StepN(live[rng.Intn(len(live))], 1)
	}
	for _, ch := range outcomes {
		if r := <-ch; r != nil {
			t.Fatalf("seed=%d fast=%v wf=%v: process failed: %v", seed, fast, wf, r)
		}
	}
	// Every increment linearized: a fresh read from any handle must see
	// them all (the trace is quiescent, so the walk reaches the tail).
	if got, want := in.Handle(0).Read(objects.CounterGet), totalIncs.Load(); got != want {
		t.Fatalf("seed=%d fast=%v wf=%v: final read %d, want %d", seed, fast, wf, got, want)
	}
}

// TestDurableReadOracleYCSBD is the read-latest (YCSB-D-shaped) leg of
// the oracle: under fully deterministic seeded interleavings, each
// process mints FRESH keys into the ordered map (its own disjoint key
// region, like workload.YCSBD's streams) and reads chase recency —
// mostly its own latest insert, sometimes the map size. This is the
// churn shape where the update-side publication keeps the shared slot
// on the insert frontier, so the run is repeated with it enabled and
// disabled (core.AdoptPolicy.DisableUpdatePublish) and, in both modes,
// every handle must preserve:
//
//   - read-your-writes: a get of a key this handle inserted returns
//     the exact value it wrote (its region is private, so the value
//     can never be overwritten by another process);
//   - per-handle view monotonicity: the map size a handle observes
//     never shrinks (keys are only ever inserted).
//
// An eager adoption threshold plus compaction forces serves, stamps,
// adoptions and base restores to interleave with the scheduler's
// preemptions; the final cross-check counts every insert. The whole
// matrix runs with full-snapshot AND delta-chain compaction, so the
// fast path's epoch checks and adoptions interleave with delta cuts,
// ordered-map diff emission and chain-base collapses too.
func TestDurableReadOracleYCSBD(t *testing.T) {
	seeds := 8
	if testing.Short() {
		seeds = 3
	}
	if s := os.Getenv("ONLL_ORACLE_SEEDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("bad ONLL_ORACLE_SEEDS %q", s)
		}
		seeds = n
	}
	for _, noPub := range []bool{false, true} {
		for _, deltaSnap := range []bool{false, true} {
			t.Run(fmt.Sprintf("updatePublish=%v/delta=%v", !noPub, deltaSnap), func(t *testing.T) {
				for seed := 0; seed < seeds; seed++ {
					runReadLatestOracle(t, noPub, deltaSnap, int64(seed))
				}
			})
		}
	}
}

func runReadLatestOracle(t *testing.T, noPub, deltaSnap bool, seed int64) {
	t.Helper()
	const nprocs = 3
	const perProc = 16
	ctl := sched.NewController()
	pool := pmem.New(1<<22, ctl)
	in, err := core.New(pool, objects.OrderedMapSpec{}, core.Config{
		NProcs: nprocs, Gate: ctl, ReadFastPath: true,
		CompactEvery: 6, LogCapacity: 512,
		DeltaSnapshots: deltaSnap, MaxDeltaChain: 3,
		AdoptPolicy: core.AdoptPolicy{
			FixedMinLag:          2, // adopt eagerly: tiny runs must still exercise the slot
			PublishLag:           1,
			DisableUpdatePublish: noPub,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var totalInserts atomic.Uint64
	outcomes := make([]<-chan any, nprocs)
	for pid := 0; pid < nprocs; pid++ {
		pid := pid
		outcomes[pid] = ctl.Spawn(pid, func() {
			h := in.Handle(pid)
			rng := rand.New(rand.NewSource(seed*2689 + int64(pid)))
			base := uint64(pid+1) << 20 // private fresh-key region
			var minted uint64           // keys written so far (values = key*3+seq)
			var sizeSeen uint64
			for i := 0; i < perProc; i++ {
				switch {
				case rng.Intn(100) < 35:
					minted++
					k := base + minted
					if _, _, err := h.Update(objects.OMapPut, k, k*3+minted); err != nil {
						panic(fmt.Sprintf("put: %v", err))
					}
					totalInserts.Add(1)
				case minted > 0:
					// Recency read: rank skewed toward the newest insert.
					r := uint64(rng.Intn(int(minted)))*uint64(rng.Intn(2)) + 1
					k := base + minted - (r - 1)
					want := k*3 + (minted - (r - 1))
					if got := h.Read(objects.OMapGet, k); got != want {
						t.Errorf("seed=%d noPub=%v delta=%v p%d: get(own %#x) = %d, want %d (read-your-writes violated)",
							seed, noPub, deltaSnap, pid, k, got, want)
					}
				default:
					got := h.Read(objects.OMapLen)
					if got < sizeSeen {
						t.Errorf("seed=%d noPub=%v delta=%v p%d: len %d after observing %d (view regressed)",
							seed, noPub, deltaSnap, pid, got, sizeSeen)
					}
					sizeSeen = got
				}
			}
		})
	}
	rng := rand.New(rand.NewSource(seed))
	live := make([]int, 0, nprocs)
	for {
		live = live[:0]
		for pid := 0; pid < nprocs; pid++ {
			if !ctl.Done(pid) {
				live = append(live, pid)
			}
		}
		if len(live) == 0 {
			break
		}
		ctl.StepN(live[rng.Intn(len(live))], 1)
	}
	for _, ch := range outcomes {
		if r := <-ch; r != nil {
			t.Fatalf("seed=%d noPub=%v delta=%v: process failed: %v", seed, noPub, deltaSnap, r)
		}
	}
	if got, want := in.Handle(0).Read(objects.OMapLen), totalInserts.Load(); got != want {
		t.Fatalf("seed=%d noPub=%v delta=%v: final size %d, want %d inserts", seed, noPub, deltaSnap, got, want)
	}
}

// TestDurableReadOracleCrashes drives the fast path through the
// deterministic crash sweep: seeded interleavings crashed at several
// points, recovered, and checked against Definition 5.6 — with the
// fast path on in both eras, so epoch state and the shared view slot
// are rebuilt from a recovered trace rather than a live one.
func TestDurableReadOracleCrashes(t *testing.T) {
	schedSeeds := 3
	if testing.Short() {
		schedSeeds = 2
	}
	runs, err := Sweep(Config{
		Spec: objects.CounterSpec{}, NProcs: 3, OpsPerProc: 5, UpdatePct: 50,
		WorkSeed: 11, LocalViews: true, CompactEvery: 4, ReadFastPath: true,
	}, schedSeeds, []int{25, 60, 90})
	if err != nil {
		t.Fatalf("after %d validated runs: %v", runs, err)
	}
	if runs == 0 {
		t.Fatal("sweep validated nothing")
	}
}
