// Package interleave explores fine-grained, fully deterministic
// interleavings of ONLL operations. The free-running stress tests and
// the step-counting crash harness (internal/check) cover coarse
// schedules; this package drives every shared-memory step of every
// process individually through the controller, so that a seeded
// scheduler can produce — and exactly reproduce — pathological
// interleavings (a process preempted inside its tail CAS, between
// persist and linearize, mid-fence, etc.), optionally crashing at any
// chosen global step.
//
// Every run is checked: live histories against the linearizability
// search, crashed histories against the Definition 5.6 checker.
package interleave

import (
	"fmt"
	"math/rand"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/pmem"
	"repro/internal/sched"
	"repro/internal/spec"
	"repro/internal/workload"
)

// Config parameterizes a scheduled exploration run.
type Config struct {
	Spec       spec.Spec
	NProcs     int
	OpsPerProc int
	UpdatePct  int
	// SchedSeed seeds the step-granting order (the interleaving).
	SchedSeed int64
	// WorkSeed seeds the operation streams.
	WorkSeed int64
	// CrashAtStep, if positive, kills all processes after that many
	// granted steps and crashes the pool under Oracle.
	CrashAtStep  int
	Oracle       pmem.Oracle
	WaitFree     bool
	LocalViews   bool
	CompactEvery int
	// ReadFastPath enables the version-stamped read fast path, so the
	// deterministic scheduler can interleave epoch checks, adoption and
	// publication at single-step granularity (and crash between them).
	ReadFastPath bool
}

// Result carries what a run produced.
type Result struct {
	History []check.OpRecord
	Report  *core.Report // nil if no crash
	Steps   int          // steps granted before completion/crash
}

// Run executes one fully deterministic scheduled run and validates it.
func Run(cfg Config) (*Result, error) {
	if cfg.Oracle == nil {
		cfg.Oracle = pmem.DropAll
	}
	ctl := sched.NewController()
	pool := pmem.New(1<<24, ctl)
	in, err := core.New(pool, cfg.Spec, core.Config{
		NProcs: cfg.NProcs, Gate: ctl, LogCapacity: cfg.OpsPerProc*2 + 64,
		WaitFree: cfg.WaitFree, LocalViews: cfg.LocalViews, CompactEvery: cfg.CompactEvery,
		ReadFastPath: cfg.ReadFastPath,
	})
	if err != nil {
		return nil, err
	}
	hist := check.NewHistory()
	gen := workload.NewGenerator(cfg.Spec)

	outcomes := make([]<-chan any, cfg.NProcs)
	for pid := 0; pid < cfg.NProcs; pid++ {
		pid := pid
		steps := gen.Stream(cfg.WorkSeed+int64(pid)*104729, cfg.OpsPerProc, cfg.UpdatePct)
		outcomes[pid] = ctl.Spawn(pid, func() {
			h := in.Handle(pid)
			for _, st := range steps {
				runOp(ctl, hist, h, pid, st)
			}
		})
	}

	// The deterministic scheduler: grant one step at a time to a
	// pseudo-randomly chosen live process.
	rng := rand.New(rand.NewSource(cfg.SchedSeed))
	granted := 0
	live := make([]int, 0, cfg.NProcs)
	for {
		live = live[:0]
		for pid := 0; pid < cfg.NProcs; pid++ {
			if !ctl.Done(pid) {
				live = append(live, pid)
			}
		}
		if len(live) == 0 {
			break
		}
		if cfg.CrashAtStep > 0 && granted >= cfg.CrashAtStep {
			break
		}
		pid := live[rng.Intn(len(live))]
		if ctl.StepN(pid, 1) == 1 {
			granted++
		}
	}
	res := &Result{Steps: granted}

	if cfg.CrashAtStep > 0 && granted >= cfg.CrashAtStep {
		ctl.KillAll()
		for _, ch := range outcomes {
			<-ch
		}
		res.History = hist.Ops()
		pool.Crash(cfg.Oracle)
		pool.SetGate(nil)
		_, rep, err := core.Recover(pool, cfg.Spec, core.Config{
			WaitFree: cfg.WaitFree, LocalViews: cfg.LocalViews, CompactEvery: cfg.CompactEvery,
			ReadFastPath: cfg.ReadFastPath,
		})
		if err != nil {
			return res, fmt.Errorf("recovery: %w", err)
		}
		res.Report = rep
		rec := check.MakeRecovered(rep.Ordered)
		rec.BaseState, rec.CoveredSeq = rep.BaseState, rep.CoveredSeq
		if err := check.CheckDurable(cfg.Spec, res.History, rec); err != nil {
			return res, fmt.Errorf("schedSeed=%d workSeed=%d crash@%d: %w",
				cfg.SchedSeed, cfg.WorkSeed, cfg.CrashAtStep, err)
		}
		return res, nil
	}

	// Clean completion: drain and (for small histories) verify full
	// linearizability.
	for _, ch := range outcomes {
		if r := <-ch; r != nil {
			return nil, fmt.Errorf("process failed: %v", r)
		}
	}
	res.History = hist.Ops()
	if len(res.History) <= 16 {
		if !check.Linearizable(cfg.Spec, res.History) {
			return res, fmt.Errorf("schedSeed=%d workSeed=%d: history not linearizable",
				cfg.SchedSeed, cfg.WorkSeed)
		}
	}
	return res, nil
}

// runOp executes one step. Invocation and response recording are
// themselves gate points, so the logical clock order of the history is
// fully determined by the schedule — identical seeds replay identical
// histories, event for event.
func runOp(ctl *sched.Controller, hist *check.History, h *core.Handle, pid int, st workload.Step) {
	ctl.Step(pid, "op.invoke")
	if st.IsUpdate {
		token := hist.Invoke(pid, st.Code, st.Args, true, h.NextOpID())
		ret, _, err := h.Update(st.Code, st.Args...)
		if err != nil {
			panic(fmt.Sprintf("update failed: %v", err))
		}
		ctl.Step(pid, "op.record-return")
		hist.Return(token, ret)
		return
	}
	token := hist.Invoke(pid, st.Code, st.Args, false, 0)
	ret := h.Read(st.Code, st.Args...)
	ctl.Step(pid, "op.record-return")
	hist.Return(token, ret)
}

// Sweep runs Run across schedule seeds and, for each, across a set of
// crash points derived from the clean run's length. It returns the
// number of validated runs.
func Sweep(base Config, schedSeeds int, crashFracs []int) (int, error) {
	runs := 0
	for ss := int64(0); ss < int64(schedSeeds); ss++ {
		cfg := base
		cfg.SchedSeed = base.SchedSeed + ss
		cfg.CrashAtStep = 0
		clean, err := Run(cfg)
		if err != nil {
			return runs, err
		}
		runs++
		for _, frac := range crashFracs {
			c := cfg
			c.CrashAtStep = clean.Steps * frac / 100
			if c.CrashAtStep == 0 {
				c.CrashAtStep = 1
			}
			if _, err := Run(c); err != nil {
				return runs, err
			}
			runs++
		}
	}
	return runs, nil
}
