package interleave

import (
	"fmt"
	"testing"

	"repro/internal/objects"
	"repro/internal/pmem"
)

// TestMatrixAllObjectsAllConfigs is the broad-coverage matrix: every
// shipped object × every construction variant, each swept over several
// deterministic schedules and crash points with full validation. In
// -short mode a reduced matrix runs.
func TestMatrixAllObjectsAllConfigs(t *testing.T) {
	variants := []struct {
		name string
		wf   bool
		lv   bool
		ce   int
	}{
		{"plain", false, false, 0},
		{"waitfree", true, false, 0},
		{"localviews", false, true, 0},
		{"compaction", false, true, 4},
	}
	seeds := 4
	fracs := []int{15, 45, 80}
	if testing.Short() {
		seeds = 1
		fracs = []int{45}
	}
	for _, sp := range objects.All() {
		for _, v := range variants {
			sp, v := sp, v
			t.Run(fmt.Sprintf("%s/%s", sp.Name(), v.name), func(t *testing.T) {
				t.Parallel()
				runs, err := Sweep(Config{
					Spec: sp, NProcs: 3, OpsPerProc: 5, UpdatePct: 75,
					WorkSeed: int64(len(sp.Name())), Oracle: pmem.SeededOracle(uint64(v.ce)+3, 1, 2),
					WaitFree: v.wf, LocalViews: v.lv, CompactEvery: v.ce,
				}, seeds, fracs)
				if err != nil {
					t.Fatal(err)
				}
				if runs < seeds*(1+len(fracs)) {
					t.Fatalf("only %d runs", runs)
				}
			})
		}
	}
}
