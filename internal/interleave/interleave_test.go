package interleave

import (
	"fmt"
	"testing"

	"repro/internal/objects"
	"repro/internal/pmem"
	"repro/internal/spec"
)

func TestScheduledRunsAreDeterministic(t *testing.T) {
	cfg := Config{
		Spec: objects.CounterSpec{}, NProcs: 3, OpsPerProc: 4, UpdatePct: 70,
		SchedSeed: 11, WorkSeed: 5,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Steps != b.Steps || len(a.History) != len(b.History) {
		t.Fatalf("non-deterministic: %d/%d steps, %d/%d ops",
			a.Steps, b.Steps, len(a.History), len(b.History))
	}
	for i := range a.History {
		x, y := a.History[i], b.History[i]
		if x.RetVal != y.RetVal || x.Inv != y.Inv || x.Ret != y.Ret {
			t.Fatalf("op %d differs between identical runs: %+v vs %+v", i, x, y)
		}
	}
}

func TestScheduledLinearizability(t *testing.T) {
	// Many distinct fine-grained interleavings, each fully checked by
	// the DFS (histories kept small so the search is exact).
	for _, sp := range []spec.Spec{objects.CounterSpec{}, objects.QueueSpec{}, objects.StackSpec{}} {
		sp := sp
		t.Run(sp.Name(), func(t *testing.T) {
			t.Parallel()
			for ss := int64(0); ss < 30; ss++ {
				if _, err := Run(Config{
					Spec: sp, NProcs: 3, OpsPerProc: 3, UpdatePct: 60,
					SchedSeed: ss, WorkSeed: ss / 3,
				}); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

func TestScheduledCrashSweep(t *testing.T) {
	for _, sp := range []spec.Spec{objects.CounterSpec{}, objects.MapSpec{}} {
		sp := sp
		t.Run(sp.Name(), func(t *testing.T) {
			t.Parallel()
			runs, err := Sweep(Config{
				Spec: sp, NProcs: 3, OpsPerProc: 5, UpdatePct: 80,
				WorkSeed: 2, Oracle: pmem.SeededOracle(99, 1, 2),
			}, 8, []int{5, 15, 35, 55, 75, 95})
			if err != nil {
				t.Fatal(err)
			}
			if runs < 8*7 {
				t.Fatalf("only %d runs", runs)
			}
		})
	}
}

func TestScheduledCrashEveryStep(t *testing.T) {
	// The heavy hammer: crash at EVERY global step of one fixed
	// schedule and validate recovery each time.
	base := Config{
		Spec: objects.CounterSpec{}, NProcs: 2, OpsPerProc: 2, UpdatePct: 100,
		SchedSeed: 7, WorkSeed: 7, Oracle: pmem.DropAll,
	}
	clean, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	for step := 1; step <= clean.Steps; step++ {
		cfg := base
		cfg.CrashAtStep = step
		if _, err := Run(cfg); err != nil {
			t.Fatalf("crash at step %d/%d: %v", step, clean.Steps, err)
		}
	}
	t.Logf("validated a crash at every one of %d steps", clean.Steps)
}

func TestScheduledCrashEveryStepWithHelping(t *testing.T) {
	// Same, KeepAll oracle (maximum survivors) and more contention.
	base := Config{
		Spec: objects.CounterSpec{}, NProcs: 3, OpsPerProc: 1, UpdatePct: 100,
		SchedSeed: 3, WorkSeed: 1, Oracle: pmem.KeepAll,
	}
	clean, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	for step := 1; step <= clean.Steps; step++ {
		cfg := base
		cfg.CrashAtStep = step
		if _, err := Run(cfg); err != nil {
			t.Fatalf("crash at step %d/%d: %v", step, clean.Steps, err)
		}
	}
}

func TestScheduledExtensionsSweep(t *testing.T) {
	for _, mode := range []struct {
		name string
		wf   bool
		lv   bool
		ce   int
	}{
		{"waitfree", true, false, 0},
		{"localviews", false, true, 0},
		{"compaction", false, true, 3},
	} {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			t.Parallel()
			runs, err := Sweep(Config{
				Spec: objects.CounterSpec{}, NProcs: 3, OpsPerProc: 4, UpdatePct: 90,
				WorkSeed: 4, Oracle: pmem.SeededOracle(1, 2, 3),
				WaitFree: mode.wf, LocalViews: mode.lv, CompactEvery: mode.ce,
			}, 6, []int{10, 40, 70})
			if err != nil {
				t.Fatal(err)
			}
			if runs < 24 {
				t.Fatalf("only %d runs", runs)
			}
		})
	}
}

func TestSweepReportsRunCount(t *testing.T) {
	runs, err := Sweep(Config{
		Spec: objects.RegisterSpec{}, NProcs: 2, OpsPerProc: 2, UpdatePct: 100,
		WorkSeed: 1,
	}, 2, []int{50})
	if err != nil {
		t.Fatal(err)
	}
	if runs != 4 { // 2 clean + 2 crashed
		t.Fatalf("runs=%d", runs)
	}
	_ = fmt.Sprint(runs)
}
