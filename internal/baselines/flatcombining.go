package baselines

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/plog"
	"repro/internal/pmem"
	"repro/internal/spec"
)

// FlatCombining is the lock-based design discussed in the paper's
// Section 8: processes announce operations; whoever holds the lock (the
// combiner) gathers a batch of announced operations, appends the whole
// batch to a shared persistent log with a SINGLE persistent fence, then
// applies the batch to the volatile state and hands out return values.
//
// The fence count per operation is 1/batch-size — below the lock-free
// lower bound — but, as the paper observes, every pending operation
// still pays the price of the persistent fence by waiting while the
// combiner performs it, and a stalled combiner blocks everyone (the
// construction is blocking).
//
// Responses are only released after the batch's fence, so every
// completed operation is durable: the construction is durably
// linearizable, and recovery replays the shared log.
type FlatCombining struct {
	pool   *pmem.Pool
	sp     spec.Spec
	nprocs int

	slots []atomic.Pointer[fcRequest]
	// lastID[pid] is the id of pid's most recent operation (each slot
	// is owned by one process).
	lastID []uint64

	mu      sync.Mutex // the combiner lock (lock-based by design)
	state   spec.State // guarded by mu
	nextIdx uint64     // guarded by mu: next execution index
	log     *plog.Log  // guarded by mu: the shared persistent log
	batches uint64     // guarded by mu: number of combined batches
	combOps uint64     // guarded by mu: total ops combined
}

type fcRequest struct {
	op     spec.Op
	isRead bool
	ret    uint64
	done   atomic.Bool
}

const (
	fcRootMagic = 0x46434f4d // "FCOM"
	fcMagicSlot = 4
	fcLogSlot   = 5
)

// NewFlatCombining builds a fresh flat-combining object on pool with a
// shared log of logCapacity records.
func NewFlatCombining(pool *pmem.Pool, sp spec.Spec, nprocs, logCapacity int) (*FlatCombining, error) {
	if nprocs < 1 {
		return nil, errors.New("baselines: nprocs < 1")
	}
	if logCapacity == 0 {
		logCapacity = 1 << 14
	}
	// The shared log is owned by whichever process holds the lock; it
	// is created under the system pid and batch sizes are bounded by
	// nprocs (one pending op per process). Unlike the per-process ONLL
	// logs, combined records are ROUTINELY full-width (the combiner
	// drains every announced op), so the two-tier inline budget would
	// spill almost every record — keep this log single-tier.
	l, err := plog.CreateInline(pool, pmem.RootSystemPID, logCapacity, nprocs, nprocs)
	if err != nil {
		return nil, err
	}
	pool.SetRoot(fcLogSlot, uint64(l.Base()))
	pool.SetRoot(fcMagicSlot, fcRootMagic)
	fc := &FlatCombining{
		pool: pool, sp: sp, nprocs: nprocs,
		slots:  make([]atomic.Pointer[fcRequest], nprocs),
		lastID: make([]uint64, nprocs),
		state:  sp.New(), nextIdx: 1, log: l,
	}
	return fc, nil
}

// RecoverFlatCombining rebuilds the object from the shared log after a
// crash.
func RecoverFlatCombining(pool *pmem.Pool, sp spec.Spec, nprocs int) (*FlatCombining, error) {
	if pool.Root(fcMagicSlot) != fcRootMagic {
		return nil, errors.New("baselines: pool has no flat-combining root")
	}
	l, err := plog.Open(pool, pmem.RootSystemPID, pmem.Addr(pool.Root(fcLogSlot)))
	if err != nil {
		return nil, err
	}
	st := sp.New()
	idx := uint64(1)
	for _, rec := range l.Records() {
		if rec.Kind != plog.KindOps {
			continue
		}
		// Records store ops newest-first (ops[k] has index ExecIdx-k);
		// replay oldest-first.
		for k := len(rec.Ops) - 1; k >= 0; k-- {
			st.Apply(rec.Ops[k])
			idx++
		}
	}
	fc := &FlatCombining{
		pool: pool, sp: sp, nprocs: nprocs,
		slots:  make([]atomic.Pointer[fcRequest], nprocs),
		lastID: make([]uint64, nprocs),
		state:  st, nextIdx: idx, log: l,
	}
	return fc, nil
}

// Update implements Object.
func (fc *FlatCombining) Update(pid int, code uint64, args ...uint64) (uint64, error) {
	return fc.submit(pid, code, false, args)
}

// Read implements Object. Reads also go through the combiner: they are
// linearized against the post-fence state, and — as the paper's Section 8
// argues — they wait out the combiner's fence like everyone else.
//
//onll:allowfence(flat-combining reads go through the combiner and may BE the combiner, fencing the gathered batch — the §8 baseline the paper argues against)
func (fc *FlatCombining) Read(pid int, code uint64, args ...uint64) uint64 {
	ret, _ := fc.submit(pid, code, true, args)
	return ret
}

func (fc *FlatCombining) submit(pid int, code uint64, isRead bool, args []uint64) (uint64, error) {
	req := &fcRequest{isRead: isRead}
	req.op = spec.Op{Code: code, ID: spec.MakeID(pid, atomic.AddUint64(&fcSeq, 1))}
	copy(req.op.Args[:], args)
	fc.lastID[pid] = req.op.ID
	fc.slots[pid].Store(req)
	for !req.done.Load() {
		if fc.mu.TryLock() {
			err := fc.combine(pid)
			fc.mu.Unlock()
			if err != nil && !req.done.Load() {
				fc.slots[pid].Store(nil)
				return 0, err
			}
			continue
		}
		runtime.Gosched()
	}
	return req.ret, nil
}

var fcSeq uint64

// combine is executed with the lock held: gather announced ops, persist
// updates as one record with one persistent fence, apply, respond.
func (fc *FlatCombining) combine(combinerPID int) error {
	var reqs []*fcRequest
	for i := range fc.slots {
		if r := fc.slots[i].Load(); r != nil && !r.done.Load() {
			reqs = append(reqs, r)
			fc.slots[i].Store(nil)
		}
	}
	if len(reqs) == 0 {
		return nil
	}
	// Persist the update batch first: ops newest-first per the plog
	// record convention, so assign indices now.
	var updates []*fcRequest
	for _, r := range reqs {
		if !r.isRead {
			updates = append(updates, r)
		}
	}
	if len(updates) > 0 {
		ops := make([]spec.Op, len(updates))
		last := fc.nextIdx + uint64(len(updates)) - 1
		for i, r := range updates {
			// updates[i] gets index nextIdx+i; record slot k holds
			// index last-k, i.e. reversed order.
			ops[len(updates)-1-i] = r.op
		}
		if _, err := fc.log.Append(ops, last); err != nil {
			return err
		}
		fc.batches++
		fc.combOps += uint64(len(updates))
	}
	// The batch is durable; now apply and respond.
	for _, r := range reqs {
		if r.isRead {
			r.ret = fc.state.Read(r.op)
		} else {
			r.ret = fc.state.Apply(r.op)
			fc.nextIdx++
		}
		r.done.Store(true)
	}
	return nil
}

// CombinerStats reports (batches combined, total update ops combined) —
// the basis of the fences-per-op-below-one observation in E6.
func (fc *FlatCombining) CombinerStats() (batches, ops uint64) {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return fc.batches, fc.combOps
}

// LastID returns the id of pid's most recent operation.
func (fc *FlatCombining) LastID(pid int) uint64 { return fc.lastID[pid] }

// DurableOps returns the update sequence the shared log would recover,
// oldest first. Used by the durability checker.
func (fc *FlatCombining) DurableOps() []spec.Op {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	var out []spec.Op
	for _, rec := range fc.log.Records() {
		if rec.Kind != plog.KindOps {
			continue
		}
		for k := len(rec.Ops) - 1; k >= 0; k-- {
			out = append(out, rec.Ops[k])
		}
	}
	return out
}

// State returns a clone of the current volatile state (diagnostics).
func (fc *FlatCombining) State() spec.State {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return fc.state.Clone()
}
