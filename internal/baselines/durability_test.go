package baselines

import (
	"sync"
	"testing"

	"repro/internal/check"
	"repro/internal/objects"
	"repro/internal/pmem"
	"repro/internal/workload"
)

// The baselines claim durable linearizability too; these tests validate
// them with the same Definition 5.6 checker used for ONLL, on quiescent
// crashes (every op completed before the power failure — mid-flight
// crashes for the baselines are covered by their bespoke consistency
// tests, since their op ids are not predictable at invocation time).

func runEagerWorkload(t *testing.T, seed int64) (*pmem.Pool, *Eager, []check.OpRecord) {
	t.Helper()
	pool := pmem.New(1<<26, nil)
	e, err := NewEager(pool, objects.MapSpec{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	hist := check.NewHistory()
	gen := workload.NewGenerator(objects.MapSpec{})
	var wg sync.WaitGroup
	for pid := 0; pid < 3; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for _, st := range gen.Stream(seed+int64(pid), 40, 70) {
				if st.IsUpdate {
					tok := hist.Invoke(pid, st.Code, st.Args, true, 0)
					ret, err := e.Update(pid, st.Code, st.Args...)
					if err != nil {
						panic(err)
					}
					hist.SetID(tok, e.LastID(pid))
					hist.Return(tok, ret)
				} else {
					tok := hist.Invoke(pid, st.Code, st.Args, false, 0)
					hist.Return(tok, e.Read(pid, st.Code, st.Args...))
				}
			}
		}(pid)
	}
	wg.Wait()
	return pool, e, hist.Ops()
}

func TestEagerDurableLinearizability(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		pool, e, ops := runEagerWorkload(t, seed)
		pool.Crash(pmem.DropAll)
		e2, err := RecoverEager(pool, objects.MapSpec{}, 3)
		if err != nil {
			t.Fatal(err)
		}
		rec := check.MakeRecovered(e2.Chain(0))
		if err := check.CheckDurable(objects.MapSpec{}, ops, rec); err != nil {
			t.Fatalf("seed %d: eager baseline violated durability: %v", seed, err)
		}
		_ = e
	}
}

func TestFlatCombiningDurableLinearizability(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		pool := pmem.New(1<<26, nil)
		fc, err := NewFlatCombining(pool, objects.MapSpec{}, 3, 1<<12)
		if err != nil {
			t.Fatal(err)
		}
		hist := check.NewHistory()
		gen := workload.NewGenerator(objects.MapSpec{})
		var wg sync.WaitGroup
		for pid := 0; pid < 3; pid++ {
			wg.Add(1)
			go func(pid int) {
				defer wg.Done()
				for _, st := range gen.Stream(seed+int64(pid), 40, 70) {
					if st.IsUpdate {
						tok := hist.Invoke(pid, st.Code, st.Args, true, 0)
						ret, err := fc.Update(pid, st.Code, st.Args...)
						if err != nil {
							panic(err)
						}
						hist.SetID(tok, fc.LastID(pid))
						hist.Return(tok, ret)
					} else {
						tok := hist.Invoke(pid, st.Code, st.Args, false, 0)
						hist.Return(tok, fc.Read(pid, st.Code, st.Args...))
					}
				}
			}(pid)
		}
		wg.Wait()
		ops := hist.Ops()
		pool.Crash(pmem.DropAll)
		fc2, err := RecoverFlatCombining(pool, objects.MapSpec{}, 3)
		if err != nil {
			t.Fatal(err)
		}
		rec := check.MakeRecovered(fc2.DurableOps())
		if err := check.CheckDurable(objects.MapSpec{}, ops, rec); err != nil {
			t.Fatalf("seed %d: flat combining violated durability: %v", seed, err)
		}
	}
}
