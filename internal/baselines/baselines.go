// Package baselines implements the comparison points the paper argues
// against, so the experiments can show where ONLL's single fence wins:
//
//   - Eager: a universal construction in the style the paper attributes
//     to prior work (Izraelevitz et al. [29], Section 4.1 discussion):
//     an operation is persisted, fenced, then linearized, and the
//     linearization point itself is persisted with a second fence before
//     the operation returns; readers must persist the linearization they
//     observed before returning (one fence per read). Two persistent
//     fences per update, one per read.
//
//   - FlatCombining: the lock-based design of the paper's Section 8
//     discussion (after Hendler et al. [19] and Cohen et al. [12]): a
//     combiner applies a whole batch of announced operations with a
//     single persistent fence. Fences per operation can drop below one —
//     but every pending operation waits while the combiner fences, so
//     all of them pay the fence latency, and the construction is
//     blocking, not lock-free.
//
//   - Naive: the strawman that durably rewrites the whole object state
//     on every update with a fence per cache line. It shows what the
//     fence-count lens is measuring.
//
// All baselines implement durable linearizability over the same
// simulated NVM (internal/pmem) and the same sequential specifications
// (internal/spec) as ONLL, including crash recovery, so the comparisons
// are apples-to-apples.
package baselines

import (
	"repro/internal/core"
)

// Object is the minimal durable-object interface shared by ONLL and the
// baselines, used by the benchmark harness.
type Object interface {
	// Update executes an update operation as process pid.
	Update(pid int, code uint64, args ...uint64) (uint64, error)
	// Read executes a read-only operation as process pid.
	Read(pid int, code uint64, args ...uint64) uint64
}

// ONLLAdapter adapts a core.Instance to the Object interface.
type ONLLAdapter struct{ In *core.Instance }

// Update implements Object.
func (a ONLLAdapter) Update(pid int, code uint64, args ...uint64) (uint64, error) {
	ret, _, err := a.In.Handle(pid).Update(code, args...)
	return ret, err
}

// Read implements Object.
func (a ONLLAdapter) Read(pid int, code uint64, args ...uint64) uint64 {
	return a.In.Handle(pid).Read(code, args...)
}
