package baselines

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/objects"
	"repro/internal/pmem"
	"repro/internal/spec"
)

const testPoolSize = 1 << 25

func TestEagerSequentialCounter(t *testing.T) {
	pool := pmem.New(testPoolSize, nil)
	e, err := NewEager(pool, objects.CounterSpec{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 50; i++ {
		got, err := e.Update(0, objects.CounterInc)
		if err != nil {
			t.Fatal(err)
		}
		if got != uint64(i) {
			t.Fatalf("inc %d: %d", i, got)
		}
	}
	if got := e.Read(1, objects.CounterGet); got != 50 {
		t.Fatalf("read: %d", got)
	}
}

func TestEagerUsesTwoFencesPerUpdate(t *testing.T) {
	pool := pmem.New(testPoolSize, nil)
	e, err := NewEager(pool, objects.CounterSpec{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	pool.ResetStats()
	const n = 100
	for i := 0; i < n; i++ {
		if _, err := e.Update(0, objects.CounterInc); err != nil {
			t.Fatal(err)
		}
	}
	st := pool.StatsOf(0)
	if st.PersistentFences != 2*n {
		t.Fatalf("eager used %d persistent fences for %d uncontended updates, want %d",
			st.PersistentFences, n, 2*n)
	}
}

func TestEagerReadsFenceWhenHeadIsHot(t *testing.T) {
	pool := pmem.New(testPoolSize, nil)
	e, err := NewEager(pool, objects.CounterSpec{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	pool.ResetStats()
	const n = 50
	for i := 0; i < n; i++ {
		// Update dirties the head line from p0's perspective...
		if _, err := e.Update(0, objects.CounterInc); err != nil {
			t.Fatal(err)
		}
		// ...but p1, reading, cannot know the head is durable and must
		// fence; in our per-process pending model p1's flush of a line
		// it never dirtied is free, so count p1's fences (plain or
		// persistent): one per read.
		e.Read(1, objects.CounterGet)
	}
	st := pool.StatsOf(1)
	if st.Fences+st.PersistentFences != n {
		t.Fatalf("eager reader issued %d fences for %d reads, want %d",
			st.Fences+st.PersistentFences, n, n)
	}
}

func TestEagerConcurrentAndRecovery(t *testing.T) {
	pool := pmem.New(testPoolSize, nil)
	const nprocs = 4
	e, err := NewEager(pool, objects.CounterSpec{}, nprocs)
	if err != nil {
		t.Fatal(err)
	}
	const perProc = 200
	var wg sync.WaitGroup
	for pid := 0; pid < nprocs; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < perProc; i++ {
				if _, err := e.Update(pid, objects.CounterInc); err != nil {
					t.Error(err)
					return
				}
			}
		}(pid)
	}
	wg.Wait()
	if got := e.Read(0, objects.CounterGet); got != nprocs*perProc {
		t.Fatalf("final value %d, want %d", got, nprocs*perProc)
	}
	pool.Crash(pmem.DropAll)
	e2, err := RecoverEager(pool, objects.CounterSpec{}, nprocs)
	if err != nil {
		t.Fatal(err)
	}
	if got := e2.Read(0, objects.CounterGet); got != nprocs*perProc {
		t.Fatalf("post-recovery value %d, want %d (all updates completed pre-crash)", got, nprocs*perProc)
	}
}

func TestEagerCrashMidUpdateIsConsistent(t *testing.T) {
	// Crash before the head CAS persists: the durable head may expose
	// a prefix, never a torn state.
	pool := pmem.New(testPoolSize, nil)
	e, err := NewEager(pool, objects.CounterSpec{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		e.Update(0, objects.CounterInc)
	}
	// Partially perform a 4th update by hand: persist the node but
	// crash before the head persist.
	head := pool.Load(0, e.headAddr)
	addr := pool.MustAlloc(eagerNodeWords * pmem.WordSize)
	pool.Store(0, addr, objects.CounterInc)
	pool.Store(0, addr+5*pmem.WordSize, head)
	pool.Store(0, addr+6*pmem.WordSize, 4)
	pool.Persist(0, addr, eagerNodeWords*pmem.WordSize)
	pool.CAS(0, e.headAddr, head, uint64(addr)) // linearized in cache only
	pool.Crash(pmem.DropAll)
	e2, err := RecoverEager(pool, objects.CounterSpec{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := e2.Read(0, objects.CounterGet); got != 3 {
		t.Fatalf("post-crash value %d, want 3 (unpersisted linearization must be dropped)", got)
	}
}

func TestFlatCombiningSequential(t *testing.T) {
	pool := pmem.New(testPoolSize, nil)
	fc, err := NewFlatCombining(pool, objects.CounterSpec{}, 2, 1024)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 50; i++ {
		got, err := fc.Update(0, objects.CounterInc)
		if err != nil {
			t.Fatal(err)
		}
		if got != uint64(i) {
			t.Fatalf("inc %d: %d", i, got)
		}
	}
	if got := fc.Read(1, objects.CounterGet); got != 50 {
		t.Fatalf("read: %d", got)
	}
}

func TestFlatCombiningBatchesAmortizeFences(t *testing.T) {
	pool := pmem.New(testPoolSize, nil)
	const nprocs = 8
	fc, err := NewFlatCombining(pool, objects.CounterSpec{}, nprocs, 1<<14)
	if err != nil {
		t.Fatal(err)
	}
	pool.ResetStats()
	const perProc = 300
	var wg sync.WaitGroup
	for pid := 0; pid < nprocs; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < perProc; i++ {
				if _, err := fc.Update(pid, objects.CounterInc); err != nil {
					t.Error(err)
					return
				}
			}
		}(pid)
	}
	wg.Wait()
	if got := fc.Read(0, objects.CounterGet); got != nprocs*perProc {
		t.Fatalf("value %d want %d", got, nprocs*perProc)
	}
	batches, ops := fc.CombinerStats()
	if ops != nprocs*perProc {
		t.Fatalf("combined %d ops, want %d", ops, nprocs*perProc)
	}
	total := pool.TotalStats()
	if total.PersistentFences != batches {
		t.Fatalf("%d persistent fences for %d batches (one each expected)", total.PersistentFences, batches)
	}
	// The whole point: under concurrency, batches < ops is possible
	// (amortization). With a single goroutine per op slot this is
	// scheduling-dependent; assert only the invariant batches <= ops.
	if batches > ops {
		t.Fatalf("batches %d > ops %d", batches, ops)
	}
}

func TestFlatCombiningRecovery(t *testing.T) {
	pool := pmem.New(testPoolSize, nil)
	fc, err := NewFlatCombining(pool, objects.MapSpec{}, 2, 1024)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 40; i++ {
		if _, err := fc.Update(int(i%2), objects.MapPut, i%8, i); err != nil {
			t.Fatal(err)
		}
	}
	want := fc.State()
	pool.Crash(pmem.DropAll)
	fc2, err := RecoverFlatCombining(pool, objects.MapSpec{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !spec.Equal(want, fc2.State()) {
		t.Fatalf("recovered state differs:\n%v\n%v", want.Snapshot(), fc2.State().Snapshot())
	}
}

func TestNaiveSemanticsAndFenceCost(t *testing.T) {
	pool := pmem.New(testPoolSize, nil)
	n, err := NewNaive(pool, objects.MapSpec{}, 512)
	if err != nil {
		t.Fatal(err)
	}
	pool.ResetStats()
	// Grow the map so snapshots span many lines: fences per update
	// must grow with state size.
	var earlyFences, lateFences uint64
	for i := uint64(0); i < 100; i++ {
		if _, err := n.Update(0, objects.MapPut, i, i*2); err != nil {
			t.Fatal(err)
		}
		pf := pool.StatsOf(0).PersistentFences
		if i == 9 {
			earlyFences = pf
		}
		if i == 99 {
			lateFences = pf - earlyFences
		}
	}
	if got := n.Read(0, objects.MapGet, 50); got != 100 {
		t.Fatalf("get: %d", got)
	}
	perOpEarly := float64(earlyFences) / 10
	perOpLate := float64(lateFences) / 90
	if perOpLate <= perOpEarly {
		t.Fatalf("naive fences/op did not grow with state size: early %.1f late %.1f", perOpEarly, perOpLate)
	}
	if perOpLate < 3 {
		t.Fatalf("naive fences/op suspiciously low: %.1f", perOpLate)
	}
}

func TestNaiveRecovery(t *testing.T) {
	pool := pmem.New(testPoolSize, nil)
	n, err := NewNaive(pool, objects.CounterSpec{}, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if _, err := n.Update(0, objects.CounterInc); err != nil {
			t.Fatal(err)
		}
	}
	pool.Crash(pmem.DropAll)
	n2, err := RecoverNaive(pool, objects.CounterSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if got := n2.Read(0, objects.CounterGet); got != 25 {
		t.Fatalf("post-recovery %d, want 25", got)
	}
}

func TestNaiveCrashMidWriteKeepsCommittedArea(t *testing.T) {
	pool := pmem.New(testPoolSize, nil)
	n, err := NewNaive(pool, objects.CounterSpec{}, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		n.Update(0, objects.CounterInc)
	}
	// Scribble into the non-committed area and crash before flipping:
	// shadow paging must protect the committed state.
	next := 1 - int(n.current)
	pool.Store(0, n.area[next]+naiveMetaWords*pmem.WordSize, 0xDEAD)
	pool.Crash(pmem.DropAll)
	n2, err := RecoverNaive(pool, objects.CounterSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if got := n2.Read(0, objects.CounterGet); got != 7 {
		t.Fatalf("post-crash %d, want 7", got)
	}
}

func TestONLLAdapter(t *testing.T) {
	pool := pmem.New(testPoolSize, nil)
	in, err := core.New(pool, objects.CounterSpec{}, core.Config{NProcs: 2})
	if err != nil {
		t.Fatal(err)
	}
	var obj Object = ONLLAdapter{In: in}
	if got, err := obj.Update(0, objects.CounterInc); err != nil || got != 1 {
		t.Fatalf("adapter update: %d %v", got, err)
	}
	if got := obj.Read(1, objects.CounterGet); got != 1 {
		t.Fatalf("adapter read: %d", got)
	}
}

func TestAllBaselinesAgreeWithONLLOnSameWorkload(t *testing.T) {
	// Differential test: the same deterministic single-process workload
	// must produce identical return values on ONLL and every baseline.
	type impl struct {
		name string
		obj  Object
	}
	mk := func() []impl {
		poolA := pmem.New(testPoolSize, nil)
		inA, _ := core.New(poolA, objects.BankSpec{}, core.Config{NProcs: 1})
		poolB := pmem.New(testPoolSize, nil)
		eg, _ := NewEager(poolB, objects.BankSpec{}, 1)
		poolC := pmem.New(testPoolSize, nil)
		fc, _ := NewFlatCombining(poolC, objects.BankSpec{}, 1, 1<<12)
		poolD := pmem.New(testPoolSize, nil)
		nv, _ := NewNaive(poolD, objects.BankSpec{}, 1<<12)
		return []impl{
			{"onll", ONLLAdapter{In: inA}},
			{"eager", eg},
			{"flatcombining", fc},
			{"naive", nv},
		}
	}
	impls := mk()
	steps := []struct {
		code uint64
		args []uint64
	}{
		{objects.BankDeposit, []uint64{1, 100}},
		{objects.BankDeposit, []uint64{2, 50}},
		{objects.BankTransfer, []uint64{1, 2, 30}},
		{objects.BankWithdraw, []uint64{2, 80}},
		{objects.BankTransfer, []uint64{2, 1, 9999}}, // fails
		{objects.BankDeposit, []uint64{3, 7}},
	}
	for si, s := range steps {
		var rets []uint64
		for _, im := range impls {
			ret, err := im.obj.Update(0, s.code, s.args...)
			if err != nil {
				t.Fatalf("%s step %d: %v", im.name, si, err)
			}
			rets = append(rets, ret)
		}
		for i := 1; i < len(rets); i++ {
			if rets[i] != rets[0] {
				t.Fatalf("step %d: %s returned %d, %s returned %d",
					si, impls[0].name, rets[0], impls[i].name, rets[i])
			}
		}
	}
	for _, im := range impls {
		if got := im.obj.Read(0, objects.BankTotal); got != 77 {
			t.Fatalf("%s total %d, want 77", im.name, got)
		}
	}
}
