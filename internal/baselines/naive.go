package baselines

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/pmem"
	"repro/internal/spec"
)

// Naive is the strawman durable object: every update serializes the
// whole object state into NVM under a global lock, fencing EVERY cache
// line individually (the "clflush-style" discipline the paper's Section
// 2 explains is expensive), then durably flips a commit selector between
// two state areas (shadow paging). Persistent fences per update grow
// linearly with the state size.
//
// It is durably linearizable — updates are fully durable before they
// return and the commit flip is atomic — just profligate with fences,
// which is exactly what experiments E6/E7 visualize.
type Naive struct {
	pool *pmem.Pool
	sp   spec.Spec

	mu      sync.Mutex
	state   spec.State
	area    [2]pmem.Addr
	areaCap int // words per area
	sel     pmem.Addr
	current uint64 // which area is committed
}

const (
	naiveRootMagic = 0x4e414956 // "NAIV"
	// Root slots 48+ keep clear of core's per-process log slots (8..47).
	naiveMagicSlot = 48
	naiveSelSlot   = 49
	naiveMetaWords = 2 // [0] payload length, [1] generation
)

// NewNaive builds a fresh naive object with room for states up to
// maxStateWords words.
func NewNaive(pool *pmem.Pool, sp spec.Spec, maxStateWords int) (*Naive, error) {
	if maxStateWords < 1 {
		return nil, errors.New("baselines: maxStateWords < 1")
	}
	n := &Naive{pool: pool, sp: sp, state: sp.New(), areaCap: maxStateWords}
	sel, err := pool.Alloc(pmem.LineSize)
	if err != nil {
		return nil, err
	}
	n.sel = sel
	for i := range n.area {
		a, err := pool.Alloc((maxStateWords + naiveMetaWords) * pmem.WordSize)
		if err != nil {
			return nil, err
		}
		n.area[i] = a
	}
	// Commit an initial (empty-state) snapshot into area 0.
	if err := n.writeArea(pmem.RootSystemPID, 0, n.state.Snapshot()); err != nil {
		return nil, err
	}
	pool.Store(pmem.RootSystemPID, sel, 0)
	pool.Persist(pmem.RootSystemPID, sel, pmem.WordSize)
	pool.SetRoot(naiveSelSlot, uint64(sel))
	rootWords := []uint64{uint64(n.area[0]), uint64(n.area[1]), uint64(maxStateWords)}
	for i, w := range rootWords {
		pool.SetRoot(naiveSelSlot+1+i, w)
	}
	pool.SetRoot(naiveMagicSlot, naiveRootMagic)
	return n, nil
}

// RecoverNaive rebuilds the object from the committed area.
func RecoverNaive(pool *pmem.Pool, sp spec.Spec) (*Naive, error) {
	if pool.Root(naiveMagicSlot) != naiveRootMagic {
		return nil, errors.New("baselines: pool has no naive root")
	}
	n := &Naive{pool: pool, sp: sp, state: sp.New()}
	n.sel = pmem.Addr(pool.Root(naiveSelSlot))
	n.area[0] = pmem.Addr(pool.Root(naiveSelSlot + 1))
	n.area[1] = pmem.Addr(pool.Root(naiveSelSlot + 2))
	n.areaCap = int(pool.Root(naiveSelSlot + 3))
	n.current = pool.Load(pmem.RootSystemPID, n.sel)
	if n.current > 1 {
		return nil, fmt.Errorf("baselines: corrupt commit selector %d", n.current)
	}
	words := n.readArea(pmem.RootSystemPID, int(n.current))
	if err := n.state.Restore(words); err != nil {
		return nil, fmt.Errorf("baselines: naive recovery: %w", err)
	}
	return n, nil
}

// writeArea durably stores words into area k with a fence per line.
func (n *Naive) writeArea(pid, k int, words []uint64) error {
	if len(words) > n.areaCap {
		return fmt.Errorf("baselines: state of %d words exceeds naive capacity %d", len(words), n.areaCap)
	}
	base := n.area[k]
	n.pool.Store(pid, base, uint64(len(words)))
	n.pool.Store(pid, base+pmem.WordSize, n.pool.Load(pid, base+pmem.WordSize)+1)
	for i, w := range words {
		addr := base + pmem.Addr((naiveMetaWords+i)*pmem.WordSize)
		n.pool.Store(pid, addr, w)
		// The naive discipline: strongly-ordered flush per line (a
		// clflush): flush + immediate fence, every line boundary.
		if (naiveMetaWords+i)%pmem.LineWords == pmem.LineWords-1 || i == len(words)-1 {
			n.pool.Flush(pid, addr)
			n.pool.Fence(pid)
		}
	}
	n.pool.Persist(pid, base, naiveMetaWords*pmem.WordSize)
	return nil
}

func (n *Naive) readArea(pid, k int) []uint64 {
	base := n.area[k]
	ln := n.pool.Load(pid, base)
	if ln > uint64(n.areaCap) {
		return nil
	}
	words := make([]uint64, ln)
	for i := range words {
		words[i] = n.pool.Load(pid, base+pmem.Addr((naiveMetaWords+i)*pmem.WordSize))
	}
	return words
}

// Update implements Object.
func (n *Naive) Update(pid int, code uint64, args ...uint64) (uint64, error) {
	op := spec.Op{Code: code}
	copy(op.Args[:], args)
	n.mu.Lock()
	defer n.mu.Unlock()
	ret := n.state.Apply(op)
	next := 1 - int(n.current)
	if err := n.writeArea(pid, next, n.state.Snapshot()); err != nil {
		return 0, err
	}
	// Durably flip the selector (one more persistent fence).
	n.pool.Store(pid, n.sel, uint64(next))
	n.pool.Persist(pid, n.sel, pmem.WordSize)
	n.current = uint64(next)
	return ret, nil
}

// Read implements Object. Reads serve the committed volatile state (the
// lock makes them blocking, like everything here).
func (n *Naive) Read(pid int, code uint64, args ...uint64) uint64 {
	op := spec.Op{Code: code}
	copy(op.Args[:], args)
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.state.Read(op)
}
