package baselines

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/pmem"
	"repro/internal/spec"
)

// Eager is a lock-free durably linearizable universal construction that
// follows the persist-THEN-linearize-THEN-persist-the-linearization
// discipline (the ordering the paper contrasts with ONLL in Sections 3.1
// and 7): the object is a persistent linked list of operation nodes in
// NVM, ordered by a CAS on a persistent head pointer.
//
// Per update: persist the node (fence #1), CAS the head, persist the
// head (fence #2) — two persistent fences. Per read: the reader must
// make the head it observed durable before returning (otherwise a
// pre-crash external action could expose a state recovery cannot
// reproduce) — one persistent fence.
//
// Recovery walks the durable head's chain; every node reachable from it
// was persisted before the head moved past it.
type Eager struct {
	pool   *pmem.Pool
	sp     spec.Spec
	nprocs int
	// headAddr is the persistent word holding the address of the
	// newest node (0 = empty).
	headAddr pmem.Addr
	views    []eagerView
	// lastID[pid] is the id of pid's most recent update (each view is
	// owned by one process, so plain slots suffice).
	lastID []uint64
}

type eagerView struct {
	state spec.State
	idx   uint64
}

// Eager node layout (words): code, a0, a1, a2, id, prev, idx — padded to
// one cache line so node persists are single-line.
const (
	eagerNodeWords = 8
	eagerRootMagic = 0x45474552 // "EGER"
	eagerMagicSlot = 2
	eagerHeadSlot  = 3
)

// NewEager builds a fresh eager-transform object on pool.
func NewEager(pool *pmem.Pool, sp spec.Spec, nprocs int) (*Eager, error) {
	if nprocs < 1 {
		return nil, errors.New("baselines: nprocs < 1")
	}
	headAddr, err := pool.Alloc(pmem.LineSize)
	if err != nil {
		return nil, err
	}
	pool.Store(pmem.RootSystemPID, headAddr, 0)
	pool.Persist(pmem.RootSystemPID, headAddr, pmem.WordSize)
	pool.SetRoot(eagerHeadSlot, uint64(headAddr))
	pool.SetRoot(eagerMagicSlot, eagerRootMagic)
	return attachEager(pool, sp, nprocs, headAddr)
}

func attachEager(pool *pmem.Pool, sp spec.Spec, nprocs int, headAddr pmem.Addr) (*Eager, error) {
	e := &Eager{pool: pool, sp: sp, nprocs: nprocs, headAddr: headAddr}
	e.lastID = make([]uint64, nprocs)
	e.views = make([]eagerView, nprocs)
	for i := range e.views {
		e.views[i] = eagerView{state: sp.New()}
	}
	return e, nil
}

// RecoverEager reattaches to an eager object after a crash.
func RecoverEager(pool *pmem.Pool, sp spec.Spec, nprocs int) (*Eager, error) {
	if pool.Root(eagerMagicSlot) != eagerRootMagic {
		return nil, errors.New("baselines: pool has no eager root")
	}
	headAddr := pmem.Addr(pool.Root(eagerHeadSlot))
	return attachEager(pool, sp, nprocs, headAddr)
}

func (e *Eager) readNode(pid int, addr pmem.Addr) (op spec.Op, prev pmem.Addr, idx uint64) {
	rd := func(i int) uint64 { return e.pool.Load(pid, addr+pmem.Addr(i*pmem.WordSize)) }
	op = spec.Op{Code: rd(0), Args: [3]uint64{rd(1), rd(2), rd(3)}, ID: rd(4)}
	return op, pmem.Addr(rd(5)), rd(6)
}

// Update implements Object: two persistent fences per update.
func (e *Eager) Update(pid int, code uint64, args ...uint64) (uint64, error) {
	op := spec.Op{Code: code}
	copy(op.Args[:], args)
	op.ID = spec.MakeID(pid, atomic.AddUint64(&eagerSeq, 1))
	e.lastID[pid] = op.ID
	addr, err := e.pool.Alloc(eagerNodeWords * pmem.WordSize)
	if err != nil {
		return 0, err
	}
	w := func(i int, v uint64) { e.pool.Store(pid, addr+pmem.Addr(i*pmem.WordSize), v) }
	w(0, op.Code)
	w(1, op.Args[0])
	w(2, op.Args[1])
	w(3, op.Args[2])
	w(4, op.ID)
	for {
		head := e.pool.Load(pid, e.headAddr)
		var idx uint64 = 1
		if head != 0 {
			_, _, pidx := e.readNode(pid, pmem.Addr(head))
			idx = pidx + 1
		}
		w(5, head)
		w(6, idx)
		// Persist the node BEFORE linearizing (fence #1).
		e.pool.Persist(pid, addr, eagerNodeWords*pmem.WordSize)
		// Linearize: CAS the persistent head (in the cache).
		if e.pool.CAS(pid, e.headAddr, head, uint64(addr)) {
			break
		}
		// Lost the race: the prev/idx we persisted are stale; retry
		// (each retry costs another persist — part of why this
		// discipline is expensive under contention).
	}
	// Persist the linearization point BEFORE returning (fence #2).
	e.pool.Persist(pid, e.headAddr, pmem.WordSize)
	return e.compute(pid, uint64(addr), spec.Op{}, true), nil
}

var eagerSeq uint64 // process-wide unique ids for baseline nodes

// Read implements Object: one persistent fence per read (the observed
// linearization must be durable before the read returns). This is the
// whole point of the baseline — the fencepath escape below is the
// deliberate inverse of the paper's 0-pfence read invariant.
//
//onll:allowfence(eager baseline fences reads by design: the observed linearization must be durable before returning)
func (e *Eager) Read(pid int, code uint64, args ...uint64) uint64 {
	op := spec.Op{Code: code}
	copy(op.Args[:], args)
	head := e.pool.Load(pid, e.headAddr)
	// Persist the dependency: flush+fence the head line. If the head
	// was already durable this fence is still persistent whenever the
	// line is dirty in our cache model; an implementation cannot tell.
	e.pool.Persist(pid, e.headAddr, pmem.WordSize)
	return e.compute(pid, head, op, false)
}

// compute advances pid's local view to the node at addr and either
// returns the last applied update's value (isUpdate) or evaluates op.
func (e *Eager) compute(pid int, head uint64, op spec.Op, isUpdate bool) uint64 {
	v := &e.views[pid]
	var target uint64
	if head != 0 {
		_, _, target = e.readNode(pid, pmem.Addr(head))
	}
	ret := spec.RetOK
	if target > v.idx {
		// Collect the gap backward, then apply oldest-first.
		var pendingOps []spec.Op
		cur := head
		for cur != 0 {
			nop, prev, idx := e.readNode(pid, pmem.Addr(cur))
			if idx <= v.idx {
				break
			}
			pendingOps = append(pendingOps, nop)
			cur = uint64(prev)
		}
		for i := len(pendingOps) - 1; i >= 0; i-- {
			ret = v.state.Apply(pendingOps[i])
		}
		v.idx = target
	}
	if isUpdate {
		return ret
	}
	return v.state.Read(op)
}

// LastID returns the id of pid's most recent update (history recorders
// attribute responses with it).
func (e *Eager) LastID(pid int) uint64 { return e.lastID[pid] }

// Chain returns the durable operation sequence, oldest first — what
// recovery linearizes. Used by the durability checker.
func (e *Eager) Chain(pid int) []spec.Op {
	head := e.pool.Load(pid, e.headAddr)
	var rev []spec.Op
	for cur := head; cur != 0; {
		op, prev, _ := e.readNode(pid, pmem.Addr(cur))
		rev = append(rev, op)
		cur = uint64(prev)
	}
	out := make([]spec.Op, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i])
	}
	return out
}

// State replays the durable chain into a fresh state — what recovery
// sees. Diagnostic/recovery helper.
func (e *Eager) State(pid int) (spec.State, uint64, error) {
	head := e.pool.Load(pid, e.headAddr)
	var ops []spec.Op
	cur := head
	var last uint64
	for cur != 0 {
		op, prev, idx := e.readNode(pid, pmem.Addr(cur))
		if last == 0 {
			last = idx
		}
		ops = append(ops, op)
		cur = uint64(prev)
	}
	st := e.sp.New()
	for i := len(ops) - 1; i >= 0; i-- {
		st.Apply(ops[i])
	}
	return st, last, nil
}

var _ = fmt.Sprintf // keep fmt for future diagnostics
