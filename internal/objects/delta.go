package objects

import (
	"slices"

	"repro/internal/spec"
)

// spec.DeltaEmitter / spec.DeltaApplier implementations for the keyed
// states (map, set, ordered map): the objects whose snapshots grow with
// the key space and therefore dominate compaction cost under
// insert-heavy churn. The emitted diff is last-writer-wins over the
// keys the ops touched: [tag, n, k1..kn, state1..staten] with the keys
// sorted and deduped (deterministic, like snapshots) and each state
// entry recording the key's CURRENT standing in the post-ops state —
// so a put overwritten by a later delete within the same window emits
// one tombstone, not two entries. Cost is O(churn-since-cut), never
// O(state). Everything else (stacks, queues, ledgers, ...) falls back
// to core's universal op-replay delta encoding.
//
// Every emitter declines (ok false) on an opcode it cannot summarize —
// a conservative escape hatch that keeps the fallback authoritative.

// Delta wire tags, distinct from the snapshot tags so a diff restored
// into the wrong decoder fails loudly.
const (
	tagSetDelta  = 0xD17A0006
	tagMapDelta  = 0xD17A0007
	tagOMapDelta = 0xD17A000B
)

// deltaPresent / deltaAbsent are the per-key state markers: present
// carries the key's current value in the next word for valued objects;
// absent is a tombstone.
const (
	deltaAbsent  uint64 = 0
	deltaPresent uint64 = 1
)

// appendTouchedKeys appends Args[0] of every op to dst, then sorts and
// dedupes the appended region in place, returning the extended slice.
// All keyed objects carry the key in Args[0] for every update opcode.
func appendTouchedKeys(dst []uint64, ops []spec.Op) []uint64 {
	start := len(dst)
	for _, op := range ops {
		dst = append(dst, op.Args[0])
	}
	ks := dst[start:]
	// slices.Sort is in-place and allocation-free; a hand-rolled
	// insertion sort went quadratic here on random-key windows (a
	// compaction cadence of 1024 zipfian ops cost ~half a millisecond
	// PER CUT, dwarfing the words the delta saved).
	slices.Sort(ks)
	w := 0
	for r := 0; r < len(ks); r++ {
		if r == 0 || ks[r] != ks[w-1] {
			ks[w] = ks[r]
			w++
		}
	}
	return dst[:start+w]
}

// emitKeyed builds the LWW diff shared by map and ordered map: header,
// sorted unique keys, then one (marker, value) pair per key read from
// lookup on the post-ops state.
func emitKeyed(dst []uint64, ops []spec.Op, tag uint64, lookup func(k uint64) (uint64, bool)) []uint64 {
	start := len(dst)
	dst = append(dst, tag, 0)
	dst = appendTouchedKeys(dst, ops)
	n := len(dst) - start - 2
	dst[start+1] = uint64(n)
	for _, k := range dst[start+2 : start+2+n] {
		if v, ok := lookup(k); ok {
			dst = append(dst, deltaPresent, v)
		} else {
			dst = append(dst, deltaAbsent, 0)
		}
	}
	return dst
}

// applyKeyed folds an emitKeyed diff: put present keys, delete absent
// ones. Validated as untrusted input.
func applyKeyed(w []uint64, tag uint64, name string, put func(k, v uint64), del func(k uint64)) error {
	if len(w) < 2 || w[0] != tag {
		return snapshotHeaderMismatch(name+" delta", tag, first(w))
	}
	n := w[1]
	if n != uint64(len(w)-2)/3 || (len(w)-2)%3 != 0 {
		return snapshotHeaderMismatch(name+" delta", tag, first(w))
	}
	keys, pv := w[2:2+n], w[2+n:]
	for i, k := range keys {
		if i > 0 && keys[i-1] >= k {
			return snapshotHeaderMismatch(name+" delta", tag, first(w))
		}
		switch pv[2*i] {
		case deltaPresent:
			put(k, pv[2*i+1])
		case deltaAbsent:
			del(k)
		default:
			return snapshotHeaderMismatch(name+" delta", tag, first(w))
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// Map.
// ---------------------------------------------------------------------

func (s *mapState) EmitDelta(dst []uint64, ops []spec.Op) ([]uint64, bool) {
	for _, op := range ops {
		switch op.Code {
		case MapPut, MapDel, MapCAS:
		default:
			return dst, false
		}
	}
	return emitKeyed(dst, ops, tagMapDelta, s.t.get), true
}

func (s *mapState) ApplyDelta(w []uint64) error {
	return applyKeyed(w, tagMapDelta, "map",
		func(k, v uint64) { s.t.put(k, v) },
		func(k uint64) { s.t.del(k) })
}

// ---------------------------------------------------------------------
// Set: same shape with the value word carrying 0 (membership only).
// ---------------------------------------------------------------------

func (s *setState) EmitDelta(dst []uint64, ops []spec.Op) ([]uint64, bool) {
	for _, op := range ops {
		switch op.Code {
		case SetAdd, SetRemove:
		default:
			return dst, false
		}
	}
	return emitKeyed(dst, ops, tagSetDelta, func(k uint64) (uint64, bool) {
		return 0, s.t.has(k)
	}), true
}

func (s *setState) ApplyDelta(w []uint64) error {
	return applyKeyed(w, tagSetDelta, "set",
		func(k, _ uint64) { s.t.put(k, 0) },
		func(k uint64) { s.t.del(k) })
}

// ---------------------------------------------------------------------
// Ordered map — the YCSB object, where delta cuts matter most.
// ---------------------------------------------------------------------

func (s *omapState) EmitDelta(dst []uint64, ops []spec.Op) ([]uint64, bool) {
	for _, op := range ops {
		switch op.Code {
		case OMapPut, OMapDel:
		default:
			return dst, false
		}
	}
	start := len(dst)
	dst = append(dst, tagOMapDelta, 0)
	dst = appendTouchedKeys(dst, ops)
	n := len(dst) - start - 2
	dst[start+1] = uint64(n)
	// The touched keys and the state's key array are both sorted, so one
	// merge pass prices every key with sequential reads. Per-key binary
	// search (closure-calling sort.Search) here cost ~90µs per cut on
	// zipfian windows — most of the delta path's CPU.
	i := 0
	for _, k := range dst[start+2 : start+2+n] {
		for i < len(s.keys) && s.keys[i] < k {
			i++
		}
		if i < len(s.keys) && s.keys[i] == k {
			dst = append(dst, deltaPresent, s.vals[i])
		} else {
			dst = append(dst, deltaAbsent, 0)
		}
	}
	return dst, true
}

func (s *omapState) ApplyDelta(w []uint64) error {
	return applyKeyed(w, tagOMapDelta, "orderedmap",
		func(k, v uint64) {
			s.Apply(spec.Op{Code: OMapPut, Args: [3]uint64{k, v}})
		},
		func(k uint64) {
			s.Apply(spec.Op{Code: OMapDel, Args: [3]uint64{k}})
		})
}

// Compile-time checks: emitters and appliers always ship as a pair.
var (
	_ spec.DeltaEmitter = (*mapState)(nil)
	_ spec.DeltaApplier = (*mapState)(nil)
	_ spec.DeltaEmitter = (*setState)(nil)
	_ spec.DeltaApplier = (*setState)(nil)
	_ spec.DeltaEmitter = (*omapState)(nil)
	_ spec.DeltaApplier = (*omapState)(nil)
)
