package objects

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/spec"
)

func apply(t *testing.T, s spec.State, code uint64, args ...uint64) uint64 {
	t.Helper()
	op := spec.Op{Code: code}
	copy(op.Args[:], args)
	return s.Apply(op)
}

func read(t *testing.T, s spec.State, code uint64, args ...uint64) uint64 {
	t.Helper()
	op := spec.Op{Code: code}
	copy(op.Args[:], args)
	return s.Read(op)
}

func TestCounterSemantics(t *testing.T) {
	s := CounterSpec{}.New()
	if got := apply(t, s, CounterInc); got != 1 {
		t.Fatalf("inc: %d", got)
	}
	if got := apply(t, s, CounterAdd, 10); got != 11 {
		t.Fatalf("add: %d", got)
	}
	if got := read(t, s, CounterGet); got != 11 {
		t.Fatalf("get: %d", got)
	}
}

func TestRegisterSemantics(t *testing.T) {
	s := RegisterSpec{}.New()
	if got := apply(t, s, RegisterWrite, 5); got != 0 {
		t.Fatalf("first write returned %d, want old value 0", got)
	}
	if got := apply(t, s, RegisterWrite, 9); got != 5 {
		t.Fatalf("second write returned %d, want 5", got)
	}
	if got := read(t, s, RegisterRead); got != 9 {
		t.Fatalf("read: %d", got)
	}
}

func TestRegisterWriteIdempotent(t *testing.T) {
	// H·op ≡ H·op·op for a fixed write — the Case 2 precondition of
	// the lower-bound proof.
	a := RegisterSpec{}.New()
	b := RegisterSpec{}.New()
	apply(t, a, RegisterWrite, 7)
	apply(t, b, RegisterWrite, 7)
	apply(t, b, RegisterWrite, 7)
	if !spec.Equal(a, b) {
		t.Fatal("register write is not idempotent")
	}
}

func TestStackSemantics(t *testing.T) {
	s := StackSpec{}.New()
	if got := apply(t, s, StackPop); got != spec.RetEmpty {
		t.Fatalf("pop empty: %d", got)
	}
	apply(t, s, StackPush, 1)
	apply(t, s, StackPush, 2)
	if got := read(t, s, StackPeek); got != 2 {
		t.Fatalf("peek: %d", got)
	}
	if got := read(t, s, StackLen); got != 2 {
		t.Fatalf("len: %d", got)
	}
	if got := apply(t, s, StackPop); got != 2 {
		t.Fatalf("pop: %d", got)
	}
	if got := apply(t, s, StackPop); got != 1 {
		t.Fatalf("pop: %d", got)
	}
	if got := read(t, s, StackPeek); got != spec.RetEmpty {
		t.Fatalf("peek empty: %d", got)
	}
}

func TestQueueSemanticsFIFO(t *testing.T) {
	s := QueueSpec{}.New()
	if got := apply(t, s, QueueDeq); got != spec.RetEmpty {
		t.Fatalf("deq empty: %d", got)
	}
	for i := uint64(1); i <= 5; i++ {
		apply(t, s, QueueEnq, i*10)
	}
	if got := read(t, s, QueueFront); got != 10 {
		t.Fatalf("front: %d", got)
	}
	for i := uint64(1); i <= 5; i++ {
		if got := apply(t, s, QueueDeq); got != i*10 {
			t.Fatalf("deq %d: %d", i, got)
		}
	}
	if got := read(t, s, QueueLen); got != 0 {
		t.Fatalf("len: %d", got)
	}
}

func TestQueueHeadCompaction(t *testing.T) {
	s := QueueSpec{}.New().(*queueState)
	for i := 0; i < 1000; i++ {
		apply(t, s, QueueEnq, uint64(i))
		if got := apply(t, s, QueueDeq); got != uint64(i) {
			t.Fatalf("deq: %d", got)
		}
	}
	if len(s.xs) > 256 {
		t.Fatalf("queue never compacts its head: backing %d", len(s.xs))
	}
}

func TestDequeSemantics(t *testing.T) {
	s := DequeSpec{}.New()
	apply(t, s, DequePushBack, 2)
	apply(t, s, DequePushFront, 1)
	apply(t, s, DequePushBack, 3)
	if f, b := read(t, s, DequeFront), read(t, s, DequeBack); f != 1 || b != 3 {
		t.Fatalf("front/back: %d/%d", f, b)
	}
	if got := apply(t, s, DequePopFront); got != 1 {
		t.Fatalf("popf: %d", got)
	}
	if got := apply(t, s, DequePopBack); got != 3 {
		t.Fatalf("popb: %d", got)
	}
	if got := apply(t, s, DequePopBack); got != 2 {
		t.Fatalf("popb: %d", got)
	}
	for _, code := range []uint64{DequePopFront, DequePopBack} {
		if got := apply(t, s, code); got != spec.RetEmpty {
			t.Fatalf("pop empty: %d", got)
		}
	}
}

func TestSetSemantics(t *testing.T) {
	s := SetSpec{}.New()
	if got := apply(t, s, SetAdd, 5); got != spec.RetOK {
		t.Fatalf("add: %d", got)
	}
	if got := apply(t, s, SetAdd, 5); got != spec.RetFail {
		t.Fatalf("duplicate add: %d", got)
	}
	if got := read(t, s, SetContains, 5); got != 1 {
		t.Fatalf("contains: %d", got)
	}
	if got := apply(t, s, SetRemove, 5); got != spec.RetOK {
		t.Fatalf("remove: %d", got)
	}
	if got := apply(t, s, SetRemove, 5); got != spec.RetFail {
		t.Fatalf("remove absent: %d", got)
	}
	if got := read(t, s, SetLen); got != 0 {
		t.Fatalf("len: %d", got)
	}
}

func TestMapSemantics(t *testing.T) {
	s := MapSpec{}.New()
	if got := apply(t, s, MapPut, 1, 100); got != spec.RetMissing {
		t.Fatalf("first put: %d", got)
	}
	if got := apply(t, s, MapPut, 1, 200); got != 100 {
		t.Fatalf("overwrite put: %d", got)
	}
	if got := read(t, s, MapGet, 1); got != 200 {
		t.Fatalf("get: %d", got)
	}
	if got := apply(t, s, MapCAS, 1, 999, 300); got != spec.RetFail {
		t.Fatalf("failing cas: %d", got)
	}
	if got := apply(t, s, MapCAS, 1, 200, 300); got != spec.RetOK {
		t.Fatalf("cas: %d", got)
	}
	if got := apply(t, s, MapDel, 1); got != 300 {
		t.Fatalf("del: %d", got)
	}
	if got := apply(t, s, MapDel, 1); got != spec.RetMissing {
		t.Fatalf("del absent: %d", got)
	}
	if got := read(t, s, MapGet, 1); got != spec.RetMissing {
		t.Fatalf("get absent: %d", got)
	}
}

func TestPQSemantics(t *testing.T) {
	s := PQSpec{}.New()
	if got := apply(t, s, PQExtractMin); got != spec.RetEmpty {
		t.Fatalf("extract empty: %d", got)
	}
	for _, v := range []uint64{5, 1, 9, 3, 7} {
		apply(t, s, PQInsert, v)
	}
	if got := read(t, s, PQMin); got != 1 {
		t.Fatalf("min: %d", got)
	}
	want := []uint64{1, 3, 5, 7, 9}
	for _, w := range want {
		if got := apply(t, s, PQExtractMin); got != w {
			t.Fatalf("extract: %d want %d", got, w)
		}
	}
}

func TestPQHeapPropertyQuick(t *testing.T) {
	f := func(vals []uint64) bool {
		s := PQSpec{}.New()
		for _, v := range vals {
			s.Apply(spec.Op{Code: PQInsert, Args: [3]uint64{v}})
		}
		prev := uint64(0)
		for range vals {
			got := s.Apply(spec.Op{Code: PQExtractMin})
			if got < prev {
				return false
			}
			prev = got
		}
		return s.Apply(spec.Op{Code: PQExtractMin}) == spec.RetEmpty
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAppendLogSemantics(t *testing.T) {
	s := LogSpec{}.New()
	for i := uint64(0); i < 5; i++ {
		if got := apply(t, s, LogAppend, i*3); got != i {
			t.Fatalf("append idx: %d want %d", got, i)
		}
	}
	if got := read(t, s, LogAt, 3); got != 9 {
		t.Fatalf("at: %d", got)
	}
	if got := read(t, s, LogAt, 99); got != spec.RetMissing {
		t.Fatalf("at oob: %d", got)
	}
	if got := read(t, s, LogLen); got != 5 {
		t.Fatalf("len: %d", got)
	}
}

func TestBankSemantics(t *testing.T) {
	s := BankSpec{}.New()
	if got := apply(t, s, BankDeposit, 1, 100); got != 100 {
		t.Fatalf("deposit: %d", got)
	}
	if got := apply(t, s, BankWithdraw, 1, 500); got != spec.RetFail {
		t.Fatalf("overdraft: %d", got)
	}
	if got := apply(t, s, BankTransfer, 1, 2, 60); got != spec.RetOK {
		t.Fatalf("transfer: %d", got)
	}
	if got := apply(t, s, BankTransfer, 1, 1, 10); got != spec.RetFail {
		t.Fatalf("self transfer: %d", got)
	}
	if b1, b2 := read(t, s, BankBalance, 1), read(t, s, BankBalance, 2); b1 != 40 || b2 != 60 {
		t.Fatalf("balances: %d/%d", b1, b2)
	}
	if got := read(t, s, BankTotal); got != 100 {
		t.Fatalf("total: %d", got)
	}
	if got := apply(t, s, BankWithdraw, 1, 40); got != 40 {
		t.Fatalf("withdraw: %d", got)
	}
	if got := read(t, s, BankAccounts); got != 1 {
		t.Fatalf("accounts: %d (zero balances must be pruned)", got)
	}
}

func TestBankConservationQuick(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := BankSpec{}.New()
		s.Apply(spec.Op{Code: BankDeposit, Args: [3]uint64{0, 1_000_000}})
		for i := 0; i < int(n); i++ {
			from := uint64(rng.Intn(8))
			to := uint64(rng.Intn(8))
			amt := uint64(rng.Intn(1000))
			s.Apply(spec.Op{Code: BankTransfer, Args: [3]uint64{from, to, amt}})
		}
		return s.Read(spec.Op{Code: BankTotal}) == 1_000_000
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// randomUpdate picks a random update op for sp.
func randomUpdate(rng *rand.Rand, sp spec.Spec) spec.Op {
	d := sp.(Describer)
	var updates []OpInfo
	for _, oi := range d.Ops() {
		if oi.Kind == KindUpdate {
			updates = append(updates, oi)
		}
	}
	oi := updates[rng.Intn(len(updates))]
	var op spec.Op
	op.Code = oi.Code
	for i := 0; i < oi.Arity; i++ {
		op.Args[i] = uint64(rng.Intn(16)) + 1
	}
	return op
}

func TestCloneIsDeepForAllObjects(t *testing.T) {
	for _, sp := range All() {
		t.Run(sp.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			s := sp.New()
			for i := 0; i < 50; i++ {
				s.Apply(randomUpdate(rng, sp))
			}
			c := s.Clone()
			if !spec.Equal(s, c) {
				t.Fatal("clone differs from original")
			}
			snapBefore := s.Snapshot()
			for i := 0; i < 50; i++ {
				c.Apply(randomUpdate(rng, sp))
			}
			snapAfter := s.Snapshot()
			if len(snapBefore) != len(snapAfter) {
				t.Fatal("mutating the clone changed the original")
			}
			for i := range snapBefore {
				if snapBefore[i] != snapAfter[i] {
					t.Fatal("mutating the clone changed the original")
				}
			}
		})
	}
}

func TestSnapshotRestoreRoundTripAllObjects(t *testing.T) {
	for _, sp := range All() {
		t.Run(sp.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			s := sp.New()
			for i := 0; i < 80; i++ {
				s.Apply(randomUpdate(rng, sp))
			}
			snap := s.Snapshot()
			r := sp.New()
			if err := r.Restore(snap); err != nil {
				t.Fatalf("restore: %v", err)
			}
			if !spec.Equal(s, r) {
				t.Fatalf("restored state differs:\n%v\n%v", s.Snapshot(), r.Snapshot())
			}
			// Determinism: same update sequence => same snapshot.
			rng2 := rand.New(rand.NewSource(11))
			s2 := sp.New()
			for i := 0; i < 80; i++ {
				s2.Apply(randomUpdate(rng2, sp))
			}
			if !spec.Equal(s, s2) {
				t.Fatal("snapshot not deterministic for identical histories")
			}
		})
	}
}

func TestRestoreRejectsWrongObject(t *testing.T) {
	counter := CounterSpec{}.New()
	counter.Apply(spec.Op{Code: CounterInc})
	snap := counter.Snapshot()
	for _, sp := range All() {
		if sp.Name() == "counter" {
			continue
		}
		if err := sp.New().Restore(snap); err == nil {
			t.Fatalf("%s accepted a counter snapshot", sp.Name())
		}
	}
	if err := (CounterSpec{}).New().Restore(nil); err == nil {
		t.Fatal("counter accepted an empty snapshot")
	}
}

func TestDescribersCoverAllCodesAndIsUpdate(t *testing.T) {
	for _, sp := range All() {
		d, ok := sp.(Describer)
		if !ok {
			t.Fatalf("%s does not describe its ops", sp.Name())
		}
		ops := d.Ops()
		if len(ops) < 2 {
			t.Fatalf("%s describes only %d ops", sp.Name(), len(ops))
		}
		hasUpdate, hasRead := false, false
		for _, oi := range ops {
			if got := IsUpdate(sp, oi.Code); got != (oi.Kind == KindUpdate) {
				t.Fatalf("%s.%s: IsUpdate mismatch", sp.Name(), oi.Name)
			}
			if oi.Kind == KindUpdate {
				hasUpdate = true
			} else {
				hasRead = true
			}
		}
		if !hasUpdate || !hasRead {
			t.Fatalf("%s lacks update or read ops", sp.Name())
		}
	}
}

func TestBadOpcodesPanic(t *testing.T) {
	for _, sp := range All() {
		s := sp.New()
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s.Apply accepted opcode 0", sp.Name())
				}
			}()
			s.Apply(spec.Op{Code: 0})
		}()
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s.Read accepted opcode 9999", sp.Name())
				}
			}()
			s.Read(spec.Op{Code: 9999})
		}()
	}
}

func TestDeterminismQuickAllObjects(t *testing.T) {
	// Property (the paper's core assumption): applying the same update
	// sequence always yields the same state and the same returns.
	for _, sp := range All() {
		sp := sp
		t.Run(sp.Name(), func(t *testing.T) {
			f := func(seed int64, n uint8) bool {
				mk := func() ([]uint64, spec.State) {
					rng := rand.New(rand.NewSource(seed))
					s := sp.New()
					var rets []uint64
					for i := 0; i < int(n); i++ {
						rets = append(rets, s.Apply(randomUpdate(rng, sp)))
					}
					return rets, s
				}
				r1, s1 := mk()
				r2, s2 := mk()
				if !spec.Equal(s1, s2) {
					return false
				}
				for i := range r1 {
					if r1[i] != r2[i] {
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
