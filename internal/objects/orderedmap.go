package objects

import (
	"fmt"
	"sort"

	"repro/internal/spec"
)

// OrderedMap is a sorted word-to-word map with order queries (floor,
// ceiling, rank, select, min, max). It exists to exercise the universal
// construction with an object whose read operations are structurally
// richer than point lookups — the index-tree shape that dominates the
// persistent-data-structure literature the paper cites (FPTree, NV-Tree,
// WORT).
//
// The state is a sorted slice of key-value pairs; all operations are
// deterministic, and the snapshot is the sorted pair sequence itself.

// OrderedMap opcodes.
const (
	OMapPut    uint64 = iota + 101 // update: m[arg0]=arg1; old value or RetMissing
	OMapDel                        // update: delete arg0; old value or RetMissing
	OMapGet                        // read: value or RetMissing
	OMapFloor                      // read: greatest key <= arg0, or RetMissing
	OMapCeil                       // read: least key >= arg0, or RetMissing
	OMapRank                       // read: #keys < arg0
	OMapSelect                     // read: the arg0-th smallest key (0-based) or RetMissing
	OMapMin                        // read: smallest key or RetMissing
	OMapMax                        // read: largest key or RetMissing
	OMapLen                        // read: size
)

// OrderedMapSpec is the sorted map specification.
type OrderedMapSpec struct{}

func (OrderedMapSpec) Name() string    { return "orderedmap" }
func (OrderedMapSpec) New() spec.State { return &omapState{} }
func (OrderedMapSpec) Ops() []OpInfo {
	return []OpInfo{
		{OMapPut, "put", KindUpdate, 2},
		{OMapDel, "del", KindUpdate, 1},
		{OMapGet, "get", KindRead, 1},
		{OMapFloor, "floor", KindRead, 1},
		{OMapCeil, "ceil", KindRead, 1},
		{OMapRank, "rank", KindRead, 1},
		{OMapSelect, "select", KindRead, 1},
		{OMapMin, "min", KindRead, 0},
		{OMapMax, "max", KindRead, 0},
		{OMapLen, "len", KindRead, 0},
	}
}

type omapState struct {
	keys []uint64
	vals []uint64
}

// search returns the insertion index of k and whether it is present.
func (s *omapState) search(k uint64) (int, bool) {
	i := sort.Search(len(s.keys), func(i int) bool { return s.keys[i] >= k })
	return i, i < len(s.keys) && s.keys[i] == k
}

func (s *omapState) Apply(op spec.Op) uint64 {
	k := op.Args[0]
	switch op.Code {
	case OMapPut:
		i, ok := s.search(k)
		if ok {
			old := s.vals[i]
			s.vals[i] = op.Args[1]
			return old
		}
		s.keys = append(s.keys, 0)
		s.vals = append(s.vals, 0)
		copy(s.keys[i+1:], s.keys[i:])
		copy(s.vals[i+1:], s.vals[i:])
		s.keys[i], s.vals[i] = k, op.Args[1]
		return spec.RetMissing
	case OMapDel:
		i, ok := s.search(k)
		if !ok {
			return spec.RetMissing
		}
		old := s.vals[i]
		s.keys = append(s.keys[:i], s.keys[i+1:]...)
		s.vals = append(s.vals[:i], s.vals[i+1:]...)
		return old
	}
	panic(fmt.Sprintf("orderedmap: bad update opcode %d", op.Code))
}

func (s *omapState) Read(op spec.Op) uint64 {
	k := op.Args[0]
	switch op.Code {
	case OMapGet:
		if i, ok := s.search(k); ok {
			return s.vals[i]
		}
		return spec.RetMissing
	case OMapFloor:
		i, ok := s.search(k)
		if ok {
			return k
		}
		if i == 0 {
			return spec.RetMissing
		}
		return s.keys[i-1]
	case OMapCeil:
		i, _ := s.search(k)
		if i == len(s.keys) {
			return spec.RetMissing
		}
		return s.keys[i]
	case OMapRank:
		i, _ := s.search(k)
		return uint64(i)
	case OMapSelect:
		if k >= uint64(len(s.keys)) {
			return spec.RetMissing
		}
		return s.keys[k]
	case OMapMin:
		if len(s.keys) == 0 {
			return spec.RetMissing
		}
		return s.keys[0]
	case OMapMax:
		if len(s.keys) == 0 {
			return spec.RetMissing
		}
		return s.keys[len(s.keys)-1]
	case OMapLen:
		return uint64(len(s.keys))
	}
	panic(fmt.Sprintf("orderedmap: bad read opcode %d", op.Code))
}

func (s *omapState) Clone() spec.State {
	return &omapState{
		keys: append([]uint64(nil), s.keys...),
		vals: append([]uint64(nil), s.vals...),
	}
}

const tagOMap = 0xC0DE000B

func (s *omapState) Snapshot() []uint64 {
	out := make([]uint64, 0, 2*len(s.keys)+2)
	out = append(out, tagOMap, uint64(len(s.keys)))
	for i := range s.keys {
		out = append(out, s.keys[i], s.vals[i])
	}
	return out
}

func (s *omapState) Restore(w []uint64) error {
	// Pair count validated without the overflowing 2*w[1] product: a
	// header claiming 2^63+1 pairs used to slip past `len(w)-2 == 2*w[1]`
	// and panic in make. The checks below also run BEFORE any mutation,
	// so a failed Restore leaves the previous state intact instead of
	// half-overwritten.
	if len(w) < 2 || w[0] != tagOMap || w[1] != uint64(len(w)-2)/2 || (len(w)-2)%2 != 0 {
		return snapshotHeaderMismatch("orderedmap", tagOMap, first(w))
	}
	n := int(w[1])
	for i := 1; i < n; i++ {
		if w[2*i] >= w[2+2*i] {
			return fmt.Errorf("objects: orderedmap snapshot keys not strictly sorted at %d", i)
		}
	}
	s.keys = make([]uint64, n)
	s.vals = make([]uint64, n)
	for i := 0; i < n; i++ {
		s.keys[i] = w[2+2*i]
		s.vals[i] = w[3+2*i]
	}
	return nil
}
