package objects

import (
	"math/rand"
	"testing"

	"repro/internal/spec"
)

// deltaCase drives one emitter/applier pair: apply a random op window
// to a clone, emit the diff from the post-window state, fold it into
// the pre-window state, and require spec.Equal.
func deltaCase(t *testing.T, sp spec.Spec, genOp func(r *rand.Rand, i int) spec.Op) {
	t.Helper()
	r := rand.New(rand.NewSource(7))
	base := sp.New()
	// A populated base so deltas mix inserts, overwrites and deletes of
	// pre-existing keys.
	for i := 0; i < 200; i++ {
		base.Apply(genOp(r, i))
	}
	for round := 0; round < 50; round++ {
		after := base.Clone()
		ops := make([]spec.Op, 1+r.Intn(32))
		for i := range ops {
			ops[i] = genOp(r, round*100+i)
			after.Apply(ops[i])
		}
		words, ok := after.(spec.DeltaEmitter).EmitDelta(nil, ops)
		if !ok {
			t.Fatalf("%s: emitter declined an all-update window", sp.Name())
		}
		if err := base.(spec.DeltaApplier).ApplyDelta(words); err != nil {
			t.Fatalf("%s: ApplyDelta: %v", sp.Name(), err)
		}
		if !spec.Equal(base, after) {
			t.Fatalf("%s round %d: delta round-trip diverged", sp.Name(), round)
		}
	}
}

func TestMapDeltaRoundTrip(t *testing.T) {
	deltaCase(t, MapSpec{}, func(r *rand.Rand, i int) spec.Op {
		k := uint64(r.Intn(64))
		switch r.Intn(4) {
		case 0:
			return spec.Op{Code: MapDel, Args: [3]uint64{k}}
		case 1:
			return spec.Op{Code: MapCAS, Args: [3]uint64{k, uint64(r.Intn(8)), uint64(i)}}
		default:
			return spec.Op{Code: MapPut, Args: [3]uint64{k, uint64(i) + 1}}
		}
	})
}

func TestSetDeltaRoundTrip(t *testing.T) {
	deltaCase(t, SetSpec{}, func(r *rand.Rand, i int) spec.Op {
		k := uint64(r.Intn(64))
		if r.Intn(3) == 0 {
			return spec.Op{Code: SetRemove, Args: [3]uint64{k}}
		}
		return spec.Op{Code: SetAdd, Args: [3]uint64{k}}
	})
}

func TestOrderedMapDeltaRoundTrip(t *testing.T) {
	deltaCase(t, OrderedMapSpec{}, func(r *rand.Rand, i int) spec.Op {
		k := uint64(r.Intn(64))
		if r.Intn(4) == 0 {
			return spec.Op{Code: OMapDel, Args: [3]uint64{k}}
		}
		return spec.Op{Code: OMapPut, Args: [3]uint64{k, uint64(i) + 1}}
	})
}

// TestDeltaEmitterDeclines pins the conservative escape hatch: a window
// containing an opcode the emitter cannot summarize returns ok false
// and leaves dst untouched, so the caller falls back to op replay.
func TestDeltaEmitterDeclines(t *testing.T) {
	st := MapSpec{}.New().(*mapState)
	ops := []spec.Op{{Code: MapPut, Args: [3]uint64{1, 2}}, {Code: 999}}
	dst := []uint64{7, 7}
	out, ok := st.EmitDelta(dst, ops)
	if ok {
		t.Fatal("emitter accepted an unknown opcode")
	}
	if len(out) != 2 || out[0] != 7 || out[1] != 7 {
		t.Fatalf("declined emit mutated dst: %v", out)
	}
}

// TestDeltaApplierRejectsCorrupt pins untrusted-input validation: bad
// tags, bad counts, unsorted keys and bad markers all error without
// panicking or partially applying garbage.
func TestDeltaApplierRejectsCorrupt(t *testing.T) {
	good := func() []uint64 {
		st := MapSpec{}.New().(*mapState)
		ops := []spec.Op{
			{Code: MapPut, Args: [3]uint64{3, 30}},
			{Code: MapPut, Args: [3]uint64{1, 10}},
		}
		st.Apply(ops[0])
		st.Apply(ops[1])
		w, ok := st.EmitDelta(nil, ops)
		if !ok {
			t.Fatal("emit failed")
		}
		return w
	}
	cases := map[string]func(w []uint64) []uint64{
		"bad tag":     func(w []uint64) []uint64 { w[0] ^= 1; return w },
		"bad count":   func(w []uint64) []uint64 { w[1] = 99; return w },
		"truncated":   func(w []uint64) []uint64 { return w[:len(w)-1] },
		"unsorted":    func(w []uint64) []uint64 { w[2], w[3] = w[3], w[2]; return w },
		"bad marker":  func(w []uint64) []uint64 { w[len(w)-2] = 7; return w },
		"empty":       func(w []uint64) []uint64 { return nil },
		"header only": func(w []uint64) []uint64 { return w[:1] },
	}
	for name, mut := range cases {
		st := MapSpec{}.New().(*mapState)
		if err := st.ApplyDelta(mut(good())); err == nil {
			t.Errorf("%s: corrupt delta accepted", name)
		}
	}
}

// TestDeltaLWWSemantics pins last-writer-wins compression: a key put
// then deleted inside one window emits a single tombstone, and the
// whole diff is strictly smaller than the op-replay encoding for a
// window that rewrites one hot key.
func TestDeltaLWWSemantics(t *testing.T) {
	st := MapSpec{}.New().(*mapState)
	var ops []spec.Op
	for i := 0; i < 20; i++ {
		op := spec.Op{Code: MapPut, Args: [3]uint64{5, uint64(i)}}
		st.Apply(op)
		ops = append(ops, op)
	}
	del := spec.Op{Code: MapDel, Args: [3]uint64{5}}
	st.Apply(del)
	ops = append(ops, del)
	w, ok := st.EmitDelta(nil, ops)
	if !ok {
		t.Fatal("emit failed")
	}
	// One touched key: [tag, 1, k, marker, val] = 5 words, vs 21 ops *
	// spec.OpWords for replay.
	if len(w) != 5 {
		t.Fatalf("diff is %d words, want 5: %v", len(w), w)
	}
	if w[3] != deltaAbsent {
		t.Fatalf("deleted key emitted marker %d, want tombstone", w[3])
	}
	fresh := MapSpec{}.New().(*mapState)
	fresh.Apply(spec.Op{Code: MapPut, Args: [3]uint64{5, 1}})
	if err := fresh.ApplyDelta(w); err != nil {
		t.Fatal(err)
	}
	if got := fresh.Read(spec.Op{Code: MapGet, Args: [3]uint64{5}}); got != spec.RetMissing {
		t.Fatalf("tombstone did not delete: got %d", got)
	}
}
