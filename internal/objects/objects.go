// Package objects ships deterministic sequential specifications
// (spec.Spec implementations) for the shared objects used throughout the
// experiments: the paper's running-example counter (Section 3.3) plus a
// register, stack, queue, deque, set, key-value map, priority queue,
// append-only log and a bank ledger. Each object defines its opcodes,
// classifies them as update or read-only, and provides deterministic
// snapshot/restore so it can participate in the compaction extension of
// Section 8.
package objects

import (
	"fmt"
	"sort"

	"repro/internal/spec"
)

// Kind identifies whether an opcode is an update or a read-only
// operation. The universal construction needs this classification: only
// updates enter the execution trace and the persistent logs.
type Kind int

const (
	// KindUpdate operations influence the results of later operations.
	KindUpdate Kind = iota
	// KindRead operations never influence later operations.
	KindRead
)

// OpInfo describes one opcode of an object.
type OpInfo struct {
	Code uint64
	Name string
	Kind Kind
	// Arity is the number of meaningful argument words (for generators).
	Arity int
}

// Describer is implemented by specs that can enumerate their opcodes;
// the workload generators and the linearizability checker use it.
type Describer interface {
	Ops() []OpInfo
}

// snapshotHeaderMismatch builds the common restore error.
func snapshotHeaderMismatch(name string, want, got uint64) error {
	return fmt.Errorf("objects: %s snapshot tag mismatch: want %#x got %#x", name, want, got)
}

// Each object's snapshot begins with a distinct tag word so that a
// snapshot restored into the wrong object type fails loudly.
const (
	tagCounter  = 0xC0DE0001
	tagRegister = 0xC0DE0002
	tagStack    = 0xC0DE0003
	tagQueue    = 0xC0DE0004
	tagDeque    = 0xC0DE0005
	tagSet      = 0xC0DE0006
	tagMap      = 0xC0DE0007
	tagPQ       = 0xC0DE0008
	tagLog      = 0xC0DE0009
	tagBank     = 0xC0DE000A
)

// sortedKeys returns the keys of m in ascending order (deterministic
// snapshots for map-backed objects).
func sortedKeys[V any](m map[uint64]V) []uint64 {
	ks := make([]uint64, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

// ---------------------------------------------------------------------
// Counter — the paper's running example (Section 3.3).
// ---------------------------------------------------------------------

// Counter opcodes.
const (
	CounterInc uint64 = iota + 1 // update: value++; returns new value
	CounterAdd                   // update: value += arg0; returns new value
	CounterGet                   // read: returns value
)

// CounterSpec is the shared counter of Section 3.3.
type CounterSpec struct{}

func (CounterSpec) Name() string    { return "counter" }
func (CounterSpec) New() spec.State { return &counterState{} }
func (CounterSpec) Ops() []OpInfo {
	return []OpInfo{
		{CounterInc, "inc", KindUpdate, 0},
		{CounterAdd, "add", KindUpdate, 1},
		{CounterGet, "get", KindRead, 0},
	}
}

type counterState struct{ v uint64 }

func (s *counterState) Apply(op spec.Op) uint64 {
	switch op.Code {
	case CounterInc:
		s.v++
		return s.v
	case CounterAdd:
		s.v += op.Args[0]
		return s.v
	}
	panic(fmt.Sprintf("counter: bad update opcode %d", op.Code))
}

func (s *counterState) Read(op spec.Op) uint64 {
	if op.Code != CounterGet {
		panic(fmt.Sprintf("counter: bad read opcode %d", op.Code))
	}
	return s.v
}

func (s *counterState) Clone() spec.State { c := *s; return &c }

func (s *counterState) Snapshot() []uint64 { return []uint64{tagCounter, s.v} }

func (s *counterState) Restore(w []uint64) error {
	if len(w) != 2 || w[0] != tagCounter {
		return snapshotHeaderMismatch("counter", tagCounter, first(w))
	}
	s.v = w[1]
	return nil
}

func first(w []uint64) uint64 {
	if len(w) == 0 {
		return 0
	}
	return w[0]
}

// ---------------------------------------------------------------------
// Register — a single read/write cell. Its Write is idempotent
// (H·op ≡ H·op·op), which is exactly Case 2 of the lower-bound proof
// (Theorem 6.3); the lower-bound experiment uses it for that reason.
// ---------------------------------------------------------------------

// Register opcodes.
const (
	RegisterWrite uint64 = iota + 1 // update: value = arg0; returns old value
	RegisterRead                    // read: returns value
)

// RegisterSpec is a single word-sized read/write register.
type RegisterSpec struct{}

func (RegisterSpec) Name() string    { return "register" }
func (RegisterSpec) New() spec.State { return &registerState{} }
func (RegisterSpec) Ops() []OpInfo {
	return []OpInfo{
		{RegisterWrite, "write", KindUpdate, 1},
		{RegisterRead, "read", KindRead, 0},
	}
}

type registerState struct{ v uint64 }

func (s *registerState) Apply(op spec.Op) uint64 {
	if op.Code != RegisterWrite {
		panic(fmt.Sprintf("register: bad update opcode %d", op.Code))
	}
	old := s.v
	s.v = op.Args[0]
	return old
}

func (s *registerState) Read(op spec.Op) uint64 {
	if op.Code != RegisterRead {
		panic(fmt.Sprintf("register: bad read opcode %d", op.Code))
	}
	return s.v
}

func (s *registerState) Clone() spec.State  { c := *s; return &c }
func (s *registerState) Snapshot() []uint64 { return []uint64{tagRegister, s.v} }
func (s *registerState) Restore(w []uint64) error {
	if len(w) != 2 || w[0] != tagRegister {
		return snapshotHeaderMismatch("register", tagRegister, first(w))
	}
	s.v = w[1]
	return nil
}

// ---------------------------------------------------------------------
// Stack.
// ---------------------------------------------------------------------

// Stack opcodes.
const (
	StackPush uint64 = iota + 1 // update: push arg0; returns new depth
	StackPop                    // update: pop; returns value or RetEmpty
	StackPeek                   // read: top value or RetEmpty
	StackLen                    // read: depth
)

// StackSpec is a LIFO stack of words.
type StackSpec struct{}

func (StackSpec) Name() string    { return "stack" }
func (StackSpec) New() spec.State { return &stackState{} }
func (StackSpec) Ops() []OpInfo {
	return []OpInfo{
		{StackPush, "push", KindUpdate, 1},
		{StackPop, "pop", KindUpdate, 0},
		{StackPeek, "peek", KindRead, 0},
		{StackLen, "len", KindRead, 0},
	}
}

type stackState struct{ xs []uint64 }

func (s *stackState) Apply(op spec.Op) uint64 {
	switch op.Code {
	case StackPush:
		s.xs = append(s.xs, op.Args[0])
		return uint64(len(s.xs))
	case StackPop:
		if len(s.xs) == 0 {
			return spec.RetEmpty
		}
		v := s.xs[len(s.xs)-1]
		s.xs = s.xs[:len(s.xs)-1]
		return v
	}
	panic(fmt.Sprintf("stack: bad update opcode %d", op.Code))
}

func (s *stackState) Read(op spec.Op) uint64 {
	switch op.Code {
	case StackPeek:
		if len(s.xs) == 0 {
			return spec.RetEmpty
		}
		return s.xs[len(s.xs)-1]
	case StackLen:
		return uint64(len(s.xs))
	}
	panic(fmt.Sprintf("stack: bad read opcode %d", op.Code))
}

func (s *stackState) Clone() spec.State {
	c := &stackState{xs: make([]uint64, len(s.xs))}
	copy(c.xs, s.xs)
	return c
}

func (s *stackState) Snapshot() []uint64 {
	out := make([]uint64, 0, len(s.xs)+2)
	out = append(out, tagStack, uint64(len(s.xs)))
	return append(out, s.xs...)
}

func (s *stackState) Restore(w []uint64) error {
	if len(w) < 2 || w[0] != tagStack || uint64(len(w)-2) != w[1] {
		return snapshotHeaderMismatch("stack", tagStack, first(w))
	}
	s.xs = append(s.xs[:0], w[2:]...)
	return nil
}

// ---------------------------------------------------------------------
// Queue.
// ---------------------------------------------------------------------

// Queue opcodes.
const (
	QueueEnq   uint64 = iota + 1 // update: enqueue arg0; returns new length
	QueueDeq                     // update: dequeue; returns value or RetEmpty
	QueueFront                   // read: front value or RetEmpty
	QueueLen                     // read: length
)

// QueueSpec is a FIFO queue of words.
type QueueSpec struct{}

func (QueueSpec) Name() string    { return "queue" }
func (QueueSpec) New() spec.State { return &queueState{} }
func (QueueSpec) Ops() []OpInfo {
	return []OpInfo{
		{QueueEnq, "enq", KindUpdate, 1},
		{QueueDeq, "deq", KindUpdate, 0},
		{QueueFront, "front", KindRead, 0},
		{QueueLen, "len", KindRead, 0},
	}
}

type queueState struct {
	xs   []uint64
	head int
}

func (s *queueState) size() int { return len(s.xs) - s.head }

func (s *queueState) Apply(op spec.Op) uint64 {
	switch op.Code {
	case QueueEnq:
		s.xs = append(s.xs, op.Args[0])
		return uint64(s.size())
	case QueueDeq:
		if s.size() == 0 {
			return spec.RetEmpty
		}
		v := s.xs[s.head]
		s.head++
		if s.head > 64 && s.head*2 > len(s.xs) {
			s.xs = append([]uint64(nil), s.xs[s.head:]...)
			s.head = 0
		}
		return v
	}
	panic(fmt.Sprintf("queue: bad update opcode %d", op.Code))
}

func (s *queueState) Read(op spec.Op) uint64 {
	switch op.Code {
	case QueueFront:
		if s.size() == 0 {
			return spec.RetEmpty
		}
		return s.xs[s.head]
	case QueueLen:
		return uint64(s.size())
	}
	panic(fmt.Sprintf("queue: bad read opcode %d", op.Code))
}

func (s *queueState) Clone() spec.State {
	c := &queueState{xs: append([]uint64(nil), s.xs[s.head:]...)}
	return c
}

func (s *queueState) Snapshot() []uint64 {
	live := s.xs[s.head:]
	out := make([]uint64, 0, len(live)+2)
	out = append(out, tagQueue, uint64(len(live)))
	return append(out, live...)
}

func (s *queueState) Restore(w []uint64) error {
	if len(w) < 2 || w[0] != tagQueue || uint64(len(w)-2) != w[1] {
		return snapshotHeaderMismatch("queue", tagQueue, first(w))
	}
	s.xs = append([]uint64(nil), w[2:]...)
	s.head = 0
	return nil
}

// ---------------------------------------------------------------------
// Deque.
// ---------------------------------------------------------------------

// Deque opcodes.
const (
	DequePushFront uint64 = iota + 1 // update
	DequePushBack                    // update
	DequePopFront                    // update: value or RetEmpty
	DequePopBack                     // update: value or RetEmpty
	DequeFront                       // read
	DequeBack                        // read
	DequeLen                         // read
)

// DequeSpec is a double-ended queue of words.
type DequeSpec struct{}

func (DequeSpec) Name() string    { return "deque" }
func (DequeSpec) New() spec.State { return &dequeState{} }
func (DequeSpec) Ops() []OpInfo {
	return []OpInfo{
		{DequePushFront, "pushf", KindUpdate, 1},
		{DequePushBack, "pushb", KindUpdate, 1},
		{DequePopFront, "popf", KindUpdate, 0},
		{DequePopBack, "popb", KindUpdate, 0},
		{DequeFront, "front", KindRead, 0},
		{DequeBack, "back", KindRead, 0},
		{DequeLen, "len", KindRead, 0},
	}
}

type dequeState struct{ xs []uint64 }

func (s *dequeState) Apply(op spec.Op) uint64 {
	switch op.Code {
	case DequePushFront:
		s.xs = append([]uint64{op.Args[0]}, s.xs...)
		return uint64(len(s.xs))
	case DequePushBack:
		s.xs = append(s.xs, op.Args[0])
		return uint64(len(s.xs))
	case DequePopFront:
		if len(s.xs) == 0 {
			return spec.RetEmpty
		}
		v := s.xs[0]
		s.xs = s.xs[1:]
		return v
	case DequePopBack:
		if len(s.xs) == 0 {
			return spec.RetEmpty
		}
		v := s.xs[len(s.xs)-1]
		s.xs = s.xs[:len(s.xs)-1]
		return v
	}
	panic(fmt.Sprintf("deque: bad update opcode %d", op.Code))
}

func (s *dequeState) Read(op spec.Op) uint64 {
	switch op.Code {
	case DequeFront:
		if len(s.xs) == 0 {
			return spec.RetEmpty
		}
		return s.xs[0]
	case DequeBack:
		if len(s.xs) == 0 {
			return spec.RetEmpty
		}
		return s.xs[len(s.xs)-1]
	case DequeLen:
		return uint64(len(s.xs))
	}
	panic(fmt.Sprintf("deque: bad read opcode %d", op.Code))
}

func (s *dequeState) Clone() spec.State {
	return &dequeState{xs: append([]uint64(nil), s.xs...)}
}

func (s *dequeState) Snapshot() []uint64 {
	out := make([]uint64, 0, len(s.xs)+2)
	out = append(out, tagDeque, uint64(len(s.xs)))
	return append(out, s.xs...)
}

func (s *dequeState) Restore(w []uint64) error {
	if len(w) < 2 || w[0] != tagDeque || uint64(len(w)-2) != w[1] {
		return snapshotHeaderMismatch("deque", tagDeque, first(w))
	}
	s.xs = append([]uint64(nil), w[2:]...)
	return nil
}

// ---------------------------------------------------------------------
// Set.
// ---------------------------------------------------------------------

// Set opcodes.
const (
	SetAdd      uint64 = iota + 1 // update: returns RetOK if added, RetFail if present
	SetRemove                     // update: returns RetOK if removed, RetFail if absent
	SetContains                   // read: 1 or 0
	SetLen                        // read
)

// SetSpec is a set of words.
type SetSpec struct{}

func (SetSpec) Name() string    { return "set" }
func (SetSpec) New() spec.State { return &setState{t: newDenseTable(false, 0)} }
func (SetSpec) Ops() []OpInfo {
	return []OpInfo{
		{SetAdd, "add", KindUpdate, 1},
		{SetRemove, "remove", KindUpdate, 1},
		{SetContains, "contains", KindRead, 1},
		{SetLen, "len", KindRead, 0},
	}
}

// setState is backed by an open-addressed dense table so steady-state
// Apply (add of a present key, remove, contains) never allocates; only
// amortized growth does. The snapshot wire format (tag, count, sorted
// keys) is unchanged from the map-backed representation.
type setState struct{ t *denseTable }

func (s *setState) Apply(op spec.Op) uint64 {
	k := op.Args[0]
	switch op.Code {
	case SetAdd:
		if _, existed := s.t.put(k, 0); existed {
			return spec.RetFail
		}
		return spec.RetOK
	case SetRemove:
		if _, existed := s.t.del(k); !existed {
			return spec.RetFail
		}
		return spec.RetOK
	}
	panic(fmt.Sprintf("set: bad update opcode %d", op.Code))
}

func (s *setState) Read(op spec.Op) uint64 {
	switch op.Code {
	case SetContains:
		if s.t.has(op.Args[0]) {
			return 1
		}
		return 0
	case SetLen:
		return uint64(s.t.live)
	}
	panic(fmt.Sprintf("set: bad read opcode %d", op.Code))
}

func (s *setState) Clone() spec.State { return &setState{t: s.t.clone()} }

func (s *setState) Snapshot() []uint64 {
	out := make([]uint64, 0, s.t.live+2)
	out = append(out, tagSet, uint64(s.t.live))
	return s.t.appendSnapshot(out)
}

func (s *setState) Restore(w []uint64) error {
	if len(w) < 2 || w[0] != tagSet || uint64(len(w)-2) != w[1] {
		return snapshotHeaderMismatch("set", tagSet, first(w))
	}
	s.t.reset(false, len(w)-2)
	for _, k := range w[2:] {
		s.t.put(k, 0)
	}
	return nil
}

// ---------------------------------------------------------------------
// Map (key-value store).
// ---------------------------------------------------------------------

// Map opcodes.
const (
	MapPut uint64 = iota + 1 // update: m[arg0]=arg1; returns old value or RetMissing
	MapDel                   // update: delete arg0; returns old value or RetMissing
	MapCAS                   // update: if m[arg0]==arg1 then m[arg0]=arg2 (RetOK) else RetFail
	MapGet                   // read: value or RetMissing
	MapLen                   // read
)

// MapSpec is a word-to-word hash map (the KV-store example builds on it).
type MapSpec struct{}

func (MapSpec) Name() string    { return "map" }
func (MapSpec) New() spec.State { return &mapState{t: newDenseTable(true, 0)} }
func (MapSpec) Ops() []OpInfo {
	return []OpInfo{
		{MapPut, "put", KindUpdate, 2},
		{MapDel, "del", KindUpdate, 1},
		{MapCAS, "cas", KindUpdate, 3},
		{MapGet, "get", KindRead, 1},
		{MapLen, "len", KindRead, 0},
	}
}

// mapState is backed by an open-addressed dense table (see dense.go):
// gets, overwrites, deletes and CASes allocate nothing, inserts only on
// amortized growth. Snapshot format (tag, count, sorted pairs) matches
// the previous map-backed representation word for word.
type mapState struct{ t *denseTable }

func (s *mapState) Apply(op spec.Op) uint64 {
	k := op.Args[0]
	switch op.Code {
	case MapPut:
		old, existed := s.t.put(k, op.Args[1])
		if !existed {
			return spec.RetMissing
		}
		return old
	case MapDel:
		old, existed := s.t.del(k)
		if !existed {
			return spec.RetMissing
		}
		return old
	case MapCAS:
		cur, _ := s.t.get(k) // absent key reads as 0, as with a Go map
		if cur != op.Args[1] {
			return spec.RetFail
		}
		s.t.put(k, op.Args[2])
		return spec.RetOK
	}
	panic(fmt.Sprintf("map: bad update opcode %d", op.Code))
}

func (s *mapState) Read(op spec.Op) uint64 {
	switch op.Code {
	case MapGet:
		v, ok := s.t.get(op.Args[0])
		if !ok {
			return spec.RetMissing
		}
		return v
	case MapLen:
		return uint64(s.t.live)
	}
	panic(fmt.Sprintf("map: bad read opcode %d", op.Code))
}

func (s *mapState) Clone() spec.State { return &mapState{t: s.t.clone()} }

func (s *mapState) Snapshot() []uint64 {
	out := make([]uint64, 0, 2*s.t.live+2)
	out = append(out, tagMap, uint64(s.t.live))
	return s.t.appendSnapshot(out)
}

func (s *mapState) Restore(w []uint64) error {
	// The claimed pair count is validated against the actual word count
	// without the 2*w[1] multiplication, which overflowed for counts near
	// 2^63 and accepted corrupt headers (then panicked building the
	// state).
	if len(w) < 2 || w[0] != tagMap || w[1] != uint64(len(w)-2)/2 || (len(w)-2)%2 != 0 {
		return snapshotHeaderMismatch("map", tagMap, first(w))
	}
	s.t.reset(true, int(w[1]))
	for i := 2; i < len(w); i += 2 {
		s.t.put(w[i], w[i+1])
	}
	return nil
}

// ---------------------------------------------------------------------
// Priority queue (min-heap).
// ---------------------------------------------------------------------

// Priority queue opcodes.
const (
	PQInsert     uint64 = iota + 1 // update: insert arg0; returns new size
	PQExtractMin                   // update: returns min or RetEmpty
	PQMin                          // read: min or RetEmpty
	PQLen                          // read
)

// PQSpec is a min-priority queue of words.
type PQSpec struct{}

func (PQSpec) Name() string    { return "pqueue" }
func (PQSpec) New() spec.State { return &pqState{} }
func (PQSpec) Ops() []OpInfo {
	return []OpInfo{
		{PQInsert, "insert", KindUpdate, 1},
		{PQExtractMin, "extractmin", KindUpdate, 0},
		{PQMin, "min", KindRead, 0},
		{PQLen, "len", KindRead, 0},
	}
}

type pqState struct{ h []uint64 }

func (s *pqState) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if s.h[p] <= s.h[i] {
			return
		}
		s.h[p], s.h[i] = s.h[i], s.h[p]
		i = p
	}
}

func (s *pqState) down(i int) {
	n := len(s.h)
	for {
		l, r, m := 2*i+1, 2*i+2, i
		if l < n && s.h[l] < s.h[m] {
			m = l
		}
		if r < n && s.h[r] < s.h[m] {
			m = r
		}
		if m == i {
			return
		}
		s.h[i], s.h[m] = s.h[m], s.h[i]
		i = m
	}
}

func (s *pqState) Apply(op spec.Op) uint64 {
	switch op.Code {
	case PQInsert:
		s.h = append(s.h, op.Args[0])
		s.up(len(s.h) - 1)
		return uint64(len(s.h))
	case PQExtractMin:
		if len(s.h) == 0 {
			return spec.RetEmpty
		}
		v := s.h[0]
		last := len(s.h) - 1
		s.h[0] = s.h[last]
		s.h = s.h[:last]
		if last > 0 {
			s.down(0)
		}
		return v
	}
	panic(fmt.Sprintf("pqueue: bad update opcode %d", op.Code))
}

func (s *pqState) Read(op spec.Op) uint64 {
	switch op.Code {
	case PQMin:
		if len(s.h) == 0 {
			return spec.RetEmpty
		}
		return s.h[0]
	case PQLen:
		return uint64(len(s.h))
	}
	panic(fmt.Sprintf("pqueue: bad read opcode %d", op.Code))
}

func (s *pqState) Clone() spec.State {
	return &pqState{h: append([]uint64(nil), s.h...)}
}

// Snapshot stores the elements in sorted order so that two heaps with
// the same contents (but different internal shapes reached via different
// op orders... which cannot happen for a deterministic object, but
// sorting is cheap insurance) serialize identically. The sort happens
// directly in the output slice — one allocation, no scratch copy.
func (s *pqState) Snapshot() []uint64 {
	out := make([]uint64, 0, len(s.h)+2)
	out = append(out, tagPQ, uint64(len(s.h)))
	out = append(out, s.h...)
	xs := out[2:]
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	return out
}

func (s *pqState) Restore(w []uint64) error {
	if len(w) < 2 || w[0] != tagPQ || uint64(len(w)-2) != w[1] {
		return snapshotHeaderMismatch("pqueue", tagPQ, first(w))
	}
	// A sorted slice is already a valid min-heap. The preallocated
	// backing array is reused when it is large enough.
	s.h = append(s.h[:0], w[2:]...)
	return nil
}

// ---------------------------------------------------------------------
// Append-only log.
// ---------------------------------------------------------------------

// Append-only log opcodes.
const (
	LogAppend uint64 = iota + 1 // update: append arg0; returns index
	LogAt                       // read: value at index arg0 or RetMissing
	LogLen                      // read
)

// LogSpec is an append-only sequence of words.
type LogSpec struct{}

func (LogSpec) Name() string    { return "applog" }
func (LogSpec) New() spec.State { return &logState{} }
func (LogSpec) Ops() []OpInfo {
	return []OpInfo{
		{LogAppend, "append", KindUpdate, 1},
		{LogAt, "at", KindRead, 1},
		{LogLen, "len", KindRead, 0},
	}
}

type logState struct{ xs []uint64 }

func (s *logState) Apply(op spec.Op) uint64 {
	if op.Code != LogAppend {
		panic(fmt.Sprintf("applog: bad update opcode %d", op.Code))
	}
	s.xs = append(s.xs, op.Args[0])
	return uint64(len(s.xs) - 1)
}

func (s *logState) Read(op spec.Op) uint64 {
	switch op.Code {
	case LogAt:
		i := op.Args[0]
		if i >= uint64(len(s.xs)) {
			return spec.RetMissing
		}
		return s.xs[i]
	case LogLen:
		return uint64(len(s.xs))
	}
	panic(fmt.Sprintf("applog: bad read opcode %d", op.Code))
}

func (s *logState) Clone() spec.State {
	return &logState{xs: append([]uint64(nil), s.xs...)}
}

func (s *logState) Snapshot() []uint64 {
	out := make([]uint64, 0, len(s.xs)+2)
	out = append(out, tagLog, uint64(len(s.xs)))
	return append(out, s.xs...)
}

func (s *logState) Restore(w []uint64) error {
	if len(w) < 2 || w[0] != tagLog || uint64(len(w)-2) != w[1] {
		return snapshotHeaderMismatch("applog", tagLog, first(w))
	}
	s.xs = append([]uint64(nil), w[2:]...)
	return nil
}

// ---------------------------------------------------------------------
// Bank ledger — the invariant-rich object used by examples/bank: the sum
// of balances is preserved by transfers, so crash-recovery bugs show up
// as conservation violations.
// ---------------------------------------------------------------------

// Bank opcodes.
const (
	BankDeposit  uint64 = iota + 1 // update: acct arg0 += arg1; returns new balance
	BankWithdraw                   // update: acct arg0 -= arg1 if covered; RetFail on overdraft
	BankTransfer                   // update: arg0 -> arg1 amount arg2; RetOK/RetFail
	BankBalance                    // read: balance of arg0
	BankTotal                      // read: sum of all balances
	BankAccounts                   // read: number of accounts with nonzero balance
)

// BankSpec is a ledger of account balances.
type BankSpec struct{}

func (BankSpec) Name() string    { return "bank" }
func (BankSpec) New() spec.State { return &bankState{m: map[uint64]uint64{}} }
func (BankSpec) Ops() []OpInfo {
	return []OpInfo{
		{BankDeposit, "deposit", KindUpdate, 2},
		{BankWithdraw, "withdraw", KindUpdate, 2},
		{BankTransfer, "transfer", KindUpdate, 3},
		{BankBalance, "balance", KindRead, 1},
		{BankTotal, "total", KindRead, 0},
		{BankAccounts, "accounts", KindRead, 0},
	}
}

type bankState struct{ m map[uint64]uint64 }

func (s *bankState) Apply(op spec.Op) uint64 {
	switch op.Code {
	case BankDeposit:
		s.m[op.Args[0]] += op.Args[1]
		return s.m[op.Args[0]]
	case BankWithdraw:
		a, amt := op.Args[0], op.Args[1]
		if s.m[a] < amt {
			return spec.RetFail
		}
		s.m[a] -= amt
		if s.m[a] == 0 {
			delete(s.m, a)
		}
		return amt
	case BankTransfer:
		from, to, amt := op.Args[0], op.Args[1], op.Args[2]
		if from == to || s.m[from] < amt {
			return spec.RetFail
		}
		s.m[from] -= amt
		if s.m[from] == 0 {
			delete(s.m, from)
		}
		s.m[to] += amt
		return spec.RetOK
	}
	panic(fmt.Sprintf("bank: bad update opcode %d", op.Code))
}

func (s *bankState) Read(op spec.Op) uint64 {
	switch op.Code {
	case BankBalance:
		return s.m[op.Args[0]]
	case BankTotal:
		var t uint64
		for _, v := range s.m {
			t += v
		}
		return t
	case BankAccounts:
		return uint64(len(s.m))
	}
	panic(fmt.Sprintf("bank: bad read opcode %d", op.Code))
}

func (s *bankState) Clone() spec.State {
	c := &bankState{m: make(map[uint64]uint64, len(s.m))}
	for k, v := range s.m {
		c.m[k] = v
	}
	return c
}

func (s *bankState) Snapshot() []uint64 {
	out := make([]uint64, 0, 2*len(s.m)+2)
	out = append(out, tagBank, uint64(len(s.m)))
	for _, k := range sortedKeys(s.m) {
		out = append(out, k, s.m[k])
	}
	return out
}

func (s *bankState) Restore(w []uint64) error {
	// Pair count validated without the overflowing 2*w[1] product (see
	// mapState.Restore).
	if len(w) < 2 || w[0] != tagBank || w[1] != uint64(len(w)-2)/2 || (len(w)-2)%2 != 0 {
		return snapshotHeaderMismatch("bank", tagBank, first(w))
	}
	s.m = make(map[uint64]uint64, w[1])
	for i := 2; i < len(w); i += 2 {
		s.m[w[i]] = w[i+1]
	}
	return nil
}

// All returns every spec shipped by this package (used by table-driven
// tests and the experiment harness).
func All() []spec.Spec {
	return []spec.Spec{
		CounterSpec{}, RegisterSpec{}, StackSpec{}, QueueSpec{},
		DequeSpec{}, SetSpec{}, MapSpec{}, PQSpec{}, LogSpec{}, BankSpec{},
		OrderedMapSpec{},
	}
}

// IsUpdate reports whether code is an update opcode of s, using the
// Describer interface. It panics if s does not describe its ops or the
// code is unknown.
func IsUpdate(s spec.Spec, code uint64) bool {
	d, ok := s.(Describer)
	if !ok {
		panic(fmt.Sprintf("objects: spec %q does not enumerate ops", s.Name()))
	}
	for _, oi := range d.Ops() {
		if oi.Code == code {
			return oi.Kind == KindUpdate
		}
	}
	panic(fmt.Sprintf("objects: spec %q has no opcode %d", s.Name(), code))
}
