package objects

import "sort"

// denseTable is an open-addressed hash table from uint64 keys to uint64
// values, the allocation-free replacement for the Go maps that used to
// back the map and set states: steady-state Apply paths (get, put over
// an existing key, delete) allocate nothing, and inserts allocate only
// on amortized growth. Linear probing with tombstones; a power-of-
// two capacity; rehash drops tombstones. Values may be disabled (vals
// nil) for set-shaped objects.
//
// The table is an in-memory spec state, not a persistent structure: its
// snapshot wire format is the same sorted key(/value) sequence the map-
// backed states produced, so snapshot tags and layouts are unchanged.
type denseTable struct {
	meta []uint8 // slot state: dtEmpty, dtFull or dtTomb
	keys []uint64
	vals []uint64 // nil for keyless (set) tables
	live int      // full slots
	used int      // full + tombstone slots
}

const (
	dtEmpty uint8 = iota
	dtFull
	dtTomb
)

// dtMinCap is the smallest table capacity (power of two).
const dtMinCap = 8

// dtHash mixes k (splitmix64 finalizer) so sequential keys spread.
func dtHash(k uint64) uint64 {
	k ^= k >> 30
	k *= 0xbf58476d1ce4e5b9
	k ^= k >> 27
	k *= 0x94d049bb133111eb
	k ^= k >> 31
	return k
}

func newDenseTable(hasVals bool, capHint int) *denseTable {
	c := dtMinCap
	for c < capHint*2 {
		c <<= 1
	}
	t := &denseTable{meta: make([]uint8, c), keys: make([]uint64, c)}
	if hasVals {
		t.vals = make([]uint64, c)
	}
	return t
}

// find returns the slot of k if present (ok true) or the slot where k
// would be inserted (first tombstone on the probe path, else the empty
// slot that ended the probe).
func (t *denseTable) find(k uint64) (slot int, ok bool) {
	mask := uint64(len(t.meta) - 1)
	i := dtHash(k) & mask
	insert := -1
	for {
		switch t.meta[i] {
		case dtEmpty:
			if insert >= 0 {
				return insert, false
			}
			return int(i), false
		case dtFull:
			if t.keys[i] == k {
				return int(i), true
			}
		case dtTomb:
			if insert < 0 {
				insert = int(i)
			}
		}
		i = (i + 1) & mask
	}
}

func (t *denseTable) get(k uint64) (uint64, bool) {
	i, ok := t.find(k)
	if !ok {
		return 0, false
	}
	if t.vals == nil {
		return 0, true
	}
	return t.vals[i], true
}

func (t *denseTable) has(k uint64) bool {
	_, ok := t.find(k)
	return ok
}

// put sets k to v, returning the previous value and whether k was
// present. Growth (and tombstone compaction) is amortized.
func (t *denseTable) put(k, v uint64) (old uint64, existed bool) {
	i, ok := t.find(k)
	if ok {
		if t.vals == nil {
			return 0, true
		}
		old = t.vals[i]
		t.vals[i] = v
		return old, true
	}
	if t.meta[i] == dtEmpty {
		t.used++
	}
	t.meta[i] = dtFull
	t.keys[i] = k
	if t.vals != nil {
		t.vals[i] = v
	}
	t.live++
	// Keep the probe load (full + tombstones) under 3/4.
	if t.used*4 >= len(t.meta)*3 {
		t.rehash()
	}
	return 0, false
}

// del removes k, returning its value and whether it was present.
func (t *denseTable) del(k uint64) (old uint64, existed bool) {
	i, ok := t.find(k)
	if !ok {
		return 0, false
	}
	if t.vals != nil {
		old = t.vals[i]
	}
	t.meta[i] = dtTomb
	t.live--
	return old, true
}

// rehash rebuilds the table without tombstones, doubling capacity when
// the live load justifies it.
func (t *denseTable) rehash() {
	c := len(t.meta)
	if t.live*2 >= c {
		c <<= 1
	}
	ok, ov := t.keys, t.vals
	om := t.meta
	t.meta = make([]uint8, c)
	t.keys = make([]uint64, c)
	if ov != nil {
		t.vals = make([]uint64, c)
	}
	t.used, t.live = 0, 0
	for i, m := range om {
		if m != dtFull {
			continue
		}
		if ov != nil {
			t.put(ok[i], ov[i])
		} else {
			t.put(ok[i], 0)
		}
	}
}

// reset empties the table in place, keeping capacity (Restore reuses it).
func (t *denseTable) reset(hasVals bool, capHint int) {
	need := dtMinCap
	for need < capHint*2 {
		need <<= 1
	}
	if need > len(t.meta) || (hasVals && t.vals == nil) {
		t.meta = make([]uint8, need)
		t.keys = make([]uint64, need)
		if hasVals {
			t.vals = make([]uint64, need)
		}
	} else {
		clear(t.meta)
	}
	if !hasVals {
		t.vals = nil
	}
	t.live, t.used = 0, 0
}

// copyFrom replaces the table contents with src's, reusing the
// receiver's arrays when they are already the right shape — the
// steady-state path of core's view adoption copies the same table
// layout back and forth without allocating.
func (t *denseTable) copyFrom(src *denseTable) {
	if cap(t.meta) < len(src.meta) {
		t.meta = make([]uint8, len(src.meta))
	}
	t.meta = t.meta[:len(src.meta)]
	copy(t.meta, src.meta)
	t.keys = reuse(t.keys, src.keys)
	if src.vals == nil {
		t.vals = nil
	} else {
		t.vals = reuse(t.vals, src.vals)
	}
	t.live, t.used = src.live, src.used
}

// clone returns an independent deep copy.
func (t *denseTable) clone() *denseTable {
	c := &denseTable{
		meta: append([]uint8(nil), t.meta...),
		keys: append([]uint64(nil), t.keys...),
		live: t.live, used: t.used,
	}
	if t.vals != nil {
		c.vals = append([]uint64(nil), t.vals...)
	}
	return c
}

// appendSnapshot appends the table contents to out in ascending key
// order — the exact wire format the map-backed states produced — and
// returns the extended slice. With values enabled each key is followed
// by its value.
func (t *denseTable) appendSnapshot(out []uint64) []uint64 {
	start := len(out)
	for i, m := range t.meta {
		if m == dtFull {
			out = append(out, t.keys[i])
		}
	}
	ks := out[start:]
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	if t.vals == nil {
		return out
	}
	// Interleave values in place: duplicate the sorted keys, then build
	// pair i at out[start+2i] while reading key i from the second copy at
	// out[start+n+i] — the write frontier (2i+1) never passes the read
	// position (n+i) until the read is done.
	out = append(out, ks...)
	for i, n := 0, len(ks); i < n; i++ {
		k := out[start+n+i]
		v, _ := t.get(k)
		out[start+2*i] = k
		out[start+2*i+1] = v
	}
	return out
}
