package objects

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/spec"
)

func TestOrderedMapBasics(t *testing.T) {
	s := OrderedMapSpec{}.New()
	if got := apply(t, s, OMapPut, 5, 50); got != spec.RetMissing {
		t.Fatalf("first put: %d", got)
	}
	if got := apply(t, s, OMapPut, 5, 55); got != 50 {
		t.Fatalf("overwrite: %d", got)
	}
	apply(t, s, OMapPut, 1, 10)
	apply(t, s, OMapPut, 9, 90)
	if got := read(t, s, OMapGet, 5); got != 55 {
		t.Fatalf("get: %d", got)
	}
	if got := read(t, s, OMapLen); got != 3 {
		t.Fatalf("len: %d", got)
	}
	if got := apply(t, s, OMapDel, 5); got != 55 {
		t.Fatalf("del: %d", got)
	}
	if got := apply(t, s, OMapDel, 5); got != spec.RetMissing {
		t.Fatalf("del absent: %d", got)
	}
}

func TestOrderedMapOrderQueries(t *testing.T) {
	s := OrderedMapSpec{}.New()
	for _, k := range []uint64{10, 20, 30} {
		apply(t, s, OMapPut, k, k*2)
	}
	cases := []struct {
		code uint64
		arg  uint64
		want uint64
	}{
		{OMapFloor, 25, 20},
		{OMapFloor, 20, 20},
		{OMapFloor, 5, spec.RetMissing},
		{OMapCeil, 25, 30},
		{OMapCeil, 30, 30},
		{OMapCeil, 35, spec.RetMissing},
		{OMapRank, 10, 0},
		{OMapRank, 11, 1},
		{OMapRank, 99, 3},
		{OMapSelect, 0, 10},
		{OMapSelect, 2, 30},
		{OMapSelect, 3, spec.RetMissing},
		{OMapMin, 0, 10},
		{OMapMax, 0, 30},
	}
	for _, tc := range cases {
		if got := read(t, s, tc.code, tc.arg); got != tc.want {
			t.Fatalf("code %d arg %d: got %d want %d", tc.code, tc.arg, got, tc.want)
		}
	}
}

func TestOrderedMapEmptyQueries(t *testing.T) {
	s := OrderedMapSpec{}.New()
	for _, code := range []uint64{OMapMin, OMapMax} {
		if got := read(t, s, code); got != spec.RetMissing {
			t.Fatalf("empty query %d: %d", code, got)
		}
	}
	if got := read(t, s, OMapRank, 7); got != 0 {
		t.Fatalf("empty rank: %d", got)
	}
}

func TestOrderedMapAgainstReferenceQuick(t *testing.T) {
	// Differential test against a plain map + sort.
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := OrderedMapSpec{}.New()
		ref := map[uint64]uint64{}
		for i := 0; i < int(n); i++ {
			k := uint64(rng.Intn(32)) + 1
			if rng.Intn(3) == 0 {
				got := s.Apply(spec.Op{Code: OMapDel, Args: [3]uint64{k}})
				want, ok := ref[k]
				if !ok {
					want = spec.RetMissing
				}
				delete(ref, k)
				if got != want {
					return false
				}
			} else {
				v := uint64(rng.Intn(1000))
				got := s.Apply(spec.Op{Code: OMapPut, Args: [3]uint64{k, v}})
				want, ok := ref[k]
				if !ok {
					want = spec.RetMissing
				}
				ref[k] = v
				if got != want {
					return false
				}
			}
		}
		keys := make([]uint64, 0, len(ref))
		for k := range ref {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		if s.Read(spec.Op{Code: OMapLen}) != uint64(len(keys)) {
			return false
		}
		for i, k := range keys {
			if s.Read(spec.Op{Code: OMapSelect, Args: [3]uint64{uint64(i)}}) != k {
				return false
			}
			if s.Read(spec.Op{Code: OMapGet, Args: [3]uint64{k}}) != ref[k] {
				return false
			}
			if s.Read(spec.Op{Code: OMapRank, Args: [3]uint64{k}}) != uint64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestOrderedMapSnapshotRejectsUnsorted(t *testing.T) {
	s := OrderedMapSpec{}.New()
	bad := []uint64{tagOMap, 2, 9, 90, 3, 30} // keys out of order
	if err := s.Restore(bad); err == nil {
		t.Fatal("unsorted snapshot accepted")
	}
}
