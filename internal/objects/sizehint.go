package objects

import "repro/internal/spec"

// spec.Sizer implementations for every shipped state: SizeHint prices
// one spec.Copy of the state in 64-bit words, O(1) and allocation-free,
// so core's cost-aware adoption policy can weigh "copy the published
// view" against "replay the trace suffix" before every lagging read.
// The hints measure what CopyFrom actually moves (backing arrays at
// their live length, table slots at capacity), not the snapshot wire
// format; a fixed +1 keeps even empty states non-zero, since 0 means
// "unknown" to spec.SizeHint.

// sizeWords prices a dense-table copy: meta bytes (packed 8/word) plus
// the key and value arrays copyFrom duplicates in full.
func (t *denseTable) sizeWords() int {
	w := 1 + len(t.meta)/8 + len(t.keys)
	if t.vals != nil {
		w += len(t.vals)
	}
	return w
}

func (s *counterState) SizeHint() int  { return 1 }
func (s *registerState) SizeHint() int { return 1 }
func (s *stackState) SizeHint() int    { return 1 + len(s.xs) }
func (s *queueState) SizeHint() int    { return 2 + len(s.xs) }
func (s *dequeState) SizeHint() int    { return 1 + len(s.xs) }
func (s *setState) SizeHint() int      { return s.t.sizeWords() }
func (s *mapState) SizeHint() int      { return s.t.sizeWords() }
func (s *pqState) SizeHint() int       { return 1 + len(s.h) }
func (s *logState) SizeHint() int      { return 1 + len(s.xs) }

// bankState copies through a Go map (clear + re-insert), which moves
// roughly two words per account and pays hashing on top; 2 words/entry
// is the right magnitude.
func (s *bankState) SizeHint() int { return 1 + 2*len(s.m) }

func (s *omapState) SizeHint() int { return 1 + len(s.keys) + len(s.vals) }

// Compile-time checks: every shipped state prices its copies.
var (
	_ spec.Sizer = (*counterState)(nil)
	_ spec.Sizer = (*registerState)(nil)
	_ spec.Sizer = (*stackState)(nil)
	_ spec.Sizer = (*queueState)(nil)
	_ spec.Sizer = (*dequeState)(nil)
	_ spec.Sizer = (*setState)(nil)
	_ spec.Sizer = (*mapState)(nil)
	_ spec.Sizer = (*pqState)(nil)
	_ spec.Sizer = (*logState)(nil)
	_ spec.Sizer = (*bankState)(nil)
	_ spec.Sizer = (*omapState)(nil)
)
