package objects

import (
	"math/rand"
	"testing"

	"repro/internal/spec"
)

// TestCopyFromMatchesCloneAndIsIndependent: for every shipped object,
// CopyFrom onto a fresh state and onto a previously-used (dirty) state
// must both serialize identically to the source, and mutating the copy
// must not leak into the source — the exact contract view adoption
// depends on (the same scratch state absorbs a different view every
// time).
func TestCopyFromMatchesCloneAndIsIndependent(t *testing.T) {
	for _, sp := range All() {
		sp := sp
		t.Run(sp.Name(), func(t *testing.T) {
			gen := randomOps(sp, 300, 1)
			src := sp.New()
			if _, ok := src.(spec.Copier); !ok {
				t.Fatalf("%s does not implement spec.Copier", sp.Name())
			}
			for _, op := range gen {
				src.Apply(op)
			}
			want := src.Snapshot()

			fresh := sp.New()
			spec.Copy(fresh, src)
			assertSnap(t, "fresh CopyFrom", want, fresh.Snapshot())

			dirty := sp.New()
			for _, op := range randomOps(sp, 120, 2) {
				dirty.Apply(op)
			}
			spec.Copy(dirty, src)
			assertSnap(t, "dirty CopyFrom", want, dirty.Snapshot())

			// Independence: mutating the copy leaves the source alone.
			for _, op := range randomOps(sp, 60, 3) {
				dirty.Apply(op)
			}
			assertSnap(t, "source after copy mutation", want, src.Snapshot())
		})
	}
}

func assertSnap(t *testing.T, what string, want, got []uint64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: snapshot length %d != %d", what, got, want)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: snapshot word %d: %d != %d", what, i, got[i], want[i])
		}
	}
}

// randomOps returns a seeded stream of update ops for sp.
func randomOps(sp spec.Spec, n int, seed int64) []spec.Op {
	d := sp.(Describer)
	var updates []OpInfo
	for _, oi := range d.Ops() {
		if oi.Kind == KindUpdate {
			updates = append(updates, oi)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]spec.Op, 0, n)
	for i := 0; i < n; i++ {
		oi := updates[rng.Intn(len(updates))]
		op := spec.Op{Code: oi.Code, ID: uint64(i + 1)}
		for k := 0; k < oi.Arity; k++ {
			op.Args[k] = uint64(rng.Intn(48)) + 1
		}
		out = append(out, op)
	}
	return out
}
