package objects

import (
	"testing"

	"repro/internal/spec"
)

// TestSizeHint checks every shipped state's copy-cost hint: always
// positive (0 means "unknown" to spec.SizeHint and would silently turn
// core's cost model off for the object), O(1)-cheap by construction,
// and growing with the state so the adoption threshold can track it.
// The hint prices what CopyFrom moves, not the snapshot wire format,
// so the comparison is order-of-magnitude, not equality.
func TestSizeHint(t *testing.T) {
	for _, sp := range All() {
		sp := sp
		t.Run(sp.Name(), func(t *testing.T) {
			st := sp.New()
			empty := spec.SizeHint(st)
			if empty <= 0 {
				t.Fatalf("empty %s hints %d, want > 0", sp.Name(), empty)
			}
			gen := fillState(t, sp, st, 256)
			grown := spec.SizeHint(st)
			if gen > 0 && grown < empty {
				t.Fatalf("%s hint shrank: empty %d, after %d updates %d",
					sp.Name(), empty, gen, grown)
			}
			// Word-sized states (counter, register) legitimately stay
			// flat; anything whose snapshot grew must hint bigger too.
			if snap := len(st.Snapshot()); snap > 64 && grown <= empty {
				t.Fatalf("%s hint did not grow: empty %d, after %d updates %d (snapshot %d words)",
					sp.Name(), empty, gen, grown, snap)
			}
			if snap := len(st.Snapshot()); grown > 0 && snap > 0 {
				if grown > 64*snap+64 || snap > 64*grown+64 {
					t.Fatalf("%s hint %d wildly off snapshot %d words", sp.Name(), grown, snap)
				}
			}
		})
	}
}

// fillState applies n growth-shaped updates, returning how many
// applied (objects without a growing update apply none).
func fillState(t *testing.T, sp spec.Spec, st spec.State, n int) int {
	t.Helper()
	d, ok := sp.(Describer)
	if !ok {
		t.Fatalf("%s does not describe its ops", sp.Name())
	}
	applied := 0
	for _, oi := range d.Ops() {
		if oi.Kind != KindUpdate {
			continue
		}
		for i := 1; i <= n; i++ {
			op := spec.Op{Code: oi.Code}
			for a := 0; a < oi.Arity && a < 3; a++ {
				op.Args[a] = uint64(i*7 + a)
			}
			st.Apply(op)
			applied++
		}
		break // one growing opcode is enough
	}
	return applied
}
