package objects

import "repro/internal/spec"

// spec.Copier implementations for every shipped state: CopyFrom
// replaces the receiver with a deep copy of src while reusing the
// receiver's storage (slices, dense tables) when the shapes match.
// core's read fast path overwrites the same destination state on every
// view adoption and every shared-view publication, so these keep that
// path allocation-free in steady state — Clone (which always allocates)
// stays the right tool for one-shot copies.
//
// Each CopyFrom panics via the type assertion if src is a state of a
// different spec; core only ever pairs states created by the same
// Instance's spec.

// reuse copies src into dst, reusing dst's backing array when it is
// large enough (the adoption steady state, where the same scratch state
// absorbs similarly-sized views over and over).
func reuse(dst, src []uint64) []uint64 {
	if cap(dst) < len(src) {
		return append(dst[:0:0], src...)
	}
	dst = dst[:len(src)]
	copy(dst, src)
	return dst
}

func (s *counterState) CopyFrom(src spec.State) { s.v = src.(*counterState).v }

func (s *registerState) CopyFrom(src spec.State) { s.v = src.(*registerState).v }

func (s *stackState) CopyFrom(src spec.State) { s.xs = reuse(s.xs, src.(*stackState).xs) }

func (s *queueState) CopyFrom(src spec.State) {
	o := src.(*queueState)
	s.xs = reuse(s.xs, o.xs)
	s.head = o.head
}

func (s *dequeState) CopyFrom(src spec.State) { s.xs = reuse(s.xs, src.(*dequeState).xs) }

func (s *setState) CopyFrom(src spec.State) { s.t.copyFrom(src.(*setState).t) }

func (s *mapState) CopyFrom(src spec.State) { s.t.copyFrom(src.(*mapState).t) }

func (s *pqState) CopyFrom(src spec.State) { s.h = reuse(s.h, src.(*pqState).h) }

func (s *logState) CopyFrom(src spec.State) { s.xs = reuse(s.xs, src.(*logState).xs) }

func (s *bankState) CopyFrom(src spec.State) {
	o := src.(*bankState)
	clear(s.m)
	for k, v := range o.m {
		s.m[k] = v
	}
}

func (s *omapState) CopyFrom(src spec.State) {
	o := src.(*omapState)
	s.keys = reuse(s.keys, o.keys)
	s.vals = reuse(s.vals, o.vals)
}
