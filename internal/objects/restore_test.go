package objects

import (
	"testing"

	"repro/internal/spec"
)

// TestRestoreAdversarialHeaders feeds every object deliberately corrupt
// snapshot words — the kind a torn NVM region could present — and
// requires a clean error, never a panic. The overflow case is the
// regression for the pair-count check `uint64(len(w)-2) != 2*w[1]`,
// which accepted w[1] = 2^63+1 when len(w)-2 == 2 (the product wraps to
// 2) and then panicked converting the count to a negative int.
func TestRestoreAdversarialHeaders(t *testing.T) {
	// Per-spec snapshot tags, to build headers with plausible tags but
	// poisoned counts.
	tags := map[string]uint64{
		"counter": tagCounter, "register": tagRegister, "stack": tagStack,
		"queue": tagQueue, "deque": tagDeque, "set": tagSet, "map": tagMap,
		"pqueue": tagPQ, "applog": tagLog, "bank": tagBank, "orderedmap": tagOMap,
	}
	const overflowCount = 1<<63 + 1 // 2*count wraps to 2
	for _, sp := range All() {
		tag, ok := tags[sp.Name()]
		if !ok {
			t.Fatalf("%s: no tag registered in test", sp.Name())
		}
		cases := map[string][]uint64{
			"empty":          {},
			"tag only":       {tag},
			"wrong tag":      {tag + 1, 0},
			"overflow count": {tag, overflowCount, 7, 9},
			"huge count":     {tag, 1 << 62, 7, 9},
			"short payload":  {tag, 1000, 1},
		}
		for name, words := range cases {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Errorf("%s/%s: Restore panicked: %v", sp.Name(), name, r)
					}
				}()
				st := sp.New()
				if err := st.Restore(words); err == nil {
					t.Errorf("%s/%s: corrupt snapshot %v accepted", sp.Name(), name, words)
				}
			}()
		}
	}
}

// TestRestoreRoundTrip pins that the fixed validation still accepts
// every legitimate snapshot: build a state, snapshot, restore into a
// fresh state, compare.
func TestRestoreRoundTrip(t *testing.T) {
	for _, sp := range All() {
		st := sp.New()
		d := sp.(Describer)
		// Drive a few updates with small args to populate the state.
		i := uint64(1)
		for _, oi := range d.Ops() {
			if oi.Kind != KindUpdate {
				continue
			}
			for k := 0; k < 5; k++ {
				st.Apply(spec.Op{Code: oi.Code, Args: [3]uint64{i, i + 1, i + 2}})
				i++
			}
		}
		snap := st.Snapshot()
		fresh := sp.New()
		if err := fresh.Restore(snap); err != nil {
			t.Fatalf("%s: restoring own snapshot: %v", sp.Name(), err)
		}
		if !spec.Equal(st, fresh) {
			t.Fatalf("%s: snapshot round trip diverged", sp.Name())
		}
	}
}

// TestOMapFailedRestoreLeavesStateIntact is the regression for
// omapState.Restore mutating keys/vals before running the strictly-
// sorted validation: a rejected snapshot must leave the previous state
// untouched, not half-overwritten.
func TestOMapFailedRestoreLeavesStateIntact(t *testing.T) {
	st := OrderedMapSpec{}.New()
	st.Apply(spec.Op{Code: OMapPut, Args: [3]uint64{10, 100}})
	st.Apply(spec.Op{Code: OMapPut, Args: [3]uint64{20, 200}})
	before := append([]uint64(nil), st.Snapshot()...)

	// Valid header, keys not strictly sorted: must be rejected.
	bad := []uint64{tagOMap, 2, 5, 50, 5, 51}
	if err := st.Restore(bad); err == nil {
		t.Fatal("unsorted snapshot accepted")
	}
	after := st.Snapshot()
	if len(after) != len(before) {
		t.Fatalf("state changed by failed restore: %v -> %v", before, after)
	}
	for i := range after {
		if after[i] != before[i] {
			t.Fatalf("state changed by failed restore: %v -> %v", before, after)
		}
	}
	// The surviving state must still answer reads correctly.
	if got := st.Read(spec.Op{Code: OMapGet, Args: [3]uint64{20}}); got != 200 {
		t.Fatalf("read after failed restore: got %d want 200", got)
	}
}
