// Package trace implements the transient execution trace of the paper
// (Section 4.1.2, Listing 2): a lock-free, backward-linked list of update
// operations, ordered by a CAS on the tail, where each node carries an
// execution index and an available flag.
//
// The sequence of nodes is partitioned into a non-fuzzy prefix and a
// fuzzy window (Figure 2): the fuzzy window spans from the latest node
// down to (but not including) the latest node whose available flag is
// set. Proposition 5.2 guarantees the fuzzy window never exceeds
// MAX_PROCESSES nodes, which makes GetFuzzyOps and LatestAvailable
// wait-free.
//
// The trace is deliberately volatile: it lives in ordinary Go memory, is
// lost on a crash, and is reconstructed from the persistent logs by
// recovery (Listing 5). Read-only operations never write to it.
//
// Two implementations are provided: LockFree (the paper's Listing 2) and
// WaitFree (the Section 8 extension, using phase-based helping in the
// style of Kogan & Petrank so that a stalled inserter is finished by its
// peers).
package trace

import (
	"fmt"
	"sync/atomic"

	"repro/internal/sched"
	"repro/internal/spec"
)

// NodeKind distinguishes ordinary update nodes from compaction bases.
type NodeKind uint8

const (
	// KindInit is the sentinel INITIALIZE node (paper Listing 2: the
	// initial tail, which "also serves as a sentinel").
	KindInit NodeKind = iota
	// KindUpdate is a node created by an update operation.
	KindUpdate
	// KindBase is a compaction base (Section 8): a node carrying a
	// state snapshot that stands for the entire prefix up to its index.
	// Bases are always available.
	KindBase
)

// Node is one entry of the execution trace (paper Listing 2 queueNode).
// next points toward the HEAD (i.e. to the node inserted just before
// this one); traversals therefore run from the tail backward in time.
// idx and next are atomics because the wait-free inserter's helpers may
// write them concurrently (always with identical values).
type Node struct {
	Op   spec.Op
	Kind NodeKind
	// Snap (KindBase only) is the state snapshot standing for the
	// prefix up to the base's index; Seqs (KindBase only) records, per
	// process id, the highest per-process operation sequence number
	// folded into the snapshot — recovery needs it to keep detectable
	// execution working across compaction.
	Snap      []uint64
	Seqs      []uint64
	idx       atomic.Uint64
	available atomic.Bool
	next      atomic.Pointer[Node]

	// Wait-free insertion protocol fields (see WaitFree).
	pred atomic.Pointer[Node]
	succ atomic.Pointer[Node]

	// claimed supports node pooling (core's per-handle freelists): after
	// compaction cuts the trace, the cutter walks the now-unreachable
	// segment and claims each node with a CAS on this flag, so every dead
	// node is retired by exactly one handle even when two compactions
	// race over an uncut boundary. The flag is cleared only in Reinit,
	// when the claiming handle reuses the node exclusively.
	claimed atomic.Bool
}

// NewNode returns a fresh update node for op, unavailable and unlinked.
func NewNode(op spec.Op) *Node {
	return &Node{Op: op, Kind: KindUpdate}
}

// NewBase returns a compaction base standing for the state snap at
// execution index idx; seqs is the per-process covered-sequence vector
// (may be nil for bases that do not track detectability). Bases are
// available by construction.
func NewBase(idx uint64, snap, seqs []uint64) *Node {
	n := &Node{Kind: KindBase, Snap: snap, Seqs: seqs}
	n.idx.Store(idx)
	n.available.Store(true)
	return n
}

// newSentinel returns the INITIALIZE sentinel (index 0, available).
func newSentinel() *Node {
	n := &Node{Kind: KindInit}
	n.available.Store(true)
	return n
}

// TryClaim marks n as retired for pooling. It succeeds exactly once per
// node lifetime (until Reinit); concurrent claimants race on a CAS, so a
// dead segment reachable from two racing compaction walks is still
// partitioned without double-retiring any node. Claiming a base or the
// sentinel is harmless (callers check Kind after claiming and never pool
// non-update nodes; the flag is not consulted anywhere else).
func (n *Node) TryClaim() bool { return n.claimed.CompareAndSwap(false, true) }

// Reinit re-initializes a claimed, quiesced update node so a pool can
// hand it out in place of NewNode. The caller must own n exclusively:
// n was claimed via TryClaim, is unreachable from the live trace, and no
// in-flight walk can still dereference it (core enforces this with
// published per-handle walk floors; see Handle.reclaim).
func (n *Node) Reinit(op spec.Op) {
	n.Op = op
	n.Kind = KindUpdate
	n.Snap, n.Seqs = nil, nil
	n.idx.Store(0)
	n.available.Store(false)
	n.next.Store(nil)
	n.pred.Store(nil)
	n.succ.Store(nil)
	n.claimed.Store(false)
}

// Idx returns the node's execution index.
func (n *Node) Idx() uint64 { return n.idx.Load() }

// DistanceFrom returns the number of nodes a suffix walk from n down to
// (exclusive) execution index downTo would replay, saturating at 0 when
// n is at or below downTo. Execution indices are dense — every insert
// takes its predecessor's index plus one — so the distance is pure
// arithmetic: no node is dereferenced, which is what lets core's
// cost-aware adoption policy price a replay BEFORE committing to the
// walk. When a compaction base sits between downTo and n the actual
// walk is shorter (it stops at the base); the result is then an upper
// bound on the replay length.
func (n *Node) DistanceFrom(downTo uint64) uint64 {
	if idx := n.idx.Load(); idx > downTo {
		return idx - downTo
	}
	return 0
}

// Available reports whether the node's available flag is set.
func (n *Node) Available() bool { return n.available.Load() }

// Next returns the node inserted immediately before n (toward the head),
// or nil for the sentinel / a base.
func (n *Node) Next() *Node { return n.next.Load() }

// SetNextBase cuts the trace behind n (compaction, Section 8): n's
// predecessor chain is replaced by base, which must carry the state at
// index n.Idx() (or n.Idx()-1 plus n's own op replayed, depending on the
// caller's convention — core uses base.Idx == n.Idx). Walkers already
// past n keep their immutable view; new walkers stop at the base.
func (n *Node) SetNextBase(base *Node) {
	if base.Kind != KindBase {
		panic("trace: SetNextBase requires a KindBase node")
	}
	n.next.Store(base)
}

func (n *Node) String() string {
	return fmt.Sprintf("node{idx=%d kind=%d avail=%v op=%v}", n.Idx(), n.Kind, n.Available(), n.Op)
}

// Interface is the execution-trace contract the universal construction
// depends on; LockFree and WaitFree both implement it.
type Interface interface {
	// Insert links node at the tail, assigning its execution index
	// (paper Listing 2 insert). The node becomes visible to traversals
	// immediately, with its available flag unset.
	Insert(pid int, node *Node)
	// Tail returns the current tail (the latest inserted node, which
	// may be in the fuzzy window).
	Tail(pid int) *Node
	// SetAvailable sets node's available flag (the linearize step;
	// paper Listing 3 line 7) and bumps the trace's publication epoch.
	SetAvailable(pid int, node *Node)
	// Epoch returns the publication epoch: a monotonic counter bumped
	// after every SetAvailable. A reader that cached a view after
	// loading epoch E is guaranteed, on observing Epoch() == E again,
	// that no operation has been published in between — its cached view
	// is still the latest available prefix, and it can skip the trace
	// walk entirely (core's read fast path). The bump is ordered after
	// the available store and Epoch is loaded before the tail read, so
	// with sequentially consistent atomics an operation whose bump is
	// covered by E is always found by a walk that follows the load.
	Epoch(pid int) uint64
	// Sentinel returns the INITIALIZE node the trace was created with.
	Sentinel() *Node
}

// GetFuzzyOps collects the operations of the fuzzy nodes from n backward:
// n itself and every predecessor with an unset available flag, stopping
// at the first available node (paper Listing 2 getFuzzyOps). ops[0] is
// n's own operation; ops[k] has execution index n.Idx()-k. By
// Proposition 5.2 the result has at most MAX_PROCESSES entries.
func GetFuzzyOps(gate sched.Gate, pid int, n *Node) []spec.Op {
	return GetFuzzyOpsInto(nil, gate, pid, n)
}

// GetFuzzyOpsInto is GetFuzzyOps appending into buf[:0], so a caller
// replaying in a loop can reuse one scratch buffer and stay
// allocation-free once the buffer has grown to the fuzzy-window bound.
//onll:hotpath
func GetFuzzyOpsInto(buf []spec.Op, gate sched.Gate, pid int, n *Node) []spec.Op {
	ops := buf[:0]
	for cur := n; ; {
		gate.Step(pid, "trace.scan")
		if cur.available.Load() {
			break
		}
		ops = append(ops, cur.Op)
		cur = cur.next.Load()
	}
	return ops
}

// LatestAvailableFrom walks from n toward the head and returns the first
// node with a set available flag (paper Listing 2 latestAvailable). As
// the paper notes, the result is the latest OBSERVED available node,
// which may momentarily not be the true latest; ONLL is correct despite
// this (Proposition 5.9).
//onll:hotpath
func LatestAvailableFrom(gate sched.Gate, pid int, n *Node) *Node {
	cur := n
	for {
		gate.Step(pid, "trace.scan")
		if cur.available.Load() {
			return cur
		}
		cur = cur.next.Load()
	}
}

// ---------------------------------------------------------------------
// LockFree — paper Listing 2.
// ---------------------------------------------------------------------

// LockFree is the paper's lock-free execution trace.
type LockFree struct {
	gate     sched.Gate
	sentinel *Node
	tail     atomic.Pointer[Node]
	epoch    atomic.Uint64
}

// NewLockFree returns an empty lock-free trace whose sentinel is the
// INITIALIZE operation at index 0.
func NewLockFree(gate sched.Gate) *LockFree {
	if gate == nil {
		gate = sched.NopGate{}
	}
	t := &LockFree{gate: gate, sentinel: newSentinel()}
	t.tail.Store(t.sentinel)
	return t
}

// NewLockFreeAt returns a trace whose sentinel is the given base node
// (used by recovery, where the trace restarts from a recovered snapshot).
func NewLockFreeAt(gate sched.Gate, base *Node) *LockFree {
	if gate == nil {
		gate = sched.NopGate{}
	}
	t := &LockFree{gate: gate, sentinel: base}
	t.tail.Store(base)
	return t
}

// Insert implements Interface (Listing 2 insert). The CAS on the tail is
// a concurrency fence but involves no NVM write-back, so it does not
// count as a persistent fence (paper footnote 2).
//onll:hotpath
func (t *LockFree) Insert(pid int, node *Node) {
	node.available.Store(false)
	for {
		t.gate.Step(pid, "trace.read-tail")
		lt := t.tail.Load()
		node.idx.Store(lt.Idx() + 1)
		node.next.Store(lt)
		t.gate.Step(pid, "trace.cas-tail")
		if t.tail.CompareAndSwap(lt, node) {
			return
		}
	}
}

// Tail implements Interface.
//onll:hotpath
func (t *LockFree) Tail(pid int) *Node {
	t.gate.Step(pid, "trace.read-tail")
	return t.tail.Load()
}

// SetAvailable implements Interface. The epoch bump is ordered after the
// available store: a reader whose Epoch load covers the bump is
// guaranteed to find node available on a subsequent walk.
//onll:hotpath
func (t *LockFree) SetAvailable(pid int, node *Node) {
	t.gate.Step(pid, "trace.set-available")
	node.available.Store(true)
	t.epoch.Add(1)
}

// Epoch implements Interface.
//onll:hotpath
func (t *LockFree) Epoch(pid int) uint64 {
	t.gate.Step(pid, "trace.epoch")
	return t.epoch.Load()
}

// Sentinel implements Interface.
func (t *LockFree) Sentinel() *Node { return t.sentinel }

// LatestAvailable returns the latest observed available node starting
// from the current tail (Listing 2 latestAvailable).
func (t *LockFree) LatestAvailable(pid int) *Node {
	return LatestAvailableFrom(t.gate, pid, t.Tail(pid))
}

// ---------------------------------------------------------------------
// WaitFree — Section 8 extension.
// ---------------------------------------------------------------------

// wfDesc describes one pending wait-free insert.
type wfDesc struct {
	phase   uint64
	node    *Node
	pending atomic.Bool
}

// WaitFree is a wait-free execution trace using phase-based helping: an
// inserter announces its node with a phase number and then helps every
// announced insert with a phase at most its own; a stalled process's
// insert is therefore completed by its peers in a bounded number of
// steps (Kogan–Petrank-style argument).
//
// The linking protocol makes helping safe on a tail-CAS list:
//
//  1. claim: node.pred CAS nil->lt, then lt.succ CAS nil->node.
//     lt.succ is claimed at most once, ever, so each node acquires at
//     most one successor and no node is inserted twice.
//  2. If the lt.succ claim fails (another node won lt), the pred claim
//     is rolled back and retried against the new tail. A rollback is
//     safe because a node is only IN the list once its predecessor's
//     succ points to it.
//  3. finish: set node.next/idx from the claimed predecessor and swing
//     the tail. Any helper can finish any claimed node (idempotent).
type WaitFree struct {
	gate     sched.Gate
	sentinel *Node
	tail     atomic.Pointer[Node]
	maxPhase atomic.Uint64
	epoch    atomic.Uint64
	nprocs   int
	state    []atomic.Pointer[wfDesc]
}

// NewWaitFree returns an empty wait-free trace for nprocs processes.
func NewWaitFree(gate sched.Gate, nprocs int) *WaitFree {
	return NewWaitFreeAt(gate, nprocs, newSentinel())
}

// NewWaitFreeAt returns a wait-free trace rooted at the given base node.
func NewWaitFreeAt(gate sched.Gate, nprocs int, base *Node) *WaitFree {
	if gate == nil {
		gate = sched.NopGate{}
	}
	if nprocs < 1 || nprocs > sched.MaxPids {
		panic(fmt.Sprintf("trace: bad nprocs %d", nprocs))
	}
	t := &WaitFree{
		gate: gate, sentinel: base, nprocs: nprocs,
		state: make([]atomic.Pointer[wfDesc], nprocs),
	}
	t.tail.Store(base)
	return t
}

// Insert implements Interface, wait-free.
func (t *WaitFree) Insert(pid int, node *Node) {
	if pid < 0 || pid >= t.nprocs {
		panic(fmt.Sprintf("trace: pid %d out of range for %d-process wait-free trace", pid, t.nprocs))
	}
	node.available.Store(false)
	d := &wfDesc{phase: t.maxPhase.Add(1), node: node}
	d.pending.Store(true)
	t.state[pid].Store(d)
	t.helpAll(pid, d.phase)
	if d.pending.Load() {
		// helpAll guarantees our own descriptor is completed.
		panic("trace: wait-free insert did not complete")
	}
}

// helpAll helps every announced insert with phase <= ph, own included.
func (t *WaitFree) helpAll(pid int, ph uint64) {
	for i := 0; i < t.nprocs; i++ {
		d := t.state[i].Load()
		if d != nil && d.pending.Load() && d.phase <= ph {
			t.helpInsert(pid, d)
		}
	}
}

func (t *WaitFree) helpInsert(pid int, d *wfDesc) {
	n := d.node
	for d.pending.Load() {
		t.gate.Step(pid, "trace.wf.help")
		// Already claimed by a predecessor? Then finish it.
		if p := n.pred.Load(); p != nil && p.succ.Load() == n {
			t.finish(p, n, d)
			continue
		}
		lt := t.tail.Load()
		if s := lt.succ.Load(); s != nil {
			// The tail has a claimed successor (ours or another's):
			// complete that insert first, advancing the tail.
			s.next.Store(lt)
			s.idx.Store(lt.Idx() + 1)
			t.tail.CompareAndSwap(lt, s)
			continue
		}
		if n.pred.CompareAndSwap(nil, lt) {
			if lt.succ.CompareAndSwap(nil, n) {
				t.finish(lt, n, d)
			} else {
				// Lost lt to another node; un-claim and retry. Safe:
				// n cannot be in the list, since only lt.succ==n
				// would have put it there.
				n.pred.CompareAndSwap(lt, nil)
			}
		}
	}
}

// finish completes the insert of n after p (idempotent; may be executed
// by any number of helpers).
func (t *WaitFree) finish(p, n *Node, d *wfDesc) {
	n.next.Store(p)
	n.idx.Store(p.Idx() + 1)
	t.tail.CompareAndSwap(p, n)
	d.pending.Store(false)
}

// Tail implements Interface. The tail reference may lag behind a claimed
// successor momentarily; that is indistinguishable from reading the tail
// an instant earlier.
func (t *WaitFree) Tail(pid int) *Node {
	t.gate.Step(pid, "trace.read-tail")
	return t.tail.Load()
}

// SetAvailable implements Interface (epoch bump ordered after the
// available store, as in LockFree).
func (t *WaitFree) SetAvailable(pid int, node *Node) {
	t.gate.Step(pid, "trace.set-available")
	node.available.Store(true)
	t.epoch.Add(1)
}

// Epoch implements Interface.
func (t *WaitFree) Epoch(pid int) uint64 {
	t.gate.Step(pid, "trace.epoch")
	return t.epoch.Load()
}

// Sentinel implements Interface.
func (t *WaitFree) Sentinel() *Node { return t.sentinel }

// LatestAvailable returns the latest observed available node.
func (t *WaitFree) LatestAvailable(pid int) *Node {
	return LatestAvailableFrom(t.gate, pid, t.Tail(pid))
}

// ---------------------------------------------------------------------
// Shared traversal helpers.
// ---------------------------------------------------------------------

// CollectBack walks from n toward the head, collecting nodes with index
// strictly greater than downTo, in trace order (oldest first). It stops
// early at a KindBase node (whose snapshot stands for the whole prefix
// up to and including the base's index); the base, if hit, is returned
// separately, and any collected node already covered by the base's
// snapshot (index <= base.Idx(), possible because a compaction cut links
// a node of index s to a base of the same index s) is dropped.
func CollectBack(n *Node, downTo uint64) (nodes []*Node, base *Node) {
	return CollectBackInto(nil, n, downTo)
}

// CollectBackInto is CollectBack appending into buf[:0]. The walk fills
// the buffer newest-first, trims the tail entries already covered by a
// base's snapshot (they have the smallest indices, so they sit at the
// end), and reverses in place — one buffer, no second slice, and zero
// allocations once the caller's scratch buffer has grown to the lag.
//onll:hotpath
func CollectBackInto(buf []*Node, n *Node, downTo uint64) (nodes []*Node, base *Node) {
	out := buf[:0]
	for cur := n; cur != nil && cur.Idx() > downTo; {
		if cur.Kind == KindBase {
			base = cur
			break
		}
		out = append(out, cur)
		cur = cur.next.Load()
	}
	if base != nil && base.Idx() > downTo {
		// Indices decrease along the walk: covered nodes (index <=
		// base.Idx()) form a suffix of out.
		floor := base.Idx()
		for len(out) > 0 && out[len(out)-1].Idx() <= floor {
			out = out[:len(out)-1]
		}
	}
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	// Clear the buffer's stale tail: node pointers left by an earlier,
	// longer collection would pin compacted trace prefixes (and their
	// base snapshots) against GC for as long as the caller keeps the
	// scratch buffer. Stale entries are contiguous from len(out) (append
	// growth zeroes fresh capacity and this loop keeps everything past
	// the first nil clear), so stopping there makes the cost O(previous
	// window) instead of O(capacity) — a full-capacity clear costs every
	// steady-state one-node call the largest window ever collected.
	tail := out[len(out):cap(out)]
	for i := range tail {
		if tail[i] == nil {
			break
		}
		tail[i] = nil
	}
	return out, base
}

// Snapshot returns the indices and availability of every node reachable
// from n back to the sentinel/base, newest first (a diagnostic used by
// invariant checks and the Figure 1 walkthrough).
func Snapshot(n *Node) []struct {
	Idx       uint64
	Available bool
	Op        spec.Op
} {
	var out []struct {
		Idx       uint64
		Available bool
		Op        spec.Op
	}
	for cur := n; cur != nil; cur = cur.next.Load() {
		out = append(out, struct {
			Idx       uint64
			Available bool
			Op        spec.Op
		}{cur.Idx(), cur.Available(), cur.Op})
		if cur.Kind != KindUpdate {
			break
		}
	}
	return out
}
