package trace

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/sched"
	"repro/internal/spec"
)

func op(code uint64) spec.Op { return spec.Op{Code: code, ID: code} }

// implementations under test.
func traces(nprocs int) map[string]Interface {
	return map[string]Interface{
		"lockfree": NewLockFree(nil),
		"waitfree": NewWaitFree(nil, nprocs),
	}
}

func TestSequentialInsertAssignsContiguousIndices(t *testing.T) {
	for name, tr := range traces(1) {
		t.Run(name, func(t *testing.T) {
			for i := 1; i <= 100; i++ {
				n := NewNode(op(uint64(i)))
				tr.Insert(0, n)
				if n.Idx() != uint64(i) {
					t.Fatalf("insert %d got idx %d", i, n.Idx())
				}
				tr.SetAvailable(0, n)
			}
			if tr.Tail(0).Idx() != 100 {
				t.Fatalf("tail idx %d", tr.Tail(0).Idx())
			}
		})
	}
}

func TestSentinelProperties(t *testing.T) {
	for name, tr := range traces(2) {
		t.Run(name, func(t *testing.T) {
			s := tr.Sentinel()
			if s.Idx() != 0 || !s.Available() || s.Kind != KindInit {
				t.Fatalf("sentinel: %v", s)
			}
			if tr.Tail(0) != s {
				t.Fatal("empty trace tail is not the sentinel")
			}
		})
	}
}

func TestFuzzyOpsCollectsUnavailableSuffix(t *testing.T) {
	for name, tr := range traces(1) {
		t.Run(name, func(t *testing.T) {
			// n1 available, n2..n4 not: fuzzy window of n4 = {4,3,2}.
			var nodes []*Node
			for i := 1; i <= 4; i++ {
				n := NewNode(op(uint64(i)))
				tr.Insert(0, n)
				nodes = append(nodes, n)
			}
			tr.SetAvailable(0, nodes[0])
			fuzzy := GetFuzzyOps(sched.NopGate{}, 0, nodes[3])
			if len(fuzzy) != 3 {
				t.Fatalf("fuzzy window size %d, want 3", len(fuzzy))
			}
			// ops[k] must have execution index idx-k (Listing 1 contract).
			for k, o := range fuzzy {
				if o.Code != uint64(4-k) {
					t.Fatalf("fuzzy[%d] = op %d, want %d", k, o.Code, 4-k)
				}
			}
		})
	}
}

func TestLatestAvailableStopsAtFirstSetFlag(t *testing.T) {
	for name, tr := range traces(1) {
		t.Run(name, func(t *testing.T) {
			var nodes []*Node
			for i := 1; i <= 5; i++ {
				n := NewNode(op(uint64(i)))
				tr.Insert(0, n)
				nodes = append(nodes, n)
			}
			// Set flags out of order: 2 then 4 (Figure 2 situation).
			tr.SetAvailable(0, nodes[1])
			got := LatestAvailableFrom(sched.NopGate{}, 0, tr.Tail(0))
			if got.Idx() != 2 {
				t.Fatalf("latest available %d, want 2", got.Idx())
			}
			tr.SetAvailable(0, nodes[3])
			got = LatestAvailableFrom(sched.NopGate{}, 0, tr.Tail(0))
			if got.Idx() != 4 {
				t.Fatalf("latest available %d, want 4 (op3 is inside the non-fuzzy prefix now)", got.Idx())
			}
		})
	}
}

func TestConcurrentInsertsUniqueContiguousIndices(t *testing.T) {
	for _, kind := range []string{"lockfree", "waitfree"} {
		for _, nprocs := range []int{2, 4, 8} {
			t.Run(fmt.Sprintf("%s/n=%d", kind, nprocs), func(t *testing.T) {
				var tr Interface
				if kind == "lockfree" {
					tr = NewLockFree(nil)
				} else {
					tr = NewWaitFree(nil, nprocs)
				}
				const perProc = 2000
				var wg sync.WaitGroup
				for pid := 0; pid < nprocs; pid++ {
					wg.Add(1)
					go func(pid int) {
						defer wg.Done()
						for i := 0; i < perProc; i++ {
							n := NewNode(op(uint64(pid*perProc + i)))
							tr.Insert(pid, n)
							tr.SetAvailable(pid, n)
						}
					}(pid)
				}
				wg.Wait()
				total := nprocs * perProc
				tail := tr.Tail(0)
				if tail.Idx() != uint64(total) {
					t.Fatalf("tail idx %d, want %d", tail.Idx(), total)
				}
				// Walk back: indices must be exactly total..1, each op
				// exactly once (no duplicates, no cycles).
				seen := make(map[uint64]bool, total)
				idx := uint64(total)
				for cur := tail; cur.Kind == KindUpdate; cur = cur.Next() {
					if cur.Idx() != idx {
						t.Fatalf("walk: idx %d, want %d", cur.Idx(), idx)
					}
					if seen[cur.Op.ID] {
						t.Fatalf("op %d appears twice", cur.Op.ID)
					}
					seen[cur.Op.ID] = true
					idx--
				}
				if idx != 0 {
					t.Fatalf("walk ended at %d, want 0", idx)
				}
			})
		}
	}
}

func TestProposition52FuzzyWindowBounded(t *testing.T) {
	// E4: at any instant, among any nprocs+1 consecutive nodes at
	// least one is available — verified by concurrent sampling while
	// insertions are running (each process sets its previous node
	// available before inserting the next, as ONLL does).
	const nprocs = 6
	for _, kind := range []string{"lockfree", "waitfree"} {
		t.Run(kind, func(t *testing.T) {
			var tr Interface
			if kind == "lockfree" {
				tr = NewLockFree(nil)
			} else {
				tr = NewWaitFree(nil, nprocs)
			}
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for pid := 0; pid < nprocs; pid++ {
				wg.Add(1)
				go func(pid int) {
					defer wg.Done()
					for i := 0; i < 3000; i++ {
						n := NewNode(op(uint64(pid*3000 + i)))
						tr.Insert(pid, n)
						tr.SetAvailable(pid, n)
					}
				}(pid)
			}
			violations := 0
			var sampler sync.WaitGroup
			sampler.Add(1)
			go func() {
				defer sampler.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					// Sample a window of nprocs+1 consecutive nodes
					// from the tail; count availability.
					run := 0
					for cur := tr.Tail(nprocs - 1); cur != nil; cur = cur.Next() {
						if cur.Available() {
							run = 0
							break
						}
						run++
						if run > nprocs {
							violations++
							return
						}
					}
				}
			}()
			wg.Wait()
			close(stop)
			sampler.Wait()
			if violations > 0 {
				t.Fatalf("fuzzy window exceeded %d nodes", nprocs)
			}
			// Also verify the final trace directly.
			run := 0
			for cur := tr.Tail(0); cur != nil && cur.Kind == KindUpdate; cur = cur.Next() {
				if cur.Available() {
					run = 0
				} else if run++; run > nprocs {
					t.Fatal("final trace violates Proposition 5.2")
				}
			}
		})
	}
}

func TestWaitFreeStalledInserterIsHelped(t *testing.T) {
	// A process that announced its insert and stalls: another process
	// inserting afterwards completes the stalled insert.
	ctl := sched.NewController()
	tr := NewWaitFree(ctl, 2)
	n0 := NewNode(op(100))
	ctl.Spawn(0, func() { tr.Insert(0, n0) })
	// Advance p0 until it is about to do its first help-loop step; it
	// has announced (the announce itself is un-gated: the first gate
	// point is inside helpInsert).
	if _, ok := ctl.RunUntil(0, sched.AtPoint("trace.wf.help")); !ok {
		t.Fatal("p0 finished unexpectedly")
	}
	// p1 inserts; its helpAll must complete p0's insert too.
	n1 := NewNode(op(200))
	done1 := ctl.Spawn(1, func() { tr.Insert(1, n1) })
	ctl.RunToCompletion(1)
	if r := <-done1; r != nil {
		t.Fatalf("p1 insert failed: %v", r)
	}
	if n0.Idx() == 0 {
		t.Fatal("stalled insert was not helped")
	}
	if n0.Idx() == n1.Idx() {
		t.Fatal("duplicate index")
	}
	// Both nodes reachable from the tail exactly once.
	found := map[uint64]int{}
	for cur := tr.Tail(1); cur.Kind == KindUpdate; cur = cur.Next() {
		found[cur.Op.ID]++
	}
	if found[100] != 1 || found[200] != 1 {
		t.Fatalf("trace contents wrong: %v", found)
	}
	ctl.KillAll()
}

func TestCollectBack(t *testing.T) {
	tr := NewLockFree(nil)
	var nodes []*Node
	for i := 1; i <= 10; i++ {
		n := NewNode(op(uint64(i)))
		tr.Insert(0, n)
		tr.SetAvailable(0, n)
		nodes = append(nodes, n)
	}
	got, base := CollectBack(nodes[9], 4)
	if base != nil {
		t.Fatal("unexpected base")
	}
	if len(got) != 6 {
		t.Fatalf("collected %d nodes, want 6", len(got))
	}
	for i, n := range got {
		if n.Idx() != uint64(5+i) {
			t.Fatalf("collected[%d] idx %d, want %d (oldest first)", i, n.Idx(), 5+i)
		}
	}
	// Whole history.
	got, _ = CollectBack(nodes[9], 0)
	if len(got) != 10 || got[0].Idx() != 1 {
		t.Fatalf("full collect wrong: %d nodes", len(got))
	}
}

func TestCollectBackStopsAtBaseAndFilters(t *testing.T) {
	tr := NewLockFree(nil)
	var nodes []*Node
	for i := 1; i <= 6; i++ {
		n := NewNode(op(uint64(i)))
		tr.Insert(0, n)
		tr.SetAvailable(0, n)
		nodes = append(nodes, n)
	}
	// Compaction cut at node 4: node4.next = base(idx 4).
	base := NewBase(4, []uint64{0xB}, nil)
	nodes[3].SetNextBase(base)
	got, b := CollectBack(nodes[5], 0)
	if b != base {
		t.Fatal("base not found")
	}
	// Nodes with idx <= base.Idx (including node 4 itself) are covered
	// by the snapshot and must be filtered out.
	if len(got) != 2 || got[0].Idx() != 5 || got[1].Idx() != 6 {
		idxs := []uint64{}
		for _, n := range got {
			idxs = append(idxs, n.Idx())
		}
		t.Fatalf("collected idxs %v, want [5 6]", idxs)
	}
	// downTo beyond the base: base reported, nothing below downTo.
	got, b = CollectBack(nodes[5], 5)
	if b != nil && b.Idx() > 5 {
		t.Fatalf("unexpected base %v", b)
	}
	if len(got) != 1 || got[0].Idx() != 6 {
		t.Fatalf("collect downTo=5: %d nodes", len(got))
	}
}

func TestSetNextBaseValidation(t *testing.T) {
	n := NewNode(op(1))
	defer func() {
		if recover() == nil {
			t.Fatal("SetNextBase accepted a non-base node")
		}
	}()
	n.SetNextBase(NewNode(op(2)))
}

func TestBaseNode(t *testing.T) {
	b := NewBase(17, []uint64{1, 2, 3}, []uint64{5, 6})
	if b.Idx() != 17 || !b.Available() || b.Kind != KindBase {
		t.Fatalf("base: %v", b)
	}
}

func TestSnapshotDiagnostic(t *testing.T) {
	tr := NewLockFree(nil)
	for i := 1; i <= 3; i++ {
		n := NewNode(op(uint64(i)))
		tr.Insert(0, n)
		if i != 2 {
			tr.SetAvailable(0, n)
		}
	}
	snap := Snapshot(tr.Tail(0))
	if len(snap) != 4 { // 3 updates + sentinel
		t.Fatalf("snapshot has %d entries", len(snap))
	}
	if snap[0].Idx != 3 || snap[1].Available || !snap[2].Available {
		t.Fatalf("snapshot wrong: %+v", snap)
	}
}

func TestQuickInterleavedAvailability(t *testing.T) {
	// Property: for any pattern of availability flags set on a
	// sequential history, LatestAvailableFrom returns the highest
	// index whose flag is set (0 if none beyond the sentinel).
	f := func(flags []bool) bool {
		if len(flags) > 64 {
			flags = flags[:64]
		}
		tr := NewLockFree(nil)
		var nodes []*Node
		for i := range flags {
			n := NewNode(op(uint64(i + 1)))
			tr.Insert(0, n)
			nodes = append(nodes, n)
		}
		want := uint64(0)
		for i, f := range flags {
			if f {
				tr.SetAvailable(0, nodes[i])
				if uint64(i+1) > want {
					want = uint64(i + 1)
				}
			}
		}
		got := LatestAvailableFrom(sched.NopGate{}, 0, tr.Tail(0))
		return got.Idx() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWaitFreeStress(t *testing.T) {
	// Heavier adversarial stress for the helping protocol: many
	// processes, many rounds, full-structure verification each round.
	const nprocs = 8
	for round := 0; round < 20; round++ {
		tr := NewWaitFree(nil, nprocs)
		var wg sync.WaitGroup
		for pid := 0; pid < nprocs; pid++ {
			wg.Add(1)
			go func(pid int) {
				defer wg.Done()
				for i := 0; i < 200; i++ {
					n := NewNode(op(uint64(pid*1000 + i)))
					tr.Insert(pid, n)
					tr.SetAvailable(pid, n)
				}
			}(pid)
		}
		wg.Wait()
		count := 0
		prev := uint64(1 << 62)
		for cur := tr.Tail(0); cur.Kind == KindUpdate; cur = cur.Next() {
			if cur.Idx() >= prev {
				t.Fatalf("round %d: indices not strictly decreasing (%d then %d)", round, prev, cur.Idx())
			}
			prev = cur.Idx()
			count++
		}
		if count != nprocs*200 {
			t.Fatalf("round %d: %d nodes in trace, want %d", round, count, nprocs*200)
		}
	}
}

func TestEpochBumpsOnPublicationOnly(t *testing.T) {
	for name, tr := range traces(2) {
		t.Run(name, func(t *testing.T) {
			if e := tr.Epoch(0); e != 0 {
				t.Fatalf("fresh trace epoch %d, want 0", e)
			}
			n1, n2 := NewNode(op(1)), NewNode(op(2))
			tr.Insert(0, n1)
			tr.Insert(1, n2)
			if e := tr.Epoch(0); e != 0 {
				t.Fatalf("epoch %d after inserts only (publication has not happened)", e)
			}
			tr.SetAvailable(0, n1)
			if e := tr.Epoch(1); e != 1 {
				t.Fatalf("epoch %d after first publication, want 1", e)
			}
			tr.SetAvailable(1, n2)
			if e := tr.Epoch(0); e != 2 {
				t.Fatalf("epoch %d after second publication, want 2", e)
			}
			// A compaction cut publishes nothing: the visible prefix is
			// unchanged, so the epoch must not move (a moved epoch would
			// needlessly invalidate every cached view).
			n2.SetNextBase(NewBase(n2.Idx(), []uint64{42}, nil))
			if e := tr.Epoch(0); e != 2 {
				t.Fatalf("epoch %d after compaction cut, want 2", e)
			}
		})
	}
}

// TestEpochCoversAvailability is the ordering contract the read fast
// path leans on: any node whose publication an Epoch() load covers is
// found available by a walk that starts after the load.
func TestEpochCoversAvailability(t *testing.T) {
	for name, tr := range traces(2) {
		t.Run(name, func(t *testing.T) {
			var published uint64
			for i := 0; i < 200; i++ {
				n := NewNode(op(uint64(i + 1)))
				tr.Insert(0, n)
				tr.SetAvailable(0, n)
				published++
				if e := tr.Epoch(1); e != published {
					t.Fatalf("epoch %d after %d publications", e, published)
				}
				la := LatestAvailableFrom(sched.NopGate{}, 1, tr.Tail(1))
				if la.Idx() < published {
					t.Fatalf("walk after epoch load found idx %d < %d published", la.Idx(), published)
				}
			}
		})
	}
}

// TestDistanceFrom pins the arithmetic node-distance helper: the
// replay length core's adoption policy prices before any walk.
func TestDistanceFrom(t *testing.T) {
	tr := NewLockFree(nil)
	var last *Node
	for i := 0; i < 5; i++ {
		n := NewNode(spec.Op{Code: 1})
		tr.Insert(0, n)
		tr.SetAvailable(0, n)
		last = n
	}
	if got := last.DistanceFrom(0); got != 5 {
		t.Fatalf("DistanceFrom(0) = %d, want 5", got)
	}
	if got := last.DistanceFrom(3); got != 2 {
		t.Fatalf("DistanceFrom(3) = %d, want 2", got)
	}
	if got := last.DistanceFrom(5); got != 0 {
		t.Fatalf("DistanceFrom(5) = %d, want 0 (at the node)", got)
	}
	if got := last.DistanceFrom(9); got != 0 {
		t.Fatalf("DistanceFrom(9) = %d, want saturation at 0", got)
	}
	if got := tr.Sentinel().DistanceFrom(0); got != 0 {
		t.Fatalf("sentinel DistanceFrom(0) = %d, want 0", got)
	}
}
