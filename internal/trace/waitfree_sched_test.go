package trace

import (
	"fmt"
	"testing"

	"repro/internal/sched"
	"repro/internal/spec"
)

// TestWaitFreeManyStalledInsertersHelped: several processes announce
// inserts and stall at their first help step; one live process's insert
// must complete ALL of them (phase-ordered helping).
func TestWaitFreeManyStalledInsertersHelped(t *testing.T) {
	const stalled = 4
	ctl := sched.NewController()
	tr := NewWaitFree(ctl, stalled+1)
	nodes := make([]*Node, stalled)
	for i := 0; i < stalled; i++ {
		i := i
		nodes[i] = NewNode(spec.Op{Code: uint64(i + 1), ID: uint64(i + 1)})
		ctl.Spawn(i, func() { tr.Insert(i, nodes[i]) })
		if _, ok := ctl.RunUntil(i, sched.AtPoint("trace.wf.help")); !ok {
			t.Fatalf("p%d finished before helping", i)
		}
	}
	// The live process inserts; helpAll must complete every announced
	// insert with a phase at most its own (all of the stalled ones).
	live := NewNode(spec.Op{Code: 100, ID: 100})
	done := ctl.Spawn(stalled, func() { tr.Insert(stalled, live) })
	ctl.RunToCompletion(stalled)
	if r := <-done; r != nil {
		t.Fatalf("live insert failed: %v", r)
	}
	// All five nodes are in the trace exactly once, indices 1..5.
	seen := map[uint64]uint64{}
	for cur := tr.Tail(stalled); cur.Kind == KindUpdate; cur = cur.Next() {
		if _, dup := seen[cur.Op.ID]; dup {
			t.Fatalf("node %d appears twice", cur.Op.ID)
		}
		seen[cur.Op.ID] = cur.Idx()
	}
	if len(seen) != stalled+1 {
		t.Fatalf("%d nodes in trace, want %d (stalled inserts not all helped)", len(seen), stalled+1)
	}
	idxSeen := map[uint64]bool{}
	for id, idx := range seen {
		if idx < 1 || idx > stalled+1 || idxSeen[idx] {
			t.Fatalf("node %d has bad/duplicate idx %d", id, idx)
		}
		idxSeen[idx] = true
	}
	ctl.KillAll()
}

// TestWaitFreeStalledAtEveryHelpStep: stall the first inserter at each
// successive help-loop step; a second inserter must always complete
// both inserts, whatever the preemption point.
func TestWaitFreeStalledAtEveryHelpStep(t *testing.T) {
	for stallAfter := 0; stallAfter < 8; stallAfter++ {
		stallAfter := stallAfter
		t.Run(fmt.Sprintf("step=%d", stallAfter), func(t *testing.T) {
			ctl := sched.NewController()
			tr := NewWaitFree(ctl, 2)
			n0 := NewNode(spec.Op{Code: 1, ID: 1})
			d0 := ctl.Spawn(0, func() { tr.Insert(0, n0) })
			if _, ok := ctl.RunUntil(0, sched.AtPoint("trace.wf.help")); !ok {
				t.Skip("insert finished before first help step")
			}
			if n := ctl.StepN(0, stallAfter); n < stallAfter {
				// p0 finished by itself (short schedules): that's fine,
				// just verify and stop.
				<-d0
				if n0.Idx() != 1 {
					t.Fatalf("idx %d", n0.Idx())
				}
				return
			}
			if ctl.Done(0) {
				<-d0
				if n0.Idx() != 1 {
					t.Fatalf("idx %d", n0.Idx())
				}
				return
			}
			n1 := NewNode(spec.Op{Code: 2, ID: 2})
			d1 := ctl.Spawn(1, func() { tr.Insert(1, n1) })
			ctl.RunToCompletion(1)
			if r := <-d1; r != nil {
				t.Fatalf("p1 failed: %v", r)
			}
			// Both nodes linked, unique indices.
			count := 0
			prev := uint64(1 << 62)
			for cur := tr.Tail(1); cur.Kind == KindUpdate; cur = cur.Next() {
				if cur.Idx() >= prev {
					t.Fatalf("indices not decreasing")
				}
				prev = cur.Idx()
				count++
			}
			if count != 2 {
				t.Fatalf("%d nodes in trace, want 2", count)
			}
			// Resume p0: it must finish promptly (wait-freedom) and
			// agree about its node's position.
			ctl.RunToCompletion(0)
			if r := <-d0; r != nil {
				t.Fatalf("p0 failed after resume: %v", r)
			}
			if n0.Idx() == 0 || n0.Idx() == n1.Idx() {
				t.Fatalf("bad indices: n0=%d n1=%d", n0.Idx(), n1.Idx())
			}
			ctl.KillAll()
		})
	}
}

// TestWaitFreePredClaimRollback drives the specific race the rollback
// path exists for: a claim on a stale tail must be rolled back and the
// insert retried, never lost and never duplicated.
func TestWaitFreePredClaimRollback(t *testing.T) {
	// Two inserters interleaved step by step, many different phase
	// offsets; the structural invariants after each round prove that
	// no interleaving loses or duplicates a claim.
	for offset := 0; offset < 12; offset++ {
		ctl := sched.NewController()
		tr := NewWaitFree(ctl, 2)
		a := NewNode(spec.Op{Code: 1, ID: 1})
		b := NewNode(spec.Op{Code: 2, ID: 2})
		da := ctl.Spawn(0, func() { tr.Insert(0, a) })
		db := ctl.Spawn(1, func() { tr.Insert(1, b) })
		// Interleave: advance each by alternating bursts whose sizes
		// depend on offset, until both finish.
		for i := 0; !ctl.Done(0) || !ctl.Done(1); i++ {
			pid := (i + offset) % 2
			if !ctl.Done(pid) {
				ctl.StepN(pid, 1+(offset+i)%3)
			}
		}
		<-da
		<-db
		if a.Idx() == b.Idx() || a.Idx() == 0 || b.Idx() == 0 {
			t.Fatalf("offset %d: indices %d/%d", offset, a.Idx(), b.Idx())
		}
		count := 0
		for cur := tr.Tail(0); cur.Kind == KindUpdate; cur = cur.Next() {
			count++
		}
		if count != 2 {
			t.Fatalf("offset %d: %d nodes", offset, count)
		}
		ctl.KillAll()
	}
}
