package plog

// Delta-chain compaction records (DESIGN.md §3.8). A KindDelta record
// has the same 3-word inline payload as a snapshot — {bodyAddr,
// bodyWords, bodySum} — but its body carries a chain frame in front of
// the caller's payload:
//
//	[0] bodyKind   0 = chain base (full snapshot), 1 = delta
//	[1] execIdx    must equal the record's execution index
//	[2] prevAddr   body address of the chain predecessor (0 for a base)
//	[3] prevWords  predecessor body length in words
//	[4] prevSum    predecessor body checksum
//	[5...] payload (core's encoded snapshot or delta)
//
// bodySum covers the whole frame, so the back-reference is transitively
// chained: a delta only verifies if its predecessor's exact bytes
// verify too, giving delta chains the same "torn = never appended"
// semantics as single records. The single fence of the append covers
// the body lines and the record lines together, exactly like
// AppendSnapshot.
//
// Chain bodies live in dedicated regions, NOT the ping-pong snapshot
// regions: a ping-pong region is overwritten every other snapshot,
// which would destroy a chain base that later deltas still reference.
// Regions are recycled through a free list only once a NEW base record
// has been fenced (the old chain is then unreachable from the live
// head); regions of a chain that was live at a crash are leaked — the
// pool is a bump allocator and the leak is one chain per crash.
//
// Unlike snapshot cuts, a delta cut truncates the log fully: the chain
// stays reachable through body back-references, so the log itself never
// has to retain the base's record. Truncate refuses to drop the newest
// chain record (that WOULD orphan the chain).

import (
	"errors"
	"fmt"

	"repro/internal/pmem"
)

// Chain body frame word offsets.
const (
	cbKind      = 0
	cbExec      = 1
	cbPrevAddr  = 2
	cbPrevWords = 3
	cbPrevSum   = 4
	cbHdrWords  = 5
)

// Body kinds.
const (
	chainBodyBase  = 0
	chainBodyDelta = 1
)

// maxChainLinks bounds ResolveChain walks over untrusted back-
// references: the strictly-decreasing execIdx rule already guarantees
// termination, but a forged chain could still demand millions of body
// reads before failing. No legitimate policy builds chains remotely
// this long.
const maxChainLinks = 4096

// ErrChain covers delta-chain resolution failures: a back-reference
// that points out of bounds, a predecessor body whose checksum does not
// match the reference, or a chain with no base.
var ErrChain = errors.New("plog: delta chain unresolvable")

// chainLink is one resolved chain body (volatile bookkeeping).
type chainLink struct {
	execIdx uint64
	addr    pmem.Addr
	words   int    // body words (frame + payload)
	sum     uint64 // checksum over the body
	cap     int    // region capacity for reuse; 0 = unknown (post-crash)
	base    bool
}

// chainRegion is a reusable body region.
type chainRegion struct {
	addr pmem.Addr
	cap  int
}

// ChainElem is one element of a resolved chain, base first.
type ChainElem struct {
	ExecIdx uint64
	Base    bool
	// Payload is the caller's words (the frame stripped).
	Payload []uint64
}

// ChainLen returns the number of live chain links (base included), 0
// when no chain is live.
func (l *Log) ChainLen() int { return len(l.chain) }

// ChainHead returns the execution index of the newest chain link (the
// index the chain's folded state covers), or 0 when no chain is live.
func (l *Log) ChainHead() uint64 {
	if len(l.chain) == 0 {
		return 0
	}
	return l.chain[len(l.chain)-1].execIdx
}

// ChainDeltaWords returns the total payload words of the delta links
// since the chain's base — the accumulated churn the collapse policy
// prices against the state size.
func (l *Log) ChainDeltaWords() int {
	w := 0
	for _, c := range l.chain {
		if !c.base {
			w += c.words - cbHdrWords
		}
	}
	return w
}

// allocBody claims a region of at least need words for a chain body:
// the free list first, a fresh allocation otherwise (with headroom,
// like the snapshot regions).
func (l *Log) allocBody(need int) (pmem.Addr, int, error) {
	for i, r := range l.chainPool {
		if r.cap >= need {
			l.chainPool = append(l.chainPool[:i], l.chainPool[i+1:]...)
			return r.addr, r.cap, nil
		}
	}
	cap := need
	if cap < 64 {
		cap = 64
	}
	cap *= 2
	a, err := l.pool.Alloc(cap * pmem.WordSize)
	if err != nil {
		return 0, 0, err
	}
	return a, cap, nil
}

// releaseChain returns every reusable region of the live chain to the
// free list and forgets the links. Called once a fresh base (chain or
// plain snapshot) has been fenced.
func (l *Log) releaseChain() {
	for _, c := range l.chain {
		if c.cap > 0 {
			l.chainPool = append(l.chainPool, chainRegion{addr: c.addr, cap: c.cap})
		}
	}
	l.chain = l.chain[:0]
}

// appendChainBody writes one chain body and its KindDelta record,
// durable under the append's single fence. prev* is zero for a base.
func (l *Log) appendChainBody(bodyKind uint64, payload []uint64, execIdx uint64, prev chainLink) (uint64, chainLink, error) {
	body := l.chainBuf[:0]
	body = append(body, bodyKind, execIdx, uint64(prev.addr), uint64(prev.words), prev.sum)
	body = append(body, payload...)
	l.chainBuf = body
	addr, cap, err := l.allocBody(len(body))
	if err != nil {
		return 0, chainLink{}, err
	}
	l.pool.StoreRange(l.pid, addr, body)
	l.pool.FlushRange(l.pid, addr, len(body)*pmem.WordSize)
	sum := checksum(body)
	rec := []uint64{uint64(addr), uint64(len(body)), sum}
	seq, err := l.appendRecord(KindDelta, uint64(len(rec)), execIdx, rec)
	if err != nil {
		// The claimed region was never referenced by a fenced record:
		// hand it straight back.
		l.chainPool = append(l.chainPool, chainRegion{addr: addr, cap: cap})
		return 0, chainLink{}, err
	}
	return seq, chainLink{
		execIdx: execIdx, addr: addr, words: len(body), sum: sum,
		cap: cap, base: bodyKind == chainBodyBase,
	}, nil
}

// AppendChainBase starts a fresh delta chain: payload is a full
// snapshot encoding taken at execIdx. On success the previous chain's
// regions become reusable. One persistent fence, like every append.
func (l *Log) AppendChainBase(payload []uint64, execIdx uint64) (uint64, error) {
	seq, link, err := l.appendChainBody(chainBodyBase, payload, execIdx, chainLink{})
	if err != nil {
		return 0, err
	}
	l.releaseChain()
	l.chain = append(l.chain, link)
	l.chainSeq = seq
	return seq, nil
}

// AppendDelta extends the live chain with a delta taken at execIdx
// (covering operations ChainHead()+1..execIdx). It fails if no chain is
// live — the caller must cut a base first.
func (l *Log) AppendDelta(payload []uint64, execIdx uint64) (uint64, error) {
	if len(l.chain) == 0 {
		return 0, fmt.Errorf("plog: AppendDelta without a live chain base")
	}
	tail := l.chain[len(l.chain)-1]
	if execIdx <= tail.execIdx {
		return 0, fmt.Errorf("plog: delta at index %d does not extend chain head %d", execIdx, tail.execIdx)
	}
	seq, link, err := l.appendChainBody(chainBodyDelta, payload, execIdx, tail)
	if err != nil {
		return 0, err
	}
	l.chain = append(l.chain, link)
	l.chainSeq = seq
	return seq, nil
}

// readChainBody reads and validates one body at an untrusted
// (addr, words, sum) reference.
func (l *Log) readChainBody(addr pmem.Addr, words int, sum uint64, rd wordReader) ([]uint64, error) {
	if words < cbHdrWords+1 || words > (1<<28) || !l.pool.Contains(addr, words*pmem.WordSize) {
		return nil, ErrChain
	}
	body := make([]uint64, words)
	for i := range body {
		body[i] = rd(addr + pmem.Addr(i*pmem.WordSize))
	}
	if checksum(body) != sum || body[cbKind] > chainBodyDelta {
		return nil, ErrChain
	}
	return body, nil
}

// resolveLinks walks rec's chain back to its base, validating every
// back-reference as untrusted input: bounds-checked pointers, exact
// body checksums (each delta's prevSum pins its predecessor's bytes)
// and strictly decreasing execution indices. Returns links and bodies
// base-first.
func (l *Log) resolveLinks(rec Record, rd wordReader) ([]chainLink, [][]uint64, error) {
	if rec.Kind != KindDelta || len(rec.Body) == 0 {
		return nil, nil, ErrChain
	}
	var links []chainLink
	var bodies [][]uint64
	body := rec.Body
	link := chainLink{
		execIdx: body[cbExec], addr: rec.bodyAddr, words: len(body),
		sum: checksum(body), base: body[cbKind] == chainBodyBase,
	}
	for {
		links = append(links, link)
		bodies = append(bodies, body)
		if link.base {
			break
		}
		if len(links) >= maxChainLinks {
			return nil, nil, ErrChain
		}
		prevAddr := pmem.Addr(body[cbPrevAddr])
		prevWords := int(body[cbPrevWords])
		prevSum := body[cbPrevSum]
		prev, err := l.readChainBody(prevAddr, prevWords, prevSum, rd)
		if err != nil {
			return nil, nil, err
		}
		if prev[cbExec] >= link.execIdx {
			return nil, nil, ErrChain
		}
		body = prev
		link = chainLink{
			execIdx: body[cbExec], addr: prevAddr, words: prevWords,
			sum: prevSum, base: body[cbKind] == chainBodyBase,
		}
	}
	// Reverse to base-first.
	for i, j := 0, len(links)-1; i < j; i, j = i+1, j-1 {
		links[i], links[j] = links[j], links[i]
		bodies[i], bodies[j] = bodies[j], bodies[i]
	}
	return links, bodies, nil
}

// ResolveChain resolves a KindDelta record to its full chain, base
// first, reading through the cache (the recovery path). Every element
// carries the caller payload with the chain frame stripped.
func (l *Log) ResolveChain(rec Record) ([]ChainElem, error) {
	links, bodies, err := l.resolveLinks(rec, l.cachedReader())
	if err != nil {
		return nil, err
	}
	elems := make([]ChainElem, len(links))
	for i := range links {
		elems[i] = ChainElem{
			ExecIdx: links[i].execIdx,
			Base:    links[i].base,
			Payload: bodies[i][cbHdrWords:],
		}
	}
	return elems, nil
}

// rebuildChain reconstructs the volatile chain state from the live
// records after Open: the newest KindDelta record defines the chain. An
// unresolvable chain leaves the state empty — the log stays usable and
// the next cut starts a fresh base; recovery surfaces the damage
// through its own resolution attempt.
func (l *Log) rebuildChain(recs []Record) {
	l.chain = l.chain[:0]
	l.chainSeq = 0
	for i := len(recs) - 1; i >= 0; i-- {
		if recs[i].Kind != KindDelta {
			continue
		}
		links, _, err := l.resolveLinks(recs[i], l.cachedReader())
		if err == nil {
			l.chain = links // caps are 0: post-crash regions are leaked
			l.chainSeq = recs[i].Seq
		}
		return
	}
}
