package plog

import (
	"math/rand"
	"testing"

	"repro/internal/pmem"
	"repro/internal/spec"
)

// Open on a region full of random durable garbage must either reject
// the header or produce only records that verify — never panic, never
// hallucinate ops beyond bounds.
func TestOpenOnRandomGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		pool := pmem.New(1<<18, nil)
		base := pool.MustAlloc(1 << 14)
		for w := 0; w < (1<<14)/pmem.WordSize; w++ {
			pool.Store(0, base+pmem.Addr(w*pmem.WordSize), rng.Uint64())
		}
		pool.Persist(0, base, 1<<14)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: panic: %v", trial, r)
				}
			}()
			l, err := Open(pool, 0, base)
			if err != nil {
				return // rejected: fine
			}
			// A random 64-bit magic match is astronomically unlikely,
			// but if Open succeeded, Records must still be safe.
			_ = l.Records()
		}()
	}
}

// Corrupting the durable bytes of individual records must invalidate
// exactly the contiguous suffix starting at the first corruption
// (validity is prefix-closed by the scanning rule).
func TestRecordCorruptionInvalidatesSuffix(t *testing.T) {
	for corruptAt := 1; corruptAt <= 8; corruptAt++ {
		pool, l := newLog(t, 16, 2)
		for i := 1; i <= 8; i++ {
			if _, err := l.Append([]spec.Op{op(uint64(i), uint64(i))}, uint64(i)); err != nil {
				t.Fatal(err)
			}
		}
		// Corrupt one durable word of record #corruptAt.
		addr := l.slotAddr(uint64(corruptAt)) + 2*pmem.WordSize
		pool.Store(0, addr, 0xBADBADBAD)
		pool.Persist(0, addr, pmem.WordSize)
		pool.Crash(pmem.DropAll)
		l2, err := Open(pool, 0, l.Base())
		if err != nil {
			t.Fatal(err)
		}
		recs := l2.Records()
		if len(recs) != corruptAt-1 {
			t.Fatalf("corrupt@%d: %d records survive, want %d", corruptAt, len(recs), corruptAt-1)
		}
		for i, r := range recs {
			if r.Seq != uint64(i+1) || r.Ops[0].Code != uint64(i+1) {
				t.Fatalf("corrupt@%d: surviving record %d wrong: %+v", corruptAt, i, r)
			}
		}
	}
}

// A snapshot record pointing outside the pool must be rejected, not
// crash the scanner.
func TestSnapshotWithWildPointerRejected(t *testing.T) {
	pool, l := newLog(t, 16, 2)
	if _, err := l.AppendSnapshot([]uint64{1, 2, 3}, 1); err != nil {
		t.Fatal(err)
	}
	// Forge the region pointer to point past the pool, fix nothing
	// else: the slot checksum still matches the forged words only if
	// we recompute it — do so, to test the region validation itself.
	seq := uint64(1)
	addr := l.slotAddr(seq)
	words := make([]uint64, 6)
	for i := range words {
		words[i] = pool.Load(0, addr+pmem.Addr(i*pmem.WordSize))
	}
	words[3] = uint64(pool.Size()) + 4096 // wild region pointer
	sum := checksum(words)
	pool.Store(0, addr+3*pmem.WordSize, words[3])
	pool.Store(0, addr+6*pmem.WordSize, sum)
	pool.Persist(0, addr, 7*pmem.WordSize)
	pool.Crash(pmem.DropAll)
	func() {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("wild snapshot pointer panicked the scanner: %v", r)
			}
		}()
		l2, err := Open(pool, 0, l.Base())
		if err != nil {
			return
		}
		if recs := l2.Records(); len(recs) != 0 {
			t.Fatalf("wild-pointer snapshot accepted: %+v", recs)
		}
	}()
}
