package plog

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/pmem"
	"repro/internal/spec"
)

func newLog(t testing.TB, capacity, maxOps int) (*pmem.Pool, *Log) {
	t.Helper()
	pool := pmem.New(RegionBytes(capacity, maxOps)+1<<16, nil)
	l, err := Create(pool, 0, capacity, maxOps)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	return pool, l
}

func op(code uint64, id uint64) spec.Op {
	return spec.Op{Code: code, Args: [3]uint64{code * 2, code * 3, code * 5}, ID: id}
}

func TestAppendUsesExactlyOnePersistentFence(t *testing.T) {
	for _, nops := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("ops=%d", nops), func(t *testing.T) {
			pool, l := newLog(t, 64, 8)
			pool.ResetStats()
			ops := make([]spec.Op, nops)
			for i := range ops {
				ops[i] = op(uint64(i+1), uint64(i+100))
			}
			if _, err := l.Append(ops, 10); err != nil {
				t.Fatal(err)
			}
			st := pool.StatsOf(0)
			if st.PersistentFences != 1 {
				t.Fatalf("append used %d persistent fences, want 1", st.PersistentFences)
			}
			if st.Fences != 0 {
				t.Fatalf("append used %d extra plain fences", st.Fences)
			}
		})
	}
}

func TestAppendRecordsRoundTrip(t *testing.T) {
	_, l := newLog(t, 128, 4)
	var want []Record
	for i := 1; i <= 50; i++ {
		ops := []spec.Op{op(uint64(i), uint64(i))}
		if i%3 == 0 {
			ops = append(ops, op(uint64(i*10), uint64(i*10)))
		}
		seq, err := l.Append(ops, uint64(i*2))
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, Record{Seq: seq, Kind: KindOps, ExecIdx: uint64(i * 2), Ops: ops})
	}
	got := l.Records()
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Seq != want[i].Seq || got[i].ExecIdx != want[i].ExecIdx || len(got[i].Ops) != len(want[i].Ops) {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
		for k := range want[i].Ops {
			if got[i].Ops[k] != want[i].Ops[k] {
				t.Fatalf("record %d op %d: got %v want %v", i, k, got[i].Ops[k], want[i].Ops[k])
			}
		}
	}
}

func TestRecordsSurviveCrash(t *testing.T) {
	pool, l := newLog(t, 64, 2)
	for i := 1; i <= 10; i++ {
		if _, err := l.Append([]spec.Op{op(uint64(i), uint64(i))}, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	base := l.Base()
	pool.Crash(pmem.DropAll)
	l2, err := Open(pool, 1, base)
	if err != nil {
		t.Fatal(err)
	}
	recs := l2.Records()
	if len(recs) != 10 {
		t.Fatalf("recovered %d records, want 10", len(recs))
	}
	if l2.NextSeq() != 11 {
		t.Fatalf("NextSeq=%d want 11", l2.NextSeq())
	}
	// Appends continue seamlessly after recovery.
	if _, err := l2.Append([]spec.Op{op(99, 99)}, 11); err != nil {
		t.Fatal(err)
	}
	if got := len(l2.Records()); got != 11 {
		t.Fatalf("after post-crash append: %d records", got)
	}
}

func TestTornAppendIsInvisible(t *testing.T) {
	// Crash with DropAll right after the stores of an append but
	// before its fence: the record must not be recovered.
	pool, l := newLog(t, 64, 2)
	if _, err := l.Append([]spec.Op{op(1, 1)}, 1); err != nil {
		t.Fatal(err)
	}
	// Manually stage a second record without fencing, mimicking a
	// crash mid-append: write the slot words but crash before Fence.
	seq := l.NextSeq()
	addr := l.slotAddr(seq)
	words := []uint64{seq, uint64(KindOps)<<32 | uint64(spec.OpWords), 2}
	words = append(words, op(2, 2).Encode(nil)...)
	words = append(words, checksum(words))
	for i, w := range words {
		pool.Store(0, addr+pmem.Addr(i*pmem.WordSize), w)
	}
	pool.FlushRange(0, addr, len(words)*pmem.WordSize)
	// no fence
	pool.Crash(pmem.DropAll)
	l2, err := Open(pool, 0, l.Base())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(l2.Records()); got != 1 {
		t.Fatalf("torn append visible: %d records, want 1", got)
	}
}

func TestTornAppendPartialLinesRejected(t *testing.T) {
	// If only SOME lines of a multi-line record reach NVM (random
	// oracle), the checksum must reject the record. Stage a record at
	// the full inline budget so the slot image spans several lines.
	for seed := uint64(1); seed <= 16; seed++ {
		pool, l := newLog(t, 16, 8)
		nops := l.InlineOps() // 4: a 24-word, 3-line slot image
		var ops []spec.Op
		for i := 0; i < nops; i++ {
			ops = append(ops, op(uint64(i+1), uint64(i+1)))
		}
		seq := l.NextSeq()
		addr := l.slotAddr(seq)
		var words []uint64
		words = append(words, seq, uint64(KindOps)<<32|uint64(len(ops)*spec.OpWords), 5)
		for _, o := range ops {
			words = o.Encode(words)
		}
		words = append(words, checksum(words))
		for i, w := range words {
			pool.Store(0, addr+pmem.Addr(i*pmem.WordSize), w)
		}
		pool.FlushRange(0, addr, len(words)*pmem.WordSize)
		pool.Crash(pmem.SeededOracle(seed, 1, 2)) // half the lines survive
		l2, err := Open(pool, 0, l.Base())
		if err != nil {
			t.Fatal(err)
		}
		recs := l2.Records()
		// Either fully survived (all lines lucky) or fully invisible.
		if len(recs) == 1 {
			if len(recs[0].Ops) != nops {
				t.Fatalf("seed %d: partial record surfaced: %+v", seed, recs[0])
			}
			for k := range ops {
				if recs[0].Ops[k] != ops[k] {
					t.Fatalf("seed %d: corrupt op %d recovered", seed, k)
				}
			}
		} else if len(recs) != 0 {
			t.Fatalf("seed %d: %d records", seed, len(recs))
		}
	}
}

func TestLogFullAndTruncate(t *testing.T) {
	_, l := newLog(t, 4, 1)
	for i := 1; i <= 4; i++ {
		if _, err := l.Append([]spec.Op{op(uint64(i), uint64(i))}, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.Append([]spec.Op{op(5, 5)}, 5); err != ErrFull {
		t.Fatalf("append to full log: %v, want ErrFull", err)
	}
	if err := l.Truncate(2); err != nil {
		t.Fatal(err)
	}
	if l.Len() != 2 {
		t.Fatalf("after truncate: Len=%d want 2", l.Len())
	}
	for i := 5; i <= 6; i++ {
		if _, err := l.Append([]spec.Op{op(uint64(i), uint64(i))}, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	recs := l.Records()
	if len(recs) != 4 || recs[0].Seq != 3 || recs[3].Seq != 6 {
		t.Fatalf("ring reuse wrong: %+v", recs)
	}
}

func TestTruncateIsDurable(t *testing.T) {
	pool, l := newLog(t, 8, 1)
	for i := 1; i <= 6; i++ {
		l.Append([]spec.Op{op(uint64(i), uint64(i))}, uint64(i))
	}
	if err := l.Truncate(4); err != nil {
		t.Fatal(err)
	}
	pool.Crash(pmem.DropAll)
	l2, err := Open(pool, 0, l.Base())
	if err != nil {
		t.Fatal(err)
	}
	if l2.HeadSeq() != 4 {
		t.Fatalf("truncation lost: HeadSeq=%d want 4", l2.HeadSeq())
	}
	recs := l2.Records()
	if len(recs) != 2 || recs[0].Seq != 5 {
		t.Fatalf("post-truncate recovery: %+v", recs)
	}
}

func TestTruncateValidation(t *testing.T) {
	_, l := newLog(t, 8, 1)
	l.Append([]spec.Op{op(1, 1)}, 1)
	if err := l.Truncate(5); err == nil {
		t.Fatal("truncate past the end accepted")
	}
	if err := l.Truncate(0); err != nil {
		t.Fatalf("no-op truncate rejected: %v", err)
	}
}

func TestSnapshotRecordRoundTrip(t *testing.T) {
	pool, l := newLog(t, 16, 2)
	state := make([]uint64, 300) // larger than a slot: goes to a region
	for i := range state {
		state[i] = uint64(i) * 11
	}
	pool.ResetStats()
	seq, err := l.AppendSnapshot(state, 42)
	if err != nil {
		t.Fatal(err)
	}
	if st := pool.StatsOf(0); st.PersistentFences != 1 {
		t.Fatalf("snapshot append used %d persistent fences, want 1", st.PersistentFences)
	}
	pool.Crash(pmem.DropAll)
	l2, err := Open(pool, 0, l.Base())
	if err != nil {
		t.Fatal(err)
	}
	recs := l2.Records()
	if len(recs) != 1 || recs[0].Seq != seq || recs[0].Kind != KindSnapshot || recs[0].ExecIdx != 42 {
		t.Fatalf("snapshot record: %+v", recs)
	}
	if len(recs[0].State) != len(state) {
		t.Fatalf("snapshot state length %d want %d", len(recs[0].State), len(state))
	}
	for i := range state {
		if recs[0].State[i] != state[i] {
			t.Fatalf("snapshot word %d: %d want %d", i, recs[0].State[i], state[i])
		}
	}
}

func TestSnapshotTornBodyInvalidatesRecord(t *testing.T) {
	pool, l := newLog(t, 16, 2)
	state := make([]uint64, 128)
	for i := range state {
		state[i] = uint64(i) + 1
	}
	// Valid first snapshot.
	if _, err := l.AppendSnapshot(state, 1); err != nil {
		t.Fatal(err)
	}
	// Second snapshot (other ping-pong region): stage it without the
	// fence by writing region+record and crashing with a half oracle.
	state2 := make([]uint64, 128)
	for i := range state2 {
		state2[i] = uint64(i) + 1000
	}
	// Emulate mid-append crash: do the append but crash with DropAll
	// BEFORE... we cannot interrupt AppendSnapshot here, so instead
	// verify that an invalid region checksum hides the record: corrupt
	// the region durably after a full append.
	seq, err := l.AppendSnapshot(state2, 2)
	if err != nil {
		t.Fatal(err)
	}
	rec2, ok := l.readSlot(seq)
	if !ok || rec2.Kind != KindSnapshot {
		t.Fatal("snapshot record unreadable")
	}
	// Corrupt one durable word of the region it points to.
	region := l.snapRegion[1-l.snapNext]
	pool.Store(0, region, 0xBAD)
	pool.Persist(0, region, 8)
	pool.Crash(pmem.DropAll)
	l2, err := Open(pool, 0, l.Base())
	if err != nil {
		t.Fatal(err)
	}
	recs := l2.Records()
	// The corrupted snapshot is rejected; scanning stops there, so only
	// the first snapshot survives.
	if len(recs) != 1 || recs[0].ExecIdx != 1 {
		t.Fatalf("corrupt snapshot not rejected: %+v", recs)
	}
}

func TestPingPongRegionsDoNotGrowUnbounded(t *testing.T) {
	pool, l := newLog(t, 1<<10, 2)
	state := make([]uint64, 256)
	before := pool.Size()
	for i := 0; i < 100; i++ {
		seq, err := l.AppendSnapshot(state, uint64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		if seq > 1 {
			l.Truncate(seq - 1)
		}
	}
	if pool.Size() != before {
		t.Fatal("pool grew during snapshots (size is fixed, so this is impossible; placeholder)")
	}
	// The real check: only two regions were ever allocated.
	if l.snapCap[0] == 0 || l.snapCap[1] == 0 {
		t.Fatal("ping-pong regions not both in use")
	}
}

func TestAppendValidation(t *testing.T) {
	_, l := newLog(t, 8, 2)
	if _, err := l.Append(nil, 1); err != ErrTooMany {
		t.Fatalf("empty append: %v", err)
	}
	if _, err := l.Append(make([]spec.Op, 3), 1); err != ErrTooMany {
		t.Fatalf("oversized append: %v", err)
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	pool := pmem.New(1<<16, nil)
	addr := pool.MustAlloc(1024)
	if _, err := Open(pool, 0, addr); err == nil {
		t.Fatal("Open on unformatted region succeeded")
	}
}

func TestCreateValidation(t *testing.T) {
	pool := pmem.New(1<<16, nil)
	if _, err := Create(pool, 0, 0, 1); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := Create(pool, 0, 1, 0); err == nil {
		t.Fatal("zero maxOps accepted")
	}
}

func TestChecksumNeverZero(t *testing.T) {
	if checksum([]uint64{}) == 0 || checksum(make([]uint64, 16)) == 0 {
		t.Fatal("checksum produced reserved value 0")
	}
}

func TestQuickAppendRecover(t *testing.T) {
	// Property: for any batch sizes within bounds, append-then-crash
	// recovers exactly the appended records in order.
	f := func(sizes []byte, seed uint64) bool {
		if len(sizes) > 24 {
			sizes = sizes[:24]
		}
		pool, l := newLog(nil2t(), 64, 4)
		var wantOps int
		for i, sz := range sizes {
			n := int(sz)%4 + 1
			ops := make([]spec.Op, n)
			for k := range ops {
				ops[k] = op(uint64(i*10+k+1), uint64(i*100+k+1))
			}
			if _, err := l.Append(ops, uint64(i+1)); err != nil {
				return false
			}
			wantOps += n
		}
		pool.Crash(pmem.SeededOracle(seed, 1, 4))
		l2, err := Open(pool, 0, l.Base())
		if err != nil {
			return false
		}
		recs := l2.Records()
		if len(recs) != len(sizes) {
			return false
		}
		got := 0
		for i, r := range recs {
			if r.Seq != uint64(i+1) || r.ExecIdx != uint64(i+1) {
				return false
			}
			got += len(r.Ops)
		}
		return got == wantOps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// nil2t adapts newLog for use inside quick.Check closures (no *testing.T
// available; failures surface as property violations).
func nil2t() testing.TB { return &quickTB{} }

type quickTB struct{ testing.TB }

func (*quickTB) Helper()                       {}
func (*quickTB) Fatalf(string, ...interface{}) { panic("quickTB.Fatalf") }
