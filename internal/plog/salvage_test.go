package plog

import (
	"testing"

	"repro/internal/pmem"
	"repro/internal/spec"
)

// buildLog returns a single-tier log with n one-op records, all durable
// and the cache dropped (as after a crash).
func buildLog(t *testing.T, capacity, n int) (*pmem.Pool, *Log) {
	t.Helper()
	pool := pmem.New(1<<20, nil)
	l, err := Create(pool, 0, capacity, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		if _, err := l.Append([]spec.Op{op(uint64(i), uint64(i))}, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	pool.Crash(pmem.DropAll)
	return pool, l
}

// smash destroys the record at seq by overwriting its checksum word's
// neighbourhood durably (the seq word is left intact, so the slot
// probes as a same-seq bad record, not stale).
func smash(pool *pmem.Pool, l *Log, seq uint64) {
	addr := l.slotAddr(seq)
	corrupt(pool, addr+pmem.Addr(2*pmem.WordSize), 0xBAD0BAD0BAD0BAD0)
	pool.Crash(pmem.DropAll)
}

// TestSalvageScanOrphans pins orphan harvesting: a destroyed mid-log
// record strands the records after it for the strict scan, but the
// salvage walk recovers them as checksummed orphans.
func TestSalvageScanOrphans(t *testing.T) {
	pool, l := buildLog(t, 16, 8)
	smash(pool, l, 3)
	l2, err := Open(pool, 0, l.Base())
	if err != nil {
		t.Fatalf("Open after mid-log damage: %v", err)
	}
	if got := len(l2.Records()); got != 2 {
		t.Fatalf("strict scan salvaged %d records, want prefix of 2", got)
	}
	s := l2.SalvageScan()
	if len(s.Live) != 2 || len(s.Orphans) != 5 {
		t.Fatalf("salvage live=%d orphans=%d, want 2/5", len(s.Live), len(s.Orphans))
	}
	if len(s.BadSeqs) != 1 || s.BadSeqs[0] != 3 {
		t.Fatalf("bad seqs %v, want [3]", s.BadSeqs)
	}
	if s.FirstBadStatus != SlotBad {
		t.Fatalf("first bad status %v, want %v", s.FirstBadStatus, SlotBad)
	}
	if s.LastValid != 8 {
		t.Fatalf("last valid %d, want 8", s.LastValid)
	}
	if !s.Damaged() || s.BenignTear() || s.TailTorn() {
		t.Fatalf("classification wrong: damaged=%v benign=%v tail=%v", s.Damaged(), s.BenignTear(), s.TailTorn())
	}
	for i, rec := range s.Orphans {
		if rec.Seq != uint64(4+i) {
			t.Fatalf("orphan %d has seq %d", i, rec.Seq)
		}
	}
}

// TestSalvageBenignTear pins that a single invalid record at the append
// frontier classifies as an ordinary torn append, not damage.
func TestSalvageBenignTear(t *testing.T) {
	pool, l := buildLog(t, 16, 8)
	smash(pool, l, 8)
	l2, err := Open(pool, 0, l.Base())
	if err != nil {
		t.Fatal(err)
	}
	s := l2.SalvageScan()
	if len(s.Live) != 7 || len(s.Orphans) != 0 {
		t.Fatalf("live=%d orphans=%d, want 7/0", len(s.Live), len(s.Orphans))
	}
	if !s.BenignTear() || !s.TailTorn() || s.Damaged() {
		t.Fatalf("classification wrong: benign=%v tail=%v damaged=%v", s.BenignTear(), s.TailTorn(), s.Damaged())
	}
}

// TestSalvageTornOverflowClassified pins the SlotBadOvf status: a
// record whose inline half verifies but whose ring chunk was damaged.
func TestSalvageTornOverflowClassified(t *testing.T) {
	pool, l := newTieredLog(t, 16, 12, 4)
	if _, err := l.Append(opsOf(2, 1), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(opsOf(8, 2), 2); err != nil { // spills
		t.Fatal(err)
	}
	if _, err := l.Append(opsOf(2, 3), 3); err != nil {
		t.Fatal(err)
	}
	pool.Crash(pmem.DropAll)
	recs := l.Records()
	off, _, ok := recs[1].OverflowSpan()
	if !ok {
		t.Fatal("record 2 did not spill")
	}
	ovfBase, _ := l.OverflowRegion()
	corrupt(pool, ovfBase+pmem.Addr(off*pmem.WordSize), 0xFEEDFACE)
	pool.Crash(pmem.DropAll)
	l2, err := Open(pool, 0, l.Base())
	if err != nil {
		t.Fatal(err)
	}
	s := l2.SalvageScan()
	if s.FirstBadStatus != SlotBadOvf {
		t.Fatalf("first bad status %v, want %v", s.FirstBadStatus, SlotBadOvf)
	}
	if len(s.Live) != 1 || len(s.Orphans) != 1 || len(s.BadSeqs) != 1 {
		t.Fatalf("live=%d orphans=%d bad=%v", len(s.Live), len(s.Orphans), s.BadSeqs)
	}
}

// TestCreateRingExplicitBudget pins the adaptive-sizing contract:
// explicit ring budgets stick (line-aligned), survive reopen, and are
// floored at the formula's worst-case fraction.
func TestCreateRingExplicitBudget(t *testing.T) {
	pool := pmem.New(1<<22, nil)
	floor := ovfRegionWords(32, 12, 4)
	l, err := CreateInlineRing(pool, 0, 32, 12, 4, 4*floor)
	if err != nil {
		t.Fatal(err)
	}
	if l.RingWords() != 4*floor {
		t.Fatalf("ring %d words, want %d", l.RingWords(), 4*floor)
	}
	// Traffic + reopen: the enlarged ring must round-trip through the
	// durable header.
	for i := 1; i <= 6; i++ {
		if _, err := l.Append(opsOf(8, i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	pool.Crash(pmem.DropAll)
	l2, err := Open(pool, 0, l.Base())
	if err != nil {
		t.Fatalf("reopen of grown-ring log: %v", err)
	}
	if l2.RingWords() != 4*floor {
		t.Fatalf("reopened ring %d words, want %d", l2.RingWords(), 4*floor)
	}
	if got := len(l2.Records()); got != 6 {
		t.Fatalf("recovered %d records, want 6", got)
	}
	// Below-floor request is raised to the floor.
	l3, err := CreateInlineRing(pool, 0, 32, 12, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if l3.RingWords() != floor {
		t.Fatalf("tiny ring request gave %d words, want floor %d", l3.RingWords(), floor)
	}
	// Single-tier layouts have no ring regardless of the request.
	l4, err := CreateInlineRing(pool, 0, 8, 4, 4, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if l4.RingWords() != 0 {
		t.Fatalf("single-tier log grew a ring of %d words", l4.RingWords())
	}
}

// TestSpillCounter pins that refused appends are counted (the adaptive
// growth trigger).
func TestSpillCounter(t *testing.T) {
	_, l := newTieredLog(t, 128, 12, 4) // ring: 128*40/8 = 640 words
	var errs int
	for i := 1; i <= 64; i++ {
		if _, err := l.Append(opsOf(12, i), uint64(i)); err == ErrOvfFull {
			errs++
		}
	}
	if errs == 0 {
		t.Fatal("workload never exhausted the ring; test is vacuous")
	}
	if l.Spills() != errs {
		t.Fatalf("Spills()=%d, want %d", l.Spills(), errs)
	}
}

// TestScrubDetectsLatentFault pins the scrubber's reason to exist: a
// media fault on a fenced record that the volatile cache still masks
// is invisible to the normal (cached) read path but caught by Scrub
// before any recovery needs the data.
func TestScrubDetectsLatentFault(t *testing.T) {
	pool := pmem.New(1<<20, nil)
	l, err := Create(pool, 0, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 6; i++ {
		if _, err := l.Append([]spec.Op{op(uint64(i), uint64(i))}, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if res := l.Scrub(); res.Faulty() {
		t.Fatalf("clean log scrubs faulty: %+v", res)
	}
	// Stuck-at fault on record 3's second line (payload + checksum; the
	// seq word on the first line survives, so the slot probes as a bad
	// same-seq record, not stale). The cache copy is resident, so the
	// cached scan still sees a healthy log.
	pool.InjectFaults(pmem.FaultPlan{Faults: []pmem.Fault{
		{Class: pmem.FaultStuckLine, Line: (l.slotAddr(3) + pmem.LineSize).Line(), Seed: 9},
	}})
	if got := len(l.Records()); got != 6 {
		t.Fatalf("cached scan saw the latent fault early (%d records)", got)
	}
	res := l.Scrub()
	if !res.Faulty() {
		t.Fatalf("scrub missed the latent fault: %+v", res)
	}
	if len(res.BadSlots) != 1 || res.BadSlots[0] != 3 {
		t.Fatalf("scrub flagged %v, want [3]", res.BadSlots)
	}
	if res.Orphans != 3 {
		t.Fatalf("scrub found %d orphans, want 3", res.Orphans)
	}
}

// TestScrubHeaderFault pins header coverage: damage to the header line
// itself is reported via HeaderOK.
func TestScrubHeaderFault(t *testing.T) {
	pool := pmem.New(1<<20, nil)
	l, err := Create(pool, 0, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	pool.InjectFaults(pmem.FaultPlan{Faults: []pmem.Fault{
		{Class: pmem.FaultBitFlip, Line: l.Base().Line(), Seed: 5},
	}})
	res := l.Scrub()
	if res.HeaderOK || !res.Faulty() {
		t.Fatalf("scrub missed the header fault: %+v", res)
	}
}
