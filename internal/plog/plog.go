// Package plog implements the per-process persistent log of the paper
// (Section 4.1.1), in the style of Cohen, Friedman and Larus, "Efficient
// Logging in Non-volatile Memory by Exploiting Coherency Protocols"
// (OOPSLA 2017, reference [12] of the paper): each Append makes a record
// durable with exactly ONE persistent fence.
//
// Instead of the hardware coherency trick of [12] (which Go cannot
// express), torn records are made detectable by a per-record checksum:
// the record's lines are written, all of them are flushed (asynchronous,
// unordered — zero cost in the paper's model), and a single fence makes
// them durable together. If a crash interrupts the append, any subset of
// the record's cache lines may have reached NVM; the checksum fails and
// recovery treats the record as never appended. This preserves the
// property that matters to the paper — one persistent fence per append —
// while being implementable on the simulated NVM.
//
// Record layout (words), in a fixed-size slot:
//
//	[0] seq        monotonically increasing per log, 1-based
//	[1] kind<<32 | numOps (kind: ops record or snapshot record)
//	[2] executionIndex
//	[3...] payload:
//	       ops record:      numOps operations, spec.OpWords words each;
//	                        ops[0] is the appender's own operation with
//	                        the given executionIndex, ops[k] is the
//	                        helped operation with index executionIndex-k
//	                        (paper Listing 1).
//	       snapshot record: {regionAddr, regionWords, regionChecksum}
//	[3+payload] checksum over words [0, 3+payload)
//
// Snapshot records implement the memory-reclamation extension of paper
// Section 8: a record points to a separately written state-snapshot
// region; the single fence of the append covers both the region's lines
// and the record's lines.
package plog

import (
	"errors"
	"fmt"

	"repro/internal/pmem"
	"repro/internal/spec"
)

// Record kinds.
const (
	KindOps      = 1 // a batch of operations (paper Listing 1)
	KindSnapshot = 2 // an object-state snapshot (paper Section 8)
)

// Header layout (one cache line at the region base).
const (
	hdrMagic    = 0 // word offsets within the header
	hdrCapacity = 1
	hdrSlotW    = 2
	hdrMaxOps   = 3
	hdrHeadSeq  = 4
	hdrWords    = pmem.LineWords
)

const logMagic = 0x504c4f4721 // "PLOG!"

// Errors.
var (
	ErrFull     = errors.New("plog: log full (truncate before appending more)")
	ErrTooMany  = errors.New("plog: too many operations for one record")
	ErrCorrupt  = errors.New("plog: corrupt log header")
	ErrSnapSize = errors.New("plog: snapshot larger than its region")
)

// Log is one process's persistent log inside a pmem.Pool. A Log is owned
// by a single process: Append/Truncate must not be called concurrently
// (per the paper, logs are per-process; recovery reads all of them).
type Log struct {
	pool *pmem.Pool
	pid  int
	base pmem.Addr

	capacity int // slots
	slotW    int // words per slot
	maxOps   int

	nextSeq uint64 // volatile mirrors; durable info is in records + header
	headSeq uint64

	// Snapshot regions (ping-pong, so the previous snapshot stays intact
	// while the next one is written).
	snapRegion [2]pmem.Addr
	snapCap    [2]int // words
	snapNext   int

	// Encoding scratch, reused across appends (a Log is owned by one
	// process, so appends never overlap): steady-state Append is
	// allocation-free once both buffers reach the record size.
	encBuf []uint64 // Append payload
	recBuf []uint64 // appendRecord slot image
}

// SlotWords returns the number of words per record slot for a log that
// can hold up to maxOps operations per record.
func SlotWords(maxOps int) int {
	payload := maxOps * spec.OpWords
	if payload < 3 { // snapshot payload
		payload = 3
	}
	return 3 + payload + 1
}

// RegionBytes returns the pool bytes needed for a log with the given
// geometry (header line + capacity slots, line-aligned).
func RegionBytes(capacity, maxOps int) int {
	slotBytes := SlotWords(maxOps) * pmem.WordSize
	slotBytes = (slotBytes + pmem.LineSize - 1) / pmem.LineSize * pmem.LineSize
	return pmem.LineSize + capacity*slotBytes
}

// Create formats a new log for process pid at a freshly allocated region
// of pool and durably writes its header. capacity is the number of record
// slots; maxOps bounds operations per record (paper: MAX_PROCESSES).
func Create(pool *pmem.Pool, pid, capacity, maxOps int) (*Log, error) {
	if capacity < 1 || maxOps < 1 {
		return nil, fmt.Errorf("plog: bad geometry capacity=%d maxOps=%d", capacity, maxOps)
	}
	base, err := pool.Alloc(RegionBytes(capacity, maxOps))
	if err != nil {
		return nil, err
	}
	l := &Log{
		pool: pool, pid: pid, base: base,
		capacity: capacity, slotW: slotWordsAligned(maxOps), maxOps: maxOps,
		nextSeq: 1, headSeq: 0,
	}
	hdr := []uint64{logMagic, uint64(capacity), uint64(l.slotW), uint64(maxOps), 0}
	pool.StoreRange(pid, base, hdr)
	pool.Persist(pid, base, hdrWords*pmem.WordSize)
	return l, nil
}

// slotWordsAligned rounds the slot up to whole cache lines so records
// never share a line (a torn line can then damage at most one record).
func slotWordsAligned(maxOps int) int {
	w := SlotWords(maxOps)
	return (w + pmem.LineWords - 1) / pmem.LineWords * pmem.LineWords
}

// Plausibility bounds on header geometry read from (possibly corrupt)
// NVM, checked before any arithmetic that could overflow or any slot
// address is dereferenced.
const (
	maxPlausibleCapacity = 1 << 31
	maxPlausibleOps      = 1 << 16
)

// Open attaches to an existing log region (after a crash). It scans the
// slots, validates records, and positions nextSeq after the last valid
// record. The owning pid of the reopened log may differ from the
// pre-crash one (crashed processes are replaced by new ones).
//
// Everything Open reads — the base pointer handed in (typically from a
// root slot) and the header geometry — is untrusted: a corrupted image
// must produce ErrCorrupt, never an out-of-bounds panic.
func Open(pool *pmem.Pool, pid int, base pmem.Addr) (*Log, error) {
	if !pool.Contains(base, hdrWords*pmem.WordSize) {
		return nil, ErrCorrupt
	}
	rd := func(i int) uint64 { return pool.Load(pid, base+pmem.Addr(i*pmem.WordSize)) }
	if rd(hdrMagic) != logMagic {
		return nil, ErrCorrupt
	}
	if rd(hdrCapacity) > maxPlausibleCapacity || rd(hdrMaxOps) > maxPlausibleOps {
		return nil, ErrCorrupt
	}
	l := &Log{
		pool: pool, pid: pid, base: base,
		capacity: int(rd(hdrCapacity)),
		slotW:    int(rd(hdrSlotW)),
		maxOps:   int(rd(hdrMaxOps)),
		headSeq:  rd(hdrHeadSeq),
	}
	if l.capacity < 1 || l.slotW < SlotWords(1) || l.maxOps < 1 ||
		l.slotW != slotWordsAligned(l.maxOps) {
		return nil, ErrCorrupt
	}
	if !pool.Contains(base, RegionBytes(l.capacity, l.maxOps)) {
		return nil, ErrCorrupt
	}
	recs := l.scan()
	l.nextSeq = l.headSeq + 1
	if n := len(recs); n > 0 {
		l.nextSeq = recs[n-1].Seq + 1
	}
	return l, nil
}

// Base returns the log's region address (stored in the pool root table by
// the construction so recovery can find it).
func (l *Log) Base() pmem.Addr { return l.base }

// Capacity returns the number of record slots.
func (l *Log) Capacity() int { return l.capacity }

// MaxOps returns the per-record operation bound.
func (l *Log) MaxOps() int { return l.maxOps }

// Len returns the number of live (non-truncated) records.
func (l *Log) Len() int { return int(l.nextSeq - 1 - l.headSeq) }

// NextSeq returns the sequence number the next append will use.
func (l *Log) NextSeq() uint64 { return l.nextSeq }

// HeadSeq returns the truncation point (records with seq <= HeadSeq are
// dead).
func (l *Log) HeadSeq() uint64 { return l.headSeq }

func (l *Log) slotAddr(seq uint64) pmem.Addr {
	slot := (seq - 1) % uint64(l.capacity)
	return l.base + pmem.Addr(hdrWords*pmem.WordSize) + pmem.Addr(slot*uint64(l.slotW)*pmem.WordSize)
}

// checksum is a 64-bit FNV-1a-style mix over record words. It only needs
// to make "a subset of this record's lines are stale" astronomically
// unlikely to verify, not to resist adversaries.
func checksum(words []uint64) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, w := range words {
		h ^= w
		h *= 0x100000001b3
		h ^= h >> 29
	}
	if h == 0 { // reserve 0 so an all-zero slot can never verify
		h = 1
	}
	return h
}

// Append durably records ops (ops[0] being the appender's own operation
// with the given execution index; ops[k] the helped operation with index
// execIdx-k) using exactly one persistent fence. It returns the record's
// sequence number.
func (l *Log) Append(ops []spec.Op, execIdx uint64) (uint64, error) {
	if len(ops) == 0 || len(ops) > l.maxOps {
		return 0, ErrTooMany
	}
	payload := l.encBuf[:0]
	for _, op := range ops {
		payload = op.Encode(payload)
	}
	l.encBuf = payload
	return l.appendRecord(KindOps, execIdx, payload)
}

// AppendSnapshot durably records a state snapshot taken at execution
// index execIdx (the state reflects operations 1..execIdx). The snapshot
// body is written to a ping-pong region; the record in the log points at
// it. One persistent fence covers both. Returns the record's sequence
// number.
func (l *Log) AppendSnapshot(state []uint64, execIdx uint64) (uint64, error) {
	// Ensure the target region (the one NOT referenced by the previous
	// snapshot) is large enough.
	k := l.snapNext
	if l.snapCap[k] < len(state) {
		need := len(state)
		if need < 64 {
			need = 64
		}
		need *= 2 // headroom to avoid frequent re-allocation
		a, err := l.pool.Alloc(need * pmem.WordSize)
		if err != nil {
			return 0, err
		}
		l.snapRegion[k], l.snapCap[k] = a, need
	}
	region := l.snapRegion[k]
	// Line-batched region write: one gate/lock/stat round per cache line
	// (the region is line-aligned by Alloc).
	l.pool.StoreRange(l.pid, region, state)
	// Flush the region lines now; the record's fence will cover them.
	l.flushRange(region, len(state)*pmem.WordSize)
	payload := []uint64{uint64(region), uint64(len(state)), checksum(state)}
	seq, err := l.appendRecord(KindSnapshot, execIdx, payload)
	if err == nil {
		l.snapNext = 1 - k
	}
	return seq, err
}

// flushRange issues (unordered, async) flushes for every line overlapping
// [addr, addr+size) WITHOUT fencing.
func (l *Log) flushRange(addr pmem.Addr, size int) {
	if size <= 0 {
		return
	}
	first := addr.Line()
	last := pmem.Addr(uint64(addr) + uint64(size) - 1).Line()
	for li := first; li <= last; li++ {
		l.pool.Flush(l.pid, pmem.Addr(li*pmem.LineSize))
	}
}

func (l *Log) appendRecord(kind int, execIdx uint64, payload []uint64) (uint64, error) {
	if int(l.nextSeq-1-l.headSeq) >= l.capacity {
		return 0, ErrFull
	}
	seq := l.nextSeq
	words := l.recBuf[:0]
	words = append(words, seq, uint64(kind)<<32|uint64(len(payload)), execIdx)
	words = append(words, payload...)
	words = append(words, checksum(words))
	l.recBuf = words
	addr := l.slotAddr(seq)
	// Record writes are line-batched: slots are line-aligned (see
	// slotWordsAligned), so each StoreLine inside costs one gate check,
	// one shard lock and one stat bump per cache line instead of one per
	// word. Durability is untouched — the lines stay volatile until the
	// flushes below and the single fence that follows.
	l.pool.StoreRange(l.pid, addr, words)
	l.flushRange(addr, len(words)*pmem.WordSize)
	// THE one persistent fence of this append (and, in the universal
	// construction, the one persistent fence of the whole update).
	l.pool.Fence(l.pid)
	l.nextSeq = seq + 1
	return seq, nil
}

// Truncate durably drops all records with seq <= upto (they must exist).
// It costs one persistent fence (the price of reclamation, measured by
// experiment E9).
func (l *Log) Truncate(upto uint64) error {
	if upto < l.headSeq || upto >= l.nextSeq {
		return fmt.Errorf("plog: truncate %d outside live range (%d, %d)", upto, l.headSeq, l.nextSeq-1)
	}
	if upto == l.headSeq {
		return nil
	}
	l.headSeq = upto
	a := l.base + pmem.Addr(hdrHeadSeq*pmem.WordSize)
	l.pool.Store(l.pid, a, upto)
	l.pool.Persist(l.pid, a, pmem.WordSize)
	return nil
}

// Record is one validated log record as seen by recovery.
type Record struct {
	Seq     uint64
	Kind    int
	ExecIdx uint64
	// Ops is populated for KindOps records: Ops[0] has index ExecIdx,
	// Ops[k] has index ExecIdx-k.
	Ops []spec.Op
	// State is populated for KindSnapshot records.
	State []uint64
}

// readSlot validates and decodes the record in the slot that seq maps to,
// requiring the stored seq to equal seq exactly.
func (l *Log) readSlot(seq uint64) (Record, bool) {
	addr := l.slotAddr(seq)
	rd := func(i int) uint64 { return l.pool.Load(l.pid, addr+pmem.Addr(i*pmem.WordSize)) }
	if rd(0) != seq {
		return Record{}, false
	}
	kn := rd(1)
	kind, plen := int(kn>>32), int(kn&0xffffffff)
	if (kind != KindOps && kind != KindSnapshot) || plen < 0 || 3+plen+1 > l.slotW {
		return Record{}, false
	}
	words := make([]uint64, 3+plen)
	for i := range words {
		words[i] = rd(i)
	}
	if rd(3+plen) != checksum(words) {
		return Record{}, false
	}
	rec := Record{Seq: seq, Kind: kind, ExecIdx: words[2]}
	switch kind {
	case KindOps:
		if plen%spec.OpWords != 0 {
			return Record{}, false
		}
		n := plen / spec.OpWords
		if n == 0 || n > l.maxOps {
			return Record{}, false
		}
		for k := 0; k < n; k++ {
			rec.Ops = append(rec.Ops, spec.DecodeOp(words[3+k*spec.OpWords:]))
		}
	case KindSnapshot:
		if plen != 3 {
			return Record{}, false
		}
		region, n, sum := pmem.Addr(words[3]), int(words[4]), words[5]
		// The pointer and length come from (possibly torn) NVM:
		// validate them before dereferencing.
		if n < 0 || n > (1<<28) || !l.pool.Contains(region, n*pmem.WordSize) {
			return Record{}, false
		}
		state := make([]uint64, n)
		for i := range state {
			state[i] = l.pool.Load(l.pid, region+pmem.Addr(i*pmem.WordSize))
		}
		if checksum(state) != sum {
			return Record{}, false // torn snapshot body: record never happened
		}
		rec.State = state
	}
	return rec, true
}

// scan returns the contiguous run of valid records starting at
// headSeq+1. A record can only be torn if it was the last append in
// flight at a crash (appends are sequential and each is fenced before
// the next), so validity is prefix-closed; scan stops at the first
// invalid slot.
func (l *Log) scan() []Record {
	var out []Record
	for seq := l.headSeq + 1; ; seq++ {
		if int(seq-1-l.headSeq) >= l.capacity {
			break // scanned every slot
		}
		rec, ok := l.readSlot(seq)
		if !ok {
			break
		}
		out = append(out, rec)
	}
	return out
}

// Records returns the live, validated records in sequence order. After a
// crash (Open), this is what survived; on a live log it reflects all
// appends so far.
func (l *Log) Records() []Record { return l.scan() }
