// Package plog implements the per-process persistent log of the paper
// (Section 4.1.1), in the style of Cohen, Friedman and Larus, "Efficient
// Logging in Non-volatile Memory by Exploiting Coherency Protocols"
// (OOPSLA 2017, reference [12] of the paper): each Append makes a record
// durable with exactly ONE persistent fence.
//
// Instead of the hardware coherency trick of [12] (which Go cannot
// express), torn records are made detectable by a per-record checksum:
// the record's lines are written, all of them are flushed (asynchronous,
// unordered — zero cost in the paper's model), and a single fence makes
// them durable together. If a crash interrupts the append, any subset of
// the record's cache lines may have reached NVM; the checksum fails and
// recovery treats the record as never appended. This preserves the
// property that matters to the paper — one persistent fence per append —
// while being implementable on the simulated NVM.
//
// # Two-tier slots
//
// A record must be able to hold the appender's whole fuzzy window, which
// is bounded only by MAX_PROCESSES (paper Proposition 5.2) — but is a
// handful of operations in any non-adversarial execution. Sizing every
// slot for the worst case makes 64-process logs cost 2.6KB per slot.
// The layout is therefore two-tier: each slot holds up to InlineOps()
// operations inline, and a record whose op count exceeds that budget
// spills its tail into a shared per-log overflow ring at the end of the
// region. The inline part then carries a descriptor {offset, words,
// checksum} for the tail; the record checksum covers the descriptor, so
// the tail is transitively covered — a torn overflow write fails the
// tail checksum and the record is treated as never appended, exactly as
// a torn inline record would be. Both tiers are flushed before the ONE
// fence of the append, so durability and recovery semantics are
// identical to the single-tier layout.
//
// Overflow chunks are claimed from a bump ring; a chunk is reusable once
// no live (non-truncated) record references it. The ring is sized at 1/8
// of the worst case (every slot spilling a full tail), so the region at
// 64 processes shrinks ~4.7x; a burst of deep fuzzy windows beyond that
// budget surfaces as ErrOvfFull (truncate/compact, then retry), never as
// corruption.
//
// Record layout (words), in a fixed-size inline slot:
//
//	[0] seq        monotonically increasing per log, 1-based
//	[1] kind<<32 | field (field: payload words, or total ops for
//	               overflow records)
//	[2] executionIndex
//	[3...] payload:
//	       ops record:      numOps operations, spec.OpWords words each;
//	                        ops[0] is the appender's own operation with
//	                        the given executionIndex, ops[k] is the
//	                        helped operation with index executionIndex-k
//	                        (paper Listing 1).
//	       overflow ops:    InlineOps() operations followed by the tail
//	                        descriptor {ovfOffsetWords, ovfWords,
//	                        ovfChecksum}; the remaining ops live at
//	                        overflow-ring offset ovfOffsetWords.
//	       snapshot record: {regionAddr, regionWords, regionChecksum}
//	[3+payload] checksum over words [0, 3+payload)
//
// Snapshot records implement the memory-reclamation extension of paper
// Section 8: a record points to a separately written state-snapshot
// region; the single fence of the append covers both the region's lines
// and the record's lines.
package plog

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/pmem"
	"repro/internal/spec"
)

// Record kinds.
const (
	KindOps      = 1 // a batch of operations (paper Listing 1)
	KindSnapshot = 2 // an object-state snapshot (paper Section 8)
	// kindOpsOvf is the wire kind of an ops record whose tail spilled
	// into the overflow ring. Decoded Records normalize it to KindOps
	// (with Overflow set), so readers never care about the split.
	kindOpsOvf = 3
	// KindDelta is a delta-chain compaction record (chain base or
	// delta; see chain.go): the same {addr, words, sum} inline payload
	// as a snapshot, pointing at a body whose frame back-references the
	// chain predecessor.
	KindDelta = 4
)

// Header layout (one cache line at the region base). The final word
// checksums the preceding seven, so a corrupted geometry word is caught
// even when it happens to describe a self-consistent layout. headSeq
// and the checksum are adjacent: Truncate rewrites exactly those two
// words in one StoreLine, which the simulated cache evicts all-or-
// nothing, so a crash can never expose a header whose checksum lags
// its head pointer.
const (
	hdrMagic     = 0 // word offsets within the header
	hdrCapacity  = 1
	hdrSlotW     = 2
	hdrMaxOps    = 3
	hdrInlineOps = 4
	hdrOvfWords  = 5
	hdrHeadSeq   = 6
	hdrSum       = 7
	hdrWords     = pmem.LineWords
)

const logMagic = 0x504c4f4721 // "PLOG!"

// DefaultInlineOps is the default per-slot inline op budget of the
// two-tier layout: the common-case fuzzy window (the appender's own op
// plus a few delayed neighbours). Records with more ops spill their
// tail to the overflow ring.
const DefaultInlineOps = 4

// ovfDescWords is the inline overflow descriptor: {offsetWords, words,
// checksum}.
const ovfDescWords = 3

// Errors.
var (
	ErrFull     = errors.New("plog: log full (truncate before appending more)")
	ErrOvfFull  = errors.New("plog: overflow ring full (truncate before appending more)")
	ErrTooMany  = errors.New("plog: too many operations for one record")
	ErrCorrupt  = errors.New("plog: corrupt log header")
	ErrSnapSize = errors.New("plog: snapshot larger than its region")
)

// ovfRef is one live overflow chunk: the record that owns it and the
// claimed span (offset and exact words; reuse rounds the end up to a
// whole line, matching allocation).
type ovfRef struct {
	seq   uint64
	off   int // words from the ring base, line-aligned
	words int // exact tail words
}

// Log is one process's persistent log inside a pmem.Pool. A Log is owned
// by a single process: Append/Truncate must not be called concurrently
// (per the paper, logs are per-process; recovery reads all of them).
type Log struct {
	pool *pmem.Pool
	pid  int
	base pmem.Addr

	capacity  int // slots
	slotW     int // words per inline slot (line-aligned)
	maxOps    int
	inlineOps int

	// Overflow ring geometry (derived from the header; zero-width when
	// the inline budget covers maxOps).
	ovfBase  pmem.Addr
	ovfWords int

	// Volatile overflow-ring state, rebuilt by Open from the live
	// records: the bump pointer and the chunks still referenced.
	ovfNext int
	ovfLive []ovfRef

	nextSeq uint64 // volatile mirrors; durable info is in records + header
	headSeq uint64

	// spills counts Appends refused with ErrOvfFull (volatile; feeds
	// the adaptive ring-growth trigger). Atomic: the owning process
	// bumps it on its append path while stats pollers (Instance.Pressure
	// serving a server's metrics endpoint) read it from other goroutines.
	spills atomic.Int64

	// Snapshot regions (ping-pong, so the previous snapshot stays intact
	// while the next one is written).
	snapRegion [2]pmem.Addr
	snapCap    [2]int // words
	snapNext   int

	// Delta-chain state (chain.go): the resolved live chain base-first,
	// the seq of its newest record (Truncate must not drop it), the
	// body-region free list and the body encoding scratch.
	chain     []chainLink
	chainSeq  uint64
	chainPool []chainRegion
	chainBuf  []uint64

	// Encoding scratch, reused across appends (a Log is owned by one
	// process, so appends never overlap): steady-state Append is
	// allocation-free once the buffers reach the record size.
	encBuf []uint64 // Append inline payload
	ovfBuf []uint64 // Append overflow tail
	recBuf []uint64 // appendRecord slot image
}

// normInline resolves an inline-budget request against maxOps: zero
// selects the default, and a budget at or above maxOps degenerates to
// the single-tier layout (everything inline, no overflow ring).
func normInline(maxOps, inlineOps int) int {
	if inlineOps == 0 {
		inlineOps = DefaultInlineOps
	}
	if inlineOps > maxOps {
		inlineOps = maxOps
	}
	return inlineOps
}

// alignLineWords rounds w up to whole cache lines.
func alignLineWords(w int) int {
	return (w + pmem.LineWords - 1) / pmem.LineWords * pmem.LineWords
}

// slotWordsInline returns the unaligned words per inline slot for the
// given geometry.
func slotWordsInline(maxOps, inlineOps int) int {
	var payload int
	if inlineOps >= maxOps {
		payload = maxOps * spec.OpWords
	} else {
		payload = inlineOps*spec.OpWords + ovfDescWords
	}
	if payload < 3 { // snapshot payload
		payload = 3
	}
	return 3 + payload + 1
}

// SlotWords returns the words per record slot of a single-tier layout
// holding up to maxOps operations inline — the slot formula when the
// inline budget covers maxOps, and the baseline the two-tier footprint
// is compared against.
func SlotWords(maxOps int) int {
	return slotWordsInline(maxOps, maxOps)
}

// ovfChunkWords is the worst-case overflow tail of one record
// (line-aligned, so chunks never share a line and a torn line damages
// at most one record).
func ovfChunkWords(maxOps, inlineOps int) int {
	if inlineOps >= maxOps {
		return 0
	}
	return alignLineWords((maxOps - inlineOps) * spec.OpWords)
}

// ovfRegionWords sizes the shared overflow ring: an eighth of the worst
// case (every live slot spilling a full tail), floored at four full
// chunks so tiny logs keep headroom for a burst of deep fuzzy windows.
func ovfRegionWords(capacity, maxOps, inlineOps int) int {
	chunk := ovfChunkWords(maxOps, inlineOps)
	if chunk == 0 {
		return 0
	}
	w := capacity * chunk / 8
	if min := 4 * chunk; w < min {
		w = min
	}
	return alignLineWords(w)
}

// RegionBytes returns the pool bytes needed for a log with the given
// geometry and the default inline budget (header line + capacity inline
// slots + the overflow ring, line-aligned).
func RegionBytes(capacity, maxOps int) int {
	return RegionBytesInline(capacity, maxOps, 0)
}

// RegionBytesInline is RegionBytes for an explicit inline op budget
// (0 = DefaultInlineOps; >= maxOps = single-tier).
func RegionBytesInline(capacity, maxOps, inlineOps int) int {
	inlineOps = normInline(maxOps, inlineOps)
	return RegionBytesRing(capacity, maxOps, inlineOps,
		ovfRegionWords(capacity, maxOps, inlineOps))
}

// RegionBytesRing is RegionBytesInline for an explicit overflow-ring
// budget in words (adaptive ring growth sizes replacement logs with
// it; ringWords below the formula floor is raised to it by
// CreateInlineRing before this is called).
func RegionBytesRing(capacity, maxOps, inlineOps, ringWords int) int {
	inlineOps = normInline(maxOps, inlineOps)
	slotBytes := alignLineWords(slotWordsInline(maxOps, inlineOps)) * pmem.WordSize
	return pmem.LineSize + capacity*slotBytes + ringWords*pmem.WordSize
}

// SingleTierRegionBytes returns the bytes the retired single-tier
// layout (every slot sized for the full maxOps window) would need.
// Kept as the footprint baseline for EXPERIMENTS.md and the benchmark
// artifact.
func SingleTierRegionBytes(capacity, maxOps int) int {
	slotBytes := alignLineWords(SlotWords(maxOps)) * pmem.WordSize
	return pmem.LineSize + capacity*slotBytes
}

// Create formats a new log for process pid at a freshly allocated region
// of pool and durably writes its header, using the default inline
// budget. capacity is the number of record slots; maxOps bounds
// operations per record (paper: MAX_PROCESSES).
func Create(pool *pmem.Pool, pid, capacity, maxOps int) (*Log, error) {
	return CreateInline(pool, pid, capacity, maxOps, 0)
}

// CreateInline is Create with an explicit inline op budget: records
// with at most inlineOps operations live entirely in their slot, larger
// records spill their tail to the overflow ring. inlineOps 0 selects
// DefaultInlineOps; inlineOps >= maxOps selects the single-tier layout.
func CreateInline(pool *pmem.Pool, pid, capacity, maxOps, inlineOps int) (*Log, error) {
	return CreateInlineRing(pool, pid, capacity, maxOps, inlineOps, 0)
}

// CreateInlineRing is CreateInline with an explicit overflow-ring
// budget in words (0 = the 1/8-worst-case formula). The formula floor
// is also the minimum: a smaller request is raised to it, so a ring
// can be grown but never starved. ringWords is rounded up to whole
// cache lines; it is ignored for single-tier layouts (which have no
// ring). Adaptive ring growth (core) allocates replacement logs
// through this.
func CreateInlineRing(pool *pmem.Pool, pid, capacity, maxOps, inlineOps, ringWords int) (*Log, error) {
	if capacity < 1 || maxOps < 1 || inlineOps < 0 || ringWords < 0 {
		return nil, fmt.Errorf("plog: bad geometry capacity=%d maxOps=%d inlineOps=%d ringWords=%d",
			capacity, maxOps, inlineOps, ringWords)
	}
	inlineOps = normInline(maxOps, inlineOps)
	if floor := ovfRegionWords(capacity, maxOps, inlineOps); ringWords < floor {
		ringWords = floor
	} else if floor == 0 {
		ringWords = 0 // single-tier: no ring, whatever was asked
	} else {
		ringWords = alignLineWords(ringWords)
	}
	base, err := pool.Alloc(RegionBytesRing(capacity, maxOps, inlineOps, ringWords))
	if err != nil {
		return nil, err
	}
	l := &Log{
		pool: pool, pid: pid, base: base,
		capacity: capacity, maxOps: maxOps, inlineOps: inlineOps,
		slotW:   alignLineWords(slotWordsInline(maxOps, inlineOps)),
		nextSeq: 1, headSeq: 0,
	}
	l.ovfWords = ringWords
	l.ovfBase = l.base + pmem.Addr(hdrWords*pmem.WordSize) +
		pmem.Addr(capacity*l.slotW*pmem.WordSize)
	hdr := l.headerImage(0)
	pool.StoreRange(pid, base, hdr[:])
	pool.Persist(pid, base, hdrWords*pmem.WordSize)
	return l, nil
}

// headerImage builds the durable header for the log's geometry with the
// given truncation point, including the trailing checksum.
func (l *Log) headerImage(headSeq uint64) [hdrWords]uint64 {
	var h [hdrWords]uint64
	h[hdrMagic] = logMagic
	h[hdrCapacity] = uint64(l.capacity)
	h[hdrSlotW] = uint64(l.slotW)
	h[hdrMaxOps] = uint64(l.maxOps)
	h[hdrInlineOps] = uint64(l.inlineOps)
	h[hdrOvfWords] = uint64(l.ovfWords)
	h[hdrHeadSeq] = headSeq
	h[hdrSum] = checksum(h[:hdrSum])
	return h
}

// Plausibility bounds on header geometry read from (possibly corrupt)
// NVM, checked before any arithmetic that could overflow or any slot
// address is dereferenced.
const (
	maxPlausibleCapacity = 1 << 31
	maxPlausibleOps      = 1 << 16
)

// Open attaches to an existing log region (after a crash). It scans the
// slots, validates records, and positions nextSeq after the last valid
// record. The owning pid of the reopened log may differ from the
// pre-crash one (crashed processes are replaced by new ones).
//
// Everything Open reads — the base pointer handed in (typically from a
// root slot) and the header geometry — is untrusted: a corrupted image
// must produce ErrCorrupt, never an out-of-bounds panic. The slot width
// and overflow-ring width are recomputed from (capacity, maxOps,
// inlineOps) and must match the stored words exactly, so a corrupted
// geometry cannot frame slots or overflow chunks at attacker-chosen
// addresses.
func Open(pool *pmem.Pool, pid int, base pmem.Addr) (*Log, error) {
	if !pool.Contains(base, hdrWords*pmem.WordSize) {
		return nil, ErrCorrupt
	}
	rd := func(i int) uint64 { return pool.Load(pid, base+pmem.Addr(i*pmem.WordSize)) }
	if rd(hdrMagic) != logMagic {
		return nil, ErrCorrupt
	}
	var hdr [hdrWords]uint64
	for i := range hdr {
		hdr[i] = rd(i)
	}
	if hdr[hdrSum] != checksum(hdr[:hdrSum]) {
		return nil, ErrCorrupt
	}
	if hdr[hdrCapacity] > maxPlausibleCapacity || hdr[hdrMaxOps] > maxPlausibleOps ||
		hdr[hdrInlineOps] > maxPlausibleOps || hdr[hdrSlotW] > maxPlausibleCapacity ||
		hdr[hdrOvfWords] > maxPlausibleCapacity {
		return nil, ErrCorrupt
	}
	l := &Log{
		pool: pool, pid: pid, base: base,
		capacity:  int(hdr[hdrCapacity]),
		slotW:     int(hdr[hdrSlotW]),
		maxOps:    int(hdr[hdrMaxOps]),
		inlineOps: int(hdr[hdrInlineOps]),
		ovfWords:  int(hdr[hdrOvfWords]),
		headSeq:   hdr[hdrHeadSeq],
	}
	if l.capacity < 1 || l.maxOps < 1 || l.inlineOps < 1 || l.inlineOps > l.maxOps {
		return nil, ErrCorrupt
	}
	if l.slotW != alignLineWords(slotWordsInline(l.maxOps, l.inlineOps)) {
		return nil, ErrCorrupt
	}
	// The ring width is a floor-checked budget, not an exact recompute:
	// adaptive growth creates logs with rings above the formula's 1/8
	// worst case (never below, and always whole lines). The header
	// checksum is what protects the stored width against corruption;
	// the bounds here keep even a checksum-colliding forgery inside the
	// allocated region.
	if floor := ovfRegionWords(l.capacity, l.maxOps, l.inlineOps); floor == 0 {
		if l.ovfWords != 0 {
			return nil, ErrCorrupt
		}
	} else if l.ovfWords < floor || l.ovfWords%pmem.LineWords != 0 {
		return nil, ErrCorrupt
	}
	if !pool.Contains(base, RegionBytesRing(l.capacity, l.maxOps, l.inlineOps, l.ovfWords)) {
		return nil, ErrCorrupt
	}
	l.ovfBase = l.base + pmem.Addr(hdrWords*pmem.WordSize) +
		pmem.Addr(l.capacity*l.slotW*pmem.WordSize)
	recs := l.scan()
	l.nextSeq = l.headSeq + 1
	if n := len(recs); n > 0 {
		l.nextSeq = recs[n-1].Seq + 1
	}
	// Rebuild the volatile overflow-ring state from the live records:
	// their chunks are in use, and the bump pointer resumes after the
	// newest one.
	for _, rec := range recs {
		if rec.Overflow {
			l.ovfLive = append(l.ovfLive, ovfRef{seq: rec.Seq, off: rec.ovfOff, words: rec.ovfLen})
			l.ovfNext = rec.ovfOff + alignLineWords(rec.ovfLen)
		}
	}
	// Rebuild the volatile delta-chain state from the newest live
	// KindDelta record, so a recovered log continues its chain instead
	// of forcing a fresh base.
	l.rebuildChain(recs)
	return l, nil
}

// Base returns the log's region address (stored in the pool root table by
// the construction so recovery can find it).
func (l *Log) Base() pmem.Addr { return l.base }

// Capacity returns the number of record slots.
func (l *Log) Capacity() int { return l.capacity }

// MaxOps returns the per-record operation bound.
func (l *Log) MaxOps() int { return l.maxOps }

// InlineOps returns the per-slot inline op budget; records with more
// operations spill their tail to the overflow ring.
func (l *Log) InlineOps() int { return l.inlineOps }

// OverflowRegion returns the overflow ring's base address and size in
// words (0 words for a single-tier log). Diagnostics and corruption
// tests use it; production code has no reason to.
func (l *Log) OverflowRegion() (pmem.Addr, int) { return l.ovfBase, l.ovfWords }

// RingWords returns the overflow ring budget in words (the adaptive
// sizing reads it to double on growth).
func (l *Log) RingWords() int { return l.ovfWords }

// Spills returns how many Appends have failed with ErrOvfFull over the
// log's lifetime — the observed spill rate adaptive ring sizing grows
// on.
func (l *Log) Spills() int { return int(l.spills.Load()) }

// Len returns the number of live (non-truncated) records.
func (l *Log) Len() int { return int(l.nextSeq - 1 - l.headSeq) }

// NextSeq returns the sequence number the next append will use.
func (l *Log) NextSeq() uint64 { return l.nextSeq }

// HeadSeq returns the truncation point (records with seq <= HeadSeq are
// dead).
func (l *Log) HeadSeq() uint64 { return l.headSeq }

// SlotRegion returns the byte address and length of the slot that
// holds sequence number seq — diagnostics and fault-plan targeting
// (tests aim media faults at specific records with it).
func (l *Log) SlotRegion(seq uint64) (pmem.Addr, int) {
	return l.slotAddr(seq), l.slotW * pmem.WordSize
}

func (l *Log) slotAddr(seq uint64) pmem.Addr {
	slot := (seq - 1) % uint64(l.capacity)
	return l.base + pmem.Addr(hdrWords*pmem.WordSize) + pmem.Addr(slot*uint64(l.slotW)*pmem.WordSize)
}

// checksum is a 64-bit FNV-1a-style mix over record words. It only needs
// to make "a subset of this record's lines are stale" astronomically
// unlikely to verify, not to resist adversaries.
func checksum(words []uint64) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, w := range words {
		h ^= w
		h *= 0x100000001b3
		h ^= h >> 29
	}
	if h == 0 { // reserve 0 so an all-zero slot can never verify
		h = 1
	}
	return h
}

// claimOvf reserves words from the overflow ring for the record about
// to be appended, returning the line-aligned offset. It tries the bump
// pointer first (the steady-state hit), then the ring base and the
// position after each live chunk — every maximal free gap starts at
// one of those — so it fails only when no gap fits the tail: the ring
// equivalent of ErrFull.
func (l *Log) claimOvf(words int) (int, bool) {
	n := alignLineWords(words)
	fits := func(start int) bool {
		if start < 0 || start+n > l.ovfWords {
			return false
		}
		for _, r := range l.ovfLive {
			rEnd := r.off + alignLineWords(r.words)
			if start < rEnd && r.off < start+n {
				return false
			}
		}
		return true
	}
	if fits(l.ovfNext) {
		return l.ovfNext, true
	}
	if fits(0) {
		return 0, true
	}
	for _, r := range l.ovfLive {
		if s := r.off + alignLineWords(r.words); fits(s) {
			return s, true
		}
	}
	return 0, false
}

// Append durably records ops (ops[0] being the appender's own operation
// with the given execution index; ops[k] the helped operation with index
// execIdx-k) using exactly one persistent fence — for inline records and
// for records that spill to the overflow ring alike. It returns the
// record's sequence number.
func (l *Log) Append(ops []spec.Op, execIdx uint64) (uint64, error) {
	if len(ops) == 0 || len(ops) > l.maxOps {
		return 0, ErrTooMany
	}
	payload := l.encBuf[:0]
	if len(ops) <= l.inlineOps {
		for _, op := range ops {
			payload = op.Encode(payload)
		}
		l.encBuf = payload
		return l.appendRecord(KindOps, uint64(len(payload)), execIdx, payload)
	}
	// Two-tier: the tail beyond the inline budget goes to the overflow
	// ring. Claim a chunk, write and flush it (NOT fenced yet), then
	// append the inline record whose single fence covers both tiers.
	if int(l.nextSeq-1-l.headSeq) >= l.capacity {
		return 0, ErrFull
	}
	tail := l.ovfBuf[:0]
	for _, op := range ops[l.inlineOps:] {
		tail = op.Encode(tail)
	}
	l.ovfBuf = tail
	off, ok := l.claimOvf(len(tail))
	if !ok {
		l.spills.Add(1)
		return 0, ErrOvfFull
	}
	addr := l.ovfBase + pmem.Addr(off*pmem.WordSize)
	l.pool.StoreRange(l.pid, addr, tail)
	l.pool.FlushRange(l.pid, addr, len(tail)*pmem.WordSize)
	for _, op := range ops[:l.inlineOps] {
		payload = op.Encode(payload)
	}
	payload = append(payload, uint64(off), uint64(len(tail)), checksum(tail))
	l.encBuf = payload
	seq, err := l.appendRecord(kindOpsOvf, uint64(len(ops)), execIdx, payload)
	if err == nil {
		l.ovfLive = append(l.ovfLive, ovfRef{seq: seq, off: off, words: len(tail)})
		l.ovfNext = off + alignLineWords(len(tail))
	}
	return seq, err
}

// AppendSnapshot durably records a state snapshot taken at execution
// index execIdx (the state reflects operations 1..execIdx). The snapshot
// body is written to a ping-pong region; the record in the log points at
// it. One persistent fence covers both. Returns the record's sequence
// number.
func (l *Log) AppendSnapshot(state []uint64, execIdx uint64) (uint64, error) {
	// Ensure the target region (the one NOT referenced by the previous
	// snapshot) is large enough.
	k := l.snapNext
	if l.snapCap[k] < len(state) {
		need := len(state)
		if need < 64 {
			need = 64
		}
		need *= 2 // headroom to avoid frequent re-allocation
		a, err := l.pool.Alloc(need * pmem.WordSize)
		if err != nil {
			return 0, err
		}
		l.snapRegion[k], l.snapCap[k] = a, need
	}
	region := l.snapRegion[k]
	// Line-batched region write: one gate/lock/stat round per cache line
	// (the region is line-aligned by Alloc).
	l.pool.StoreRange(l.pid, region, state)
	// Flush the region lines now; the record's fence will cover them.
	l.pool.FlushRange(l.pid, region, len(state)*pmem.WordSize)
	payload := []uint64{uint64(region), uint64(len(state)), checksum(state)}
	seq, err := l.appendRecord(KindSnapshot, uint64(len(payload)), execIdx, payload)
	if err == nil {
		l.snapNext = 1 - k
		// A fenced full snapshot supersedes any live delta chain: its
		// body regions become reusable and the next delta cut must
		// start a fresh base.
		l.releaseChain()
		l.chainSeq = 0
	}
	return seq, err
}

// appendRecord writes the inline slot image [seq, kind<<32|field,
// execIdx, payload..., checksum] and makes it durable with THE one
// persistent fence of the append (which also covers any overflow or
// snapshot lines flushed by the caller beforehand).
func (l *Log) appendRecord(kind int, field, execIdx uint64, payload []uint64) (uint64, error) {
	if int(l.nextSeq-1-l.headSeq) >= l.capacity {
		return 0, ErrFull
	}
	seq := l.nextSeq
	words := l.recBuf[:0]
	words = append(words, seq, uint64(kind)<<32|field, execIdx)
	words = append(words, payload...)
	words = append(words, checksum(words))
	l.recBuf = words
	addr := l.slotAddr(seq)
	// Record writes are line-batched: slots are line-aligned, so each
	// StoreLine inside costs one gate check, one shard lock and one stat
	// bump per cache line instead of one per word. Durability is
	// untouched — the lines stay volatile until the flushes below and
	// the single fence that follows.
	l.pool.StoreRange(l.pid, addr, words)
	l.pool.FlushRange(l.pid, addr, len(words)*pmem.WordSize)
	// THE one persistent fence of this append (and, in the universal
	// construction, the one persistent fence of the whole update).
	l.pool.Fence(l.pid)
	l.nextSeq = seq + 1
	return seq, nil
}

// Truncate durably drops all records with seq <= upto (they must exist).
// It costs one persistent fence (the price of reclamation, measured by
// experiment E9). Overflow chunks owned by dropped records become
// reusable.
func (l *Log) Truncate(upto uint64) error {
	if upto < l.headSeq || upto >= l.nextSeq {
		return fmt.Errorf("plog: truncate %d outside live range (%d, %d)", upto, l.headSeq, l.nextSeq-1)
	}
	if len(l.chain) > 0 && upto >= l.chainSeq {
		// Dropping the newest chain record would orphan the whole chain
		// (its base is only reachable through that record's body).
		return fmt.Errorf("plog: truncate %d would orphan the delta chain at seq %d", upto, l.chainSeq)
	}
	if upto == l.headSeq {
		return nil
	}
	l.headSeq = upto
	keep := l.ovfLive[:0]
	for _, r := range l.ovfLive {
		if r.seq > upto {
			keep = append(keep, r)
		}
	}
	l.ovfLive = keep
	// Rewrite headSeq and the header checksum together: they are
	// adjacent words of one line, so the single StoreRange below is one
	// StoreLine — evicted and persisted all-or-nothing.
	img := l.headerImage(upto)
	a := l.base + pmem.Addr(hdrHeadSeq*pmem.WordSize)
	l.pool.StoreRange(l.pid, a, img[hdrHeadSeq:])
	l.pool.Persist(l.pid, a, 2*pmem.WordSize)
	return nil
}

// Record is one validated log record as seen by recovery.
type Record struct {
	Seq     uint64
	Kind    int
	ExecIdx uint64
	// Ops is populated for KindOps records: Ops[0] has index ExecIdx,
	// Ops[k] has index ExecIdx-k.
	Ops []spec.Op
	// State is populated for KindSnapshot records.
	State []uint64
	// Body is populated for KindDelta records: the validated chain body
	// (frame + payload; see chain.go). ChainBase and DeltaPayload
	// decode it.
	Body []uint64
	// Overflow reports that the record's tail lived in the overflow
	// ring (the decoded Ops are complete either way).
	Overflow bool

	ovfOff, ovfLen int       // claimed span, when Overflow
	bodyAddr       pmem.Addr // chain body address, when KindDelta
}

// ChainBase reports whether a KindDelta record is a chain base (a full
// snapshot) rather than a delta.
func (r *Record) ChainBase() bool {
	return r.Kind == KindDelta && len(r.Body) > cbKind && r.Body[cbKind] == chainBodyBase
}

// DeltaPayload returns the caller payload of a KindDelta record's body
// (the chain frame stripped).
func (r *Record) DeltaPayload() []uint64 {
	if r.Kind != KindDelta || len(r.Body) < cbHdrWords {
		return nil
	}
	return r.Body[cbHdrWords:]
}

// ChainBody returns the record's body region as (address, words) and
// whether the record is a chain record at all — corruption tests aim
// media faults at specific chain bodies with it.
func (r *Record) ChainBody() (pmem.Addr, int, bool) {
	if r.Kind != KindDelta {
		return 0, 0, false
	}
	return r.bodyAddr, len(r.Body), true
}

// OverflowSpan returns the record's overflow chunk as (offset, words)
// within the log's overflow ring, and whether the record spilled at
// all. Corruption tests use it to aim at a specific chunk.
func (r *Record) OverflowSpan() (off, words int, ok bool) {
	return r.ovfOff, r.ovfLen, r.Overflow
}

// SlotStatus classifies what a slot probe found. The distinction that
// matters to salvage and the scrubber: SlotStale slots hold no record
// for the probed sequence number (never written this wrap, or the seq
// word itself was destroyed), while the SlotBad* statuses mean a record
// WITH the probed sequence number is present but fails validation —
// i.e. an append of that very seq was torn by a crash or the fenced
// record was damaged by a media fault afterwards.
type SlotStatus int

const (
	// SlotOK: the record decoded and every checksum verified.
	SlotOK SlotStatus = iota
	// SlotStale: the stored seq differs from the probed one.
	SlotStale
	// SlotBad: right seq, but the inline image is invalid (bad kind or
	// payload geometry, or the record checksum fails).
	SlotBad
	// SlotBadOvf: the inline image verified but the overflow tail it
	// points at fails its descriptor bounds or tail checksum.
	SlotBadOvf
	// SlotBadSnap: a snapshot record verified inline but its state
	// region pointer is out of bounds or the body checksum fails.
	SlotBadSnap
	// SlotBadDelta: a delta-chain record verified inline but its body
	// pointer is out of bounds, the body checksum fails, or the body
	// frame is malformed. (Chain PREDECESSOR damage is not a slot
	// status: it surfaces when the chain is resolved.)
	SlotBadDelta
)

func (s SlotStatus) String() string {
	switch s {
	case SlotOK:
		return "ok"
	case SlotStale:
		return "stale"
	case SlotBad:
		return "bad"
	case SlotBadOvf:
		return "bad-overflow"
	case SlotBadSnap:
		return "bad-snapshot"
	case SlotBadDelta:
		return "bad-delta"
	}
	return "unknown"
}

// wordReader reads one word at an absolute pool address. Recovery
// probes through the cache (pool.Load — after a crash the cache is
// empty, so that IS the durable image); the scrubber probes with
// pool.DurableWord, bypassing the cache entirely, so it sees latent
// faults that resident lines still mask and costs no gate steps, no
// statistics and no fences — it cannot perturb the pfences/op counts
// the paper bounds.
type wordReader func(pmem.Addr) uint64

func (l *Log) cachedReader() wordReader {
	return func(a pmem.Addr) uint64 { return l.pool.Load(l.pid, a) }
}

func (l *Log) durableReader() wordReader {
	return func(a pmem.Addr) uint64 { return l.pool.DurableWord(a) }
}

// readSlot validates and decodes the record in the slot that seq maps
// to, through the cache (the production recovery path).
func (l *Log) readSlot(seq uint64) (Record, bool) {
	rec, st := l.probeSlot(seq, l.cachedReader())
	return rec, st == SlotOK
}

// probeSlot validates and decodes the record in the slot that seq maps
// to, requiring the stored seq to equal seq exactly, and classifies
// the failure mode otherwise. Every word it consumes — the kind/field
// word, overflow descriptors, snapshot pointers — comes from (possibly
// torn or corrupted) NVM and is validated before use.
func (l *Log) probeSlot(seq uint64, rd wordReader) (Record, SlotStatus) {
	addr := l.slotAddr(seq)
	rdw := func(i int) uint64 { return rd(addr + pmem.Addr(i*pmem.WordSize)) }
	if rdw(0) != seq {
		return Record{}, SlotStale
	}
	kn := rdw(1)
	kind, field := int(kn>>32), int(kn&0xffffffff)
	var plen, nops int
	switch kind {
	case KindOps:
		plen = field
		if plen <= 0 || plen%spec.OpWords != 0 {
			return Record{}, SlotBad
		}
		nops = plen / spec.OpWords
		if nops > l.inlineOps || nops > l.maxOps {
			return Record{}, SlotBad
		}
	case kindOpsOvf:
		nops = field
		if nops <= l.inlineOps || nops > l.maxOps {
			return Record{}, SlotBad
		}
		plen = l.inlineOps*spec.OpWords + ovfDescWords
	case KindSnapshot, KindDelta:
		plen = field
		if plen != 3 {
			return Record{}, SlotBad
		}
	default:
		return Record{}, SlotBad
	}
	if 3+plen+1 > l.slotW {
		return Record{}, SlotBad
	}
	words := make([]uint64, 3+plen)
	for i := range words {
		words[i] = rdw(i)
	}
	if rdw(3+plen) != checksum(words) {
		return Record{}, SlotBad
	}
	rec := Record{Seq: seq, Kind: kind, ExecIdx: words[2]}
	switch kind {
	case KindOps:
		for k := 0; k < nops; k++ {
			rec.Ops = append(rec.Ops, spec.DecodeOp(words[3+k*spec.OpWords:]))
		}
	case kindOpsOvf:
		// The descriptor is covered by the record checksum, but its
		// values are still untrusted geometry: the offset must frame a
		// chunk inside the ring and the length is fixed by the op count.
		d := words[3+l.inlineOps*spec.OpWords:]
		off64, olen64, sum := d[0], d[1], d[2]
		wantLen := (nops - l.inlineOps) * spec.OpWords
		if olen64 != uint64(wantLen) || off64 > uint64(l.ovfWords) {
			return Record{}, SlotBadOvf
		}
		off := int(off64)
		if off%pmem.LineWords != 0 || off+wantLen > l.ovfWords {
			return Record{}, SlotBadOvf
		}
		tail := make([]uint64, wantLen)
		for i := range tail {
			tail[i] = rd(l.ovfBase + pmem.Addr((off+i)*pmem.WordSize))
		}
		if checksum(tail) != sum {
			return Record{}, SlotBadOvf // torn overflow tail: record never appended
		}
		for k := 0; k < l.inlineOps; k++ {
			rec.Ops = append(rec.Ops, spec.DecodeOp(words[3+k*spec.OpWords:]))
		}
		for k := 0; k < nops-l.inlineOps; k++ {
			rec.Ops = append(rec.Ops, spec.DecodeOp(tail[k*spec.OpWords:]))
		}
		rec.Kind = KindOps
		rec.Overflow = true
		rec.ovfOff, rec.ovfLen = off, wantLen
	case KindSnapshot:
		region, n, sum := pmem.Addr(words[3]), int(words[4]), words[5]
		// The pointer and length come from (possibly torn) NVM:
		// validate them before dereferencing.
		if n < 0 || n > (1<<28) || !l.pool.Contains(region, n*pmem.WordSize) {
			return Record{}, SlotBadSnap
		}
		state := make([]uint64, n)
		for i := range state {
			state[i] = rd(region + pmem.Addr(i*pmem.WordSize))
		}
		if checksum(state) != sum {
			return Record{}, SlotBadSnap // torn snapshot body: record never happened
		}
		rec.State = state
	case KindDelta:
		region, n, sum := pmem.Addr(words[3]), int(words[4]), words[5]
		// Same untrusted-pointer discipline as snapshots, plus the chain
		// frame invariants: a valid body kind and an execIdx matching the
		// record's. Predecessor damage is NOT probed here — it surfaces
		// when the chain is resolved.
		if n < cbHdrWords+1 || n > (1<<28) || !l.pool.Contains(region, n*pmem.WordSize) {
			return Record{}, SlotBadDelta
		}
		body := make([]uint64, n)
		for i := range body {
			body[i] = rd(region + pmem.Addr(i*pmem.WordSize))
		}
		if checksum(body) != sum {
			return Record{}, SlotBadDelta // torn chain body: record never appended
		}
		if body[cbKind] > chainBodyDelta || body[cbExec] != words[2] {
			return Record{}, SlotBadDelta
		}
		rec.Body = body
		rec.bodyAddr = region
	}
	return rec, SlotOK
}

// scan returns the contiguous run of valid records starting at
// headSeq+1. A record can only be torn if it was the last append in
// flight at a crash (appends are sequential and each is fenced before
// the next), so validity is prefix-closed; scan stops at the first
// invalid slot.
func (l *Log) scan() []Record {
	var out []Record
	for seq := l.headSeq + 1; ; seq++ {
		if int(seq-1-l.headSeq) >= l.capacity {
			break // scanned every slot
		}
		rec, ok := l.readSlot(seq)
		if !ok {
			break
		}
		out = append(out, rec)
	}
	return out
}

// Records returns the live, validated records in sequence order. After a
// crash (Open), this is what survived; on a live log it reflects all
// appends so far.
func (l *Log) Records() []Record { return l.scan() }

// Salvage is the result of a full-slot walk: the longest valid prefix,
// plus everything provably intact beyond the first damage. Orphan
// records verified their checksums, so their contents are exactly what
// was appended — recovery can use their operations to bridge gaps the
// damage opened (another process may have helped-persisted the missing
// indices).
type Salvage struct {
	// Live is the contiguous valid prefix from headSeq+1 — what the
	// strict scan returns.
	Live []Record
	// Orphans are valid records found beyond the first non-OK slot.
	Orphans []Record
	// BadSeqs lists the sequence numbers whose slot held a same-seq
	// record that failed validation (status SlotBad/SlotBadOvf/
	// SlotBadSnap/SlotBadDelta), in probe order. Stale slots are not
	// damage.
	BadSeqs []uint64
	// FirstBadStatus is the status of the first non-OK, non-final slot
	// probe (SlotStale when the walk simply ran off the appended end).
	FirstBadStatus SlotStatus
	// LastValid is the highest sequence number that probed SlotOK
	// (headSeq when none did).
	LastValid uint64
}

// BenignTear reports whether the damage picture is indistinguishable
// from an ordinary crash mid-append: exactly one invalid same-seq
// record, sitting at the very next sequence number after the last
// valid one, with nothing beyond it. Recovery treats that record as
// never appended (the paper's torn-record rule); anything else is
// media damage.
func (s *Salvage) BenignTear() bool {
	return len(s.Orphans) == 0 && len(s.BadSeqs) == 1 && s.BadSeqs[0] == s.LastValid+1
}

// TailTorn reports whether every invalid record sits beyond the last
// valid one with no orphans after — the shape under which lost
// records (if any) can only be the log owner's trailing appends. The
// fault harness uses it to decide whether an oracle mismatch is
// explainable as absorbed tail loss.
func (s *Salvage) TailTorn() bool {
	if len(s.BadSeqs) == 0 || len(s.Orphans) != 0 {
		return false
	}
	for _, b := range s.BadSeqs {
		if b <= s.LastValid {
			return false
		}
	}
	return true
}

// Damaged reports any non-benign invalid slot or orphaned record —
// evidence a fenced record was corrupted after the fact.
func (s *Salvage) Damaged() bool {
	return len(s.Orphans) > 0 || (len(s.BadSeqs) > 0 && !s.BenignTear())
}

// SalvageScan probes every live slot (headSeq+1 up to capacity) and
// classifies what it finds, reading through the cache like recovery
// does. Unlike scan it does not stop at the first invalid slot: valid
// records beyond the damage are collected as orphans.
func (l *Log) SalvageScan() Salvage {
	return l.salvageWalk(l.cachedReader())
}

func (l *Log) salvageWalk(rd wordReader) Salvage {
	s := Salvage{LastValid: l.headSeq}
	sawBad := false
	for seq := l.headSeq + 1; int(seq-1-l.headSeq) < l.capacity; seq++ {
		rec, st := l.probeSlot(seq, rd)
		switch st {
		case SlotOK:
			if !sawBad {
				s.Live = append(s.Live, rec)
			} else {
				s.Orphans = append(s.Orphans, rec)
			}
			s.LastValid = seq
			continue
		case SlotBad, SlotBadOvf, SlotBadSnap, SlotBadDelta:
			s.BadSeqs = append(s.BadSeqs, seq)
		}
		if !sawBad {
			s.FirstBadStatus = st
			sawBad = true
		}
	}
	return s
}

// ScrubResult summarizes one scrubber pass over the log's durable
// image.
type ScrubResult struct {
	HeaderOK    bool // durable header magic, checksum and geometry verify
	SlotsProbed int
	LiveOK      int      // valid records (prefix + orphans)
	BadSlots    []uint64 // seqs of invalid same-seq records (latent faults)
	Orphans     int      // valid records stranded beyond damage
	// BenignTear mirrors Salvage.BenignTear for the walk: a single
	// invalid record at the append frontier is what an interrupted
	// append leaves and is not latent corruption.
	BenignTear bool
	// ChainBad reports a delta-chain record (live or orphaned) whose
	// chain did not resolve in the durable image — a back-reference out
	// of bounds or a predecessor body whose checksum no longer matches
	// the reference that pins it. The head record itself probed OK, so
	// this is latent damage only chain resolution can see.
	ChainBad bool
}

// Faulty reports whether the scrub found anything a future recovery
// could stumble on: a damaged header, orphaned records, or invalid
// records that are not explainable as one torn in-flight append.
func (r *ScrubResult) Faulty() bool {
	return !r.HeaderOK || r.ChainBad || r.Orphans > 0 ||
		(len(r.BadSlots) > 0 && !r.BenignTear)
}

// Scrub walks the log's slots, overflow chunks and snapshot regions in
// the DURABLE image (cache bypassed), verifying every checksum — the
// latent-corruption detector. It performs no stores, no flushes and no
// fences, and bumps no gate or statistics counters, so it is invisible
// to the paper's cost accounting; run it from a quiescent moment (or
// accept that a concurrent in-flight append probes as a benign tear).
func (l *Log) Scrub() ScrubResult {
	var res ScrubResult
	res.SlotsProbed = l.capacity
	// Header: recompute the checksum over the durable words and check
	// the geometry against the opened log's.
	var hdr [hdrWords]uint64
	for i := range hdr {
		hdr[i] = l.pool.DurableWord(l.base + pmem.Addr(i*pmem.WordSize))
	}
	res.HeaderOK = hdr[hdrMagic] == logMagic &&
		hdr[hdrSum] == checksum(hdr[:hdrSum]) &&
		int(hdr[hdrCapacity]) == l.capacity &&
		int(hdr[hdrSlotW]) == l.slotW &&
		int(hdr[hdrMaxOps]) == l.maxOps &&
		int(hdr[hdrInlineOps]) == l.inlineOps &&
		int(hdr[hdrOvfWords]) == l.ovfWords
	// The durable headSeq may trail the volatile one only if a Truncate
	// is in flight; on a quiescent log they agree and the walk below
	// covers exactly the live slots.
	s := l.salvageWalk(l.durableReader())
	res.LiveOK = len(s.Live) + len(s.Orphans)
	res.Orphans = len(s.Orphans)
	res.BadSlots = s.BadSeqs
	res.BenignTear = s.BenignTear()
	// Delta chains: the newest chain record of each group probes OK on
	// its own, but its predecessors are only reachable through body
	// back-references — resolve them against the durable image too.
	for _, recs := range [][]Record{s.Live, s.Orphans} {
		for i := len(recs) - 1; i >= 0; i-- {
			if recs[i].Kind != KindDelta {
				continue
			}
			if _, _, err := l.resolveLinks(recs[i], l.durableReader()); err != nil {
				res.ChainBad = true
			}
			break // only the newest chain record per group is live
		}
	}
	return res
}
