package plog

import (
	"testing"

	"repro/internal/pmem"
	"repro/internal/spec"
)

// buildChain appends a base at execIdx b and one delta per element of
// idxs, each with a distinct payload derived from its execIdx.
func buildChain(t *testing.T, l *Log, b uint64, idxs ...uint64) {
	t.Helper()
	if _, err := l.AppendChainBase(chainPayload(b), b); err != nil {
		t.Fatalf("AppendChainBase(%d): %v", b, err)
	}
	for _, ix := range idxs {
		if _, err := l.AppendDelta(chainPayload(ix), ix); err != nil {
			t.Fatalf("AppendDelta(%d): %v", ix, err)
		}
	}
}

func chainPayload(ix uint64) []uint64 {
	return []uint64{ix * 3, ix * 5, ix * 7}
}

func newestDelta(t *testing.T, l *Log) Record {
	t.Helper()
	recs := l.Records()
	for i := len(recs) - 1; i >= 0; i-- {
		if recs[i].Kind == KindDelta {
			return recs[i]
		}
	}
	t.Fatal("no delta record live")
	return Record{}
}

func TestChainAppendResolveRoundTrip(t *testing.T) {
	_, l := newLog(t, 64, 4)
	buildChain(t, l, 10, 20, 30, 40)
	if got := l.ChainLen(); got != 4 {
		t.Fatalf("ChainLen=%d want 4", got)
	}
	if got := l.ChainHead(); got != 40 {
		t.Fatalf("ChainHead=%d want 40", got)
	}
	if got := l.ChainDeltaWords(); got != 9 {
		t.Fatalf("ChainDeltaWords=%d want 9", got)
	}
	elems, err := l.ResolveChain(newestDelta(t, l))
	if err != nil {
		t.Fatalf("ResolveChain: %v", err)
	}
	want := []uint64{10, 20, 30, 40}
	if len(elems) != len(want) {
		t.Fatalf("resolved %d elems, want %d", len(elems), len(want))
	}
	for i, e := range elems {
		if e.ExecIdx != want[i] {
			t.Fatalf("elem %d: execIdx %d want %d", i, e.ExecIdx, want[i])
		}
		if e.Base != (i == 0) {
			t.Fatalf("elem %d: base=%v", i, e.Base)
		}
		p := chainPayload(want[i])
		if len(e.Payload) != len(p) {
			t.Fatalf("elem %d: %d payload words, want %d", i, len(e.Payload), len(p))
		}
		for k := range p {
			if e.Payload[k] != p[k] {
				t.Fatalf("elem %d word %d: %d want %d", i, k, e.Payload[k], p[k])
			}
		}
	}
}

func TestChainAppendsUseExactlyOnePersistentFence(t *testing.T) {
	pool, l := newLog(t, 64, 4)
	pool.ResetStats()
	if _, err := l.AppendChainBase(chainPayload(1), 1); err != nil {
		t.Fatal(err)
	}
	if st := pool.StatsOf(0); st.PersistentFences != 1 || st.Fences != 0 {
		t.Fatalf("base append: %d pfences + %d fences, want 1 + 0",
			st.PersistentFences, st.Fences)
	}
	pool.ResetStats()
	if _, err := l.AppendDelta(chainPayload(2), 2); err != nil {
		t.Fatal(err)
	}
	if st := pool.StatsOf(0); st.PersistentFences != 1 || st.Fences != 0 {
		t.Fatalf("delta append: %d pfences + %d fences, want 1 + 0",
			st.PersistentFences, st.Fences)
	}
}

func TestAppendDeltaRequiresLiveChain(t *testing.T) {
	_, l := newLog(t, 64, 4)
	if _, err := l.AppendDelta(chainPayload(1), 1); err == nil {
		t.Fatal("AppendDelta without a base succeeded")
	}
	buildChain(t, l, 10, 20)
	// Non-advancing execIdx must be rejected.
	if _, err := l.AppendDelta(chainPayload(20), 20); err == nil {
		t.Fatal("AppendDelta at the chain head index succeeded")
	}
	if _, err := l.AppendDelta(chainPayload(15), 15); err == nil {
		t.Fatal("AppendDelta behind the chain head succeeded")
	}
}

func TestChainSurvivesCrashAndReopen(t *testing.T) {
	pool, l := newLog(t, 64, 4)
	for i := 1; i <= 6; i++ {
		if _, err := l.Append([]spec.Op{op(uint64(i), uint64(i))}, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	buildChain(t, l, 6, 8, 10)
	// Delta cuts truncate fully: the chain stays reachable through body
	// back-references alone.
	if err := l.Truncate(l.NextSeq() - 2); err != nil {
		t.Fatalf("Truncate below chain head: %v", err)
	}
	base := l.Base()
	pool.Crash(pmem.DropAll)
	l2, err := Open(pool, 1, base)
	if err != nil {
		t.Fatal(err)
	}
	if got := l2.ChainLen(); got != 3 {
		t.Fatalf("reopened ChainLen=%d want 3", got)
	}
	if got := l2.ChainHead(); got != 10 {
		t.Fatalf("reopened ChainHead=%d want 10", got)
	}
	elems, err := l2.ResolveChain(newestDelta(t, l2))
	if err != nil {
		t.Fatalf("ResolveChain after reopen: %v", err)
	}
	if len(elems) != 3 || !elems[0].Base || elems[2].ExecIdx != 10 {
		t.Fatalf("reopened chain resolved wrong: %+v", elems)
	}
	// The chain keeps extending after recovery.
	if _, err := l2.AppendDelta(chainPayload(12), 12); err != nil {
		t.Fatalf("AppendDelta after reopen: %v", err)
	}
	if got := l2.ChainLen(); got != 4 {
		t.Fatalf("post-reopen extend: ChainLen=%d want 4", got)
	}
}

func TestTruncateRefusesToOrphanChain(t *testing.T) {
	_, l := newLog(t, 64, 4)
	for i := 1; i <= 4; i++ {
		if _, err := l.Append([]spec.Op{op(uint64(i), uint64(i))}, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	buildChain(t, l, 4, 6)
	head := l.NextSeq() - 1 // the newest delta's seq
	if err := l.Truncate(head); err == nil {
		t.Fatal("Truncate at the chain record succeeded")
	}
	if err := l.Truncate(head - 1); err != nil {
		t.Fatalf("Truncate below the chain record: %v", err)
	}
	if l.ChainLen() != 2 {
		t.Fatalf("truncate disturbed the chain: len=%d", l.ChainLen())
	}
}

func TestAppendSnapshotSupersedesChain(t *testing.T) {
	_, l := newLog(t, 64, 4)
	buildChain(t, l, 2, 4, 6)
	if _, err := l.AppendSnapshot([]uint64{1, 2, 3}, 8); err != nil {
		t.Fatal(err)
	}
	if got := l.ChainLen(); got != 0 {
		t.Fatalf("chain survived a full snapshot: len=%d", got)
	}
	if got := l.ChainHead(); got != 0 {
		t.Fatalf("ChainHead=%d after supersede, want 0", got)
	}
	// The superseded regions are reusable now.
	if len(l.chainPool) == 0 {
		t.Fatal("superseded chain regions were not recycled")
	}
}

func TestChainBaseRecyclesOldRegions(t *testing.T) {
	_, l := newLog(t, 256, 4)
	buildChain(t, l, 2, 4, 6)
	oldAddrs := map[pmem.Addr]bool{}
	for _, c := range l.chain {
		oldAddrs[c.addr] = true
	}
	// A fresh base supersedes the chain; its regions go to the free list
	// and subsequent cuts of similar size reuse them instead of growing
	// the pool.
	buildChain(t, l, 8, 10, 12)
	reused := 0
	for _, c := range l.chain {
		if oldAddrs[c.addr] {
			reused++
		}
	}
	if reused == 0 {
		t.Fatal("no region of the superseded chain was reused")
	}
}

func TestCrashBetweenBaseAndFirstDelta(t *testing.T) {
	pool, l := newLog(t, 64, 4)
	if _, err := l.AppendChainBase(chainPayload(5), 5); err != nil {
		t.Fatal(err)
	}
	base := l.Base()
	pool.Crash(pmem.DropAll) // crash before any delta was cut
	l2, err := Open(pool, 1, base)
	if err != nil {
		t.Fatal(err)
	}
	if got := l2.ChainLen(); got != 1 {
		t.Fatalf("ChainLen=%d want 1 (base only)", got)
	}
	elems, err := l2.ResolveChain(newestDelta(t, l2))
	if err != nil || len(elems) != 1 || !elems[0].Base {
		t.Fatalf("base-only chain resolved wrong: %v %+v", err, elems)
	}
	if _, err := l2.AppendDelta(chainPayload(7), 7); err != nil {
		t.Fatalf("extending a recovered base-only chain: %v", err)
	}
}

// TestCorruptPredecessorBreaksResolutionNotProbe pins the split between
// slot status and chain status: damaging a PREDECESSOR body leaves the
// newest record probing SlotOK (its own checksum holds) but makes the
// chain unresolvable — Open degrades to an empty chain and the scrubber
// reports ChainBad.
func TestCorruptPredecessorBreaksResolutionNotProbe(t *testing.T) {
	pool, l := newLog(t, 64, 4)
	buildChain(t, l, 2, 4, 6)
	// The delta-cut shape: only the newest chain record stays in the
	// log; predecessors are reachable through body back-refs alone.
	if err := l.Truncate(l.NextSeq() - 2); err != nil {
		t.Fatal(err)
	}
	baseAddr := l.chain[0].addr
	corrupt(pool, baseAddr+pmem.Addr(cbHdrWords*pmem.WordSize), ^uint64(0))
	pool.Crash(pmem.KeepAll)

	head := newestDelta(t, l)
	if _, st := l.probeSlot(head.Seq, l.durableReader()); st != SlotOK {
		t.Fatalf("head record probes %v, want ok (damage is upstream)", st)
	}
	if _, err := l.ResolveChain(head); err == nil {
		t.Fatal("chain with a corrupt base resolved")
	}
	res := l.Scrub()
	if !res.ChainBad || !res.Faulty() {
		t.Fatalf("scrub missed the broken chain: %+v", res)
	}

	pool.Crash(pmem.DropAll)
	l2, err := Open(pool, 1, l.Base())
	if err != nil {
		t.Fatal(err)
	}
	if got := l2.ChainLen(); got != 0 {
		t.Fatalf("unresolvable chain rebuilt with len %d", got)
	}
	// The log stays usable: the next cut starts a fresh base.
	if _, err := l2.AppendChainBase(chainPayload(8), 8); err != nil {
		t.Fatalf("fresh base after chain damage: %v", err)
	}
}

// TestTornDeltaBodyIsInvisible corrupts the NEWEST chain body: the head
// record's own body checksum fails, so the record is treated as never
// appended (SlotBadDelta) and the chain falls back to its predecessor.
func TestTornDeltaBodyIsInvisible(t *testing.T) {
	pool, l := newLog(t, 64, 4)
	buildChain(t, l, 2, 4, 6)
	tail := l.chain[len(l.chain)-1]
	corrupt(pool, tail.addr+pmem.Addr((tail.words-1)*pmem.WordSize), ^uint64(0))
	pool.Crash(pmem.KeepAll)
	if _, st := l.probeSlot(l.NextSeq()-1, l.durableReader()); st != SlotBadDelta {
		t.Fatalf("torn delta body probes %v, want bad-delta", st)
	}
	pool.Crash(pmem.DropAll)
	l2, err := Open(pool, 1, l.Base())
	if err != nil {
		t.Fatal(err)
	}
	// scan stops at the torn record; the chain rebuilds from the record
	// before it (execIdx 4).
	if got := l2.ChainHead(); got != 4 {
		t.Fatalf("chain head after torn tail: %d want 4", got)
	}
	if got := l2.ChainLen(); got != 2 {
		t.Fatalf("chain len after torn tail: %d want 2", got)
	}
}

// TestFlippedBackRefRejected flips the prevAddr word of the newest
// body. The flip is inside the checksummed frame, so the head record
// itself must fail verification — a forged back-reference cannot
// survive, let alone redirect the chain.
func TestFlippedBackRefRejected(t *testing.T) {
	pool, l := newLog(t, 64, 4)
	buildChain(t, l, 2, 4, 6)
	tail := l.chain[len(l.chain)-1]
	cur := pool.DurableWord(tail.addr + pmem.Addr(cbPrevAddr*pmem.WordSize))
	corrupt(pool, tail.addr+pmem.Addr(cbPrevAddr*pmem.WordSize), cur^(1<<13))
	pool.Crash(pmem.KeepAll)
	if _, st := l.probeSlot(l.NextSeq()-1, l.durableReader()); st != SlotBadDelta {
		t.Fatalf("flipped back-ref probes %v, want bad-delta", st)
	}
}
