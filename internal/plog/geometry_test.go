package plog

import (
	"math/rand"
	"testing"

	"repro/internal/pmem"
	"repro/internal/spec"
)

// Geometry tests for the two-tier layout: Create/Open round-trips over
// random (capacity, maxOps, inline budget), and adversarial headers and
// overflow descriptors. The absolute rule: Open consumes untrusted NVM
// and must reject bad geometry with an error — it may never panic or
// read out of bounds.

// TestGeometryRoundTripFuzz creates logs with random geometry, drives
// random append/snapshot/truncate traffic, crashes, reopens, and
// requires the reopened log to report the identical geometry and the
// identical record contents.
func TestGeometryRoundTripFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 150; trial++ {
		capacity := 1 + rng.Intn(40)
		maxOps := 1 + rng.Intn(16)
		inline := rng.Intn(maxOps + 3) // 0 = default; > maxOps clamps to single-tier
		pool := pmem.New(RegionBytesInline(capacity, maxOps, inline)+1<<18, nil)
		l, err := CreateInline(pool, 0, capacity, maxOps, inline)
		if err != nil {
			t.Fatalf("trial %d: CreateInline(%d,%d,%d): %v", trial, capacity, maxOps, inline, err)
		}
		type entry struct {
			kind int
			ops  []spec.Op
			snap []uint64
		}
		live := map[uint64]entry{}
		head := uint64(0)
		for step := 0; step < 40; step++ {
			if rng.Intn(6) == 0 { // snapshot record
				snap := make([]uint64, 1+rng.Intn(40))
				for i := range snap {
					snap[i] = rng.Uint64()
				}
				seq, err := l.AppendSnapshot(snap, uint64(step+1))
				if err == ErrFull {
					// Compaction semantics: drop everything the snapshot
					// covers, then retry.
					if upto := l.NextSeq() - 1; upto > head {
						if terr := l.Truncate(upto); terr != nil {
							t.Fatal(terr)
						}
						live, head = map[uint64]entry{}, upto
					}
					seq, err = l.AppendSnapshot(snap, uint64(step+1))
				}
				if err != nil {
					t.Fatalf("trial %d: snapshot: %v", trial, err)
				}
				live[seq] = entry{kind: KindSnapshot, snap: snap}
				// Truncate behind the snapshot, as compaction does: the
				// ping-pong snapshot regions only keep the two newest
				// bodies intact, so older snapshot records must not stay
				// live.
				if seq-1 > head {
					if err := l.Truncate(seq - 1); err != nil {
						t.Fatal(err)
					}
					for s := range live {
						if s < seq {
							delete(live, s)
						}
					}
					head = seq - 1
				}
				continue
			}
			n := 1 + rng.Intn(maxOps)
			ops := opsOf(n, step+1)
			seq, err := l.Append(ops, uint64(step+1))
			switch err {
			case nil:
				live[seq] = entry{kind: KindOps, ops: ops}
			case ErrFull, ErrOvfFull:
				upto := head + (l.NextSeq()-1-head)/2
				if upto > head {
					if terr := l.Truncate(upto); terr != nil {
						t.Fatal(terr)
					}
					for s := range live {
						if s <= upto {
							delete(live, s)
						}
					}
					head = upto
				}
			default:
				t.Fatalf("trial %d: append: %v", trial, err)
			}
		}
		pool.Crash(pmem.DropAll)
		l2, err := Open(pool, 0, l.Base())
		if err != nil {
			t.Fatalf("trial %d: reopen: %v", trial, err)
		}
		if l2.Capacity() != l.Capacity() || l2.MaxOps() != l.MaxOps() ||
			l2.InlineOps() != l.InlineOps() || l2.HeadSeq() != l.HeadSeq() ||
			l2.NextSeq() != l.NextSeq() {
			t.Fatalf("trial %d: geometry drift: %+v vs %+v", trial, l2, l)
		}
		b2, w2 := l2.OverflowRegion()
		b1, w1 := l.OverflowRegion()
		if b2 != b1 || w2 != w1 {
			t.Fatalf("trial %d: overflow region drift", trial)
		}
		recs := l2.Records()
		if len(recs) != len(live) {
			t.Fatalf("trial %d: %d records, want %d", trial, len(recs), len(live))
		}
		for _, rec := range recs {
			want, ok := live[rec.Seq]
			if !ok || rec.Kind != want.kind {
				t.Fatalf("trial %d: unexpected record %+v", trial, rec)
			}
			for k := range want.ops {
				if rec.Ops[k] != want.ops[k] {
					t.Fatalf("trial %d seq %d: op %d drift", trial, rec.Seq, k)
				}
			}
			for k := range want.snap {
				if rec.State[k] != want.snap[k] {
					t.Fatalf("trial %d seq %d: snapshot word %d drift", trial, rec.Seq, k)
				}
			}
		}
	}
}

// TestCreateInlineValidation pins the constructor's geometry contract.
func TestCreateInlineValidation(t *testing.T) {
	pool := pmem.New(1<<20, nil)
	if _, err := CreateInline(pool, 0, 8, 4, -1); err == nil {
		t.Fatal("negative inline budget accepted")
	}
	l, err := CreateInline(pool, 0, 8, 4, 9) // clamps to single-tier
	if err != nil {
		t.Fatal(err)
	}
	if l.InlineOps() != 4 {
		t.Fatalf("inline budget %d, want clamped 4", l.InlineOps())
	}
	if _, w := l.OverflowRegion(); w != 0 {
		t.Fatalf("single-tier log grew an overflow ring of %d words", w)
	}
	l2, err := CreateInline(pool, 0, 8, 12, 0)
	if err != nil {
		t.Fatal(err)
	}
	if l2.InlineOps() != DefaultInlineOps {
		t.Fatalf("inline budget %d, want default %d", l2.InlineOps(), DefaultInlineOps)
	}
}

// TestOpenRejectsAdversarialGeometry corrupts each geometry word of a
// valid two-tier header with values that disagree with the recomputed
// layout: Open must reject every one of them (the slot width and ring
// width are derived, so a forged header cannot move slots or the ring).
func TestOpenRejectsAdversarialGeometry(t *testing.T) {
	build := func() (*pmem.Pool, *Log) {
		pool, l := newTieredLog(t, 16, 12, 4)
		for i := 1; i <= 6; i++ {
			if _, err := l.Append(opsOf(1+i%12, i), uint64(i)); err != nil {
				t.Fatal(err)
			}
		}
		pool.Crash(pmem.DropAll)
		return pool, l
	}
	cases := []struct {
		word int
		vals []uint64
	}{
		{hdrMagic, []uint64{0, ^uint64(0), logMagic + 1}},
		{hdrCapacity, []uint64{0, 17, ^uint64(0), 1 << 40}},
		{hdrSlotW, []uint64{0, 8, 24, 40, ^uint64(0)}},
		{hdrMaxOps, []uint64{0, 4, 13, ^uint64(0), 1 << 20}},
		{hdrInlineOps, []uint64{0, 3, 5, 13, ^uint64(0)}},
		{hdrOvfWords, []uint64{0, 8, 1 << 30, ^uint64(0)}},
	}
	for _, c := range cases {
		for _, v := range c.vals {
			pool, l := build()
			corrupt(pool, l.Base()+pmem.Addr(c.word*pmem.WordSize), v)
			pool.Crash(pmem.DropAll)
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("hdr[%d]=%#x: Open panicked: %v", c.word, v, r)
					}
				}()
				if _, err := Open(pool, 0, l.Base()); err == nil {
					t.Fatalf("hdr[%d]=%#x: Open accepted inconsistent geometry", c.word, v)
				}
			}()
		}
	}
}

// TestOverflowDescriptorOutOfRangeRejected forges a spilled record's
// overflow descriptor — offset past the ring, unaligned offset, wrong
// length — recomputing the record checksum so only the descriptor
// validation stands between the forged pointer and an out-of-bounds
// read. The record must be rejected; Open must not panic.
func TestOverflowDescriptorOutOfRangeRejected(t *testing.T) {
	type forge struct {
		name string
		off  func(l *Log) uint64 // forged offset value
		olen func(l *Log) uint64 // forged length value
	}
	_, probe := newTieredLog(t, 16, 12, 4)
	goodLen := uint64(4 * spec.OpWords) // 8-op record, inline 4
	forges := []forge{
		{"off-past-ring", func(l *Log) uint64 { return uint64(l.ovfWords) }, func(*Log) uint64 { return goodLen }},
		{"off-way-out", func(*Log) uint64 { return 1 << 40 }, func(*Log) uint64 { return goodLen }},
		{"off-max", func(*Log) uint64 { return ^uint64(0) }, func(*Log) uint64 { return goodLen }},
		{"off-unaligned", func(*Log) uint64 { return 1 }, func(*Log) uint64 { return goodLen }},
		{"off-end-minus-line", func(l *Log) uint64 { return uint64(l.ovfWords - pmem.LineWords) },
			func(*Log) uint64 { return goodLen }}, // 20 words from 8 before the end: tail out of range
		{"len-zero", func(*Log) uint64 { return 0 }, func(*Log) uint64 { return 0 }},
		{"len-huge", func(*Log) uint64 { return 0 }, func(*Log) uint64 { return 1 << 40 }},
		{"len-off-by-one-op", func(*Log) uint64 { return 0 }, func(*Log) uint64 { return goodLen - spec.OpWords }},
	}
	_ = probe
	for _, f := range forges {
		pool, l := newTieredLog(t, 16, 12, 4)
		if _, err := l.Append(opsOf(8, 1), 1); err != nil {
			t.Fatal(err)
		}
		// Rewrite the descriptor in the slot image and recompute the
		// record checksum so it verifies.
		addr := l.slotAddr(1)
		descBase := 3 + l.inlineOps*spec.OpWords
		plen := l.inlineOps*spec.OpWords + ovfDescWords
		words := make([]uint64, 3+plen)
		for i := range words {
			words[i] = pool.Load(0, addr+pmem.Addr(i*pmem.WordSize))
		}
		words[descBase] = f.off(l)
		words[descBase+1] = f.olen(l)
		sum := checksum(words)
		corrupt(pool, addr+pmem.Addr(descBase*pmem.WordSize), words[descBase])
		corrupt(pool, addr+pmem.Addr((descBase+1)*pmem.WordSize), words[descBase+1])
		corrupt(pool, addr+pmem.Addr((3+plen)*pmem.WordSize), sum)
		pool.Crash(pmem.DropAll)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("%s: panicked: %v", f.name, r)
				}
			}()
			l2, err := Open(pool, 0, l.Base())
			if err != nil {
				return // whole-log rejection: acceptable
			}
			if recs := l2.Records(); len(recs) != 0 {
				t.Fatalf("%s: forged descriptor verified: %+v", f.name, recs)
			}
		}()
	}
}
