package plog

import (
	"math/rand"
	"testing"

	"repro/internal/pmem"
	"repro/internal/spec"
)

// Tests of the two-tier slot scheme: inline slots plus the shared
// overflow ring. The contract under test is that the split is
// invisible to readers (Records always returns complete op batches),
// costs the same single persistent fence, and degrades under crashes
// and corruption exactly like the single-tier layout: a record whose
// overflow tail is torn is treated as never appended, and validity
// stays prefix-closed.

// newTieredLog returns a log where records with more than inlineOps
// operations must spill to the overflow ring.
func newTieredLog(t testing.TB, capacity, maxOps, inlineOps int) (*pmem.Pool, *Log) {
	t.Helper()
	pool := pmem.New(RegionBytesInline(capacity, maxOps, inlineOps)+1<<18, nil)
	l, err := CreateInline(pool, 0, capacity, maxOps, inlineOps)
	if err != nil {
		t.Fatalf("CreateInline: %v", err)
	}
	return pool, l
}

func opsOf(n, salt int) []spec.Op {
	ops := make([]spec.Op, n)
	for i := range ops {
		ops[i] = op(uint64(salt*100+i+1), uint64(salt*1000+i+1))
	}
	return ops
}

// TestOverflowAppendRoundTrip appends records at every op count from 1
// to maxOps and requires each to cost exactly one persistent fence and
// to decode back complete, with the Overflow flag set exactly when the
// count exceeds the inline budget.
func TestOverflowAppendRoundTrip(t *testing.T) {
	pool, l := newTieredLog(t, 64, 12, 4) // ring: 64*40/8 = 320 words, fits every tail below
	var want [][]spec.Op
	for n := 1; n <= 12; n++ {
		ops := opsOf(n, n)
		pool.ResetStats()
		if _, err := l.Append(ops, uint64(n)); err != nil {
			t.Fatalf("append %d ops: %v", n, err)
		}
		st := pool.StatsOf(0)
		if st.PersistentFences != 1 {
			t.Fatalf("append of %d ops used %d persistent fences, want 1", n, st.PersistentFences)
		}
		want = append(want, ops)
	}
	pool.Crash(pmem.DropAll)
	l2, err := Open(pool, 0, l.Base())
	if err != nil {
		t.Fatal(err)
	}
	recs := l2.Records()
	if len(recs) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(recs), len(want))
	}
	for i, rec := range recs {
		if len(rec.Ops) != len(want[i]) {
			t.Fatalf("record %d: %d ops, want %d", i, len(rec.Ops), len(want[i]))
		}
		for k := range want[i] {
			if rec.Ops[k] != want[i][k] {
				t.Fatalf("record %d op %d: %v want %v", i, k, rec.Ops[k], want[i][k])
			}
		}
		if wantOvf := len(want[i]) > l2.InlineOps(); rec.Overflow != wantOvf {
			t.Fatalf("record %d (%d ops): Overflow=%v want %v", i, len(want[i]), rec.Overflow, wantOvf)
		}
	}
}

// TestTornOverflowFallsBackToLastValidRecord corrupts one durable word
// of a middle record's overflow chunk: recovery must surface exactly
// the records before it (prefix-closed fallback), never a partial
// batch, and never the records after the tear.
func TestTornOverflowFallsBackToLastValidRecord(t *testing.T) {
	pool, l := newTieredLog(t, 16, 12, 4)
	if _, err := l.Append(opsOf(2, 1), 1); err != nil { // inline
		t.Fatal(err)
	}
	if _, err := l.Append(opsOf(8, 2), 2); err != nil { // overflows
		t.Fatal(err)
	}
	if _, err := l.Append(opsOf(3, 3), 3); err != nil { // inline
		t.Fatal(err)
	}
	recs := l.Records()
	if len(recs) != 3 || !recs[1].Overflow {
		t.Fatalf("setup wrong: %+v", recs)
	}
	off, words, ok := recs[1].OverflowSpan()
	if !ok || words != 4*spec.OpWords {
		t.Fatalf("overflow span: off=%d words=%d ok=%v", off, words, ok)
	}
	ovfBase, _ := l.OverflowRegion()
	corrupt(pool, ovfBase+pmem.Addr((off+1)*pmem.WordSize), 0xDEADBEEF)
	pool.Crash(pmem.DropAll)
	l2, err := Open(pool, 0, l.Base())
	if err != nil {
		t.Fatal(err)
	}
	got := l2.Records()
	if len(got) != 1 || got[0].Seq != 1 || len(got[0].Ops) != 2 {
		t.Fatalf("torn overflow: recovered %+v, want only record 1", got)
	}
}

// TestCrashMidOverflowWriteInvisible emulates a crash in the middle of
// a spilling append: tail and slot are written and flushed but never
// fenced, and a random oracle decides which lines reached NVM. The
// record must recover either complete or not at all — the same
// recoverable-equivalence the single-tier layout provides.
func TestCrashMidOverflowWriteInvisible(t *testing.T) {
	for seed := uint64(1); seed <= 24; seed++ {
		pool, l := newTieredLog(t, 16, 12, 4)
		if _, err := l.Append(opsOf(2, 1), 1); err != nil {
			t.Fatal(err)
		}
		// Stage a spilling append by hand: overflow tail first, then the
		// inline slot image, all flushed, NO fence (the crash beats it).
		ops := opsOf(9, 2)
		tail := []uint64{}
		for _, o := range ops[l.inlineOps:] {
			tail = o.Encode(tail)
		}
		off, ok := l.claimOvf(len(tail))
		if !ok {
			t.Fatal("claimOvf failed on an empty ring")
		}
		tailAddr := l.ovfBase + pmem.Addr(off*pmem.WordSize)
		pool.StoreRange(0, tailAddr, tail)
		pool.FlushRange(0, tailAddr, len(tail)*pmem.WordSize)
		seq := l.NextSeq()
		words := []uint64{seq, uint64(kindOpsOvf)<<32 | uint64(len(ops)), 2}
		for _, o := range ops[:l.inlineOps] {
			words = o.Encode(words)
		}
		words = append(words, uint64(off), uint64(len(tail)), checksum(tail))
		words = append(words, checksum(words))
		addr := l.slotAddr(seq)
		pool.StoreRange(0, addr, words)
		pool.FlushRange(0, addr, len(words)*pmem.WordSize)
		// no fence
		pool.Crash(pmem.SeededOracle(seed, 1, 2))
		l2, err := Open(pool, 0, l.Base())
		if err != nil {
			t.Fatal(err)
		}
		recs := l2.Records()
		switch len(recs) {
		case 1: // staged append invisible
		case 2: // every line survived: must be the complete batch
			if len(recs[1].Ops) != len(ops) {
				t.Fatalf("seed %d: partial overflow batch surfaced: %d ops", seed, len(recs[1].Ops))
			}
			for k := range ops {
				if recs[1].Ops[k] != ops[k] {
					t.Fatalf("seed %d: corrupt op %d recovered", seed, k)
				}
			}
		default:
			t.Fatalf("seed %d: %d records", seed, len(recs))
		}
	}
}

// TestOverflowRingFullAndReuse drives the ring to exhaustion and back:
// the geometry below holds exactly 4 worst-case chunks, so the 5th
// spilling append fails with ErrOvfFull, and truncation must free the
// chunks for reuse without disturbing surviving records.
func TestOverflowRingFullAndReuse(t *testing.T) {
	_, l := newTieredLog(t, 32, 12, 4)
	if _, n := l.OverflowRegion(); n != 4*ovfChunkWords(12, 4) {
		t.Fatalf("ring sized %d words, test assumes %d", n, 4*ovfChunkWords(12, 4))
	}
	for i := 1; i <= 4; i++ {
		if _, err := l.Append(opsOf(12, i), uint64(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if _, err := l.Append(opsOf(12, 5), 5); err != ErrOvfFull {
		t.Fatalf("5th full-width spill: %v, want ErrOvfFull", err)
	}
	// Inline appends still work while the ring is full.
	if _, err := l.Append(opsOf(2, 6), 6); err != nil {
		t.Fatalf("inline append with full ring: %v", err)
	}
	if err := l.Truncate(2); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(opsOf(12, 7), 7); err != nil {
		t.Fatalf("spill after truncate: %v", err)
	}
	recs := l.Records()
	if len(recs) != 4 { // seqs 3,4,5(inline),6(new spill)
		t.Fatalf("%d live records, want 4", len(recs))
	}
	for _, rec := range recs {
		for k, o := range rec.Ops {
			if o.ID == 0 || int(o.Code)%100 != k+1 {
				t.Fatalf("record %d decoded garbage after reuse: %+v", rec.Seq, o)
			}
		}
	}
}

// TestOverflowReuseNeverClobbersLiveRecords is a randomized
// append/truncate/crash fuzz: at every point, every live record must
// decode back exactly as appended — chunk reuse may never overwrite a
// chunk a live record still references.
func TestOverflowReuseNeverClobbersLiveRecords(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		pool, l := newTieredLog(t, 24, 10, 3)
		live := map[uint64][]spec.Op{}
		head := uint64(0)
		for step := 0; step < 120; step++ {
			n := 1 + rng.Intn(10)
			ops := opsOf(n, step+1)
			seq, err := l.Append(ops, uint64(step+1))
			switch err {
			case nil:
				live[seq] = ops
			case ErrFull, ErrOvfFull:
				// Truncate half the live range and retry later.
				upto := head + (l.NextSeq()-1-head)/2
				if upto > head {
					if terr := l.Truncate(upto); terr != nil {
						t.Fatal(terr)
					}
					for s := range live {
						if s <= upto {
							delete(live, s)
						}
					}
					head = upto
				}
			default:
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
			if step%17 == 0 {
				pool.Crash(pmem.DropAll) // everything live is fenced: must survive
				l2, err := Open(pool, 0, l.Base())
				if err != nil {
					t.Fatalf("trial %d step %d: reopen: %v", trial, step, err)
				}
				l = l2
			}
			recs := l.Records()
			if len(recs) != len(live) {
				t.Fatalf("trial %d step %d: %d live records, want %d", trial, step, len(recs), len(live))
			}
			for _, rec := range recs {
				want := live[rec.Seq]
				if len(rec.Ops) != len(want) {
					t.Fatalf("trial %d step %d seq %d: %d ops, want %d",
						trial, step, rec.Seq, len(rec.Ops), len(want))
				}
				for k := range want {
					if rec.Ops[k] != want[k] {
						t.Fatalf("trial %d step %d seq %d op %d clobbered: %v want %v",
							trial, step, rec.Seq, k, rec.Ops[k], want[k])
					}
				}
			}
		}
	}
}
