package plog

import (
	"math/rand"
	"testing"

	"repro/internal/pmem"
	"repro/internal/spec"
)

// corrupt durably overwrites one word of the pool (Store + Persist on a
// scratch pid), simulating an adversarially damaged NVM image.
func corrupt(pool *pmem.Pool, addr pmem.Addr, val uint64) {
	pool.Store(pmem.RootSystemPID, addr, val)
	pool.Persist(pmem.RootSystemPID, addr, pmem.WordSize)
}

// buildLogWithSnapshots returns a pool and a log holding a mix of ops
// records and snapshot records, all durable.
func buildLogWithSnapshots(t *testing.T) (*pmem.Pool, *Log) {
	t.Helper()
	pool := pmem.New(1<<20, nil)
	l, err := Create(pool, 0, 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	state := []uint64{0xC0DE0007, 2, 10, 100, 20, 200} // a plausible map snapshot
	for i := 1; i <= 10; i++ {
		if i%4 == 0 {
			if _, err := l.AppendSnapshot(state, uint64(i)); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := l.Append([]spec.Op{op(uint64(i), uint64(i))}, uint64(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return pool, l
}

// TestFuzzRandomCorruptionNeverPanics sprays random durable bit flips
// over the log region (records, snapshot pointers, counts, tags and the
// header alike) and requires Open + Records to either reject the log or
// return only verifying records — never panic, never read out of
// bounds.
func TestFuzzRandomCorruptionNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		pool, l := buildLogWithSnapshots(t)
		pool.Crash(pmem.DropAll)
		// Flip 1..4 random words anywhere in the first part of the pool
		// (covers the header line, record slots and snapshot regions).
		for n := 1 + rng.Intn(4); n > 0; n-- {
			w := rng.Intn(pool.Size() / (4 * pmem.WordSize))
			addr := pmem.Addr(w * pmem.WordSize)
			var val uint64
			switch rng.Intn(3) {
			case 0:
				val = rng.Uint64() // random garbage
			case 1:
				val = pool.DurableWord(addr) ^ (1 << uint(rng.Intn(64))) // single bit flip
			default:
				val = ^uint64(0) // saturated count/pointer
			}
			corrupt(pool, addr, val)
		}
		pool.Crash(pmem.DropAll)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: panic: %v", trial, r)
				}
			}()
			l2, err := Open(pool, 0, l.Base())
			if err != nil {
				return // rejected: fine
			}
			for _, rec := range l2.Records() {
				if rec.Kind == KindSnapshot && rec.State == nil {
					t.Fatalf("trial %d: snapshot record without state", trial)
				}
			}
		}()
	}
}

// buildTieredLogWithOverflow returns a pool and a two-tier log holding a
// mix of inline records, spilled records and snapshot records, all
// durable (inline budget 2, so batches of 3+ ops overflow).
func buildTieredLogWithOverflow(t *testing.T) (*pmem.Pool, *Log) {
	t.Helper()
	pool := pmem.New(1<<20, nil)
	l, err := CreateInline(pool, 0, 32, 12, 2)
	if err != nil {
		t.Fatal(err)
	}
	state := []uint64{0xC0DE0007, 2, 10, 100, 20, 200}
	for i := 1; i <= 12; i++ {
		switch {
		case i%5 == 0:
			if _, err := l.AppendSnapshot(state, uint64(i)); err != nil {
				t.Fatal(err)
			}
		default:
			ops := opsOf(1+i%7, i) // sizes 1..7: inline and spilled mixed
			if _, err := l.Append(ops, uint64(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return pool, l
}

// TestFuzzRandomCorruptionTwoTierNeverPanics is the two-tier variant of
// the fuzz above: random durable bit flips over the whole log region —
// header, inline slots, overflow ring and snapshot regions — must leave
// Open + Records rejecting or returning only verifying, COMPLETE
// records (an overflow record may never surface with a partial batch).
func TestFuzzRandomCorruptionTwoTierNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 300; trial++ {
		pool, l := buildTieredLogWithOverflow(t)
		pool.Crash(pmem.DropAll)
		for n := 1 + rng.Intn(4); n > 0; n-- {
			w := rng.Intn(pool.Size() / (4 * pmem.WordSize))
			addr := pmem.Addr(w * pmem.WordSize)
			var val uint64
			switch rng.Intn(3) {
			case 0:
				val = rng.Uint64()
			case 1:
				val = pool.DurableWord(addr) ^ (1 << uint(rng.Intn(64)))
			default:
				val = ^uint64(0)
			}
			corrupt(pool, addr, val)
		}
		pool.Crash(pmem.DropAll)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: panic: %v", trial, r)
				}
			}()
			l2, err := Open(pool, 0, l.Base())
			if err != nil {
				return // rejected: fine
			}
			for _, rec := range l2.Records() {
				if rec.Kind == KindSnapshot && rec.State == nil {
					t.Fatalf("trial %d: snapshot record without state", trial)
				}
				if rec.Kind == KindOps && rec.Overflow &&
					len(rec.Ops) <= l2.InlineOps() {
					t.Fatalf("trial %d: spilled record with %d ops surfaced", trial, len(rec.Ops))
				}
			}
		}()
	}
}

// buildLogWithDeltaChain returns a pool and a log holding ops records
// plus a live delta chain (base + 3 deltas) truncated down to the chain
// head — the shape delta-cut compaction leaves behind.
func buildLogWithDeltaChain(t *testing.T) (*pmem.Pool, *Log) {
	t.Helper()
	pool := pmem.New(1<<20, nil)
	l, err := Create(pool, 0, 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	state := []uint64{0xC0DE0007, 2, 10, 100, 20, 200}
	for i := 1; i <= 4; i++ {
		if _, err := l.Append([]spec.Op{op(uint64(i), uint64(i))}, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.AppendChainBase(state, 4); err != nil {
		t.Fatal(err)
	}
	for i := 5; i <= 7; i++ {
		if _, err := l.Append([]spec.Op{op(uint64(i), uint64(i))}, uint64(i)); err != nil {
			t.Fatal(err)
		}
		if _, err := l.AppendDelta([]uint64{uint64(i), uint64(i * 10)}, uint64(i)); err != nil {
			t.Fatal(err)
		}
		if err := l.Truncate(l.NextSeq() - 2); err != nil {
			t.Fatal(err)
		}
	}
	return pool, l
}

// TestFuzzRandomCorruptionDeltaChainNeverPanics sprays random durable
// bit flips over a log whose live state is a delta chain: header, the
// surviving record slot, chain bodies and back-references alike. Open +
// Records + ResolveChain must reject or return only verifying,
// base-anchored chains — never panic, never follow a forged pointer out
// of bounds.
func TestFuzzRandomCorruptionDeltaChainNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 300; trial++ {
		pool, l := buildLogWithDeltaChain(t)
		pool.Crash(pmem.DropAll)
		for n := 1 + rng.Intn(4); n > 0; n-- {
			w := rng.Intn(pool.Size() / (4 * pmem.WordSize))
			addr := pmem.Addr(w * pmem.WordSize)
			var val uint64
			switch rng.Intn(3) {
			case 0:
				val = rng.Uint64()
			case 1:
				val = pool.DurableWord(addr) ^ (1 << uint(rng.Intn(64)))
			default:
				val = ^uint64(0)
			}
			corrupt(pool, addr, val)
		}
		pool.Crash(pmem.DropAll)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: panic: %v", trial, r)
				}
			}()
			l2, err := Open(pool, 0, l.Base())
			if err != nil {
				return // rejected: fine
			}
			for _, rec := range l2.Records() {
				if rec.Kind != KindDelta {
					continue
				}
				if rec.Body == nil {
					t.Fatalf("trial %d: delta record without body", trial)
				}
				elems, err := l2.ResolveChain(rec)
				if err != nil {
					continue // unresolvable: recovery falls back
				}
				if len(elems) == 0 || !elems[0].Base {
					t.Fatalf("trial %d: resolved chain not base-anchored", trial)
				}
				for i := 1; i < len(elems); i++ {
					if elems[i].Base || elems[i].ExecIdx <= elems[i-1].ExecIdx {
						t.Fatalf("trial %d: chain order violated", trial)
					}
				}
			}
		}()
	}
}

// TestTruncatedSnapshotRegionRejected shrinks a snapshot record's region
// length below the written state (a torn count word) and requires the
// record to fail verification, not to panic or return short state.
func TestTruncatedSnapshotRegionRejected(t *testing.T) {
	pool := pmem.New(1<<20, nil)
	l, err := Create(pool, 0, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	state := []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	seq, err := l.AppendSnapshot(state, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Payload word [4] of the record is the region length.
	addr := l.slotAddr(seq) + pmem.Addr(4*pmem.WordSize)
	for _, bad := range []uint64{3, 0, ^uint64(0), 1 << 40} {
		corrupt(pool, addr, bad)
		pool.Crash(pmem.KeepAll)
		l2, err := Open(pool, 0, l.Base())
		if err != nil {
			continue // whole-log rejection is acceptable for wild values
		}
		for _, rec := range l2.Records() {
			if rec.Kind == KindSnapshot {
				t.Fatalf("length %d: truncated snapshot record verified", bad)
			}
		}
	}
}

// TestSnapshotWrongTagSurvivesRecovery flips the tag word inside the
// snapshot body: the record checksum must fail (the body changed), so
// recovery treats the snapshot as never appended instead of restoring a
// mistagged state.
func TestSnapshotWrongTagSurvivesRecovery(t *testing.T) {
	pool := pmem.New(1<<20, nil)
	l, err := Create(pool, 0, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	state := []uint64{0xC0DE0007, 1, 5, 50} // map-tagged snapshot
	seq, err := l.AppendSnapshot(state, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Find the region via the record payload and corrupt the tag word.
	rec, ok := l.readSlot(seq)
	if !ok || rec.Kind != KindSnapshot {
		t.Fatal("snapshot record should verify before corruption")
	}
	regionAddr := pmem.Addr(pool.Load(0, l.slotAddr(seq)+pmem.Addr(3*pmem.WordSize)))
	corrupt(pool, regionAddr, 0xC0DE0003) // now claims to be a stack snapshot
	pool.Crash(pmem.KeepAll)
	l2, err := Open(pool, 0, l.Base())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range l2.Records() {
		if r.Kind == KindSnapshot {
			t.Fatal("mistagged snapshot body verified against its checksum")
		}
	}
}
