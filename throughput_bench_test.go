package onll

// BenchmarkThroughput is the parallel throughput suite: it drives one
// goroutine per simulated process against a single shared instance and
// reports ops/sec, allocs/op and pfences/op as the process count scales
// over 1/2/4/8. Unlike the E-series benchmarks (which regenerate the
// paper's tables), this suite measures the simulator substrate itself:
// it is the regression guard for the sharded-pool and allocation-free
// replay work, and `onllbench -json` re-runs the same shape to produce
// the BENCH_throughput.json trajectory artifact.

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/objects"
	"repro/internal/pmem"
	"repro/internal/workload"
)

// throughputProcs are the scaling points of the suite, up to the full
// pid space (sched.MaxPids = core.MaxProcs = 64).
var throughputProcs = []int{1, 2, 4, 8, 16, 32, 64}

// throughputConfig sizes an instance for nprocs simulated processes,
// using the sizing policy shared with `onllbench -exp et`
// (workload.Throughput*), so the JSON artifact and these benchmarks
// always measure the same configuration. The version-stamped read fast
// path is on by default (ONLL_READ_FASTPATH=off opts out, the CI
// fast-path-off leg).
func throughputConfig(nprocs int) core.Config {
	return core.Config{
		NProcs:       nprocs,
		LocalViews:   true,
		ReadFastPath: workload.ReadFastPathEnabled(),
		CompactEvery: workload.ThroughputCompactEvery(nprocs),
		LogCapacity:  workload.ThroughputLogCapacity(nprocs),
	}
}

// throughputPoolSize returns a pool size that fits nprocs logs.
func throughputPoolSize(nprocs int) int {
	return workload.ThroughputPoolBytes(nprocs)
}

// runThroughput drives nprocs goroutine-backed handles for per ops each
// (updatePct percent updates, rest reads) and returns total ops done.
func runThroughput(b *testing.B, in *core.Instance, nprocs, per, updatePct int) int {
	b.Helper()
	var wg sync.WaitGroup
	for pid := 0; pid < nprocs; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			h := in.Handle(pid)
			for i := 0; i < per; i++ {
				if i%100 < updatePct {
					if _, _, err := h.Update(objects.CounterInc); err != nil {
						panic(err)
					}
				} else {
					h.Read(objects.CounterGet)
				}
			}
		}(pid)
	}
	wg.Wait()
	return per * nprocs
}

func benchThroughput(b *testing.B, nprocs, updatePct int) {
	b.Helper()
	pool := pmem.New(throughputPoolSize(nprocs), nil)
	in, err := core.New(pool, objects.CounterSpec{}, throughputConfig(nprocs))
	if err != nil {
		b.Fatal(err)
	}
	pool.ResetStats()
	per := b.N/nprocs + 1
	updates := 0
	for i := 0; i < per; i++ {
		if i%100 < updatePct {
			updates++
		}
	}
	updates *= nprocs
	b.ReportAllocs()
	b.ResetTimer()
	total := runThroughput(b, in, nprocs, per, updatePct)
	b.StopTimer()
	tot := pool.TotalStats()
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "ops/sec")
	if updates > 0 {
		b.ReportMetric(float64(tot.PersistentFences)/float64(updates), "pfences/op")
	}
}

// BenchmarkThroughput: update-only scaling (the paper's expensive path).
func BenchmarkThroughput(b *testing.B) {
	for _, nprocs := range throughputProcs {
		b.Run(fmt.Sprintf("updates_p%d", nprocs), func(b *testing.B) {
			benchThroughput(b, nprocs, 100)
		})
	}
	for _, nprocs := range throughputProcs {
		b.Run(fmt.Sprintf("mixed50_p%d", nprocs), func(b *testing.B) {
			benchThroughput(b, nprocs, 50)
		})
	}
}

// BenchmarkThroughputYCSB drives the five YCSB mixes (zipfian keys over
// the ordered map — the index-tree-shaped object) at each scaling
// point: A = 50/50 get/put, B = 95/5 read-mostly, C = read-only, D =
// read-latest (reads chase the insert frontier, stressing view
// adoption under churn), E = order queries (floor/ceil/select) plus
// inserts. The map is preloaded with the key space, as YCSB loads its
// dataset, so read-heavy mixes hit a populated index. `onllbench -exp
// et` records the same five mixes into BENCH_throughput.json.
func BenchmarkThroughputYCSB(b *testing.B) {
	mixes := []workload.YCSBWorkload{workload.YCSBA, workload.YCSBB, workload.YCSBC, workload.YCSBD, workload.YCSBE}
	for _, mix := range mixes {
		for _, nprocs := range throughputProcs {
			b.Run(fmt.Sprintf("%s_p%d", mix, nprocs), func(b *testing.B) {
				pool := pmem.New(throughputPoolSize(nprocs), nil)
				in, err := core.New(pool, objects.OrderedMapSpec{}, throughputConfig(nprocs))
				if err != nil {
					b.Fatal(err)
				}
				y := workload.NewYCSB(mix)
				if err := y.Preload(in.Handle(0)); err != nil {
					b.Fatal(err)
				}
				per := b.N/nprocs + 1
				streams, updates := y.Streams(nprocs, per)
				pool.ResetStats()
				b.ReportAllocs()
				b.ResetTimer()
				var wg sync.WaitGroup
				for pid := 0; pid < nprocs; pid++ {
					wg.Add(1)
					go func(pid int) {
						defer wg.Done()
						if err := workload.RunSteps(in.Handle(pid), streams[pid]); err != nil {
							panic(err)
						}
					}(pid)
				}
				wg.Wait()
				b.StopTimer()
				tot := pool.TotalStats()
				b.ReportMetric(float64(per*nprocs)/b.Elapsed().Seconds(), "ops/sec")
				if updates > 0 {
					b.ReportMetric(float64(tot.PersistentFences)/float64(updates), "pfences/op")
				} else if tot.PersistentFences > 0 {
					b.Fatalf("%s: %d persistent fences on a read-only mix", mix, tot.PersistentFences)
				}
			})
		}
	}
}

// BenchmarkThroughputPmem measures the raw pool substrate with no
// construction on top: each simulated process persists its own disjoint
// cache line in a store/flush/fence loop — the plog append pattern.
func BenchmarkThroughputPmem(b *testing.B) {
	for _, nprocs := range throughputProcs {
		b.Run(fmt.Sprintf("persist_p%d", nprocs), func(b *testing.B) {
			pool := pmem.New(1<<22, nil)
			addrs := make([]pmem.Addr, nprocs)
			for pid := range addrs {
				addrs[pid] = pool.MustAlloc(pmem.LineSize)
			}
			per := b.N/nprocs + 1
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			for pid := 0; pid < nprocs; pid++ {
				wg.Add(1)
				go func(pid int) {
					defer wg.Done()
					a := addrs[pid]
					for i := 0; i < per; i++ {
						pool.Store(pid, a, uint64(i))
						pool.Persist(pid, a, pmem.WordSize)
					}
				}(pid)
			}
			wg.Wait()
			b.StopTimer()
			b.ReportMetric(float64(per*nprocs)/b.Elapsed().Seconds(), "ops/sec")
		})
	}
}

// BenchmarkReadSteadyState pins the allocation-free claim for reads: a
// counter with local views, fully caught up, must read at 0 allocs/op.
func BenchmarkReadSteadyState(b *testing.B) {
	pool := pmem.New(benchPool, nil)
	in, err := core.New(pool, objects.CounterSpec{}, core.Config{NProcs: 1, LocalViews: true})
	if err != nil {
		b.Fatal(err)
	}
	h := in.Handle(0)
	for i := 0; i < 1000; i++ {
		if _, _, err := h.Update(objects.CounterInc); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := h.Read(objects.CounterGet); got != 1000 {
			b.Fatalf("read %d", got)
		}
	}
}
