package onll

import (
	"repro/internal/core"
	"repro/internal/objects"
	"repro/internal/pmem"
	"repro/internal/sched"
	"repro/internal/spec"
)

// Re-exported building blocks so that library users need not import
// internal packages directly.
type (
	// Pool is a simulated NVM device (see internal/pmem).
	Pool = pmem.Pool
	// Stats counts a process's memory primitives, in particular
	// PersistentFences — the cost the paper bounds.
	Stats = pmem.Stats
	// Oracle decides which in-flight cache lines survive a crash.
	Oracle = pmem.Oracle
	// Config selects process count, log capacity and the Section 8
	// extensions (wait-freedom, local views, compaction).
	Config = core.Config
	// Instance is a durably linearizable object built by ONLL.
	Instance = core.Instance
	// Handle is one process's interface to an Instance.
	Handle = core.Handle
	// Report is what recovery learned (detectable execution).
	Report = core.Report
	// Op is a fixed-width operation record.
	Op = spec.Op
	// Spec is a deterministic sequential object specification.
	Spec = spec.Spec
	// State is a mutable sequential object state.
	State = spec.State
	// Gate interposes deterministic scheduling (see internal/sched).
	Gate = sched.Gate
	// Health is an instance's health snapshot (Instance.Health): mode,
	// quarantine reason, and aggregate salvage counters.
	Health = core.Health
	// HealthMode classifies a salvaged instance: healthy, degraded, or
	// quarantined.
	HealthMode = core.HealthMode
	// SalvageReport details what salvaging recovery found (Report.Salvage,
	// non-nil when Config.Salvage was set).
	SalvageReport = core.SalvageReport
	// PidSalvage is one process's salvage outcome.
	PidSalvage = core.PidSalvage
	// ScrubReport is one on-demand scrub pass over every log
	// (Instance.Scrub) — the latent-corruption detector.
	ScrubReport = core.ScrubReport
	// ScrubTotals is the cumulative scrub counter snapshot.
	ScrubTotals = core.ScrubTotals
	// PressureStats counts log-pressure valve activity (Instance.Pressure).
	PressureStats = core.PressureStats
	// FaultPlan is a seeded deterministic media-fault plan
	// (Pool.InjectFaults).
	FaultPlan = pmem.FaultPlan
	// Fault is a single media fault.
	Fault = pmem.Fault
	// FaultClass selects a fault's corruption pattern.
	FaultClass = pmem.FaultClass
)

// Health modes (Instance.Health().Mode).
const (
	ModeHealthy     = core.ModeHealthy
	ModeDegraded    = core.ModeDegraded
	ModeQuarantined = core.ModeQuarantined
)

// Media-fault classes for PlanFaults.
const (
	FaultBitFlip   = pmem.FaultBitFlip
	FaultTornLine  = pmem.FaultTornLine
	FaultStuckLine = pmem.FaultStuckLine
)

// Typed failure taxonomy: salvaging recovery and degraded-mode
// operations report loss through these (errors.Is-matchable).
var (
	// ErrTornRecord: a log record failed validation with operations
	// stranded beyond it.
	ErrTornRecord = core.ErrTornRecord
	// ErrBadSlotHeader: a log's header region did not validate.
	ErrBadSlotHeader = core.ErrBadSlotHeader
	// ErrSnapshotCorrupt: a compaction snapshot did not decode.
	ErrSnapshotCorrupt = core.ErrSnapshotCorrupt
	// ErrObjectQuarantined: the object shows evidence of lost
	// operations; Update/TryRead refuse until Instance.Recreate.
	ErrObjectQuarantined = core.ErrObjectQuarantined
	// ErrLogPressure: an append failed even after the full escalation
	// ladder (compact, catch-up, ring growth).
	ErrLogPressure = core.ErrLogPressure
	// ErrRootOverlap: Open/Recover was asked to place an instance on a
	// root-table range another live instance on the same pool already
	// claims (overlapping Config.RootBase partitions). Tile instances
	// with RootSpan to avoid it.
	ErrRootOverlap = core.ErrRootOverlap
)

// RootSpan returns the number of root-table slots an instance with
// nprocs processes occupies at Config.RootBase; place a second
// instance at RootBase + RootSpan(nprocs) to share the pool without
// overlap.
func RootSpan(nprocs int) int { return core.RootSpan(nprocs) }

// PlanFaults builds a seeded deterministic fault plan of n faults over
// cache lines [minLine, maxLine) — combine with Pool.AllocatedLines and
// Pool.InjectFaults to model media corruption between crash and
// recovery.
func PlanFaults(seed uint64, n int, minLine, maxLine uint64) FaultPlan {
	return pmem.PlanFaults(seed, n, minLine, maxLine)
}

// RootTableLines is the number of leading cache lines holding the pool
// root table; fault plans should start at or above it (the root table
// is fixed-size redundant metadata, not checksummed log state).
const RootTableLines = uint64(pmem.RootSlots * pmem.WordSize / pmem.LineSize)

// Crash oracles re-exported for convenience.
var (
	// DropAll models the adversarial crash: nothing unfenced survives.
	DropAll = pmem.DropAll
	// KeepAll models the lucky crash: every write-back raced ahead.
	KeepAll = pmem.KeepAll
)

// SeededOracle returns a deterministic pseudo-random crash oracle under
// which each undecided cache line survives with probability num/den.
func SeededOracle(seed, num, den uint64) Oracle {
	return pmem.SeededOracle(seed, num, den)
}

// Sentinel return values used by the shipped objects.
const (
	RetEmpty   = spec.RetEmpty
	RetMissing = spec.RetMissing
	RetFail    = spec.RetFail
	RetOK      = spec.RetOK
)

// NewPool allocates a simulated NVM pool of the given size in bytes.
// gate may be nil for free-running executions.
func NewPool(size int, gate Gate) *Pool { return pmem.New(size, gate) }

// LoadPool restores a pool image previously written with Pool.SaveFile —
// the moral equivalent of the machine rebooting with its NVDIMM intact.
func LoadPool(path string, gate Gate) (*Pool, error) { return pmem.LoadFile(path, gate) }

// Open builds a fresh durably linearizable instance of sp on pool.
func Open(pool *Pool, sp Spec, cfg Config) (*Instance, error) {
	return core.New(pool, sp, cfg)
}

// Recover rebuilds an instance from the durable contents of pool after a
// crash and reports which operations survived (detectable execution).
func Recover(pool *Pool, sp Spec, cfg Config) (*Instance, *Report, error) {
	return core.Recover(pool, sp, cfg)
}

// ---------------------------------------------------------------------
// Typed wrappers over the shipped object specifications. Each wrapper is
// a thin veneer over a per-process Handle: obtain one per process.
// ---------------------------------------------------------------------

// Counter is the paper's running-example shared counter (Section 3.3).
type Counter struct{ H *Handle }

// CounterSpec returns the counter's sequential specification.
func CounterSpec() Spec { return objects.CounterSpec{} }

// Inc increments the counter, returning the new value and the op id.
func (c Counter) Inc() (uint64, uint64, error) { return c.H.Update(objects.CounterInc) }

// Add adds delta, returning the new value and the op id.
func (c Counter) Add(delta uint64) (uint64, uint64, error) {
	return c.H.Update(objects.CounterAdd, delta)
}

// Get reads the current value (no persistent fence).
func (c Counter) Get() uint64 { return c.H.Read(objects.CounterGet) }

// Register is a single durable word.
type Register struct{ H *Handle }

// RegisterSpec returns the register's sequential specification.
func RegisterSpec() Spec { return objects.RegisterSpec{} }

// Write stores v, returning the previous value and the op id.
func (r Register) Write(v uint64) (uint64, uint64, error) {
	return r.H.Update(objects.RegisterWrite, v)
}

// Read returns the current value.
func (r Register) Read() uint64 { return r.H.Read(objects.RegisterRead) }

// Map is a durable uint64 -> uint64 map.
type Map struct{ H *Handle }

// MapSpec returns the map's sequential specification.
func MapSpec() Spec { return objects.MapSpec{} }

// Put stores k -> v, returning the previous value (RetMissing if absent)
// and the op id.
func (m Map) Put(k, v uint64) (uint64, uint64, error) { return m.H.Update(objects.MapPut, k, v) }

// Del removes k, returning the removed value (RetMissing if absent) and
// the op id.
func (m Map) Del(k uint64) (uint64, uint64, error) { return m.H.Update(objects.MapDel, k) }

// CAS replaces k's value with new iff it currently equals old; returns
// RetOK/RetFail and the op id.
func (m Map) CAS(k, old, new uint64) (uint64, uint64, error) {
	return m.H.Update(objects.MapCAS, k, old, new)
}

// Get returns k's value, or RetMissing.
func (m Map) Get(k uint64) uint64 { return m.H.Read(objects.MapGet, k) }

// Len returns the number of keys.
func (m Map) Len() uint64 { return m.H.Read(objects.MapLen) }

// Queue is a durable FIFO queue.
type Queue struct{ H *Handle }

// QueueSpec returns the queue's sequential specification.
func QueueSpec() Spec { return objects.QueueSpec{} }

// Enq appends v, returning the new length and the op id.
func (q Queue) Enq(v uint64) (uint64, uint64, error) { return q.H.Update(objects.QueueEnq, v) }

// Deq removes the front element, returning it (RetEmpty if empty) and
// the op id.
func (q Queue) Deq() (uint64, uint64, error) { return q.H.Update(objects.QueueDeq) }

// Front returns the front element or RetEmpty.
func (q Queue) Front() uint64 { return q.H.Read(objects.QueueFront) }

// Len returns the queue length.
func (q Queue) Len() uint64 { return q.H.Read(objects.QueueLen) }

// Stack is a durable LIFO stack.
type Stack struct{ H *Handle }

// StackSpec returns the stack's sequential specification.
func StackSpec() Spec { return objects.StackSpec{} }

// Push pushes v, returning the new depth and the op id.
func (s Stack) Push(v uint64) (uint64, uint64, error) { return s.H.Update(objects.StackPush, v) }

// Pop removes the top element, returning it (RetEmpty if empty) and the
// op id.
func (s Stack) Pop() (uint64, uint64, error) { return s.H.Update(objects.StackPop) }

// Peek returns the top element or RetEmpty.
func (s Stack) Peek() uint64 { return s.H.Read(objects.StackPeek) }

// Len returns the depth.
func (s Stack) Len() uint64 { return s.H.Read(objects.StackLen) }

// Set is a durable set of words.
type Set struct{ H *Handle }

// SetSpec returns the set's sequential specification.
func SetSpec() Spec { return objects.SetSpec{} }

// Add inserts v, returning RetOK (added) or RetFail (present) and the op id.
func (s Set) Add(v uint64) (uint64, uint64, error) { return s.H.Update(objects.SetAdd, v) }

// Remove deletes v, returning RetOK or RetFail and the op id.
func (s Set) Remove(v uint64) (uint64, uint64, error) { return s.H.Update(objects.SetRemove, v) }

// Contains reports (1/0) whether v is present.
func (s Set) Contains(v uint64) uint64 { return s.H.Read(objects.SetContains, v) }

// Len returns the cardinality.
func (s Set) Len() uint64 { return s.H.Read(objects.SetLen) }

// Deque is a durable double-ended queue.
type Deque struct{ H *Handle }

// DequeSpec returns the deque's sequential specification.
func DequeSpec() Spec { return objects.DequeSpec{} }

// PushFront prepends v.
func (d Deque) PushFront(v uint64) (uint64, uint64, error) {
	return d.H.Update(objects.DequePushFront, v)
}

// PushBack appends v.
func (d Deque) PushBack(v uint64) (uint64, uint64, error) {
	return d.H.Update(objects.DequePushBack, v)
}

// PopFront removes and returns the front element (RetEmpty if empty).
func (d Deque) PopFront() (uint64, uint64, error) { return d.H.Update(objects.DequePopFront) }

// PopBack removes and returns the back element (RetEmpty if empty).
func (d Deque) PopBack() (uint64, uint64, error) { return d.H.Update(objects.DequePopBack) }

// Front returns the front element or RetEmpty.
func (d Deque) Front() uint64 { return d.H.Read(objects.DequeFront) }

// Back returns the back element or RetEmpty.
func (d Deque) Back() uint64 { return d.H.Read(objects.DequeBack) }

// Len returns the length.
func (d Deque) Len() uint64 { return d.H.Read(objects.DequeLen) }

// PQueue is a durable min-priority queue.
type PQueue struct{ H *Handle }

// PQSpec returns the priority queue's sequential specification.
func PQSpec() Spec { return objects.PQSpec{} }

// Insert adds v, returning the new size and the op id.
func (p PQueue) Insert(v uint64) (uint64, uint64, error) { return p.H.Update(objects.PQInsert, v) }

// ExtractMin removes and returns the minimum (RetEmpty if empty).
func (p PQueue) ExtractMin() (uint64, uint64, error) { return p.H.Update(objects.PQExtractMin) }

// Min returns the minimum or RetEmpty.
func (p PQueue) Min() uint64 { return p.H.Read(objects.PQMin) }

// Len returns the size.
func (p PQueue) Len() uint64 { return p.H.Read(objects.PQLen) }

// AppendLog is a durable append-only sequence.
type AppendLog struct{ H *Handle }

// AppendLogSpec returns the append-only log's sequential specification.
func AppendLogSpec() Spec { return objects.LogSpec{} }

// Append appends v, returning its index and the op id.
func (l AppendLog) Append(v uint64) (uint64, uint64, error) {
	return l.H.Update(objects.LogAppend, v)
}

// At returns the element at index i, or RetMissing.
func (l AppendLog) At(i uint64) uint64 { return l.H.Read(objects.LogAt, i) }

// Len returns the number of elements.
func (l AppendLog) Len() uint64 { return l.H.Read(objects.LogLen) }

// OrderedMap is a durable sorted map with order queries (floor,
// ceiling, rank, select) — the index-tree-shaped object of the
// persistent-data-structure literature.
type OrderedMap struct{ H *Handle }

// OrderedMapSpec returns the sorted map's sequential specification.
func OrderedMapSpec() Spec { return objects.OrderedMapSpec{} }

// Put stores k -> v, returning the previous value (RetMissing if absent).
func (m OrderedMap) Put(k, v uint64) (uint64, uint64, error) {
	return m.H.Update(objects.OMapPut, k, v)
}

// Del removes k, returning the removed value or RetMissing.
func (m OrderedMap) Del(k uint64) (uint64, uint64, error) {
	return m.H.Update(objects.OMapDel, k)
}

// Get returns k's value or RetMissing.
func (m OrderedMap) Get(k uint64) uint64 { return m.H.Read(objects.OMapGet, k) }

// Floor returns the greatest key <= k, or RetMissing.
func (m OrderedMap) Floor(k uint64) uint64 { return m.H.Read(objects.OMapFloor, k) }

// Ceil returns the least key >= k, or RetMissing.
func (m OrderedMap) Ceil(k uint64) uint64 { return m.H.Read(objects.OMapCeil, k) }

// Rank returns the number of keys strictly below k.
func (m OrderedMap) Rank(k uint64) uint64 { return m.H.Read(objects.OMapRank, k) }

// Select returns the i-th smallest key (0-based), or RetMissing.
func (m OrderedMap) Select(i uint64) uint64 { return m.H.Read(objects.OMapSelect, i) }

// Min returns the smallest key or RetMissing.
func (m OrderedMap) Min() uint64 { return m.H.Read(objects.OMapMin) }

// Max returns the largest key or RetMissing.
func (m OrderedMap) Max() uint64 { return m.H.Read(objects.OMapMax) }

// Len returns the number of keys.
func (m OrderedMap) Len() uint64 { return m.H.Read(objects.OMapLen) }

// Bank is a durable account ledger whose conserved total makes
// crash-consistency bugs observable (see examples/bank).
type Bank struct{ H *Handle }

// BankSpec returns the ledger's sequential specification.
func BankSpec() Spec { return objects.BankSpec{} }

// Deposit adds amt to acct, returning the new balance and the op id.
func (b Bank) Deposit(acct, amt uint64) (uint64, uint64, error) {
	return b.H.Update(objects.BankDeposit, acct, amt)
}

// Withdraw removes amt from acct (RetFail on overdraft).
func (b Bank) Withdraw(acct, amt uint64) (uint64, uint64, error) {
	return b.H.Update(objects.BankWithdraw, acct, amt)
}

// Transfer moves amt from one account to another (RetOK/RetFail).
func (b Bank) Transfer(from, to, amt uint64) (uint64, uint64, error) {
	return b.H.Update(objects.BankTransfer, from, to, amt)
}

// Balance returns acct's balance.
func (b Bank) Balance(acct uint64) uint64 { return b.H.Read(objects.BankBalance, acct) }

// Total returns the sum of all balances (conserved by Transfer).
func (b Bank) Total() uint64 { return b.H.Read(objects.BankTotal) }
