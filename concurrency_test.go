package onll

// Concurrency smoke test for the sharded pool: N goroutine-backed
// handles hammer one instance with mixed updates and reads while other
// goroutines poll the (atomic) statistics, then the pool crashes and the
// linearized history is checked against what the workers observed. Run
// with -race; the lock-striped pmem rewrite is only trustworthy because
// this passes under it.

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/objects"
	"repro/internal/pmem"
)

func TestConcurrentHandlesSmoke(t *testing.T) {
	const (
		nprocs  = 8
		perProc = 300
	)
	variants := []struct {
		name string
		cfg  core.Config
	}{
		{"lockfree", core.Config{NProcs: nprocs, LocalViews: true, LogCapacity: nprocs*perProc + 64}},
		{"waitfree", core.Config{NProcs: nprocs, WaitFree: true, LocalViews: true, LogCapacity: nprocs*perProc + 64}},
		{"compacting", core.Config{NProcs: nprocs, LocalViews: true, CompactEvery: 64, LogCapacity: 1 << 10}},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			pool := pmem.New(1<<26, nil)
			in, err := core.New(pool, objects.CounterSpec{}, v.cfg)
			if err != nil {
				t.Fatal(err)
			}
			pool.ResetStats()

			// Stats pollers contend with the memory traffic on purpose:
			// StatsOf/TotalStats must never block or tear under -race.
			stop := make(chan struct{})
			var pollers sync.WaitGroup
			for k := 0; k < 2; k++ {
				pollers.Add(1)
				go func() {
					defer pollers.Done()
					for {
						select {
						case <-stop:
							return
						default:
							_ = pool.TotalStats()
							_ = pool.StatsOf(0)
						}
					}
				}()
			}

			ids := make([][]uint64, nprocs)
			var wg sync.WaitGroup
			for pid := 0; pid < nprocs; pid++ {
				wg.Add(1)
				go func(pid int) {
					defer wg.Done()
					h := in.Handle(pid)
					for i := 0; i < perProc; i++ {
						if i%3 == 0 { // mixed workload: 1/3 reads
							h.Read(objects.CounterGet)
							continue
						}
						_, id, err := h.Update(objects.CounterInc)
						if err != nil {
							panic(fmt.Sprintf("p%d update %d: %v", pid, i, err))
						}
						ids[pid] = append(ids[pid], id)
					}
				}(pid)
			}
			wg.Wait()
			close(stop)
			pollers.Wait()

			updates := 0
			for _, l := range ids {
				updates += len(l)
			}
			if pf := pool.TotalStats().PersistentFences; v.cfg.CompactEvery == 0 && pf != uint64(updates) {
				t.Fatalf("pfences %d for %d updates (want exactly 1/update)", pf, updates)
			}

			// Every completed update returned only after its persist
			// stage, so even the most adversarial crash keeps them all.
			pool.Crash(pmem.DropAll)
			in2, rep, err := core.Recover(pool, objects.CounterSpec{}, core.Config{})
			if err != nil {
				t.Fatal(err)
			}
			for pid, l := range ids {
				for _, id := range l {
					if _, ok := rep.WasLinearized(id); !ok {
						t.Fatalf("p%d: completed update %#x lost by recovery", pid, id)
					}
				}
			}
			if got := in2.Handle(0).Read(objects.CounterGet); got != uint64(updates) {
				t.Fatalf("recovered counter %d, want %d", got, updates)
			}
		})
	}
}
