package onll

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/pmem"
)

const testPoolSize = 1 << 24

func open(t testing.TB, sp Spec, cfg Config) (*Pool, *Instance) {
	t.Helper()
	pool := NewPool(testPoolSize, nil)
	in, err := Open(pool, sp, cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	pool.ResetStats()
	return pool, in
}

func TestCounterWrapper(t *testing.T) {
	_, in := open(t, CounterSpec(), Config{NProcs: 1})
	c := Counter{H: in.Handle(0)}
	if v, _, err := c.Inc(); err != nil || v != 1 {
		t.Fatalf("Inc: %d %v", v, err)
	}
	if v, _, err := c.Add(9); err != nil || v != 10 {
		t.Fatalf("Add: %d %v", v, err)
	}
	if v := c.Get(); v != 10 {
		t.Fatalf("Get: %d", v)
	}
}

func TestRegisterWrapper(t *testing.T) {
	_, in := open(t, RegisterSpec(), Config{NProcs: 1})
	r := Register{H: in.Handle(0)}
	if old, _, _ := r.Write(7); old != 0 {
		t.Fatalf("Write returned old=%d", old)
	}
	if v := r.Read(); v != 7 {
		t.Fatalf("Read: %d", v)
	}
}

func TestMapWrapper(t *testing.T) {
	_, in := open(t, MapSpec(), Config{NProcs: 1})
	m := Map{H: in.Handle(0)}
	if old, _, _ := m.Put(1, 10); old != RetMissing {
		t.Fatalf("Put: %d", old)
	}
	if v := m.Get(1); v != 10 {
		t.Fatalf("Get: %d", v)
	}
	if ok, _, _ := m.CAS(1, 10, 20); ok != RetOK {
		t.Fatalf("CAS: %d", ok)
	}
	if v, _, _ := m.Del(1); v != 20 {
		t.Fatalf("Del: %d", v)
	}
	if n := m.Len(); n != 0 {
		t.Fatalf("Len: %d", n)
	}
}

func TestQueueStackWrappers(t *testing.T) {
	_, in := open(t, QueueSpec(), Config{NProcs: 1})
	q := Queue{H: in.Handle(0)}
	q.Enq(1)
	q.Enq(2)
	if v := q.Front(); v != 1 {
		t.Fatalf("Front: %d", v)
	}
	if v, _, _ := q.Deq(); v != 1 {
		t.Fatalf("Deq: %d", v)
	}
	if n := q.Len(); n != 1 {
		t.Fatalf("Len: %d", n)
	}

	_, in2 := open(t, StackSpec(), Config{NProcs: 1})
	s := Stack{H: in2.Handle(0)}
	s.Push(1)
	s.Push(2)
	if v := s.Peek(); v != 2 {
		t.Fatalf("Peek: %d", v)
	}
	if v, _, _ := s.Pop(); v != 2 {
		t.Fatalf("Pop: %d", v)
	}
	if n := s.Len(); n != 1 {
		t.Fatalf("Len: %d", n)
	}
}

func TestSetDequePQLogWrappers(t *testing.T) {
	_, in := open(t, SetSpec(), Config{NProcs: 1})
	st := Set{H: in.Handle(0)}
	if ok, _, _ := st.Add(5); ok != RetOK {
		t.Fatal("Add")
	}
	if st.Contains(5) != 1 || st.Len() != 1 {
		t.Fatal("Contains/Len")
	}
	if ok, _, _ := st.Remove(5); ok != RetOK {
		t.Fatal("Remove")
	}

	_, in2 := open(t, DequeSpec(), Config{NProcs: 1})
	d := Deque{H: in2.Handle(0)}
	d.PushBack(2)
	d.PushFront(1)
	if d.Front() != 1 || d.Back() != 2 || d.Len() != 2 {
		t.Fatal("Deque front/back/len")
	}
	if v, _, _ := d.PopFront(); v != 1 {
		t.Fatal("PopFront")
	}
	if v, _, _ := d.PopBack(); v != 2 {
		t.Fatal("PopBack")
	}

	_, in3 := open(t, PQSpec(), Config{NProcs: 1})
	pq := PQueue{H: in3.Handle(0)}
	pq.Insert(5)
	pq.Insert(2)
	if pq.Min() != 2 || pq.Len() != 2 {
		t.Fatal("PQ min/len")
	}
	if v, _, _ := pq.ExtractMin(); v != 2 {
		t.Fatal("ExtractMin")
	}

	_, in4 := open(t, AppendLogSpec(), Config{NProcs: 1})
	al := AppendLog{H: in4.Handle(0)}
	if i, _, _ := al.Append(42); i != 0 {
		t.Fatal("Append idx")
	}
	if al.At(0) != 42 || al.Len() != 1 || al.At(9) != RetMissing {
		t.Fatal("At/Len")
	}
}

func TestBankWrapperConservation(t *testing.T) {
	_, in := open(t, BankSpec(), Config{NProcs: 2})
	b0, b1 := Bank{H: in.Handle(0)}, Bank{H: in.Handle(1)}
	b0.Deposit(1, 1000)
	for i := 0; i < 50; i++ {
		b0.Transfer(1, 2, 5)
		b1.Transfer(2, 1, 3)
	}
	if tot := b0.Total(); tot != 1000 {
		t.Fatalf("Total: %d (conservation violated)", tot)
	}
	if ok, _, _ := b1.Withdraw(2, 1<<40); ok != RetFail {
		t.Fatal("overdraft accepted")
	}
}

func TestPublicCrashRecoveryFlow(t *testing.T) {
	pool, in := open(t, MapSpec(), Config{NProcs: 2})
	m := Map{H: in.Handle(0)}
	var ids []uint64
	for i := uint64(0); i < 10; i++ {
		_, id, err := m.Put(i, i*i)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	pool.Crash(DropAll)
	in2, rep, err := Recover(pool, MapSpec(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if _, ok := rep.WasLinearized(id); !ok {
			t.Fatalf("op %#x lost", id)
		}
	}
	m2 := Map{H: in2.Handle(0)}
	for i := uint64(0); i < 10; i++ {
		if v := m2.Get(i); v != i*i {
			t.Fatalf("key %d: %d", i, v)
		}
	}
}

func TestPoolFileRoundTripThroughPublicAPI(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pool.img")

	pool, in := open(t, CounterSpec(), Config{NProcs: 1})
	c := Counter{H: in.Handle(0)}
	for i := 0; i < 7; i++ {
		c.Inc()
	}
	// Power-cycle across the file: only the durable image travels.
	pool.Crash(DropAll)
	if err := pool.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	pool2, err := LoadPool(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	in2, rep, err := Recover(pool2, CounterSpec(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.LastIdx != 7 {
		t.Fatalf("recovered %d ops", rep.LastIdx)
	}
	if v := (Counter{H: in2.Handle(0)}).Get(); v != 7 {
		t.Fatalf("value %d", v)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}

func TestSeededOracleExported(t *testing.T) {
	o := SeededOracle(1, 1, 2)
	if o(0) != pmem.SeededOracle(1, 1, 2)(0) {
		t.Fatal("SeededOracle wrapper differs")
	}
	_ = KeepAll
}

func TestFencePolicyThroughPublicAPI(t *testing.T) {
	// The headline claim, measured through the public API: exactly one
	// persistent fence per update across all objects, zero per read.
	specs := map[string]struct {
		sp  Spec
		upd func(*Handle) error
		rd  func(*Handle)
	}{
		"counter": {CounterSpec(),
			func(h *Handle) error { _, _, err := (Counter{H: h}).Inc(); return err },
			func(h *Handle) { (Counter{H: h}).Get() }},
		"map": {MapSpec(),
			func(h *Handle) error { _, _, err := (Map{H: h}).Put(1, 2); return err },
			func(h *Handle) { (Map{H: h}).Get(1) }},
		"queue": {QueueSpec(),
			func(h *Handle) error { _, _, err := (Queue{H: h}).Enq(3); return err },
			func(h *Handle) { (Queue{H: h}).Len() }},
	}
	for name, tc := range specs {
		t.Run(name, func(t *testing.T) {
			pool, in := open(t, tc.sp, Config{NProcs: 1})
			h := in.Handle(0)
			const n = 50
			for i := 0; i < n; i++ {
				if err := tc.upd(h); err != nil {
					t.Fatal(err)
				}
				tc.rd(h)
			}
			st := pool.StatsOf(0)
			if st.PersistentFences != n {
				t.Fatalf("%d persistent fences for %d updates", st.PersistentFences, n)
			}
		})
	}
}
