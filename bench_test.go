package onll

// One testing.B benchmark per experiment table (DESIGN.md §4). The
// interesting metric is usually not ns/op (the substrate is a simulator)
// but the custom metrics: pfences/op — the quantity the paper bounds —
// and, for E8/E10, how cost scales with history size. Each benchmark
// reports pfences/op via b.ReportMetric.

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/lowerbound"
	"repro/internal/objects"
	"repro/internal/plog"
	"repro/internal/pmem"
	"repro/internal/spec"
)

const benchPool = 1 << 26

// resetEvery bounds per-instance work so logs and pools never fill,
// whatever b.N is; instances are recreated outside the timer.
const resetEvery = 1 << 14

// benchObj runs op b.N times against objects produced by make,
// recreating the object every resetEvery iterations (outside the
// timer), and reports persistent fences and allocations per op (the
// allocation-free steady-state claim is regression-guarded here).
func benchObj(b *testing.B, make func() (*pmem.Pool, baselines.Object), op func(obj baselines.Object, i int)) {
	b.Helper()
	var pool *pmem.Pool
	var obj baselines.Object
	var pfences uint64
	rotate := func() {
		if pool != nil {
			pfences += pool.TotalStats().PersistentFences
		}
		pool, obj = make()
		pool.ResetStats()
	}
	b.ReportAllocs()
	b.StopTimer()
	rotate()
	b.StartTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 && i%resetEvery == 0 {
			b.StopTimer()
			rotate()
			b.StartTimer()
		}
		op(obj, i)
	}
	b.StopTimer()
	pfences += pool.TotalStats().PersistentFences
	b.ReportMetric(float64(pfences)/float64(b.N), "pfences/op")
}

func mkONLL(b *testing.B, sp spec.Spec, cfg core.Config) func() (*pmem.Pool, baselines.Object) {
	b.Helper()
	return func() (*pmem.Pool, baselines.Object) {
		pool := pmem.New(benchPool, nil)
		if cfg.LogCapacity == 0 {
			cfg.LogCapacity = resetEvery + 64
		}
		in, err := core.New(pool, sp, cfg)
		if err != nil {
			b.Fatal(err)
		}
		return pool, baselines.ONLLAdapter{In: in}
	}
}

// BenchmarkE1_FencesPerUpdate regenerates the E1 table: one persistent
// fence per update, for each object.
func BenchmarkE1_FencesPerUpdate(b *testing.B) {
	cases := []struct {
		name string
		sp   spec.Spec
		code uint64
		args []uint64
	}{
		{"counter_inc", objects.CounterSpec{}, objects.CounterInc, nil},
		{"register_write", objects.RegisterSpec{}, objects.RegisterWrite, []uint64{7}},
		{"stack_push", objects.StackSpec{}, objects.StackPush, []uint64{7}},
		{"queue_enq", objects.QueueSpec{}, objects.QueueEnq, []uint64{7}},
		{"map_put", objects.MapSpec{}, objects.MapPut, []uint64{3, 9}},
		{"set_add", objects.SetSpec{}, objects.SetAdd, []uint64{5}},
		{"pq_insert", objects.PQSpec{}, objects.PQInsert, []uint64{11}},
		{"bank_deposit", objects.BankSpec{}, objects.BankDeposit, []uint64{1, 5}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			benchObj(b, mkONLL(b, tc.sp, core.Config{NProcs: 1, LocalViews: true}),
				func(obj baselines.Object, i int) {
					if _, err := obj.Update(0, tc.code, tc.args...); err != nil {
						b.Fatal(err)
					}
				})
		})
	}
}

// BenchmarkE1_ReadsNoFence: reads never fence (pfences/op must be 0).
func BenchmarkE1_ReadsNoFence(b *testing.B) {
	pool := pmem.New(benchPool, nil)
	in, err := core.New(pool, objects.CounterSpec{}, core.Config{NProcs: 1, LocalViews: true})
	if err != nil {
		b.Fatal(err)
	}
	h := in.Handle(0)
	for i := 0; i < 1000; i++ {
		if _, _, err := h.Update(objects.CounterInc); err != nil {
			b.Fatal(err)
		}
	}
	pool.ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Read(objects.CounterGet)
	}
	b.StopTimer()
	st := pool.TotalStats()
	b.ReportMetric(float64(st.PersistentFences)/float64(b.N), "pfences/op")
	if st.PersistentFences != 0 || st.Stores != 0 {
		b.Fatalf("reads touched NVM: %+v", st)
	}
}

// BenchmarkE2_LowerBound times the construction of the Theorem 6.3
// executions themselves (scheduler + fence accounting).
func BenchmarkE2_LowerBound(b *testing.B) {
	for _, n := range []int{2, 8} {
		b.Run(fmt.Sprintf("case1_n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := lowerbound.Case1(n, false)
				if err != nil || !res.Satisfied() {
					b.Fatalf("%v %v", res, err)
				}
			}
		})
		b.Run(fmt.Sprintf("case2_n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := lowerbound.Case2(n, false)
				if err != nil || !res.Satisfied() {
					b.Fatalf("%v %v", res, err)
				}
			}
		})
	}
}

// BenchmarkE6_Baselines regenerates the E6 comparison: updates/sec and
// pfences/op for ONLL vs flat combining vs eager vs naive.
func BenchmarkE6_Baselines(b *testing.B) {
	sp := objects.CounterSpec{}
	impls := []struct {
		name string
		mk   func() (*pmem.Pool, baselines.Object)
	}{
		{"onll", mkONLL(b, sp, core.Config{NProcs: 1, LocalViews: true})},
		{"flatcombining", func() (*pmem.Pool, baselines.Object) {
			pool := pmem.New(benchPool, nil)
			fc, err := baselines.NewFlatCombining(pool, sp, 1, resetEvery+64)
			if err != nil {
				b.Fatal(err)
			}
			return pool, fc
		}},
		{"eager", func() (*pmem.Pool, baselines.Object) {
			pool := pmem.New(benchPool, nil)
			eg, err := baselines.NewEager(pool, sp, 1)
			if err != nil {
				b.Fatal(err)
			}
			return pool, eg
		}},
		{"naive", func() (*pmem.Pool, baselines.Object) {
			pool := pmem.New(benchPool, nil)
			nv, err := baselines.NewNaive(pool, sp, 1<<10)
			if err != nil {
				b.Fatal(err)
			}
			return pool, nv
		}},
	}
	for _, im := range impls {
		b.Run(im.name, func(b *testing.B) {
			benchObj(b, im.mk, func(obj baselines.Object, i int) {
				if _, err := obj.Update(0, objects.CounterInc); err != nil {
					b.Fatal(err)
				}
			})
		})
	}
}

// BenchmarkE6_Contended runs 4 simulated processes concurrently. The
// constructors receive the sub-benchmark's iteration count so that
// logs and pools are sized for the whole run (flat combining has no
// truncation, the eager list allocates a node per update).
func BenchmarkE6_Contended(b *testing.B) {
	const nprocs = 4
	sp := objects.CounterSpec{}
	impls := []struct {
		name string
		mk   func(b *testing.B) (*pmem.Pool, baselines.Object)
	}{
		{"onll", func(b *testing.B) (*pmem.Pool, baselines.Object) {
			pool := pmem.New(benchPool, nil)
			in, err := core.New(pool, sp, core.Config{
				NProcs: nprocs, LocalViews: true, CompactEvery: 1 << 10, LogCapacity: 1 << 12,
			})
			if err != nil {
				b.Fatal(err)
			}
			return pool, baselines.ONLLAdapter{In: in}
		}},
		{"flatcombining", func(b *testing.B) (*pmem.Pool, baselines.Object) {
			capacity := b.N + nprocs + 64
			pool := pmem.New(plog.RegionBytes(capacity, nprocs)+(1<<22), nil)
			fc, err := baselines.NewFlatCombining(pool, sp, nprocs, capacity)
			if err != nil {
				b.Fatal(err)
			}
			return pool, fc
		}},
		{"eager", func(b *testing.B) (*pmem.Pool, baselines.Object) {
			pool := pmem.New((b.N+64)*pmem.LineSize+(1<<22), nil)
			eg, err := baselines.NewEager(pool, sp, nprocs)
			if err != nil {
				b.Fatal(err)
			}
			return pool, eg
		}},
	}
	for _, im := range impls {
		b.Run(im.name, func(b *testing.B) {
			pool, obj := im.mk(b)
			pool.ResetStats()
			per := b.N/nprocs + 1
			b.ResetTimer()
			var wg sync.WaitGroup
			for pid := 0; pid < nprocs; pid++ {
				wg.Add(1)
				go func(pid int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						if _, err := obj.Update(pid, objects.CounterInc); err != nil {
							panic(err)
						}
					}
				}(pid)
			}
			wg.Wait()
			b.StopTimer()
			tot := pool.TotalStats()
			b.ReportMetric(float64(tot.PersistentFences)/float64(per*nprocs), "pfences/op")
		})
	}
}

// BenchmarkE7_FenceOrdering: ONLL vs the eager transform, updates and
// reads separately.
func BenchmarkE7_FenceOrdering(b *testing.B) {
	b.Run("onll_update", func(b *testing.B) {
		benchObj(b, mkONLL(b, objects.CounterSpec{}, core.Config{NProcs: 1, LocalViews: true}),
			func(obj baselines.Object, i int) { obj.Update(0, objects.CounterInc) })
	})
	b.Run("eager_update", func(b *testing.B) {
		benchObj(b, func() (*pmem.Pool, baselines.Object) {
			pool := pmem.New(benchPool, nil)
			eg, err := baselines.NewEager(pool, objects.CounterSpec{}, 1)
			if err != nil {
				b.Fatal(err)
			}
			return pool, eg
		}, func(obj baselines.Object, i int) { obj.Update(0, objects.CounterInc) })
	})
	b.Run("eager_read_hot", func(b *testing.B) {
		pool := pmem.New(1<<28, nil)
		eg, err := baselines.NewEager(pool, objects.CounterSpec{}, 2)
		if err != nil {
			b.Fatal(err)
		}
		pool.ResetStats()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%resetEvery == 0 {
				eg.Update(0, objects.CounterInc) // keep the head line hot
			}
			eg.Read(1, objects.CounterGet)
		}
		b.StopTimer()
		st := pool.StatsOf(1)
		b.ReportMetric(float64(st.Fences+st.PersistentFences)/float64(b.N), "fences/op")
	})
}

// BenchmarkE8_ReadScaling: read latency vs history length, with and
// without local views.
func BenchmarkE8_ReadScaling(b *testing.B) {
	for _, histLen := range []int{100, 1000, 10000} {
		for _, lv := range []bool{false, true} {
			name := fmt.Sprintf("hist%d_replayall", histLen)
			if lv {
				name = fmt.Sprintf("hist%d_localviews", histLen)
			}
			b.Run(name, func(b *testing.B) {
				pool := pmem.New(benchPool, nil)
				in, err := core.New(pool, objects.CounterSpec{}, core.Config{
					NProcs: 1, LocalViews: lv, LogCapacity: histLen*2 + 64,
				})
				if err != nil {
					b.Fatal(err)
				}
				h := in.Handle(0)
				for i := 0; i < histLen; i++ {
					if _, _, err := h.Update(objects.CounterInc); err != nil {
						b.Fatal(err)
					}
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if got := h.Read(objects.CounterGet); got != uint64(histLen) {
						b.Fatalf("read %d", got)
					}
				}
			})
		}
	}
}

// BenchmarkE9_Compaction: update cost with and without compaction (the
// snapshot fence is amortized over CompactEvery updates).
func BenchmarkE9_Compaction(b *testing.B) {
	for _, ce := range []int{0, 64, 1024} {
		name := "off"
		if ce > 0 {
			name = fmt.Sprintf("every%d", ce)
		}
		b.Run(name, func(b *testing.B) {
			benchObj(b, mkONLL(b, objects.CounterSpec{}, core.Config{
				NProcs: 1, LocalViews: true, CompactEvery: ce,
			}), func(obj baselines.Object, i int) {
				if _, err := obj.Update(0, objects.CounterInc); err != nil {
					b.Fatal(err)
				}
			})
		})
	}
}

// BenchmarkE10_Recovery: recovery time vs surviving history size.
func BenchmarkE10_Recovery(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("ops%d", n), func(b *testing.B) {
			pool := pmem.New(benchPool, nil)
			in, err := core.New(pool, objects.CounterSpec{}, core.Config{NProcs: 2, LogCapacity: n + 64})
			if err != nil {
				b.Fatal(err)
			}
			for pid := 0; pid < 2; pid++ {
				h := in.Handle(pid)
				for i := 0; i < n/2; i++ {
					if _, _, err := h.Update(objects.CounterInc); err != nil {
						b.Fatal(err)
					}
				}
			}
			pool.Crash(pmem.DropAll)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, rep, err := core.Recover(pool, objects.CounterSpec{}, core.Config{})
				if err != nil {
					b.Fatal(err)
				}
				if rep.LastIdx != uint64(n) {
					b.Fatalf("recovered %d", rep.LastIdx)
				}
			}
			b.ReportMetric(float64(n), "ops-recovered")
		})
	}
}

// BenchmarkE12_WaitFree: the wait-free ordering vs the lock-free one.
func BenchmarkE12_WaitFree(b *testing.B) {
	for _, wf := range []bool{false, true} {
		name := "lockfree"
		if wf {
			name = "waitfree"
		}
		b.Run(name, func(b *testing.B) {
			benchObj(b, mkONLL(b, objects.CounterSpec{}, core.Config{
				NProcs: 1, WaitFree: wf, LocalViews: true,
			}), func(obj baselines.Object, i int) {
				if _, err := obj.Update(0, objects.CounterInc); err != nil {
					b.Fatal(err)
				}
			})
		})
	}
}

// BenchmarkSubstrates: raw costs of the building blocks.
func BenchmarkSubstrates(b *testing.B) {
	b.Run("pmem_store_persist_line", func(b *testing.B) {
		pool := pmem.New(1<<22, nil)
		a := pool.MustAlloc(pmem.LineSize)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pool.Store(0, a, uint64(i))
			pool.Persist(0, a, 8)
		}
	})
	b.Run("plog_append", func(b *testing.B) {
		pool := pmem.New(benchPool, nil)
		l, err := plog.Create(pool, 0, 1<<12, 4)
		if err != nil {
			b.Fatal(err)
		}
		pool.ResetStats()
		ops := []spec.Op{{Code: 1, Args: [3]uint64{2, 3, 4}, ID: 5}}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i > 0 && i%(1<<11) == 0 {
				if err := l.Truncate(l.NextSeq() - 2); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := l.Append(ops, uint64(i)+1); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		st := pool.StatsOf(0)
		// Truncations add their own fences; appends dominate.
		b.ReportMetric(float64(st.PersistentFences)/float64(b.N), "pfences/op")
	})
}

// BenchmarkScrub: one on-demand scrubber pass (DESIGN.md §3.7) over a
// populated instance — the full checksum walk of every log's durable
// image, cache bypassed. The paper-relevant metric is pfences/op = 0:
// the scrubber issues no stores, flushes or fences and is invisible to
// the cost accounting; ns/op sizes the maintenance work against the
// number of live records it re-verifies.
func BenchmarkScrub(b *testing.B) {
	for _, ops := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("ops=%d", ops), func(b *testing.B) {
			pool := pmem.New(benchPool, nil)
			in, err := core.New(pool, objects.MapSpec{}, core.Config{
				NProcs: 4, LogCapacity: ops/2 + 64,
			})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < ops; i++ {
				h := in.Handle(i % 4)
				if _, _, err := h.Update(objects.MapPut, uint64(i), uint64(i)); err != nil {
					b.Fatal(err)
				}
			}
			before := pool.TotalStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if rep := in.Scrub(); rep.Faulty {
					b.Fatal("clean instance scrubbed faulty")
				}
			}
			b.StopTimer()
			after := pool.TotalStats()
			b.ReportMetric(float64(after.PersistentFences-before.PersistentFences)/float64(b.N), "pfences/op")
			b.ReportMetric(float64(after.Fences-before.Fences)/float64(b.N), "fences/op")
		})
	}
}
