package onll

// Regression tests pinning the persistence cost of the version-stamped
// read fast path (core.Config.ReadFastPath): the fast path must not add
// persistence traffic. YCSB-C (read-only) stays at exactly ZERO
// persistent fences, and an update-only run stays at exactly ONE fence
// per update — identical to the fast-path-off construction. Reads also
// stay allocation-free (BenchmarkReadSteadyState guards allocs; these
// tests guard fences, which allocs cannot proxy for).

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/objects"
	"repro/internal/pmem"
	"repro/internal/workload"
)

// TestReadFastPathPfencesYCSBC: the read-only mix over a preloaded
// ordered map, fast path on, 8 processes — zero persistent fences, and
// zero ordinary fences from the read path too (reads write nothing).
func TestReadFastPathPfencesYCSBC(t *testing.T) {
	const nprocs = 8
	pool := pmem.New(workload.ThroughputPoolBytes(nprocs), nil)
	in, err := core.New(pool, objects.OrderedMapSpec{}, core.Config{
		NProcs: nprocs, ReadFastPath: true,
		LogCapacity: workload.ThroughputLogCapacity(nprocs),
	})
	if err != nil {
		t.Fatal(err)
	}
	y := workload.NewYCSB(workload.YCSBC)
	if err := y.Preload(in.Handle(0)); err != nil {
		t.Fatal(err)
	}
	streams, updates := y.Streams(nprocs, 400)
	if updates != 0 {
		t.Fatalf("YCSB-C generated %d updates", updates)
	}
	pool.ResetStats()
	var wg sync.WaitGroup
	for pid := 0; pid < nprocs; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			if err := workload.RunSteps(in.Handle(pid), streams[pid]); err != nil {
				panic(err)
			}
		}(pid)
	}
	wg.Wait()
	if pf := pool.TotalStats().PersistentFences; pf != 0 {
		t.Fatalf("YCSB-C with ReadFastPath: %d persistent fences, want exactly 0", pf)
	}
}

// TestReadFastPathPfencesUpdates: update-only counter run, fast path
// on, compaction off — exactly one persistent fence per update, no
// more, no fewer (the epoch bump and shared-view publication are
// volatile and must stay so).
func TestReadFastPathPfencesUpdates(t *testing.T) {
	const nprocs = 8
	const perProc = 300
	pool := pmem.New(1<<26, nil)
	in, err := core.New(pool, objects.CounterSpec{}, core.Config{
		NProcs: nprocs, ReadFastPath: true, LogCapacity: 1 << 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	pool.ResetStats()
	var wg sync.WaitGroup
	for pid := 0; pid < nprocs; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			h := in.Handle(pid)
			for i := 0; i < perProc; i++ {
				if _, _, err := h.Update(objects.CounterInc); err != nil {
					panic(err)
				}
				h.Read(objects.CounterGet) // interleaved reads must stay free
			}
		}(pid)
	}
	wg.Wait()
	if pf, want := pool.TotalStats().PersistentFences, uint64(nprocs*perProc); pf != want {
		t.Fatalf("updates with ReadFastPath: %d persistent fences for %d updates, want exactly 1/update", pf, want)
	}
}
