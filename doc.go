// Package onll is a from-scratch reproduction of "The Inherent Cost of
// Remembering Consistently" (Cohen, Guerraoui, Zablotchi — SPAA 2018):
// fence-optimal durable data structures via the ONLL universal
// construction, together with the paper's lower bound, on a simulated
// persistent-memory substrate.
//
// The paper proves that lock-free durably linearizable objects need
// exactly one persistent fence per update operation: an upper bound via
// the ONLL ("Order Now, Linearize Later") universal construction —
// one persistent fence per update, none per read — and a matching lower
// bound (in the worst case every process pays one persistent fence per
// update it invokes).
//
// This package is the public surface:
//
//   - Open / Recover build durably linearizable instances of any
//     deterministic sequential object (spec.Spec) over a simulated NVM
//     pool, with detectable execution on recovery.
//   - Typed wrappers (Counter, Map, Queue, Stack, Set, Register, Deque,
//     PQueue, AppendLog, Bank) give ergonomic access to the shipped
//     object specifications.
//   - Options enable the Section 8 extensions: wait-free ordering,
//     per-process local views for fast reads, and compaction (bounded
//     memory via snapshot records).
//
// The simulated substrate (internal/pmem) counts loads, stores, flushes
// and — the quantity the paper bounds — persistent fences, per process.
// See DESIGN.md for the substitution argument and EXPERIMENTS.md for the
// reproduced claims.
//
// The structural invariants behind those claims — no fence reachable
// from the read surface, no plain access to atomic fields, seqlock
// regions that cannot leak or block, allocation/clock/lock-free hot
// paths, cache-line-exact padded layouts — are statically enforced by
// the analyzer suite in internal/analysis:
//
//	go run ./cmd/onllvet ./...
//
// runs the suite (plus stock go vet) over the module and exits
// non-zero on any violation; DESIGN.md §3.11 catalogs the rules and
// internal/analysis/doc.go specifies the //onll: annotations.
package onll
