// queue: a durable producer/consumer work queue.
//
// Producers enqueue jobs, consumers dequeue and "execute" them. A crash
// hits mid-stream; after recovery the example proves the exactly-once
// accounting a durable queue gives you: every job is either still in
// the queue, or its dequeue committed — never both, never neither (for
// jobs whose enqueue committed).
package main

import (
	"fmt"
	"log"
	"sync"

	onll "repro"
	"repro/internal/sched"
)

const (
	producers = 2
	consumers = 2
	nprocs    = producers + consumers
	jobs      = 60 // per producer
)

func main() {
	gate := sched.NewStepCounter(2000, nil) // crash mid-stream
	pool := onll.NewPool(1<<25, gate)
	in, err := onll.Open(pool, onll.QueueSpec(), onll.Config{NProcs: nprocs})
	if err != nil {
		log.Fatal(err)
	}

	var mu sync.Mutex
	enqueuedIDs := map[uint64]uint64{} // op id -> job payload
	dequeued := map[uint64]bool{}      // payload -> consumed pre-crash (completed deqs)

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			defer swallowKill()
			q := onll.Queue{H: in.Handle(pid)}
			for i := 0; i < jobs; i++ {
				payload := uint64(pid)<<32 | uint64(i)
				id := in.Handle(pid).NextOpID()
				mu.Lock()
				enqueuedIDs[id] = payload
				mu.Unlock()
				if _, _, err := q.Enq(payload); err != nil {
					panic(err)
				}
			}
		}(p)
	}
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			defer swallowKill()
			q := onll.Queue{H: in.Handle(pid)}
			for {
				v, _, err := q.Deq()
				if err != nil {
					panic(err)
				}
				if v == onll.RetEmpty {
					return
				}
				mu.Lock()
				dequeued[v] = true
				mu.Unlock()
			}
		}(producers + c)
	}
	wg.Wait()

	fmt.Printf("crash after %d steps\n", gate.Steps())
	pool.Crash(onll.DropAll)
	pool.SetGate(nil)
	in2, report, err := onll.Recover(pool, onll.QueueSpec(), onll.Config{})
	if err != nil {
		log.Fatal(err)
	}
	q := onll.Queue{H: in2.Handle(0)}

	// Drain the recovered queue.
	inQueue := map[uint64]bool{}
	for {
		v, _, err := q.Deq()
		if err != nil {
			log.Fatal(err)
		}
		if v == onll.RetEmpty {
			break
		}
		if inQueue[v] {
			log.Fatalf("job %#x recovered twice in the queue", v)
		}
		inQueue[v] = true
	}

	committedEnq, lostEnq, consumed, violations := 0, 0, 0, 0
	for id, payload := range enqueuedIDs {
		if _, ok := report.WasLinearized(id); !ok {
			lostEnq++
			if inQueue[payload] {
				log.Fatalf("job %#x survived although its enqueue never committed", payload)
			}
			continue
		}
		committedEnq++
		inQ := inQueue[payload]
		wasConsumed := dequeued[payload]
		switch {
		case inQ && wasConsumed:
			// Consumed pre-crash: the dequeue completed, so it must be
			// durable — the job must NOT reappear.
			violations++
			fmt.Printf("VIOLATION: job %#x consumed pre-crash but recovered in queue\n", payload)
		case inQ || wasConsumed:
			consumed += b2i(wasConsumed)
		default:
			// Enqueue committed, job absent, never consumed by a
			// completed dequeue: its dequeue was in flight at the
			// crash and committed (allowed: linearized, no response).
			consumed++
		}
	}
	fmt.Printf("enqueues committed: %d, in-flight enqueues lost: %d\n", committedEnq, lostEnq)
	fmt.Printf("jobs consumed (incl. in-flight committed dequeues): %d, still queued: %d\n",
		consumed, len(inQueue))
	if violations > 0 {
		log.Fatalf("%d exactly-once violations", violations)
	}
	if consumed+len(inQueue) != committedEnq {
		log.Fatalf("accounting broken: %d consumed + %d queued != %d committed",
			consumed, len(inQueue), committedEnq)
	}
	fmt.Println("exactly-once accounting holds across the crash")
}

func swallowKill() {
	if r := recover(); r != nil && !sched.IsKilled(r) {
		panic(r)
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
