// kvstore: a durable key-value store with crash recovery and detectable
// execution.
//
// Three writer processes race to populate a map while a power failure
// is injected at a random shared-memory step. After recovery the
// example uses the detectability report to tell, for every write it
// attempted, whether it committed — the exact question an application
// resuming after a power failure must answer — and verifies that every
// write whose response was seen before the crash survived.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	onll "repro"
	"repro/internal/sched"
)

const (
	nprocs  = 3
	perProc = 40
)

type attempt struct {
	key, val  uint64
	id        uint64
	completed bool
}

func main() {
	seed := int64(42)
	rng := rand.New(rand.NewSource(seed))

	// First, a dry run to learn the execution length, then a crash at
	// a uniformly random step of a fresh run.
	steps := run(nil, nil)
	crashAt := uint64(rng.Int63n(int64(steps))) + 1
	fmt.Printf("dry run took %d shared-memory steps; crashing the real run at step %d\n", steps, crashAt)

	var pool *onll.Pool
	var attempts [][]attempt
	gate := sched.NewStepCounter(crashAt, nil)
	run(gate, func(p *onll.Pool, a [][]attempt) { pool, attempts = p, a })

	pool.Crash(onll.SeededOracle(uint64(seed), 1, 2))
	pool.SetGate(nil)
	in, report, err := onll.Recover(pool, onll.MapSpec(), onll.Config{})
	if err != nil {
		log.Fatal(err)
	}
	m := onll.Map{H: in.Handle(0)}

	committed, lost, violations := 0, 0, 0
	for pid := range attempts {
		for _, at := range attempts[pid] {
			_, ok := report.WasLinearized(at.id)
			switch {
			case ok:
				committed++
				if got := m.Get(at.key); got != at.val {
					// Another committed write may have overwritten it;
					// only flag a violation if the key is absent.
					if got == onll.RetMissing {
						violations++
					}
				}
			case at.completed:
				// Completed before the crash but not recovered: a
				// durable-linearizability violation.
				violations++
			default:
				lost++
			}
		}
	}
	fmt.Printf("writes committed: %d, in-flight writes lost: %d\n", committed, lost)
	fmt.Printf("store size after recovery: %d keys\n", m.Len())
	if violations > 0 {
		log.Fatalf("DURABILITY VIOLATIONS: %d", violations)
	}
	fmt.Println("no completed write was lost; every loss was an in-flight op — durable linearizability holds")
}

// run executes the workload; with a crashing gate it ends early. It
// reports the total gate steps taken, and hands pool+attempts to sink.
func run(gate *sched.StepCounter, sink func(*onll.Pool, [][]attempt)) uint64 {
	if gate == nil {
		gate = sched.NewStepCounter(0, nil)
	}
	pool := onll.NewPool(1<<25, gate)
	in, err := onll.Open(pool, onll.MapSpec(), onll.Config{NProcs: nprocs})
	if err != nil {
		log.Fatal(err)
	}
	attempts := make([][]attempt, nprocs)
	var wg sync.WaitGroup
	for pid := 0; pid < nprocs; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil && !sched.IsKilled(r) {
					panic(r)
				}
			}()
			m := onll.Map{H: in.Handle(pid)}
			for i := 0; i < perProc; i++ {
				key := uint64(pid)<<32 | uint64(i)
				val := key*7 + 1
				rec := attempt{key: key, val: val, id: in.Handle(pid).NextOpID()}
				attempts[pid] = append(attempts[pid], rec)
				if _, _, err := m.Put(key, val); err != nil {
					panic(err)
				}
				attempts[pid][len(attempts[pid])-1].completed = true
			}
		}(pid)
	}
	wg.Wait()
	if sink != nil {
		sink(pool, attempts)
	}
	return gate.Steps()
}
