// detectable: exactly-once external side effects via detectable
// execution.
//
// The classic problem: an application appends an order to a durable
// log and then ships it (an external, unrecoverable side effect). If
// the machine crashes between the two, did the order commit? Replaying
// blindly double-ships; dropping blindly loses orders.
//
// ONLL's detectable execution answers the question exactly: after
// recovery, WasLinearized(opID) says whether the append took effect.
// The paper proves this comes at no extra fence cost — the same single
// persistent fence per update.
//
// This example runs order processors that are killed by a crash at an
// arbitrary point, recovers, and uses the report to resubmit exactly
// the lost orders and ship exactly the committed ones: no order is
// ever shipped twice or lost.
package main

import (
	"fmt"
	"log"
	"sync"

	onll "repro"
	"repro/internal/sched"
)

const (
	processors = 3
	orders     = 25 // per processor
)

type submission struct {
	order uint64 // payload
	opID  uint64 // the id its append will carry
}

func main() {
	gate := sched.NewStepCounter(500, nil)
	pool := onll.NewPool(1<<25, gate)
	in, err := onll.Open(pool, onll.AppendLogSpec(), onll.Config{NProcs: processors})
	if err != nil {
		log.Fatal(err)
	}

	// Each processor records WHAT it is about to submit (order id and
	// the op id it will carry) in its local ledger before invoking.
	// On real hardware this ledger would itself be durable; here the
	// point is the protocol, so a Go slice suffices.
	ledgers := make([][]submission, processors)
	var wg sync.WaitGroup
	for p := 0; p < processors; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil && !sched.IsKilled(r) {
					panic(r)
				}
			}()
			al := onll.AppendLog{H: in.Handle(pid)}
			for i := 0; i < orders; i++ {
				order := uint64(pid)<<32 | uint64(i)
				ledgers[pid] = append(ledgers[pid], submission{order, in.Handle(pid).NextOpID()})
				if _, _, err := al.Append(order); err != nil {
					panic(err)
				}
			}
		}(p)
	}
	wg.Wait()

	fmt.Printf("power failure after %d steps\n", gate.Steps())
	pool.Crash(onll.DropAll)
	pool.SetGate(nil)

	in2, report, err := onll.Recover(pool, onll.AppendLogSpec(), onll.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// Resolution pass: ship committed orders once; resubmit lost ones.
	shipped := map[uint64]int{}
	resubmitted := 0
	for pid := range ledgers {
		al := onll.AppendLog{H: in2.Handle(pid)}
		for _, sub := range ledgers[pid] {
			if _, ok := report.WasLinearized(sub.opID); ok {
				shipped[sub.order]++ // side effect happens exactly here
			} else {
				if _, _, err := al.Append(sub.order); err != nil {
					log.Fatal(err)
				}
				resubmitted++
				shipped[sub.order]++
			}
		}
	}

	dupes := 0
	for order, n := range shipped {
		if n != 1 {
			dupes++
			fmt.Printf("order %#x shipped %d times!\n", order, n)
		}
	}
	total := int(onll.AppendLog{H: in2.Handle(0)}.Len())
	fmt.Printf("orders shipped: %d (resubmitted after crash: %d)\n", len(shipped), resubmitted)
	fmt.Printf("durable log now holds %d appends\n", total)
	if dupes > 0 {
		log.Fatalf("%d duplicate shipments", dupes)
	}
	if len(shipped) != processors*orders {
		// Processors killed mid-loop never attempted their remaining
		// orders; that is expected. Check only attempted ones.
		fmt.Printf("(%d orders were never attempted before the crash)\n",
			processors*orders-len(shipped))
	}
	fmt.Println("every attempted order shipped exactly once — detectable execution at one fence per append")
}
