// bank: an invariant-checked ledger surviving repeated power failures.
//
// Four tellers move money between accounts while the machine crashes
// five times at pseudo-random points. Because transfers are single
// atomic updates under ONLL, the total balance is conserved across
// every crash — the classic torn-transfer bug (debit durable, credit
// lost) cannot happen, and the example proves it by re-auditing the
// books after every recovery.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	onll "repro"
	"repro/internal/sched"
)

const (
	tellers  = 4
	accounts = 8
	initial  = 1_000_000
	crashes  = 5
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// Era 0: found the bank.
	pool := onll.NewPool(1<<26, nil)
	in, err := onll.Open(pool, onll.BankSpec(), onll.Config{NProcs: tellers})
	if err != nil {
		log.Fatal(err)
	}
	b := onll.Bank{H: in.Handle(0)}
	for a := uint64(1); a <= accounts; a++ {
		if _, _, err := b.Deposit(a, initial/accounts); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("bank founded: %d accounts, total %d\n", accounts, b.Total())

	for era := 1; era <= crashes; era++ {
		// Attach a crashing gate for this era.
		crashAt := uint64(rng.Intn(12000) + 2000)
		gate := sched.NewStepCounter(crashAt, nil)
		pool.SetGate(gate)

		var wg sync.WaitGroup
		for t := 0; t < tellers; t++ {
			wg.Add(1)
			go func(pid int) {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil && !sched.IsKilled(r) {
						panic(r)
					}
				}()
				teller := onll.Bank{H: in.Handle(pid)}
				r := rand.New(rand.NewSource(int64(era*100 + pid)))
				for i := 0; i < 500; i++ {
					from := uint64(r.Intn(accounts)) + 1
					to := uint64(r.Intn(accounts)) + 1
					amt := uint64(r.Intn(500))
					if _, _, err := teller.Transfer(from, to, amt); err != nil {
						panic(err)
					}
				}
			}(t)
		}
		wg.Wait()

		pool.Crash(onll.SeededOracle(uint64(era), 1, 2))
		pool.SetGate(nil)
		var report *onll.Report
		in, report, err = onll.Recover(pool, onll.BankSpec(), onll.Config{})
		if err != nil {
			log.Fatal(err)
		}
		b = onll.Bank{H: in.Handle(0)}
		total := b.Total()
		fmt.Printf("era %d: crashed at step %-6d recovered %5d transfers, audit total = %d\n",
			era, crashAt, report.LastIdx-report.BaseIdx, total)
		if total != initial {
			log.Fatalf("CONSERVATION VIOLATED after era %d: total %d != %d", era, total, initial)
		}
	}
	fmt.Printf("%d crashes survived; every audit balanced to %d\n", crashes, initial)
}
