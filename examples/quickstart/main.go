// Quickstart: a durable shared counter in ~30 lines.
//
// Open a simulated NVM pool, build a durably linearizable counter with
// the ONLL universal construction, increment it from two processes,
// crash, recover, and observe that nothing completed was lost — at a
// cost of exactly one persistent fence per increment.
package main

import (
	"fmt"
	"log"

	onll "repro"
)

func main() {
	pool := onll.NewPool(1<<24, nil)
	in, err := onll.Open(pool, onll.CounterSpec(), onll.Config{NProcs: 2})
	if err != nil {
		log.Fatal(err)
	}

	c0 := onll.Counter{H: in.Handle(0)}
	c1 := onll.Counter{H: in.Handle(1)}
	for i := 0; i < 5; i++ {
		c0.Inc()
		c1.Inc()
	}
	fmt.Println("counter before crash:", c0.Get()) // 10

	pool.Crash(onll.DropAll) // power failure: caches gone

	in2, report, err := onll.Recover(pool, onll.CounterSpec(), onll.Config{})
	if err != nil {
		log.Fatal(err)
	}
	c := onll.Counter{H: in2.Handle(0)}
	fmt.Println("counter after recovery:", c.Get())      // 10
	fmt.Println("operations recovered:", report.LastIdx) // 10
	fmt.Println("persistent fences used (10 updates + 6 one-time setup):",
		pool.TotalStats().PersistentFences)
}
