// Package shard partitions a keyspace across several independent ONLL
// instances sharing ONE persistent pool — the multi-core scale-out
// layer (DESIGN.md §3.9). A single instance serializes every update on
// one trace tail (the order stage's CAS) no matter how many processes
// drive it; sharding multiplies the tails. Each shard is a complete,
// unmodified core instance — its own per-process logs, trace,
// compaction cadence, pressure valve, salvage state and published-view
// slot stripes — laid out in the shared pool's root table at
// RootBase + i*core.RootSpan(NProcs) and guarded against overlap by
// the pool's root-claim registry (core.ErrRootOverlap).
//
// A composed Handle routes every keyed operation to the shard its key
// hashes to and forwards it verbatim, so the paper's per-operation
// guarantees pass through untouched: updates keep their single persist
// fence, reads stay fence-free, and each shard's history is durably
// linearizable on its own. What the composition adds — and all it
// adds — is ROUTING. Operations on one key always meet the same shard,
// so per-key semantics (read-your-writes, per-handle monotonicity) are
// exactly the single-instance guarantees. Operations that aggregate
// across keys (Len, Total) cannot be answered by one shard; ReadEach /
// ReadSum run the read on every shard and combine, and the combined
// value is a product of per-shard linearizable reads, NOT an atomic
// cross-shard snapshot — a transfer-like update spanning two shards
// between the two legs is observable as such. Workloads that need
// multi-key updates to stay atomic must keep the co-accessed keys on
// one shard (Config.KeyOf).
//
// Recovery composes per shard: each shard recovers from its own root
// range (salvage, delta-chain refolding and quarantine classification
// all per shard), and detectability keeps its per-shard scope — op ids
// are only unique within a shard, so Report.WasLinearized takes the
// shard index that Handle.ShardOf reported when the op was issued.
package shard

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/pmem"
	"repro/internal/spec"
)

// Config parameterizes Open and Recover.
type Config struct {
	// Shards is the number of partitions (independent core instances).
	// Zero selects 1 (the composition degenerates to one instance).
	Shards int
	// Base is the per-shard core configuration template: every shard is
	// created with this config, with RootBase advanced by
	// core.RootSpan(NProcs) per shard (Base.RootBase is shard 0's).
	Base core.Config
	// KeyOf extracts the routing key from an operation. Nil selects the
	// default — args[0], or 0 for argument-less ops — which matches
	// every shipped object whose first argument is the key (Map,
	// OrderedMap, Set, Bank accounts). Ops that touch several keys
	// (BankTransfer) are routed by the SAME function; give them a KeyOf
	// that maps co-accessed keys to one shard or keep them off sharded
	// deployments.
	KeyOf func(code uint64, args []uint64) uint64
}

func (c *Config) fill() error {
	if c.Shards < 0 {
		return fmt.Errorf("shard: Shards %d negative", c.Shards)
	}
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.KeyOf == nil {
		c.KeyOf = func(code uint64, args []uint64) uint64 {
			if len(args) > 0 {
				return args[0]
			}
			return 0
		}
	}
	return nil
}

// Instance is a keyspace-sharded composition of core instances on one
// pool. Obtain per-process Handles with Handle; all other methods are
// safe for concurrent use.
type Instance struct {
	cfg    Config
	shards []*core.Instance
	hands  []*Handle
}

// rootBaseFor returns shard i's root-table base under cfg.
func rootBaseFor(cfg *Config, i int) int {
	return cfg.Base.RootBase + i*core.RootSpan(cfg.Base.NProcs)
}

// Open builds a fresh sharded instance of sp on pool: cfg.Shards
// independent core instances tiled through the pool's root table. The
// per-shard root ranges are claimed with the pool (a colliding layout —
// another object already at one of the computed bases — fails with
// core.ErrRootOverlap before anything is clobbered).
func Open(pool *pmem.Pool, sp spec.Spec, cfg Config) (*Instance, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	in := &Instance{cfg: cfg}
	for i := 0; i < cfg.Shards; i++ {
		c := cfg.Base
		c.RootBase = rootBaseFor(&cfg, i)
		s, err := core.New(pool, sp, c)
		if err != nil {
			return nil, fmt.Errorf("shard: creating shard %d/%d: %w", i, cfg.Shards, err)
		}
		in.shards = append(in.shards, s)
	}
	in.makeHandles()
	return in, nil
}

// Report is the per-shard composition of recovery reports. Op ids are
// unique only within a shard (each shard numbers its processes' ops
// independently), so detectability queries carry the shard index the
// op was routed to — recorded at issue time via Handle.ShardOf.
type Report struct {
	// Shards holds each shard's report, indexed like Instance.Shard.
	Shards []*core.Report
}

// WasLinearized reports whether the update with the given id, issued
// against shard s, took effect before the crash (detectable
// execution), and at which per-shard execution index.
func (r *Report) WasLinearized(s int, id uint64) (uint64, bool) {
	return r.Shards[s].WasLinearized(id)
}

// Recover rebuilds a sharded instance from the durable contents of
// pool after a crash. Each shard recovers independently from its own
// root range — salvage classification, delta-chain refolding and
// quarantine are all per shard, so media damage in one partition
// degrades that partition only (inspect per-shard health via
// Shard(i).Health(), recreate a quarantined shard via
// Shard(i).Recreate()). Base.NProcs may be zero to accept whatever
// shard 0 recovered, but all shards must agree on it (Open lays them
// out that way; a mismatch means the layout under recovery is not one
// sharded instance).
func Recover(pool *pmem.Pool, sp spec.Spec, cfg Config) (*Instance, *Report, error) {
	if err := cfg.fill(); err != nil {
		return nil, nil, err
	}
	in := &Instance{cfg: cfg}
	rep := &Report{}
	for i := 0; i < cfg.Shards; i++ {
		c := cfg.Base
		c.NProcs = in.cfg.Base.NProcs // shard 0's recovered count, once known
		c.RootBase = rootBaseFor(&in.cfg, i)
		s, r, err := core.Recover(pool, sp, c)
		if err != nil {
			return nil, nil, fmt.Errorf("shard: recovering shard %d/%d: %w", i, cfg.Shards, err)
		}
		if in.cfg.Base.NProcs == 0 {
			in.cfg.Base.NProcs = s.NProcs()
		} else if s.NProcs() != in.cfg.Base.NProcs {
			return nil, nil, fmt.Errorf("shard: shard %d recovered NProcs %d, shard 0 has %d",
				i, s.NProcs(), in.cfg.Base.NProcs)
		}
		in.shards = append(in.shards, s)
		rep.Shards = append(rep.Shards, r)
	}
	in.makeHandles()
	return in, rep, nil
}

func (in *Instance) makeHandles() {
	n := in.shards[0].NProcs()
	in.hands = make([]*Handle, n)
	for pid := 0; pid < n; pid++ {
		h := &Handle{in: in, pid: pid, hs: make([]*core.Handle, len(in.shards))}
		for i, s := range in.shards {
			h.hs[i] = s.Handle(pid)
		}
		in.hands[pid] = h
	}
}

// NShards returns the shard count.
func (in *Instance) NShards() int { return len(in.shards) }

// NProcs returns the per-shard process count (every shard agrees).
func (in *Instance) NProcs() int { return in.shards[0].NProcs() }

// Shard returns partition i's core instance, for per-shard surfaces
// the composition deliberately does not flatten: health and recreation
// (Health, Recreate), scrubbing, pressure and compaction stats.
func (in *Instance) Shard(i int) *core.Instance { return in.shards[i] }

// Handle returns the per-process composed handle for pid. Like a core
// handle, it must only be used by one operation at a time.
func (in *Instance) Handle(pid int) *Handle { return in.hands[pid] }

// FastPathStats sums the read fast path's slot activity over every
// shard (diagnostics; see core.FastPathStats).
func (in *Instance) FastPathStats() core.FastPathStats {
	var t core.FastPathStats
	for _, s := range in.shards {
		fs := s.FastPathStats()
		t.Publishes += fs.Publishes
		t.Stamps += fs.Stamps
		t.SlotReads += fs.SlotReads
		t.Adoptions += fs.Adoptions
		t.Stripes += fs.Stripes
	}
	return t
}

// shardOf maps a routing key to its partition. The multiplicative
// scramble (the 64-bit golden-ratio constant) decorrelates the
// partition from low-bit key patterns — dense keys, strided keys and
// zipfian-popular small keys all spread — while staying deterministic
// across runs and recoveries, which is what keeps a key on the same
// shard for the lifetime of the image.
func (in *Instance) shardOf(key uint64) int {
	return int((key * 0x9E3779B97F4A7C15 >> 17) % uint64(len(in.shards)))
}

// Handle is one process's interface to the sharded object: a composed
// router over the process's per-shard core handles. It satisfies the
// same Update/Read shape as core.Handle (workload.Handle), so
// generators and benches drive both interchangeably.
type Handle struct {
	in  *Instance
	pid int
	hs  []*core.Handle
	// eachBuf is the reusable per-shard value buffer behind ReadSum (and
	// any other aggregate probe that goes through ReadEachInto with it):
	// a Handle runs one operation at a time, so the scratch never
	// overlaps itself, and steady-state aggregates allocate nothing.
	eachBuf []uint64
}

// PID returns the handle's process id.
func (h *Handle) PID() int { return h.pid }

// ShardOf returns the partition the given operation routes to. Record
// it alongside the op id when tracking detectability: recovery reports
// are per shard (Report.WasLinearized).
func (h *Handle) ShardOf(code uint64, args ...uint64) int {
	return h.in.shardOf(h.in.cfg.KeyOf(code, args))
}

// Update executes the update on the shard its key routes to: one trace
// append, one log append, ONE persistent fence — the single-instance
// pipeline verbatim, on a tail only this shard's updaters contend for.
// The returned id is scoped to that shard (pair it with ShardOf for
// post-crash detectability queries).
func (h *Handle) Update(code uint64, args ...uint64) (ret, id uint64, err error) {
	return h.hs[h.ShardOf(code, args...)].Update(code, args...)
}

// Read executes the read-only operation on the shard its key routes
// to — fence-free, epoch-validated against that shard's trace exactly
// as in the single-instance fast path. Per-key monotonicity and
// read-your-writes are the single-shard guarantees, inherited because
// a key never changes shards. Aggregate reads (Len, Total) answer for
// ONE partition only; use ReadEach or ReadSum for the global view.
func (h *Handle) Read(code uint64, args ...uint64) uint64 {
	return h.hs[h.ShardOf(code, args...)].Read(code, args...)
}

// On returns the process's core handle for partition s, for callers
// that need shard-targeted operations (tests, per-shard probes).
func (h *Handle) On(s int) *core.Handle { return h.hs[s] }

// ReadEach runs the read on EVERY shard, in shard order, returning one
// value per shard. Each leg is linearizable within its shard and
// monotone for this handle; the vector as a whole is not an atomic
// cross-shard snapshot (updates may land between legs). ReadEach
// allocates a fresh slice per call; aggregate probes on a hot path
// (bench pollers, server stats) should hold a buffer and call
// ReadEachInto instead.
func (h *Handle) ReadEach(code uint64, args ...uint64) []uint64 {
	return h.ReadEachInto(nil, code, args...)
}

// ReadEachInto is ReadEach with a caller-owned result buffer: dst is
// grown only when its capacity is short of the shard count, so a
// buffer reused across calls makes the whole aggregate path
// allocation-free (pinned by TestShardAggregateAllocs). The returned
// slice always has exactly one element per shard.
func (h *Handle) ReadEachInto(dst []uint64, code uint64, args ...uint64) []uint64 {
	if cap(dst) < len(h.hs) {
		dst = make([]uint64, len(h.hs))
	}
	dst = dst[:len(h.hs)]
	for i, ch := range h.hs {
		dst[i] = ch.Read(code, args...)
	}
	return dst
}

// ReadSum runs the read on every shard and sums — the composition of
// additive aggregates (Map Len, Bank Total). The same caveat as
// ReadEach applies: the sum is a sequence of per-shard linearizable
// reads, not one atomic snapshot, so only quantities conserved WITHIN
// each shard are exact under concurrency. The per-shard values land in
// the handle's reusable buffer via ReadEachInto, so ReadSum never
// allocates.
func (h *Handle) ReadSum(code uint64, args ...uint64) uint64 {
	h.eachBuf = h.ReadEachInto(h.eachBuf, code, args...)
	var sum uint64
	for _, v := range h.eachBuf {
		sum += v
	}
	return sum
}
